//===- Satb.cpp - SATB deletion-barrier slot log ------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/gc/Satb.h"

#include "gcassert/support/ErrorHandling.h"

using namespace gcassert;

SatbSnapshot::~SatbSnapshot() {
  if (Active)
    deactivate();
}

void SatbSnapshot::activate() {
  if (detail::ActiveStoreBarrier)
    reportFatalError("incremental marking cannot share the store barrier "
                     "(a generational heap owns it)");
  Active = true;
  detail::ActiveStoreBarrier = this;
}

void SatbSnapshot::deactivate() {
  assert(detail::ActiveStoreBarrier == this && "barrier hijacked");
  detail::ActiveStoreBarrier = nullptr;
  Active = false;
  std::lock_guard<std::mutex> L(Mutex);
  Log.clear();
}

void SatbSnapshot::recordStore(Object *Holder, Object **Slot, Object *Old,
                               Object *New) {
  (void)Holder;
  (void)New;
  std::lock_guard<std::mutex> L(Mutex);
  // First overwrite wins: the log opened at the snapshot pause, so the
  // first old value observed per slot *is* the snapshot-time value.
  Log.emplace(Slot, Old);
}
