//===- src/gc/ParallelMark.h - Parallel mark phase -------------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-stealing parallel mark phase for the non-moving (mark-sweep)
/// spaces. Private implementation header (not installed).
///
/// Each pool worker owns a Chase-Lev deque (support/WorkStealingDeque.h).
/// Root slots are claimed in chunks off a shared cursor; gray objects go on
/// the claiming worker's deque; idle workers steal from the top of other
/// deques. Mark bits are claimed with an atomic fetch-or
/// (ObjectHeader::tryMarkAtomic), so exactly one worker scans each object
/// and the per-object assertion bookkeeping of the checking configuration
/// runs exactly once per first encounter — which keeps violation multisets
/// and live-instance counts identical to the sequential tracer's.
///
/// The assertion checks mirror TraceCore::processSlot for the Roots phase
/// with path recording off (parallel cycles never record §2.7 paths — the
/// tagged-LIFO worklist invariant does not survive stealing, so RecordPaths
/// cycles fall back to the sequential tracer; violation paths here are just
/// the offending object, exactly like the sequential RecordPaths=false
/// mode). The ownership pre-root phase also stays sequential: it is driven
/// owner-by-owner by the engine with truncation state per owner region.
///
/// Termination: a worker increments the shared idle counter only when its
/// own deque is empty and decrements it before attempting a steal it
/// believes will succeed. A worker therefore never holds unprocessed work
/// while counted idle, and IdleWorkers == WorkerCount implies every deque
/// is empty and no scan is in flight — global termination.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SRC_GC_PARALLELMARK_H
#define GCASSERT_SRC_GC_PARALLELMARK_H

#include "gcassert/gc/Collector.h"
#include "gcassert/gc/TraceCore.h"
#include "gcassert/support/WorkStealingDeque.h"
#include "gcassert/support/WorkerPool.h"
#include "gcassert/telemetry/TraceEvents.h"

#include <atomic>
#include <thread>
#include <vector>

namespace gcassert {
namespace detail {

/// One parallel root-phase trace over a non-moving space. Construct, then
/// markFromRoots(); objectsVisited() afterwards.
template <bool EnableChecks>
class ParallelMarker {
public:
  ParallelMarker(TypeRegistry &Types, TraceHooks *Hooks, unsigned Workers,
                 HeapHardening *Hard = nullptr)
      : Types(Types), Hooks(Hooks), Hard(Hard) {
    assert((!EnableChecks || Hooks) && "checks enabled without hooks");
    Deques.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Deques.push_back(std::make_unique<WorkStealingDeque>());
  }

  /// Collects every root slot, then traces the full graph on \p Pool.
  /// \p Pool's worker count must match the constructor's.
  void markFromRoots(WorkerPool &Pool, RootProvider &Roots) {
    assert(Pool.workerCount() == Deques.size() && "pool/deque mismatch");
    RootSlots.clear();
    Roots.forEachRootSlot([&](ObjRef *Slot) { RootSlots.push_back(Slot); });
    NextRootChunk.store(0, std::memory_order_relaxed);
    IdleWorkers.store(0, std::memory_order_relaxed);
    Pool.run([this](unsigned W) { workerMain(W); });
  }

  uint64_t objectsVisited() const {
    return Visited.load(std::memory_order_relaxed);
  }

  /// Successful steals across all workers this trace.
  uint64_t steals() const { return Steals.load(std::memory_order_relaxed); }

private:
  static constexpr size_t RootChunkSize = 16;

  void workerMain(unsigned W) {
    // Each worker's span lands on its own thread-local ring, so the
    // exported trace shows one mark_worker lane per GC thread.
    telemetry::Span WorkerSpan(telemetry::EventKind::MarkWorker, W);

    // Phase A: claim and process root-slot chunks. Gray children pile up on
    // this worker's deque; draining starts only once all roots are claimed,
    // which seeds every deque before stealing begins.
    const size_t NumSlots = RootSlots.size();
    for (;;) {
      size_t Begin =
          NextRootChunk.fetch_add(RootChunkSize, std::memory_order_relaxed);
      if (Begin >= NumSlots)
        break;
      size_t End = Begin + RootChunkSize < NumSlots ? Begin + RootChunkSize
                                                    : NumSlots;
      for (size_t I = Begin; I != End; ++I)
        processSlot(W, RootSlots[I]);
    }

    // Phase B: drain own deque, steal when empty, stop at termination.
    WorkStealingDeque &Mine = *Deques[W];
    for (;;) {
      uintptr_t Entry;
      while (Mine.pop(Entry))
        scanObjectFields(W, reinterpret_cast<ObjRef>(Entry));
      if (!stealOrTerminate(W))
        return;
    }
  }

  /// Steals one object and scans it (returning true), or detects global
  /// termination (returning false). See the file comment for the protocol.
  bool stealOrTerminate(unsigned W) {
    const unsigned N = static_cast<unsigned>(Deques.size());
    IdleWorkers.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      for (unsigned I = 1; I != N; ++I) {
        WorkStealingDeque &Victim = *Deques[(W + I) % N];
        if (Victim.empty())
          continue;
        // Leave the idle state *before* the steal so work never travels
        // while everyone is counted idle.
        IdleWorkers.fetch_sub(1, std::memory_order_seq_cst);
        uintptr_t Entry;
        if (Victim.steal(Entry)) {
          Steals.fetch_add(1, std::memory_order_relaxed);
          scanObjectFields(W, reinterpret_cast<ObjRef>(Entry));
          return true;
        }
        IdleWorkers.fetch_add(1, std::memory_order_seq_cst);
      }
      if (IdleWorkers.load(std::memory_order_seq_cst) == N)
        return false;
      std::this_thread::yield();
    }
  }

  /// The parallel counterpart of TraceCore::processSlot (non-moving space,
  /// Roots phase, no path recording).
  void processSlot(unsigned W, ObjRef *Slot) {
    ObjRef Obj = *Slot;
    if (!Obj)
      return;

    // Hardened mode: every slot passes the screen (Full mode validates the
    // whole header per edge); in Check mode the header validation runs
    // pre-claim on unmarked objects only (see TraceCore::processSlot for
    // the mode split). Each slot is visited by exactly one worker, so the
    // severing store never races; the quarantine set has its own lock, so
    // concurrent detection of the same object from two slots is safe
    // (both report, the quarantine set dedupes).
    if (GCA_UNLIKELY(Hard != nullptr)) {
      EdgeVerdict V = Hard->screenEdge(Obj);
      if (GCA_UNLIKELY(V != EdgeVerdict::Ok)) {
        Hard->reportEdgeDefect(V, Obj, {Obj});
        *Slot = nullptr;
        return;
      }
    }

    uint32_t Flags = Obj->header().loadFlagsAcquire();
    if (GCA_LIKELY(!(Flags & HF_Marked))) {
      if (GCA_UNLIKELY(Hard != nullptr) && !Hard->full()) {
        EdgeVerdict V = Hard->classifyObjectHeader(Obj);
        if (GCA_UNLIKELY(V != EdgeVerdict::Ok)) {
          Hard->reportEdgeDefect(V, Obj, {Obj});
          *Slot = nullptr;
          return;
        }
      }
      if constexpr (EnableChecks) {
        if (GCA_UNLIKELY(Flags & HF_Dead) && Hooks->severDeadReferences()) {
          // Each slot is processed by exactly one worker (roots are
          // partitioned; fields are scanned only by the claim winner), so
          // this plain store never races.
          *Slot = nullptr;
          return;
        }
      }
      if (Obj->header().tryMarkAtomic()) {
        // Claimed: first-encounter bookkeeping runs here and only here.
        if constexpr (EnableChecks)
          checkFirstEncounter(Obj, Flags);
        Visited.fetch_add(1, std::memory_order_relaxed);
        Deques[W]->push(reinterpret_cast<uintptr_t>(Obj));
        return;
      }
      // Lost the claim race: another worker owns the first encounter, this
      // one is a second path to the object.
    }

    if constexpr (EnableChecks)
      if (GCA_UNLIKELY(Flags & HF_Unshared))
        Hooks->onUnsharedShared(Obj, {Obj});
  }

  /// First-encounter checks, mirroring TraceCore::checkFirstEncounter for
  /// TracePhase::Roots. \p Flags is the pre-claim snapshot; the assertion
  /// bits in it are stable for the whole stop-the-world phase (only the
  /// mark bit mutates).
  void checkFirstEncounter(ObjRef Obj, uint32_t Flags) {
    if (GCA_UNLIKELY(Flags & HF_Dead))
      Hooks->onDeadReachable(Obj, {Obj}, TracePhase::Roots);

    TypeInfo &Type = Types.get(Obj->typeId());
    if (GCA_UNLIKELY(Type.isInstanceTracked()))
      Type.incrementLiveCountAtomic();
    if (GCA_UNLIKELY(Type.isVolumeTracked()))
      Type.addLiveBytesAtomic(Types.allocationSize(
          Obj->typeId(), Type.isArray() ? Obj->arrayLength() : 0));

    if (GCA_UNLIKELY((Flags & HF_Ownee) && !(Flags & HF_Owned)))
      Hooks->onUnownedOwnee(Obj, {Obj});
  }

  void scanObjectFields(unsigned W, ObjRef Obj) {
    const TypeInfo &Type = Types.get(Obj->typeId());
    switch (Type.kind()) {
    case TypeKind::Class:
      for (uint32_t Offset : Type.refOffsets())
        processSlot(W, Obj->refSlot(Offset));
      break;
    case TypeKind::RefArray:
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
        processSlot(W, Obj->elementSlot(I));
      break;
    case TypeKind::DataArray:
      break;
    }
  }

  TypeRegistry &Types;
  TraceHooks *Hooks;
  HeapHardening *Hard;
  std::vector<ObjRef *> RootSlots;
  std::vector<std::unique_ptr<WorkStealingDeque>> Deques;
  std::atomic<size_t> NextRootChunk{0};
  std::atomic<unsigned> IdleWorkers{0};
  std::atomic<uint64_t> Visited{0};
  std::atomic<uint64_t> Steals{0};
};

} // namespace detail
} // namespace gcassert

#endif // GCASSERT_SRC_GC_PARALLELMARK_H
