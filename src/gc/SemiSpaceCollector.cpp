//===- SemiSpaceCollector.cpp - Copying collector ----------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/gc/SemiSpaceCollector.h"

#include "gcassert/gc/TraceCore.h"
#include "gcassert/support/Compiler.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/Timer.h"
#include "gcassert/telemetry/TraceEvents.h"

using namespace gcassert;

namespace {

/// SpaceOps for the copying space: visiting evacuates, the visited test is
/// the forwarding test.
struct CopySpaceOps {
  SemiSpaceHeap *TheHeap;

  /// Visited means "already evacuated": either the object is a from-space
  /// original with a forwarding pointer, or it *is* a to-space copy (the
  /// ownership phase stores to-space references into objects that are only
  /// evacuated later, so the root scan can encounter them).
  bool isVisited(ObjRef Obj) const {
    return Obj->isForwarded() || TheHeap->inToSpace(Obj);
  }

  ObjRef visitNew(ObjRef Obj) const { return TheHeap->copyObject(Obj); }

  ObjRef visitedAddress(ObjRef Obj) const {
    return Obj->isForwarded() ? Obj->forwardingAddress() : Obj;
  }
};

/// Liveness view after a copying trace: live objects are forwarded.
class SemiSpacePostTrace : public PostTraceContext {
public:
  explicit SemiSpacePostTrace(uint64_t Cycle) : Cycle(Cycle) {}

  ObjRef currentAddress(ObjRef Obj) const override {
    return Obj->isForwarded() ? Obj->forwardingAddress() : nullptr;
  }

  uint64_t cycle() const override { return Cycle; }

private:
  uint64_t Cycle;
};

/// Ownership-phase driver that resolves forwarded work items before
/// scanning: a deferred ownee (or an owner reached from another owner) may
/// already live in the to-space.
template <typename CoreT>
class SemiSpaceOwnershipDriver : public OwnershipScanDriver {
public:
  explicit SemiSpaceOwnershipDriver(CoreT &Core) : Core(Core) {}

  void scanChildrenOf(ObjRef Owner) override {
    Core.scanChildrenAndDrain(resolve(Owner));
  }

  void scanObject(ObjRef Obj) override {
    Core.scanChildrenAndDrain(resolve(Obj));
  }

  ObjRef resolve(ObjRef Obj) const override {
    return Obj->isForwarded() ? Obj->forwardingAddress() : Obj;
  }

private:
  CoreT &Core;
};

} // namespace

template <bool EnableChecks, bool RecordPathsT>
void SemiSpaceCollector::runCycle() {
  using Core = TraceCore<CopySpaceOps, EnableChecks, RecordPathsT>;

  uint64_t BytesBefore = TheHeap.stats().BytesInUse;
  TheHeap.beginCollection();
  Core Tracer(CopySpaceOps{&TheHeap}, TheHeap.types(), Hooks, Hard);

  uint64_t Cycle = Stats.Cycles;

  if constexpr (EnableChecks) {
    Hooks->onGcBegin(Cycle);

    uint64_t OwnershipStart = monotonicNanos();
    telemetry::Span OwnershipSpan(telemetry::EventKind::OwnershipPhase);
    Tracer.setPhase(TracePhase::Ownership);
    SemiSpaceOwnershipDriver<Core> Driver(Tracer);
    Hooks->runOwnershipPhase(Driver);
    Stats.OwnershipNanos += monotonicNanos() - OwnershipStart;
  }

  {
    telemetry::Span EvacuateSpan(telemetry::EventKind::EvacuatePhase);
    // Drain after each root: see MarkSweepCollector.cpp — path reports then
    // originate from the first root that reaches an object.
    Tracer.setPhase(TracePhase::Roots);
    Roots.forEachRootSlot([&](ObjRef *Slot) {
      Tracer.processSlot(Slot);
      Tracer.drain();
    });
    EvacuateSpan.setEndArg(Tracer.objectsVisited());
  }

  if constexpr (EnableChecks) {
    // Forwarding pointers in the from-space are still intact here; the
    // engine uses them to rewrite its weak tables.
    telemetry::Span AssertSpan(telemetry::EventKind::AssertionPass);
    SemiSpacePostTrace Ctx(Cycle);
    Hooks->onTraceComplete(Ctx);
  }

  Stats.ObjectsVisited += Tracer.objectsVisited();
  TheHeap.finishCollection();
  uint64_t BytesAfter = TheHeap.stats().BytesInUse;
  if (BytesBefore > BytesAfter)
    Stats.BytesReclaimed += BytesBefore - BytesAfter;
}

void SemiSpaceCollector::collect(const char *Cause) {
  (void)Cause;
  uint64_t Start = monotonicNanos();
  telemetry::Span Cycle(telemetry::EventKind::GcCycle, Stats.Cycles);

  // Pre-flight occupancy guard: evacuation copies at most the bytes
  // allocate() admitted into the current space, which is bounded by one
  // semispace — so a predicted overflow means the invariant broke (or the
  // "semispace.guard" failpoint simulates it). Shed the engine's optional
  // work before anything moves; a real mid-copy overflow is fatal.
  if (GCA_UNLIKELY(TheHeap.evacuationAtRisk()) ||
      GCA_UNLIKELY(faults::SemispaceGuard.shouldFail())) {
    ++Stats.GuardTrips;
    if (Hooks)
      Hooks->onMemoryPressure(MemoryPressure::Critical);
  }

  if (Hooks) {
    if (RecordPaths && Hooks->allowPathRecording())
      runCycle<true, true>();
    else
      runCycle<true, false>();
  } else {
    runCycle<false, false>();
  }
  finishHardenedCycle(TheHeap);
  finishCycleTiming(Start, TheHeap);
}
