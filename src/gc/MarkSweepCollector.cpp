//===- MarkSweepCollector.cpp - Mark-sweep collector -------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/gc/MarkSweepCollector.h"

#include "IncrementalMark.h"
#include "MarkSweepCycle.h"

#include "gcassert/telemetry/TraceEvents.h"

using namespace gcassert;

MarkSweepCollector::MarkSweepCollector(FreeListHeap &TheHeap,
                                       RootProvider &Roots)
    : Collector(Roots), TheHeap(TheHeap) {}

MarkSweepCollector::~MarkSweepCollector() = default;

void MarkSweepCollector::collect(const char *Cause) {
  if (Active) {
    // An allocation failure (or explicit collection) while a cycle is in
    // flight: finishing it is the collection — the remaining mark work and
    // the sweep all happen in this pause, reclaiming everything dead at
    // the snapshot.
    finishCycle();
    return;
  }

  (void)Cause;
  uint64_t Start = monotonicNanos();
  telemetry::Span Cycle(telemetry::EventKind::GcCycle, Stats.Cycles);

  WorkerPool *Pool = workerPool();
  if (Hooks) {
    // §2.7 path recording needs the tagged-LIFO worklist invariant, which a
    // stealable deque cannot provide: RecordPaths cycles always run the
    // sequential tracer (see DESIGN.md, "Parallel collection"). The
    // engine's degradation ladder can veto path recording per cycle.
    if (RecordPaths && Hooks->allowPathRecording())
      detail::runMarkSweepCycle<true, true>(TheHeap, Roots, Hooks, Stats,
                                            nullptr, {}, Hard);
    else
      detail::runMarkSweepCycle<true, false>(TheHeap, Roots, Hooks, Stats,
                                             Pool, {}, Hard);
  } else {
    detail::runMarkSweepCycle<false, false>(TheHeap, Roots, nullptr, Stats,
                                            Pool, {}, Hard);
  }
  finishHardenedCycle(TheHeap);
  finishCycleTiming(Start, TheHeap);
}

bool MarkSweepCollector::incrementalHasWork() const {
  return Active && Active->hasWork();
}

void MarkSweepCollector::incrementalBegin(const char *Cause) {
  (void)Cause;
  assert(!Active && "incremental cycle already in flight");
  uint64_t Start = monotonicNanos();
  // The matching end fires in finishCycle; for an incremental cycle the
  // GcCycle span covers snapshot pause through terminal pause, with the
  // MarkSlice spans nested inside.
  telemetry::begin(telemetry::EventKind::GcCycle, Stats.Cycles);

  bool EnableChecks = Hooks != nullptr;
  bool Paths = EnableChecks && RecordPaths && Hooks->allowPathRecording();
  Active = detail::makeIncrementalCycle(EnableChecks, Paths, TheHeap, Roots,
                                        Hooks, Stats, Hard);
  Active->begin();
  notePause(monotonicNanos() - Start);
}

void MarkSweepCollector::markStep() {
  assert(Active && "no incremental cycle in flight");
  uint64_t Start = monotonicNanos();
  Active->step(Config.MarkBudget);
  notePause(monotonicNanos() - Start);
}

void MarkSweepCollector::finishCycle() {
  assert(Active && "no incremental cycle in flight");
  uint64_t Start = monotonicNanos();
  // Incremental cycles never hand the slice worklist to the parallel
  // marker, but the terminal sweep can still use the pool.
  Active->complete(workerPool());
  Active.reset();
  finishHardenedCycle(TheHeap);
  notePause(monotonicNanos() - Start);
  ++Stats.IncrementalCycles;
  telemetry::end(telemetry::EventKind::GcCycle, Stats.Cycles);
  // Report the cycle's accumulated pause time as its duration: backdate
  // the start so finishCycleTiming's "now - start" equals the sum of this
  // cycle's pauses. RecordMaxPause=false — notePause already tracked the
  // per-pause maximum, and the sum must not masquerade as one pause.
  finishCycleTiming(monotonicNanos() - CyclePauseNanos, TheHeap,
                    /*MinorCycle=*/false, /*RecordMaxPause=*/false);
  CyclePauseNanos = 0;
}

void MarkSweepCollector::notePause(uint64_t PauseNanos) {
  CyclePauseNanos += PauseNanos;
  if (PauseNanos > Stats.MaxPauseNanos)
    Stats.MaxPauseNanos = PauseNanos;
}
