//===- MarkSweepCollector.cpp - Mark-sweep collector -------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/gc/MarkSweepCollector.h"

#include "MarkSweepCycle.h"

#include "gcassert/telemetry/TraceEvents.h"

using namespace gcassert;

void MarkSweepCollector::collect(const char *Cause) {
  (void)Cause;
  uint64_t Start = monotonicNanos();
  telemetry::Span Cycle(telemetry::EventKind::GcCycle, Stats.Cycles);

  WorkerPool *Pool = workerPool();
  if (Hooks) {
    // §2.7 path recording needs the tagged-LIFO worklist invariant, which a
    // stealable deque cannot provide: RecordPaths cycles always run the
    // sequential tracer (see DESIGN.md, "Parallel collection"). The
    // engine's degradation ladder can veto path recording per cycle.
    if (RecordPaths && Hooks->allowPathRecording())
      detail::runMarkSweepCycle<true, true>(TheHeap, Roots, Hooks, Stats,
                                            nullptr, {}, Hard);
    else
      detail::runMarkSweepCycle<true, false>(TheHeap, Roots, Hooks, Stats,
                                             Pool, {}, Hard);
  } else {
    detail::runMarkSweepCycle<false, false>(TheHeap, Roots, nullptr, Stats,
                                            Pool, {}, Hard);
  }
  finishHardenedCycle(TheHeap);
  finishCycleTiming(Start, TheHeap);
}
