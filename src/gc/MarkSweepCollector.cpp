//===- MarkSweepCollector.cpp - Mark-sweep collector -------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/gc/MarkSweepCollector.h"

#include "MarkSweepCycle.h"

using namespace gcassert;

Collector::~Collector() = default;
RootProvider::~RootProvider() = default;
TraceHooks::~TraceHooks() = default;
OwnershipScanDriver::~OwnershipScanDriver() = default;
PostTraceContext::~PostTraceContext() = default;

void MarkSweepCollector::collect(const char *Cause) {
  (void)Cause;
  uint64_t Start = monotonicNanos();

  if (Hooks) {
    if (RecordPaths)
      detail::runMarkSweepCycle<true, true>(TheHeap, Roots, Hooks, Stats);
    else
      detail::runMarkSweepCycle<true, false>(TheHeap, Roots, Hooks, Stats);
  } else {
    detail::runMarkSweepCycle<false, false>(TheHeap, Roots, nullptr, Stats);
  }

  uint64_t Elapsed = monotonicNanos() - Start;
  Stats.LastGcNanos = Elapsed;
  Stats.TotalGcNanos += Elapsed;
  ++Stats.Cycles;
}
