//===- MarkCompactCollector.cpp - Sliding compactor ------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/gc/MarkCompactCollector.h"

#include "gcassert/gc/TraceCore.h"
#include "gcassert/support/Timer.h"
#include "gcassert/telemetry/TraceEvents.h"

using namespace gcassert;

namespace {

/// Liveness view handed to the engine *after* the slide: pre-compaction
/// addresses are pure lookup keys into the plan (never dereferenced — the
/// storage they named has been overwritten), and the returned post-slide
/// addresses are live objects the engine may read and write, which the
/// PostTraceContext contract requires (the engine clears header flags and
/// reads type ids through them).
class CompactPostTrace : public PostTraceContext {
public:
  CompactPostTrace(const CompactionPlan &Plan, uint64_t Cycle)
      : Plan(Plan), Cycle(Cycle) {}

  ObjRef currentAddress(ObjRef Obj) const override {
    // Dead objects are simply absent from the plan; no header read needed
    // (the mark bits are gone by now anyway).
    return Plan.lookup(Obj);
  }

  uint64_t cycle() const override { return Cycle; }

private:
  const CompactionPlan &Plan;
  uint64_t Cycle;
};

/// Ownership-phase driver (non-moving during marking, like mark-sweep).
template <typename CoreT>
class CompactOwnershipDriver : public OwnershipScanDriver {
public:
  explicit CompactOwnershipDriver(CoreT &Core) : Core(Core) {}

  void scanChildrenOf(ObjRef Owner) override {
    Core.scanChildrenAndDrain(Owner);
  }

  void scanObject(ObjRef Obj) override { Core.scanChildrenAndDrain(Obj); }

  ObjRef resolve(ObjRef Obj) const override { return Obj; }

private:
  CoreT &Core;
};

} // namespace

template <bool EnableChecks, bool RecordPathsT>
void MarkCompactCollector::runCycle() {
  // Phase 1: the checking trace — identical to mark-sweep's, objects do
  // not move while assertions are evaluated.
  using Core = TraceCore<MarkSpaceOps, EnableChecks, RecordPathsT>;
  Core Tracer(MarkSpaceOps(), TheHeap.types(), Hooks, Hard);

  uint64_t Cycle = Stats.Cycles;

  if constexpr (EnableChecks) {
    Hooks->onGcBegin(Cycle);

    uint64_t OwnershipStart = monotonicNanos();
    telemetry::Span OwnershipSpan(telemetry::EventKind::OwnershipPhase);
    Tracer.setPhase(TracePhase::Ownership);
    CompactOwnershipDriver<Core> Driver(Tracer);
    Hooks->runOwnershipPhase(Driver);
    Stats.OwnershipNanos += monotonicNanos() - OwnershipStart;
  }

  uint64_t MarkStart = monotonicNanos();
  telemetry::begin(telemetry::EventKind::MarkPhase);
  Tracer.setPhase(TracePhase::Roots);
  Roots.forEachRootSlot([&](ObjRef *Slot) {
    Tracer.processSlot(Slot);
    Tracer.drain();
  });
  Stats.MarkNanos += monotonicNanos() - MarkStart;
  telemetry::end(telemetry::EventKind::MarkPhase, Tracer.objectsVisited());

  // Phase 2: relocation plan.
  uint64_t BytesBefore = TheHeap.stats().BytesInUse;
  telemetry::begin(telemetry::EventKind::CompactPhase);
  CompactionPlan Plan = TheHeap.planCompaction();

  // Phase 3: rewrite every reference — root slots and the fields of every
  // live object (still at their old addresses).
  Roots.forEachRootSlot([&](ObjRef *Slot) {
    if (*Slot)
      *Slot = Plan.lookup(*Slot);
  });
  TypeRegistry &Types = TheHeap.types();
  TheHeap.forEachObject([&](ObjRef Obj) {
    if (!Obj->header().isMarked())
      return;
    const TypeInfo &Type = Types.get(Obj->typeId());
    auto Rewrite = [&](ObjRef *Slot) {
      if (*Slot)
        *Slot = Plan.lookup(*Slot);
    };
    if (Type.kind() == TypeKind::Class) {
      for (uint32_t Offset : Type.refOffsets())
        Rewrite(Obj->refSlot(Offset));
    } else if (Type.kind() == TypeKind::RefArray) {
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
        Rewrite(Obj->elementSlot(I));
    }
  });

  // Phase 4: slide.
  TheHeap.executeCompaction(Plan);
  telemetry::end(telemetry::EventKind::CompactPhase, Plan.liveObjects());

  // Phase 5: only now — with every live object at its final, populated
  // address — may the engine rewrite its weak tables. Running this before
  // the slide handed the engine planned addresses whose storage was not
  // yet populated; clearing ownership flags or reading a type id through
  // them scribbled over unrelated live objects.
  if constexpr (EnableChecks) {
    telemetry::Span AssertSpan(telemetry::EventKind::AssertionPass);
    CompactPostTrace Ctx(Plan, Cycle);
    Hooks->onTraceComplete(Ctx);
  }

  Stats.ObjectsVisited += Tracer.objectsVisited();
  uint64_t BytesAfter = TheHeap.stats().BytesInUse;
  if (BytesBefore > BytesAfter)
    Stats.BytesReclaimed += BytesBefore - BytesAfter;
}

void MarkCompactCollector::collect(const char *Cause) {
  (void)Cause;
  uint64_t Start = monotonicNanos();
  telemetry::Span Cycle(telemetry::EventKind::GcCycle, Stats.Cycles);

  if (Hooks) {
    if (RecordPaths && Hooks->allowPathRecording())
      runCycle<true, true>();
    else
      runCycle<true, false>();
  } else {
    runCycle<false, false>();
  }
  finishHardenedCycle(TheHeap);
  finishCycleTiming(Start, TheHeap);
}
