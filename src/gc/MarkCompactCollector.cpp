//===- MarkCompactCollector.cpp - Sliding compactor ------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/gc/MarkCompactCollector.h"

#include "gcassert/gc/TraceCore.h"
#include "gcassert/support/Timer.h"

using namespace gcassert;

namespace {

/// Liveness view between marking and sliding: live objects answer with
/// their *planned* post-compaction address.
class CompactPostTrace : public PostTraceContext {
public:
  CompactPostTrace(const CompactionPlan &Plan, uint64_t Cycle)
      : Plan(Plan), Cycle(Cycle) {}

  ObjRef currentAddress(ObjRef Obj) const override {
    return Obj->header().isMarked() ? Plan.lookup(Obj) : nullptr;
  }

  uint64_t cycle() const override { return Cycle; }

private:
  const CompactionPlan &Plan;
  uint64_t Cycle;
};

/// Ownership-phase driver (non-moving during marking, like mark-sweep).
template <typename CoreT>
class CompactOwnershipDriver : public OwnershipScanDriver {
public:
  explicit CompactOwnershipDriver(CoreT &Core) : Core(Core) {}

  void scanChildrenOf(ObjRef Owner) override {
    Core.scanChildrenAndDrain(Owner);
  }

  void scanObject(ObjRef Obj) override { Core.scanChildrenAndDrain(Obj); }

  ObjRef resolve(ObjRef Obj) const override { return Obj; }

private:
  CoreT &Core;
};

} // namespace

template <bool EnableChecks, bool RecordPathsT>
void MarkCompactCollector::runCycle() {
  // Phase 1: the checking trace — identical to mark-sweep's, objects do
  // not move while assertions are evaluated.
  using Core = TraceCore<MarkSpaceOps, EnableChecks, RecordPathsT>;
  Core Tracer(MarkSpaceOps(), TheHeap.types(), Hooks, Hard);

  uint64_t Cycle = Stats.Cycles;

  if constexpr (EnableChecks) {
    Hooks->onGcBegin(Cycle);

    uint64_t OwnershipStart = monotonicNanos();
    Tracer.setPhase(TracePhase::Ownership);
    CompactOwnershipDriver<Core> Driver(Tracer);
    Hooks->runOwnershipPhase(Driver);
    Stats.OwnershipNanos += monotonicNanos() - OwnershipStart;
  }

  Tracer.setPhase(TracePhase::Roots);
  Roots.forEachRootSlot([&](ObjRef *Slot) {
    Tracer.processSlot(Slot);
    Tracer.drain();
  });

  // Phase 2: relocation plan.
  uint64_t BytesBefore = TheHeap.stats().BytesInUse;
  CompactionPlan Plan = TheHeap.planCompaction();

  // Phase 3: the engine rewrites its weak tables against the plan; no
  // object may be dereferenced through the new addresses until the slide.
  if constexpr (EnableChecks) {
    CompactPostTrace Ctx(Plan, Cycle);
    Hooks->onTraceComplete(Ctx);
  }

  // Phase 4: rewrite every reference — root slots and the fields of every
  // live object (still at their old addresses).
  Roots.forEachRootSlot([&](ObjRef *Slot) {
    if (*Slot)
      *Slot = Plan.lookup(*Slot);
  });
  TypeRegistry &Types = TheHeap.types();
  TheHeap.forEachObject([&](ObjRef Obj) {
    if (!Obj->header().isMarked())
      return;
    const TypeInfo &Type = Types.get(Obj->typeId());
    auto Rewrite = [&](ObjRef *Slot) {
      if (*Slot)
        *Slot = Plan.lookup(*Slot);
    };
    if (Type.kind() == TypeKind::Class) {
      for (uint32_t Offset : Type.refOffsets())
        Rewrite(Obj->refSlot(Offset));
    } else if (Type.kind() == TypeKind::RefArray) {
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
        Rewrite(Obj->elementSlot(I));
    }
  });

  // Phase 5: slide.
  TheHeap.executeCompaction(Plan);

  Stats.ObjectsVisited += Tracer.objectsVisited();
  uint64_t BytesAfter = TheHeap.stats().BytesInUse;
  if (BytesBefore > BytesAfter)
    Stats.BytesReclaimed += BytesBefore - BytesAfter;
}

void MarkCompactCollector::collect(const char *Cause) {
  (void)Cause;
  uint64_t Start = monotonicNanos();

  if (Hooks) {
    if (RecordPaths && Hooks->allowPathRecording())
      runCycle<true, true>();
    else
      runCycle<true, false>();
  } else {
    runCycle<false, false>();
  }
  finishHardenedCycle(TheHeap);

  uint64_t Elapsed = monotonicNanos() - Start;
  Stats.LastGcNanos = Elapsed;
  Stats.TotalGcNanos += Elapsed;
  ++Stats.Cycles;
}
