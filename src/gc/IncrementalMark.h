//===- src/gc/IncrementalMark.h - Incremental mark-sweep cycle -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-flight state of one incremental mark-sweep cycle (DESIGN.md §15).
///
/// An incremental cycle splits the atomic collection of MarkSweepCycle.h
/// into three kinds of stop-the-world pauses:
///
///  * the *snapshot pause* (begin): onGcBegin, the engine-driven ownership
///    phase (drained to completion — it is engine-ordered and cheap), and a
///    scan of every root slot *without* draining. The SATB deletion barrier
///    and black allocation are switched on before the world resumes, fixing
///    the traced graph to its snapshot-pause shape;
///  * budgeted *mark slices* (step): each drains at most MarkBudget objects
///    off the carried-over worklist, resolving every slot through the SATB
///    log so the trace sees the snapshot-time graph regardless of mutator
///    rewiring between slices;
///  * the *terminal pause* (complete): drains whatever work remains, runs
///    the engine's post-trace checks, sweeps, and tears the barrier down.
///
/// Because the SATB log makes the snapshot exact (WriteBarrier.h, Satb.h),
/// every per-object assertion check fires on exactly the objects and edges a
/// stop-the-world collection at the snapshot pause would have seen: the
/// violation multiset is bit-for-bit identical, which the differential
/// fuzzer's --incremental axis pins.
///
/// Type-erased base + template implementation, mirroring how
/// runMarkSweepCycle is instantiated per (EnableChecks, RecordPaths):
/// MarkSweepCollector picks the instantiation when the cycle begins. Slices
/// always run the sequential tracer — a stealable deque cannot carry the
/// worklist across pauses (nor the §2.7 tagged-path invariant); the terminal
/// sweep may still use the worker pool.
///
/// Private implementation header (not installed).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SRC_GC_INCREMENTALMARK_H
#define GCASSERT_SRC_GC_INCREMENTALMARK_H

#include "MarkSweepCycle.h"
#include "gcassert/gc/Satb.h"

#include <memory>

namespace gcassert {
namespace detail {

/// One incremental cycle, begin-to-terminal. Every method runs with the
/// world stopped; the object lives across pauses (owned by the collector)
/// and carries the tracer worklist and SATB log between them.
class IncrementalCycleBase {
public:
  virtual ~IncrementalCycleBase() = default;

  /// Snapshot pause body. On return the store barrier and black allocation
  /// are armed and the world may resume.
  virtual void begin() = 0;

  /// One mark slice: scans at most \p MaxObjects objects (0 = unbounded).
  /// Returns the number scanned. Never sweeps, never runs hooks.
  virtual size_t step(uint64_t MaxObjects) = 0;

  /// True while marking work remains (step() should keep running).
  virtual bool hasWork() const = 0;

  /// Terminal pause body: final drain, post-trace checks, sweep (parallel
  /// over \p Pool when non-null), barrier teardown, stats roll-up.
  virtual void complete(WorkerPool *Pool) = 0;
};

template <bool EnableChecks, bool RecordPathsT>
class IncrementalCycle final : public IncrementalCycleBase {
  using Core = TraceCore<MarkSpaceOps, EnableChecks, RecordPathsT>;

public:
  IncrementalCycle(FreeListHeap &TheHeap, RootProvider &Roots,
                   TraceHooks *Hooks, GcStats &Stats, HeapHardening *Hard)
      : TheHeap(TheHeap), Roots(Roots), Hooks(Hooks), Stats(Stats),
        Tracer(MarkSpaceOps(), TheHeap.types(), Hooks, Hard) {}

  void begin() override {
    Cycle = Stats.Cycles;

    if constexpr (EnableChecks) {
      // The engine defers registrations that would mutate in-flight trace
      // state from here until onSnapshotClose().
      Hooks->onSnapshotOpen();
      Hooks->onGcBegin(Cycle);

      // The whole ownership phase runs inside the snapshot pause: it is
      // engine-ordered (owners first, deferred ownees after) and drains
      // each owner's subgraph as it goes, so splitting it across slices
      // would buy little and complicate the §2.5.2 two-phase contract.
      uint64_t OwnershipStart = monotonicNanos();
      telemetry::Span OwnershipSpan(telemetry::EventKind::OwnershipPhase);
      Tracer.setPhase(TracePhase::Ownership);
      MarkSweepOwnershipDriver<Core> Driver(Tracer);
      Hooks->runOwnershipPhase(Driver);
      Stats.OwnershipNanos += monotonicNanos() - OwnershipStart;
    }

    // Scan every root slot but do not drain: draining is what the budgeted
    // slices are for. Root slots are only ever read here, with the world
    // stopped, so the snapshot needs no root barrier — a handle overwritten
    // later can only come to point at a black or already-snapshot-reachable
    // object.
    uint64_t MarkStart = monotonicNanos();
    Tracer.setPhase(TracePhase::Roots);
    Roots.forEachRootSlot([&](ObjRef *Slot) { Tracer.processSlot(Slot); });
    Stats.MarkNanos += monotonicNanos() - MarkStart;

    // Arm the snapshot machinery last, still inside the pause: the
    // safepoint rendezvous orders these stores before any mutator runs.
    Snapshot.activate();
    Tracer.setSnapshot(&Snapshot);
    TheHeap.setAllocateBlack(true);
  }

  size_t step(uint64_t MaxObjects) override {
    uint64_t SliceStart = monotonicNanos();
    telemetry::Span Slice(telemetry::EventKind::MarkSlice, Cycle);
    size_t Scanned = Tracer.drainUpTo(
        MaxObjects == 0 ? ~size_t(0) : static_cast<size_t>(MaxObjects));
    Slice.setEndArg(Scanned);
    Stats.MarkNanos += monotonicNanos() - SliceStart;
    ++Stats.MarkSlices;
    return Scanned;
  }

  bool hasWork() const override { return Tracer.hasWork(); }

  void complete(WorkerPool *Pool) override {
    // Whatever marking remains is finished here, unbudgeted: the terminal
    // pause must leave a fully-traced heap for the checks and the sweep.
    uint64_t MarkStart = monotonicNanos();
    Tracer.drain();
    Stats.MarkNanos += monotonicNanos() - MarkStart;

    if constexpr (EnableChecks) {
      telemetry::Span AssertSpan(telemetry::EventKind::AssertionPass);
      MarkSweepPostTrace Ctx(Cycle);
      Hooks->onTraceComplete(Ctx);
    }

    Stats.ObjectsVisited += Tracer.objectsVisited();
    Stats.SatbLoggedSlots += Snapshot.loggedSlots();

    uint64_t SweepStart = monotonicNanos();
    telemetry::Span SweepSpan(telemetry::EventKind::SweepPhase);
    size_t Reclaimed = TheHeap.sweep(Pool);
    SweepSpan.setEndArg(Reclaimed);
    Stats.BytesReclaimed += Reclaimed;
    Stats.SweepNanos += monotonicNanos() - SweepStart;

    // Disarm before the world resumes; mutator stores after this pause
    // belong to the next cycle's snapshot (if any).
    TheHeap.setAllocateBlack(false);
    Tracer.setSnapshot(nullptr);
    Snapshot.deactivate();
    if constexpr (EnableChecks)
      Hooks->onSnapshotClose();
  }

private:
  FreeListHeap &TheHeap;
  RootProvider &Roots;
  TraceHooks *Hooks;
  GcStats &Stats;
  Core Tracer;
  SatbSnapshot Snapshot;
  uint64_t Cycle = 0;
};

/// Instantiates the cycle variant matching the collector's hook/path
/// configuration at begin time (same dispatch as MarkSweepCollector's
/// atomic collect()).
inline std::unique_ptr<IncrementalCycleBase>
makeIncrementalCycle(bool EnableChecks, bool RecordPathsT,
                     FreeListHeap &TheHeap, RootProvider &Roots,
                     TraceHooks *Hooks, GcStats &Stats, HeapHardening *Hard) {
  if (EnableChecks) {
    if (RecordPathsT)
      return std::make_unique<IncrementalCycle<true, true>>(TheHeap, Roots,
                                                            Hooks, Stats, Hard);
    return std::make_unique<IncrementalCycle<true, false>>(TheHeap, Roots,
                                                           Hooks, Stats, Hard);
  }
  return std::make_unique<IncrementalCycle<false, false>>(TheHeap, Roots,
                                                          nullptr, Stats, Hard);
}

} // namespace detail
} // namespace gcassert

#endif // GCASSERT_SRC_GC_INCREMENTALMARK_H
