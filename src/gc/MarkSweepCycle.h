//===- src/gc/MarkSweepCycle.h - Shared mark-sweep cycle -------*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full mark-sweep collection cycle over a FreeListHeap, shared between
/// MarkSweepCollector and the major collections of GenerationalCollector.
/// Private implementation header (not installed).
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_SRC_GC_MARKSWEEPCYCLE_H
#define GCASSERT_SRC_GC_MARKSWEEPCYCLE_H

#include "ParallelMark.h"
#include "gcassert/gc/Collector.h"
#include "gcassert/gc/TraceCore.h"
#include "gcassert/heap/FreeListHeap.h"
#include "gcassert/support/Timer.h"
#include "gcassert/support/WorkerPool.h"
#include "gcassert/telemetry/TraceEvents.h"

namespace gcassert {
namespace detail {

/// Non-moving liveness view handed to the engine after tracing.
class MarkSweepPostTrace : public PostTraceContext {
public:
  explicit MarkSweepPostTrace(uint64_t Cycle) : Cycle(Cycle) {}

  ObjRef currentAddress(ObjRef Obj) const override {
    return Obj->header().isMarked() ? Obj : nullptr;
  }

  uint64_t cycle() const override { return Cycle; }

private:
  uint64_t Cycle;
};

/// Ownership-phase driver over a (non-moving) TraceCore.
template <typename CoreT>
class MarkSweepOwnershipDriver : public OwnershipScanDriver {
public:
  explicit MarkSweepOwnershipDriver(CoreT &Core) : Core(Core) {}

  void scanChildrenOf(ObjRef Owner) override {
    Core.scanChildrenAndDrain(Owner);
  }

  void scanObject(ObjRef Obj) override { Core.scanChildrenAndDrain(Obj); }

  ObjRef resolve(ObjRef Obj) const override { return Obj; }

private:
  CoreT &Core;
};

/// Runs one full mark-sweep cycle over \p TheHeap, updating \p Stats.
/// \p Hooks must be non-null when EnableChecks is true.
///
/// When \p Pool is non-null (and path recording is off — callers pass null
/// for RecordPaths cycles), the root phase runs on the pool's workers with
/// work-stealing (ParallelMark.h) and the sweep claims block chunks in
/// parallel; the ownership phase is engine-driven and stays sequential.
/// Heap state and, with checks, the violation multiset are identical either
/// way.
///
/// \p BeforeSweep, if set, runs after tracing and the engine's post-trace
/// work but before reclamation — the window where mark bits still describe
/// liveness (the generational collector prunes its remembered set there).
template <bool EnableChecks, bool RecordPathsT>
void runMarkSweepCycle(FreeListHeap &TheHeap, RootProvider &Roots,
                       TraceHooks *Hooks, GcStats &Stats,
                       WorkerPool *Pool = nullptr,
                       const std::function<void()> &BeforeSweep = {},
                       HeapHardening *Hard = nullptr) {
  using Core = TraceCore<MarkSpaceOps, EnableChecks, RecordPathsT>;
  Core Tracer(MarkSpaceOps(), TheHeap.types(), Hooks, Hard);

  uint64_t Cycle = Stats.Cycles;

  if constexpr (EnableChecks) {
    Hooks->onGcBegin(Cycle);

    uint64_t OwnershipStart = monotonicNanos();
    telemetry::Span OwnershipSpan(telemetry::EventKind::OwnershipPhase);
    Tracer.setPhase(TracePhase::Ownership);
    MarkSweepOwnershipDriver<Core> Driver(Tracer);
    Hooks->runOwnershipPhase(Driver);
    Stats.OwnershipNanos += monotonicNanos() - OwnershipStart;
  }

  uint64_t MarkStart = monotonicNanos();
  telemetry::begin(telemetry::EventKind::MarkPhase);
  uint64_t RootVisited = 0;
  bool RanParallel = false;
  if constexpr (!RecordPathsT) {
    if (Pool && Pool->workerCount() > 1) {
      ParallelMarker<EnableChecks> Marker(
          TheHeap.types(), Hooks, static_cast<unsigned>(Pool->workerCount()),
          Hard);
      Marker.markFromRoots(*Pool, Roots);
      RootVisited = Marker.objectsVisited();
      Stats.Steals += Marker.steals();
      RanParallel = true;
    }
  }
  if (!RanParallel) {
    // Drain after each root so reported paths originate from the first root
    // that reaches an object (application structure first, bookkeeping roots
    // later), not from whichever root happens to sit on top of the mark
    // stack. Draining an empty worklist is a single branch.
    Tracer.setPhase(TracePhase::Roots);
    Roots.forEachRootSlot([&](ObjRef *Slot) {
      Tracer.processSlot(Slot);
      Tracer.drain();
    });
  }
  Stats.MarkNanos += monotonicNanos() - MarkStart;
  telemetry::end(telemetry::EventKind::MarkPhase,
                 Tracer.objectsVisited() + RootVisited);

  if constexpr (EnableChecks) {
    telemetry::Span AssertSpan(telemetry::EventKind::AssertionPass);
    MarkSweepPostTrace Ctx(Cycle);
    Hooks->onTraceComplete(Ctx);
  }

  if (BeforeSweep)
    BeforeSweep();

  Stats.ObjectsVisited += Tracer.objectsVisited() + RootVisited;

  uint64_t SweepStart = monotonicNanos();
  telemetry::Span SweepSpan(telemetry::EventKind::SweepPhase);
  size_t Reclaimed = TheHeap.sweep(Pool);
  SweepSpan.setEndArg(Reclaimed);
  Stats.BytesReclaimed += Reclaimed;
  Stats.SweepNanos += monotonicNanos() - SweepStart;
}

} // namespace detail
} // namespace gcassert

#endif // GCASSERT_SRC_GC_MARKSWEEPCYCLE_H
