//===- Collector.cpp - Collector interface bits --------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/gc/Collector.h"

#include "gcassert/heap/Heap.h"
#include "gcassert/support/Timer.h"
#include "gcassert/support/WorkerPool.h"
#include "gcassert/telemetry/Metrics.h"

using namespace gcassert;

Collector::Collector(RootProvider &Roots) : Roots(Roots) {}
Collector::~Collector() = default;
RootProvider::~RootProvider() = default;
TraceHooks::~TraceHooks() = default;
OwnershipScanDriver::~OwnershipScanDriver() = default;
PostTraceContext::~PostTraceContext() = default;

void Collector::setGcConfig(const GcConfig &NewConfig) {
  Config = NewConfig;
  if (Config.Threads < 1)
    Config.Threads = 1;
  // Drop a pool of the wrong size; workerPool() re-spawns on demand.
  if (Pool && Pool->workerCount() != Config.Threads)
    Pool.reset();
  if (Config.Threads <= 1)
    Pool.reset();
}

void Collector::finishHardenedCycle(Heap &TheHeap) {
  if (!Hard)
    return;
  if (Hard->full()) {
    // The per-edge checks only see reachable objects; the structural
    // audits cover what the trace cannot — free-list links, remembered-set
    // entries. Repair=true so a detected cycle or cross-link is truncated
    // rather than rediscovered every collection.
    std::vector<HeapDefect> Defects;
    TheHeap.auditStructure(Defects, /*Repair=*/true);
    for (HeapDefect &D : Defects)
      Hard->reportDefect(std::move(D));
  }
  const HardeningCounters &C = Hard->counters();
  Stats.Quarantined = C.QuarantinedTotal;
  Stats.HeapDefects = C.DefectsDetected;
}

void Collector::finishCycleTiming(uint64_t StartNanos, Heap &TheHeap,
                                  bool MinorCycle, bool RecordMaxPause) {
  uint64_t Elapsed = monotonicNanos() - StartNanos;
  Stats.LastGcNanos = Elapsed;
  Stats.TotalGcNanos += Elapsed;
  if (RecordMaxPause && Elapsed > Stats.MaxPauseNanos)
    Stats.MaxPauseNanos = Elapsed;
  ++Stats.Cycles;
  if (MinorCycle)
    ++Stats.MinorCycles;
  telemetry::snapshotCycle(Stats, MinorCycle, TheHeap.liveBytesAfterLastGc(),
                           TheHeap.stats().BytesCapacity);
}

WorkerPool *Collector::workerPool() {
  if (Config.Threads <= 1)
    return nullptr;
  if (!Pool) {
    Pool = std::make_unique<WorkerPool>(Config.Threads);
    // Spawn failures shrink the pool rather than aborting; surface the
    // degradation in the stats.
    Stats.WorkerStartFailures += Pool->spawnFailures();
  }
  return Pool.get();
}
