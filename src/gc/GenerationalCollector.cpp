//===- GenerationalCollector.cpp - Two-generation collector --------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/gc/GenerationalCollector.h"

#include "MarkSweepCycle.h"

#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/Format.h"

#include <cstring>

using namespace gcassert;

namespace {

/// SpaceOps for a minor collection: only nursery objects are "new" —
/// anything already in the old generation terminates the trace (the
/// remembered set covers old-to-nursery edges).
struct MinorSpaceOps {
  GenerationalHeap *TheHeap;

  bool isVisited(ObjRef Obj) const {
    return !TheHeap->inNursery(Obj) || Obj->isForwarded();
  }

  ObjRef visitNew(ObjRef Obj) const { return TheHeap->promote(Obj); }

  ObjRef visitedAddress(ObjRef Obj) const {
    return Obj->isForwarded() ? Obj->forwardingAddress() : Obj;
  }
};

/// Liveness view after a minor collection: nursery objects either forwarded
/// into the old generation or dead; everything else untouched.
class MinorPostTrace : public PostTraceContext {
public:
  MinorPostTrace(GenerationalHeap &TheHeap, uint64_t Cycle)
      : TheHeap(TheHeap), Cycle(Cycle) {}

  ObjRef currentAddress(ObjRef Obj) const override {
    if (!TheHeap.inNursery(Obj))
      return Obj;
    return Obj->isForwarded() ? Obj->forwardingAddress() : nullptr;
  }

  uint64_t cycle() const override { return Cycle; }

private:
  GenerationalHeap &TheHeap;
  uint64_t Cycle;
};

} // namespace

void GenerationalCollector::evacuateNursery() {
  // The minor trace runs with no assertion checks and no path recording:
  // the paper's generational caveat is exactly that these collections skip
  // the checking work.
  telemetry::Span EvacuateSpan(telemetry::EventKind::EvacuatePhase);
  using Core = TraceCore<MinorSpaceOps, false, false>;
  Core Tracer(MinorSpaceOps{&TheHeap}, TheHeap.types(), nullptr, Hard);

  TheHeap.beginMinorCollection();
  Roots.forEachRootSlot([&](ObjRef *Slot) { Tracer.processSlot(Slot); });
  Tracer.drain();

  // Old-to-nursery edges recorded by the write barrier: rescan the fields
  // of every remembered old object. Under hardening each entry is vetted
  // first — scanning through a corrupt entry (e.g. the interior pointer
  // "corrupt.remset" injects) would read a garbage ref map.
  for (Object *Remembered : TheHeap.rememberedSet()) {
    if (GCA_UNLIKELY(Hard != nullptr) &&
        GCA_UNLIKELY(!Hard->validObjectHeader(Remembered))) {
      HeapDefect D;
      D.Kind = DefectKind::RememberedSetCorrupt;
      D.Description =
          format("remembered-set entry %p does not carry a well-formed "
                 "object header; entry skipped",
                 static_cast<void *>(Remembered));
      Hard->reportDefect(std::move(D));
      continue;
    }
    Tracer.scanObjectFields(Remembered);
    Tracer.drain();
  }

  Stats.ObjectsVisited += Tracer.objectsVisited();
  EvacuateSpan.setEndArg(Tracer.objectsVisited());

  if (Hooks) {
    MinorPostTrace Ctx(TheHeap, Stats.Cycles);
    Hooks->onMinorGcComplete(Ctx);
  }

  TheHeap.finishMinorCollection();
}

void GenerationalCollector::evacuateNurseryMarked() {
  // After a full-heap checking trace the nursery mark bits are the ground
  // truth for survival: they include ownees retained only by the ownership
  // phase of a dead owner, which no root or remembered-set path reaches.
  // Re-tracing from roots here (as a plain minor collection does) would
  // drop those objects and the surviving live set would diverge from the
  // non-generational collectors'.
  telemetry::Span EvacuateSpan(telemetry::EventKind::EvacuatePhase);
  TheHeap.beginMinorCollection();

  // Pass 1: promote every marked nursery survivor, leaving a forwarding
  // pointer behind. The copy inherits the mark bit; clear it so the next
  // full trace does not see the promoted object as already visited (the
  // old generation's sweep has already run this cycle).
  std::vector<ObjRef> Promoted;
  TheHeap.forEachNurseryObject([&](ObjRef Obj) {
    if (!Obj->header().isMarked())
      return;
    ObjRef New = TheHeap.promote(Obj);
    New->header().clearMarked();
    Promoted.push_back(New);
  });

  // Pass 2: forward every edge that can reach the nursery — root slots,
  // remembered old objects' fields, and the promoted copies' own fields.
  // A nursery target without a forwarding pointer is dead storage about to
  // be recycled (reachable only as a back edge into a dead owner); every
  // collector family leaves such an edge dangling, so it stays untouched.
  TypeRegistry &Types = TheHeap.types();
  auto Forward = [&](ObjRef *Slot) {
    if (*Slot && TheHeap.inNursery(*Slot) && (*Slot)->isForwarded())
      *Slot = (*Slot)->forwardingAddress();
  };
  auto ForwardFields = [&](ObjRef Obj) {
    const TypeInfo &Type = Types.get(Obj->typeId());
    if (Type.kind() == TypeKind::Class) {
      for (uint32_t Offset : Type.refOffsets())
        Forward(Obj->refSlot(Offset));
    } else if (Type.kind() == TypeKind::RefArray) {
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
        Forward(Obj->elementSlot(I));
    }
  };
  Roots.forEachRootSlot(Forward);
  for (Object *Remembered : TheHeap.rememberedSet()) {
    if (GCA_UNLIKELY(Hard != nullptr) &&
        GCA_UNLIKELY(!Hard->validObjectHeader(Remembered)))
      continue; // Corrupt entry: never scan through it (audit reports it).
    ForwardFields(Remembered);
  }
  for (ObjRef New : Promoted)
    ForwardFields(New);

  Stats.ObjectsVisited += Promoted.size();
  EvacuateSpan.setEndArg(Promoted.size());

  if (Hooks) {
    MinorPostTrace Ctx(TheHeap, Stats.Cycles);
    Hooks->onMinorGcComplete(Ctx);
  }

  TheHeap.finishMinorCollection();
}

void GenerationalCollector::collectMinor() {
  // Pre-flight promotion guard: a worst-case minor collection promotes
  // every nursery byte. If the old generation cannot absorb that — or the
  // "gen.promote.guard" failpoint simulates the prediction — run a major
  // collection instead of risking a fatal promotion failure mid-evacuation
  // (collectMajor sweeps the old generation before evacuating).
  if (TheHeap.oldGenFreeEstimate() < TheHeap.nurseryBytesUsed() ||
      faults::GenPromoteGuard.shouldFail()) {
    ++Stats.GuardTrips;
    if (Hooks)
      Hooks->onMemoryPressure(MemoryPressure::High);
    collectMajor();
    return;
  }

  uint64_t Start = monotonicNanos();
  telemetry::Span Cycle(telemetry::EventKind::GcCycle, Stats.Cycles);
  evacuateNursery();
  finishHardenedCycle(TheHeap);
  finishCycleTiming(Start, TheHeap, /*MinorCycle=*/true);
}

void GenerationalCollector::collectMajor() {
  uint64_t Start = monotonicNanos();
  telemetry::Span Cycle(telemetry::EventKind::GcCycle, Stats.Cycles);

  // Order matters: the checking trace runs over the *whole* graph first
  // (assertions see every object at its current address), the old
  // generation is swept — maximizing room — and only then is the nursery
  // evacuated, driven by the mark bits the full trace left behind.
  // Sweeping first also keeps the fatal promotion-failure path
  // unreachable as long as live data fits the old generation at all.
  FreeListHeap &OldGen = TheHeap.oldGen();
  std::function<void()> PruneRemSet = [this] {
    TheHeap.pruneRememberedSetUnmarked();
  };
  WorkerPool *Pool = workerPool();
  if (Hooks) {
    // As in MarkSweepCollector: §2.7 path recording forces the sequential
    // tracer, so RecordPaths major cycles get no pool. The engine's
    // degradation ladder can veto path recording per cycle.
    if (RecordPaths && Hooks->allowPathRecording())
      detail::runMarkSweepCycle<true, true>(OldGen, Roots, Hooks, Stats,
                                            nullptr, PruneRemSet, Hard);
    else
      detail::runMarkSweepCycle<true, false>(OldGen, Roots, Hooks, Stats, Pool,
                                             PruneRemSet, Hard);
  } else {
    detail::runMarkSweepCycle<false, false>(OldGen, Roots, nullptr, Stats,
                                            Pool, PruneRemSet, Hard);
  }
  evacuateNurseryMarked();
  finishHardenedCycle(TheHeap);
  finishCycleTiming(Start, TheHeap);
}

void GenerationalCollector::collect(const char *Cause) {
  // Explicit requests are full collections (Vm::collectNow must check the
  // registered assertions); allocation pressure takes the generational
  // fast path unless the old generation could not absorb the nursery.
  // The margin is deliberately wide (four nursery capacities): promotion
  // failure is fatal, the free estimate ignores size-class fragmentation,
  // and a worst-case minor collection promotes the whole nursery.
  bool AllocationFailure = Cause && !std::strcmp(Cause, "allocation failure");
  if (AllocationFailure &&
      TheHeap.oldGenFreeEstimate() > 4 * TheHeap.nurseryCapacity()) {
    collectMinor();
    return;
  }
  collectMajor();
}
