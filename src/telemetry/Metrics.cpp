//===- Metrics.cpp - GC metrics registry --------------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/telemetry/Metrics.h"

#include "gcassert/core/AssertionEngine.h"
#include "gcassert/gc/Collector.h"
#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"

#include <bit>

using namespace gcassert;
using namespace gcassert::telemetry;

void Histogram::record(uint64_t Sample) {
  size_t B = static_cast<size_t>(std::bit_width(Sample));
  Buckets[B].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Seen = Min.load(std::memory_order_relaxed);
  while (Sample < Seen &&
         !Min.compare_exchange_weak(Seen, Sample, std::memory_order_relaxed))
    ;
  Seen = Max.load(std::memory_order_relaxed);
  while (Sample > Seen &&
         !Max.compare_exchange_weak(Seen, Sample, std::memory_order_relaxed))
    ;
}

uint64_t Histogram::min() const {
  uint64_t M = Min.load(std::memory_order_relaxed);
  return M == UINT64_MAX ? 0 : M;
}

double Histogram::mean() const {
  uint64_t N = count();
  return N ? static_cast<double>(sum()) / static_cast<double>(N) : 0.0;
}

/// One registered instrument: exactly one of the three members is live,
/// selected by Kind. A tagged struct rather than a variant keeps the
/// atomics' addresses stable and the header light.
struct MetricsRegistry::Instrument {
  enum Kind : uint8_t { KCounter, KGauge, KHistogram };
  explicit Instrument(uint8_t K) : Kind(K) {}
  uint8_t Kind;
  Counter TheCounter;
  Gauge TheGauge;
  Histogram TheHistogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *Registry = new MetricsRegistry();
  return *Registry;
}

MetricsRegistry::Instrument &MetricsRegistry::get(std::string_view Name,
                                                  uint8_t Kind) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Instruments.find(Name);
  if (It == Instruments.end())
    It = Instruments
             .emplace(std::string(Name), std::make_unique<Instrument>(Kind))
             .first;
  if (It->second->Kind != Kind)
    reportFatalError(
        format("metric '%s' requested as two different instrument kinds",
               It->first.c_str())
            .c_str());
  return *It->second;
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  return get(Name, Instrument::KCounter).TheCounter;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  return get(Name, Instrument::KGauge).TheGauge;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  return get(Name, Instrument::KHistogram).TheHistogram;
}

void MetricsRegistry::writeJson(OStream &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto WriteSection = [&](const char *Title, uint8_t Kind, auto &&Body) {
    Out << "\"" << Title << "\":{";
    bool First = true;
    for (const auto &[Name, Inst] : Instruments) {
      if (Inst->Kind != Kind)
        continue;
      if (!First)
        Out << ',';
      First = false;
      Out << "\n  \"" << Name << "\":";
      Body(*Inst);
    }
    Out << "}";
  };

  Out << "{\n";
  WriteSection("counters", Instrument::KCounter, [&](const Instrument &I) {
    Out << I.TheCounter.value();
  });
  Out << ",\n";
  WriteSection("gauges", Instrument::KGauge,
               [&](const Instrument &I) { Out << I.TheGauge.value(); });
  Out << ",\n";
  WriteSection("histograms", Instrument::KHistogram,
               [&](const Instrument &I) {
                 const Histogram &H = I.TheHistogram;
                 Out << format("{\"count\":%llu,\"sum\":%llu,\"min\":%llu,"
                               "\"max\":%llu,\"mean\":%.1f,\"buckets\":{",
                               static_cast<unsigned long long>(H.count()),
                               static_cast<unsigned long long>(H.sum()),
                               static_cast<unsigned long long>(H.min()),
                               static_cast<unsigned long long>(H.max()),
                               H.mean());
                 bool FirstBucket = true;
                 for (size_t B = 0; B != Histogram::NumBuckets; ++B) {
                   uint64_t N = H.bucketCount(B);
                   if (!N)
                     continue;
                   if (!FirstBucket)
                     Out << ',';
                   FirstBucket = false;
                   uint64_t Lo = B == 0 ? 0 : (uint64_t(1) << (B - 1));
                   Out << format("\"%llu\":%llu",
                                 static_cast<unsigned long long>(Lo),
                                 static_cast<unsigned long long>(N));
                 }
                 Out << "}}";
               });
  Out << "\n}\n";
}

bool MetricsRegistry::writeJsonFile(const std::string &Path,
                                    std::string *Error) const {
  std::FILE *Handle = std::fopen(Path.c_str(), "w");
  if (!Handle) {
    if (Error)
      *Error = format("cannot open '%s' for writing", Path.c_str());
    return false;
  }
  {
    FileOStream Out(Handle);
    writeJson(Out);
    Out.flush();
  }
  std::fclose(Handle);
  return true;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Instruments.clear();
}

void telemetry::snapshotCycle(const GcStats &Stats, bool MinorCycle,
                              uint64_t LiveBytes, uint64_t CapacityBytes) {
  MetricsRegistry &M = MetricsRegistry::global();
  // Cumulative GcStats fields mirror with set(): the struct is already the
  // cross-cycle accumulation, so the metric tracks it exactly.
  M.counter("gc.cycles").set(Stats.Cycles);
  M.counter("gc.minor_cycles").set(Stats.MinorCycles);
  M.counter("gc.total_ns").set(Stats.TotalGcNanos);
  M.counter("gc.ownership_ns").set(Stats.OwnershipNanos);
  M.counter("gc.mark_ns").set(Stats.MarkNanos);
  M.counter("gc.sweep_ns").set(Stats.SweepNanos);
  M.counter("gc.objects_visited").set(Stats.ObjectsVisited);
  M.counter("gc.bytes_reclaimed").set(Stats.BytesReclaimed);
  M.counter("gc.steals").set(Stats.Steals);
  M.counter("gc.emergency_collections").set(Stats.EmergencyCollections);
  M.counter("gc.oom_handler_runs").set(Stats.OomHandlerRuns);
  M.counter("gc.path_shed_cycles").set(Stats.PathShedCycles);
  M.counter("gc.bookkeeping_shed_cycles").set(Stats.BookkeepingShedCycles);
  M.counter("gc.guard_trips").set(Stats.GuardTrips);
  M.counter("gc.worker_start_failures").set(Stats.WorkerStartFailures);
  M.counter("gc.quarantined").set(Stats.Quarantined);
  M.counter("gc.heap_defects").set(Stats.HeapDefects);
  M.counter("gc.incremental_cycles").set(Stats.IncrementalCycles);
  M.counter("gc.mark_slices").set(Stats.MarkSlices);
  M.counter("gc.satb_logged_slots").set(Stats.SatbLoggedSlots);
  M.counter("gc.max_pause_ns").set(Stats.MaxPauseNanos);

  M.histogram(MinorCycle ? "gc.minor_pause_ns" : "gc.pause_ns")
      .record(Stats.LastGcNanos);

  M.gauge("gc.live_bytes").set(LiveBytes);
  if (CapacityBytes)
    M.gauge("gc.occupancy")
        .setRatio(static_cast<double>(LiveBytes) /
                  static_cast<double>(CapacityBytes));
}

void telemetry::snapshotEngineCounters(const EngineCounters &Counters) {
  MetricsRegistry &M = MetricsRegistry::global();
  M.counter("engine.assert_dead_calls").set(Counters.AssertDeadCalls);
  M.counter("engine.assert_unshared_calls").set(Counters.AssertUnsharedCalls);
  M.counter("engine.assert_instances_calls")
      .set(Counters.AssertInstancesCalls);
  M.counter("engine.assert_volume_calls").set(Counters.AssertVolumeCalls);
  M.counter("engine.assert_ownedby_calls").set(Counters.AssertOwnedByCalls);
  M.counter("engine.regions_opened").set(Counters.RegionsOpened);
  M.counter("engine.regions_closed").set(Counters.RegionsClosed);
  M.counter("engine.region_objects_logged")
      .set(Counters.RegionObjectsLogged);
  M.counter("engine.violations").set(Counters.ViolationsReported);
  M.counter("engine.ownees_checked").set(Counters.OwneesCheckedTotal);
  M.counter("engine.owners_scanned").set(Counters.OwnersScannedTotal);
  M.counter("engine.gc_cycles").set(Counters.GcCycles);
}
