//===- TraceEvents.cpp - Structured GC tracing --------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/telemetry/TraceEvents.h"

#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"
#include "gcassert/support/Timer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <vector>

using namespace gcassert;
using namespace gcassert::telemetry;

const char *telemetry::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::GcCycle:
    return "gc_cycle";
  case EventKind::OwnershipPhase:
    return "ownership";
  case EventKind::MarkPhase:
    return "mark";
  case EventKind::SweepPhase:
    return "sweep";
  case EventKind::CompactPhase:
    return "compact";
  case EventKind::EvacuatePhase:
    return "evacuate";
  case EventKind::MarkWorker:
    return "mark_worker";
  case EventKind::SweepWorker:
    return "sweep_worker";
  case EventKind::AssertionPass:
    return "assertion_pass";
  case EventKind::DegradationShift:
    return "degradation_shift";
  case EventKind::HardeningDefect:
    return "hardening_defect";
  case EventKind::FailpointTrip:
    return "failpoint_trip";
  case EventKind::Violation:
    return "violation";
  case EventKind::Mutator:
    return "mutator";
  case EventKind::SafepointPark:
    return "safepoint_park";
  case EventKind::SafepointStw:
    return "safepoint_stw";
  case EventKind::Request:
    return "request";
  case EventKind::MarkSlice:
    return "mark_slice";
  }
  return "unknown";
}

namespace {

/// Tracing armed flag: the one relaxed load every disarmed site pays.
std::atomic<bool> TracingArmed{false};

} // namespace

namespace gcassert {
namespace telemetry {

/// Process-wide list of every thread's ring. Registration takes the mutex
/// (once per thread); the exporter takes it to walk the list. Rings are
/// never freed while the process lives — a thread that exits leaves its
/// events readable, exactly like the failpoint registry's intrusive list.
struct RingRegistry {
  std::mutex Mutex;
  TraceRing *Head = nullptr;
  uint16_t NextTid = 1;

  static RingRegistry &get() {
    static RingRegistry Registry;
    return Registry;
  }

  void add(TraceRing &Ring) {
    Ring.NextRegistered = Head;
    Head = &Ring;
  }

  void forEach(const std::function<void(TraceRing &)> &Fn) {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (TraceRing *Ring = Head; Ring; Ring = Ring->NextRegistered)
      Fn(*Ring);
  }
};

} // namespace telemetry
} // namespace gcassert

TraceRing::TraceRing(uint16_t Tid)
    : Slots(new TraceEvent[RingCapacity]), Tid(Tid) {}

TraceRing::~TraceRing() { delete[] Slots; }

void TraceRing::push(EventKind Kind, EventPhase Phase, uint64_t Arg,
                     const char *Name) {
  uint64_t H = Head.load(std::memory_order_relaxed);
  TraceEvent &Slot = Slots[H & (RingCapacity - 1)];
  Slot.Nanos = monotonicNanos();
  Slot.Name = Name;
  Slot.Arg = Arg;
  Slot.Kind = Kind;
  Slot.Phase = Phase;
  Slot.Tid = Tid;
  Head.store(H + 1, std::memory_order_release);
}

uint64_t TraceRing::dropped() const {
  uint64_t Pushed = pushed();
  return Pushed > RingCapacity ? Pushed - RingCapacity : 0;
}

size_t TraceRing::size() const {
  uint64_t Pushed = pushed();
  return Pushed < RingCapacity ? static_cast<size_t>(Pushed) : RingCapacity;
}

const TraceEvent &TraceRing::at(size_t I) const {
  uint64_t Pushed = pushed();
  uint64_t Oldest = Pushed > RingCapacity ? Pushed - RingCapacity : 0;
  return Slots[(Oldest + I) & (RingCapacity - 1)];
}

bool telemetry::tracingEnabled() {
  return TracingArmed.load(std::memory_order_relaxed);
}

namespace {

/// Failpoint-fire observer (support cannot depend on telemetry, so the
/// bridge is this callback): each armed-site fire becomes an instant event
/// named after the site.
void onFailpointFired(const char *SiteName) {
  instant(EventKind::FailpointTrip, 0, SiteName);
}

} // namespace

void telemetry::setTracingEnabled(bool Enable) {
  TracingArmed.store(Enable, std::memory_order_relaxed);
  // Keep the observer installed only while armed — a disarmed process pays
  // nothing on the failpoint fire path either.
  setFailpointFireObserver(Enable ? &onFailpointFired : nullptr);
}

std::string telemetry::armTracingFromEnv() {
  const char *Env = std::getenv("GCASSERT_TRACE");
  if (!Env || !*Env || !std::strcmp(Env, "0"))
    return std::string();
  setTracingEnabled(true);
  return std::string(Env);
}

namespace {

/// Lazily builds and registers this thread's ring. The thread_local pointer
/// keeps the armed emission path lock-free after the first event.
TraceRing &myRing() {
  thread_local TraceRing *Mine = nullptr;
  if (GCA_UNLIKELY(!Mine)) {
    RingRegistry &Registry = RingRegistry::get();
    std::lock_guard<std::mutex> Lock(Registry.Mutex);
    Mine = new TraceRing(Registry.NextTid++);
    Registry.add(*Mine);
  }
  return *Mine;
}

} // namespace

void telemetry::emitSlow(EventKind Kind, EventPhase Phase, uint64_t Arg,
                         const char *Name) {
  myRing().push(Kind, Phase, Arg, Name);
}

namespace {

/// Escapes \p S for a JSON string body. Span names are static literals of
/// printable ASCII, but failpoint site names come from client code.
std::string jsonEscape(const char *S) {
  std::string Out;
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      Out += format("\\u%04x", C);
    } else {
      Out += C;
    }
  }
  return Out;
}

void forEachRing(const std::function<void(TraceRing &)> &Fn) {
  RingRegistry::get().forEach(Fn);
}

} // namespace

void telemetry::writeChromeTrace(OStream &Out) {
  // Snapshot every ring, then merge by timestamp: Perfetto tolerates
  // unsorted events but chrome://tracing renders sorted input faster, and
  // the unit tests assert monotonicity.
  std::vector<TraceEvent> Events;
  uint64_t Dropped = 0;
  forEachRing([&](TraceRing &Ring) {
    size_t N = Ring.size();
    for (size_t I = 0; I != N; ++I)
      Events.push_back(Ring.at(I));
    Dropped += Ring.dropped();
  });
  std::stable_sort(Events.begin(), Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.Nanos < B.Nanos;
                   });

  Out << "{\"traceEvents\":[\n";
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      Out << ",\n";
    First = false;
    const char *Name = E.Name ? E.Name : eventKindName(E.Kind);
    // Microsecond timestamps with the sub-microsecond remainder kept as a
    // fraction: chrome://tracing's native resolution without losing order.
    uint64_t Micros = E.Nanos / 1000;
    unsigned Rem = static_cast<unsigned>(E.Nanos % 1000);
    Out << format("{\"name\":\"%s\",\"cat\":\"gc\",\"ph\":\"%c\","
                  "\"ts\":%llu.%03u,\"pid\":1,\"tid\":%u",
                  jsonEscape(Name).c_str(), static_cast<char>(E.Phase),
                  static_cast<unsigned long long>(Micros), Rem,
                  static_cast<unsigned>(E.Tid));
    if (E.Phase == EventPhase::Instant)
      Out << ",\"s\":\"t\"";
    Out << format(",\"args\":{\"arg\":%llu}}",
                  static_cast<unsigned long long>(E.Arg));
  }
  Out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << format("\"droppedEvents\":%llu",
                static_cast<unsigned long long>(Dropped))
      << "}}\n";
}

bool telemetry::writeChromeTraceFile(const std::string &Path,
                                     std::string *Error) {
  std::FILE *Handle = std::fopen(Path.c_str(), "w");
  if (!Handle) {
    if (Error)
      *Error = format("cannot open '%s' for writing", Path.c_str());
    return false;
  }
  {
    FileOStream Out(Handle);
    writeChromeTrace(Out);
    Out.flush();
  }
  std::fclose(Handle);
  return true;
}

uint64_t telemetry::totalEvents() {
  uint64_t Total = 0;
  forEachRing([&](TraceRing &Ring) { Total += Ring.size(); });
  return Total;
}

uint64_t telemetry::totalDropped() {
  uint64_t Total = 0;
  forEachRing([&](TraceRing &Ring) { Total += Ring.dropped(); });
  return Total;
}

void telemetry::clearAllRings() {
  forEachRing([](TraceRing &Ring) { Ring.clear(); });
}
