//===- Safepoint.cpp - Stop-the-world protocol -------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/runtime/Safepoint.h"

#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/OStream.h"
#include "gcassert/telemetry/TraceEvents.h"

#include <cassert>
#include <chrono>
#include <thread>

using namespace gcassert;

/// How long a rendezvous may wait for the last mutator before the process
/// aborts. A mutator that stays away this long is not slow, it is stuck —
/// a poll-free loop or a deadlock — and waiting longer only converts a
/// diagnosable hang into a silent one. Generous because sanitizer builds
/// run an order of magnitude slower than release.
static constexpr std::chrono::seconds RendezvousTimeout(60);

SafepointCoordinator::SafepointCoordinator() = default;

SafepointCoordinator::~SafepointCoordinator() {
  assert(Registered == 1 &&
         "Vm destroyed while mutator threads are still attached");
}

void SafepointCoordinator::beginStopTheWorld() {
  // Requesters serialize on GcMutex, but a losing requester must keep
  // polling while it waits: the winner's rendezvous counts this thread,
  // and a blocking lock() here would deadlock the pause.
  while (!GcMutex.try_lock()) {
    poll();
    std::this_thread::yield();
  }

  std::unique_lock<std::mutex> L(Mu);
  assert(!Requested.load(std::memory_order_relaxed) &&
         "nested stop-the-world request");
  Requested.store(true, std::memory_order_relaxed);
  telemetry::begin(telemetry::EventKind::SafepointStw, Epoch);

  // "safepoint.timeout" simulates a mutator that never reaches a poll, so
  // the abort diagnostics can be exercised deterministically (the real
  // timeout would need a genuinely wedged thread and a 60 s test).
  bool TimedOut = faults::SafepointTimeout.shouldFail();
  if (!TimedOut) {
    auto Deadline = std::chrono::steady_clock::now() + RendezvousTimeout;
    while (Parked + Safe != Registered - 1) {
      if (CvParked.wait_until(L, Deadline) == std::cv_status::timeout &&
          Parked + Safe != Registered - 1) {
        TimedOut = true;
        break;
      }
    }
  }
  if (GCA_UNLIKELY(TimedOut)) {
    // Diagnostics before dying: how many threads the rendezvous was still
    // missing. The crash-dump providers append the VM state.
    errs() << "safepoint: rendezvous timed out with " << Parked << " parked + "
           << Safe << " safe of " << (Registered - 1)
           << " expected mutators\n";
    reportFatalErrorWithDiagnostics(
        "safepoint rendezvous timed out: a mutator thread failed to reach "
        "a poll site");
  }
}

void SafepointCoordinator::endStopTheWorld() {
  std::unique_lock<std::mutex> L(Mu);
  Requested.store(false, std::memory_order_relaxed);
  ++Epoch;
  CvResume.notify_all();
  // Drain the park before the next requester can begin: a thread still
  // inside parkSlow() from this pause must not be double-counted by the
  // next rendezvous.
  CvDrained.wait(L, [this] { return Parked == 0; });
  telemetry::end(telemetry::EventKind::SafepointStw, Epoch);
  L.unlock();
  GcMutex.unlock();
}

void SafepointCoordinator::parkSlow() {
  std::unique_lock<std::mutex> L(Mu);
  // The flag may have dropped between the poll's relaxed load and here.
  if (!Requested.load(std::memory_order_relaxed))
    return;
  telemetry::begin(telemetry::EventKind::SafepointPark);
  ++Parked;
  CvParked.notify_all();
  uint64_t E = Epoch;
  CvResume.wait(L, [this, E] { return Epoch != E; });
  --Parked;
  if (Parked == 0)
    CvDrained.notify_all();
  telemetry::end(telemetry::EventKind::SafepointPark);
}

void SafepointCoordinator::enterSafe() {
  std::lock_guard<std::mutex> L(Mu);
  ++Safe;
  CvParked.notify_all();
}

void SafepointCoordinator::leaveSafe() {
  std::unique_lock<std::mutex> L(Mu);
  // A stopped world must not regain a running mutator mid-pause.
  CvResume.wait(L,
                [this] { return !Requested.load(std::memory_order_relaxed); });
  --Safe;
}

void SafepointCoordinator::attachCurrentThread() {
  std::unique_lock<std::mutex> L(Mu);
  // Wait out a pending stop: the forming rendezvous counted the threads
  // registered when it began, and a newcomer running managed code during
  // the pause would race the collector.
  CvResume.wait(L,
                [this] { return !Requested.load(std::memory_order_relaxed); });
  ++Registered;
}

void SafepointCoordinator::detachCurrentThread() {
  std::lock_guard<std::mutex> L(Mu);
  assert(Registered > 1 && "detach without attach");
  --Registered;
  // A pending rendezvous may be waiting on this thread; report it gone.
  CvParked.notify_all();
}

unsigned SafepointCoordinator::registeredCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return Registered;
}

uint64_t SafepointCoordinator::epoch() const {
  std::lock_guard<std::mutex> L(Mu);
  return Epoch;
}
