//===- Vm.cpp - Virtual machine facade ---------------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/runtime/Vm.h"

#include "gcassert/gc/GenerationalCollector.h"
#include "gcassert/gc/MarkCompactCollector.h"
#include "gcassert/gc/MarkSweepCollector.h"
#include "gcassert/gc/SemiSpaceCollector.h"
#include "gcassert/heap/CompactHeap.h"
#include "gcassert/heap/FreeListHeap.h"
#include "gcassert/heap/GenerationalHeap.h"
#include "gcassert/heap/HeapHistogram.h"
#include "gcassert/heap/SemiSpaceHeap.h"
#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/OStream.h"
#include "gcassert/telemetry/TraceEvents.h"

#include <mutex>

using namespace gcassert;

static const char *collectorKindName(CollectorKind Kind) {
  switch (Kind) {
  case CollectorKind::MarkSweep:
    return "marksweep";
  case CollectorKind::SemiSpace:
    return "semispace";
  case CollectorKind::MarkCompact:
    return "markcompact";
  case CollectorKind::Generational:
    return "generational";
  }
  return "unknown";
}

Vm::Vm(const VmConfig &Config) : Kind(Config.Collector), OnOom(Config.OnOom) {
  // First VM in the process picks up GCASSERT_FAILPOINTS, so any workload
  // binary can be fault-injected without code changes.
  static std::once_flag EnvFailpointsOnce;
  std::call_once(EnvFailpointsOnce, [] { armFailpointsFromEnv(); });
  switch (Kind) {
  case CollectorKind::MarkSweep: {
    FreeListHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<FreeListHeap>(Types, HeapConfig);
    auto Collector = std::make_unique<MarkSweepCollector>(*Heap, *this);
    // Hardened modes stay on the shared path: its per-pop validation
    // (poison reuse checks, link plausibility) is the point of hardening,
    // and a batched TLAB refill would bypass it.
    if (Config.Tlab && Config.Gc.Hardening == HardeningMode::Off)
      TlabHeap = Heap.get();
    if (Config.Gc.Incremental) {
      IncCollector = Collector.get();
      IncPacing = true;
      IncPaceAllocs = Config.Gc.IncrementalSliceAllocs > 0
                          ? Config.Gc.IncrementalSliceAllocs
                          : 1;
      IncTrigger = Config.Gc.IncrementalTriggerOccupancy;
    }
    TheCollector = std::move(Collector);
    TheHeap = std::move(Heap);
    break;
  }
  case CollectorKind::SemiSpace: {
    SemiSpaceHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<SemiSpaceHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<SemiSpaceCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  case CollectorKind::MarkCompact: {
    CompactHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<CompactHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<MarkCompactCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  case CollectorKind::Generational: {
    GenerationalHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<GenerationalHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<GenerationalCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  }
  TheCollector->setGcConfig(Config.Gc);
  if (Config.Gc.Hardening != HardeningMode::Off) {
    // Must precede the first allocation: stamping starts at attachment,
    // and an unstamped object would read as a checksum mismatch.
    Hard = std::make_unique<HeapHardening>(
        Config.Gc.Hardening, Config.Gc.OnDefect, Config.Gc.OnDefectCallback);
    Hard->attachHeap(*TheHeap);
    TheHeap->setHardening(Hard.get());
    TheCollector->setHardening(Hard.get());
  }
  TlabMaxBytes = Config.TlabMaxBytes;
  Threads.push_back(std::make_unique<MutatorThread>(0, "main"));
  if (TlabHeap)
    Threads.back()->setTlabs(std::make_unique<TlabSet>(TlabMaxBytes));
  if (IncPacing)
    Threads.back()->incrementalCountdown() = IncPaceAllocs;
  Main = Threads.back().get();
  CrashDump.emplace("vm state", [this] { dumpCrashDiagnostics(); });
}

Vm::~Vm() = default;

MutatorThread &Vm::spawnThread(const std::string &Name) {
  std::lock_guard<std::mutex> L(ThreadsMutex);
  Threads.push_back(std::make_unique<MutatorThread>(
      static_cast<uint32_t>(Threads.size()), Name));
  if (TlabHeap)
    Threads.back()->setTlabs(std::make_unique<TlabSet>(TlabMaxBytes));
  if (IncPacing)
    Threads.back()->incrementalCountdown() = IncPaceAllocs;
  return *Threads.back();
}

// Every walk over Threads takes ThreadsMutex: a thread calling
// startMutator is not yet registered with the safepoint protocol when
// spawnThread pushes into the vector, so stopping the world does not
// serialize the push against a concurrent collection's walk. The mutex is
// a leaf lock — spawnThread neither allocates from the GC heap nor waits
// on a safepoint while holding it — so the walks cannot deadlock against
// an attaching thread. Callbacks must not call spawnThread/startMutator.
void Vm::forEachThread(const std::function<void(MutatorThread &)> &Fn) {
  std::lock_guard<std::mutex> L(ThreadsMutex);
  for (auto &Thread : Threads)
    Fn(*Thread);
}

MutatorHandle Vm::startMutator(const std::string &Name,
                               std::function<void(Vm &, MutatorThread &)> Body) {
  MutatorThread &Thread = spawnThread(Name);
  // The MutatorThread context exists before the OS thread runs; the OS
  // thread registers *itself* with the safepoint protocol so a rendezvous
  // forming in this gap simply does not count it yet (its handle stack is
  // empty, so the root scan loses nothing).
  std::thread OsThread([this, &Thread, Body = std::move(Body)] {
    Safepoints.attachCurrentThread();
    {
      telemetry::Span MutatorSpan(telemetry::EventKind::Mutator, Thread.id());
      Body(*this, Thread);
    }
    Safepoints.detachCurrentThread();
  });
  return MutatorHandle(this, std::move(OsThread));
}

void Vm::runMutators(unsigned N, const std::string &NamePrefix,
                     std::function<void(Vm &, MutatorThread &)> Body) {
  std::vector<MutatorHandle> Handles;
  Handles.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Handles.push_back(startMutator(NamePrefix + "-" + std::to_string(I), Body));
  for (MutatorHandle &H : Handles)
    H.join();
}

void MutatorHandle::join() {
  if (!Thread.joinable())
    return;
  // The joined mutator may need a collection to finish; mark this thread
  // safe so it does not block the rendezvous while it waits.
  SafepointSafeScope Safe(Owner->safepoints());
  Thread.join();
}

void Vm::stopTheWorldAndRun(const std::function<void()> &Fn) {
  StopTheWorldScope Stw(Safepoints);
  Fn();
}

void Vm::retireAllTlabs() {
  std::lock_guard<std::mutex> L(ThreadsMutex);
  for (auto &Thread : Threads)
    if (TlabSet *T = Thread->tlabs())
      TlabHeap->retireTlab(*T);
  TlabHeap->dropTlabBlocks();
}

void Vm::runCollectorCycle(const char *Cause) {
  // Give back every thread's TLABs first: the sweep walks blocks cell by
  // cell and must see the unbumped remainder as ordinary free cells.
  if (TlabHeap)
    retireAllTlabs();
  // Cover types registered since the last cycle before the trace loops
  // start reading the checksum cache lock-free.
  if (GCA_UNLIKELY(Hard != nullptr))
    Hard->syncChecksumCache();
  TheCollector->collect(Cause);
  // collect() with an incremental cycle in flight finishes it (see
  // MarkSweepCollector::collect); either way no cycle survives a collect.
  if (GCA_UNLIKELY(IncCollector != nullptr))
    IncCycleRunning.store(false, std::memory_order_relaxed);
  if (GCA_UNLIKELY(static_cast<bool>(PostGcCallback)))
    PostGcCallback();
}

void Vm::finishIncrementalLocked() {
  // Same pre-sweep duties as runCollectorCycle: the terminal pause sweeps,
  // so the heap must be parseable and the checksum cache current.
  if (TlabHeap)
    retireAllTlabs();
  if (GCA_UNLIKELY(Hard != nullptr))
    Hard->syncChecksumCache();
  IncCollector->finishCycle();
  IncCycleRunning.store(false, std::memory_order_relaxed);
  if (GCA_UNLIKELY(static_cast<bool>(PostGcCallback)))
    PostGcCallback();
}

void Vm::incrementalPacePoll() {
  // Cheap pre-checks outside the stop-the-world window: with no cycle in
  // flight and the occupancy trigger off (or unmet), there is nothing to
  // do. bytesInUseApprox is a relaxed mirror, so this read is clean even
  // against concurrent allocators; the real decision repeats under the
  // window below.
  if (!IncCycleRunning.load(std::memory_order_relaxed)) {
    if (IncTrigger <= 0.0)
      return;
    // IncCollector is only set for MarkSweep, so TheHeap is a FreeListHeap.
    auto &FLH = static_cast<FreeListHeap &>(*TheHeap);
    uint64_t Capacity = TheHeap->stats().BytesCapacity;
    if (Capacity == 0 ||
        static_cast<double>(FLH.bytesInUseApprox()) <
            IncTrigger * static_cast<double>(Capacity))
      return;
  }

  StopTheWorldScope Stw(Safepoints);
  if (IncCollector->incrementalActive()) {
    // Types registered since the last pause must be in the checksum cache
    // before this slice's trace reads it lock-free.
    if (GCA_UNLIKELY(Hard != nullptr))
      Hard->syncChecksumCache();
    if (IncCollector->incrementalHasWork())
      IncCollector->markStep();
    if (!IncCollector->incrementalHasWork())
      finishIncrementalLocked();
  } else if (IncTrigger > 0.0) {
    if (GCA_UNLIKELY(Hard != nullptr))
      Hard->syncChecksumCache();
    IncCollector->incrementalBegin("occupancy");
    IncCycleRunning.store(true, std::memory_order_relaxed);
  }
}

void Vm::incrementalBeginNow(const char *Cause) {
  if (!IncCollector)
    return;
  StopTheWorldScope Stw(Safepoints);
  if (IncCollector->incrementalActive())
    return;
  if (GCA_UNLIKELY(Hard != nullptr))
    Hard->syncChecksumCache();
  IncCollector->incrementalBegin(Cause);
  IncCycleRunning.store(true, std::memory_order_relaxed);
}

void Vm::incrementalStepNow() {
  if (!IncCollector)
    return;
  StopTheWorldScope Stw(Safepoints);
  if (!IncCollector->incrementalActive())
    return;
  if (GCA_UNLIKELY(Hard != nullptr))
    Hard->syncChecksumCache();
  if (IncCollector->incrementalHasWork())
    IncCollector->markStep();
  if (!IncCollector->incrementalHasWork())
    finishIncrementalLocked();
}

void Vm::incrementalFinishNow() {
  if (!IncCollector)
    return;
  StopTheWorldScope Stw(Safepoints);
  if (!IncCollector->incrementalActive())
    return;
  finishIncrementalLocked();
}

void Vm::injectHeaderCorruption(ObjRef Obj) {
  // One flipped high bit and one low bit in the type word — the classic
  // single-word memory error. Pushes the id out of the registry's range,
  // so even Check mode (no pointer plausibility) detects it.
  Obj->header().Type ^= 0x00100001u;
}

void Vm::injectRefCorruption(ObjRef Obj) {
  // Scribbles the first reference slot with a pointer into this object's
  // own payload: in-heap and pointer-aligned (so chasing it is not UB),
  // but its "header" is payload bytes — BadTypeId or ChecksumMismatch at
  // the next trace. Objects with no reference slots are left alone.
  const TypeInfo &Type = Types.get(Obj->typeId());
  auto *Interior = reinterpret_cast<ObjRef>(Obj->payload());
  if (Type.kind() == TypeKind::Class && !Type.refOffsets().empty())
    *Obj->refSlot(Type.refOffsets().front()) = Interior;
  else if (Type.kind() == TypeKind::RefArray && Obj->arrayLength() > 0)
    *Obj->elementSlot(0) = Interior;
}

ObjRef Vm::allocateSlowPath(TypeId Id, uint64_t ArrayLength) {
  StopTheWorldScope Stw(Safepoints);

  // Another thread's collection may have freed room while this one waited
  // for the world to stop — retry before paying for a cycle of its own.
  if (ObjRef Obj = TheHeap->allocate(Id, ArrayLength))
    return Obj;

  // Stage 1: the cheapest collection that can help — a generational minor
  // collection under allocation pressure, a full collection otherwise.
  runCollectorCycle("allocation failure");
  ObjRef Obj = TheHeap->allocate(Id, ArrayLength);
  if (Obj)
    return Obj;

  // Stage 2: emergency full collection. For the generational collector
  // this forces a major cycle (old-gen sweep + nursery evacuation); for
  // mark-compact the collection itself defragments. The engine is told
  // first so it can shed optional work for this cycle.
  TheCollector->noteEmergencyCollection();
  notifyMemoryPressure(MemoryPressure::High);
  runCollectorCycle("emergency");
  Obj = TheHeap->allocate(Id, ArrayLength);
  if (Obj)
    return Obj;

  return handleAllocationExhausted(Id, ArrayLength);
}

ObjRef Vm::handleAllocationExhausted(TypeId Id, uint64_t ArrayLength) {
  // Stage 3: the heap stayed full through the whole cascade. Tell the
  // engine (it drops to core-checks-only), then apply the OOM policy.
  notifyMemoryPressure(MemoryPressure::Critical);

  if (OnOom == OomPolicy::RunOomHandlers && !InOomHandlers) {
    uint64_t Needed = Types.allocationSize(Id, ArrayLength);
    InOomHandlers = true;
    // Index-based: a handler may add or remove handlers, and must not be
    // re-entered if its own work allocates (InOomHandlers guards that).
    for (size_t I = 0; I < OomHandlers.size(); ++I) {
      auto Fn = OomHandlers[I].Fn;
      if (!Fn || !Fn(Needed))
        continue;
      TheCollector->noteOomHandlerRun();
      runCollectorCycle("emergency");
      if (ObjRef Obj = TheHeap->allocate(Id, ArrayLength)) {
        InOomHandlers = false;
        return Obj;
      }
    }
    InOomHandlers = false;
  }

  if (OnOom != OomPolicy::Abort) {
    ++OomNullReturns;
    return nullptr;
  }
  reportFatalErrorWithDiagnostics(
      TheHeap->lastAllocFailure() == AllocFailureKind::HostAllocFailed
          ? "out of memory: host allocation failed for large object"
          : "out of memory: heap exhausted even after collection");
}

Vm::OomHandlerId Vm::addOomHandler(std::function<bool(uint64_t)> Fn) {
  OomHandlerId Id = NextOomHandlerId++;
  OomHandlers.push_back({Id, std::move(Fn)});
  return Id;
}

void Vm::removeOomHandler(OomHandlerId Id) {
  for (size_t I = 0; I < OomHandlers.size(); ++I) {
    if (OomHandlers[I].Id == Id) {
      OomHandlers.erase(OomHandlers.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
  }
}

void Vm::notifyMemoryPressure(MemoryPressure Pressure) {
  if (TraceHooks *H = TheCollector->hooks())
    H->onMemoryPressure(Pressure);
}

void Vm::dumpCrashDiagnostics() {
  OStream &Out = errs();
  const HeapStats &HS = TheHeap->stats();
  const GcStats &GS = TheCollector->stats();
  Out << "collector: " << collectorKindName(Kind)
      << " threads=" << TheCollector->gcConfig().Threads << "\n";
  Out << "heap: in-use=" << HS.BytesInUse << " capacity=" << HS.BytesCapacity
      << " allocated=" << HS.BytesAllocated
      << " objects=" << HS.ObjectsAllocated
      << " live-after-gc=" << TheHeap->liveBytesAfterLastGc() << "\n";
  Out << "gc: cycles=" << GS.Cycles << " minor=" << GS.MinorCycles
      << " emergency=" << GS.EmergencyCollections
      << " oom-handler-runs=" << GS.OomHandlerRuns
      << " guard-trips=" << GS.GuardTrips
      << " shed-cycles=" << GS.PathShedCycles << "/"
      << GS.BookkeepingShedCycles
      << " worker-start-failures=" << GS.WorkerStartFailures << "\n";
  if (Hard) {
    const HardeningCounters HC = Hard->counters();
    Out << "hardening: defects=" << HC.DefectsDetected
        << " quarantined=" << HC.QuarantinedTotal
        << " severed-edges=" << HC.SeveredEdges << "\n";
  }
  if (TheHeap->safeToEnumerate()) {
    printHeapHistogram(Out, takeHeapHistogram(*TheHeap), 10);
  } else {
    Out << "heap histogram unavailable (collection in progress)\n";
  }
}

void Vm::setAllocationListener(std::function<void(ObjRef)> Listener) {
  AllocListener = std::move(Listener);
  HasAllocListener = static_cast<bool>(AllocListener);
}

void Vm::collectNow(const char *Cause) {
  StopTheWorldScope Stw(Safepoints);
  runCollectorCycle(Cause);
}

GlobalRootId Vm::addGlobalRoot(ObjRef Obj) {
  if (!FreeGlobalSlots.empty()) {
    GlobalRootId Id = FreeGlobalSlots.back();
    FreeGlobalSlots.pop_back();
    GlobalRoots[Id] = Obj;
    return Id;
  }
  GlobalRoots.push_back(Obj);
  return static_cast<GlobalRootId>(GlobalRoots.size() - 1);
}

void Vm::removeGlobalRoot(GlobalRootId Id) {
  assert(Id < GlobalRoots.size() && "invalid global root id");
  if (Id >= GlobalRoots.size())
    return;
  // Guard against double removal: a duplicate entry in FreeGlobalSlots
  // would hand the same slot to two later addGlobalRoot calls, silently
  // aliasing unrelated roots. Asserts in debug; no-op in release (the
  // linear scan is fine — the free list is short-lived by design).
  bool AlreadyFree = false;
  for (GlobalRootId Free : FreeGlobalSlots)
    if (Free == Id) {
      AlreadyFree = true;
      break;
    }
  assert(!AlreadyFree && "global root removed twice");
  if (AlreadyFree)
    return;
  GlobalRoots[Id] = nullptr;
  FreeGlobalSlots.push_back(Id);
}

void Vm::forEachRootSlot(const std::function<void(ObjRef *)> &Fn) {
  for (ObjRef &Slot : GlobalRoots)
    Fn(&Slot);
  // ThreadsMutex, not the safepoint, orders this against spawnThread: see
  // forEachThread. A thread pushed mid-rendezvous has an empty handle
  // stack, so scanning it early loses nothing.
  std::lock_guard<std::mutex> L(ThreadsMutex);
  for (auto &Thread : Threads)
    Thread->forEachHandleSlot([&](ObjRef *Slot) { Fn(Slot); });
}
