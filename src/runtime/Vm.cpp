//===- Vm.cpp - Virtual machine facade ---------------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/runtime/Vm.h"

#include "gcassert/gc/GenerationalCollector.h"
#include "gcassert/gc/MarkCompactCollector.h"
#include "gcassert/gc/MarkSweepCollector.h"
#include "gcassert/gc/SemiSpaceCollector.h"
#include "gcassert/heap/CompactHeap.h"
#include "gcassert/heap/FreeListHeap.h"
#include "gcassert/heap/GenerationalHeap.h"
#include "gcassert/heap/HeapHistogram.h"
#include "gcassert/heap/SemiSpaceHeap.h"
#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/OStream.h"

#include <mutex>

using namespace gcassert;

static const char *collectorKindName(CollectorKind Kind) {
  switch (Kind) {
  case CollectorKind::MarkSweep:
    return "marksweep";
  case CollectorKind::SemiSpace:
    return "semispace";
  case CollectorKind::MarkCompact:
    return "markcompact";
  case CollectorKind::Generational:
    return "generational";
  }
  return "unknown";
}

Vm::Vm(const VmConfig &Config) : Kind(Config.Collector), OnOom(Config.OnOom) {
  // First VM in the process picks up GCASSERT_FAILPOINTS, so any workload
  // binary can be fault-injected without code changes.
  static std::once_flag EnvFailpointsOnce;
  std::call_once(EnvFailpointsOnce, [] { armFailpointsFromEnv(); });
  switch (Kind) {
  case CollectorKind::MarkSweep: {
    FreeListHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<FreeListHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<MarkSweepCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  case CollectorKind::SemiSpace: {
    SemiSpaceHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<SemiSpaceHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<SemiSpaceCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  case CollectorKind::MarkCompact: {
    CompactHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<CompactHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<MarkCompactCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  case CollectorKind::Generational: {
    GenerationalHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<GenerationalHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<GenerationalCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  }
  TheCollector->setGcConfig(Config.Gc);
  if (Config.Gc.Hardening != HardeningMode::Off) {
    // Must precede the first allocation: stamping starts at attachment,
    // and an unstamped object would read as a checksum mismatch.
    Hard = std::make_unique<HeapHardening>(
        Config.Gc.Hardening, Config.Gc.OnDefect, Config.Gc.OnDefectCallback);
    Hard->attachHeap(*TheHeap);
    TheHeap->setHardening(Hard.get());
    TheCollector->setHardening(Hard.get());
  }
  Threads.push_back(std::make_unique<MutatorThread>(0, "main"));
  CrashDump.emplace("vm state", [this] { dumpCrashDiagnostics(); });
}

Vm::~Vm() = default;

MutatorThread &Vm::spawnThread(const std::string &Name) {
  Threads.push_back(std::make_unique<MutatorThread>(
      static_cast<uint32_t>(Threads.size()), Name));
  return *Threads.back();
}

void Vm::forEachThread(const std::function<void(MutatorThread &)> &Fn) {
  for (auto &Thread : Threads)
    Fn(*Thread);
}

void Vm::runCollectorCycle(const char *Cause) {
  // Cover types registered since the last cycle before the trace loops
  // start reading the checksum cache lock-free.
  if (GCA_UNLIKELY(Hard != nullptr))
    Hard->syncChecksumCache();
  TheCollector->collect(Cause);
  if (GCA_UNLIKELY(static_cast<bool>(PostGcCallback)))
    PostGcCallback();
}

void Vm::injectHeaderCorruption(ObjRef Obj) {
  // One flipped high bit and one low bit in the type word — the classic
  // single-word memory error. Pushes the id out of the registry's range,
  // so even Check mode (no pointer plausibility) detects it.
  Obj->header().Type ^= 0x00100001u;
}

void Vm::injectRefCorruption(ObjRef Obj) {
  // Scribbles the first reference slot with a pointer into this object's
  // own payload: in-heap and pointer-aligned (so chasing it is not UB),
  // but its "header" is payload bytes — BadTypeId or ChecksumMismatch at
  // the next trace. Objects with no reference slots are left alone.
  const TypeInfo &Type = Types.get(Obj->typeId());
  auto *Interior = reinterpret_cast<ObjRef>(Obj->payload());
  if (Type.kind() == TypeKind::Class && !Type.refOffsets().empty())
    *Obj->refSlot(Type.refOffsets().front()) = Interior;
  else if (Type.kind() == TypeKind::RefArray && Obj->arrayLength() > 0)
    *Obj->elementSlot(0) = Interior;
}

ObjRef Vm::allocateSlowPath(TypeId Id, uint64_t ArrayLength) {
  // Stage 1: the cheapest collection that can help — a generational minor
  // collection under allocation pressure, a full collection otherwise.
  runCollectorCycle("allocation failure");
  ObjRef Obj = TheHeap->allocate(Id, ArrayLength);
  if (Obj)
    return Obj;

  // Stage 2: emergency full collection. For the generational collector
  // this forces a major cycle (old-gen sweep + nursery evacuation); for
  // mark-compact the collection itself defragments. The engine is told
  // first so it can shed optional work for this cycle.
  TheCollector->noteEmergencyCollection();
  notifyMemoryPressure(MemoryPressure::High);
  runCollectorCycle("emergency");
  Obj = TheHeap->allocate(Id, ArrayLength);
  if (Obj)
    return Obj;

  return handleAllocationExhausted(Id, ArrayLength);
}

ObjRef Vm::handleAllocationExhausted(TypeId Id, uint64_t ArrayLength) {
  // Stage 3: the heap stayed full through the whole cascade. Tell the
  // engine (it drops to core-checks-only), then apply the OOM policy.
  notifyMemoryPressure(MemoryPressure::Critical);

  if (OnOom == OomPolicy::RunOomHandlers && !InOomHandlers) {
    uint64_t Needed = Types.allocationSize(Id, ArrayLength);
    InOomHandlers = true;
    // Index-based: a handler may add or remove handlers, and must not be
    // re-entered if its own work allocates (InOomHandlers guards that).
    for (size_t I = 0; I < OomHandlers.size(); ++I) {
      auto Fn = OomHandlers[I].Fn;
      if (!Fn || !Fn(Needed))
        continue;
      TheCollector->noteOomHandlerRun();
      runCollectorCycle("emergency");
      if (ObjRef Obj = TheHeap->allocate(Id, ArrayLength)) {
        InOomHandlers = false;
        return Obj;
      }
    }
    InOomHandlers = false;
  }

  if (OnOom != OomPolicy::Abort) {
    ++OomNullReturns;
    return nullptr;
  }
  reportFatalErrorWithDiagnostics(
      TheHeap->lastAllocFailure() == AllocFailureKind::HostAllocFailed
          ? "out of memory: host allocation failed for large object"
          : "out of memory: heap exhausted even after collection");
}

Vm::OomHandlerId Vm::addOomHandler(std::function<bool(uint64_t)> Fn) {
  OomHandlerId Id = NextOomHandlerId++;
  OomHandlers.push_back({Id, std::move(Fn)});
  return Id;
}

void Vm::removeOomHandler(OomHandlerId Id) {
  for (size_t I = 0; I < OomHandlers.size(); ++I) {
    if (OomHandlers[I].Id == Id) {
      OomHandlers.erase(OomHandlers.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
  }
}

void Vm::notifyMemoryPressure(MemoryPressure Pressure) {
  if (TraceHooks *H = TheCollector->hooks())
    H->onMemoryPressure(Pressure);
}

void Vm::dumpCrashDiagnostics() {
  OStream &Out = errs();
  const HeapStats &HS = TheHeap->stats();
  const GcStats &GS = TheCollector->stats();
  Out << "collector: " << collectorKindName(Kind)
      << " threads=" << TheCollector->gcConfig().Threads << "\n";
  Out << "heap: in-use=" << HS.BytesInUse << " capacity=" << HS.BytesCapacity
      << " allocated=" << HS.BytesAllocated
      << " objects=" << HS.ObjectsAllocated
      << " live-after-gc=" << TheHeap->liveBytesAfterLastGc() << "\n";
  Out << "gc: cycles=" << GS.Cycles << " minor=" << GS.MinorCycles
      << " emergency=" << GS.EmergencyCollections
      << " oom-handler-runs=" << GS.OomHandlerRuns
      << " guard-trips=" << GS.GuardTrips
      << " shed-cycles=" << GS.PathShedCycles << "/"
      << GS.BookkeepingShedCycles
      << " worker-start-failures=" << GS.WorkerStartFailures << "\n";
  if (Hard) {
    const HardeningCounters HC = Hard->counters();
    Out << "hardening: defects=" << HC.DefectsDetected
        << " quarantined=" << HC.QuarantinedTotal
        << " severed-edges=" << HC.SeveredEdges << "\n";
  }
  if (TheHeap->safeToEnumerate()) {
    printHeapHistogram(Out, takeHeapHistogram(*TheHeap), 10);
  } else {
    Out << "heap histogram unavailable (collection in progress)\n";
  }
}

void Vm::setAllocationListener(std::function<void(ObjRef)> Listener) {
  AllocListener = std::move(Listener);
  HasAllocListener = static_cast<bool>(AllocListener);
}

void Vm::collectNow(const char *Cause) { runCollectorCycle(Cause); }

GlobalRootId Vm::addGlobalRoot(ObjRef Obj) {
  if (!FreeGlobalSlots.empty()) {
    GlobalRootId Id = FreeGlobalSlots.back();
    FreeGlobalSlots.pop_back();
    GlobalRoots[Id] = Obj;
    return Id;
  }
  GlobalRoots.push_back(Obj);
  return static_cast<GlobalRootId>(GlobalRoots.size() - 1);
}

void Vm::removeGlobalRoot(GlobalRootId Id) {
  assert(Id < GlobalRoots.size() && "invalid global root id");
  if (Id >= GlobalRoots.size())
    return;
  // Guard against double removal: a duplicate entry in FreeGlobalSlots
  // would hand the same slot to two later addGlobalRoot calls, silently
  // aliasing unrelated roots. Asserts in debug; no-op in release (the
  // linear scan is fine — the free list is short-lived by design).
  bool AlreadyFree = false;
  for (GlobalRootId Free : FreeGlobalSlots)
    if (Free == Id) {
      AlreadyFree = true;
      break;
    }
  assert(!AlreadyFree && "global root removed twice");
  if (AlreadyFree)
    return;
  GlobalRoots[Id] = nullptr;
  FreeGlobalSlots.push_back(Id);
}

void Vm::forEachRootSlot(const std::function<void(ObjRef *)> &Fn) {
  for (ObjRef &Slot : GlobalRoots)
    Fn(&Slot);
  for (auto &Thread : Threads)
    Thread->forEachHandleSlot([&](ObjRef *Slot) { Fn(Slot); });
}
