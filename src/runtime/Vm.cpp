//===- Vm.cpp - Virtual machine facade ---------------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/runtime/Vm.h"

#include "gcassert/gc/GenerationalCollector.h"
#include "gcassert/gc/MarkCompactCollector.h"
#include "gcassert/gc/MarkSweepCollector.h"
#include "gcassert/gc/SemiSpaceCollector.h"
#include "gcassert/heap/CompactHeap.h"
#include "gcassert/heap/FreeListHeap.h"
#include "gcassert/heap/GenerationalHeap.h"
#include "gcassert/heap/SemiSpaceHeap.h"
#include "gcassert/support/ErrorHandling.h"

using namespace gcassert;

Vm::Vm(const VmConfig &Config) : Kind(Config.Collector) {
  switch (Kind) {
  case CollectorKind::MarkSweep: {
    FreeListHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<FreeListHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<MarkSweepCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  case CollectorKind::SemiSpace: {
    SemiSpaceHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<SemiSpaceHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<SemiSpaceCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  case CollectorKind::MarkCompact: {
    CompactHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<CompactHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<MarkCompactCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  case CollectorKind::Generational: {
    GenerationalHeapConfig HeapConfig;
    HeapConfig.CapacityBytes = Config.HeapBytes;
    auto Heap = std::make_unique<GenerationalHeap>(Types, HeapConfig);
    TheCollector = std::make_unique<GenerationalCollector>(*Heap, *this);
    TheHeap = std::move(Heap);
    break;
  }
  }
  TheCollector->setGcConfig(Config.Gc);
  Threads.push_back(std::make_unique<MutatorThread>(0, "main"));
}

Vm::~Vm() = default;

MutatorThread &Vm::spawnThread(const std::string &Name) {
  Threads.push_back(std::make_unique<MutatorThread>(
      static_cast<uint32_t>(Threads.size()), Name));
  return *Threads.back();
}

void Vm::forEachThread(const std::function<void(MutatorThread &)> &Fn) {
  for (auto &Thread : Threads)
    Fn(*Thread);
}

ObjRef Vm::allocateSlowPath(TypeId Id, uint64_t ArrayLength) {
  TheCollector->collect("allocation failure");
  ObjRef Obj = TheHeap->allocate(Id, ArrayLength);
  if (Obj)
    return Obj;
  // One more chance with an explicit (always full) collection: the first
  // attempt may have been a generational minor collection that could not
  // help a full old generation.
  TheCollector->collect("explicit");
  Obj = TheHeap->allocate(Id, ArrayLength);
  if (!Obj)
    reportFatalError("out of memory: heap exhausted even after collection");
  return Obj;
}

void Vm::setAllocationListener(std::function<void(ObjRef)> Listener) {
  AllocListener = std::move(Listener);
  HasAllocListener = static_cast<bool>(AllocListener);
}

void Vm::collectNow(const char *Cause) { TheCollector->collect(Cause); }

GlobalRootId Vm::addGlobalRoot(ObjRef Obj) {
  if (!FreeGlobalSlots.empty()) {
    GlobalRootId Id = FreeGlobalSlots.back();
    FreeGlobalSlots.pop_back();
    GlobalRoots[Id] = Obj;
    return Id;
  }
  GlobalRoots.push_back(Obj);
  return static_cast<GlobalRootId>(GlobalRoots.size() - 1);
}

void Vm::removeGlobalRoot(GlobalRootId Id) {
  assert(Id < GlobalRoots.size() && "invalid global root id");
  GlobalRoots[Id] = nullptr;
  FreeGlobalSlots.push_back(Id);
}

void Vm::forEachRootSlot(const std::function<void(ObjRef *)> &Fn) {
  for (ObjRef &Slot : GlobalRoots)
    Fn(&Slot);
  for (auto &Thread : Threads)
    Thread->forEachHandleSlot([&](ObjRef *Slot) { Fn(Slot); });
}
