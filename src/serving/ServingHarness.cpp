//===- ServingHarness.cpp - Latency-SLO harness --------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/serving/ServingHarness.h"

#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/Timer.h"
#include "gcassert/telemetry/TraceEvents.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace gcassert;
using namespace gcassert::serving;

const char *serving::servingWorkloadName(ServingWorkload Workload) {
  switch (Workload) {
  case ServingWorkload::Kv:
    return "kv";
  case ServingWorkload::Oltp:
    return "oltp";
  }
  return "unknown";
}

namespace {

/// Suite-default heap: small enough that per-request garbage keeps the
/// collector busy (the KV live set is ~1.4 MiB at the default config).
constexpr size_t DefaultHeapBytes = 4u << 20;

/// Sleeps until \p DueNanos on the monotonic clock without ever blocking a
/// stop-the-world pause: long waits sleep inside a safepoint-safe scope,
/// the final stretch spins on the poll.
void waitUntilNanos(Vm &V, uint64_t DueNanos) {
  constexpr uint64_t SpinThresholdNanos = 2'000'000;
  for (;;) {
    uint64_t Now = monotonicNanos();
    if (Now >= DueNanos)
      return;
    uint64_t Remaining = DueNanos - Now;
    if (Remaining > SpinThresholdNanos) {
      SafepointSafeScope Safe(V.safepoints());
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(Remaining - SpinThresholdNanos / 2));
    } else {
      V.safepointPoll();
      std::this_thread::yield();
    }
  }
}

} // namespace

ServingResult serving::runServing(const ServingOptions &Options) {
  unsigned Threads = Options.Threads ? Options.Threads : 1;
  uint32_t Partitions = Options.Workload == ServingWorkload::Kv
                            ? Options.Kv.Shards
                            : Options.Oltp.districts();
  if (Partitions == 0 || Partitions % Threads != 0)
    reportFatalError("runServing: Threads must divide the workload's "
                     "partition count (see ServingOptions::Threads)");

  VmConfig Config;
  Config.HeapBytes =
      Options.HeapBytes ? Options.HeapBytes : DefaultHeapBytes;
  Config.Collector = Options.Collector;
  Config.Gc.Threads = Options.GcThreads;
  Vm TheVm(Config);

  RecordingViolationSink LocalSink;
  RecordingViolationSink *Sink = Options.Sink ? Options.Sink : &LocalSink;
  std::unique_ptr<AssertionEngine> Engine;
  if (Options.Config != BenchConfig::Base)
    Engine = std::make_unique<AssertionEngine>(TheVm, Sink);

  WorkloadContext Ctx(TheVm, Engine.get(),
                      Options.Config == BenchConfig::WithAssertions,
                      Options.Seed);

  // Build + prefill on the main thread before any worker exists.
  std::unique_ptr<KvService> Kv;
  std::unique_ptr<OltpService> Oltp;
  if (Options.Workload == ServingWorkload::Kv)
    Kv = std::make_unique<KvService>(Ctx, Options.Kv, Options.Seed);
  else
    Oltp = std::make_unique<OltpService>(Ctx, Options.Oltp, Options.Seed);

  // Per-thread state, indexed by worker id; no synchronization needed —
  // each worker touches only its own slot, and the main thread reads them
  // after the join.
  bool Open = Options.Loop == LoopMode::Open;
  std::vector<ArrivalSchedule> Schedules;
  std::vector<LatencyHistogram> Histograms(Threads);
  std::vector<uint64_t> Overlaps(Threads, 0);
  double OfferedRate = 0;
  for (unsigned T = 0; T != Threads; ++T) {
    uint64_t Count =
        Options.Requests > T ? (Options.Requests - T + Threads - 1) / Threads
                             : 0;
    if (Open) {
      Schedules.emplace_back(Options.Seed ^ (0xA550000ULL + T),
                             Options.OfferedRatePerSec / Threads, Count);
      OfferedRate += Schedules.back().offeredRatePerSec();
    }
  }
  if (!Open)
    OfferedRate = 0; // Closed loop has no offered rate; see below.

  std::atomic<uint64_t> StartNanos{0};
  std::vector<MutatorHandle> Workers;
  Workers.reserve(Threads);
  for (unsigned T = 0; T != Threads; ++T) {
    uint64_t Count =
        Options.Requests > T ? (Options.Requests - T + Threads - 1) / Threads
                             : 0;
    Workers.push_back(TheVm.startMutator(
        "serve-" + std::to_string(T),
        [&, T, Count](Vm &V, MutatorThread &Me) {
          // Wait for the common start signal so every thread's schedule
          // shares one time origin.
          uint64_t Start;
          while ((Start = StartNanos.load(std::memory_order_acquire)) == 0) {
            V.safepointPoll();
            SafepointSafeScope Safe(V.safepoints());
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          const ArrivalSchedule *Sched = Open ? &Schedules[T] : nullptr;
          LatencyHistogram &Hist = Histograms[T];
          for (uint64_t K = 0; K != Count; ++K) {
            uint64_t Index = T + K * Threads;
            uint64_t Due = Start;
            if (Sched) {
              Due = Start + Sched->offsetNanos(K);
              waitUntilNanos(V, Due);
            }
            uint64_t Begin = monotonicNanos();
            uint64_t EpochBefore = V.safepoints().epoch();
            {
              telemetry::Span Span(telemetry::EventKind::Request, Index);
              if (Kv)
                Kv->execute(Ctx, Me, Index);
              else
                Oltp->execute(Ctx, Me, Index);
            }
            uint64_t End = monotonicNanos();
            if (V.safepoints().epoch() != EpochBefore)
              ++Overlaps[T];
            // Open loop charges queueing delay to the request (measured
            // from its scheduled arrival); closed loop measures service
            // time only — the classic coordinated-omission caveat, noted
            // in the report config.
            uint64_t Latency =
                Sched ? (End > Due ? End - Due : 0) : End - Begin;
            Hist.record(Latency);
          }
        }));
  }

  uint64_t RunStart = monotonicNanos();
  StartNanos.store(RunStart, std::memory_order_release);
  for (MutatorHandle &Worker : Workers)
    Worker.join();
  uint64_t ElapsedNanos = monotonicNanos() - RunStart;

  // Final collection: runs every still-pending GC assertion (this is what
  // catches an eviction leak whose victim never saw another cycle).
  TheVm.collectNow("serving-final");

  ServingResult Result;
  for (const LatencyHistogram &Hist : Histograms)
    Result.Latency.merge(Hist);
  Result.Requests = Result.Latency.count();
  for (uint64_t N : Overlaps)
    Result.RequestsOverlappingPause += N;
  Result.ElapsedMillis = static_cast<double>(ElapsedNanos) / 1e6;
  Result.AchievedRatePerSec =
      ElapsedNanos ? static_cast<double>(Result.Requests) * 1e9 /
                         static_cast<double>(ElapsedNanos)
                   : 0;
  Result.OfferedRatePerSec = Open ? OfferedRate : Result.AchievedRatePerSec;
  Result.GcCycles = TheVm.gcStats().Cycles;
  Result.StateDigest = Kv ? Kv->digest() : Oltp->digest();
  Result.LiveEntries = Kv ? Kv->liveEntries() : Oltp->openOrders();
  Result.Violations = Sink->violations().size();
  if (Engine)
    Result.Counters = Engine->counters();
  return Result;
}
