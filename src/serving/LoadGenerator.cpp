//===- LoadGenerator.cpp - Open/closed-loop load --------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/serving/LoadGenerator.h"

#include <cassert>
#include <cmath>

using namespace gcassert;
using namespace gcassert::serving;

const char *gcassert::serving::loopModeName(LoopMode Mode) {
  switch (Mode) {
  case LoopMode::Open:
    return "open";
  case LoopMode::Closed:
    return "closed";
  }
  return "unknown";
}

uint64_t gcassert::serving::exponentialGapNanos(SplitMix64 &Rng,
                                                double RatePerSec) {
  assert(RatePerSec > 0 && "offered rate must be positive");
  // Inverse-CDF sampling: gap = -ln(1 - U) / rate. nextDouble() is in
  // [0, 1), so 1 - U is in (0, 1] and the log is finite.
  double U = Rng.nextDouble();
  double GapSeconds = -std::log(1.0 - U) / RatePerSec;
  return static_cast<uint64_t>(GapSeconds * 1e9);
}

ArrivalSchedule::ArrivalSchedule(uint64_t Seed, double RatePerSec,
                                 uint64_t Count) {
  SplitMix64 Rng(Seed);
  Offsets.reserve(Count);
  uint64_t Now = 0;
  for (uint64_t I = 0; I != Count; ++I) {
    Now += exponentialGapNanos(Rng, RatePerSec);
    Offsets.push_back(Now);
  }
}

double ArrivalSchedule::offeredRatePerSec() const {
  if (Offsets.empty() || Offsets.back() == 0)
    return 0.0;
  return static_cast<double>(Offsets.size()) * 1e9 /
         static_cast<double>(Offsets.back());
}
