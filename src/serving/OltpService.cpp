//===- OltpService.cpp - Order-entry OLTP workload -----------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/serving/OltpService.h"

#include "gcassert/support/ErrorHandling.h"
#include "gcassert/workloads/Common.h"

#include <cstring>

using namespace gcassert;
using namespace gcassert::serving;

namespace {

/// Byte offset of the named field; aborts if absent (layout mismatch).
uint32_t fieldOffset(const TypeInfo &Info, const char *Name) {
  for (const FieldInfo &Field : Info.fields())
    if (Field.Name == Name)
      return Field.Offset;
  reportFatalError("serving order type is missing an expected field");
}

uint64_t requestSeed(uint64_t Seed, uint64_t Index) {
  SplitMix64 G(Seed ^ ((Index + 1) * 0x9e3779b97f4a7c15ULL));
  return G.next();
}

/// How many open orders each district starts with.
constexpr uint32_t PrefillOrders = 32;

} // namespace

OltpService::OltpService(WorkloadContext &Ctx, const OltpConfig &Config,
                         uint64_t Seed)
    : Cfg(Config), Seed(Seed) {
  Vm &V = Ctx.vm();
  LineArrayType = ensureObjectArrayType(V.types());
  ItemType = ensureByteArrayType(V.types());
  ScratchType = ensureLongArrayType(V.types());
  if (const TypeInfo *Info = V.types().lookup("Lserving/Order;")) {
    OrderType = Info->id();
    OrderLinesField = fieldOffset(*Info, "lines");
    OrderSeqField = fieldOffset(*Info, "seq");
    OrderAmountField = fieldOffset(*Info, "amount");
  } else {
    TypeBuilder B(V.types(), "Lserving/Order;");
    OrderLinesField = B.addRef("lines");
    OrderSeqField = B.addScalar("seq", 8);
    OrderAmountField = B.addScalar("amount", 8);
    OrderType = B.build();
  }

  MutatorThread &Main = V.mainThread();
  uint32_t N = Cfg.districts();
  Districts.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    auto D = std::make_unique<District>();
    D->Orders = std::make_unique<ManagedBTree>(V, Main);
    Districts.push_back(std::move(D));
  }
  // Prefill each order book; runs on the main thread before any worker
  // starts, so the locks are not needed yet.
  for (uint32_t I = 0; I != N; ++I) {
    for (uint32_t K = 0; K != PrefillOrders; ++K) {
      SplitMix64 Rng(requestSeed(Seed ^ 0xfeedULL, I * PrefillOrders + K));
      newOrder(Ctx, Main, *Districts[I], Rng, /*TakeLock=*/false);
    }
  }
}

OltpService::~OltpService() = default;

void OltpService::lockDistrict(Vm &V, District &D) {
  if (D.Mutex.try_lock())
    return;
  // Same discipline as KvService::lockShard: wait as a safepoint-safe
  // thread so a holder parked at an allocation poll can never deadlock
  // the stop-the-world rendezvous against us.
  SafepointSafeScope Safe(V.safepoints());
  D.Mutex.lock();
}

void OltpService::deliverOldest(WorkloadContext &Ctx, District &D,
                                uint32_t MaxBatch, uint64_t FloorSize) {
  while (MaxBatch-- && D.Orders->size() > FloorSize) {
    int64_t Key;
    ObjRef Order = D.Orders->minValue(&Key);
    if (!Order)
      return;
    D.Orders->erase(Key);
    // The order (with its line array and items) just became unreachable;
    // no allocation happens before our caller's handles unwind, so the
    // flag is registered on a stable, truly-dead reference.
    Ctx.assertDead(Order);
    ++D.Stats.OrdersDelivered;
  }
}

void OltpService::newOrder(WorkloadContext &Ctx, MutatorThread &T,
                           District &D, SplitMix64 &Rng, bool TakeLock) {
  Vm &V = Ctx.vm();
  HandleScope Scope(T);

  // Build the order outside the district lock: a line array referencing
  // 1..MaxItemsPerOrder item payloads, then the Order object itself.
  uint32_t Lines = 1 + static_cast<uint32_t>(
                           Rng.nextBelow(Cfg.MaxItemsPerOrder));
  Local LinesArr = Scope.handle(V.allocate(T, LineArrayType, Lines));
  uint64_t Amount = 0;
  for (uint32_t I = 0; I != Lines; ++I) {
    Local Item = Scope.handle(V.allocate(T, ItemType, Cfg.ItemBytes));
    uint64_t Price = Rng.nextBelow(1000);
    std::memcpy(Item.get()->arrayData(), &Price, sizeof(Price));
    Amount += Price;
    LinesArr.get()->setElement(I, Item.get());
    Item.set(nullptr);
  }
  Local Order = Scope.handle(V.allocate(T, OrderType));
  Order.get()->setRef(OrderLinesField, LinesArr.get());
  Order.get()->setScalar<int64_t>(OrderAmountField,
                                  static_cast<int64_t>(Amount));

  if (TakeLock)
    lockDistrict(V, D);
  std::unique_lock<std::mutex> Lock(D.Mutex, std::defer_lock);
  if (TakeLock)
    Lock = std::unique_lock<std::mutex>(D.Mutex, std::adopt_lock);

  ++D.Stats.NewOrders;
  D.Stats.OrderLines += Lines;
  int64_t Seq = D.NextSeq++;
  Order.get()->setScalar<int64_t>(OrderSeqField, Seq);
  D.Orders->insert(T, Seq, Order);
  // §2.5.2: the order must stay reachable through its district's book
  // until delivery erases it. Registered after insert so the ownership
  // holds at the very next collection; our handle is an extra root edge,
  // which the ownership phase tolerates (it marks ownees before the root
  // trace runs).
  Ctx.assertOwnedBy(D.Orders->treeObject(), Order.get());
  deliverOldest(Ctx, D, Cfg.MaxOpenOrders, Cfg.MaxOpenOrders);
}

void OltpService::execute(WorkloadContext &Ctx, MutatorThread &T,
                          uint64_t Index) {
  Vm &V = Ctx.vm();
  SplitMix64 Rng(requestSeed(Seed, Index));
  District &D = *Districts[Index % Cfg.districts()];
  uint64_t Op = Rng.nextBelow(100);

  if (Op < 70) {
    newOrder(Ctx, T, D, Rng, /*TakeLock=*/true);
  } else if (Op < 90) {
    // Order status: a bounded scan over recent orders summing amounts and
    // line counts. scanFrom never allocates, so the raw references the
    // callback sees stay stable.
    lockDistrict(V, D);
    std::lock_guard<std::mutex> Lock(D.Mutex, std::adopt_lock);
    ++D.Stats.StatusChecks;
    int64_t Start =
        D.NextSeq > 0
            ? static_cast<int64_t>(
                  Rng.nextBelow(static_cast<uint64_t>(D.NextSeq)))
            : 0;
    uint64_t Sum = 0;
    D.Stats.StatusOrdersRead += D.Orders->scanFrom(
        Start, 8, [&Sum, this](int64_t, ObjRef Order) {
          Sum += static_cast<uint64_t>(
              Order->getScalar<int64_t>(OrderAmountField));
          ObjRef Lines = Order->getRef(OrderLinesField);
          Sum ^= Lines ? Lines->arrayLength() : 0;
        });
    (void)Sum;
  } else {
    // Delivery batch: pop up to 4 oldest open orders.
    lockDistrict(V, D);
    std::lock_guard<std::mutex> Lock(D.Mutex, std::adopt_lock);
    ++D.Stats.Deliveries;
    deliverOldest(Ctx, D, 4, 0);
  }

  // Request scratch in an allocation region closed with assert-alldead
  // (§2.3.2) — the per-request arena. Sized (longs, so 8x bytes) so a
  // trial's worth of requests turns the heap over and the run serves
  // across collections.
  Ctx.startRegion(T);
  {
    HandleScope Scope(T);
    uint64_t Len = 96 + Rng.nextBelow(160);
    Local Scratch = Scope.handle(V.allocate(T, ScratchType, Len));
    if (Scratch) {
      uint64_t Tag = Index;
      std::memcpy(Scratch.get()->arrayData(), &Tag, sizeof(Tag));
    }
  }
  Ctx.assertAllDead(T);
}

uint64_t OltpService::digest() const {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (const auto &D : Districts) {
    H ^= static_cast<uint64_t>(D->NextSeq);
    H *= 0x100000001b3ULL;
    D->Orders->forEach([&H, this](int64_t Key, ObjRef Order) {
      H ^= static_cast<uint64_t>(Key) * 0x9e3779b97f4a7c15ULL;
      H *= 0x100000001b3ULL;
      if (Order) {
        H ^= static_cast<uint64_t>(
            Order->getScalar<int64_t>(OrderAmountField));
        H *= 0x100000001b3ULL;
        ObjRef Lines = Order->getRef(OrderLinesField);
        H ^= Lines ? Lines->arrayLength() : 0;
        H *= 0x100000001b3ULL;
      }
    });
  }
  return H;
}

uint64_t OltpService::openOrders() const {
  uint64_t Total = 0;
  for (const auto &D : Districts)
    Total += D->Orders->size();
  return Total;
}

OltpStats OltpService::stats() const {
  OltpStats Out;
  for (const auto &D : Districts) {
    Out.NewOrders += D->Stats.NewOrders;
    Out.OrderLines += D->Stats.OrderLines;
    Out.StatusChecks += D->Stats.StatusChecks;
    Out.StatusOrdersRead += D->Stats.StatusOrdersRead;
    Out.Deliveries += D->Stats.Deliveries;
    Out.OrdersDelivered += D->Stats.OrdersDelivered;
  }
  return Out;
}
