//===- KvService.cpp - Managed KV serving workload ----------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/serving/KvService.h"

#include "gcassert/support/FaultInjection.h"
#include "gcassert/workloads/Common.h"

#include <cstring>

using namespace gcassert;
using namespace gcassert::serving;

namespace {

/// Per-request RNG seed: a SplitMix64 step over (Seed, Index) so adjacent
/// indices get uncorrelated streams.
uint64_t requestSeed(uint64_t Seed, uint64_t Index) {
  SplitMix64 G(Seed ^ ((Index + 1) * 0x9e3779b97f4a7c15ULL));
  return G.next();
}

void stampValue(ObjRef Val, uint64_t Stamp) {
  std::memcpy(Val->arrayData(), &Stamp, sizeof(Stamp));
}

uint64_t readStamp(ObjRef Val) {
  uint64_t Stamp;
  std::memcpy(&Stamp, Val->arrayData(), sizeof(Stamp));
  return Stamp;
}

} // namespace

KvService::KvService(WorkloadContext &Ctx, const KvConfig &Config,
                     uint64_t Seed)
    : Cfg(Config), Seed(Seed) {
  Vm &V = Ctx.vm();
  ValueType = ensureByteArrayType(V.types());
  MutatorThread &Main = V.mainThread();
  Shards.reserve(Cfg.Shards);
  for (uint32_t I = 0; I != Cfg.Shards; ++I) {
    auto S = std::make_unique<Shard>();
    S->Tree = std::make_unique<ManagedBTree>(V, Main);
    Shards.push_back(std::move(S));
  }
  // Prefill every shard to its live cap so eviction pressure exists from
  // the first request. Runs on the main thread before any worker starts,
  // so no shard lock is needed.
  for (uint32_t I = 0; I != Cfg.Shards; ++I) {
    Shard &S = *Shards[I];
    for (uint32_t K = 0; K != Cfg.LiveCapPerShard; ++K) {
      int64_t Key = static_cast<int64_t>(I) +
                    static_cast<int64_t>(Cfg.Shards) * static_cast<int64_t>(K);
      HandleScope Scope(Main);
      Local Val = Scope.handle(V.allocate(Main, ValueType, Cfg.ValueBytes));
      stampValue(Val.get(), static_cast<uint64_t>(Key));
      S.Tree->insert(Key, Val);
      S.Fifo.push_back(Key);
    }
  }
}

KvService::~KvService() = default;

void KvService::lockShard(Vm &V, Shard &S) {
  if (S.Mutex.try_lock())
    return;
  // The holder may be parked at an allocation poll mid-request; waiting
  // inside a safe scope lets the stop-the-world rendezvous count us as
  // stopped so that collection (and then the holder) can finish.
  SafepointSafeScope Safe(V.safepoints());
  S.Mutex.lock();
}

void KvService::evictOverCap(WorkloadContext &Ctx, Shard &S) {
  while (S.Tree->size() > Cfg.LiveCapPerShard && !S.Fifo.empty()) {
    int64_t Victim = S.Fifo.front();
    S.Fifo.pop_front();
    ObjRef Val = S.Tree->find(Victim);
    if (!Val)
      continue; // Stale FIFO entry: a request erased this key already.
    ++S.Stats.Evictions;
    if (faults::KvEvictLeak.shouldFail()) {
      // Simulated eviction leak: the policy forgets the entry but the tree
      // keeps it, so the value stays reachable forever. The assertDead
      // below is the §2.3.1 check that catches exactly this at the next
      // collection.
      ++S.Stats.LeakedEvictions;
    } else {
      S.Tree->erase(Victim);
    }
    Ctx.assertDead(Val);
  }
}

void KvService::execute(WorkloadContext &Ctx, MutatorThread &T,
                        uint64_t Index) {
  Vm &V = Ctx.vm();
  SplitMix64 Rng(requestSeed(Seed, Index));
  Shard &S = *Shards[Index % Cfg.Shards];
  uint64_t Op = Rng.nextBelow(100);
  int64_t Key =
      static_cast<int64_t>(Index % Cfg.Shards) +
      static_cast<int64_t>(Cfg.Shards) *
          static_cast<int64_t>(Rng.nextBelow(Cfg.KeysPerShard));

  if (Op < 55) {
    // GET: read the value back and assert it unshared — the tree's entry
    // array holds its only incoming edge, and this path takes no handle
    // and performs no allocation between find() and registration, so the
    // raw reference is stable and no extra edge ever exists.
    lockShard(V, S);
    std::lock_guard<std::mutex> Lock(S.Mutex, std::adopt_lock);
    ++S.Stats.Gets;
    if (ObjRef Val = S.Tree->find(Key)) {
      ++S.Stats.GetHits;
      (void)readStamp(Val);
      Ctx.assertUnshared(Val);
    }
  } else if (Op < 85) {
    // PUT: allocate the new value outside the lock, then swap it in. An
    // overwritten value becomes unreachable the moment insert() replaces
    // the entry slot; it is flagged dead after insert returns, with no
    // poll between the flag and the handle scope closing.
    HandleScope Scope(T);
    Local NewVal = Scope.handle(V.allocate(T, ValueType, Cfg.ValueBytes));
    stampValue(NewVal.get(), Index);
    lockShard(V, S);
    std::lock_guard<std::mutex> Lock(S.Mutex, std::adopt_lock);
    ++S.Stats.Puts;
    Local OldVal = Scope.handle(S.Tree->find(Key));
    S.Tree->insert(T, Key, NewVal);
    if (OldVal) {
      ++S.Stats.Overwrites;
      ObjRef Old = OldVal.get();
      OldVal.set(nullptr);
      Ctx.assertDead(Old);
    } else {
      S.Fifo.push_back(Key);
      evictOverCap(Ctx, S);
    }
  } else if (Op < 95) {
    // SCAN: a bounded range read. scanFrom never allocates, so the raw
    // references handed to the callback stay stable throughout.
    lockShard(V, S);
    std::lock_guard<std::mutex> Lock(S.Mutex, std::adopt_lock);
    ++S.Stats.Scans;
    uint64_t Sum = 0;
    S.Stats.ScannedPairs += S.Tree->scanFrom(
        Key, Cfg.ScanLimit, [&Sum](int64_t K, ObjRef Val) {
          Sum ^= readStamp(Val) + static_cast<uint64_t>(K);
        });
    (void)Sum;
  } else {
    // ERASE: remove and flag dead. No allocation on this path.
    lockShard(V, S);
    std::lock_guard<std::mutex> Lock(S.Mutex, std::adopt_lock);
    ++S.Stats.Erases;
    if (ObjRef Val = S.Tree->find(Key)) {
      S.Tree->erase(Key);
      Ctx.assertDead(Val);
    }
  }

  // Response scratch: per-request garbage in an allocation region, closed
  // with assert-alldead (§2.3.2) — the serving analog of a request arena.
  // Sized so a trial's worth of requests turns the heap over and the run
  // actually serves across collections (the suite heap is 4 MiB).
  Ctx.startRegion(T);
  {
    HandleScope Scope(T);
    uint64_t Len = 1024 + Rng.nextBelow(1024);
    Local Resp = Scope.handle(V.allocate(T, ValueType, Len));
    if (Resp)
      stampValue(Resp.get(), Index);
  }
  Ctx.assertAllDead(T);
}

uint64_t KvService::digest() const {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (const auto &S : Shards) {
    S->Tree->forEach([&H](int64_t Key, ObjRef Val) {
      H ^= static_cast<uint64_t>(Key) * 0x9e3779b97f4a7c15ULL;
      H *= 0x100000001b3ULL;
      H ^= Val ? readStamp(Val) : 0;
      H *= 0x100000001b3ULL;
    });
  }
  return H;
}

uint64_t KvService::liveEntries() const {
  uint64_t Total = 0;
  for (const auto &S : Shards)
    Total += S->Tree->size();
  return Total;
}

KvStats KvService::stats() const {
  KvStats Out;
  for (const auto &S : Shards) {
    Out.Gets += S->Stats.Gets;
    Out.GetHits += S->Stats.GetHits;
    Out.Puts += S->Stats.Puts;
    Out.Overwrites += S->Stats.Overwrites;
    Out.Scans += S->Stats.Scans;
    Out.ScannedPairs += S->Stats.ScannedPairs;
    Out.Erases += S->Stats.Erases;
    Out.Evictions += S->Stats.Evictions;
    Out.LeakedEvictions += S->Stats.LeakedEvictions;
  }
  return Out;
}
