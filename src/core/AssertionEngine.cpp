//===- AssertionEngine.cpp - GC assertions ------------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/AssertionEngine.h"

#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/Format.h"
#include "gcassert/telemetry/TraceEvents.h"

#include <algorithm>

using namespace gcassert;

AssertionEngine::AssertionEngine(Vm &TheVm, ViolationSink *Sink)
    : TheVm(TheVm), Sink(Sink) {
  if (!this->Sink) {
    DefaultSink = std::make_unique<ConsoleViolationSink>();
    this->Sink = DefaultSink.get();
  }
  for (ReactionPolicy &Policy : Reactions)
    Policy = ReactionPolicy::LogAndContinue;
  TheVm.collector().setHooks(this);
}

AssertionEngine::~AssertionEngine() {
  if (TheVm.collector().hooks() == this)
    TheVm.collector().setHooks(nullptr);
  // Detach any open region logs from their threads; the allocation path
  // must not write into freed storage.
  for (ThreadRegionState &State : RegionStates)
    State.Thread->setRegionLog(nullptr);
}

void AssertionEngine::setSink(ViolationSink *NewSink) {
  if (NewSink) {
    Sink = NewSink;
    return;
  }
  if (!DefaultSink)
    DefaultSink = std::make_unique<ConsoleViolationSink>();
  Sink = DefaultSink.get();
}

//===----------------------------------------------------------------------===//
// Assertion interface
//===----------------------------------------------------------------------===//

void AssertionEngine::applyInstances(TypeId Type, uint32_t Limit) {
  TheVm.types().get(Type).setInstanceLimit(Limit);
  if (std::find(TrackedTypes.begin(), TrackedTypes.end(), Type) ==
      TrackedTypes.end())
    TrackedTypes.push_back(Type);
}

void AssertionEngine::applyClearInstances(TypeId Type) {
  TheVm.types().get(Type).clearInstanceLimit();
  TrackedTypes.erase(
      std::remove(TrackedTypes.begin(), TrackedTypes.end(), Type),
      TrackedTypes.end());
}

void AssertionEngine::applyVolume(TypeId Type, uint64_t LimitBytes) {
  TheVm.types().get(Type).setVolumeLimit(LimitBytes);
  if (std::find(VolumeTrackedTypes.begin(), VolumeTrackedTypes.end(),
                Type) == VolumeTrackedTypes.end())
    VolumeTrackedTypes.push_back(Type);
}

void AssertionEngine::applyClearVolume(TypeId Type) {
  TheVm.types().get(Type).clearVolumeLimit();
  VolumeTrackedTypes.erase(std::remove(VolumeTrackedTypes.begin(),
                                       VolumeTrackedTypes.end(), Type),
                           VolumeTrackedTypes.end());
}

void AssertionEngine::applyRegistration(const DeferredRegistration &R) {
  switch (R.Kind) {
  case DeferredRegistration::Op::Dead:
    R.A->header().setFlag(HF_Dead);
    break;
  case DeferredRegistration::Op::Unshared:
    R.A->header().setFlag(HF_Unshared);
    break;
  case DeferredRegistration::Op::Instances:
    applyInstances(R.Type, static_cast<uint32_t>(R.Limit));
    break;
  case DeferredRegistration::Op::ClearInstances:
    applyClearInstances(R.Type);
    break;
  case DeferredRegistration::Op::Volume:
    applyVolume(R.Type, R.Limit);
    break;
  case DeferredRegistration::Op::ClearVolume:
    applyClearVolume(R.Type);
    break;
  case DeferredRegistration::Op::OwnedBy:
    Ownership.add(R.A, R.B);
    break;
  }
}

void AssertionEngine::assertDeadLocked(ObjRef Obj) {
  assert(Obj && "assert-dead requires a non-null object");
  ++Counters.AssertDeadCalls;
  if (SnapshotActive) {
    DeferredRegistration R;
    R.Kind = DeferredRegistration::Op::Dead;
    R.A = Obj;
    DeferredRegs.push_back(R);
    return;
  }
  Obj->header().setFlag(HF_Dead);
}

void AssertionEngine::assertDead(ObjRef Obj) {
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  assertDeadLocked(Obj);
}

void AssertionEngine::assertUnshared(ObjRef Obj) {
  assert(Obj && "assert-unshared requires a non-null object");
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  ++Counters.AssertUnsharedCalls;
  if (SnapshotActive) {
    DeferredRegistration R;
    R.Kind = DeferredRegistration::Op::Unshared;
    R.A = Obj;
    DeferredRegs.push_back(R);
    return;
  }
  Obj->header().setFlag(HF_Unshared);
}

void AssertionEngine::assertInstances(TypeId Type, uint32_t Limit) {
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  ++Counters.AssertInstancesCalls;
  if (SnapshotActive) {
    DeferredRegistration R;
    R.Kind = DeferredRegistration::Op::Instances;
    R.Type = Type;
    R.Limit = Limit;
    DeferredRegs.push_back(R);
    return;
  }
  applyInstances(Type, Limit);
}

void AssertionEngine::clearInstances(TypeId Type) {
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  if (SnapshotActive) {
    DeferredRegistration R;
    R.Kind = DeferredRegistration::Op::ClearInstances;
    R.Type = Type;
    DeferredRegs.push_back(R);
    return;
  }
  applyClearInstances(Type);
}

void AssertionEngine::assertVolume(TypeId Type, uint64_t LimitBytes) {
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  ++Counters.AssertVolumeCalls;
  if (SnapshotActive) {
    DeferredRegistration R;
    R.Kind = DeferredRegistration::Op::Volume;
    R.Type = Type;
    R.Limit = LimitBytes;
    DeferredRegs.push_back(R);
    return;
  }
  applyVolume(Type, LimitBytes);
}

void AssertionEngine::clearVolume(TypeId Type) {
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  if (SnapshotActive) {
    DeferredRegistration R;
    R.Kind = DeferredRegistration::Op::ClearVolume;
    R.Type = Type;
    DeferredRegs.push_back(R);
    return;
  }
  applyClearVolume(Type);
}

void AssertionEngine::assertOwnedBy(ObjRef Owner, ObjRef Ownee) {
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  ++Counters.AssertOwnedByCalls;
  if (SnapshotActive) {
    DeferredRegistration R;
    R.Kind = DeferredRegistration::Op::OwnedBy;
    R.A = Owner;
    R.B = Ownee;
    DeferredRegs.push_back(R);
    return;
  }
  Ownership.add(Owner, Ownee);
}

AssertionEngine::ThreadRegionState &
AssertionEngine::regionStateFor(MutatorThread &Thread) {
  for (ThreadRegionState &State : RegionStates)
    if (State.Thread == &Thread)
      return State;
  RegionStates.push_back(ThreadRegionState{&Thread, {}});
  return RegionStates.back();
}

void AssertionEngine::startRegion(MutatorThread &Thread) {
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  ++Counters.RegionsOpened;
  ThreadRegionState &State = regionStateFor(Thread);
  State.Stack.push_back(std::make_unique<std::vector<ObjRef>>());
  Thread.setRegionLog(State.Stack.back().get());
}

void AssertionEngine::assertAllDead(MutatorThread &Thread) {
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  ThreadRegionState &State = regionStateFor(Thread);
  if (State.Stack.empty())
    reportFatalError("assert-alldead without a matching start-region");

  ++Counters.RegionsClosed;
  std::unique_ptr<std::vector<ObjRef>> Log = std::move(State.Stack.back());
  State.Stack.pop_back();
  Thread.setRegionLog(State.Stack.empty() ? nullptr
                                          : State.Stack.back().get());

  // The paper implements assert-alldead by "calling assert-dead on each
  // object in the queue" (§2.3.2). Entries whose objects already died were
  // pruned after each intervening GC, so everything left is still live.
  Counters.RegionObjectsLogged += Log->size();
  for (ObjRef Obj : *Log)
    assertDeadLocked(Obj);
}

//===----------------------------------------------------------------------===//
// TraceHooks implementation
//===----------------------------------------------------------------------===//

void AssertionEngine::setShedConfig(const ShedConfig &Config) {
  Shed = Config;
  DegradationLevel Target = occupancyTarget().Level;
  if (Target > Level)
    Level = Target;
}

AssertionEngine::DegradationTarget AssertionEngine::occupancyTarget() const {
  uint64_t Capacity = TheVm.heap().stats().BytesCapacity;
  double Occupancy =
      Capacity == 0 ? 0.0
                    : static_cast<double>(TheVm.heap().liveBytesAfterLastGc()) /
                          static_cast<double>(Capacity);
  if (Occupancy >= Shed.ShedBookkeepingAt)
    return {DegradationLevel::CoreOnly, Occupancy};
  if (Occupancy >= Shed.ShedPathsAt)
    return {DegradationLevel::NoPaths, Occupancy};
  return {DegradationLevel::Full, Occupancy};
}

void AssertionEngine::updateDegradationLevel() {
  auto [Target, Occupancy] = occupancyTarget();

  // Hysteresis: hold the current level until occupancy clears its shed
  // threshold by RestoreMargin, then step down one level per cycle.
  if (Target < Level) {
    double Gate = (Level == DegradationLevel::CoreOnly ? Shed.ShedBookkeepingAt
                                                       : Shed.ShedPathsAt) -
                  Shed.RestoreMargin;
    if (Occupancy >= Gate)
      Target = Level;
    else if (static_cast<uint8_t>(Level) - static_cast<uint8_t>(Target) > 1)
      Target = static_cast<DegradationLevel>(static_cast<uint8_t>(Level) - 1);
  }

  // Escalations latched from the runtime's emergency cascade outrank the
  // occupancy signal for a few cycles.
  if (PressureHoldRemaining > 0) {
    --PressureHoldRemaining;
    if (PressureLatch > Target)
      Target = PressureLatch;
  } else {
    PressureLatch = DegradationLevel::Full;
  }

  // Injected pressure: each "engine.shed" firing pushes one level down.
  if (faults::EngineShed.shouldFail()) {
    DegradationLevel Next =
        Level == DegradationLevel::CoreOnly
            ? DegradationLevel::CoreOnly
            : static_cast<DegradationLevel>(static_cast<uint8_t>(Level) + 1);
    if (Next > Target)
      Target = Next;
  }

  if (Target != Level)
    telemetry::instant(telemetry::EventKind::DegradationShift,
                       static_cast<uint64_t>(Target));
  Level = Target;
}

void AssertionEngine::onMemoryPressure(MemoryPressure Pressure) {
  DegradationLevel Wanted = Pressure == MemoryPressure::Critical
                                ? DegradationLevel::CoreOnly
                                : DegradationLevel::NoPaths;
  if (Wanted > PressureLatch)
    PressureLatch = Wanted;
  PressureHoldRemaining = Shed.PressureHoldCycles;
  // Escalate immediately, not just at the next onGcBegin: the emergency
  // collection that follows samples allowPathRecording() first.
  if (Wanted > Level) {
    telemetry::instant(telemetry::EventKind::DegradationShift,
                       static_cast<uint64_t>(Wanted));
    Level = Wanted;
  }
}

void AssertionEngine::onSnapshotOpen() {
  // Runs with the world stopped, so no mutator can hold RegistrationMutex;
  // taking it anyway makes the flag's visibility to later registrations a
  // plain same-mutex story.
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  SnapshotActive = true;
  assert(DeferredRegs.empty() && "leftover deferred registrations");
}

void AssertionEngine::onSnapshotClose() {
  std::lock_guard<std::mutex> Lock(RegistrationMutex);
  SnapshotActive = false;
  // FIFO replay: a clear must not undo a later assert. The sweep already
  // ran, and every deferred target was nameable by a mutator during the
  // cycle — hence snapshot-reachable or allocated black — so it survived.
  for (const DeferredRegistration &R : DeferredRegs)
    applyRegistration(R);
  DeferredRegs.clear();
}

void AssertionEngine::onGcBegin(uint64_t Cycle) {
  updateDegradationLevel();
  if (Level != DegradationLevel::Full)
    TheVm.collector().noteShedCycle(Level == DegradationLevel::CoreOnly);

  CurrentCycle = Cycle;
  ++Counters.GcCycles;
  CurrentOwner = nullptr;
  DeferredOwnees.clear();
  UnsharedReportedThisCycle.clear();
  OverlapReportedThisCycle.clear();

  Ownership.beginCycle();
  for (TypeId Type : TrackedTypes)
    TheVm.types().get(Type).resetLiveCount();
  for (TypeId Type : VolumeTrackedTypes)
    TheVm.types().get(Type).resetLiveBytes();
}

void AssertionEngine::runOwnershipPhase(OwnershipScanDriver &Driver) {
  if (Ownership.size() == 0)
    return;

  for (ObjRef Owner : Ownership.owners()) {
    CurrentOwner = Owner;
    ++Counters.OwnersScannedTotal;
    Driver.scanChildrenOf(Owner);
    // Resume scanning below the ownees this owner's region truncated at;
    // the truncation exists to keep owner regions from bleeding into each
    // other through back edges (§2.5.2), not to skip the ownees' subtrees.
    InDeferredScan = true;
    while (!DeferredOwnees.empty()) {
      ObjRef Ownee = DeferredOwnees.back();
      DeferredOwnees.pop_back();
      Driver.scanObject(Ownee);
    }
    InDeferredScan = false;
  }
  CurrentOwner = nullptr;
}

PreRootAction AssertionEngine::classifyPreRoot(ObjRef Obj) {
  uint32_t Flags = Obj->header().Flags;

  if (Flags & HF_Ownee) {
    ObjRef Owner = Ownership.lookupOwner(Obj);
    if (Owner == CurrentOwner) {
      Obj->header().setFlag(HF_Owned);
      DeferredOwnees.push_back(Obj);
      return PreRootAction::Truncate;
    }
    if (Owner) {
      // Reached an ownee of a *different* owner. When this happens while
      // scanning directly out of the current owner's region, the owner
      // regions overlap — the paper's "improper use of the assertion"
      // warning (§2.5.2). When it happens below a deferred ownee (e.g. an
      // application back-reference from one collection's element to
      // another's), it is an ordinary truncation boundary: the foreign
      // ownee is marked here, and its own owner's scan — if it ran earlier
      // — already established its Owned bit. Either way the object is
      // never deferred into the *current* owner's queue and its Owned bit
      // is left alone, so overlap can hide a missing-path violation for
      // that ownee this cycle (the paper's disjointness restriction) but
      // never fabricates one.
      if (!InDeferredScan && Level != DegradationLevel::CoreOnly &&
          OverlapReportedThisCycle.insert(Obj).second) {
        Violation V;
        V.Kind = AssertionKind::OwnershipOverlap;
        V.Cycle = CurrentCycle;
        V.ObjectType = TheVm.types().get(Obj->typeId()).name();
        V.Message = "improper use of assert-ownedby: ownee reached from a "
                    "different owner's region (owner regions overlap)";
        emit(std::move(V));
      }
      // Still defer it: once marked here, its own owner's scan will skip
      // it, so this is the only chance to scan its children (soundness).
      DeferredOwnees.push_back(Obj);
      return PreRootAction::Truncate;
    }
    // Stale ownee bit (should not happen; be conservative and continue).
  }

  if (Obj == CurrentOwner) {
    // The owner's region cycles back to the owner. Never visit the owner
    // from its own scan: its liveness must be established by the root scan.
    return PreRootAction::Skip;
  }

  if (Flags & HF_Owner) {
    // Another owner: mark it and stop — it gets its own scan (§2.5.2
    // Phase 1).
    return PreRootAction::Truncate;
  }

  return PreRootAction::Continue;
}

void AssertionEngine::onDeadReachable(ObjRef Obj,
                                      const std::vector<ObjRef> &Path,
                                      TracePhase Phase) {
  std::lock_guard<std::mutex> Lock(ParallelHookMutex);
  Violation V;
  V.Kind = AssertionKind::Dead;
  V.Cycle = CurrentCycle;
  V.ObjectType = TheVm.types().get(Obj->typeId()).name();
  V.Message = "an object that was asserted dead is reachable";
  V.Path = buildPath(Path);
  V.PathFromOwner = Phase == TracePhase::Ownership;
  emit(std::move(V));
}

bool AssertionEngine::severDeadReferences() const {
  return reaction(AssertionKind::Dead) == ReactionPolicy::ForceTrue;
}

void AssertionEngine::onUnsharedShared(ObjRef Obj,
                                       const std::vector<ObjRef> &Path) {
  std::lock_guard<std::mutex> Lock(ParallelHookMutex);
  // An object with many incoming edges would otherwise be reported once per
  // extra edge; one report per object per collection is enough.
  if (!UnsharedReportedThisCycle.insert(Obj).second)
    return;

  Violation V;
  V.Kind = AssertionKind::Unshared;
  V.Cycle = CurrentCycle;
  V.ObjectType = TheVm.types().get(Obj->typeId()).name();
  V.Message = "an object that was asserted unshared has more than one "
              "incoming reference (second path shown)";
  V.Path = buildPath(Path);
  emit(std::move(V));
}

void AssertionEngine::onUnownedOwnee(ObjRef Obj,
                                     const std::vector<ObjRef> &Path) {
  std::lock_guard<std::mutex> Lock(ParallelHookMutex);
  Violation V;
  V.Kind = AssertionKind::OwnedBy;
  V.Cycle = CurrentCycle;
  V.ObjectType = TheVm.types().get(Obj->typeId()).name();
  V.Message = "an object is reachable but not through its asserted owner";
  V.Path = buildPath(Path);
  emit(std::move(V));
}

void AssertionEngine::onTraceComplete(PostTraceContext &Ctx) {
  // assert-instances: compare the counts tracing accumulated against the
  // limits (§2.4.1: "at the end of GC, we iterate through our list of
  // tracked types").
  for (TypeId Type : TrackedTypes) {
    TypeInfo &Info = TheVm.types().get(Type);
    if (Info.liveCount() > Info.instanceLimit()) {
      Violation V;
      V.Kind = AssertionKind::Instances;
      V.Cycle = CurrentCycle;
      V.ObjectType = Info.name();
      V.Message =
          format("type %s has %u live instances at GC (limit %u)",
                 Info.name().c_str(), Info.liveCount(), Info.instanceLimit());
      emit(std::move(V));
    }
  }

  // assert-volume: §2.4's "total volume" constraint, checked like the
  // instance limits.
  for (TypeId Type : VolumeTrackedTypes) {
    TypeInfo &Info = TheVm.types().get(Type);
    if (Info.liveBytes() > Info.volumeLimit()) {
      Violation V;
      V.Kind = AssertionKind::Volume;
      V.Cycle = CurrentCycle;
      V.ObjectType = Info.name();
      V.Message = format(
          "type %s occupies %llu live bytes at GC (limit %llu)",
          Info.name().c_str(),
          static_cast<unsigned long long>(Info.liveBytes()),
          static_cast<unsigned long long>(Info.volumeLimit()));
      emit(std::move(V));
    }
  }

  Counters.OwneesCheckedLastGc = Ownership.lookupsThisCycle();
  Counters.OwneesCheckedTotal += Ownership.lookupsThisCycle();

  // Resolve last cycle's orphaned ownees: their owner died then, and their
  // pair is gone, so this cycle's liveness is genuine (no ownership phase
  // scanned from the dead owner any more).
  // The orphan watch is optional bookkeeping: CoreOnly cycles neither
  // resolve pending orphans nor enqueue new ones (the list is still
  // cleared — stale entries must not resurface at a later address).
  if (Level != DegradationLevel::CoreOnly) {
    for (ObjRef Orphan : OrphanedOwnees) {
      ObjRef Current = Ctx.currentAddress(Orphan);
      if (!Current)
        continue; // Died with (or shortly after) its owner: fine.
      Violation V;
      V.Kind = AssertionKind::OwneeOutlivedOwner;
      V.Cycle = CurrentCycle;
      // currentAddress() must return a dereferenceable post-GC address (the
      // PostTraceContext contract — moving collectors invoke this hook only
      // after survivors are in place). Orphan, the pre-GC address, may be
      // stale by now.
      V.ObjectType = TheVm.types().get(Current->typeId()).name();
      V.Message = "an owned object is still reachable although its owner "
                  "was collected";
      emit(std::move(V));
    }
  }
  OrphanedOwnees.clear();

  // Prune and translate the ownership table (§3.1.2: "we must remove each
  // unreachable ownee after a GC"). Ownees whose owner died are watched
  // for one cycle (see OrphanedOwnees).
  Ownership.pruneAfterGc(
      [&](ObjRef Obj) { return Ctx.currentAddress(Obj); },
      [&](ObjRef Owner, ObjRef Ownee) {
        (void)Owner;
        if (Level != DegradationLevel::CoreOnly)
          OrphanedOwnees.push_back(Ownee);
      });

  // Prune region logs: entries for objects that died are dropped, and under
  // a moving collector surviving entries are rewritten to the new address.
  for (ThreadRegionState &State : RegionStates) {
    for (std::unique_ptr<std::vector<ObjRef>> &Log : State.Stack) {
      size_t Out = 0;
      std::vector<ObjRef> &Entries = *Log;
      for (ObjRef Entry : Entries)
        if (ObjRef Current = Ctx.currentAddress(Entry))
          Entries[Out++] = Current;
      Entries.resize(Out);
    }
  }
}

void AssertionEngine::onMinorGcComplete(PostTraceContext &Ctx) {
  // A generational minor collection: nursery survivors moved to the old
  // generation and the rest died. No assertion is *checked* here (§2.2 —
  // only full-heap collections check), but every weak table must follow
  // the moves. Owners that died in the nursery hand their live ownees to
  // the orphan watch, resolved at the next major collection.
  auto Translate = [&](ObjRef Obj) { return Ctx.currentAddress(Obj); };
  auto Orphan = [&](ObjRef, ObjRef Ownee) {
    if (Level != DegradationLevel::CoreOnly)
      OrphanedOwnees.push_back(Ownee);
  };
  Ownership.translatePending(Translate, Orphan);
  Ownership.pruneAfterGc(Translate, Orphan);

  size_t Out = 0;
  for (ObjRef Entry : OrphanedOwnees)
    if (ObjRef Current = Ctx.currentAddress(Entry))
      OrphanedOwnees[Out++] = Current;
  OrphanedOwnees.resize(Out);

  for (ThreadRegionState &State : RegionStates) {
    for (std::unique_ptr<std::vector<ObjRef>> &Log : State.Stack) {
      size_t LogOut = 0;
      std::vector<ObjRef> &Entries = *Log;
      for (ObjRef Entry : Entries)
        if (ObjRef Current = Ctx.currentAddress(Entry))
          Entries[LogOut++] = Current;
      Entries.resize(LogOut);
    }
  }
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

/// True if \p SlotValue refers to \p Target, looking through a forwarding
/// pointer in either direction (a path captured mid-copying-trace mixes
/// from-space and to-space addresses).
static bool refersTo(ObjRef SlotValue, ObjRef Target) {
  if (!SlotValue)
    return false;
  if (SlotValue == Target)
    return true;
  if (SlotValue->isForwarded() && SlotValue->forwardingAddress() == Target)
    return true;
  if (Target->isForwarded() && Target->forwardingAddress() == SlotValue)
    return true;
  return false;
}

std::vector<PathStep>
AssertionEngine::buildPath(const std::vector<ObjRef> &Chain) const {
  std::vector<PathStep> Steps;
  // Shed levels drop the §2.7 path entirely. The tracer already ran
  // without recording, so Chain holds at most the leaf object; resolving
  // even that would report a misleading one-step "path".
  if (Level != DegradationLevel::Full)
    return Steps;
  Steps.reserve(Chain.size());
  const TypeRegistry &Types = TheVm.types();

  for (size_t I = 0, E = Chain.size(); I != E; ++I) {
    PathStep Step;
    const TypeInfo &Type = Types.get(Chain[I]->typeId());
    Step.TypeName = Type.name();

    if (ResolveFieldNames && I > 0) {
      ObjRef Parent = Chain[I - 1];
      const TypeInfo &ParentType = Types.get(Parent->typeId());
      if (ParentType.kind() == TypeKind::Class) {
        for (uint32_t Offset : ParentType.refOffsets()) {
          if (refersTo(Parent->getRef(Offset), Chain[I])) {
            if (const FieldInfo *Field = ParentType.fieldAtOffset(Offset))
              Step.FieldName = Field->Name;
            break;
          }
        }
      } else if (ParentType.kind() == TypeKind::RefArray) {
        for (uint64_t J = 0, N = Parent->arrayLength(); J != N; ++J) {
          if (refersTo(Parent->getElement(J), Chain[I])) {
            Step.FieldName = format("[%llu]", static_cast<unsigned long long>(J));
            break;
          }
        }
      }
    }
    Steps.push_back(std::move(Step));
  }
  return Steps;
}

void AssertionEngine::emit(Violation V) {
  ++Counters.ViolationsReported;
  telemetry::instant(telemetry::EventKind::Violation,
                     static_cast<uint64_t>(V.Kind));
  ReactionPolicy Policy = reaction(V.Kind);
  Sink->report(V);
  if (Policy == ReactionPolicy::LogAndHalt)
    reportFatalError("halting on GC assertion violation (LogAndHalt)");
}
