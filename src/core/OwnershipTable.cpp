//===- OwnershipTable.cpp - Owner/ownee pairs ---------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/OwnershipTable.h"

#include <algorithm>
#include <cassert>

using namespace gcassert;

static bool pairLess(const OwnershipTable::Pair &A,
                     const OwnershipTable::Pair &B) {
  return A.Ownee < B.Ownee;
}

void OwnershipTable::add(ObjRef Owner, ObjRef Ownee) {
  assert(Owner && Ownee && "assert-ownedby requires non-null objects");
  assert(Owner != Ownee && "an object cannot own itself");
  Owner->header().setFlag(HF_Owner);
  Ownee->header().setFlag(HF_Ownee);
  PendingAdds.push_back({Ownee, Owner});
}

void OwnershipTable::beginCycle() {
  CycleLookups = 0;

  if (!PendingAdds.empty()) {
    // Apply pending additions: update in place when the ownee is already
    // registered (re-assertion replaces the owner), otherwise collect the
    // genuinely new pairs and merge them in sorted order. Later additions
    // win over earlier ones for the same ownee; a stable sort keyed on the
    // ownee keeps that property so deduplication is a linear scan rather
    // than a quadratic lookup (whole benchmark iterations of assertOwnedBy
    // calls can be pending at once).
    std::stable_sort(PendingAdds.begin(), PendingAdds.end(), pairLess);
    std::vector<Pair> NewPairs;
    NewPairs.reserve(PendingAdds.size());
    for (const Pair &Add : PendingAdds) {
      if (!NewPairs.empty() && NewPairs.back().Ownee == Add.Ownee) {
        NewPairs.back().Owner = Add.Owner; // Later assertion wins.
        continue;
      }
      auto It = std::lower_bound(Pairs.begin(), Pairs.end(), Add, pairLess);
      if (It != Pairs.end() && It->Ownee == Add.Ownee) {
        It->Owner = Add.Owner;
        continue;
      }
      NewPairs.push_back(Add);
    }
    PendingAdds.clear();

    if (!NewPairs.empty()) {
      size_t OldSize = Pairs.size();
      Pairs.insert(Pairs.end(), NewPairs.begin(), NewPairs.end());
      std::inplace_merge(Pairs.begin(), Pairs.begin() + OldSize, Pairs.end(),
                         pairLess);
    }
    rebuildOwners();
  }

  // A fresh cycle: no ownee has been proven owned yet.
  for (const Pair &P : Pairs)
    P.Ownee->header().clearFlag(HF_Owned);
}

void OwnershipTable::rebuildOwners() {
  // Clear the Owner bit on the previous owner set first: an owner whose
  // pairs were all replaced must stop being treated as an owner.
  for (ObjRef Owner : Owners)
    Owner->header().clearFlag(HF_Owner);

  Owners.clear();
  for (const Pair &P : Pairs)
    Owners.push_back(P.Owner);
  std::sort(Owners.begin(), Owners.end());
  Owners.erase(std::unique(Owners.begin(), Owners.end()), Owners.end());
  for (ObjRef Owner : Owners)
    Owner->header().setFlag(HF_Owner);
}

ObjRef OwnershipTable::lookupOwner(ObjRef Ownee) {
  ++CycleLookups;
  ++TotalLookups;
  Pair Key{Ownee, nullptr};
  auto It = std::lower_bound(Pairs.begin(), Pairs.end(), Key, pairLess);
  if (It != Pairs.end() && It->Ownee == Ownee)
    return It->Owner;
  return nullptr;
}

void OwnershipTable::forEachPair(
    const std::function<void(const Pair &)> &Fn) const {
  for (const Pair &P : Pairs)
    Fn(P);
}

void OwnershipTable::translatePending(
    const std::function<ObjRef(ObjRef)> &CurrentAddress,
    const std::function<void(ObjRef, ObjRef)> &OnOwneeOutlivedOwner) {
  size_t Out = 0;
  for (const Pair &P : PendingAdds) {
    ObjRef NewOwnee = CurrentAddress(P.Ownee);
    if (!NewOwnee)
      continue;
    ObjRef NewOwner = CurrentAddress(P.Owner);
    if (!NewOwner) {
      OnOwneeOutlivedOwner(P.Owner, NewOwnee);
      NewOwnee->header().clearFlag(HF_Ownee);
      NewOwnee->header().clearFlag(HF_Owned);
      continue;
    }
    PendingAdds[Out++] = {NewOwnee, NewOwner};
  }
  PendingAdds.resize(Out);
}

void OwnershipTable::pruneAfterGc(
    const std::function<ObjRef(ObjRef)> &CurrentAddress,
    const std::function<void(ObjRef, ObjRef)> &OnOwneeOutlivedOwner) {
  std::vector<Pair> Survivors;
  Survivors.reserve(Pairs.size());
  bool AnyMoved = false;

  for (const Pair &P : Pairs) {
    ObjRef NewOwnee = CurrentAddress(P.Ownee);
    if (!NewOwnee)
      continue; // The ownee died: the assertion is satisfied and retired.
    AnyMoved |= NewOwnee != P.Ownee;

    ObjRef NewOwner = CurrentAddress(P.Owner);
    if (!NewOwner) {
      // The owner died but the ownee is still reachable: the ownee is about
      // to outlive its owner.
      OnOwneeOutlivedOwner(P.Owner, NewOwnee);
      NewOwnee->header().clearFlag(HF_Ownee);
      NewOwnee->header().clearFlag(HF_Owned);
      continue;
    }
    Survivors.push_back({NewOwnee, NewOwner});
  }

  // Clear the Owner bit through the *translated* addresses: under a moving
  // collector the surviving copy carries the stale bit, and a stale Owner
  // bit would make a future ownership phase truncate scanning at this
  // object — an under-marking soundness bug.
  for (ObjRef Owner : Owners)
    if (ObjRef NewOwner = CurrentAddress(Owner))
      NewOwner->header().clearFlag(HF_Owner);

  // The old owner list must NOT be handed to rebuildOwners(): its clearing
  // pass would write through pre-GC addresses, and after a compacting slide
  // those alias the interior of other live objects (a one-bit flag clear in
  // the middle of someone's reference field). The translated clears above
  // already retired every stale bit.
  Owners.clear();

  // Addresses change only under a moving collector; a non-moving cycle
  // leaves the surviving subsequence already sorted.
  if (AnyMoved)
    std::sort(Survivors.begin(), Survivors.end(), pairLess);
  Pairs = std::move(Survivors);
  rebuildOwners();
}
