//===- Violation.cpp - Assertion violations ----------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/Violation.h"

#include "gcassert/support/OStream.h"

using namespace gcassert;

ViolationSink::~ViolationSink() = default;

const char *gcassert::assertionKindName(AssertionKind Kind) {
  switch (Kind) {
  case AssertionKind::Dead:
    return "assert-dead";
  case AssertionKind::Unshared:
    return "assert-unshared";
  case AssertionKind::Instances:
    return "assert-instances";
  case AssertionKind::Volume:
    return "assert-volume";
  case AssertionKind::OwnedBy:
    return "assert-ownedby";
  case AssertionKind::OwnershipOverlap:
    return "assert-ownedby (overlap)";
  case AssertionKind::OwneeOutlivedOwner:
    return "assert-ownedby (owner died)";
  }
  return "unknown";
}

void gcassert::printViolation(OStream &Out, const Violation &V) {
  Out << "Warning: " << V.Message << '\n';
  if (!V.ObjectType.empty())
    Out << "Type: " << V.ObjectType << '\n';
  if (!V.Path.empty()) {
    Out << (V.PathFromOwner ? "Path from owner to object:" : "Path to object:")
        << '\n';
    for (size_t I = 0, E = V.Path.size(); I != E; ++I) {
      const PathStep &Step = V.Path[I];
      Out << Step.TypeName;
      if (!Step.FieldName.empty())
        Out << " (via " << Step.FieldName << ')';
      if (I + 1 != E)
        Out << " ->";
      Out << '\n';
    }
  }
}

void ConsoleViolationSink::report(const Violation &V) {
  OStream &Stream = Out ? *Out : errs();
  printViolation(Stream, V);
  Stream.flush();
}

size_t RecordingViolationSink::countOf(AssertionKind Kind) const {
  size_t Count = 0;
  for (const Violation &V : Violations)
    if (V.Kind == Kind)
      ++Count;
  return Count;
}
