//===- PathFinder.cpp - Post-hoc path queries ---------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/PathFinder.h"

#include "gcassert/support/Format.h"

#include <deque>
#include <unordered_map>

using namespace gcassert;

namespace {

/// Shared BFS over the reachable object graph. Calls \p Visit for every
/// first-discovered object with its BFS parent (null for root referents);
/// stops early when Visit returns false.
template <typename VisitT> void breadthFirst(Vm &TheVm, VisitT Visit) {
  std::deque<ObjRef> Queue;
  std::unordered_map<ObjRef, ObjRef> Parent;

  bool Stopped = false;
  auto Discover = [&](ObjRef Obj, ObjRef From) {
    if (!Obj || Stopped)
      return;
    if (!Parent.emplace(Obj, From).second)
      return;
    if (!Visit(Obj, From)) {
      Stopped = true;
      return;
    }
    Queue.push_back(Obj);
  };

  TheVm.forEachRootSlot([&](ObjRef *Slot) { Discover(*Slot, nullptr); });

  TypeRegistry &Types = TheVm.types();
  while (!Queue.empty() && !Stopped) {
    ObjRef Obj = Queue.front();
    Queue.pop_front();
    const TypeInfo &Type = Types.get(Obj->typeId());
    switch (Type.kind()) {
    case TypeKind::Class:
      for (uint32_t Offset : Type.refOffsets())
        Discover(Obj->getRef(Offset), Obj);
      break;
    case TypeKind::RefArray:
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
        Discover(Obj->getElement(I), Obj);
      break;
    case TypeKind::DataArray:
      break;
    }
  }
}

/// Field name of the edge From -> To, or "" if unresolvable.
std::string edgeName(TypeRegistry &Types, ObjRef From, ObjRef To) {
  const TypeInfo &Type = Types.get(From->typeId());
  if (Type.kind() == TypeKind::Class) {
    for (uint32_t Offset : Type.refOffsets())
      if (From->getRef(Offset) == To)
        if (const FieldInfo *Field = Type.fieldAtOffset(Offset))
          return Field->Name;
  } else if (Type.kind() == TypeKind::RefArray) {
    for (uint64_t I = 0, E = From->arrayLength(); I != E; ++I)
      if (From->getElement(I) == To)
        return format("[%llu]", static_cast<unsigned long long>(I));
  }
  return std::string();
}

} // namespace

std::optional<std::vector<PathStep>> PathFinder::findPath(ObjRef Target) {
  std::unordered_map<ObjRef, ObjRef> Parent;
  bool Found = false;

  // Re-run the BFS capturing parents; stop as soon as Target is discovered.
  std::deque<ObjRef> Queue;
  auto Discover = [&](ObjRef Obj, ObjRef From) {
    if (!Obj || Found)
      return;
    if (!Parent.emplace(Obj, From).second)
      return;
    if (Obj == Target) {
      Found = true;
      return;
    }
    Queue.push_back(Obj);
  };

  TheVm.forEachRootSlot([&](ObjRef *Slot) { Discover(*Slot, nullptr); });

  TypeRegistry &Types = TheVm.types();
  while (!Queue.empty() && !Found) {
    ObjRef Obj = Queue.front();
    Queue.pop_front();
    const TypeInfo &Type = Types.get(Obj->typeId());
    switch (Type.kind()) {
    case TypeKind::Class:
      for (uint32_t Offset : Type.refOffsets())
        Discover(Obj->getRef(Offset), Obj);
      break;
    case TypeKind::RefArray:
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
        Discover(Obj->getElement(I), Obj);
      break;
    case TypeKind::DataArray:
      break;
    }
  }

  if (!Found)
    return std::nullopt;

  // Walk parents back to a root and reverse.
  std::vector<ObjRef> Chain;
  for (ObjRef Obj = Target; Obj; Obj = Parent[Obj])
    Chain.push_back(Obj);
  std::reverse(Chain.begin(), Chain.end());

  std::vector<PathStep> Steps;
  Steps.reserve(Chain.size());
  for (size_t I = 0, E = Chain.size(); I != E; ++I) {
    PathStep Step;
    Step.TypeName = Types.get(Chain[I]->typeId()).name();
    if (I > 0)
      Step.FieldName = edgeName(Types, Chain[I - 1], Chain[I]);
    Steps.push_back(std::move(Step));
  }
  return Steps;
}

std::vector<ObjRef> PathFinder::findReachableInstances(TypeId Type,
                                                       size_t MaxInstances) {
  std::vector<ObjRef> Instances;
  if (MaxInstances == 0)
    return Instances;
  breadthFirst(TheVm, [&](ObjRef Obj, ObjRef) {
    if (Obj->typeId() == Type) {
      Instances.push_back(Obj);
      if (Instances.size() >= MaxInstances)
        return false;
    }
    return true;
  });
  return Instances;
}

size_t PathFinder::countIncomingReferences(ObjRef Target) {
  size_t Count = 0;

  TheVm.forEachRootSlot([&](ObjRef *Slot) {
    if (*Slot == Target)
      ++Count;
  });

  TypeRegistry &Types = TheVm.types();
  breadthFirst(TheVm, [&](ObjRef Obj, ObjRef) {
    const TypeInfo &Type = Types.get(Obj->typeId());
    if (Type.kind() == TypeKind::Class) {
      for (uint32_t Offset : Type.refOffsets())
        if (Obj->getRef(Offset) == Target)
          ++Count;
    } else if (Type.kind() == TypeKind::RefArray) {
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
        if (Obj->getElement(I) == Target)
          ++Count;
    }
    return true;
  });
  return Count;
}
