//===- ViolationLogSink.cpp - Structured logging -------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/ViolationLogSink.h"

#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"

using namespace gcassert;

std::string LineLogSink::formatLine(const Violation &V) {
  std::string Path;
  for (size_t I = 0, E = V.Path.size(); I != E; ++I) {
    const PathStep &Step = V.Path[I];
    if (I)
      Path += "->";
    if (!Step.FieldName.empty()) {
      Path += Step.FieldName;
      Path += ':';
    }
    Path += Step.TypeName;
  }
  return format("gc-assert|%llu|%s|%s|%s|%s",
                static_cast<unsigned long long>(V.Cycle),
                assertionKindName(V.Kind), V.ObjectType.c_str(),
                V.Message.c_str(), Path.c_str());
}

void LineLogSink::report(const Violation &V) {
  Out << formatLine(V) << '\n';
  Out.flush();
}

BoundedLogSink::BoundedLogSink(OStream &Out)
    : BoundedLogSink(Out, Config()) {}

BoundedLogSink::BoundedLogSink(OStream &Out, Config Cfg)
    : Out(Out), Cfg(Cfg),
      CrashDump("violation log tail", [this] { dumpTail(errs()); }) {}

void BoundedLogSink::report(const Violation &V) {
  std::string Line = LineLogSink::formatLine(V);

  // The tail keeps the newest lines even when the stream budget is spent:
  // crash diagnostics should show what was dropped, not what was lucky.
  if (Cfg.TailCapacity > 0) {
    if (Tail.size() == Cfg.TailCapacity)
      Tail.pop_front();
    Tail.push_back(Line);
  }

  if (!BudgetCycleValid || V.Cycle != BudgetCycle) {
    BudgetCycle = V.Cycle;
    BudgetCycleValid = true;
    LinesThisCycle = 0;
  }

  if (LinesThisCycle >= Cfg.MaxLinesPerCycle ||
      faults::SinkWrite.shouldFail()) {
    ++Dropped;
    return;
  }
  ++LinesThisCycle;
  ++Written;
  Out << Line << '\n';
  Out.flush();
}

void BoundedLogSink::dumpTail(OStream &To) const {
  To << "violations: written=" << Written << " dropped=" << Dropped << "\n";
  for (const std::string &Line : Tail)
    To << Line << '\n';
}
