//===- ViolationLogSink.cpp - Structured logging -------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/ViolationLogSink.h"

#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"

using namespace gcassert;

std::string LineLogSink::formatLine(const Violation &V) {
  std::string Path;
  for (size_t I = 0, E = V.Path.size(); I != E; ++I) {
    const PathStep &Step = V.Path[I];
    if (I)
      Path += "->";
    if (!Step.FieldName.empty()) {
      Path += Step.FieldName;
      Path += ':';
    }
    Path += Step.TypeName;
  }
  return format("gc-assert|%llu|%s|%s|%s|%s",
                static_cast<unsigned long long>(V.Cycle),
                assertionKindName(V.Kind), V.ObjectType.c_str(),
                V.Message.c_str(), Path.c_str());
}

void LineLogSink::report(const Violation &V) {
  Out << formatLine(V) << '\n';
  Out.flush();
}
