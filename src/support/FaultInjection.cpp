//===- FaultInjection.cpp - Deterministic failpoints ----------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/FaultInjection.h"

#include "gcassert/support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace gcassert;

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

// Intrusive singly-linked list. The head is a plain pointer so it is
// zero-initialized before any dynamic initializer runs; the named sites in
// this TU register themselves during static initialization, user-defined
// failpoints (tests) at construction time.
namespace {
Failpoint *RegistryHead = nullptr;

std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

// Single observer slot (see setFailpointFireObserver). Atomic so armed-path
// reads never race installation from another thread.
std::atomic<FailpointFireObserver> FireObserver{nullptr};
} // namespace

namespace gcassert {

void registerFailpoint(Failpoint &FP) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  FP.NextRegistered = RegistryHead;
  RegistryHead = &FP;
}

void unregisterFailpoint(Failpoint &FP) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  for (Failpoint **Cursor = &RegistryHead; *Cursor;
       Cursor = &(*Cursor)->NextRegistered) {
    if (*Cursor == &FP) {
      *Cursor = FP.NextRegistered;
      return;
    }
  }
}

FailpointFireObserver setFailpointFireObserver(FailpointFireObserver Obs) {
  return FireObserver.exchange(Obs, std::memory_order_acq_rel);
}

} // namespace gcassert

//===----------------------------------------------------------------------===//
// Failpoint
//===----------------------------------------------------------------------===//

Failpoint::Failpoint(const char *SiteName) : SiteName(SiteName) {
  registerFailpoint(*this);
}

Failpoint::~Failpoint() { unregisterFailpoint(*this); }

bool Failpoint::evaluateSlow() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  if (ActivePolicy == Policy::Disabled)
    return false; // Raced with disarm().
  ++Hits;
  ++PolicyHits;
  bool Fail = false;
  switch (ActivePolicy) {
  case Policy::Disabled:
    break;
  case Policy::Always:
    Fail = true;
    break;
  case Policy::Once:
    if (!OnceFired) {
      if (SkipRemaining > 0)
        --SkipRemaining;
      else {
        OnceFired = true;
        Fail = true;
      }
    }
    break;
  case Policy::EveryNth:
    Fail = PolicyHits % Interval == 0;
    break;
  case Policy::Probability:
    Fail = Rng.chancePercent(Percent);
    break;
  }
  if (Fail) {
    ++Fired;
    if (FailpointFireObserver Obs = FireObserver.load(std::memory_order_acquire))
      Obs(SiteName);
  }
  return Fail;
}

void Failpoint::armAlways() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  ActivePolicy = Policy::Always;
  PolicyHits = 0;
  Armed.store(true, std::memory_order_relaxed);
}

void Failpoint::armOnce(uint64_t SkipHits) {
  std::lock_guard<std::mutex> Lock(StateMutex);
  ActivePolicy = Policy::Once;
  SkipRemaining = SkipHits;
  OnceFired = false;
  PolicyHits = 0;
  Armed.store(true, std::memory_order_relaxed);
}

void Failpoint::armEveryNth(uint64_t N) {
  std::lock_guard<std::mutex> Lock(StateMutex);
  ActivePolicy = Policy::EveryNth;
  Interval = N < 1 ? 1 : N;
  PolicyHits = 0;
  Armed.store(true, std::memory_order_relaxed);
}

void Failpoint::armProbabilityPercent(uint32_t Percent, uint64_t Seed) {
  std::lock_guard<std::mutex> Lock(StateMutex);
  ActivePolicy = Policy::Probability;
  this->Percent = Percent > 100 ? 100 : Percent;
  Rng = SplitMix64(Seed);
  PolicyHits = 0;
  Armed.store(true, std::memory_order_relaxed);
}

void Failpoint::disarm() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  ActivePolicy = Policy::Disabled;
  Armed.store(false, std::memory_order_relaxed);
}

uint64_t Failpoint::hitCount() const {
  std::lock_guard<std::mutex> Lock(StateMutex);
  return Hits;
}

uint64_t Failpoint::firedCount() const {
  std::lock_guard<std::mutex> Lock(StateMutex);
  return Fired;
}

void Failpoint::resetCounters() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  Hits = 0;
  Fired = 0;
}

//===----------------------------------------------------------------------===//
// Registry queries
//===----------------------------------------------------------------------===//

Failpoint *gcassert::findFailpoint(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  for (Failpoint *FP = RegistryHead; FP; FP = FP->NextRegistered)
    if (Name == FP->name())
      return FP;
  return nullptr;
}

void gcassert::forEachFailpoint(const std::function<void(Failpoint &)> &Fn) {
  // Snapshot under the lock, call outside it so Fn may arm/disarm.
  Failpoint *Snapshot[64];
  size_t Count = 0;
  {
    std::lock_guard<std::mutex> Lock(registryMutex());
    for (Failpoint *FP = RegistryHead; FP && Count < 64;
         FP = FP->NextRegistered)
      Snapshot[Count++] = FP;
  }
  for (size_t I = 0; I < Count; ++I)
    Fn(*Snapshot[I]);
}

void gcassert::disarmAllFailpoints() {
  forEachFailpoint([](Failpoint &FP) { FP.disarm(); });
}

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

namespace {

/// The policy grammar, appended to malformed-policy diagnostics.
constexpr const char *PolicyGrammar =
    "valid policies: off, always, once[:skip], every:N, prob:P[:seed]";

/// Comma-separated list of every registered site name, for unknown-site
/// diagnostics.
std::string registeredSiteNames() {
  std::string Names;
  forEachFailpoint([&Names](Failpoint &FP) {
    if (!Names.empty())
      Names += ", ";
    Names += FP.name();
  });
  return Names;
}

bool parseUint(std::string_view Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = Value;
  return true;
}

bool applyPolicy(Failpoint &FP, std::string_view Policy, std::string *Error) {
  auto Fail = [&](const char *Why) {
    if (Error)
      *Error = std::string(Why) + " in policy '" + std::string(Policy) +
               "' for failpoint '" + FP.name() + "'; " + PolicyGrammar;
    return false;
  };

  std::string_view Head = Policy;
  std::string_view Arg1, Arg2;
  if (size_t Colon = Policy.find(':'); Colon != std::string_view::npos) {
    Head = Policy.substr(0, Colon);
    Arg1 = Policy.substr(Colon + 1);
    if (size_t Colon2 = Arg1.find(':'); Colon2 != std::string_view::npos) {
      Arg2 = Arg1.substr(Colon2 + 1);
      Arg1 = Arg1.substr(0, Colon2);
    }
  }

  if (Head == "off") {
    FP.disarm();
    return true;
  }
  if (Head == "always") {
    FP.armAlways();
    return true;
  }
  if (Head == "once") {
    uint64_t Skip = 0;
    if (!Arg1.empty() && !parseUint(Arg1, Skip))
      return Fail("bad skip count");
    FP.armOnce(Skip);
    return true;
  }
  if (Head == "every") {
    uint64_t N = 0;
    if (!parseUint(Arg1, N) || N == 0)
      return Fail("bad interval");
    FP.armEveryNth(N);
    return true;
  }
  if (Head == "prob") {
    uint64_t Percent = 0, Seed = 1;
    if (!parseUint(Arg1, Percent) || Percent > 100)
      return Fail("bad percentage");
    if (!Arg2.empty() && !parseUint(Arg2, Seed))
      return Fail("bad seed");
    FP.armProbabilityPercent(static_cast<uint32_t>(Percent), Seed);
    return true;
  }
  return Fail("unknown policy");
}

} // namespace

bool gcassert::armFailpointsFromSpec(std::string_view Spec,
                                     std::string *Error) {
  while (!Spec.empty()) {
    std::string_view Clause = Spec;
    if (size_t Comma = Spec.find(','); Comma != std::string_view::npos) {
      Clause = Spec.substr(0, Comma);
      Spec = Spec.substr(Comma + 1);
    } else {
      Spec = {};
    }
    if (Clause.empty())
      continue;
    size_t Eq = Clause.find('=');
    if (Eq == std::string_view::npos) {
      if (Error)
        *Error = "missing '=' in clause '" + std::string(Clause) + "'";
      return false;
    }
    std::string_view Site = Clause.substr(0, Eq);
    Failpoint *FP = findFailpoint(Site);
    if (!FP) {
      if (Error)
        *Error = "unknown failpoint '" + std::string(Site) +
                 "'; registered sites: " + registeredSiteNames();
      return false;
    }
    if (!applyPolicy(*FP, Clause.substr(Eq + 1), Error))
      return false;
  }
  return true;
}

size_t gcassert::armFailpointsFromEnv() {
  const char *Spec = std::getenv("GCASSERT_FAILPOINTS");
  if (!Spec || !*Spec)
    return 0;
  std::string Error;
  if (!armFailpointsFromSpec(Spec, &Error)) {
    // Fatal, not a warning: a typo here means the program runs with no
    // faults armed while the harness believes it is injecting.
    std::string Msg = "GCASSERT_FAILPOINTS: " + Error;
    reportFatalError(Msg.c_str());
  }
  size_t Clauses = 1;
  for (const char *C = Spec; *C; ++C)
    if (*C == ',')
      ++Clauses;
  return Clauses;
}

//===----------------------------------------------------------------------===//
// Named sites
//===----------------------------------------------------------------------===//

namespace gcassert {
namespace faults {
Failpoint HeapHostAlloc("heap.host_alloc");
Failpoint HeapBlockAcquire("heap.block_acquire");
Failpoint SemispaceEvacuate("semispace.evacuate");
Failpoint SemispaceGuard("semispace.guard");
Failpoint GenPromote("gen.promote");
Failpoint GenPromoteGuard("gen.promote.guard");
Failpoint GcWorkerStart("gc.worker.start");
Failpoint SinkWrite("sink.write");
Failpoint EngineShed("engine.shed");
Failpoint CorruptHeader("corrupt.header");
Failpoint CorruptRef("corrupt.ref");
Failpoint CorruptFreeCell("corrupt.freelist");
Failpoint CorruptFreeLink("corrupt.freelist.link");
Failpoint CorruptRemSet("corrupt.remset");
Failpoint TlabRefill("tlab.refill");
Failpoint SafepointTimeout("safepoint.timeout");
Failpoint KvEvictLeak("kv.evict.leak");
} // namespace faults
} // namespace gcassert
