//===- Timer.cpp - Monotonic timing ----------------------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/Timer.h"

#include <chrono>

using namespace gcassert;

uint64_t gcassert::monotonicNanos() {
  auto Now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Now).count());
}
