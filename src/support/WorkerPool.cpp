//===- WorkerPool.cpp - Parked GC worker pool ----------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/WorkerPool.h"

#include "gcassert/support/FaultInjection.h"

#include <cassert>
#include <system_error>

using namespace gcassert;

WorkerPool::WorkerPool(unsigned WorkerCount)
    : Workers(WorkerCount < 1 ? 1 : WorkerCount) {
  unsigned Requested = Workers;
  Threads.reserve(Requested - 1);
  for (unsigned W = 1; W < Requested; ++W) {
    // A failed spawn shrinks the pool; the next spawned thread takes the
    // skipped index so worker ids stay contiguous in [0, workerCount()).
    unsigned Index = static_cast<unsigned>(Threads.size()) + 1;
    if (faults::GcWorkerStart.shouldFail()) {
      ++SpawnFailures;
      continue;
    }
    try {
      Threads.emplace_back([this, Index] { threadMain(Index); });
    } catch (const std::system_error &) {
      ++SpawnFailures;
    }
  }
  Workers = static_cast<unsigned>(Threads.size()) + 1;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::run(const std::function<void(unsigned)> &Fn) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!Job && "WorkerPool::run is not reentrant");
    Job = &Fn;
    Running = Workers - 1;
    ++Generation;
  }
  WakeCv.notify_all();

  Fn(0);

  std::unique_lock<std::mutex> Lock(Mutex);
  DoneCv.wait(Lock, [this] { return Running == 0; });
  Job = nullptr;
}

void WorkerPool::threadMain(unsigned Worker) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(unsigned)> *MyJob;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeCv.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      MyJob = Job;
    }

    (*MyJob)(Worker);

    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Running;
    }
    DoneCv.notify_one();
  }
}
