//===- Format.cpp - printf-style string building --------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/Format.h"

#include <cstdarg>
#include <cstdio>

using namespace gcassert;

std::string gcassert::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);

  std::string Result;
  if (Len > 0) {
    Result.resize(static_cast<size_t>(Len));
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Result;
}
