//===- ErrorHandling.cpp - Fatal error reporting --------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace gcassert;

void gcassert::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "gcassert fatal error: %s\n", Msg);
  std::fflush(stderr);
  std::abort();
}

void gcassert::gcaUnreachableInternal(const char *Msg, const char *File,
                                      unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line, Msg);
  std::fflush(stderr);
  std::abort();
}
