//===- ErrorHandling.cpp - Fatal error reporting --------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/ErrorHandling.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

using namespace gcassert;

void gcassert::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "gcassert fatal error: %s\n", Msg);
  std::fflush(stderr);
  std::abort();
}

void gcassert::gcaUnreachableInternal(const char *Msg, const char *File,
                                      unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line, Msg);
  std::fflush(stderr);
  std::abort();
}

//===----------------------------------------------------------------------===//
// Crash-dump providers
//===----------------------------------------------------------------------===//

namespace {

struct CrashDumpProvider {
  unsigned Id;
  const char *Label;
  std::function<void()> Fn;
};

struct CrashDumpRegistry {
  std::mutex Mutex;
  std::vector<CrashDumpProvider> Providers;
  unsigned NextId = 1;
};

CrashDumpRegistry &crashDumpRegistry() {
  static CrashDumpRegistry R;
  return R;
}

// Set once a fatal-with-diagnostics report is in flight: a provider that
// itself dies must not re-enter the provider walk.
std::atomic<bool> FatalInProgress{false};

} // namespace

unsigned gcassert::registerCrashDumpProvider(const char *Label,
                                             std::function<void()> Fn) {
  CrashDumpRegistry &R = crashDumpRegistry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  unsigned Id = R.NextId++;
  R.Providers.push_back({Id, Label, std::move(Fn)});
  return Id;
}

void gcassert::unregisterCrashDumpProvider(unsigned Id) {
  CrashDumpRegistry &R = crashDumpRegistry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (size_t I = 0; I < R.Providers.size(); ++I) {
    if (R.Providers[I].Id == Id) {
      R.Providers.erase(R.Providers.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
  }
}

void gcassert::reportFatalErrorWithDiagnostics(const char *Msg) {
  std::fprintf(stderr, "gcassert fatal error: %s\n", Msg);
  std::fflush(stderr);
  if (!FatalInProgress.exchange(true)) {
    std::fprintf(stderr, "-- crash diagnostics --\n");
    // Walk a snapshot newest-first without holding the lock, so a provider
    // blocked on the registry mutex cannot deadlock the abort path.
    std::vector<CrashDumpProvider> Snapshot;
    {
      CrashDumpRegistry &R = crashDumpRegistry();
      std::lock_guard<std::mutex> Lock(R.Mutex);
      Snapshot = R.Providers;
    }
    for (size_t I = Snapshot.size(); I-- > 0;) {
      std::fprintf(stderr, "-- %s --\n", Snapshot[I].Label);
      std::fflush(stderr);
      if (Snapshot[I].Fn)
        Snapshot[I].Fn();
      std::fflush(stderr);
    }
    std::fprintf(stderr, "-- end crash diagnostics --\n");
    std::fflush(stderr);
  }
  std::abort();
}
