//===- OStream.cpp - Lightweight output streams ---------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/OStream.h"

#include <cinttypes>

using namespace gcassert;

OStream::~OStream() = default;

OStream &OStream::operator<<(int64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(uint64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(double D) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OStream &OStream::operator<<(const void *P) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%p", P);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

void FileOStream::write(const char *Data, size_t Size) {
  std::fwrite(Data, 1, Size, Handle);
}

void FileOStream::flush() { std::fflush(Handle); }

OStream &gcassert::outs() {
  static FileOStream Stream(stdout);
  return Stream;
}

OStream &gcassert::errs() {
  static FileOStream Stream(stderr);
  return Stream;
}
