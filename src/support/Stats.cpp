//===- Stats.cpp - Sample statistics ---------------------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace gcassert;

double SampleSet::mean() const {
  assert(!Values.empty() && "mean of empty sample set");
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double SampleSet::min() const {
  assert(!Values.empty() && "min of empty sample set");
  return *std::min_element(Values.begin(), Values.end());
}

double SampleSet::max() const {
  assert(!Values.empty() && "max of empty sample set");
  return *std::max_element(Values.begin(), Values.end());
}

double SampleSet::stddev() const {
  if (Values.size() < 2)
    return 0.0;
  double M = mean();
  double SumSq = 0;
  for (double V : Values)
    SumSq += (V - M) * (V - M);
  return std::sqrt(SumSq / static_cast<double>(Values.size() - 1));
}

double SampleSet::confidence90() const {
  if (Values.size() < 2)
    return 0.0;
  double T = studentT90(Values.size() - 1);
  return T * stddev() / std::sqrt(static_cast<double>(Values.size()));
}

double gcassert::geometricMean(const std::vector<double> &Values) {
  assert(!Values.empty() && "geometric mean of empty vector");
  double LogSum = 0;
  for (double V : Values) {
    assert(V > 0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double gcassert::studentT90(size_t DegreesFreedom) {
  // 0.95 quantile (two-sided 90%) of the Student-t distribution.
  static const double Table[] = {
      0.0,   6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
      1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729,
      1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699,
      1.697};
  const size_t TableSize = sizeof(Table) / sizeof(Table[0]);
  if (DegreesFreedom == 0)
    return 0.0;
  if (DegreesFreedom < TableSize)
    return Table[DegreesFreedom];
  if (DegreesFreedom < 40)
    return 1.684;
  if (DegreesFreedom < 60)
    return 1.671;
  if (DegreesFreedom < 120)
    return 1.658;
  return 1.645; // Normal limit.
}
