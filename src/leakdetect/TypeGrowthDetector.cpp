//===- TypeGrowthDetector.cpp - Heap-differencing leak detection --------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/leakdetect/TypeGrowthDetector.h"

using namespace gcassert;

void TypeGrowthDetector::snapshot() {
  std::unordered_map<TypeId, uint64_t> BytesNow;
  TypeRegistry &Types = TheVm.types();
  TheVm.heap().forEachObject([&](ObjRef Obj) {
    uint64_t Length =
        Types.get(Obj->typeId()).isArray() ? Obj->arrayLength() : 0;
    BytesNow[Obj->typeId()] += Types.allocationSize(Obj->typeId(), Length);
  });

  // Update growth streaks; a type that shrank or vanished resets.
  for (auto &[Type, Hist] : History) {
    auto It = BytesNow.find(Type);
    uint64_t Now = It != BytesNow.end() ? It->second : 0;
    if (Now > Hist.LastBytes)
      ++Hist.ConsecutiveGrowth;
    else
      Hist.ConsecutiveGrowth = 0;
    Hist.LastBytes = Now;
  }
  // Types seen for the first time start a history at zero growth.
  for (const auto &[Type, Bytes] : BytesNow)
    if (!History.count(Type))
      History[Type] = {Bytes, 0};

  ++Snapshots;
}

std::vector<GrowthCandidate>
TypeGrowthDetector::report(size_t MinConsecutive) const {
  std::vector<GrowthCandidate> Candidates;
  for (const auto &[Type, Hist] : History)
    if (Hist.ConsecutiveGrowth >= MinConsecutive && Hist.LastBytes > 0)
      Candidates.push_back({TheVm.types().get(Type).name(), Hist.LastBytes,
                            Hist.ConsecutiveGrowth});
  return Candidates;
}
