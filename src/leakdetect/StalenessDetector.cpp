//===- StalenessDetector.cpp - Staleness-based leak detection ----------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/leakdetect/StalenessDetector.h"

#include "gcassert/support/ErrorHandling.h"

using namespace gcassert;

StalenessDetector::StalenessDetector(Vm &TheVm) : TheVm(TheVm) {
  if (TheVm.collectorKind() != CollectorKind::MarkSweep)
    reportFatalError("StalenessDetector requires the non-moving collector");
  TheVm.setAllocationListener([this](ObjRef Obj) { LastAccess[Obj] = Clock; });
}

StalenessDetector::~StalenessDetector() {
  TheVm.setAllocationListener(nullptr);
}

std::vector<StaleCandidate> StalenessDetector::scan(uint64_t StaleAge) {
  std::vector<StaleCandidate> Candidates;
  std::unordered_map<ObjRef, uint64_t> LiveOnly;
  LiveOnly.reserve(LastAccess.size());

  TheVm.heap().forEachObject([&](ObjRef Obj) {
    auto It = LastAccess.find(Obj);
    // Objects allocated while the listener was detached have no record;
    // treat them as touched now (conservative: never reported).
    uint64_t Last = It != LastAccess.end() ? It->second : Clock;
    LiveOnly.emplace(Obj, Last);
    uint64_t Age = Clock >= Last ? Clock - Last : 0;
    if (Age >= StaleAge)
      Candidates.push_back(
          {Obj, TheVm.types().get(Obj->typeId()).name(), Age});
  });

  // Drop bookkeeping for objects that no longer exist (their cells may be
  // reused by future allocations).
  LastAccess = std::move(LiveOnly);
  return Candidates;
}
