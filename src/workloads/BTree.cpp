//===- BTree.cpp - Managed-heap B+ tree ----------------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/BTree.h"

#include "gcassert/support/ErrorHandling.h"
#include "gcassert/workloads/Common.h"

#include <cstring>

using namespace gcassert;

//===----------------------------------------------------------------------===//
// Layout
//===----------------------------------------------------------------------===//

/// Byte offset of the named field; aborts if absent (layout mismatch).
static uint32_t fieldOffset(const TypeInfo &Info, const char *Name) {
  for (const FieldInfo &Field : Info.fields())
    if (Field.Name == Name)
      return Field.Offset;
  reportFatalError("managed type is missing an expected field");
}

ManagedBTree::Layout ManagedBTree::ensureTypes(TypeRegistry &Types) {
  Layout L;
  L.KeyArray = ensureLongArrayType(Types);
  L.EntryArray = ensureObjectArrayType(Types);

  // Reconstruct from an existing registration (another tree in this VM
  // already registered the types), or register fresh.
  if (const TypeInfo *Node =
          Types.lookup("Lspec/jbb/infra/Collections/longBTreeNode;")) {
    L.Node = Node->id();
    L.NodeKeysField = fieldOffset(*Node, "keys");
    L.NodeEntriesField = fieldOffset(*Node, "entries");
    L.NodeCountField = fieldOffset(*Node, "count");
    L.NodeLeafField = fieldOffset(*Node, "leaf");
    const TypeInfo *Tree =
        Types.lookup("Lspec/jbb/infra/Collections/longBTree;");
    assert(Tree && "node type registered without tree type");
    L.Tree = Tree->id();
    L.TreeRootField = fieldOffset(*Tree, "root");
    L.TreeSizeField = fieldOffset(*Tree, "size");
    return L;
  }

  TypeBuilder NodeB(Types, "Lspec/jbb/infra/Collections/longBTreeNode;");
  L.NodeKeysField = NodeB.addRef("keys");
  L.NodeEntriesField = NodeB.addRef("entries");
  L.NodeCountField = NodeB.addScalar("count", 4);
  L.NodeLeafField = NodeB.addScalar("leaf", 4);
  L.Node = NodeB.build();

  TypeBuilder TreeB(Types, "Lspec/jbb/infra/Collections/longBTree;");
  L.TreeRootField = TreeB.addRef("root");
  L.TreeSizeField = TreeB.addScalar("size", 8);
  L.Tree = TreeB.build();
  return L;
}

namespace {

int64_t keyAt(ObjRef Keys, uint32_t Index) {
  int64_t Key;
  std::memcpy(&Key, Keys->arrayData() + Index * sizeof(int64_t), sizeof(Key));
  return Key;
}

void setKeyAt(ObjRef Keys, uint32_t Index, int64_t Key) {
  std::memcpy(Keys->arrayData() + Index * sizeof(int64_t), &Key, sizeof(Key));
}

} // namespace

//===----------------------------------------------------------------------===//
// Node accessors (all raw; callers re-read through handles after any
// allocation)
//===----------------------------------------------------------------------===//

namespace {

struct NodeView {
  const ManagedBTree::Layout &L;
  ObjRef Node;

  uint32_t count() const { return Node->getScalar<uint32_t>(L.NodeCountField); }
  void setCount(uint32_t C) { Node->setScalar<uint32_t>(L.NodeCountField, C); }
  bool isLeaf() const { return Node->getScalar<uint32_t>(L.NodeLeafField) != 0; }
  ObjRef keys() const { return Node->getRef(L.NodeKeysField); }
  ObjRef entries() const { return Node->getRef(L.NodeEntriesField); }

  int64_t key(uint32_t I) const { return keyAt(keys(), I); }
  void setKey(uint32_t I, int64_t K) { setKeyAt(keys(), I, K); }
  ObjRef entry(uint32_t I) const { return entries()->getElement(I); }
  void setEntry(uint32_t I, ObjRef V) { entries()->setElement(I, V); }

  /// Index of the child to descend into for \p Key: first separator greater
  /// than Key. Separator keys[i] is the minimum key of child i+1.
  uint32_t childIndexFor(int64_t Key) const {
    uint32_t N = count();
    uint32_t I = 0;
    while (I < N && Key >= key(I))
      ++I;
    return I;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// ManagedBTree
//===----------------------------------------------------------------------===//

ManagedBTree::ManagedBTree(Vm &TheVm, MutatorThread &Thread)
    : TheVm(TheVm), Thread(Thread), L(ensureTypes(TheVm.types())) {
  Root = TheVm.addGlobalRoot();
  HandleScope Scope(Thread);
  Local LRoot;
  allocNode(Thread, /*IsLeaf=*/true, Scope, LRoot);
  ObjRef Tree = TheVm.allocate(Thread, L.Tree);
  Tree->setRef(L.TreeRootField, LRoot.get());
  Tree->setScalar<int64_t>(L.TreeSizeField, 0);
  TheVm.setGlobalRoot(Root, Tree);
}

ManagedBTree::~ManagedBTree() { TheVm.removeGlobalRoot(Root); }

ObjRef ManagedBTree::rootNode() const {
  return treeObject()->getRef(L.TreeRootField);
}

uint64_t ManagedBTree::size() const {
  return static_cast<uint64_t>(
      treeObject()->getScalar<int64_t>(L.TreeSizeField));
}

/// Allocates a node plus its key and entry arrays, each rooted in \p Scope
/// so the intermediate objects survive the allocations of the later ones.
ObjRef ManagedBTree::allocNode(MutatorThread &T, bool IsLeaf,
                               HandleScope &Scope, Local &Out) {
  Local LKeys = Scope.handle(TheVm.allocate(T, L.KeyArray, MaxKeys));
  Local LEntries =
      Scope.handle(TheVm.allocate(T, L.EntryArray, MaxKeys + 1));
  ObjRef Node = TheVm.allocate(T, L.Node);
  Node->setRef(L.NodeKeysField, LKeys.get());
  Node->setRef(L.NodeEntriesField, LEntries.get());
  Node->setScalar<uint32_t>(L.NodeCountField, 0);
  Node->setScalar<uint32_t>(L.NodeLeafField, IsLeaf ? 1 : 0);
  Out = Scope.handle(Node);
  return Node;
}

/// Splits the full child at \p Index of \p Parent. Allocation-safe: both
/// nodes are re-read through handles after the sibling is allocated.
void ManagedBTree::splitChild(MutatorThread &T, Local Parent, uint32_t Index,
                              HandleScope &Scope) {
  Local LChild =
      Scope.handle(NodeView{L, Parent.get()}.entry(Index));
  bool ChildIsLeaf = NodeView{L, LChild.get()}.isLeaf();

  Local LSib;
  allocNode(T, ChildIsLeaf, Scope, LSib);

  NodeView Child{L, LChild.get()};
  NodeView Sib{L, LSib.get()};
  assert(Child.count() == MaxKeys && "splitting a non-full node");

  constexpr uint32_t Mid = MaxKeys / 2;
  int64_t UpKey;
  if (ChildIsLeaf) {
    // B+ leaf split: upper half moves to the sibling; the separator is a
    // copy of the sibling's first key.
    uint32_t SibCount = MaxKeys - Mid;
    for (uint32_t I = 0; I != SibCount; ++I) {
      Sib.setKey(I, Child.key(Mid + I));
      Sib.setEntry(I, Child.entry(Mid + I));
      Child.setEntry(Mid + I, nullptr);
    }
    Sib.setCount(SibCount);
    Child.setCount(Mid);
    UpKey = Sib.key(0);
  } else {
    // Internal split: the median separator moves up.
    UpKey = Child.key(Mid);
    uint32_t SibCount = MaxKeys - Mid - 1;
    for (uint32_t I = 0; I != SibCount; ++I)
      Sib.setKey(I, Child.key(Mid + 1 + I));
    for (uint32_t I = 0; I != SibCount + 1; ++I) {
      Sib.setEntry(I, Child.entry(Mid + 1 + I));
      Child.setEntry(Mid + 1 + I, nullptr);
    }
    Sib.setCount(SibCount);
    Child.setCount(Mid);
  }

  NodeView P{L, Parent.get()};
  uint32_t N = P.count();
  assert(N < MaxKeys && "parent must have room for the split");
  for (uint32_t I = N; I > Index; --I)
    P.setKey(I, P.key(I - 1));
  for (uint32_t I = N + 1; I > Index + 1; --I)
    P.setEntry(I, P.entry(I - 1));
  P.setKey(Index, UpKey);
  P.setEntry(Index + 1, LSib.get());
  P.setCount(N + 1);
}

void ManagedBTree::insert(int64_t Key, Local Value) {
  insert(Thread, Key, Value);
}

void ManagedBTree::insert(MutatorThread &T, int64_t Key, Local Value) {
  HandleScope Scope(T);

  // Grow the tree if the root is full.
  if (NodeView{L, rootNode()}.count() == MaxKeys) {
    Local LOldRoot = Scope.handle(rootNode());
    Local LNewRoot;
    allocNode(T, /*IsLeaf=*/false, Scope, LNewRoot);
    NodeView NewRoot{L, LNewRoot.get()};
    NewRoot.setEntry(0, LOldRoot.get());
    treeObject()->setRef(L.TreeRootField, LNewRoot.get());
    splitChild(T, LNewRoot, 0, Scope);
  }

  Local LCur = Scope.handle(rootNode());
  while (true) {
    NodeView Cur{L, LCur.get()};
    if (Cur.isLeaf())
      break;
    uint32_t Index = Cur.childIndexFor(Key);
    ObjRef Child = Cur.entry(Index);
    if (NodeView{L, Child}.count() == MaxKeys) {
      splitChild(T, LCur, Index, Scope);
      continue; // Re-derive the child index against the updated node.
    }
    LCur.set(Child);
  }

  // Insert into the leaf (no allocation from here on).
  NodeView Leaf{L, LCur.get()};
  uint32_t N = Leaf.count();
  uint32_t Pos = 0;
  while (Pos < N && Leaf.key(Pos) < Key)
    ++Pos;
  if (Pos < N && Leaf.key(Pos) == Key) {
    Leaf.setEntry(Pos, Value.get()); // Overwrite existing binding.
    return;
  }
  assert(N < MaxKeys && "leaf must have room after preemptive splitting");
  for (uint32_t I = N; I > Pos; --I) {
    Leaf.setKey(I, Leaf.key(I - 1));
    Leaf.setEntry(I, Leaf.entry(I - 1));
  }
  Leaf.setKey(Pos, Key);
  Leaf.setEntry(Pos, Value.get());
  Leaf.setCount(N + 1);
  ObjRef Tree = treeObject();
  Tree->setScalar<int64_t>(L.TreeSizeField,
                           Tree->getScalar<int64_t>(L.TreeSizeField) + 1);
}

ObjRef ManagedBTree::find(int64_t Key) const {
  // Search never allocates, so raw references are stable.
  ObjRef Node = rootNode();
  while (true) {
    NodeView Cur{L, Node};
    if (Cur.isLeaf()) {
      for (uint32_t I = 0, N = Cur.count(); I != N; ++I)
        if (Cur.key(I) == Key)
          return Cur.entry(I);
      return nullptr;
    }
    Node = Cur.entry(Cur.childIndexFor(Key));
  }
}

bool ManagedBTree::erase(int64_t Key) {
  // Lazy deletion: remove from the leaf, never rebalance. Never allocates.
  ObjRef Node = rootNode();
  while (true) {
    NodeView Cur{L, Node};
    if (Cur.isLeaf()) {
      uint32_t N = Cur.count();
      for (uint32_t I = 0; I != N; ++I) {
        if (Cur.key(I) != Key)
          continue;
        for (uint32_t J = I + 1; J != N; ++J) {
          Cur.setKey(J - 1, Cur.key(J));
          Cur.setEntry(J - 1, Cur.entry(J));
        }
        Cur.setEntry(N - 1, nullptr);
        Cur.setCount(N - 1);
        ObjRef Tree = treeObject();
        Tree->setScalar<int64_t>(
            L.TreeSizeField, Tree->getScalar<int64_t>(L.TreeSizeField) - 1);
        return true;
      }
      return false;
    }
    Node = Cur.entry(Cur.childIndexFor(Key));
  }
}

namespace {

/// In-order walk; returns false if \p Fn stopped the iteration.
bool walk(const ManagedBTree::Layout &L, ObjRef Node,
          const std::function<bool(int64_t, ObjRef)> &Fn) {
  NodeView Cur{L, Node};
  if (Cur.isLeaf()) {
    for (uint32_t I = 0, N = Cur.count(); I != N; ++I)
      if (!Fn(Cur.key(I), Cur.entry(I)))
        return false;
    return true;
  }
  for (uint32_t I = 0, N = Cur.count(); I <= N; ++I)
    if (!walk(L, Cur.entry(I), Fn))
      return false;
  return true;
}

} // namespace

void ManagedBTree::forEach(
    const std::function<void(int64_t, ObjRef)> &Fn) const {
  walk(L, rootNode(), [&](int64_t Key, ObjRef Value) {
    Fn(Key, Value);
    return true;
  });
}

uint64_t ManagedBTree::scanFrom(
    int64_t StartKey, uint64_t Limit,
    const std::function<void(int64_t, ObjRef)> &Fn) const {
  uint64_t Visited = 0;
  walk(L, rootNode(), [&](int64_t Key, ObjRef Value) {
    if (Key < StartKey)
      return true;
    if (Visited == Limit)
      return false;
    Fn(Key, Value);
    ++Visited;
    return Visited != Limit;
  });
  return Visited;
}

ObjRef ManagedBTree::minValue(int64_t *KeyOut) const {
  ObjRef Result = nullptr;
  walk(L, rootNode(), [&](int64_t Key, ObjRef Value) {
    Result = Value;
    if (KeyOut)
      *KeyOut = Key;
    return false; // Stop at the first (smallest) pair.
  });
  return Result;
}
