//===- WorkloadRegistry.cpp - Workload registry --------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/Workload.h"

#include "gcassert/support/ErrorHandling.h"

#include <algorithm>
#include <map>

using namespace gcassert;

Workload::~Workload() = default;

namespace {

std::map<std::string, WorkloadRegistry::Factory> &factoryTable() {
  static std::map<std::string, WorkloadRegistry::Factory> Table;
  return Table;
}

} // namespace

void WorkloadRegistry::add(const std::string &Name, Factory MakeWorkload) {
  auto [It, Inserted] = factoryTable().emplace(Name, std::move(MakeWorkload));
  (void)It;
  if (!Inserted)
    reportFatalError("duplicate workload name registered");
}

std::unique_ptr<Workload> WorkloadRegistry::create(const std::string &Name) {
  auto It = factoryTable().find(Name);
  if (It == factoryTable().end())
    reportFatalError("unknown workload name");
  return It->second();
}

std::vector<std::string> WorkloadRegistry::names() {
  std::vector<std::string> Names;
  for (const auto &[Name, Factory] : factoryTable())
    Names.push_back(Name);
  return Names;
}
