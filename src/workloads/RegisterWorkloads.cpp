//===- RegisterWorkloads.cpp - Built-in workload registration -------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/Workload.h"

namespace gcassert {

void registerSpecJvm98Workloads();
void registerDaCapoWorkloads();
void registerExtraWorkloads();
void registerPseudoJbbWorkloads();
void registerBinaryTreesWorkload();

void registerBuiltinWorkloads() {
  static bool Done = false;
  if (Done)
    return;
  Done = true;
  registerSpecJvm98Workloads();
  registerDaCapoWorkloads();
  registerExtraWorkloads();
  registerPseudoJbbWorkloads();
  registerBinaryTreesWorkload();
}

} // namespace gcassert
