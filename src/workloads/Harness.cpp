//===- Harness.cpp - Benchmark harness ----------------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/Harness.h"

#include "gcassert/heap/HeapVerifier.h"
#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/Format.h"
#include "gcassert/support/Timer.h"

#include <atomic>
#include <vector>

using namespace gcassert;

namespace {

/// Live set each churn mutator keeps rooted: small enough (16 x 256-byte
/// arrays = 4 KiB) never to threaten a workload-sized heap, large enough
/// that every collection has churn roots to scan (and, for the moving
/// collectors, handles to rewrite).
constexpr unsigned ChurnRingSlots = 16;
constexpr uint64_t ChurnArrayLength = 256;

void churnBody(Vm &V, MutatorThread &T, TypeId ChurnType,
               const std::atomic<bool> &Stop) {
  HandleScope Scope(T);
  Local Ring[ChurnRingSlots];
  for (Local &L : Ring)
    L = Scope.handle();
  uint64_t N = 0;
  while (!Stop.load(std::memory_order_relaxed)) {
    // Vm::allocate is itself a poll site; churn allocating flat out is the
    // point — it contends on the TLAB refill / heap lock and gives every
    // collection concurrent mutators to stop.
    if (ObjRef Obj = V.allocate(T, ChurnType, ChurnArrayLength))
      Ring[N++ % ChurnRingSlots].set(Obj);
  }
}

} // namespace

const char *gcassert::benchConfigName(BenchConfig Config) {
  switch (Config) {
  case BenchConfig::Base:
    return "Base";
  case BenchConfig::Infrastructure:
    return "Infrastructure";
  case BenchConfig::WithAssertions:
    return "WithAssertions";
  }
  return "unknown";
}

RunResult gcassert::runWorkload(const std::string &WorkloadName,
                                BenchConfig Config,
                                const HarnessOptions &Options) {
  std::unique_ptr<Workload> TheWorkload =
      WorkloadRegistry::create(WorkloadName);

  VmConfig Config2;
  Config2.HeapBytes = Options.HeapBytesOverride ? Options.HeapBytesOverride
                                                : TheWorkload->heapBytes();
  Config2.Collector = Options.Collector;
  Config2.Gc.Threads = Options.GcThreads;
  Config2.Gc.Hardening = Options.Hardening;
  if (Options.Incremental) {
    Config2.Gc.Incremental = true;
    Config2.Gc.MarkBudget = Options.MarkBudget;
    // Arm the pacing trigger: with GcConfig's default of 0, cycles would
    // begin only at allocation failure, where collect() runs the whole
    // cycle synchronously and nothing actually runs in slices. Beginning
    // at half occupancy leaves headroom for the mark to spread across
    // slices before the heap fills.
    Config2.Gc.IncrementalTriggerOccupancy = 0.5;
  }
  Vm TheVm(Config2);

  if (Options.VerifyHeapAfterGc) {
    // A defect here means a collector invariant broke (or an injected
    // corruption slipped past the hardened trace): abort loudly rather
    // than measure a corrupted run.
    TheVm.setPostGcCallback([&TheVm] {
      HeapVerifier Verifier(TheVm.heap());
      std::vector<HeapDefect> Defects = Verifier.verify();
      if (!Defects.empty()) {
        std::string Msg = format(
            "--verify-heap: %zu defect(s) after collection; first: [%s] %s",
            Defects.size(), defectKindName(Defects.front().Kind),
            Defects.front().Description.c_str());
        reportFatalErrorWithDiagnostics(Msg.c_str());
      }
    });
  }

  std::unique_ptr<AssertionEngine> Engine;
  if (Config != BenchConfig::Base) {
    Engine = std::make_unique<AssertionEngine>(TheVm, Options.Sink);
    TheVm.collector().setPathRecording(Options.RecordPaths);
  }

  WorkloadContext Ctx(TheVm, Engine.get(),
                      Config == BenchConfig::WithAssertions, Options.Seed);

  TheWorkload->setUp(Ctx);

  std::atomic<bool> StopChurn{false};
  std::vector<MutatorHandle> Churn;
  if (Options.MutatorThreads > 1) {
    TypeId ChurnType = TheVm.types().registerDataArray("harness.churn", 1);
    for (unsigned I = 1; I < Options.MutatorThreads; ++I)
      Churn.push_back(TheVm.startMutator(
          format("churn-%u", I),
          [ChurnType, &StopChurn](Vm &V, MutatorThread &T) {
            churnBody(V, T, ChurnType, StopChurn);
          }));
  }

  for (int I = 0; I < Options.WarmupIterations; ++I)
    TheWorkload->runIteration(Ctx);

  uint64_t GcNanosBefore = TheVm.gcStats().TotalGcNanos;
  uint64_t MarkNanosBefore = TheVm.gcStats().MarkNanos;
  uint64_t SweepNanosBefore = TheVm.gcStats().SweepNanos;
  uint64_t CyclesBefore = TheVm.gcStats().Cycles;
  uint64_t Start = monotonicNanos();
  for (int I = 0; I < Options.MeasuredIterations; ++I)
    TheWorkload->runIteration(Ctx);
  uint64_t TotalNanos = monotonicNanos() - Start;

  StopChurn.store(true, std::memory_order_relaxed);
  for (MutatorHandle &H : Churn)
    H.join();

  uint64_t GcNanos = TheVm.gcStats().TotalGcNanos - GcNanosBefore;

  RunResult Result;
  Result.TotalMillis = static_cast<double>(TotalNanos) / 1e6;
  Result.GcMillis = static_cast<double>(GcNanos) / 1e6;
  Result.MutatorMillis = Result.TotalMillis - Result.GcMillis;
  Result.MarkMillis =
      static_cast<double>(TheVm.gcStats().MarkNanos - MarkNanosBefore) / 1e6;
  Result.SweepMillis =
      static_cast<double>(TheVm.gcStats().SweepNanos - SweepNanosBefore) / 1e6;
  Result.GcCycles = TheVm.gcStats().Cycles - CyclesBefore;
  if (Engine)
    Result.Counters = Engine->counters();

  TheWorkload->tearDown(Ctx);
  return Result;
}
