//===- BinaryTrees.cpp - binarytrees allocation benchmark ----------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The classic binary-trees GC benchmark (Computer Language Benchmarks Game,
// after Hans Boehm's GCBench): one long-lived perfect tree pins a stable
// live set while waves of short-lived trees of stepped depths are built,
// checksummed, and dropped. Nearly all allocation is the same small node
// type, making it the canonical throughput stressor for tracing collectors
// — and the acceptance workload for the telemetry subsystem's --trace-out
// flag (DESIGN.md §12).
//
// Under WithAssertions each dropped wave runs inside an assertion region:
// the nodes of a discarded tree are asserted all-dead at the next GC,
// exercising the paper's assert-alldead region machinery on a pure
// allocation workload.
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/Common.h"
#include "gcassert/workloads/Workload.h"

using namespace gcassert;

namespace {

class BinaryTreesWorkload : public Workload {
public:
  static constexpr int MaxDepth = 12;   // Short-lived waves: 4 .. MaxDepth.
  static constexpr int LongLivedDepth = 14; // ~16k pinned nodes.

  const char *name() const override { return "binarytrees"; }
  /// ~2x the long-lived tree (the paper's heap-sizing convention): each
  /// iteration's ~1.5 MB of dropped trees then forces collections.
  size_t heapBytes() const override { return 3u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder NodeB(Ctx.types(), "Lbinarytrees/Node;");
    LeftField = NodeB.addRef("left");
    RightField = NodeB.addRef("right");
    ValueField = NodeB.addScalar("value", 8);
    Node = NodeB.build();

    LongLived = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), 1);
    LongLived->set(0, buildTree(Ctx, LongLivedDepth, 0));
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    // Stepped depths, several trees per depth — deeper trees get fewer
    // builds so each depth allocates a comparable node volume.
    for (int Depth = 4; Depth <= MaxDepth; Depth += 2) {
      int Builds = 2 << ((MaxDepth - Depth) / 2);
      Ctx.startRegion(T);
      uint64_t Check = 0;
      for (int I = 0; I != Builds; ++I) {
        HandleScope Scope(T);
        Local Tree = Scope.handle(buildTree(Ctx, Depth, I));
        Check += checksum(Tree.get());
      }
      // The whole wave is garbage now: every node logged in the region
      // must be dead by the next collection.
      Ctx.assertAllDead(T);
      Sink ^= Check;
    }
    // The long-lived tree must have survived intact.
    Sink ^= checksum(LongLived->get(0));
  }

  void tearDown(WorkloadContext &) override { LongLived.reset(); }

private:
  ObjRef buildTree(WorkloadContext &Ctx, int Depth, int Item) {
    Vm &TheVm = Ctx.vm();
    MutatorThread &T = Ctx.mainThread();
    HandleScope Scope(T);
    Local N = Scope.handle(TheVm.allocate(T, Node));
    N.get()->setScalar<int64_t>(ValueField, Item);
    if (Depth > 0) {
      Local Left = Scope.handle(buildTree(Ctx, Depth - 1, 2 * Item - 1));
      N.get()->setRef(LeftField, Left.get());
      Local Right = Scope.handle(buildTree(Ctx, Depth - 1, 2 * Item + 1));
      N.get()->setRef(RightField, Right.get());
    }
    return N.get();
  }

  uint64_t checksum(ObjRef N) const {
    if (!N)
      return 1;
    return 1 + checksum(N->getRef(LeftField)) + checksum(N->getRef(RightField));
  }

  TypeId Node = InvalidTypeId;
  uint32_t LeftField = 0, RightField = 0, ValueField = 0;
  std::unique_ptr<RootedArray> LongLived;
  uint64_t Sink = 0; ///< Keeps the checksums observable (not optimized out).
};

} // namespace

namespace gcassert {

void registerBinaryTreesWorkload() {
  WorkloadRegistry::add("binarytrees",
                        [] { return std::make_unique<BinaryTreesWorkload>(); });
}

} // namespace gcassert
