//===- PseudoJbb.cpp - SPEC JBB2000 stand-in (pseudojbb) -----------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper's fixed-workload SPEC JBB2000 ("pseudojbb"): a three-tier
// business system with data stored in B-trees (§3.2.1). The object graph
// reproduces the shapes the paper debugs:
//
//   Company -> [Object] -> Warehouse -> [Object] -> District
//     -> longBTree (orderTable) -> longBTreeNode -> [Object] -> Order
//   Customer.lastOrder -> Order          (the §3.2.1 leak)
//   Customer.lastAddress -> Address      (the unfixable variant)
//
// Four registered variants:
//   pseudojbb               — correct program, the paper's WithAssertions
//                             perf configuration (assert-ownedby per order
//                             insertion + assert-instances(Company, 1)).
//   pseudojbb-ordertable-leak — the Jump & McKinley leak: delivered orders
//                             never leave the orderTable; assert-dead at the
//                             end of delivery reproduces Figure 1's path.
//   pseudojbb-customer-leak — orders leave the table but Customer.lastOrder
//                             is not cleared; assert-dead at destroy()
//                             reports the Customer path.
//   pseudojbb-drag          — the oldCompany drag: the previous iteration's
//                             Company stays referenced one iteration too
//                             long; caught by assert-instances(Company, 1).
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/BTree.h"
#include "gcassert/workloads/Common.h"
#include "gcassert/workloads/Workload.h"

using namespace gcassert;

namespace {

/// Which bug (if any) this instance reproduces.
enum class JbbVariant {
  Correct,
  OrderTableLeak,
  CustomerLeak,
  CompanyDrag,
};

class PseudoJbbWorkload : public Workload {
public:
  static constexpr uint64_t NumWarehouses = 2;
  static constexpr uint64_t DistrictsPerWarehouse = 5;
  static constexpr uint64_t NumCustomers = 60;
  
  static constexpr int OrderLines = 5;
  /// Key offset that separates standing open orders from deliverable ones.
  static constexpr int64_t StandingBase = int64_t(1) << 40;
  static constexpr uint64_t ItemsPerWarehouse = 20000;

  explicit PseudoJbbWorkload(JbbVariant Variant) : Variant(Variant) {}

  const char *name() const override {
    switch (Variant) {
    case JbbVariant::Correct:
      return "pseudojbb";
    case JbbVariant::OrderTableLeak:
      return "pseudojbb-ordertable-leak";
    case JbbVariant::CustomerLeak:
      return "pseudojbb-customer-leak";
    case JbbVariant::CompanyDrag:
      return "pseudojbb-drag";
    }
    return "pseudojbb";
  }

  size_t heapBytes() const override {
    switch (Variant) {
    case JbbVariant::Correct:
      return 10u << 20;
    case JbbVariant::CompanyDrag:
      return 20u << 20; // Two companies can be live at once.
    case JbbVariant::CustomerLeak:
      return 14u << 20;
    case JbbVariant::OrderTableLeak:
      return 32u << 20; // The orderTable grows without bound.
    }
    return 8u << 20;
  }

  /// Transactions per iteration: the leak variants run shorter so the
  /// growing heap stays inside its budget for a few iterations.
  int ordersPerIteration() const {
    switch (Variant) {
    case JbbVariant::Correct:
    case JbbVariant::CompanyDrag:
      return 30000;
    case JbbVariant::CustomerLeak:
      return 10000;
    case JbbVariant::OrderTableLeak:
      return 6000;
    }
    return 10000;
  }

  /// The two leak variants reproduce the paper's §3.2.1 *debugging*
  /// sessions, which used assert-dead alone; the ownership and instance
  /// assertions belong to the §3.1.2 performance configuration (and the
  /// drag variant, whose detector is assert-instances). This also keeps
  /// Figure-1 reports root-originated: without an ownership phase, the
  /// leaked Order is first reached from the roots through the Company.
  bool usesStructuralAssertions() const {
    return Variant == JbbVariant::Correct ||
           Variant == JbbVariant::CompanyDrag;
  }

  void setUp(WorkloadContext &Ctx) override {
    registerTypes(Ctx.types());
    CompanyRoot = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), 2);
    Tables.clear();
    buildCompany(Ctx, /*Slot=*/0);
    if (usesStructuralAssertions()) {
      // §3.2.1: "there can only be one Company live in the benchmark at any
      // given time".
      Ctx.assertInstances(T.Company, 1);

      // Standing stock: open orders with far-future ids that the delivery
      // cursor never reaches. These keep a realistic number of live ownees
      // in the tables — the paper observes ~420 ownee checks per GC on
      // pseudojbb.
      for (int I = 0; I < 420; ++I)
        newOrderTransaction(Ctx, /*Standing=*/true);
      // Standing orders consumed order ids without being deliverable;
      // start each district's delivery cursor at the first regular id.
      for (uint64_t D = 0; D != NumWarehouses * DistrictsPerWarehouse; ++D) {
        ObjRef District = districtAt(D);
        District->setScalar<int64_t>(
            T.DistrictNextDelivery,
            District->getScalar<int64_t>(T.DistrictNextOrder));
      }
    }
  }

  void runIteration(WorkloadContext &Ctx) override {
    if (Variant == JbbVariant::CompanyDrag && IterationCount > 0) {
      // The main-loop bug: destroy the previous Company, but keep it
      // referenced through the oldCompany slot for the whole iteration.
      CompanyRoot->set(1, CompanyRoot->get(0)); // oldCompany = company;
      Tables.clear();
      buildCompany(Ctx, 0);
      // (The fixed program would null slot 1 here.)
    }
    ++IterationCount;

    SplitMix64 &Rng = Ctx.rng();
    for (int I = 0, E = ordersPerIteration(); I < E; ++I) {
      newOrderTransaction(Ctx);
      if (I % 4 == 3)
        paymentTransaction(Ctx);
      if (I % 50 == 49)
        deliveryTransaction(Ctx);
      (void)Rng;
    }

    if (Variant == JbbVariant::CompanyDrag)
      CompanyRoot->set(1, nullptr); // Released only at iteration end: drag.
  }

  void tearDown(WorkloadContext &) override {
    Tables.clear();
    CompanyRoot.reset();
  }

private:
  struct JbbTypes {
    TypeId Company, Warehouse, District, Customer, Order, OrderLine, Address;
    TypeId Item;
    uint32_t CompanyWarehouses, CompanyCustomers;
    uint32_t WarehouseDistricts, WarehouseStock, WarehouseId;
    uint32_t ItemName, ItemPrice;
    uint32_t DistrictTable, DistrictId, DistrictNextOrder, DistrictNextDelivery;
    uint32_t CustomerLastOrder, CustomerLastAddress, CustomerId;
    uint32_t OrderCustomer, OrderAddress, OrderLinesField, OrderId;
    uint32_t LineItem, LineItemRef, LineQty;
    uint32_t AddressStreet;
    TypeId ObjArray, ByteArray;
  };

  void registerTypes(TypeRegistry &Types) {
    T.ObjArray = ensureObjectArrayType(Types);
    T.ByteArray = ensureByteArrayType(Types);

    TypeBuilder CompanyB(Types, "Lspec/jbb/Company;");
    T.CompanyWarehouses = CompanyB.addRef("warehouses");
    T.CompanyCustomers = CompanyB.addRef("customers");
    T.Company = CompanyB.build();

    TypeBuilder WarehouseB(Types, "Lspec/jbb/Warehouse;");
    T.WarehouseDistricts = WarehouseB.addRef("districts");
    T.WarehouseStock = WarehouseB.addRef("stock");
    T.WarehouseId = WarehouseB.addScalar("id", 4);
    T.Warehouse = WarehouseB.build();

    TypeBuilder ItemB(Types, "Lspec/jbb/Item;");
    T.ItemName = ItemB.addRef("name");
    T.ItemPrice = ItemB.addScalar("price", 8);
    T.Item = ItemB.build();

    TypeBuilder DistrictB(Types, "Lspec/jbb/District;");
    T.DistrictTable = DistrictB.addRef("orderTable");
    T.DistrictId = DistrictB.addScalar("id", 4);
    T.DistrictNextOrder = DistrictB.addScalar("nextOrderId", 8);
    T.DistrictNextDelivery = DistrictB.addScalar("nextDeliveryId", 8);
    T.District = DistrictB.build();

    TypeBuilder CustomerB(Types, "Lspec/jbb/Customer;");
    T.CustomerLastOrder = CustomerB.addRef("lastOrder");
    T.CustomerLastAddress = CustomerB.addRef("lastAddress");
    T.CustomerId = CustomerB.addScalar("id", 4);
    T.Customer = CustomerB.build();

    TypeBuilder OrderB(Types, "Lspec/jbb/Order;");
    T.OrderCustomer = OrderB.addRef("customer");
    T.OrderAddress = OrderB.addRef("address");
    T.OrderLinesField = OrderB.addRef("lines");
    T.OrderId = OrderB.addScalar("id", 8);
    T.Order = OrderB.build();

    TypeBuilder LineB(Types, "Lspec/jbb/Orderline;");
    T.LineItemRef = LineB.addRef("item");
    T.LineItem = LineB.addScalar("itemId", 8);
    T.LineQty = LineB.addScalar("qty", 4);
    T.OrderLine = LineB.build();

    TypeBuilder AddressB(Types, "Lspec/jbb/Address;");
    T.AddressStreet = AddressB.addRef("street");
    T.Address = AddressB.build();
  }

  /// Builds the Company object graph into CompanyRoot slot \p Slot and
  /// (re)creates the per-district order tables.
  void buildCompany(WorkloadContext &Ctx, uint64_t Slot) {
    Vm &TheVm = Ctx.vm();
    MutatorThread &Thread = Ctx.mainThread();
    HandleScope Scope(Thread);

    Local Warehouses = Scope.handle(
        TheVm.allocate(Thread, T.ObjArray, NumWarehouses));
    for (uint64_t W = 0; W != NumWarehouses; ++W) {
      HandleScope WScope(Thread);
      Local Districts = Scope.handle(
          TheVm.allocate(Thread, T.ObjArray, DistrictsPerWarehouse));
      for (uint64_t D = 0; D != DistrictsPerWarehouse; ++D) {
        auto Table = std::make_unique<ManagedBTree>(TheVm, Thread);
        ObjRef District = TheVm.allocate(Thread, T.District);
        District->setRef(T.DistrictTable, Table->treeObject());
        District->setScalar<uint32_t>(T.DistrictId, static_cast<uint32_t>(D));
        Districts.get()->setElement(D, District);
        Tables.push_back(std::move(Table));
      }
      // The warehouse's item catalog — SPEC JBB2000 keeps ~20k items per
      // warehouse; this is most of the benchmark's long-lived heap.
      Local Stock = Scope.handle(
          TheVm.allocate(Thread, T.ObjArray, ItemsPerWarehouse));
      for (uint64_t I = 0; I != ItemsPerWarehouse; ++I) {
        HandleScope ItemScope(Thread);
        Local Name = ItemScope.handle(TheVm.allocate(Thread, T.ByteArray, 16));
        ObjRef Item = TheVm.allocate(Thread, T.Item);
        Item->setRef(T.ItemName, Name.get());
        Item->setScalar<int64_t>(T.ItemPrice, static_cast<int64_t>(I) * 7);
        Stock.get()->setElement(I, Item);
      }

      ObjRef Warehouse = TheVm.allocate(Thread, T.Warehouse);
      Warehouse->setRef(T.WarehouseDistricts, Districts.get());
      Warehouse->setRef(T.WarehouseStock, Stock.get());
      Warehouse->setScalar<uint32_t>(T.WarehouseId, static_cast<uint32_t>(W));
      Warehouses.get()->setElement(W, Warehouse);
    }

    Local Customers = Scope.handle(
        TheVm.allocate(Thread, T.ObjArray, NumCustomers));
    for (uint64_t C = 0; C != NumCustomers; ++C) {
      ObjRef Customer = TheVm.allocate(Thread, T.Customer);
      Customer->setScalar<uint32_t>(T.CustomerId, static_cast<uint32_t>(C));
      Customers.get()->setElement(C, Customer);
    }

    ObjRef Company = TheVm.allocate(Thread, T.Company);
    Company->setRef(T.CompanyWarehouses, Warehouses.get());
    Company->setRef(T.CompanyCustomers, Customers.get());
    CompanyRoot->set(Slot, Company);
  }

  ObjRef company() const { return CompanyRoot->get(0); }

  ObjRef districtAt(uint64_t Index) const {
    uint64_t W = Index / DistrictsPerWarehouse;
    uint64_t D = Index % DistrictsPerWarehouse;
    return company()
        ->getRef(T.CompanyWarehouses)
        ->getElement(W)
        ->getRef(T.WarehouseDistricts)
        ->getElement(D);
  }

  /// Creates an Order for a random customer and adds it to a random
  /// district's orderTable (District.addOrder in the paper, the site that
  /// carries assert-ownedby in §3.1.2).
  void newOrderTransaction(WorkloadContext &Ctx, bool Standing = false) {
    Vm &TheVm = Ctx.vm();
    MutatorThread &Thread = Ctx.mainThread();
    SplitMix64 &Rng = Ctx.rng();
    HandleScope Scope(Thread);

    // Build the order: address, order lines, then the order itself.
    Local Street = Scope.handle(TheVm.allocate(Thread, T.ByteArray, 24));
    Local Address = Scope.handle(TheVm.allocate(Thread, T.Address));
    Address.get()->setRef(T.AddressStreet, Street.get());

    Local Lines = Scope.handle(
        TheVm.allocate(Thread, T.ObjArray, OrderLines));
    for (int L = 0; L < OrderLines; ++L) {
      ObjRef Line = TheVm.allocate(Thread, T.OrderLine);
      // Pick a catalog item (read after the allocation: the line's
      // allocation may have moved the company graph).
      uint64_t W = Rng.nextBelow(NumWarehouses);
      uint64_t ItemIndex = Rng.nextBelow(ItemsPerWarehouse);
      ObjRef Stock = company()
                         ->getRef(T.CompanyWarehouses)
                         ->getElement(W)
                         ->getRef(T.WarehouseStock);
      Line->setRef(T.LineItemRef, Stock->getElement(ItemIndex));
      Line->setScalar<int64_t>(T.LineItem, static_cast<int64_t>(ItemIndex));
      Line->setScalar<uint32_t>(T.LineQty,
                                static_cast<uint32_t>(1 + Rng.nextBelow(9)));
      Lines.get()->setElement(static_cast<uint64_t>(L), Line);
    }

    Local Order = Scope.handle(TheVm.allocate(Thread, T.Order));
    Order.get()->setRef(T.OrderAddress, Address.get());
    Order.get()->setRef(T.OrderLinesField, Lines.get());

    // Wire the customer (both directions: the back reference is what makes
    // the §3.2.1 repair possible).
    uint64_t C = Rng.nextBelow(NumCustomers);
    ObjRef Customer = company()->getRef(T.CompanyCustomers)->getElement(C);
    Order.get()->setRef(T.OrderCustomer, Customer);
    Customer->setRef(T.CustomerLastOrder, Order.get());
    Customer->setRef(T.CustomerLastAddress, Address.get());

    // District.addOrder(order).
    uint64_t DistrictIndex =
        Rng.nextBelow(NumWarehouses * DistrictsPerWarehouse);
    ObjRef District = districtAt(DistrictIndex);
    int64_t OrderId = District->getScalar<int64_t>(T.DistrictNextOrder);
    District->setScalar<int64_t>(T.DistrictNextOrder, OrderId + 1);
    if (Standing)
      OrderId += StandingBase; // Sorts after every regular order.
    Order.get()->setScalar<int64_t>(T.OrderId, OrderId);
    ManagedBTree &Table = *Tables[DistrictIndex];
    Table.insert(OrderId, Order);

    // §3.2.1 WithAssertions: "we instrumented the District.addOrder()
    // method and asserted that each Order added is owned by its orderTable".
    if (usesStructuralAssertions())
      Ctx.assertOwnedBy(Table.treeObject(), Order.get());
  }

  /// Touches a customer's data (pure reads plus a small temp allocation).
  void paymentTransaction(WorkloadContext &Ctx) {
    Vm &TheVm = Ctx.vm();
    MutatorThread &Thread = Ctx.mainThread();
    uint64_t C = Ctx.rng().nextBelow(NumCustomers);
    ObjRef Customer = company()->getRef(T.CompanyCustomers)->getElement(C);
    uint32_t Id = Customer->getScalar<uint32_t>(T.CustomerId);
    ObjRef Receipt = TheVm.allocate(Thread, T.ByteArray, 32);
    Receipt->arrayData()[0] = static_cast<uint8_t>(Id);
  }

  /// Processes the oldest undelivered orders of every district
  /// (DeliveryTransaction.process in the paper). A per-district delivery
  /// cursor ensures each order is processed exactly once, whether or not
  /// the buggy variants remove it from the table. Standing open orders
  /// live in the far-future id range the cursor never reaches.
  void deliveryTransaction(WorkloadContext &Ctx) {
    for (uint64_t D = 0; D != NumWarehouses * DistrictsPerWarehouse; ++D) {
      ManagedBTree &Table = *Tables[D];
      ObjRef District = districtAt(D);
      int64_t Cursor = District->getScalar<int64_t>(T.DistrictNextDelivery);
      for (int Batch = 0; Batch < 8; ++Batch) {
        ObjRef Order = Table.find(Cursor);
        if (!Order)
          break; // Caught up: nothing undelivered.
        processOrder(Ctx, Table, Order, Cursor);
        ++Cursor;
      }
      District->setScalar<int64_t>(T.DistrictNextDelivery, Cursor);
    }
  }

  void processOrder(WorkloadContext &Ctx, ManagedBTree &Table, ObjRef Order,
                    int64_t Key) {
    // "Complete" the order: read its lines (no allocation).
    ObjRef Lines = Order->getRef(T.OrderLinesField);
    uint64_t Total = 0;
    for (uint64_t L = 0, E = Lines->arrayLength(); L != E; ++L)
      Total += Lines->getElement(L)->getScalar<uint32_t>(T.LineQty);
    (void)Total;

    switch (Variant) {
    case JbbVariant::OrderTableLeak: {
      // The Jump & McKinley leak in isolation: the customer back-references
      // are cleared properly, but the processed order is never removed
      // from the orderTable. The paper places assert-dead at the end of
      // DeliveryTransaction.process(); the report's path runs Company ->
      // Warehouse -> District -> longBTree -> ... -> Order (Figure 1).
      ObjRef Customer = Order->getRef(T.OrderCustomer);
      if (Customer->getRef(T.CustomerLastOrder) == Order) {
        Customer->setRef(T.CustomerLastOrder, nullptr);
        Customer->setRef(T.CustomerLastAddress, nullptr);
      }
      Ctx.assertDead(Order);
      break;
    }

    case JbbVariant::CustomerLeak:
      // destroy(): removed from the table and asserted dead — but
      // Customer.lastOrder still points at it.
      Table.erase(Key);
      Ctx.assertDead(Order);
      break;

    case JbbVariant::Correct:
    case JbbVariant::CompanyDrag: {
      // The repaired program (§3.2.1): clear the customer's back
      // references through Order.customer, then remove from the table. No
      // assert-dead here — the paper's performance configuration carries
      // only the ownership and instance assertions (§3.1.2).
      ObjRef Customer = Order->getRef(T.OrderCustomer);
      if (Customer->getRef(T.CustomerLastOrder) == Order) {
        Customer->setRef(T.CustomerLastOrder, nullptr);
        Customer->setRef(T.CustomerLastAddress, nullptr);
      }
      Table.erase(Key);
      break;
    }
    }
  }

  JbbVariant Variant;
  JbbTypes T{};
  std::unique_ptr<RootedArray> CompanyRoot;
  /// Host-side handles to the district order tables, in district order.
  std::vector<std::unique_ptr<ManagedBTree>> Tables;
  int IterationCount = 0;
};

} // namespace

namespace gcassert {

void registerPseudoJbbWorkloads() {
  WorkloadRegistry::add("pseudojbb", [] {
    return std::make_unique<PseudoJbbWorkload>(JbbVariant::Correct);
  });
  WorkloadRegistry::add("pseudojbb-ordertable-leak", [] {
    return std::make_unique<PseudoJbbWorkload>(JbbVariant::OrderTableLeak);
  });
  WorkloadRegistry::add("pseudojbb-customer-leak", [] {
    return std::make_unique<PseudoJbbWorkload>(JbbVariant::CustomerLeak);
  });
  WorkloadRegistry::add("pseudojbb-drag", [] {
    return std::make_unique<PseudoJbbWorkload>(JbbVariant::CompanyDrag);
  });
}

} // namespace gcassert
