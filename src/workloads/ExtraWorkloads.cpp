//===- ExtraWorkloads.cpp - mtrt, chart, eclipse stand-ins ---------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The remaining members of the paper's benchmark suites: SPECjvm98's
// _227_mtrt (multithreaded raytracer) and DaCapo 2006's chart and eclipse.
// Same substitution discipline as the other workload files: reproduce the
// allocation/connectivity profile that matters to the collector.
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/Common.h"
#include "gcassert/workloads/Workload.h"

using namespace gcassert;

namespace {

//===----------------------------------------------------------------------===//
// _227_mtrt: two render threads trace rays against a shared, persistent
// scene BVH; every ray allocates short-lived intersection records.
//===----------------------------------------------------------------------===//

class MtrtWorkload : public Workload {
public:
  static constexpr int BvhDepth = 12; // ~4k interior + 4k leaf nodes.
  static constexpr int RaysPerThread = 350000;

  const char *name() const override { return "mtrt"; }
  size_t heapBytes() const override { return 6u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder NodeB(Ctx.types(), "Lmtrt/BvhNode;");
    LeftField = NodeB.addRef("left");
    RightField = NodeB.addRef("right");
    BoundsField = NodeB.addRef("bounds");
    BvhNode = NodeB.build();

    TypeBuilder HitB(Ctx.types(), "Lmtrt/Intersection;");
    HitNode = HitB.addRef("node");
    HitT = HitB.addScalar("t", 8);
    Intersection = HitB.build();

    LongArray = ensureLongArrayType(Ctx.types());

    Scene = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), 1);
    Scene->set(0, buildBvh(Ctx, BvhDepth));

    RenderThreads.clear();
    RenderThreads.push_back(&Ctx.vm().spawnThread("render-0"));
    RenderThreads.push_back(&Ctx.vm().spawnThread("render-1"));
  }

  void runIteration(WorkloadContext &Ctx) override {
    Vm &TheVm = Ctx.vm();
    SplitMix64 &Rng = Ctx.rng();
    // Interleave the two render threads in strips, the mtrt pattern.
    for (int Strip = 0; Strip < 60; ++Strip) {
      MutatorThread &Worker = *RenderThreads[Strip % 2];
      for (int Ray = 0; Ray < RaysPerThread / 60; ++Ray) {
        HandleScope Scope(Worker);
        // Walk the BVH; at the leaf, record an intersection (garbage as
        // soon as the ray is shaded).
        ObjRef Node = Scene->get(0);
        while (ObjRef Next = Rng.chancePercent(50)
                                 ? Node->getRef(LeftField)
                                 : Node->getRef(RightField))
          Node = Next;
        Local Held = Scope.handle(Node);
        ObjRef Hit = TheVm.allocate(Worker, Intersection);
        Hit->setRef(HitNode, Held.get());
        Hit->setScalar<int64_t>(HitT, static_cast<int64_t>(Rng.next()));
      }
    }
  }

  void tearDown(WorkloadContext &) override { Scene.reset(); }

private:
  ObjRef buildBvh(WorkloadContext &Ctx, int Depth) {
    Vm &TheVm = Ctx.vm();
    MutatorThread &T = Ctx.mainThread();
    HandleScope Scope(T);
    Local Bounds = Scope.handle(TheVm.allocate(T, LongArray, 6));
    Local Node = Scope.handle(TheVm.allocate(T, BvhNode));
    Node.get()->setRef(BoundsField, Bounds.get());
    if (Depth > 0) {
      Local Left = Scope.handle(buildBvh(Ctx, Depth - 1));
      Node.get()->setRef(LeftField, Left.get());
      Local Right = Scope.handle(buildBvh(Ctx, Depth - 1));
      Node.get()->setRef(RightField, Right.get());
    }
    return Node.get();
  }

  TypeId BvhNode = InvalidTypeId, Intersection = InvalidTypeId,
         LongArray = InvalidTypeId;
  uint32_t LeftField = 0, RightField = 0, BoundsField = 0;
  uint32_t HitNode = 0, HitT = 0;
  std::unique_ptr<RootedArray> Scene;
  std::vector<MutatorThread *> RenderThreads;
};

//===----------------------------------------------------------------------===//
// chart: dataset -> renderer -> raster. Medium-lived shape objects per
// plot, one big pixel buffer reused.
//===----------------------------------------------------------------------===//

class ChartWorkload : public Workload {
public:
  static constexpr uint64_t PointsPerSeries = 4000;

  const char *name() const override { return "chart"; }
  size_t heapBytes() const override { return 6u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder ShapeB(Ctx.types(), "Lchart/Shape;");
    ShapeNext = ShapeB.addRef("next");
    ShapeCoords = ShapeB.addRef("coords");
    Shape = ShapeB.build();

    ObjArray = ensureObjectArrayType(Ctx.types());
    LongArray = ensureLongArrayType(Ctx.types());
    ByteArray = ensureByteArrayType(Ctx.types());

    // The dataset: eight series of points, persistent across renders.
    Series = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), 8);
    MutatorThread &T = Ctx.mainThread();
    for (uint64_t S = 0; S != 8; ++S)
      Series->set(S, Ctx.vm().allocate(T, LongArray, PointsPerSeries));
    Raster = std::make_unique<RootedArray>(Ctx.vm(), T, 1);
    Raster->set(0, Ctx.vm().allocate(T, ByteArray, 1u << 20));
  }

  void runIteration(WorkloadContext &Ctx) override {
    Vm &TheVm = Ctx.vm();
    MutatorThread &T = Ctx.mainThread();
    for (int Plot = 0; Plot < 400; ++Plot) {
      HandleScope Scope(T);
      // Build the shape list for this frame: one Shape per point bucket,
      // each with a small coordinate array. All garbage after rasterizing.
      Local Shapes = Scope.handle();
      for (uint64_t S = 0; S != 8; ++S) {
        for (uint64_t P = 0; P != PointsPerSeries; P += 40) {
          HandleScope Inner(T);
          Local Coords = Inner.handle(TheVm.allocate(T, LongArray, 8));
          ObjRef NewShape = TheVm.allocate(T, Shape);
          NewShape->setRef(ShapeCoords, Coords.get());
          NewShape->setRef(ShapeNext, Shapes.get());
          Shapes.set(NewShape);
        }
      }
      // Rasterize: walk the shapes, scribbling into the pixel buffer.
      uint8_t *Pixels = Raster->get(0)->arrayData();
      uint64_t Cursor = Ctx.rng().nextBelow(1u << 19);
      for (ObjRef S = Shapes.get(); S; S = S->getRef(ShapeNext))
        Pixels[(Cursor += 97) & ((1u << 20) - 1)] ^= 1;
    }
  }

  void tearDown(WorkloadContext &) override {
    Raster.reset();
    Series.reset();
  }

private:
  TypeId Shape = InvalidTypeId;
  TypeId ObjArray = InvalidTypeId, LongArray = InvalidTypeId,
         ByteArray = InvalidTypeId;
  uint32_t ShapeNext = 0, ShapeCoords = 0;
  std::unique_ptr<RootedArray> Series;
  std::unique_ptr<RootedArray> Raster;
};

//===----------------------------------------------------------------------===//
// eclipse: a large persistent workspace model with incremental-build churn
// — the biggest live set in DaCapo, mutated in place.
//===----------------------------------------------------------------------===//

class EclipseWorkload : public Workload {
public:
  static constexpr uint64_t NumUnits = 4000;

  const char *name() const override { return "eclipse"; }
  size_t heapBytes() const override { return 12u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder UnitB(Ctx.types(), "Leclipse/CompilationUnit;");
    UnitSource = UnitB.addRef("source");
    UnitAst = UnitB.addRef("ast");
    UnitProblems = UnitB.addRef("problems");
    Unit = UnitB.build();

    TypeBuilder AstB(Ctx.types(), "Leclipse/AstNode;");
    AstChild = AstB.addRef("child");
    AstSibling = AstB.addRef("sibling");
    Ast = AstB.build();

    ObjArray = ensureObjectArrayType(Ctx.types());
    ByteArray = ensureByteArrayType(Ctx.types());

    Workspace = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(),
                                              NumUnits);
    for (uint64_t I = 0; I != NumUnits; ++I)
      rebuildUnit(Ctx, I);
  }

  void runIteration(WorkloadContext &Ctx) override {
    SplitMix64 &Rng = Ctx.rng();
    // An incremental build: ~15% of units are "edited" and recompiled,
    // replacing their ASTs (medium-lived structures die in place).
    for (int Build = 0; Build < 24; ++Build)
      for (uint64_t I = 0; I != NumUnits; ++I)
        if (Rng.chancePercent(15))
          rebuildUnit(Ctx, I);
  }

  void tearDown(WorkloadContext &) override { Workspace.reset(); }

private:
  void rebuildUnit(WorkloadContext &Ctx, uint64_t Index) {
    Vm &TheVm = Ctx.vm();
    MutatorThread &T = Ctx.mainThread();
    HandleScope Scope(T);
    Local Source = Scope.handle(
        TheVm.allocate(T, ByteArray, 120 + Ctx.rng().nextBelow(200)));
    Local AstRoot = Scope.handle(buildAst(Ctx, 3));
    Local Problems = Scope.handle(
        Ctx.rng().chancePercent(20) ? TheVm.allocate(T, ObjArray, 4)
                                    : nullptr);
    ObjRef NewUnit = TheVm.allocate(T, Unit);
    NewUnit->setRef(UnitSource, Source.get());
    NewUnit->setRef(UnitAst, AstRoot.get());
    NewUnit->setRef(UnitProblems, Problems.get());
    Workspace->set(Index, NewUnit);
  }

  ObjRef buildAst(WorkloadContext &Ctx, int Depth) {
    Vm &TheVm = Ctx.vm();
    MutatorThread &T = Ctx.mainThread();
    HandleScope Scope(T);
    Local Node = Scope.handle(TheVm.allocate(T, Ast));
    if (Depth > 0) {
      Local First = Scope.handle();
      for (int I = 0; I < 3; ++I) {
        HandleScope Inner(T);
        Local Child = Inner.handle(buildAst(Ctx, Depth - 1));
        Child.get()->setRef(AstSibling, First.get());
        First.set(Child.get());
      }
      Node.get()->setRef(AstChild, First.get());
    }
    return Node.get();
  }

  TypeId Unit = InvalidTypeId, Ast = InvalidTypeId;
  TypeId ObjArray = InvalidTypeId, ByteArray = InvalidTypeId;
  uint32_t UnitSource = 0, UnitAst = 0, UnitProblems = 0;
  uint32_t AstChild = 0, AstSibling = 0;
  std::unique_ptr<RootedArray> Workspace;
};

} // namespace

namespace gcassert {

void registerExtraWorkloads() {
  WorkloadRegistry::add("mtrt",
                        [] { return std::make_unique<MtrtWorkload>(); });
  WorkloadRegistry::add("chart",
                        [] { return std::make_unique<ChartWorkload>(); });
  WorkloadRegistry::add("eclipse",
                        [] { return std::make_unique<EclipseWorkload>(); });
}

} // namespace gcassert
