//===- SpecJvm98Workloads.cpp - SPECjvm98 stand-in workloads -------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// C++ stand-ins for the SPECjvm98 benchmarks the paper measures (§3.1.1):
// _201_compress, _202_jess, _209_db, _213_javac, _222_mpegaudio, _228_jack.
// Each reproduces the allocation/connectivity profile that drives the
// paper's GC numbers; _209_db additionally carries the assertions the paper
// adds for Figures 4/5 (Entry objects owned by their Database, assert-dead
// at removal sites).
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/Common.h"
#include "gcassert/workloads/Workload.h"

#include <cstring>

using namespace gcassert;

namespace {

//===----------------------------------------------------------------------===//
// _201_compress: a handful of very large buffers, low allocation rate.
//===----------------------------------------------------------------------===//

class CompressWorkload : public Workload {
public:
  const char *name() const override { return "compress"; }
  size_t heapBytes() const override { return 8u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    ByteArray = ensureByteArrayType(Ctx.types());
    Buffers = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), 4);
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    for (int Block = 0; Block < 200; ++Block) {
      // "Compress" a 256 KiB block: the output buffer replaces one of four
      // rotating slots, making the previous occupant garbage.
      ObjRef Out = Ctx.vm().allocate(T, ByteArray, 256u * 1024);
      uint8_t *Data = Out->arrayData();
      uint64_t State = Ctx.rng().next();
      for (size_t I = 0; I < 256u * 1024; I += 8) {
        State = State * 6364136223846793005ULL + 1442695040888963407ULL;
        Data[I] = static_cast<uint8_t>(State >> 56);
      }
      Buffers->set(Block % 4, Out);
    }
  }

  void tearDown(WorkloadContext &) override { Buffers.reset(); }

private:
  TypeId ByteArray = InvalidTypeId;
  std::unique_ptr<RootedArray> Buffers;
};

//===----------------------------------------------------------------------===//
// _202_jess: expert-system churn — huge numbers of small, short-lived facts
// threaded into a bounded working memory.
//===----------------------------------------------------------------------===//

class JessWorkload : public Workload {
public:
  const char *name() const override { return "jess"; }
  size_t heapBytes() const override { return 4u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Ljess/Fact;");
    SlotsField = B.addRef("slots");
    NextField = B.addRef("next");
    IdField = B.addScalar("id", 8);
    Fact = B.build();
    ObjArray = ensureObjectArrayType(Ctx.types());
    WorkingMemory =
        std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), 2048);
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    for (int Rule = 0; Rule < 400000; ++Rule) {
      HandleScope Scope(T);
      // Fire a rule: build a small activation — a chain of three facts that
      // reference each other but nothing older — and drop its head into
      // working memory, evicting (and thereby killing) a previous
      // activation.
      Local Head = Scope.handle();
      for (int Depth = 0; Depth < 3; ++Depth) {
        HandleScope Inner(T);
        Local Slots = Inner.handle(TheVm.allocate(T, ObjArray, 4));
        ObjRef NewFact = TheVm.allocate(T, Fact);
        NewFact->setRef(SlotsField, Slots.get());
        NewFact->setRef(NextField, Head.get());
        NewFact->setScalar<int64_t>(IdField, Rule);
        Head.set(NewFact);
      }
      WorkingMemory->set(Ctx.rng().nextBelow(WorkingMemory->length()),
                         Head.get());
    }
  }

  void tearDown(WorkloadContext &) override { WorkingMemory.reset(); }

private:
  TypeId Fact = InvalidTypeId;
  TypeId ObjArray = InvalidTypeId;
  uint32_t SlotsField = 0, NextField = 0;
  uint32_t IdField = 0;
  std::unique_ptr<RootedArray> WorkingMemory;
};

//===----------------------------------------------------------------------===//
// _209_db: an in-memory database of ~15,000 Entry records with lookups,
// updates and a steady remove/add trickle. This is the paper's flagship
// WithAssertions benchmark: every Entry is asserted owned by the Database,
// and every removal site asserts the removed Entry dead ("the authors had
// assigned null to an instance variable", §3.1).
//===----------------------------------------------------------------------===//

class DbWorkload : public Workload {
public:
  static constexpr uint64_t NumEntries = 15000;
  static constexpr int RemovesPerIteration = 230;
  static constexpr int LookupsPerIteration = 4000000;

  const char *name() const override { return "db"; }
  size_t heapBytes() const override { return 16u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    Vm &TheVm = Ctx.vm();
    MutatorThread &T = Ctx.mainThread();

    // A _209_db Entry is a vector of item strings.
    TypeBuilder EntryB(Ctx.types(), "Lspec/db/Entry;");
    PayloadField = EntryB.addRef("items");
    KeyField = EntryB.addScalar("key", 8);
    Entry = EntryB.build();

    TypeBuilder DbB(Ctx.types(), "Lspec/db/Database;");
    EntriesField = DbB.addRef("entries");
    NameField = DbB.addRef("name");
    Database = DbB.build();

    ObjArray = ensureObjectArrayType(Ctx.types());
    ByteArray = ensureByteArrayType(Ctx.types());

    // Build the database: Database -> entries array -> Entry objects.
    DbRoot = std::make_unique<RootedArray>(TheVm, T, 1);
    {
      HandleScope Scope(T);
      Local Entries = Scope.handle(TheVm.allocate(T, ObjArray, NumEntries));
      ObjRef Db = TheVm.allocate(T, Database);
      Db->setRef(EntriesField, Entries.get());
      DbRoot->set(0, Db);
    }
    for (uint64_t I = 0; I != NumEntries; ++I)
      addEntry(Ctx, I, /*Key=*/static_cast<int64_t>(I));
    NextKey = NumEntries;
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    ObjRef Db = DbRoot->get(0);
    ObjRef Entries = Db->getRef(EntriesField);
    uint64_t N = Entries->arrayLength();

    // Read-mostly phase: _209_db is comparison-heavy with a modest trickle
    // of string temporaries, so only a fraction of lookups allocate a
    // short-lived cursor buffer.
    uint64_t Probe = 0;
    for (int I = 0; I < LookupsPerIteration; ++I) {
      uint64_t Slot = Ctx.rng().nextBelow(N);
      ObjRef Found = Entries->getElement(Slot);
      Probe += static_cast<uint64_t>(Found->getScalar<int64_t>(KeyField));
      if (I % 16 == 0) {
        ObjRef Cursor = TheVm.allocate(T, ByteArray, 48);
        Cursor->arrayData()[0] = static_cast<uint8_t>(Probe);
        // Allocation may have moved the database; re-read through the root.
        Db = DbRoot->get(0);
        Entries = Db->getRef(EntriesField);
      }
    }

    // Mutation phase: remove a few entries (asserting each dead) and add
    // replacements (asserting each owned).
    for (int I = 0; I < RemovesPerIteration; ++I) {
      uint64_t Slot = Ctx.rng().nextBelow(N);
      ObjRef Victim = Db->getRef(EntriesField)->getElement(Slot);
      if (Victim) {
        Ctx.assertDead(Victim);
        Db->getRef(EntriesField)->setElement(Slot, nullptr);
      }
      addEntry(Ctx, Slot, NextKey++);
      Db = DbRoot->get(0);
    }
  }

  void tearDown(WorkloadContext &) override { DbRoot.reset(); }

private:
  void addEntry(WorkloadContext &Ctx, uint64_t Slot, int64_t Key) {
    Vm &TheVm = Ctx.vm();
    MutatorThread &T = Ctx.mainThread();
    HandleScope Scope(T);
    Local Items = Scope.handle(TheVm.allocate(T, ObjArray, 8));
    for (uint64_t F = 0; F != 8; ++F) {
      ObjRef Text =
          TheVm.allocate(T, ByteArray, 16 + Ctx.rng().nextBelow(32));
      Items.get()->setElement(F, Text);
    }
    ObjRef NewEntry = TheVm.allocate(T, Entry);
    NewEntry->setRef(PayloadField, Items.get());
    NewEntry->setScalar<int64_t>(KeyField, Key);
    ObjRef Db = DbRoot->get(0);
    Db->getRef(EntriesField)->setElement(Slot, NewEntry);
    Ctx.assertOwnedBy(Db, NewEntry);
  }

  TypeId Entry = InvalidTypeId, Database = InvalidTypeId;
  TypeId ObjArray = InvalidTypeId, ByteArray = InvalidTypeId;
  uint32_t PayloadField = 0, EntriesField = 0, NameField = 0;
  uint32_t KeyField = 0;
  int64_t NextKey = 0;
  std::unique_ptr<RootedArray> DbRoot;
};

//===----------------------------------------------------------------------===//
// _213_javac: bursts of deep AST construction; a few compilation units stay
// live while the rest become garbage.
//===----------------------------------------------------------------------===//

class JavacWorkload : public Workload {
public:
  const char *name() const override { return "javac"; }
  size_t heapBytes() const override { return 4u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Ljavac/TreeNode;");
    LeftField = B.addRef("left");
    RightField = B.addRef("right");
    AttrField = B.addRef("attr");
    KindField = B.addScalar("kind", 4);
    Node = B.build();
    ByteArray = ensureByteArrayType(Ctx.types());
    Units = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), 4);
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    for (int Unit = 0; Unit < 250; ++Unit) {
      HandleScope Scope(T);
      Local Root = Scope.handle(buildTree(Ctx, 11));
      analyze(Ctx, Root.get());
      Units->set(Unit % 4, Root.get()); // Only 4 units stay live.
    }
  }

  void tearDown(WorkloadContext &) override { Units.reset(); }

private:
  /// Builds a binary AST of the given depth; roughly 2^depth nodes.
  ObjRef buildTree(WorkloadContext &Ctx, int Depth) {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    if (Depth == 0) {
      ObjRef Leaf = TheVm.allocate(T, Node);
      Leaf->setScalar<uint32_t>(KindField, 1);
      return Leaf;
    }
    HandleScope Scope(T);
    Local Left = Scope.handle(buildTree(Ctx, Depth - 1));
    Local Right = Scope.handle(buildTree(Ctx, Depth - 1));
    Local Attr = Scope.handle(
        Depth % 3 == 0 ? TheVm.allocate(T, ByteArray, 24) : nullptr);
    ObjRef Parent = TheVm.allocate(T, Node);
    Parent->setRef(LeftField, Left.get());
    Parent->setRef(RightField, Right.get());
    Parent->setRef(AttrField, Attr.get());
    Parent->setScalar<uint32_t>(KindField, static_cast<uint32_t>(Depth));
    return Parent;
  }

  /// Attribution pass: walks the tree without allocating.
  int64_t analyze(WorkloadContext &Ctx, ObjRef Root) {
    int64_t Sum = 0;
    std::vector<ObjRef> Stack{Root};
    while (!Stack.empty()) {
      ObjRef N = Stack.back();
      Stack.pop_back();
      Sum += N->getScalar<uint32_t>(KindField);
      if (ObjRef L = N->getRef(LeftField))
        Stack.push_back(L);
      if (ObjRef R = N->getRef(RightField))
        Stack.push_back(R);
    }
    (void)Ctx;
    return Sum;
  }

  TypeId Node = InvalidTypeId, ByteArray = InvalidTypeId;
  uint32_t LeftField = 0, RightField = 0, AttrField = 0, KindField = 0;
  std::unique_ptr<RootedArray> Units;
};

//===----------------------------------------------------------------------===//
// _222_mpegaudio: numeric kernels over fixed buffers; almost no allocation.
//===----------------------------------------------------------------------===//

class MpegAudioWorkload : public Workload {
public:
  const char *name() const override { return "mpegaudio"; }
  size_t heapBytes() const override { return 8u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    LongArray = ensureLongArrayType(Ctx.types());
    Buffers = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), 2);
    MutatorThread &T = Ctx.mainThread();
    Buffers->set(0, Ctx.vm().allocate(T, LongArray, 32768));
    Buffers->set(1, Ctx.vm().allocate(T, LongArray, 32768));
  }

  void runIteration(WorkloadContext &Ctx) override {
    // Subband-filter-like passes between the two buffers.
    for (int Pass = 0; Pass < 400; ++Pass) {
      ObjRef In = Buffers->get(Pass % 2);
      ObjRef Out = Buffers->get(1 - Pass % 2);
      auto *InData = reinterpret_cast<int64_t *>(In->arrayData());
      auto *OutData = reinterpret_cast<int64_t *>(Out->arrayData());
      for (uint64_t I = 1; I + 1 < 32768; ++I)
        OutData[I] = (InData[I - 1] + 2 * InData[I] + InData[I + 1]) >> 2;
      // A rare frame-descriptor allocation.
      if (Pass % 16 == 0)
        Ctx.vm().allocate(Ctx.mainThread(), LongArray, 16);
    }
  }

  void tearDown(WorkloadContext &) override { Buffers.reset(); }

private:
  TypeId LongArray = InvalidTypeId;
  std::unique_ptr<RootedArray> Buffers;
};

//===----------------------------------------------------------------------===//
// _228_jack: repeated parsing of the same input — bursts of token lists
// that die at the end of every parse.
//===----------------------------------------------------------------------===//

class JackWorkload : public Workload {
public:
  const char *name() const override { return "jack"; }
  size_t heapBytes() const override { return 4u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Ljack/Token;");
    NextField = B.addRef("next");
    TextField = B.addRef("text");
    KindField = B.addScalar("kind", 4);
    Token = B.build();
    ByteArray = ensureByteArrayType(Ctx.types());
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    for (int Parse = 0; Parse < 250; ++Parse) {
      HandleScope Scope(T);
      Local Head = Scope.handle();
      // Tokenize: build a 3000-token list, each token with a small lexeme.
      for (int I = 0; I < 3000; ++I) {
        HandleScope Inner(T);
        Local Text =
            Inner.handle(TheVm.allocate(T, ByteArray, 4 + (I % 12)));
        ObjRef Tok = TheVm.allocate(T, Token);
        Tok->setRef(TextField, Text.get());
        Tok->setRef(NextField, Head.get());
        Tok->setScalar<uint32_t>(KindField, static_cast<uint32_t>(I % 37));
        Head.set(Tok);
      }
      // "Parse": fold the list into a checksum; the entire list is garbage
      // when the scope closes.
      uint64_t Sum = 0;
      for (ObjRef Tok = Head.get(); Tok; Tok = Tok->getRef(NextField))
        Sum += Tok->getScalar<uint32_t>(KindField);
      Checksum += Sum;
    }
    (void)Ctx;
  }

private:
  TypeId Token = InvalidTypeId, ByteArray = InvalidTypeId;
  uint32_t NextField = 0, TextField = 0, KindField = 0;
  uint64_t Checksum = 0;
};

} // namespace

namespace gcassert {

void registerSpecJvm98Workloads() {
  WorkloadRegistry::add("compress",
                        [] { return std::make_unique<CompressWorkload>(); });
  WorkloadRegistry::add("jess",
                        [] { return std::make_unique<JessWorkload>(); });
  WorkloadRegistry::add("db", [] { return std::make_unique<DbWorkload>(); });
  WorkloadRegistry::add("javac",
                        [] { return std::make_unique<JavacWorkload>(); });
  WorkloadRegistry::add("mpegaudio",
                        [] { return std::make_unique<MpegAudioWorkload>(); });
  WorkloadRegistry::add("jack",
                        [] { return std::make_unique<JackWorkload>(); });
}

} // namespace gcassert
