//===- DaCapoWorkloads.cpp - DaCapo 2006 stand-in workloads --------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// C++ stand-ins for the DaCapo 2006-10-MR2 benchmarks the paper measures:
// antlr, bloat, fop, hsqldb, jython, luindex, lusearch, pmd, xalan. Each
// reproduces the allocation/connectivity profile relevant to GC behavior;
// bloat is deliberately the pointer-rich, high-churn worst case (the paper's
// Figure 3 shows bloat with the largest GC-time overhead, ~30%), and
// lusearch reproduces the 32-IndexSearcher finding of §3.2.2.
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/BTree.h"
#include "gcassert/workloads/Common.h"
#include "gcassert/workloads/Workload.h"

using namespace gcassert;

namespace {

//===----------------------------------------------------------------------===//
// antlr: grammar graphs plus string churn.
//===----------------------------------------------------------------------===//

class AntlrWorkload : public Workload {
public:
  const char *name() const override { return "antlr"; }
  size_t heapBytes() const override { return 6u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Lantlr/RuleNode;");
    AltField = B.addRef("alt");
    NextField = B.addRef("next");
    LabelField = B.addRef("label");
    Rule = B.build();
    ByteArray = ensureByteArrayType(Ctx.types());
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    for (int Grammar = 0; Grammar < 150; ++Grammar) {
      HandleScope Scope(T);
      // Build a grammar graph: 400 rules, each a chain of alternatives
      // with label strings.
      Local Rules = Scope.handle(
          TheVm.allocate(T, ensureObjectArrayType(Ctx.types()), 400));
      for (uint64_t R = 0; R < 400; ++R) {
        HandleScope Inner(T);
        Local Chain = Inner.handle();
        for (int Alt = 0; Alt < 6; ++Alt) {
          Local Label =
              Inner.handle(TheVm.allocate(T, ByteArray, 8 + Alt * 3));
          ObjRef NewRule = TheVm.allocate(T, Rule);
          NewRule->setRef(LabelField, Label.get());
          NewRule->setRef(AltField, Chain.get());
          Chain.set(NewRule);
        }
        Rules.get()->setElement(R, Chain.get());
      }
      // "Generate code": emit byte buffers per rule (all garbage).
      for (uint64_t R = 0; R < 400; ++R)
        TheVm.allocate(T, ByteArray, 64 + Ctx.rng().nextBelow(128));
    }
  }

private:
  TypeId Rule = InvalidTypeId, ByteArray = InvalidTypeId;
  uint32_t AltField = 0, NextField = 0, LabelField = 0;
};

//===----------------------------------------------------------------------===//
// bloat: the GC worst case — a large, pointer-rich live graph under heavy
// mutation and node replacement.
//===----------------------------------------------------------------------===//

class BloatWorkload : public Workload {
public:
  /// Edges stay inside a node's own block, so rebuilding a block really
  /// kills its old nodes (no stray cross-block edges keeping them alive).
  static constexpr uint64_t BlockNodes = 64;
  static constexpr uint64_t GraphSize = 2344 * BlockNodes; // ~150k nodes

  const char *name() const override { return "bloat"; }
  size_t heapBytes() const override { return 20u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Lbloat/CfgNode;");
    EdgeA = B.addRef("succ0");
    EdgeB = B.addRef("succ1");
    EdgeC = B.addRef("def");
    IdField = B.addScalar("id", 8);
    Node = B.build();

    Graph =
        std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), GraphSize);
    for (uint64_t Block = 0; Block != GraphSize / BlockNodes; ++Block)
      rebuildBlock(Ctx, Block);
  }

  void runIteration(WorkloadContext &Ctx) override {
    SplitMix64 &Rng = Ctx.rng();
    // Rewire edges (pure pointer mutation, keeping the trace graph dense)
    // and periodically rebuild whole method CFGs (allocation + death).
    for (int Step = 0; Step < 1000000; ++Step) {
      uint64_t At = Rng.nextBelow(GraphSize);
      uint64_t BlockBase = At - At % BlockNodes;
      ObjRef N = Graph->get(At);
      N->setRef(EdgeA, Graph->get(BlockBase + Rng.nextBelow(BlockNodes)));
      if (Step % 64 == 0)
        rebuildBlock(Ctx, Rng.nextBelow(GraphSize / BlockNodes));
    }
  }

  void tearDown(WorkloadContext &) override { Graph.reset(); }

private:
  /// Replaces one block with fresh nodes wired densely within the block.
  void rebuildBlock(WorkloadContext &Ctx, uint64_t Block) {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    uint64_t Base = Block * BlockNodes;
    for (uint64_t I = 0; I != BlockNodes; ++I) {
      ObjRef N = TheVm.allocate(T, Node);
      N->setScalar<int64_t>(IdField, static_cast<int64_t>(Base + I));
      Graph->set(Base + I, N);
    }
    SplitMix64 &Rng = Ctx.rng();
    for (uint64_t I = 0; I != BlockNodes; ++I) {
      ObjRef N = Graph->get(Base + I);
      N->setRef(EdgeA, Graph->get(Base + Rng.nextBelow(BlockNodes)));
      N->setRef(EdgeB, Graph->get(Base + Rng.nextBelow(BlockNodes)));
      N->setRef(EdgeC, Graph->get(Base + Rng.nextBelow(BlockNodes)));
    }
  }

  TypeId Node = InvalidTypeId;
  uint32_t EdgeA = 0, EdgeB = 0, EdgeC = 0;
  uint32_t IdField = 0;
  std::unique_ptr<RootedArray> Graph;
};

//===----------------------------------------------------------------------===//
// fop: two-phase formatting — a persistent layout tree plus per-page area
// objects that die after rendering.
//===----------------------------------------------------------------------===//

class FopWorkload : public Workload {
public:
  const char *name() const override { return "fop"; }
  size_t heapBytes() const override { return 4u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Lfop/FoNode;");
    ChildField = B.addRef("firstChild");
    SiblingField = B.addRef("sibling");
    PropsField = B.addRef("props");
    FoNode = B.build();

    TypeBuilder AreaB(Ctx.types(), "Lfop/Area;");
    AreaNext = AreaB.addRef("next");
    AreaSource = AreaB.addRef("source");
    Area = AreaB.build();

    ByteArray = ensureByteArrayType(Ctx.types());
    TreeRoot = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), 1);
    TreeRoot->set(0, buildFoTree(Ctx, 4, 8));
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    // Render 40 "pages": walk the tree, emitting Area objects that die at
    // the end of each page.
    for (int Page = 0; Page < 200; ++Page) {
      HandleScope Scope(T);
      Local Areas = Scope.handle();
      std::vector<ObjRef> Stack{TreeRoot->get(0)};
      while (!Stack.empty()) {
        ObjRef N = Stack.back();
        Stack.pop_back();
        {
          HandleScope Inner(T);
          // Rooting N across the allocation is required under the moving
          // collector; the stack holds raw refs, so flush it afterwards.
          Local Held = Inner.handle(N);
          ObjRef NewArea = TheVm.allocate(T, Area);
          NewArea->setRef(AreaSource, Held.get());
          NewArea->setRef(AreaNext, Areas.get());
          Areas.set(NewArea);
          N = Held.get();
        }
        if (ObjRef C = N->getRef(ChildField))
          Stack.push_back(C);
        if (ObjRef S = N->getRef(SiblingField))
          Stack.push_back(S);
        if (!Stack.empty() && TheVm.collectorKind() == CollectorKind::SemiSpace)
          refreshStack(Stack, N);
      }
    }
  }

  void tearDown(WorkloadContext &) override { TreeRoot.reset(); }

private:
  /// The allocation above may have moved the raw stack entries; they are
  /// recovered through the area chain's source fields... but the simplest
  /// correct approach is to avoid stale entries entirely: under the moving
  /// collector the walk restarts from the current node's subtree only.
  static void refreshStack(std::vector<ObjRef> &Stack, ObjRef Current) {
    // Raw refs pushed before the last allocation may be stale from-space
    // pointers whose data is still intact (from-space is not reused until
    // the next collection), so chasing them through one more field read is
    // safe; normalize them through forwarding pointers instead.
    for (ObjRef &Entry : Stack)
      if (Entry->isForwarded())
        Entry = Entry->forwardingAddress();
    (void)Current;
  }

  ObjRef buildFoTree(WorkloadContext &Ctx, int Depth, int Fanout) {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    HandleScope Scope(T);
    Local Props = Scope.handle(TheVm.allocate(T, ByteArray, 32));
    Local NodeHandle = Scope.handle(TheVm.allocate(T, FoNode));
    NodeHandle.get()->setRef(PropsField, Props.get());
    if (Depth > 0) {
      Local FirstChild = Scope.handle();
      for (int I = 0; I < Fanout; ++I) {
        HandleScope Inner(T);
        Local Child = Inner.handle(buildFoTree(Ctx, Depth - 1, Fanout));
        Child.get()->setRef(SiblingField, FirstChild.get());
        FirstChild.set(Child.get());
      }
      NodeHandle.get()->setRef(ChildField, FirstChild.get());
    }
    return NodeHandle.get();
  }

  TypeId FoNode = InvalidTypeId, Area = InvalidTypeId,
         ByteArray = InvalidTypeId;
  uint32_t ChildField = 0, SiblingField = 0, PropsField = 0;
  uint32_t AreaNext = 0, AreaSource = 0;
  std::unique_ptr<RootedArray> TreeRoot;
};

//===----------------------------------------------------------------------===//
// hsqldb: transactional row churn over a table with a managed B-tree index.
//===----------------------------------------------------------------------===//

class HsqldbWorkload : public Workload {
public:
  static constexpr uint64_t TableSize = 20000;

  const char *name() const override { return "hsqldb"; }
  size_t heapBytes() const override { return 12u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Lhsqldb/Row;");
    ColsField = B.addRef("cols");
    KeyField = B.addScalar("key", 8);
    Row = B.build();
    ObjArray = ensureObjectArrayType(Ctx.types());
    ByteArray = ensureByteArrayType(Ctx.types());

    Table = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(),
                                          TableSize);
    Index = std::make_unique<ManagedBTree>(Ctx.vm(), Ctx.mainThread());
    for (uint64_t I = 0; I != TableSize; ++I)
      insertRow(Ctx, I, static_cast<int64_t>(I));
    NextKey = TableSize;
  }

  void runIteration(WorkloadContext &Ctx) override {
    SplitMix64 &Rng = Ctx.rng();
    for (int Txn = 0; Txn < 30000; ++Txn) {
      uint64_t Slot = Rng.nextBelow(TableSize);
      ObjRef Victim = Table->get(Slot);
      if (Victim) {
        Index->erase(Victim->getScalar<int64_t>(KeyField));
        Table->set(Slot, nullptr);
      }
      insertRow(Ctx, Slot, NextKey++);
      // A read query: probe the index a few times.
      for (int Q = 0; Q < 4; ++Q)
        Index->find(static_cast<int64_t>(Rng.nextBelow(
            static_cast<uint64_t>(NextKey))));
      // Checkpoint: the B-tree deletes lazily, so emptied nodes accumulate;
      // periodically rebuild the index from the table, like a database
      // compaction. The old tree becomes garbage.
      if (Txn % 10000 == 9999)
        rebuildIndex(Ctx);
    }
  }

  void tearDown(WorkloadContext &) override {
    Index.reset();
    Table.reset();
  }

private:
  void rebuildIndex(WorkloadContext &Ctx) {
    MutatorThread &T = Ctx.mainThread();
    auto Fresh = std::make_unique<ManagedBTree>(Ctx.vm(), T);
    HandleScope Scope(T);
    Local Row = Scope.handle();
    for (uint64_t I = 0; I != TableSize; ++I) {
      Row.set(Table->get(I));
      if (Row.get())
        Fresh->insert(Row.get()->getScalar<int64_t>(KeyField), Row);
    }
    Index = std::move(Fresh);
  }

  void insertRow(WorkloadContext &Ctx, uint64_t Slot, int64_t Key) {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    HandleScope Scope(T);
    Local Cols = Scope.handle(TheVm.allocate(T, ObjArray, 6));
    for (int C = 0; C < 3; ++C) {
      ObjRef Cell = TheVm.allocate(T, ByteArray, 12 + C * 8);
      Cols.get()->setElement(static_cast<uint64_t>(C), Cell);
    }
    Local NewRow = Scope.handle(TheVm.allocate(T, Row));
    NewRow.get()->setRef(ColsField, Cols.get());
    NewRow.get()->setScalar<int64_t>(KeyField, Key);
    Table->set(Slot, NewRow.get());
    Index->insert(Key, NewRow);
  }

  TypeId Row = InvalidTypeId, ObjArray = InvalidTypeId,
         ByteArray = InvalidTypeId;
  uint32_t ColsField = 0;
  uint32_t KeyField = 0;
  int64_t NextKey = 0;
  std::unique_ptr<RootedArray> Table;
  std::unique_ptr<ManagedBTree> Index;
};

//===----------------------------------------------------------------------===//
// jython: interpreter frames — call-stack shaped allocation with small
// object dictionaries.
//===----------------------------------------------------------------------===//

class JythonWorkload : public Workload {
public:
  const char *name() const override { return "jython"; }
  size_t heapBytes() const override { return 4u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Ljython/Frame;");
    LocalsField = B.addRef("locals");
    BackField = B.addRef("back");
    PcField = B.addScalar("pc", 4);
    Frame = B.build();

    TypeBuilder ValueB(Ctx.types(), "Ljython/PyObject;");
    ValueRef = ValueB.addRef("type");
    ValueData = ValueB.addScalar("value", 8);
    PyObject = ValueB.build();

    ObjArray = ensureObjectArrayType(Ctx.types());
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    for (int Call = 0; Call < 60000; ++Call) {
      HandleScope Scope(T);
      Local Top = Scope.handle();
      interpret(Ctx, Top, 6);
    }
    (void)T;
  }

private:
  /// Simulates a call of the given remaining depth: push a frame, allocate
  /// some locals, recurse, pop.
  void interpret(WorkloadContext &Ctx, Local Back, int Depth) {
    if (Depth == 0)
      return;
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    HandleScope Scope(T);
    Local Locals = Scope.handle(TheVm.allocate(T, ObjArray, 8));
    Local FrameHandle = Scope.handle(TheVm.allocate(T, Frame));
    FrameHandle.get()->setRef(LocalsField, Locals.get());
    FrameHandle.get()->setRef(BackField, Back.get());
    for (int I = 0; I < 4; ++I) {
      ObjRef V = TheVm.allocate(T, PyObject);
      V->setScalar<int64_t>(ValueData, I);
      Locals.get()->setElement(static_cast<uint64_t>(I), V);
    }
    interpret(Ctx, FrameHandle, Depth - 1);
  }

  TypeId Frame = InvalidTypeId, PyObject = InvalidTypeId,
         ObjArray = InvalidTypeId;
  uint32_t LocalsField = 0, BackField = 0, PcField = 0;
  uint32_t ValueRef = 0, ValueData = 0;
};

//===----------------------------------------------------------------------===//
// luindex: index construction — token postings accumulate across an
// iteration, then the whole index is replaced.
//===----------------------------------------------------------------------===//

class LuindexWorkload : public Workload {
public:
  static constexpr uint64_t NumPostings = 4096;

  const char *name() const override { return "luindex"; }
  size_t heapBytes() const override { return 8u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Llucene/Posting;");
    NextField = B.addRef("next");
    TermField = B.addRef("term");
    DocField = B.addScalar("doc", 4);
    Posting = B.build();
    ByteArray = ensureByteArrayType(Ctx.types());
    Postings = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(),
                                             NumPostings);
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    for (uint32_t Doc = 0; Doc < 1500; ++Doc) {
      // Segment flush: every 300 documents the in-memory postings are
      // written out (here: dropped), like Lucene's index writer.
      if (Doc % 300 == 0)
        Postings->clear();
      for (int Tok = 0; Tok < 200; ++Tok) {
        HandleScope Scope(T);
        uint64_t Bucket = Ctx.rng().nextBelow(NumPostings);
        Local Term =
            Scope.handle(TheVm.allocate(T, ByteArray, 3 + Tok % 10));
        ObjRef P = TheVm.allocate(T, Posting);
        P->setRef(TermField, Term.get());
        P->setScalar<uint32_t>(DocField, Doc);
        P->setRef(NextField, Postings->get(Bucket));
        Postings->set(Bucket, P);
      }
    }
  }

  void tearDown(WorkloadContext &) override { Postings.reset(); }

private:
  TypeId Posting = InvalidTypeId, ByteArray = InvalidTypeId;
  uint32_t NextField = 0, TermField = 0, DocField = 0;
  std::unique_ptr<RootedArray> Postings;
};

//===----------------------------------------------------------------------===//
// lusearch: 32 searcher threads, each with its own IndexSearcher — the
// §3.2.2 finding. Under WithAssertions, assert-instances(IndexSearcher, 1)
// reports 32 live instances per GC, exactly the library-misuse signal the
// paper describes.
//===----------------------------------------------------------------------===//

class LusearchWorkload : public Workload {
public:
  static constexpr uint64_t NumThreads = 32;

  const char *name() const override { return "lusearch"; }
  size_t heapBytes() const override { return 4u << 20; }

  /// The IndexSearcher type id, exposed for the example binary.
  TypeId searcherType() const { return Searcher; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Lorg/apache/lucene/search/IndexSearcher;");
    CacheField = B.addRef("fieldCache");
    IdField = B.addScalar("id", 4);
    Searcher = B.build();

    TypeBuilder HitB(Ctx.types(), "Lorg/apache/lucene/search/Hits;");
    HitDocs = HitB.addRef("docs");
    HitQuery = HitB.addRef("query");
    Hits = HitB.build();

    ObjArray = ensureObjectArrayType(Ctx.types());
    ByteArray = ensureByteArrayType(Ctx.types());

    // Each worker thread opens its *own* IndexSearcher — the misuse the
    // Lucene documentation warns about.
    Searchers = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(),
                                              NumThreads);
    for (uint64_t I = 0; I != NumThreads; ++I) {
      MutatorThread &Worker =
          Ctx.vm().spawnThread("searcher-" + std::to_string(I));
      HandleScope Scope(Worker);
      Local Cache = Scope.handle(Ctx.vm().allocate(Worker, ObjArray, 16));
      ObjRef S = Ctx.vm().allocate(Worker, Searcher);
      S->setRef(CacheField, Cache.get());
      S->setScalar<uint32_t>(IdField, static_cast<uint32_t>(I));
      Searchers->set(I, S);
      Workers.push_back(&Worker);
    }

    // The paper's assertion: at most one IndexSearcher should ever be live.
    Ctx.assertInstances(Searcher, 1);
  }

  void runIteration(WorkloadContext &Ctx) override {
    Vm &TheVm = Ctx.vm();
    // Round-robin the logical threads: each runs a batch of queries whose
    // temporaries die at the end of the query.
    for (int Round = 0; Round < 3000; ++Round) {
      for (uint64_t W = 0; W != NumThreads; ++W) {
        MutatorThread &Worker = *Workers[W];
        HandleScope Scope(Worker);
        Local Query =
            Scope.handle(TheVm.allocate(Worker, ByteArray, 16));
        Local Docs = Scope.handle(TheVm.allocate(Worker, ObjArray, 10));
        ObjRef Result = TheVm.allocate(Worker, Hits);
        Result->setRef(HitDocs, Docs.get());
        Result->setRef(HitQuery, Query.get());
        // Cache a term in this thread's searcher occasionally.
        if (Round % 8 == 0) {
          ObjRef S = Searchers->get(W);
          ObjRef Term = TheVm.allocate(Worker, ByteArray, 8);
          S = Searchers->get(W); // Re-read after allocation.
          S->getRef(CacheField)->setElement(Ctx.rng().nextBelow(16), Term);
        }
      }
    }
  }

  void tearDown(WorkloadContext &) override { Searchers.reset(); }

private:
  TypeId Searcher = InvalidTypeId, Hits = InvalidTypeId;
  TypeId ObjArray = InvalidTypeId, ByteArray = InvalidTypeId;
  uint32_t CacheField = 0, HitDocs = 0, HitQuery = 0;
  uint32_t IdField = 0;
  std::unique_ptr<RootedArray> Searchers;
  std::vector<MutatorThread *> Workers;
};

//===----------------------------------------------------------------------===//
// pmd: rule analysis over a persistent AST with short-lived match contexts.
//===----------------------------------------------------------------------===//

class PmdWorkload : public Workload {
public:
  static constexpr uint64_t AstSize = 25000;

  const char *name() const override { return "pmd"; }
  size_t heapBytes() const override { return 6u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Lpmd/AstNode;");
    ChildField = B.addRef("child");
    SiblingField = B.addRef("sibling");
    KindField = B.addScalar("kind", 4);
    Ast = B.build();

    TypeBuilder CtxB(Ctx.types(), "Lpmd/RuleContext;");
    CtxNode = CtxB.addRef("node");
    CtxReport = CtxB.addRef("report");
    RuleContext = CtxB.build();
    ByteArray = ensureByteArrayType(Ctx.types());

    Nodes = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(),
                                          AstSize);
    MutatorThread &T = Ctx.mainThread();
    for (uint64_t I = 0; I != AstSize; ++I) {
      ObjRef N = Ctx.vm().allocate(T, Ast);
      N->setScalar<uint32_t>(KindField,
                             static_cast<uint32_t>(Ctx.rng().nextBelow(40)));
      Nodes->set(I, N);
    }
    // Arrange as a left-child right-sibling forest.
    for (uint64_t I = 1; I != AstSize; ++I) {
      ObjRef Parent = Nodes->get(Ctx.rng().nextBelow(I));
      ObjRef N = Nodes->get(I);
      N->setRef(SiblingField, Parent->getRef(ChildField));
      Parent->setRef(ChildField, N);
    }
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    // Run 6 rules over every node; matches allocate a context + report.
    for (int RuleId = 0; RuleId < 36; ++RuleId) {
      for (uint64_t I = 0; I != AstSize; ++I) {
        ObjRef N = Nodes->get(I);
        if (N->getScalar<uint32_t>(KindField) % 6 !=
            static_cast<uint32_t>(RuleId % 6))
          continue;
        HandleScope Scope(T);
        Local Held = Scope.handle(N);
        Local Report = Scope.handle(TheVm.allocate(T, ByteArray, 40));
        ObjRef C = TheVm.allocate(T, RuleContext);
        C->setRef(CtxNode, Held.get());
        C->setRef(CtxReport, Report.get());
      }
    }
  }

  void tearDown(WorkloadContext &) override { Nodes.reset(); }

private:
  TypeId Ast = InvalidTypeId, RuleContext = InvalidTypeId,
         ByteArray = InvalidTypeId;
  uint32_t ChildField = 0, SiblingField = 0, KindField = 0;
  uint32_t CtxNode = 0, CtxReport = 0;
  std::unique_ptr<RootedArray> Nodes;
};

//===----------------------------------------------------------------------===//
// xalan: tree-to-tree transformation — a persistent input DOM and a
// full output tree per iteration that immediately dies.
//===----------------------------------------------------------------------===//

class XalanWorkload : public Workload {
public:
  const char *name() const override { return "xalan"; }
  size_t heapBytes() const override { return 6u << 20; }

  void setUp(WorkloadContext &Ctx) override {
    TypeBuilder B(Ctx.types(), "Lxalan/DomNode;");
    ChildField = B.addRef("child");
    SiblingField = B.addRef("sibling");
    TextField = B.addRef("text");
    Dom = B.build();
    ByteArray = ensureByteArrayType(Ctx.types());
    Input = std::make_unique<RootedArray>(Ctx.vm(), Ctx.mainThread(), 1);
    Input->set(0, buildDom(Ctx, 5, 6));
  }

  void runIteration(WorkloadContext &Ctx) override {
    MutatorThread &T = Ctx.mainThread();
    for (int Transform = 0; Transform < 60; ++Transform) {
      HandleScope Scope(T);
      Local Root = Scope.handle(Input->get(0));
      Local Output = Scope.handle(transform(Ctx, Root));
      (void)Output; // Dies when the scope closes.
    }
  }

  void tearDown(WorkloadContext &) override { Input.reset(); }

private:
  ObjRef buildDom(WorkloadContext &Ctx, int Depth, int Fanout) {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    HandleScope Scope(T);
    Local Text = Scope.handle(TheVm.allocate(T, ByteArray, 20));
    Local NodeHandle = Scope.handle(TheVm.allocate(T, Dom));
    NodeHandle.get()->setRef(TextField, Text.get());
    if (Depth > 0) {
      Local First = Scope.handle();
      for (int I = 0; I < Fanout; ++I) {
        HandleScope Inner(T);
        Local Child = Inner.handle(buildDom(Ctx, Depth - 1, Fanout));
        Child.get()->setRef(SiblingField, First.get());
        First.set(Child.get());
      }
      NodeHandle.get()->setRef(ChildField, First.get());
    }
    return NodeHandle.get();
  }

  /// Copies the subtree rooted at \p Source into fresh output nodes.
  ObjRef transform(WorkloadContext &Ctx, Local Source) {
    MutatorThread &T = Ctx.mainThread();
    Vm &TheVm = Ctx.vm();
    HandleScope Scope(T);
    Local Text = Scope.handle(TheVm.allocate(T, ByteArray, 24));
    Local Out = Scope.handle(TheVm.allocate(T, Dom));
    Out.get()->setRef(TextField, Text.get());
    Local First = Scope.handle();
    Local Child = Scope.handle(Source.get()->getRef(ChildField));
    while (Child.get()) {
      HandleScope Inner(T);
      Local OutChild = Inner.handle(transform(Ctx, Child));
      OutChild.get()->setRef(SiblingField, First.get());
      First.set(OutChild.get());
      Child.set(Child.get()->getRef(SiblingField));
    }
    Out.get()->setRef(ChildField, First.get());
    return Out.get();
  }

  TypeId Dom = InvalidTypeId, ByteArray = InvalidTypeId;
  uint32_t ChildField = 0, SiblingField = 0, TextField = 0;
  std::unique_ptr<RootedArray> Input;
};

} // namespace

namespace gcassert {

void registerDaCapoWorkloads() {
  WorkloadRegistry::add("antlr",
                        [] { return std::make_unique<AntlrWorkload>(); });
  WorkloadRegistry::add("bloat",
                        [] { return std::make_unique<BloatWorkload>(); });
  WorkloadRegistry::add("fop", [] { return std::make_unique<FopWorkload>(); });
  WorkloadRegistry::add("hsqldb",
                        [] { return std::make_unique<HsqldbWorkload>(); });
  WorkloadRegistry::add("jython",
                        [] { return std::make_unique<JythonWorkload>(); });
  WorkloadRegistry::add("luindex",
                        [] { return std::make_unique<LuindexWorkload>(); });
  WorkloadRegistry::add("lusearch",
                        [] { return std::make_unique<LusearchWorkload>(); });
  WorkloadRegistry::add("pmd", [] { return std::make_unique<PmdWorkload>(); });
  WorkloadRegistry::add("xalan",
                        [] { return std::make_unique<XalanWorkload>(); });
}

} // namespace gcassert
