//===- TypeRegistry.cpp - Type registration --------------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/TypeRegistry.h"

#include "gcassert/heap/Object.h"
#include "gcassert/support/ErrorHandling.h"

#include <cassert>

using namespace gcassert;

const FieldInfo *TypeInfo::fieldAtOffset(uint32_t Offset) const {
  for (const FieldInfo &Field : Fields)
    if (Field.Offset == Offset)
      return &Field;
  return nullptr;
}

TypeRegistry::TypeRegistry() {
  // Slot 0 is the reserved invalid id; keep a null placeholder so TypeIds
  // index the table directly.
  Types.push_back(nullptr);
}

TypeId TypeRegistry::add(std::unique_ptr<TypeInfo> Type) {
  if (ByName.count(Type->Name))
    reportFatalError("duplicate managed type name");
  TypeId Id = static_cast<TypeId>(Types.size());
  Type->Id = Id;
  ByName.emplace(Type->Name, Id);
  Types.push_back(std::move(Type));
  return Id;
}

TypeId TypeRegistry::registerRefArray(const std::string &Name) {
  auto Type = std::make_unique<TypeInfo>();
  Type->Name = Name;
  Type->Kind = TypeKind::RefArray;
  Type->ElementSize = sizeof(ObjRef);
  return add(std::move(Type));
}

TypeId TypeRegistry::registerDataArray(const std::string &Name,
                                       uint32_t ElementSize) {
  assert(ElementSize > 0 && "array elements must have positive size");
  auto Type = std::make_unique<TypeInfo>();
  Type->Name = Name;
  Type->Kind = TypeKind::DataArray;
  Type->ElementSize = ElementSize;
  return add(std::move(Type));
}

const TypeInfo *TypeRegistry::lookup(const std::string &Name) const {
  auto It = ByName.find(Name);
  if (It == ByName.end())
    return nullptr;
  return Types[It->second].get();
}

size_t TypeRegistry::allocationSize(TypeId Id, uint64_t ArrayLength) const {
  const TypeInfo &Type = get(Id);
  size_t Size = sizeof(ObjectHeader);
  switch (Type.kind()) {
  case TypeKind::Class:
    assert(ArrayLength == 0 && "class types take no array length");
    Size += Type.payloadSize();
    break;
  case TypeKind::RefArray:
  case TypeKind::DataArray:
    Size += sizeof(uint64_t) + ArrayLength * Type.elementSize();
    break;
  }
  // Every object needs at least one payload word: the free-list and the
  // semispace forwarding pointer both live in the first payload word.
  const size_t MinObjectSize = sizeof(ObjectHeader) + sizeof(void *);
  return Size < MinObjectSize ? MinObjectSize : Size;
}

TypeBuilder::TypeBuilder(TypeRegistry &Registry, const std::string &Name)
    : Registry(Registry), Type(std::make_unique<TypeInfo>()) {
  Type->Name = Name;
  Type->Kind = TypeKind::Class;
}

static uint32_t alignTo(uint32_t Value, uint32_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

uint32_t TypeBuilder::addRef(const std::string &FieldName) {
  assert(Type && "builder already consumed");
  NextOffset = alignTo(NextOffset, sizeof(ObjRef));
  uint32_t Offset = NextOffset;
  Type->RefOffsets.push_back(Offset);
  Type->Fields.push_back(
      FieldInfo{FieldName, Offset, sizeof(ObjRef), /*IsRef=*/true});
  NextOffset += sizeof(ObjRef);
  return Offset;
}

uint32_t TypeBuilder::addScalar(const std::string &FieldName, uint32_t Size) {
  assert(Type && "builder already consumed");
  assert(Size > 0 && Size <= 8 && "scalar fields are 1 to 8 bytes");
  uint32_t Align = Size >= 8 ? 8 : Size;
  NextOffset = alignTo(NextOffset, Align);
  uint32_t Offset = NextOffset;
  Type->Fields.push_back(FieldInfo{FieldName, Offset, Size, /*IsRef=*/false});
  NextOffset += Size;
  return Offset;
}

TypeId TypeBuilder::build() {
  assert(Type && "builder already consumed");
  Type->PayloadSize = alignTo(NextOffset, sizeof(void *));
  return Registry.add(std::move(Type));
}
