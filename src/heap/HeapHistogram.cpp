//===- HeapHistogram.cpp - Per-type occupancy -----------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/HeapHistogram.h"

#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"

#include <algorithm>
#include <unordered_map>

using namespace gcassert;

std::vector<TypeOccupancy> gcassert::takeHeapHistogram(Heap &TheHeap) {
  TypeRegistry &Types = TheHeap.types();
  std::unordered_map<TypeId, TypeOccupancy> ByType;

  TheHeap.forEachObject([&](ObjRef Obj) {
    const TypeInfo &Type = Types.get(Obj->typeId());
    uint64_t Length = Type.isArray() ? Obj->arrayLength() : 0;
    TypeOccupancy &Row = ByType[Obj->typeId()];
    if (Row.Instances == 0) {
      Row.Type = Obj->typeId();
      Row.TypeName = Type.name();
    }
    ++Row.Instances;
    Row.Bytes += Types.allocationSize(Obj->typeId(), Length);
  });

  std::vector<TypeOccupancy> Histogram;
  Histogram.reserve(ByType.size());
  for (auto &[Type, Row] : ByType)
    Histogram.push_back(std::move(Row));
  std::sort(Histogram.begin(), Histogram.end(),
            [](const TypeOccupancy &A, const TypeOccupancy &B) {
              if (A.Bytes != B.Bytes)
                return A.Bytes > B.Bytes;
              return A.TypeName < B.TypeName;
            });
  return Histogram;
}

void gcassert::printHeapHistogram(
    OStream &Out, const std::vector<TypeOccupancy> &Histogram,
    size_t MaxRows) {
  Out << format("%-48s %12s %14s\n", "type", "instances", "bytes");
  uint64_t TotalInstances = 0, TotalBytes = 0;
  size_t Printed = 0;
  for (const TypeOccupancy &Row : Histogram) {
    TotalInstances += Row.Instances;
    TotalBytes += Row.Bytes;
    if (MaxRows == 0 || Printed < MaxRows) {
      Out << format("%-48s %12llu %14llu\n", Row.TypeName.c_str(),
                    static_cast<unsigned long long>(Row.Instances),
                    static_cast<unsigned long long>(Row.Bytes));
      ++Printed;
    }
  }
  if (Printed < Histogram.size())
    Out << format("  ... %llu more types\n",
                  static_cast<unsigned long long>(Histogram.size() - Printed));
  Out << format("%-48s %12llu %14llu\n", "(total)",
                static_cast<unsigned long long>(TotalInstances),
                static_cast<unsigned long long>(TotalBytes));
}
