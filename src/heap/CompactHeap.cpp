//===- CompactHeap.cpp - Sliding-compaction heap --------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/CompactHeap.h"

#include "gcassert/support/Compiler.h"

#include <algorithm>
#include <cstring>

using namespace gcassert;

static size_t alignUp(size_t Size) {
  return (Size + sizeof(void *) - 1) & ~(sizeof(void *) - 1);
}

CompactHeap::CompactHeap(TypeRegistry &Types, const CompactHeapConfig &Config)
    : Heap(Types) {
  CapacityBytes = alignUp(std::max<size_t>(Config.CapacityBytes, 4096));
  Storage = std::make_unique<uint8_t[]>(CapacityBytes);
  Bump = Storage.get();
  Stats.BytesCapacity = CapacityBytes;
}

ObjRef CompactHeap::allocate(TypeId Id, uint64_t ArrayLength) {
  size_t Size = alignUp(Types.allocationSize(Id, ArrayLength));
  std::lock_guard<std::mutex> L(AllocMutex);
  if (GCA_UNLIKELY(Bump + Size > Storage.get() + CapacityBytes)) {
    LastAllocFailure = AllocFailureKind::HeapFull;
    return nullptr;
  }
  LastAllocFailure = AllocFailureKind::None;

  auto *Obj = reinterpret_cast<ObjRef>(Bump);
  Bump += Size;
  std::memset(static_cast<void *>(Obj), 0, Size);
  Obj->header().Type = Id;
  const TypeInfo &Type = Types.get(Id);
  if (Type.isArray())
    Obj->setArrayLength(ArrayLength);
  if (GCA_UNLIKELY(Hard != nullptr)) {
    Hard->stampObject(Obj, Type.isArray() ? ArrayLength : 0);
    SizeLog.push_back(static_cast<uint32_t>(Size));
  }

  Stats.BytesAllocated += Size;
  Stats.BytesInUse += Size;
  ++Stats.ObjectsAllocated;
  return Obj;
}

size_t CompactHeap::objectSize(ObjRef Obj) const {
  const TypeInfo &Type = Types.get(Obj->typeId());
  uint64_t Length = Type.isArray() ? Obj->arrayLength() : 0;
  return alignUp(Types.allocationSize(Obj->typeId(), Length));
}

ObjRef CompactionPlan::lookup(ObjRef Obj) const {
  auto It = std::lower_bound(
      Moves.begin(), Moves.end(), Obj,
      [](const Move &M, ObjRef Target) { return M.From < Target; });
  if (It != Moves.end() && It->From == Obj)
    return It->To;
  return nullptr;
}

CompactionPlan CompactHeap::planCompaction() {
  CompactionPlan Plan;
  uint8_t *Cursor = Storage.get();
  uint8_t *Target = Storage.get();
  if (GCA_UNLIKELY(Hard != nullptr)) {
    // Hardened plan walk: strides from the size log, and an object only
    // enters the plan with a validated header. A corrupt object (already
    // quarantined by the trace, its incoming edges severed) is treated as
    // dead — the slide reclaims its storage, curing the quarantine.
    for (uint32_t Size : SizeLog) {
      auto *Obj = reinterpret_cast<ObjRef>(Cursor);
      Cursor += Size;
      if (GCA_UNLIKELY(!Hard->validObjectHeader(Obj)) ||
          GCA_UNLIKELY(Hard->isQuarantined(Obj)))
        continue;
      if (Obj->header().isMarked()) {
        Plan.Moves.push_back({Obj, reinterpret_cast<ObjRef>(Target)});
        Target += Size;
      }
    }
    assert(Cursor == Bump && "size log out of sync with bump pointer");
    return Plan;
  }
  while (Cursor < Bump) {
    auto *Obj = reinterpret_cast<ObjRef>(Cursor);
    size_t Size = objectSize(Obj);
    if (Obj->header().isMarked()) {
      Plan.Moves.push_back(
          {Obj, reinterpret_cast<ObjRef>(Target)}); // Already address-sorted.
      Target += Size;
    }
    Cursor += Size;
  }
  return Plan;
}

void CompactHeap::executeCompaction(const CompactionPlan &Plan) {
  uint8_t *Target = Storage.get();
  for (const CompactionPlan::Move &Move : Plan.Moves) {
    size_t Size = objectSize(Move.From);
    assert(reinterpret_cast<uint8_t *>(Move.To) == Target &&
           "plan must be dense and in address order");
    // Sliding down in ascending order: the destination never overlaps a
    // not-yet-moved live object destructively; memmove handles the
    // self-overlap of a short slide.
    if (Move.From != Move.To)
      std::memmove(static_cast<void *>(Move.To),
                   static_cast<const void *>(Move.From), Size);
    Move.To->header().clearMarked();
    Target += Size;
  }
  Bump = Target;
  LiveBytesAfterGc = static_cast<uint64_t>(Bump - Storage.get());
  Stats.BytesInUse = LiveBytesAfterGc;
  if (GCA_UNLIKELY(Hard != nullptr)) {
    // Rebuild the size log from the survivors (slide order = address
    // order), and drop all quarantine entries: compaction reclaimed every
    // corrupt object's storage, so the heap is clean again.
    SizeLog.clear();
    for (const CompactionPlan::Move &Move : Plan.Moves)
      SizeLog.push_back(static_cast<uint32_t>(objectSize(Move.To)));
    Hard->dropQuarantinedInRange(Storage.get(),
                                 Storage.get() + CapacityBytes);
  }
}

void CompactHeap::forEachObject(const std::function<void(ObjRef)> &Fn) {
  if (GCA_UNLIKELY(Hard != nullptr)) {
    uint8_t *Cursor = Storage.get();
    for (uint32_t Size : SizeLog) {
      auto *Obj = reinterpret_cast<ObjRef>(Cursor);
      Cursor += Size;
      if (GCA_UNLIKELY(!Hard->validObjectHeader(Obj)) ||
          GCA_UNLIKELY(Hard->isQuarantined(Obj)))
        continue;
      Fn(Obj);
    }
    assert(Cursor == Bump && "size log out of sync with bump pointer");
    return;
  }
  uint8_t *Cursor = Storage.get();
  while (Cursor < Bump) {
    auto *Obj = reinterpret_cast<ObjRef>(Cursor);
    assert(Obj->header().isObject() && "compact-heap walk hit a non-object");
    Cursor += objectSize(Obj);
    Fn(Obj);
  }
}

bool CompactHeap::contains(const void *Ptr) const {
  const uint8_t *P = static_cast<const uint8_t *>(Ptr);
  return P >= Storage.get() && P < Storage.get() + CapacityBytes;
}
