//===- FreeListHeap.cpp - Segregated free-list heap -------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/FreeListHeap.h"

#include "gcassert/support/Compiler.h"
#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/WorkerPool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

using namespace gcassert;

Heap::~Heap() = default;

namespace {

/// The segregated-fit size classes: fine-grained steps for small objects,
/// coarser steps up to 8 KiB. Larger requests go to the large-object space.
constexpr size_t MaxSmallSize = 8192;

struct SizeClassTable {
  std::vector<size_t> CellSizes;
  /// Maps (size + 7) / 8 to a class index, for size in [1, MaxSmallSize].
  std::vector<uint32_t> ClassForWord;

  SizeClassTable() {
    for (size_t S = 16; S <= 128; S += 8)
      CellSizes.push_back(S);
    for (size_t S = 160; S <= 512; S += 32)
      CellSizes.push_back(S);
    for (size_t S = 640; S <= 2048; S += 128)
      CellSizes.push_back(S);
    for (size_t S = 2560; S <= MaxSmallSize; S += 512)
      CellSizes.push_back(S);

    ClassForWord.resize(MaxSmallSize / 8 + 1);
    uint32_t Class = 0;
    for (size_t Words = 0; Words <= MaxSmallSize / 8; ++Words) {
      size_t Size = Words * 8;
      while (CellSizes[Class] < Size)
        ++Class;
      ClassForWord[Words] = Class;
    }
  }

  uint32_t classFor(size_t Size) const {
    assert(Size > 0 && Size <= MaxSmallSize && "not a small allocation");
    return ClassForWord[(Size + 7) / 8];
  }
};

const SizeClassTable &sizeClasses() {
  static SizeClassTable Table;
  return Table;
}

} // namespace

size_t FreeListHeap::sizeClassCellSize(size_t Bytes) {
  if (Bytes > MaxSmallSize)
    return 0;
  const SizeClassTable &Table = sizeClasses();
  return Table.CellSizes[Table.classFor(Bytes)];
}

FreeListHeap::FreeListHeap(TypeRegistry &Types,
                           const FreeListHeapConfig &Config)
    : Heap(Types) {
  size_t BlockCount = std::max<size_t>(1, Config.CapacityBytes / BlockSize);
  ArenaBytes = BlockCount * BlockSize;
  Arena = std::make_unique<uint8_t[]>(ArenaBytes);
  Blocks.resize(BlockCount);
  FreeBlocks.reserve(BlockCount);
  // Push in reverse so blocks are handed out in ascending address order.
  for (size_t I = BlockCount; I != 0; --I)
    FreeBlocks.push_back(I - 1);
  FreeLists.assign(sizeClasses().CellSizes.size(), nullptr);
  // The large-object space is a bounded overflow area on top of the arena.
  LargeBudget = ArenaBytes / 4;
  Stats.BytesCapacity = ArenaBytes + LargeBudget;
}

FreeListHeap::~FreeListHeap() {
  for (LargeObject &Large : LargeObjects)
    std::free(Large.Storage);
}

bool FreeListHeap::carveBlock(uint32_t ClassIndex) {
  // "heap.block_acquire" simulates the block pool running dry — the same
  // observable failure as genuine arena exhaustion, so the emergency
  // cascade above us can be driven deterministically.
  if (FreeBlocks.empty() || GCA_UNLIKELY(faults::HeapBlockAcquire.shouldFail()))
    return false;
  size_t BlockIndex = FreeBlocks.back();
  FreeBlocks.pop_back();
  Blocks[BlockIndex].SizeClass = ClassIndex;

  size_t CellSize = sizeClasses().CellSizes[ClassIndex];
  uint8_t *Base = blockBase(BlockIndex);
  void *Head = FreeLists[ClassIndex];
  // Thread the cells back to front so the free list hands them out in
  // ascending address order.
  size_t CellCount = BlockSize / CellSize;
  for (size_t I = CellCount; I != 0; --I) {
    uint8_t *Cell = Base + (I - 1) * CellSize;
    auto *Hdr = reinterpret_cast<ObjectHeader *>(Cell);
    Hdr->Type = InvalidTypeId;
    Hdr->Flags = 0;
    std::memcpy(Cell + sizeof(ObjectHeader), &Head, sizeof(void *));
    Head = Cell;
  }
  FreeLists[ClassIndex] = Head;
  return true;
}

ObjRef FreeListHeap::allocateSmall(size_t CellSize, uint32_t ClassIndex) {
  if (GCA_UNLIKELY(!FreeLists[ClassIndex]))
    if (!carveBlock(ClassIndex))
      return nullptr;

  uint8_t *Cell = static_cast<uint8_t *>(FreeLists[ClassIndex]);
  void *Next;
  std::memcpy(&Next, Cell + sizeof(ObjectHeader), sizeof(void *));
  FreeLists[ClassIndex] = Next;

  std::memset(Cell + sizeof(ObjectHeader), 0, CellSize - sizeof(ObjectHeader));
  Stats.BytesAllocated += CellSize;
  Stats.BytesInUse += CellSize;
  ++Stats.ObjectsAllocated;
  return reinterpret_cast<ObjRef>(Cell);
}

ObjRef FreeListHeap::allocateLarge(size_t Size) {
  if (LargeBytesInUse + Size > LargeBudget)
    return nullptr;
  void *Storage = GCA_UNLIKELY(faults::HeapHostAlloc.shouldFail())
                      ? nullptr
                      : std::calloc(1, Size);
  if (!Storage) {
    // Not fatal: report the failure kind and let the cascade retry after
    // collections free large objects (sweepLargeObjects returns their
    // storage to the host allocator).
    LastAllocFailure = AllocFailureKind::HostAllocFailed;
    return nullptr;
  }
  LargeObjects.push_back({Storage, Size});
  LargeObjectSet.insert(Storage);
  LargeBytesInUse += Size;
  Stats.BytesAllocated += Size;
  Stats.BytesInUse += Size;
  ++Stats.ObjectsAllocated;
  return reinterpret_cast<ObjRef>(Storage);
}

ObjRef FreeListHeap::allocate(TypeId Id, uint64_t ArrayLength) {
  size_t Size = Types.allocationSize(Id, ArrayLength);
  ObjRef Obj;
  // allocateLarge refines this to HostAllocFailed when the host, not the
  // budget, is what failed.
  LastAllocFailure = AllocFailureKind::HeapFull;
  if (GCA_LIKELY(Size <= MaxSmallSize)) {
    uint32_t ClassIndex = sizeClasses().classFor(Size);
    Obj = allocateSmall(sizeClasses().CellSizes[ClassIndex], ClassIndex);
  } else {
    Obj = allocateLarge(Size);
  }
  if (GCA_UNLIKELY(!Obj))
    return nullptr;
  LastAllocFailure = AllocFailureKind::None;

  Obj->header().Type = Id;
  Obj->header().Flags = 0;
  const TypeInfo &Type = Types.get(Id);
  if (Type.isArray())
    Obj->setArrayLength(ArrayLength);
  return Obj;
}

bool FreeListHeap::sweepCarvedBlock(size_t BlockIndex, size_t CellSize,
                                    void **Head, void **TailOut,
                                    size_t &Reclaimed, uint64_t &LiveBytes) {
  uint8_t *Base = blockBase(BlockIndex);
  size_t CellCount = BlockSize / CellSize;

  // First pass: is anything in this block still live?
  size_t LiveInBlock = 0;
  for (size_t I = 0; I != CellCount; ++I) {
    auto *Hdr = reinterpret_cast<ObjectHeader *>(Base + I * CellSize);
    if (Hdr->isObject() && Hdr->isMarked())
      ++LiveInBlock;
  }

  if (LiveInBlock == 0) {
    // Return the whole block to the pool so any size class can reuse it.
    for (size_t I = 0; I != CellCount; ++I) {
      auto *Hdr = reinterpret_cast<ObjectHeader *>(Base + I * CellSize);
      if (Hdr->isObject()) {
        Reclaimed += CellSize;
        Hdr->Type = InvalidTypeId;
        Hdr->Flags = 0;
      }
    }
    Blocks[BlockIndex].SizeClass = ~0u;
    return false;
  }

  // Second pass: reclaim dead cells and rebuild this block's free cells,
  // threading back to front for ascending hand-out order.
  for (size_t I = CellCount; I != 0; --I) {
    uint8_t *Cell = Base + (I - 1) * CellSize;
    auto *Hdr = reinterpret_cast<ObjectHeader *>(Cell);
    if (Hdr->isObject()) {
      if (Hdr->isMarked()) {
        Hdr->clearMarked();
        LiveBytes += CellSize;
        continue;
      }
      Reclaimed += CellSize;
      Hdr->Type = InvalidTypeId;
      Hdr->Flags = 0;
    }
    // The deepest cell threaded while the list is still empty is the
    // eventual tail — the parallel merge needs it to splice segments.
    if (TailOut && !*Head)
      *TailOut = Cell;
    std::memcpy(Cell + sizeof(ObjectHeader), Head, sizeof(void *));
    *Head = Cell;
  }
  return true;
}

void FreeListHeap::sweepBlocksSequential(size_t &Reclaimed,
                                         uint64_t &LiveBytes) {
  const std::vector<size_t> &CellSizes = sizeClasses().CellSizes;
  for (size_t BlockIndex = 0, E = Blocks.size(); BlockIndex != E;
       ++BlockIndex) {
    BlockInfo &Info = Blocks[BlockIndex];
    if (Info.SizeClass == ~0u)
      continue;
    if (!sweepCarvedBlock(BlockIndex, CellSizes[Info.SizeClass],
                          &FreeLists[Info.SizeClass], nullptr, Reclaimed,
                          LiveBytes))
      FreeBlocks.push_back(BlockIndex);
  }
}

void FreeListHeap::sweepBlocksParallel(WorkerPool &Pool, size_t &Reclaimed,
                                       uint64_t &LiveBytes) {
  const std::vector<size_t> &CellSizes = sizeClasses().CellSizes;
  const size_t NumClasses = FreeLists.size();
  const size_t NumBlocks = Blocks.size();
  const size_t NumChunks =
      (NumBlocks + SweepChunkBlocks - 1) / SweepChunkBlocks;

  // Per-chunk accumulators, disjoint per worker: free-cell segments per
  // size class (head + tail), fully-freed block indices, and byte counts.
  std::vector<void *> Heads(NumChunks * NumClasses, nullptr);
  std::vector<void *> Tails(NumChunks * NumClasses, nullptr);
  std::vector<std::vector<size_t>> FreedPerChunk(NumChunks);
  std::vector<size_t> ReclaimedPerChunk(NumChunks, 0);
  std::vector<uint64_t> LivePerChunk(NumChunks, 0);

  std::atomic<size_t> NextChunk{0};
  Pool.run([&](unsigned) {
    for (;;) {
      size_t Chunk = NextChunk.fetch_add(1, std::memory_order_relaxed);
      if (Chunk >= NumChunks)
        return;
      size_t Begin = Chunk * SweepChunkBlocks;
      size_t End = std::min(Begin + SweepChunkBlocks, NumBlocks);
      for (size_t BlockIndex = Begin; BlockIndex != End; ++BlockIndex) {
        BlockInfo &Info = Blocks[BlockIndex];
        if (Info.SizeClass == ~0u)
          continue;
        size_t Slot = Chunk * NumClasses + Info.SizeClass;
        if (!sweepCarvedBlock(BlockIndex, CellSizes[Info.SizeClass],
                              &Heads[Slot], &Tails[Slot],
                              ReclaimedPerChunk[Chunk], LivePerChunk[Chunk]))
          FreedPerChunk[Chunk].push_back(BlockIndex);
      }
    }
  });

  // Merge, reproducing the sequential sweep's exact results. The sequential
  // loop prepends each later block's cells in front of the class list, so
  // the final list runs from the highest block downward: splice segments in
  // DESCENDING chunk order. Freed blocks were pushed in ascending order, so
  // they append in ASCENDING chunk order.
  for (size_t Class = 0; Class != NumClasses; ++Class) {
    void *Head = nullptr;
    void *PrevTail = nullptr;
    for (size_t Chunk = NumChunks; Chunk != 0; --Chunk) {
      void *SegHead = Heads[(Chunk - 1) * NumClasses + Class];
      if (!SegHead)
        continue;
      if (!Head)
        Head = SegHead;
      else
        std::memcpy(static_cast<uint8_t *>(PrevTail) + sizeof(ObjectHeader),
                    &SegHead, sizeof(void *));
      PrevTail = Tails[(Chunk - 1) * NumClasses + Class];
    }
    FreeLists[Class] = Head;
  }
  for (size_t Chunk = 0; Chunk != NumChunks; ++Chunk)
    FreeBlocks.insert(FreeBlocks.end(), FreedPerChunk[Chunk].begin(),
                      FreedPerChunk[Chunk].end());
  for (size_t Chunk = 0; Chunk != NumChunks; ++Chunk) {
    Reclaimed += ReclaimedPerChunk[Chunk];
    LiveBytes += LivePerChunk[Chunk];
  }
}

size_t FreeListHeap::sweep(WorkerPool *Pool) {
  size_t Reclaimed = 0;
  uint64_t LiveBytes = 0;

  std::fill(FreeLists.begin(), FreeLists.end(), nullptr);

  if (Pool && Pool->workerCount() > 1)
    sweepBlocksParallel(*Pool, Reclaimed, LiveBytes);
  else
    sweepBlocksSequential(Reclaimed, LiveBytes);

  sweepLargeObjects(Reclaimed);
  LiveBytes += LargeBytesInUse;

  LiveBytesAfterSweep = LiveBytes;
  Stats.BytesInUse = LiveBytes;
  return Reclaimed;
}

void FreeListHeap::sweepLargeObjects(size_t &Reclaimed) {
  size_t Out = 0;
  for (size_t I = 0, E = LargeObjects.size(); I != E; ++I) {
    LargeObject &Large = LargeObjects[I];
    auto *Hdr = static_cast<ObjectHeader *>(Large.Storage);
    if (Hdr->isMarked()) {
      Hdr->clearMarked();
      LargeObjects[Out++] = Large;
      continue;
    }
    Reclaimed += Large.Size;
    LargeBytesInUse -= Large.Size;
    LargeObjectSet.erase(Large.Storage);
    std::free(Large.Storage);
  }
  LargeObjects.resize(Out);
}

void FreeListHeap::forEachObject(const std::function<void(ObjRef)> &Fn) {
  const std::vector<size_t> &CellSizes = sizeClasses().CellSizes;
  for (size_t BlockIndex = 0, E = Blocks.size(); BlockIndex != E;
       ++BlockIndex) {
    const BlockInfo &Info = Blocks[BlockIndex];
    if (Info.SizeClass == ~0u)
      continue;
    size_t CellSize = CellSizes[Info.SizeClass];
    uint8_t *Base = blockBase(BlockIndex);
    for (size_t I = 0, N = BlockSize / CellSize; I != N; ++I) {
      auto *Obj = reinterpret_cast<ObjRef>(Base + I * CellSize);
      if (Obj->header().isObject())
        Fn(Obj);
    }
  }
  for (const LargeObject &Large : LargeObjects)
    Fn(static_cast<ObjRef>(Large.Storage));
}

bool FreeListHeap::contains(const void *Ptr) const {
  const uint8_t *P = static_cast<const uint8_t *>(Ptr);
  if (P >= Arena.get() && P < Arena.get() + ArenaBytes)
    return true;
  return LargeObjectSet.count(Ptr) != 0;
}

size_t FreeListHeap::carvedBlockCount() const {
  return Blocks.size() - FreeBlocks.size();
}
