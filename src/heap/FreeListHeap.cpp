//===- FreeListHeap.cpp - Segregated free-list heap -------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/FreeListHeap.h"

#include "gcassert/support/Compiler.h"
#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/Format.h"
#include "gcassert/support/WorkerPool.h"
#include "gcassert/telemetry/TraceEvents.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <optional>

using namespace gcassert;

Heap::~Heap() = default;

// The size-class table lives in heap/SizeClasses.h (shared with the TLAB
// bins, which must agree on the class geometry).
using sizeclasses::MaxSmallSize;

static const sizeclasses::SizeClassTable &sizeClasses() {
  return sizeclasses::table();
}

size_t FreeListHeap::sizeClassCellSize(size_t Bytes) {
  if (Bytes > MaxSmallSize)
    return 0;
  const sizeclasses::SizeClassTable &Table = sizeClasses();
  return Table.CellSizes[Table.classFor(Bytes)];
}

/// A free cell's first 16 bytes are structural (header + free-list next
/// pointer); hardened mode poisons up to PoisonCheckLimit bytes after them.
/// Both the write and the reuse check are bounded to the same window so the
/// sweep does not degrade into an O(heap) memset per collection — a scribble
/// past the window is the detection trade-off, not a correctness hole.
static constexpr size_t PoisonOffset = sizeof(ObjectHeader) + sizeof(void *);

/// Bytes of a free cell hardened mode actually poisons.
static size_t poisonSpan(size_t CellSize) {
  return std::min(CellSize - PoisonOffset, HeapHardening::PoisonCheckLimit);
}

FreeListHeap::FreeListHeap(TypeRegistry &Types,
                           const FreeListHeapConfig &Config)
    : Heap(Types) {
  size_t BlockCount = std::max<size_t>(1, Config.CapacityBytes / BlockSize);
  ArenaBytes = BlockCount * BlockSize;
  Arena = std::make_unique<uint8_t[]>(ArenaBytes);
  Blocks.resize(BlockCount);
  FreeBlocks.reserve(BlockCount);
  // Push in reverse so blocks are handed out in ascending address order.
  for (size_t I = BlockCount; I != 0; --I)
    FreeBlocks.push_back(I - 1);
  FreeLists.assign(sizeClasses().CellSizes.size(), nullptr);
  TlabBlocks.assign(sizeClasses().CellSizes.size(), TlabBlock());
  // The large-object space is a bounded overflow area on top of the arena.
  LargeBudget = ArenaBytes / 4;
  Stats.BytesCapacity = ArenaBytes + LargeBudget;
}

FreeListHeap::~FreeListHeap() {
  for (LargeObject &Large : LargeObjects)
    std::free(Large.Storage);
}

bool FreeListHeap::carveBlock(uint32_t ClassIndex) {
  // "heap.block_acquire" simulates the block pool running dry — the same
  // observable failure as genuine arena exhaustion, so the emergency
  // cascade above us can be driven deterministically.
  if (FreeBlocks.empty() || GCA_UNLIKELY(faults::HeapBlockAcquire.shouldFail()))
    return false;
  size_t BlockIndex = FreeBlocks.back();
  FreeBlocks.pop_back();
  Blocks[BlockIndex].SizeClass = ClassIndex;

  size_t CellSize = sizeClasses().CellSizes[ClassIndex];
  uint8_t *Base = blockBase(BlockIndex);
  void *Head = FreeLists[ClassIndex];
  // Thread the cells back to front so the free list hands them out in
  // ascending address order.
  size_t CellCount = BlockSize / CellSize;
  for (size_t I = CellCount; I != 0; --I) {
    uint8_t *Cell = Base + (I - 1) * CellSize;
    auto *Hdr = reinterpret_cast<ObjectHeader *>(Cell);
    Hdr->Type = InvalidTypeId;
    Hdr->Flags = 0;
    std::memcpy(Cell + sizeof(ObjectHeader), &Head, sizeof(void *));
    if (GCA_UNLIKELY(Hard != nullptr) && CellSize > PoisonOffset)
      HeapHardening::poisonRange(Cell + PoisonOffset, poisonSpan(CellSize));
    Head = Cell;
  }
  FreeLists[ClassIndex] = Head;
  return true;
}

ObjRef FreeListHeap::allocateSmall(size_t CellSize, uint32_t ClassIndex) {
  for (;;) {
    if (GCA_UNLIKELY(!FreeLists[ClassIndex]))
      if (!carveBlock(ClassIndex))
        return nullptr;

    uint8_t *Cell = static_cast<uint8_t *>(FreeLists[ClassIndex]);

    // "corrupt.freelist" scribbles the head cell's poisoned area right
    // before reuse — a deterministic stand-in for a use-after-free write.
    // The hardened poison check below must trip on it; without hardening
    // the scribble is erased by the zero-fill and stays inert.
    if (GCA_UNLIKELY(faults::CorruptFreeCell.shouldFail()) &&
        CellSize > PoisonOffset)
      std::memset(Cell + PoisonOffset, 0x5C,
                  std::min<size_t>(8, CellSize - PoisonOffset));
    // "corrupt.freelist.link" points the head cell's next link back at the
    // cell itself — the classic cross-linked free list. The pop below then
    // leaves the class list pointing at an allocated (live) cell, which
    // the structural audit detects and repairs.
    if (GCA_UNLIKELY(faults::CorruptFreeLink.shouldFail()))
      std::memcpy(Cell + sizeof(ObjectHeader), &FreeLists[ClassIndex],
                  sizeof(void *));

    void *Next;
    std::memcpy(&Next, Cell + sizeof(ObjectHeader), sizeof(void *));
    FreeLists[ClassIndex] = Next;

    if (GCA_UNLIKELY(Hard != nullptr) && CellSize > PoisonOffset) {
      if (std::optional<size_t> Damage = HeapHardening::findPoisonDamage(
              Cell + PoisonOffset, CellSize - PoisonOffset)) {
        // Someone wrote through a dangling pointer into this free cell.
        // Quarantine the cell (it is never reused) and try the next one.
        HeapDefect D;
        D.Obj = reinterpret_cast<ObjRef>(Cell);
        D.Kind = DefectKind::PoisonDamage;
        D.Description =
            format("free cell %p (class %u) poison damaged at offset %zu",
                   static_cast<void *>(Cell), ClassIndex,
                   PoisonOffset + *Damage);
        Hard->reportDefect(std::move(D));
        continue;
      }
    }

    std::memset(Cell + sizeof(ObjectHeader), 0,
                CellSize - sizeof(ObjectHeader));
    Stats.BytesAllocated += CellSize;
    Stats.BytesInUse += CellSize;
    InUseMirror.store(Stats.BytesInUse, std::memory_order_relaxed);
    ++Stats.ObjectsAllocated;
    return reinterpret_cast<ObjRef>(Cell);
  }
}

ObjRef FreeListHeap::allocateLarge(TypeId Id, uint64_t ArrayLength,
                                   size_t Size) {
  // CAS-claim the budget so concurrent large allocations never serialize
  // on the allocation mutex for admission, and the (possibly slow) host
  // allocation below runs outside every lock.
  size_t Cur = LargeBytesInUse.load(std::memory_order_relaxed);
  do {
    if (Cur + Size > LargeBudget) {
      LastAllocFailure = AllocFailureKind::HeapFull;
      return nullptr;
    }
  } while (!LargeBytesInUse.compare_exchange_weak(
      Cur, Cur + Size, std::memory_order_relaxed));

  void *Storage = GCA_UNLIKELY(faults::HeapHostAlloc.shouldFail())
                      ? nullptr
                      : std::calloc(1, Size);
  if (!Storage) {
    // Not fatal: return the claimed budget, report the failure kind and
    // let the cascade retry after collections free large objects
    // (sweepLargeObjects returns their storage to the host allocator).
    LargeBytesInUse.fetch_sub(Size, std::memory_order_relaxed);
    LastAllocFailure = AllocFailureKind::HostAllocFailed;
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> L(AllocMutex);
    LargeObjects.push_back({Storage, Size});
    LargeObjectSet.insert(Storage);
    Stats.BytesAllocated += Size;
    Stats.BytesInUse += Size;
    InUseMirror.store(Stats.BytesInUse, std::memory_order_relaxed);
    ++Stats.ObjectsAllocated;
  }
  LastAllocFailure = AllocFailureKind::None;
  return finishObject(static_cast<uint8_t *>(Storage), Id, ArrayLength);
}

ObjRef FreeListHeap::allocate(TypeId Id, uint64_t ArrayLength) {
  size_t Size = Types.allocationSize(Id, ArrayLength);
  if (GCA_UNLIKELY(Size > MaxSmallSize))
    return allocateLarge(Id, ArrayLength, Size);

  ObjRef Obj;
  {
    std::lock_guard<std::mutex> L(AllocMutex);
    uint32_t ClassIndex = sizeClasses().classFor(Size);
    Obj = allocateSmall(sizeClasses().CellSizes[ClassIndex], ClassIndex);
  }
  if (GCA_UNLIKELY(!Obj)) {
    LastAllocFailure = AllocFailureKind::HeapFull;
    return nullptr;
  }
  LastAllocFailure = AllocFailureKind::None;
  return finishObject(reinterpret_cast<uint8_t *>(Obj), Id, ArrayLength);
}

bool FreeListHeap::carveTlabBlock(uint32_t ClassIndex) {
  // Like carveBlock, but the cells become a heap-owned bump region instead
  // of free-list entries: headers are stamped free and the poison laid
  // down, yet no links are threaded — refills slice contiguous runs off
  // the region, and the sweep re-threads whatever was never handed out.
  if (FreeBlocks.empty() || GCA_UNLIKELY(faults::HeapBlockAcquire.shouldFail()))
    return false;
  size_t BlockIndex = FreeBlocks.back();
  FreeBlocks.pop_back();
  Blocks[BlockIndex].SizeClass = ClassIndex;

  size_t CellSize = sizeClasses().CellSizes[ClassIndex];
  uint8_t *Base = blockBase(BlockIndex);
  size_t CellCount = BlockSize / CellSize;
  for (size_t I = 0; I != CellCount; ++I) {
    uint8_t *Cell = Base + I * CellSize;
    auto *Hdr = reinterpret_cast<ObjectHeader *>(Cell);
    Hdr->Type = InvalidTypeId;
    Hdr->Flags = 0;
    if (GCA_UNLIKELY(Hard != nullptr) && CellSize > PoisonOffset)
      HeapHardening::poisonRange(Cell + PoisonOffset, poisonSpan(CellSize));
  }
  TlabBlocks[ClassIndex] = {Base, Base + CellCount * CellSize};
  return true;
}

void FreeListHeap::flushTlabStats(TlabSet &T) {
  Stats.BytesAllocated += T.PendingBytes;
  Stats.BytesInUse += T.PendingBytes;
  InUseMirror.store(Stats.BytesInUse, std::memory_order_relaxed);
  Stats.ObjectsAllocated += T.PendingObjects;
  T.PendingBytes = 0;
  T.PendingObjects = 0;
}

bool FreeListHeap::refillTlab(TlabSet &T, uint32_t ClassIndex) {
  std::lock_guard<std::mutex> L(AllocMutex);
  flushTlabStats(T);
  // "tlab.refill" simulates the refill finding no memory — the same
  // observable failure as genuine exhaustion, so the TLAB leg of the
  // emergency cascade can be driven deterministically.
  if (GCA_UNLIKELY(faults::TlabRefill.shouldFail()))
    return false;

  size_t CellSize = sizeClasses().CellSizes[ClassIndex];
  size_t WantCells = std::max<size_t>(1, T.desiredBytes(ClassIndex) / CellSize);
  T.noteRefill(ClassIndex);
  TlabBin &Bin = T.bin(ClassIndex);

  // Recycled cells first: detach a batch from the shared free list into
  // the bin's private chain. Keeps fragmentation behavior close to the
  // shared path (fresh blocks are carved only when nothing is free).
  size_t Got = 0;
  while (Got < WantCells && FreeLists[ClassIndex]) {
    uint8_t *Cell = static_cast<uint8_t *>(FreeLists[ClassIndex]);
    void *Next;
    std::memcpy(&Next, Cell + sizeof(ObjectHeader), sizeof(void *));
    FreeLists[ClassIndex] = Next;
    std::memcpy(Cell + sizeof(ObjectHeader), &Bin.LocalFree, sizeof(void *));
    Bin.LocalFree = Cell;
    ++Got;
  }
  if (Got)
    return true;

  // Else slice a bump run off the class's TLAB block, carving a new block
  // when the current one is spent.
  TlabBlock &Block = TlabBlocks[ClassIndex];
  if (Block.Cur == Block.End && !carveTlabBlock(ClassIndex))
    return false;
  size_t Avail = static_cast<size_t>(Block.End - Block.Cur) / CellSize;
  size_t Take = std::min(WantCells, Avail);
  Bin.BumpCur = Block.Cur;
  Bin.BumpEnd = Block.Cur + Take * CellSize;
  Block.Cur = Bin.BumpEnd;
  return true;
}

void FreeListHeap::retireTlab(TlabSet &T) {
  std::lock_guard<std::mutex> L(AllocMutex);
  flushTlabStats(T);
  T.retireBins();
}

void FreeListHeap::dropTlabBlocks() {
  std::lock_guard<std::mutex> L(AllocMutex);
  for (TlabBlock &Block : TlabBlocks)
    Block = TlabBlock();
}

bool FreeListHeap::tlabCellClean(uint8_t *Cell, size_t CellSize,
                                 uint32_t ClassIndex) {
  if (CellSize <= PoisonOffset)
    return true;
  std::optional<size_t> Damage = HeapHardening::findPoisonDamage(
      Cell + PoisonOffset, CellSize - PoisonOffset);
  if (GCA_LIKELY(!Damage))
    return true;
  // Someone wrote through a dangling pointer into this free cell.
  // Quarantine it (it is never reused) and have the caller take another.
  HeapDefect D;
  D.Obj = reinterpret_cast<ObjRef>(Cell);
  D.Kind = DefectKind::PoisonDamage;
  D.Description =
      format("tlab cell %p (class %u) poison damaged at offset %zu",
             static_cast<void *>(Cell), ClassIndex, PoisonOffset + *Damage);
  Hard->reportDefect(std::move(D));
  return false;
}

bool FreeListHeap::sweepCarvedBlock(size_t BlockIndex, size_t CellSize,
                                    void **Head, void **TailOut,
                                    size_t &Reclaimed, uint64_t &LiveBytes) {
  uint8_t *Base = blockBase(BlockIndex);
  size_t CellCount = BlockSize / CellSize;

  // Quarantined cells are pinned: corrupt headers make their cell state
  // untrustworthy, so they count as live (the block can never be returned
  // to the pool) and both passes step over them without touching memory.
  // The guard is one relaxed load per block while nothing is quarantined.
  bool AnyQuarantined = Hard && Hard->quarantinedCount() != 0;

  // First pass: is anything in this block still live?
  size_t LiveInBlock = 0;
  for (size_t I = 0; I != CellCount; ++I) {
    auto *Hdr = reinterpret_cast<ObjectHeader *>(Base + I * CellSize);
    if (GCA_UNLIKELY(AnyQuarantined) && Hard->isQuarantined(Hdr)) {
      ++LiveInBlock;
      continue;
    }
    if (Hdr->isObject() && Hdr->isMarked())
      ++LiveInBlock;
  }

  if (LiveInBlock == 0) {
    // Return the whole block to the pool so any size class can reuse it.
    for (size_t I = 0; I != CellCount; ++I) {
      auto *Hdr = reinterpret_cast<ObjectHeader *>(Base + I * CellSize);
      if (Hdr->isObject()) {
        Reclaimed += CellSize;
        Hdr->Type = InvalidTypeId;
        Hdr->Flags = 0;
      }
    }
    Blocks[BlockIndex].SizeClass = ~0u;
    return false;
  }

  // Second pass: reclaim dead cells and rebuild this block's free cells,
  // threading back to front for ascending hand-out order.
  for (size_t I = CellCount; I != 0; --I) {
    uint8_t *Cell = Base + (I - 1) * CellSize;
    auto *Hdr = reinterpret_cast<ObjectHeader *>(Cell);
    if (GCA_UNLIKELY(AnyQuarantined) && Hard->isQuarantined(Cell)) {
      LiveBytes += CellSize;
      continue;
    }
    if (Hdr->isObject()) {
      if (Hdr->isMarked()) {
        Hdr->clearMarked();
        LiveBytes += CellSize;
        continue;
      }
      Reclaimed += CellSize;
      Hdr->Type = InvalidTypeId;
      Hdr->Flags = 0;
      // Poison only on the live->free transition. Cells that were already
      // free keep the poison stamped when they died: re-poisoning them
      // every sweep would cost a memset per free cell per cycle (swamping
      // the mode's overhead on free-heavy workloads) and would erase the
      // dangling-write evidence the reuse check exists to find.
      if (GCA_UNLIKELY(Hard != nullptr) && CellSize > PoisonOffset)
        HeapHardening::poisonRange(Cell + PoisonOffset, poisonSpan(CellSize));
    }
    // The deepest cell threaded while the list is still empty is the
    // eventual tail — the parallel merge needs it to splice segments.
    if (TailOut && !*Head)
      *TailOut = Cell;
    std::memcpy(Cell + sizeof(ObjectHeader), Head, sizeof(void *));
    *Head = Cell;
  }
  return true;
}

void FreeListHeap::sweepBlocksSequential(size_t &Reclaimed,
                                         uint64_t &LiveBytes) {
  const std::vector<size_t> &CellSizes = sizeClasses().CellSizes;
  for (size_t BlockIndex = 0, E = Blocks.size(); BlockIndex != E;
       ++BlockIndex) {
    BlockInfo &Info = Blocks[BlockIndex];
    if (Info.SizeClass == ~0u)
      continue;
    if (!sweepCarvedBlock(BlockIndex, CellSizes[Info.SizeClass],
                          &FreeLists[Info.SizeClass], nullptr, Reclaimed,
                          LiveBytes))
      FreeBlocks.push_back(BlockIndex);
  }
}

void FreeListHeap::sweepBlocksParallel(WorkerPool &Pool, size_t &Reclaimed,
                                       uint64_t &LiveBytes) {
  const std::vector<size_t> &CellSizes = sizeClasses().CellSizes;
  const size_t NumClasses = FreeLists.size();
  const size_t NumBlocks = Blocks.size();
  const size_t NumChunks =
      (NumBlocks + SweepChunkBlocks - 1) / SweepChunkBlocks;

  // Per-chunk accumulators, disjoint per worker: free-cell segments per
  // size class (head + tail), fully-freed block indices, and byte counts.
  std::vector<void *> Heads(NumChunks * NumClasses, nullptr);
  std::vector<void *> Tails(NumChunks * NumClasses, nullptr);
  std::vector<std::vector<size_t>> FreedPerChunk(NumChunks);
  std::vector<size_t> ReclaimedPerChunk(NumChunks, 0);
  std::vector<uint64_t> LivePerChunk(NumChunks, 0);

  std::atomic<size_t> NextChunk{0};
  Pool.run([&](unsigned W) {
    // One sweep_worker lane per GC thread in the exported trace; the end
    // arg is the bytes this worker reclaimed across its claimed chunks.
    telemetry::Span WorkerSpan(telemetry::EventKind::SweepWorker, W);
    size_t MyReclaimed = 0;
    for (;;) {
      size_t Chunk = NextChunk.fetch_add(1, std::memory_order_relaxed);
      if (Chunk >= NumChunks) {
        WorkerSpan.setEndArg(MyReclaimed);
        return;
      }
      size_t Begin = Chunk * SweepChunkBlocks;
      size_t End = std::min(Begin + SweepChunkBlocks, NumBlocks);
      for (size_t BlockIndex = Begin; BlockIndex != End; ++BlockIndex) {
        BlockInfo &Info = Blocks[BlockIndex];
        if (Info.SizeClass == ~0u)
          continue;
        size_t Slot = Chunk * NumClasses + Info.SizeClass;
        if (!sweepCarvedBlock(BlockIndex, CellSizes[Info.SizeClass],
                              &Heads[Slot], &Tails[Slot],
                              ReclaimedPerChunk[Chunk], LivePerChunk[Chunk]))
          FreedPerChunk[Chunk].push_back(BlockIndex);
      }
      MyReclaimed += ReclaimedPerChunk[Chunk];
    }
  });

  // Merge, reproducing the sequential sweep's exact results. The sequential
  // loop prepends each later block's cells in front of the class list, so
  // the final list runs from the highest block downward: splice segments in
  // DESCENDING chunk order. Freed blocks were pushed in ascending order, so
  // they append in ASCENDING chunk order.
  for (size_t Class = 0; Class != NumClasses; ++Class) {
    void *Head = nullptr;
    void *PrevTail = nullptr;
    for (size_t Chunk = NumChunks; Chunk != 0; --Chunk) {
      void *SegHead = Heads[(Chunk - 1) * NumClasses + Class];
      if (!SegHead)
        continue;
      if (!Head)
        Head = SegHead;
      else
        std::memcpy(static_cast<uint8_t *>(PrevTail) + sizeof(ObjectHeader),
                    &SegHead, sizeof(void *));
      PrevTail = Tails[(Chunk - 1) * NumClasses + Class];
    }
    FreeLists[Class] = Head;
  }
  for (size_t Chunk = 0; Chunk != NumChunks; ++Chunk)
    FreeBlocks.insert(FreeBlocks.end(), FreedPerChunk[Chunk].begin(),
                      FreedPerChunk[Chunk].end());
  for (size_t Chunk = 0; Chunk != NumChunks; ++Chunk) {
    Reclaimed += ReclaimedPerChunk[Chunk];
    LiveBytes += LivePerChunk[Chunk];
  }
}

size_t FreeListHeap::sweep(WorkerPool *Pool) {
  size_t Reclaimed = 0;
  uint64_t LiveBytes = 0;

  std::fill(FreeLists.begin(), FreeLists.end(), nullptr);
  // Defensive for heap-direct tests that sweep without the Vm's retire
  // pass: any outstanding bump regions become plain free cells below.
  for (TlabBlock &Block : TlabBlocks)
    Block = TlabBlock();

  if (Pool && Pool->workerCount() > 1)
    sweepBlocksParallel(*Pool, Reclaimed, LiveBytes);
  else
    sweepBlocksSequential(Reclaimed, LiveBytes);

  sweepLargeObjects(Reclaimed);
  LiveBytes += LargeBytesInUse.load(std::memory_order_relaxed);

  LiveBytesAfterSweep = LiveBytes;
  Stats.BytesInUse = LiveBytes;
  InUseMirror.store(LiveBytes, std::memory_order_relaxed);
  return Reclaimed;
}

void FreeListHeap::sweepLargeObjects(size_t &Reclaimed) {
  bool AnyQuarantined = Hard && Hard->quarantinedCount() != 0;
  size_t Out = 0;
  for (size_t I = 0, E = LargeObjects.size(); I != E; ++I) {
    LargeObject &Large = LargeObjects[I];
    auto *Hdr = static_cast<ObjectHeader *>(Large.Storage);
    if (GCA_UNLIKELY(AnyQuarantined) && Hard->isQuarantined(Large.Storage)) {
      // Pinned: the storage stays resident (so no fresh object can alias
      // the quarantined address) but is excluded from enumeration.
      LargeObjects[Out++] = Large;
      continue;
    }
    if (Hdr->isMarked()) {
      Hdr->clearMarked();
      LargeObjects[Out++] = Large;
      continue;
    }
    Reclaimed += Large.Size;
    LargeBytesInUse.fetch_sub(Large.Size, std::memory_order_relaxed);
    LargeObjectSet.erase(Large.Storage);
    // Poison before returning to the host so dangling reads surface as
    // poison, not as stale-but-plausible object bytes.
    if (GCA_UNLIKELY(Hard != nullptr))
      HeapHardening::poisonRange(Large.Storage, Large.Size);
    std::free(Large.Storage);
  }
  LargeObjects.resize(Out);
}

void FreeListHeap::forEachObject(const std::function<void(ObjRef)> &Fn) {
  // Quarantined cells carry untrustworthy headers and are excluded from
  // enumeration (and so from assertion accounting and histograms).
  bool AnyQuarantined = Hard && Hard->quarantinedCount() != 0;
  const std::vector<size_t> &CellSizes = sizeClasses().CellSizes;
  for (size_t BlockIndex = 0, E = Blocks.size(); BlockIndex != E;
       ++BlockIndex) {
    const BlockInfo &Info = Blocks[BlockIndex];
    if (Info.SizeClass == ~0u)
      continue;
    size_t CellSize = CellSizes[Info.SizeClass];
    uint8_t *Base = blockBase(BlockIndex);
    for (size_t I = 0, N = BlockSize / CellSize; I != N; ++I) {
      auto *Obj = reinterpret_cast<ObjRef>(Base + I * CellSize);
      if (GCA_UNLIKELY(AnyQuarantined) && Hard->isQuarantined(Obj))
        continue;
      if (Obj->header().isObject())
        Fn(Obj);
    }
  }
  for (const LargeObject &Large : LargeObjects) {
    if (GCA_UNLIKELY(AnyQuarantined) && Hard->isQuarantined(Large.Storage))
      continue;
    Fn(static_cast<ObjRef>(Large.Storage));
  }
}

bool FreeListHeap::contains(const void *Ptr) const {
  const uint8_t *P = static_cast<const uint8_t *>(Ptr);
  if (P >= Arena.get() && P < Arena.get() + ArenaBytes)
    return true;
  return LargeObjectSet.count(Ptr) != 0;
}

size_t FreeListHeap::carvedBlockCount() const {
  return Blocks.size() - FreeBlocks.size();
}

void FreeListHeap::auditStructure(std::vector<HeapDefect> &Defects,
                                  bool Repair) {
  const std::vector<size_t> &CellSizes = sizeClasses().CellSizes;

  // True cell capacity per class (from block metadata, not headers): any
  // list longer than its class capacity must contain a cycle.
  std::vector<size_t> ClassCapacity(FreeLists.size(), 0);
  for (const BlockInfo &Info : Blocks)
    if (Info.SizeClass != ~0u)
      ClassCapacity[Info.SizeClass] += BlockSize / CellSizes[Info.SizeClass];

  for (size_t Class = 0; Class != FreeLists.size(); ++Class) {
    size_t CellSize = CellSizes[Class];
    void **Link = &FreeLists[Class];
    size_t Count = 0;
    while (*Link) {
      uint8_t *Cell = static_cast<uint8_t *>(*Link);
      const char *Problem = nullptr;
      if (++Count > ClassCapacity[Class])
        Problem = "longer than the class's carved cell capacity (cycle)";
      else if (Cell < Arena.get() || Cell >= Arena.get() + ArenaBytes)
        Problem = "links outside the arena";
      else if (reinterpret_cast<uintptr_t>(Cell) % alignof(ObjectHeader) != 0)
        Problem = "links to a misaligned address";
      else {
        size_t Offset = static_cast<size_t>(Cell - Arena.get());
        const BlockInfo &Info = Blocks[Offset / BlockSize];
        if (Info.SizeClass != Class)
          Problem = "links into a block of another size class";
        else if (Offset % BlockSize % CellSize != 0)
          Problem = "links to a non-cell boundary";
        else if (reinterpret_cast<ObjectHeader *>(Cell)->isObject())
          Problem = "links to a live object (cross-linked list)";
      }
      if (!Problem) {
        Link = reinterpret_cast<void **>(Cell + sizeof(ObjectHeader));
        continue;
      }
      HeapDefect D;
      D.Kind = DefectKind::FreeListCorrupt;
      D.Description =
          format("free list for size class %zu (%zu-byte cells) %s at %p",
                 Class, CellSize, Problem, static_cast<void *>(Cell));
      Defects.push_back(std::move(D));
      // Nothing after a bad link can be trusted; containment truncates the
      // list there (losing free cells, never corrupting allocation).
      if (Repair)
        *Link = nullptr;
      break;
    }
  }
}
