//===- GenerationalHeap.cpp - Nursery + old gen ---------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/GenerationalHeap.h"

#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/Format.h"

#include <algorithm>
#include <cstring>

using namespace gcassert;

StoreBarrier::~StoreBarrier() = default;

StoreBarrier *gcassert::detail::ActiveStoreBarrier = nullptr;

static size_t alignUp(size_t Size) {
  return (Size + sizeof(void *) - 1) & ~(sizeof(void *) - 1);
}

GenerationalHeap::GenerationalHeap(TypeRegistry &Types,
                                   const GenerationalHeapConfig &Config)
    : Heap(Types) {
  NurseryBytes = Config.NurseryBytes;
  if (NurseryBytes == 0)
    NurseryBytes = std::clamp<size_t>(Config.CapacityBytes / 8, 256u * 1024,
                                      4u * 1024 * 1024);
  NurseryBytes = alignUp(NurseryBytes);
  Nursery = std::make_unique<uint8_t[]>(NurseryBytes);
  NurseryBump = Nursery.get();

  FreeListHeapConfig OldConfig;
  OldConfig.CapacityBytes = Config.CapacityBytes > NurseryBytes
                                ? Config.CapacityBytes - NurseryBytes
                                : Config.CapacityBytes;
  OldGen = std::make_unique<FreeListHeap>(Types, OldConfig);
  Stats.BytesCapacity = NurseryBytes + OldGen->stats().BytesCapacity;

  if (detail::ActiveStoreBarrier)
    reportFatalError("only one generational heap may be live per process");
  detail::ActiveStoreBarrier = this;
}

GenerationalHeap::~GenerationalHeap() {
  assert(detail::ActiveStoreBarrier == this && "barrier hijacked");
  detail::ActiveStoreBarrier = nullptr;
}

ObjRef GenerationalHeap::allocateInNursery(size_t Size) {
  if (GCA_UNLIKELY(NurseryBump + Size > Nursery.get() + NurseryBytes))
    return nullptr;
  auto *Obj = reinterpret_cast<ObjRef>(NurseryBump);
  NurseryBump += Size;
  std::memset(static_cast<void *>(Obj), 0, Size);
  return Obj;
}

ObjRef GenerationalHeap::allocate(TypeId Id, uint64_t ArrayLength) {
  size_t Size = alignUp(Types.allocationSize(Id, ArrayLength));

  // Objects too large for a quarter of the nursery are allocated directly
  // in the old generation (pretenuring large arrays, the usual policy).
  if (GCA_UNLIKELY(Size > NurseryBytes / 4)) {
    ObjRef Pretenured = OldGen->allocate(Id, ArrayLength);
    std::lock_guard<std::mutex> L(AllocMutex);
    if (Pretenured) {
      Stats.BytesAllocated += Size;
      ++Stats.ObjectsAllocated;
      LastAllocFailure = AllocFailureKind::None;
    } else {
      LastAllocFailure = OldGen->lastAllocFailure();
    }
    return Pretenured;
  }

  std::lock_guard<std::mutex> L(AllocMutex);
  ObjRef Obj = allocateInNursery(Size);
  if (GCA_UNLIKELY(!Obj)) {
    // Nursery full: the VM runs a (minor) collection.
    LastAllocFailure = AllocFailureKind::HeapFull;
    return nullptr;
  }
  LastAllocFailure = AllocFailureKind::None;

  Obj->header().Type = Id;
  Obj->header().Flags = 0;
  const TypeInfo &Type = Types.get(Id);
  if (Type.isArray())
    Obj->setArrayLength(ArrayLength);
  if (GCA_UNLIKELY(Hard != nullptr)) {
    Hard->stampObject(Obj, Type.isArray() ? ArrayLength : 0);
    NurserySizeLog.push_back(static_cast<uint32_t>(Size));
  }

  Stats.BytesAllocated += Size;
  Stats.BytesInUse += Size;
  ++Stats.ObjectsAllocated;
  return Obj;
}

void GenerationalHeap::recordStore(Object *Holder, Object **Slot, Object *Old,
                                   Object *New) {
  (void)Slot;
  (void)Old;
  if (New && inNursery(New) && !inNursery(Holder)) {
    std::lock_guard<std::mutex> L(RemSetMutex);
    RememberedSet.insert(Holder);
    // "corrupt.remset" slips an interior pointer into the remembered set —
    // the kind of entry a buggy barrier would record. It points into the
    // holder's payload, so it is in-heap but reads as a garbage header;
    // the minor-GC entry validation / structural audit must catch it.
    if (GCA_UNLIKELY(faults::CorruptRemSet.shouldFail()))
      RememberedSet.insert(reinterpret_cast<Object *>(Holder->payload()));
  }
}

ObjRef GenerationalHeap::promote(ObjRef Obj) {
  assert(inNursery(Obj) && "promoting a non-nursery object");
  assert(!Obj->isForwarded() && "object already promoted");

  const TypeInfo &Type = Types.get(Obj->typeId());
  uint64_t Length = Type.isArray() ? Obj->arrayLength() : 0;
  // Some nursery objects are already forwarded by the time this one fails,
  // so there is no graph to fall back to — abort with diagnostics. The
  // collector's pre-flight guard (gen.promote.guard) exists to route
  // around this by forcing a major collection first; "gen.promote" injects
  // the failure the guard is supposed to make unreachable.
  ObjRef To = OldGen->allocate(Obj->typeId(), Length);
  if (GCA_UNLIKELY(!To) || GCA_UNLIKELY(faults::GenPromote.shouldFail()))
    reportFatalErrorWithDiagnostics(
        "old generation exhausted during nursery promotion");

  // Copy the payload and carry the assertion bits across generations
  // (assert-dead, assert-unshared, ownership flags all live in the header).
  size_t PayloadBytes = Types.allocationSize(Obj->typeId(), Length) -
                        sizeof(ObjectHeader);
  std::memcpy(To->payload(), Obj->payload(), PayloadBytes);
  To->header().Flags = Obj->header().Flags;
  Obj->forwardTo(To);
  return To;
}

void GenerationalHeap::finishMinorCollection() {
  EvacuationActive = false;
  NurseryBump = Nursery.get();
  RememberedSet.clear();
  Stats.BytesInUse = OldGen->stats().BytesInUse;
  if (GCA_UNLIKELY(Hard != nullptr)) {
    NurserySizeLog.clear();
    // The nursery reset recycles every nursery address: corrupt nursery
    // objects (edges already severed) are gone, so their quarantine
    // entries must not taint the next batch of allocations.
    Hard->dropQuarantinedInRange(Nursery.get(), Nursery.get() + NurseryBytes);
  }
}

void GenerationalHeap::clearNurseryMarks() {
  if (GCA_UNLIKELY(Hard != nullptr)) {
    uint8_t *Cursor = Nursery.get();
    for (uint32_t Size : NurserySizeLog) {
      auto *Obj = reinterpret_cast<ObjRef>(Cursor);
      Cursor += Size;
      if (GCA_UNLIKELY(!Hard->validObjectHeader(Obj)))
        continue;
      Obj->header().clearMarked();
    }
    assert(Cursor == NurseryBump && "size log out of sync with nursery bump");
    return;
  }
  uint8_t *Cursor = Nursery.get();
  while (Cursor < NurseryBump) {
    auto *Obj = reinterpret_cast<ObjRef>(Cursor);
    const TypeInfo &Type = Types.get(Obj->typeId());
    uint64_t Length = Type.isArray() ? Obj->arrayLength() : 0;
    Cursor += alignUp(Types.allocationSize(Obj->typeId(), Length));
    Obj->header().clearMarked();
  }
}

void GenerationalHeap::forEachNurseryObject(
    const std::function<void(ObjRef)> &Fn) {
  if (GCA_UNLIKELY(Hard != nullptr)) {
    uint8_t *Cursor = Nursery.get();
    for (uint32_t Size : NurserySizeLog) {
      auto *Obj = reinterpret_cast<ObjRef>(Cursor);
      Cursor += Size;
      if (GCA_UNLIKELY(!Hard->validObjectHeader(Obj)) ||
          GCA_UNLIKELY(Hard->isQuarantined(Obj)))
        continue;
      Fn(Obj);
    }
    assert(Cursor == NurseryBump && "size log out of sync with nursery bump");
    return;
  }
  uint8_t *Cursor = Nursery.get();
  while (Cursor < NurseryBump) {
    auto *Obj = reinterpret_cast<ObjRef>(Cursor);
    assert(Obj->header().isObject() && "nursery walk hit a non-object");
    const TypeInfo &Type = Types.get(Obj->typeId());
    uint64_t Length = Type.isArray() ? Obj->arrayLength() : 0;
    Cursor += alignUp(Types.allocationSize(Obj->typeId(), Length));
    Fn(Obj);
  }
}

void GenerationalHeap::forEachObject(const std::function<void(ObjRef)> &Fn) {
  OldGen->forEachObject(Fn);
  if (GCA_UNLIKELY(Hard != nullptr)) {
    uint8_t *Cursor = Nursery.get();
    for (uint32_t Size : NurserySizeLog) {
      auto *Obj = reinterpret_cast<ObjRef>(Cursor);
      Cursor += Size;
      if (GCA_UNLIKELY(!Hard->validObjectHeader(Obj)) ||
          GCA_UNLIKELY(Hard->isQuarantined(Obj)))
        continue;
      Fn(Obj);
    }
    assert(Cursor == NurseryBump && "size log out of sync with nursery bump");
    return;
  }
  uint8_t *Cursor = Nursery.get();
  while (Cursor < NurseryBump) {
    auto *Obj = reinterpret_cast<ObjRef>(Cursor);
    assert(Obj->header().isObject() && "nursery walk hit a non-object");
    const TypeInfo &Type = Types.get(Obj->typeId());
    uint64_t Length = Type.isArray() ? Obj->arrayLength() : 0;
    Cursor += alignUp(Types.allocationSize(Obj->typeId(), Length));
    Fn(Obj);
  }
}

void GenerationalHeap::auditStructure(std::vector<HeapDefect> &Defects,
                                      bool Repair) {
  for (auto It = RememberedSet.begin(); It != RememberedSet.end();) {
    Object *Entry = *It;
    const char *Problem = nullptr;
    if (!OldGen->contains(Entry))
      Problem = "is not an old-generation address";
    else if (Hard && !Hard->validObjectHeader(Entry))
      Problem = "does not carry a well-formed object header";
    else if (!Hard && (!Entry->header().isObject() ||
                       Entry->typeId() > Types.size()))
      Problem = "does not carry a registered type id";
    if (!Problem) {
      ++It;
      continue;
    }
    HeapDefect D;
    D.Kind = DefectKind::RememberedSetCorrupt;
    D.Description = format("remembered-set entry %p %s",
                           static_cast<void *>(Entry), Problem);
    Defects.push_back(std::move(D));
    It = Repair ? RememberedSet.erase(It) : std::next(It);
  }
  OldGen->auditStructure(Defects, Repair);
}

bool GenerationalHeap::contains(const void *Ptr) const {
  return inNursery(Ptr) || OldGen->contains(Ptr);
}
