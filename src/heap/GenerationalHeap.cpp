//===- GenerationalHeap.cpp - Nursery + old gen ---------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/GenerationalHeap.h"

#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"

#include <algorithm>
#include <cstring>

using namespace gcassert;

StoreBarrier::~StoreBarrier() = default;

StoreBarrier *gcassert::detail::ActiveStoreBarrier = nullptr;

static size_t alignUp(size_t Size) {
  return (Size + sizeof(void *) - 1) & ~(sizeof(void *) - 1);
}

GenerationalHeap::GenerationalHeap(TypeRegistry &Types,
                                   const GenerationalHeapConfig &Config)
    : Heap(Types) {
  NurseryBytes = Config.NurseryBytes;
  if (NurseryBytes == 0)
    NurseryBytes = std::clamp<size_t>(Config.CapacityBytes / 8, 256u * 1024,
                                      4u * 1024 * 1024);
  NurseryBytes = alignUp(NurseryBytes);
  Nursery = std::make_unique<uint8_t[]>(NurseryBytes);
  NurseryBump = Nursery.get();

  FreeListHeapConfig OldConfig;
  OldConfig.CapacityBytes = Config.CapacityBytes > NurseryBytes
                                ? Config.CapacityBytes - NurseryBytes
                                : Config.CapacityBytes;
  OldGen = std::make_unique<FreeListHeap>(Types, OldConfig);
  Stats.BytesCapacity = NurseryBytes + OldGen->stats().BytesCapacity;

  if (detail::ActiveStoreBarrier)
    reportFatalError("only one generational heap may be live per process");
  detail::ActiveStoreBarrier = this;
}

GenerationalHeap::~GenerationalHeap() {
  assert(detail::ActiveStoreBarrier == this && "barrier hijacked");
  detail::ActiveStoreBarrier = nullptr;
}

ObjRef GenerationalHeap::allocateInNursery(size_t Size) {
  if (GCA_UNLIKELY(NurseryBump + Size > Nursery.get() + NurseryBytes))
    return nullptr;
  auto *Obj = reinterpret_cast<ObjRef>(NurseryBump);
  NurseryBump += Size;
  std::memset(static_cast<void *>(Obj), 0, Size);
  return Obj;
}

ObjRef GenerationalHeap::allocate(TypeId Id, uint64_t ArrayLength) {
  size_t Size = alignUp(Types.allocationSize(Id, ArrayLength));

  // Objects too large for a quarter of the nursery are allocated directly
  // in the old generation (pretenuring large arrays, the usual policy).
  if (GCA_UNLIKELY(Size > NurseryBytes / 4)) {
    ObjRef Pretenured = OldGen->allocate(Id, ArrayLength);
    if (Pretenured) {
      Stats.BytesAllocated += Size;
      ++Stats.ObjectsAllocated;
      LastAllocFailure = AllocFailureKind::None;
    } else {
      LastAllocFailure = OldGen->lastAllocFailure();
    }
    return Pretenured;
  }

  ObjRef Obj = allocateInNursery(Size);
  if (GCA_UNLIKELY(!Obj)) {
    // Nursery full: the VM runs a (minor) collection.
    LastAllocFailure = AllocFailureKind::HeapFull;
    return nullptr;
  }
  LastAllocFailure = AllocFailureKind::None;

  Obj->header().Type = Id;
  Obj->header().Flags = 0;
  const TypeInfo &Type = Types.get(Id);
  if (Type.isArray())
    Obj->setArrayLength(ArrayLength);

  Stats.BytesAllocated += Size;
  Stats.BytesInUse += Size;
  ++Stats.ObjectsAllocated;
  return Obj;
}

ObjRef GenerationalHeap::promote(ObjRef Obj) {
  assert(inNursery(Obj) && "promoting a non-nursery object");
  assert(!Obj->isForwarded() && "object already promoted");

  const TypeInfo &Type = Types.get(Obj->typeId());
  uint64_t Length = Type.isArray() ? Obj->arrayLength() : 0;
  // Some nursery objects are already forwarded by the time this one fails,
  // so there is no graph to fall back to — abort with diagnostics. The
  // collector's pre-flight guard (gen.promote.guard) exists to route
  // around this by forcing a major collection first; "gen.promote" injects
  // the failure the guard is supposed to make unreachable.
  ObjRef To = OldGen->allocate(Obj->typeId(), Length);
  if (GCA_UNLIKELY(!To) || GCA_UNLIKELY(faults::GenPromote.shouldFail()))
    reportFatalErrorWithDiagnostics(
        "old generation exhausted during nursery promotion");

  // Copy the payload and carry the assertion bits across generations
  // (assert-dead, assert-unshared, ownership flags all live in the header).
  size_t PayloadBytes = Types.allocationSize(Obj->typeId(), Length) -
                        sizeof(ObjectHeader);
  std::memcpy(To->payload(), Obj->payload(), PayloadBytes);
  To->header().Flags = Obj->header().Flags;
  Obj->forwardTo(To);
  return To;
}

void GenerationalHeap::finishMinorCollection() {
  EvacuationActive = false;
  NurseryBump = Nursery.get();
  RememberedSet.clear();
  Stats.BytesInUse = OldGen->stats().BytesInUse;
}

void GenerationalHeap::clearNurseryMarks() {
  uint8_t *Cursor = Nursery.get();
  while (Cursor < NurseryBump) {
    auto *Obj = reinterpret_cast<ObjRef>(Cursor);
    const TypeInfo &Type = Types.get(Obj->typeId());
    uint64_t Length = Type.isArray() ? Obj->arrayLength() : 0;
    Cursor += alignUp(Types.allocationSize(Obj->typeId(), Length));
    Obj->header().clearMarked();
  }
}

void GenerationalHeap::forEachObject(const std::function<void(ObjRef)> &Fn) {
  OldGen->forEachObject(Fn);
  uint8_t *Cursor = Nursery.get();
  while (Cursor < NurseryBump) {
    auto *Obj = reinterpret_cast<ObjRef>(Cursor);
    assert(Obj->header().isObject() && "nursery walk hit a non-object");
    const TypeInfo &Type = Types.get(Obj->typeId());
    uint64_t Length = Type.isArray() ? Obj->arrayLength() : 0;
    Cursor += alignUp(Types.allocationSize(Obj->typeId(), Length));
    Fn(Obj);
  }
}

bool GenerationalHeap::contains(const void *Ptr) const {
  return inNursery(Ptr) || OldGen->contains(Ptr);
}
