//===- Hardening.cpp - Hardened heap mode ---------------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/Hardening.h"

#include "gcassert/heap/Heap.h"
#include "gcassert/support/Format.h"
#include "gcassert/telemetry/TraceEvents.h"

#include <cstdio>

using namespace gcassert;

const char *gcassert::defectKindName(DefectKind Kind) {
  switch (Kind) {
  case DefectKind::BadTypeId:
    return "bad-type-id";
  case DefectKind::ChecksumMismatch:
    return "checksum-mismatch";
  case DefectKind::PoisonDamage:
    return "poison-damage";
  case DefectKind::BadReference:
    return "bad-reference";
  case DefectKind::FreeListCorrupt:
    return "free-list-corrupt";
  case DefectKind::RememberedSetCorrupt:
    return "remembered-set-corrupt";
  case DefectKind::StaleGcState:
    return "stale-gc-state";
  }
  return "unknown";
}

HeapHardening::HeapHardening(HardeningMode Mode, HardeningPolicy Policy,
                             DefectCallback Callback)
    : Mode(Mode), Policy(Policy), Callback(std::move(Callback)) {
  CrashDump.emplace("hardening", [this] {
    std::fputs(describeState().c_str(), stderr);
  });
}

HeapHardening::~HeapHardening() = default;

void HeapHardening::attachHeap(Heap &H) {
  AttachedHeap = &H;
  Types = &H.types();
  syncChecksumCache();
}

void HeapHardening::syncChecksumCache() {
  size_t Rows = Types->size() + 1; // Indexed by id; slot 0 unused.
  if (ChecksumCache.size() >= Rows)
    return;
  ChecksumCache.reserve(Rows);
  while (ChecksumCache.size() < Rows) {
    TypeId Id = static_cast<TypeId>(ChecksumCache.size());
    TypeChecksum Row;
    if (Id != InvalidTypeId) {
      Row.IdCrc = crc32c(&Id, sizeof(Id));
      Row.NonArray = headerChecksum(Id, 0);
      Row.IsArray = Types->get(Id).isArray();
      if (Row.IsArray) {
        // Precompute the folded checksum for every small length: the
        // 8-byte length CRC per first-visited array otherwise dominates
        // Check-mode mark time on array-heavy workloads. 2 KiB per array
        // type buys CRC-free verification for the common case.
        Row.SmallLens.resize(SmallLenTableSize);
        for (uint64_t L = 0; L < SmallLenTableSize; ++L)
          Row.SmallLens[static_cast<size_t>(L)] =
              foldChecksum16(crc32c(&L, sizeof(L), Row.IdCrc));
      }
    }
    ChecksumCache.push_back(std::move(Row));
  }
}

bool HeapHardening::pointerPlausible(const void *Ptr) const {
  if (reinterpret_cast<uintptr_t>(Ptr) % alignof(ObjectHeader) != 0)
    return false;
  return AttachedHeap && AttachedHeap->contains(Ptr);
}

void HeapHardening::reportEdgeDefect(EdgeVerdict Verdict, ObjRef Obj,
                                     std::vector<ObjRef> Path) {
  noteSeveredEdge();
  if (Verdict == EdgeVerdict::Quarantined)
    return; // Already reported when first detected; just contain.

  HeapDefect Defect;
  Defect.Path = std::move(Path);
  switch (Verdict) {
  case EdgeVerdict::BadReference:
    // The pointer itself is implausible — never read its "header".
    Defect.Kind = DefectKind::BadReference;
    Defect.Description = format(
        "trace edge target %p is outside the heap or misaligned",
        static_cast<const void *>(Obj));
    BadReferences.fetch_add(1, std::memory_order_relaxed);
    break;
  case EdgeVerdict::BadTypeId:
    Defect.Obj = Obj;
    Defect.Kind = DefectKind::BadTypeId;
    Defect.Description =
        format("object %p carries invalid type id %u (registry has %u)",
                     static_cast<const void *>(Obj),
                     static_cast<unsigned>(Obj->header().Type),
                     static_cast<unsigned>(Types->size()));
    BadTypeIds.fetch_add(1, std::memory_order_relaxed);
    break;
  case EdgeVerdict::ChecksumMismatch:
    Defect.Obj = Obj;
    Defect.Kind = DefectKind::ChecksumMismatch;
    Defect.Description = format(
        "object %p (type id %u) header checksum 0x%04x != expected 0x%04x",
        static_cast<const void *>(Obj),
        static_cast<unsigned>(Obj->header().Type),
        static_cast<unsigned>(Obj->header().storedChecksum()),
        static_cast<unsigned>(expectedChecksum(Obj)));
    ChecksumFailures.fetch_add(1, std::memory_order_relaxed);
    break;
  case EdgeVerdict::Ok:
  case EdgeVerdict::Quarantined:
    return;
  }
  // Quarantine keyed on the raw address even for BadReference verdicts, so
  // repeated encounters of the same bad pointer short-circuit through the
  // quarantine fast path instead of re-reporting.
  if (!Defect.Obj)
    quarantine(Obj);
  reportDefect(std::move(Defect));
}

void HeapHardening::quarantine(const void *Ptr) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Quarantine.insert(Ptr).second) {
    LiveQuarantined.fetch_add(1, std::memory_order_relaxed);
    QuarantinedTotal.fetch_add(1, std::memory_order_relaxed);
  }
}

void HeapHardening::dropQuarantinedInRange(const void *Lo, const void *Hi) {
  if (LiveQuarantined.load(std::memory_order_relaxed) == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto It = Quarantine.begin(); It != Quarantine.end();) {
    if (*It >= Lo && *It < Hi) {
      It = Quarantine.erase(It);
      LiveQuarantined.fetch_sub(1, std::memory_order_relaxed);
    } else {
      ++It;
    }
  }
}

void HeapHardening::reportDefect(HeapDefect Defect) {
  Defects.fetch_add(1, std::memory_order_relaxed);
  telemetry::instant(telemetry::EventKind::HardeningDefect,
                     static_cast<uint64_t>(Defect.Kind));
  switch (Defect.Kind) {
  case DefectKind::PoisonDamage:
    PoisonTrips.fetch_add(1, std::memory_order_relaxed);
    break;
  case DefectKind::FreeListCorrupt:
  case DefectKind::RememberedSetCorrupt:
    StructuralDefects.fetch_add(1, std::memory_order_relaxed);
    break;
  default:
    break;
  }
  if (Defect.Obj)
    quarantine(Defect.Obj);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (DefectLog.size() < DefectLogCapacity)
      DefectLog.push_back(Defect);
  }
  applyPolicy(Defect);
}

void HeapHardening::applyPolicy(const HeapDefect &Defect) {
  switch (Policy) {
  case HardeningPolicy::Abort: {
    std::string Msg = "heap corruption detected [";
    Msg += defectKindName(Defect.Kind);
    Msg += "]: ";
    Msg += Defect.Description;
    reportFatalErrorWithDiagnostics(Msg.c_str());
  }
  case HardeningPolicy::Callback:
    if (Callback)
      Callback(Defect);
    return;
  case HardeningPolicy::Quarantine:
    return;
  }
}

HardeningCounters HeapHardening::counters() const {
  HardeningCounters C;
  C.DefectsDetected = Defects.load(std::memory_order_relaxed);
  C.ChecksumFailures = ChecksumFailures.load(std::memory_order_relaxed);
  C.BadTypeIds = BadTypeIds.load(std::memory_order_relaxed);
  C.PoisonTrips = PoisonTrips.load(std::memory_order_relaxed);
  C.BadReferences = BadReferences.load(std::memory_order_relaxed);
  C.StructuralDefects = StructuralDefects.load(std::memory_order_relaxed);
  C.SeveredEdges = SeveredEdges.load(std::memory_order_relaxed);
  C.QuarantinedTotal = QuarantinedTotal.load(std::memory_order_relaxed);
  return C;
}

std::vector<HeapDefect> HeapHardening::defects() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return DefectLog;
}

std::string HeapHardening::describeState() const {
  HardeningCounters C = counters();
  std::string Out = format(
      "hardening mode=%s policy=%s\n"
      "  defects=%llu checksum=%llu bad-type=%llu poison=%llu bad-ref=%llu "
      "structural=%llu severed-edges=%llu quarantined=%llu (total %llu)\n",
      Mode == HardeningMode::Full    ? "full"
      : Mode == HardeningMode::Check ? "check"
                                     : "off",
      Policy == HardeningPolicy::Abort    ? "abort"
      : Policy == HardeningPolicy::Callback ? "callback"
                                            : "quarantine",
      static_cast<unsigned long long>(C.DefectsDetected),
      static_cast<unsigned long long>(C.ChecksumFailures),
      static_cast<unsigned long long>(C.BadTypeIds),
      static_cast<unsigned long long>(C.PoisonTrips),
      static_cast<unsigned long long>(C.BadReferences),
      static_cast<unsigned long long>(C.StructuralDefects),
      static_cast<unsigned long long>(C.SeveredEdges),
      static_cast<unsigned long long>(quarantinedCount()),
      static_cast<unsigned long long>(C.QuarantinedTotal));
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const HeapDefect &D : DefectLog) {
    Out += format("  [%s] %s\n", defectKindName(D.Kind),
                        D.Description.c_str());
  }
  return Out;
}
