//===- SemiSpaceHeap.cpp - Two-space copying heap ---------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/SemiSpaceHeap.h"

#include "gcassert/support/Compiler.h"
#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/FaultInjection.h"

#include <cstring>

using namespace gcassert;

static size_t alignUp(size_t Size) {
  return (Size + sizeof(void *) - 1) & ~(sizeof(void *) - 1);
}

SemiSpaceHeap::SemiSpaceHeap(TypeRegistry &Types,
                             const SemiSpaceHeapConfig &Config)
    : Heap(Types) {
  HalfBytes = alignUp(Config.CapacityBytes / 2);
  if (HalfBytes < 4096)
    HalfBytes = 4096;
  Storage = std::make_unique<uint8_t[]>(HalfBytes * 2);
  Bump = spaceBase(CurrentSpace);
  Limit = Bump + HalfBytes;
  Stats.BytesCapacity = HalfBytes * 2;
}

ObjRef SemiSpaceHeap::allocate(TypeId Id, uint64_t ArrayLength) {
  size_t Size = alignUp(Types.allocationSize(Id, ArrayLength));
  std::lock_guard<std::mutex> L(AllocMutex);
  if (GCA_UNLIKELY(Bump + Size > Limit)) {
    LastAllocFailure = AllocFailureKind::HeapFull;
    return nullptr;
  }
  LastAllocFailure = AllocFailureKind::None;

  auto *Obj = reinterpret_cast<ObjRef>(Bump);
  Bump += Size;
  std::memset(static_cast<void *>(Obj), 0, Size);
  Obj->header().Type = Id;
  const TypeInfo &Type = Types.get(Id);
  if (Type.isArray())
    Obj->setArrayLength(ArrayLength);
  if (GCA_UNLIKELY(Hard != nullptr)) {
    Hard->stampObject(Obj, Type.isArray() ? ArrayLength : 0);
    SizeLog.push_back(static_cast<uint32_t>(Size));
  }

  Stats.BytesAllocated += Size;
  Stats.BytesInUse += Size;
  ++Stats.ObjectsAllocated;
  return Obj;
}

size_t SemiSpaceHeap::objectSize(ObjRef Obj) const {
  const TypeInfo &Type = Types.get(Obj->typeId());
  uint64_t Length = Type.isArray() ? Obj->arrayLength() : 0;
  return alignUp(Types.allocationSize(Obj->typeId(), Length));
}

void SemiSpaceHeap::beginCollection() {
  assert(!Collecting && "collection already in progress");
  Collecting = true;
  CopyBump = spaceBase(1 - CurrentSpace);
  CopySizeLog.clear();
}

ObjRef SemiSpaceHeap::copyObject(ObjRef From) {
  assert(Collecting && "copyObject outside a collection");
  assert(!From->isForwarded() && "object already evacuated");
  // The object's array length is still intact (forwarding overwrites the
  // first payload word only after the copy).
  size_t Size = objectSize(From);
  uint8_t *ToLimit = spaceBase(1 - CurrentSpace) + HalfBytes;
  // Once forwarding pointers are installed the from-space graph is gone, so
  // an overflow here (impossible unless the pre-flight guard's invariant
  // broke, but injectable via "semispace.evacuate") cannot be recovered —
  // abort with diagnostics instead of a bare abort.
  if (GCA_UNLIKELY(CopyBump + Size > ToLimit) ||
      GCA_UNLIKELY(faults::SemispaceEvacuate.shouldFail()))
    reportFatalErrorWithDiagnostics(
        "semispace to-space overflow during evacuation");

  auto *To = reinterpret_cast<ObjRef>(CopyBump);
  CopyBump += Size;
  std::memcpy(static_cast<void *>(To), static_cast<const void *>(From), Size);
  // The copy carries the header checksum along; only the survivor order
  // needs re-logging for the hardened walk.
  if (GCA_UNLIKELY(Hard != nullptr))
    CopySizeLog.push_back(static_cast<uint32_t>(Size));
  From->forwardTo(To);
  return To;
}

void SemiSpaceHeap::finishCollection() {
  assert(Collecting && "no collection in progress");
  Collecting = false;
  CurrentSpace = 1 - CurrentSpace;
  Bump = CopyBump;
  Limit = spaceBase(CurrentSpace) + HalfBytes;
  CopyBump = nullptr;
  LiveBytesAfterGc =
      static_cast<uint64_t>(Bump - spaceBase(CurrentSpace));
  Stats.BytesInUse = LiveBytesAfterGc;
  if (GCA_UNLIKELY(Hard != nullptr)) {
    SizeLog = std::move(CopySizeLog);
    CopySizeLog.clear();
    // Evacuation self-heals this family: quarantined (corrupt) objects are
    // never copied, their edges were severed, and the space they sat in is
    // about to be recycled — drop their entries so fresh objects at the
    // same addresses start clean.
    uint8_t *OldSpace = spaceBase(1 - CurrentSpace);
    Hard->dropQuarantinedInRange(OldSpace, OldSpace + HalfBytes);
  }
}

void SemiSpaceHeap::forEachObject(const std::function<void(ObjRef)> &Fn) {
  if (GCA_UNLIKELY(Hard != nullptr)) {
    // Hardened walk: strides come from the allocation-order size log, so a
    // corrupt header is stepped over instead of derailing the cursor.
    uint8_t *Cursor = spaceBase(CurrentSpace);
    for (uint32_t Size : SizeLog) {
      auto *Obj = reinterpret_cast<ObjRef>(Cursor);
      Cursor += Size;
      if (GCA_UNLIKELY(!Hard->validObjectHeader(Obj)) ||
          GCA_UNLIKELY(Hard->isQuarantined(Obj)))
        continue;
      Fn(Obj);
    }
    assert(Cursor == Bump && "size log out of sync with bump pointer");
    return;
  }
  uint8_t *Cursor = spaceBase(CurrentSpace);
  while (Cursor < Bump) {
    auto *Obj = reinterpret_cast<ObjRef>(Cursor);
    assert(Obj->header().isObject() && "semispace walk hit a non-object");
    Cursor += objectSize(Obj);
    Fn(Obj);
  }
}

bool SemiSpaceHeap::contains(const void *Ptr) const {
  const uint8_t *P = static_cast<const uint8_t *>(Ptr);
  return P >= Storage.get() && P < Storage.get() + HalfBytes * 2;
}
