//===- HeapVerifier.cpp - Heap integrity checks --------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/HeapVerifier.h"

#include "gcassert/support/Format.h"

using namespace gcassert;

void HeapVerifier::checkReference(ObjRef Holder, const char *What,
                                  ObjRef Target,
                                  std::vector<HeapDefect> &Defects) {
  if (!Target)
    return;
  if (reinterpret_cast<uintptr_t>(Target) % sizeof(void *) != 0) {
    Defects.push_back(
        {Holder, format("%s holds a misaligned reference %p", What,
                        static_cast<void *>(Target))});
    return;
  }
  if (!TheHeap.contains(Target)) {
    Defects.push_back(
        {Holder, format("%s points outside the heap (%p)", What,
                        static_cast<void *>(Target))});
    return;
  }
  TypeId TargetType = Target->typeId();
  if (TargetType == InvalidTypeId || TargetType > TheHeap.types().size())
    Defects.push_back(
        {Holder, format("%s points at a non-object (type id %u)", What,
                        TargetType)});
}

std::vector<HeapDefect> HeapVerifier::verify() {
  std::vector<HeapDefect> Defects;
  TypeRegistry &Types = TheHeap.types();

  TheHeap.forEachObject([&](ObjRef Obj) {
    TypeId Id = Obj->typeId();
    if (Id == InvalidTypeId || Id > Types.size()) {
      Defects.push_back({Obj, format("unregistered type id %u", Id)});
      return; // Layout unknown: nothing further to check safely.
    }

    const ObjectHeader &Hdr = Obj->header();
    if (Hdr.isMarked())
      Defects.push_back({Obj, "mark bit set outside a collection"});
    if (Hdr.testFlag(HF_Forwarded))
      Defects.push_back({Obj, "forwarding bit set outside a collection"});

    const TypeInfo &Type = Types.get(Id);
    switch (Type.kind()) {
    case TypeKind::Class:
      for (uint32_t Offset : Type.refOffsets()) {
        const FieldInfo *Field = Type.fieldAtOffset(Offset);
        checkReference(Obj, Field ? Field->Name.c_str() : "field",
                       Obj->getRef(Offset), Defects);
      }
      break;
    case TypeKind::RefArray:
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
        checkReference(Obj, "element", Obj->getElement(I), Defects);
      break;
    case TypeKind::DataArray:
      break;
    }
  });
  return Defects;
}
