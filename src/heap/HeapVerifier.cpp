//===- HeapVerifier.cpp - Heap integrity checks --------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/HeapVerifier.h"

#include "gcassert/support/Format.h"

using namespace gcassert;

static HeapDefect makeDefect(ObjRef Obj, DefectKind Kind,
                             std::string Description) {
  HeapDefect D;
  D.Obj = Obj;
  D.Kind = Kind;
  D.Description = std::move(Description);
  return D;
}

void HeapVerifier::checkReference(ObjRef Holder, const char *What,
                                  ObjRef Target,
                                  std::vector<HeapDefect> &Defects) {
  if (!Target)
    return;
  if (reinterpret_cast<uintptr_t>(Target) % sizeof(void *) != 0) {
    Defects.push_back(makeDefect(
        Holder, DefectKind::BadReference,
        format("%s holds a misaligned reference %p", What,
               static_cast<void *>(Target))));
    return;
  }
  if (!TheHeap.contains(Target)) {
    Defects.push_back(makeDefect(
        Holder, DefectKind::BadReference,
        format("%s points outside the heap (%p)", What,
               static_cast<void *>(Target))));
    return;
  }
  TypeId TargetType = Target->typeId();
  if (TargetType == InvalidTypeId || TargetType > TheHeap.types().size())
    Defects.push_back(makeDefect(
        Holder, DefectKind::BadTypeId,
        format("%s points at a non-object (type id %u)", What, TargetType)));
}

std::vector<HeapDefect> HeapVerifier::verify() {
  std::vector<HeapDefect> Defects;
  TypeRegistry &Types = TheHeap.types();
  HeapHardening *Hard = TheHeap.hardening();

  TheHeap.forEachObject([&](ObjRef Obj) {
    TypeId Id = Obj->typeId();
    if (Id == InvalidTypeId || Id > Types.size()) {
      Defects.push_back(makeDefect(Obj, DefectKind::BadTypeId,
                                   format("unregistered type id %u", Id)));
      return; // Layout unknown: nothing further to check safely.
    }

    const ObjectHeader &Hdr = Obj->header();
    if (Hdr.isMarked())
      Defects.push_back(makeDefect(Obj, DefectKind::StaleGcState,
                                   "mark bit set outside a collection"));
    if (Hdr.testFlag(HF_Forwarded))
      Defects.push_back(makeDefect(Obj, DefectKind::StaleGcState,
                                   "forwarding bit set outside a collection"));

    // Hardened heaps stamp every header at allocation: recheck the stamp.
    if (Hard && Hard->mode() != HardeningMode::Off &&
        Hdr.storedChecksum() != Hard->expectedChecksum(Obj))
      Defects.push_back(makeDefect(
          Obj, DefectKind::ChecksumMismatch,
          format("header checksum 0x%04x != expected 0x%04x",
                 static_cast<unsigned>(Hdr.storedChecksum()),
                 static_cast<unsigned>(Hard->expectedChecksum(Obj)))));

    const TypeInfo &Type = Types.get(Id);
    switch (Type.kind()) {
    case TypeKind::Class:
      for (uint32_t Offset : Type.refOffsets()) {
        const FieldInfo *Field = Type.fieldAtOffset(Offset);
        checkReference(Obj, Field ? Field->Name.c_str() : "field",
                       Obj->getRef(Offset), Defects);
      }
      break;
    case TypeKind::RefArray:
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
        checkReference(Obj, "element", Obj->getElement(I), Defects);
      break;
    case TypeKind::DataArray:
      break;
    }
  });

  // Heap-organization structural invariants (free lists, remembered set):
  // read-only audit — GC-time repair is the collector's job.
  TheHeap.auditStructure(Defects, /*Repair=*/false);
  return Defects;
}
