//===- HeapDiff.cpp - Histogram differencing ------------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/heap/HeapDiff.h"

#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"

#include <algorithm>
#include <map>

using namespace gcassert;

std::vector<TypeDelta> gcassert::diffHeapHistograms(
    const std::vector<TypeOccupancy> &Before,
    const std::vector<TypeOccupancy> &After) {
  std::map<std::string, TypeDelta> ByName;
  for (const TypeOccupancy &Row : Before) {
    TypeDelta &Delta = ByName[Row.TypeName];
    Delta.TypeName = Row.TypeName;
    Delta.InstanceDelta -= static_cast<int64_t>(Row.Instances);
    Delta.ByteDelta -= static_cast<int64_t>(Row.Bytes);
  }
  for (const TypeOccupancy &Row : After) {
    TypeDelta &Delta = ByName[Row.TypeName];
    Delta.TypeName = Row.TypeName;
    Delta.InstanceDelta += static_cast<int64_t>(Row.Instances);
    Delta.ByteDelta += static_cast<int64_t>(Row.Bytes);
  }

  std::vector<TypeDelta> Diff;
  for (auto &[Name, Delta] : ByName)
    if (Delta.InstanceDelta != 0 || Delta.ByteDelta != 0)
      Diff.push_back(std::move(Delta));
  std::sort(Diff.begin(), Diff.end(),
            [](const TypeDelta &A, const TypeDelta &B) {
              if (A.ByteDelta != B.ByteDelta)
                return A.ByteDelta > B.ByteDelta;
              return A.TypeName < B.TypeName;
            });
  return Diff;
}

void gcassert::printHeapDiff(OStream &Out,
                             const std::vector<TypeDelta> &Diff,
                             size_t MaxRows) {
  Out << format("%-48s %12s %14s\n", "type", "d instances", "d bytes");
  size_t Printed = 0;
  for (const TypeDelta &Row : Diff) {
    if (MaxRows != 0 && Printed >= MaxRows)
      break;
    Out << format("%-48s %+12lld %+14lld\n", Row.TypeName.c_str(),
                  static_cast<long long>(Row.InstanceDelta),
                  static_cast<long long>(Row.ByteDelta));
    ++Printed;
  }
  if (Printed < Diff.size())
    Out << format("  ... %llu more types\n",
                  static_cast<unsigned long long>(Diff.size() - Printed));
}
