//===- TraceProgram.cpp - Trace representation and replay specs ----------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/TraceProgram.h"
#include "gcassert/fuzz/TraceGenerator.h"
#include "gcassert/support/Format.h"

#include <cstdlib>

using namespace gcassert;
using namespace gcassert::fuzz;

//===----------------------------------------------------------------------===//
// Type universe
//===----------------------------------------------------------------------===//

const char *gcassert::fuzz::fuzzTypeName(FuzzType Type) {
  switch (Type) {
  case FuzzType::Small:
    return "LFuzzSmall;";
  case FuzzType::Node:
    return "LFuzzNode;";
  case FuzzType::Owner:
    return "LFuzzOwner;";
  case FuzzType::RefArray:
    return "[LFuzzRef;";
  case FuzzType::DataArray:
    return "[BFuzzData;";
  }
  return "?";
}

unsigned gcassert::fuzz::fuzzRefFieldCount(FuzzType Type) {
  switch (Type) {
  case FuzzType::Small:
    return 2;
  case FuzzType::Node:
    return 3;
  case FuzzType::Owner:
    return 4;
  case FuzzType::RefArray:
  case FuzzType::DataArray:
    return 0;
  }
  return 0;
}

uint64_t gcassert::fuzz::fuzzAllocationSize(FuzzType Type,
                                            uint64_t ArrayLength) {
  const uint64_t Header = 8;
  uint64_t Size = 0;
  switch (Type) {
  case FuzzType::Small:
    Size = Header + 2 * 8 + 8;
    break;
  case FuzzType::Node:
    Size = Header + 3 * 8 + 8;
    break;
  case FuzzType::Owner:
    Size = Header + 4 * 8 + 8;
    break;
  case FuzzType::RefArray:
    Size = Header + 8 + ArrayLength * 8;
    break;
  case FuzzType::DataArray:
    Size = Header + 8 + ArrayLength;
    break;
  }
  const uint64_t MinObjectSize = Header + 8;
  return Size < MinObjectSize ? MinObjectSize : Size;
}

FuzzTypeSet gcassert::fuzz::registerFuzzTypes(TypeRegistry &Types) {
  FuzzTypeSet Set;
  for (FuzzType T :
       {FuzzType::Small, FuzzType::Node, FuzzType::Owner}) {
    unsigned I = static_cast<unsigned>(T);
    TypeBuilder B(Types, fuzzTypeName(T));
    for (unsigned F = 0, E = fuzzRefFieldCount(T); F != E; ++F)
      Set.RefOffsets[I].push_back(B.addRef(format("f%u", F)));
    Set.SerialOffset[I] = B.addScalar("serial", 8);
    Set.Ids[I] = B.build();
  }
  Set.Ids[static_cast<unsigned>(FuzzType::RefArray)] =
      Types.registerRefArray(fuzzTypeName(FuzzType::RefArray));
  Set.Ids[static_cast<unsigned>(FuzzType::DataArray)] =
      Types.registerDataArray(fuzzTypeName(FuzzType::DataArray), 1);
  return Set;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

struct OpSpec {
  OpKind Kind;
  const char *Mnemonic;
  unsigned Operands; ///< How many of A,B,C are meaningful.
  bool HasAux;
};

constexpr OpSpec OpSpecs[] = {
    {OpKind::New, "n", 2, true},
    {OpKind::Store, "s", 3, false},
    {OpKind::NullField, "z", 2, false},
    {OpKind::Load, "l", 3, false},
    {OpKind::Drop, "d", 1, false},
    {OpKind::Collect, "c", 0, false},
    {OpKind::AssertDead, "ad", 1, false},
    {OpKind::AssertUnshared, "au", 1, false},
    {OpKind::AssertOwnedBy, "ao", 3, false},
    {OpKind::AssertInstances, "ai", 2, true},
    {OpKind::AssertVolume, "av", 2, true},
    {OpKind::RegionBegin, "rb", 0, false},
    {OpKind::RegionEnd, "re", 0, false},
};

const OpSpec *specFor(OpKind Kind) {
  for (const OpSpec &S : OpSpecs)
    if (S.Kind == Kind)
      return &S;
  return nullptr;
}

const OpSpec *specFor(const std::string &Mnemonic) {
  for (const OpSpec &S : OpSpecs)
    if (Mnemonic == S.Mnemonic)
      return &S;
  return nullptr;
}

std::vector<std::string> splitOn(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Next = Text.find(Sep, Pos);
    if (Next == std::string::npos) {
      Parts.push_back(Text.substr(Pos));
      break;
    }
    Parts.push_back(Text.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
  return Parts;
}

bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return End && *End == '\0';
}

} // namespace

std::string TraceProgram::serializeOps() const {
  std::string Text = "prog:";
  for (size_t I = 0, E = Ops.size(); I != E; ++I) {
    const TraceOp &Op = Ops[I];
    const OpSpec *Spec = specFor(Op.Kind);
    if (I)
      Text += ';';
    Text += Spec->Mnemonic;
    const uint8_t Operands[3] = {Op.A, Op.B, Op.C};
    for (unsigned J = 0; J != Spec->Operands; ++J)
      Text += format(",%u", Operands[J]);
    if (Spec->HasAux)
      Text += format(",%u", Op.Aux);
  }
  return Text;
}

std::string TraceProgram::replaySpec() const {
  if (HasSeed)
    return format("seed:%llu:ops=%llu",
                  static_cast<unsigned long long>(Seed),
                  static_cast<unsigned long long>(SeedTargetOps));
  return serializeOps();
}

size_t TraceProgram::collectCount() const {
  size_t N = 0;
  for (const TraceOp &Op : Ops)
    N += Op.Kind == OpKind::Collect;
  return N;
}

bool gcassert::fuzz::parseTraceSpec(const std::string &Spec, TraceProgram &Out,
                                    std::string *Error) {
  auto Fail = [&](std::string Message) {
    if (Error)
      *Error = std::move(Message);
    return false;
  };

  if (Spec.rfind("seed:", 0) == 0) {
    std::vector<std::string> Parts = splitOn(Spec.substr(5), ':');
    uint64_t Seed = 0;
    if (Parts.empty() || !parseU64(Parts[0], Seed))
      return Fail("malformed seed spec: " + Spec);
    GeneratorOptions Options;
    for (size_t I = 1; I < Parts.size(); ++I) {
      uint64_t Value = 0;
      if (Parts[I].rfind("ops=", 0) == 0 && parseU64(Parts[I].substr(4), Value))
        Options.TargetOps = Value;
      else
        return Fail("unknown seed spec field: " + Parts[I]);
    }
    Out = generateTrace(Seed, Options);
    return true;
  }

  if (Spec.rfind("prog:", 0) != 0)
    return Fail("replay spec must start with \"seed:\" or \"prog:\"");

  Out = TraceProgram();
  std::string Body = Spec.substr(5);
  if (Body.empty())
    return true;
  for (const std::string &Clause : splitOn(Body, ';')) {
    std::vector<std::string> Fields = splitOn(Clause, ',');
    const OpSpec *OpDesc = specFor(Fields[0]);
    if (!OpDesc)
      return Fail("unknown op mnemonic: " + Fields[0]);
    unsigned Expected = OpDesc->Operands + (OpDesc->HasAux ? 1u : 0u);
    if (Fields.size() != Expected + 1)
      return Fail("wrong operand count for op: " + Clause);
    TraceOp Op;
    Op.Kind = OpDesc->Kind;
    uint8_t *Operands[3] = {&Op.A, &Op.B, &Op.C};
    for (unsigned J = 0; J != OpDesc->Operands; ++J) {
      uint64_t Value = 0;
      if (!parseU64(Fields[1 + J], Value) || Value > 255)
        return Fail("bad operand in op: " + Clause);
      *Operands[J] = static_cast<uint8_t>(Value);
    }
    if (OpDesc->HasAux) {
      uint64_t Value = 0;
      if (!parseU64(Fields[1 + OpDesc->Operands], Value) ||
          Value > UINT32_MAX)
        return Fail("bad aux operand in op: " + Clause);
      Op.Aux = static_cast<uint32_t>(Value);
    }
    Out.Ops.push_back(Op);
  }
  return true;
}
