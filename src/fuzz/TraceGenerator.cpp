//===- TraceGenerator.cpp - Deterministic random trace generation --------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/TraceGenerator.h"
#include "gcassert/support/Random.h"

using namespace gcassert;
using namespace gcassert::fuzz;

namespace {

/// What the generator statically knows about a root slot. Only a hit-rate
/// heuristic: the op guards make every op safe regardless, but picking an
/// Owner-holding slot for assert-ownedby (say) keeps most generated ops
/// semantically active instead of degenerating to no-ops.
enum class SlotGuess : uint8_t { Empty, HoldsOwner, HoldsObject };

class Generator {
public:
  Generator(uint64_t Seed, const GeneratorOptions &Options)
      : Rng(Seed), Options(Options) {
    Program.Seed = Seed;
    Program.HasSeed = true;
    Program.SeedTargetOps = Options.TargetOps;
  }

  TraceProgram run() {
    for (size_t I = 0; I != Options.TargetOps; ++I) {
      emitOne();
      // Force a collection well before the allocation between two collects
      // could approach the smallest generational nursery: an implicit
      // (unchecked) collection would desynchronize the checking points
      // across collectors and invalidate the oracle.
      if (++OpsSinceCollect >= 28)
        collect();
    }
    // Close with two collections: the first checks everything the tail of
    // the trace set up, the second resolves the ownee-outlived-owner watch
    // (its verdict is deferred one cycle by design).
    collect();
    collect();
    return std::move(Program);
  }

private:
  uint8_t randomSlot() {
    return static_cast<uint8_t>(Rng.nextBelow(SlotCount));
  }

  /// A slot currently believed to hold a non-owner object, or SlotCount.
  unsigned findSlot(SlotGuess Wanted) {
    unsigned Start = static_cast<unsigned>(Rng.nextBelow(SlotCount));
    for (unsigned I = 0; I != SlotCount; ++I) {
      unsigned S = (Start + I) % SlotCount;
      if (Slots[S] == Wanted)
        return S;
    }
    return SlotCount;
  }

  void push(TraceOp Op) { Program.Ops.push_back(Op); }

  void collect() {
    push({OpKind::Collect});
    OpsSinceCollect = 0;
  }

  uint8_t emitNew(FuzzType Type, uint8_t Slot) {
    uint32_t Length = 0;
    if (Type == FuzzType::RefArray)
      Length = static_cast<uint32_t>(Rng.nextBelow(13));
    else if (Type == FuzzType::DataArray)
      Length = static_cast<uint32_t>(Rng.nextBelow(65));
    push({OpKind::New, Slot, static_cast<uint8_t>(Type), 0, Length});
    Slots[Slot] = Type == FuzzType::Owner ? SlotGuess::HoldsOwner
                                          : SlotGuess::HoldsObject;
    return Slot;
  }

  FuzzType randomNewType() {
    uint64_t R = Rng.nextBelow(100);
    if (R < 38)
      return FuzzType::Small;
    if (R < 66)
      return FuzzType::Node;
    if (R < 78)
      return FuzzType::Owner;
    if (R < 90)
      return FuzzType::RefArray;
    return FuzzType::DataArray;
  }

  void emitOne() {
    uint64_t R = Rng.nextBelow(100);
    if (R < 24) {
      emitNew(randomNewType(), randomSlot());
    } else if (R < 42) {
      push({OpKind::Store, randomSlot(),
            static_cast<uint8_t>(Rng.nextBelow(12)), randomSlot()});
    } else if (R < 48) {
      push({OpKind::NullField, randomSlot(),
            static_cast<uint8_t>(Rng.nextBelow(12))});
    } else if (R < 55) {
      uint8_t Dst = randomSlot();
      push({OpKind::Load, Dst, randomSlot(),
            static_cast<uint8_t>(Rng.nextBelow(12))});
      // The loaded value is never an owner (no heap edge points at one)
      // but may be null; HoldsObject is close enough for a guess.
      Slots[Dst] = SlotGuess::HoldsObject;
    } else if (R < 62) {
      uint8_t Slot = randomSlot();
      push({OpKind::Drop, Slot});
      Slots[Slot] = SlotGuess::Empty;
    } else if (R < 69) {
      unsigned Slot = findSlot(SlotGuess::HoldsObject);
      if (Slot == SlotCount)
        Slot = emitNew(FuzzType::Small, randomSlot());
      push({OpKind::AssertDead, static_cast<uint8_t>(Slot)});
      // Usually honor the assertion so both outcomes are exercised.
      if (Rng.chancePercent(60)) {
        push({OpKind::Drop, static_cast<uint8_t>(Slot)});
        Slots[Slot] = SlotGuess::Empty;
      }
    } else if (R < 75) {
      unsigned Slot = findSlot(SlotGuess::HoldsObject);
      if (Slot == SlotCount)
        Slot = emitNew(FuzzType::Node, randomSlot());
      push({OpKind::AssertUnshared, static_cast<uint8_t>(Slot)});
    } else if (R < 83) {
      unsigned Owner = findSlot(SlotGuess::HoldsOwner);
      if (Owner == SlotCount)
        Owner = emitNew(FuzzType::Owner, randomSlot());
      unsigned Ownee = findSlot(SlotGuess::HoldsObject);
      if (Ownee == SlotCount)
        Ownee = emitNew(randomNewType() == FuzzType::RefArray
                            ? FuzzType::RefArray
                            : FuzzType::Small,
                        randomSlot());
      push({OpKind::AssertOwnedBy, static_cast<uint8_t>(Owner),
            static_cast<uint8_t>(Rng.nextBelow(4)),
            static_cast<uint8_t>(Ownee)});
      // Sometimes sever the owner's edge or the owner itself later-ish;
      // plain mutation ops already do that organically.
    } else if (R < 86) {
      push({OpKind::AssertInstances, 0,
            static_cast<uint8_t>(Rng.nextBelow(NumFuzzTypes)), 0,
            static_cast<uint32_t>(Rng.nextBelow(7))});
    } else if (R < 88) {
      push({OpKind::AssertVolume, 0,
            static_cast<uint8_t>(Rng.nextBelow(NumFuzzTypes)), 0,
            static_cast<uint32_t>(Rng.nextInRange(16, 640))});
    } else if (R < 93) {
      if (RegionDepth < 2 && Rng.chancePercent(60)) {
        push({OpKind::RegionBegin});
        ++RegionDepth;
      } else if (RegionDepth > 0) {
        push({OpKind::RegionEnd});
        --RegionDepth;
      } else {
        emitNew(randomNewType(), randomSlot());
      }
    } else {
      collect();
    }
  }

  SplitMix64 Rng;
  GeneratorOptions Options;
  TraceProgram Program;
  SlotGuess Slots[SlotCount] = {};
  unsigned RegionDepth = 0;
  size_t OpsSinceCollect = 0;
};

} // namespace

TraceProgram gcassert::fuzz::generateTrace(uint64_t Seed,
                                           const GeneratorOptions &Options) {
  return Generator(Seed, Options).run();
}
