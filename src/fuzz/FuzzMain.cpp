//===- FuzzMain.cpp - The gcassert-fuzz command-line driver --------------===//
//
// Part of the gcassert project, under the MIT License.
//
// Differential fuzzing front end:
//
//   gcassert-fuzz                          # 500-trace campaign, full matrix
//   gcassert-fuzz --traces=50 --seed=7     # smaller campaign, other seeds
//   gcassert-fuzz --replay='seed:123:ops=96'   # re-run one trace
//   gcassert-fuzz --replay='prog:n,0,0,0;c'    # re-run an explicit op list
//   gcassert-fuzz --demo-divergence        # seeded corrupt.ref must be
//                                          # caught and reduced (exit 0)
//
// Exit status: 0 = clean (or demo divergence caught), 1 = divergence (or
// demo divergence missed), 2 = usage error.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/DifferentialRunner.h"
#include "gcassert/fuzz/TraceGenerator.h"
#include "gcassert/fuzz/TraceReducer.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"
#include "gcassert/support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace gcassert;
using namespace gcassert::fuzz;

namespace {

struct Options {
  uint64_t Traces = 500;
  uint64_t BaseSeed = 1;
  uint64_t TargetOps = 96;
  uint64_t TimeBudgetSecs = 0;
  uint64_t Mutators = 0;
  MatrixKind Matrix = MatrixKind::Full;
  std::string Replay;
  std::string ArtifactDir;
  bool DemoDivergence = false;
};

/// --mutators=N pins every matrix cell to N mutator threads (the TSan CI
/// smoke leg uses this to force concurrency through a quick matrix). 0
/// keeps each matrix's own axis.
std::vector<RunConfig> buildMatrixWithOverride(const Options &Opts) {
  std::vector<RunConfig> Matrix = buildMatrix(Opts.Matrix);
  if (Opts.Mutators)
    for (RunConfig &Config : Matrix)
      Config.MutatorThreads = static_cast<unsigned>(Opts.Mutators);
  return Matrix;
}

void printUsage() {
  outs() << "usage: gcassert-fuzz [options]\n"
            "  --traces=N         traces to run (default 500)\n"
            "  --seed=N           base seed; trace i uses seed N+i "
            "(default 1)\n"
            "  --ops=N            generator ops per trace (default 96)\n"
            "  --matrix=M         full | quick | hardened | incremental "
            "(default full)\n"
            "  --incremental      shorthand for --matrix=incremental: pin "
            "stop-the-world\n"
            "                     and SATB-incremental mark-sweep to the "
            "same verdicts\n"
            "  --mutators=N       pin every config to N mutator threads "
            "(default: the\n"
            "                     matrix's own {1,4} axis; hardened replay "
            "ignores this)\n"
            "  --time-budget-secs=N  stop the campaign after N seconds even "
            "if traces\n"
            "                     remain (0 = no budget; nightly CI uses "
            "this)\n"
            "  --artifact-dir=D   on divergence, write the reduced replay "
            "spec to\n"
            "                     D/divergence_reduced.txt for artifact "
            "upload\n"
            "  --replay=SPEC      run one replay spec ('seed:...' or "
            "'prog:...') and exit\n"
            "  --demo-divergence  arm the corrupt.ref failpoint, require "
            "the harness to\n"
            "                     catch and minimize the divergence; exit 0 "
            "iff it does\n";
}

bool parseValue(const std::string &Arg, const char *Name, uint64_t &Out) {
  std::string Prefix = std::string(Name) + "=";
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtoull(Arg.c_str() + Prefix.size(), &End, 10);
  return End && *End == '\0';
}

/// Writes the reduced divergence to ArtifactDir/divergence_reduced.txt so CI
/// can upload it; a failed open is reported but never masks the divergence
/// exit status.
void writeDivergenceArtifact(const std::string &ArtifactDir,
                             const TraceProgram &Original,
                             const TraceProgram &Minimal,
                             const DiffReport &Final) {
  if (ArtifactDir.empty())
    return;
  std::string Path = ArtifactDir + "/divergence_reduced.txt";
  std::FILE *Handle = std::fopen(Path.c_str(), "w");
  if (!Handle) {
    errs() << "warning: cannot write " << Path << "\n";
    return;
  }
  FileOStream Out(Handle);
  Out << "config: " << Final.Config << "\n";
  Out << "divergence: " << Final.Description << "\n";
  Out << "reduced replay: gcassert-fuzz --replay='" << Minimal.replaySpec()
      << "'\n";
  Out << "original replay: gcassert-fuzz --replay='" << Original.replaySpec()
      << "'\n";
  Out.flush();
  std::fclose(Handle);
  errs() << "wrote " << Path << "\n";
}

/// Shrinks a diverging trace and prints the minimal replay spec.
void reduceAndReport(const TraceProgram &Program,
                     const std::vector<RunConfig> &Matrix,
                     bool ExpectDefectFree,
                     const std::string &ArtifactDir = std::string()) {
  errs() << "minimizing (this re-runs the matrix per probe)...\n";
  ReducerStats Stats;
  TraceProgram Minimal = reduceTrace(
      Program,
      [&](const TraceProgram &Candidate) {
        return runDifferential(Candidate, Matrix, ExpectDefectFree).Diverged;
      },
      &Stats, /*MaxProbes=*/400);
  DiffReport Final = runDifferential(Minimal, Matrix, ExpectDefectFree);
  errs() << format("reduced %llu ops -> %llu ops in %llu probes\n",
                   static_cast<unsigned long long>(Stats.InitialOps),
                   static_cast<unsigned long long>(Stats.FinalOps),
                   static_cast<unsigned long long>(Stats.Probes));
  errs() << "minimal divergence [" << Final.Config
         << "]: " << Final.Description << "\n";
  errs() << "replay with: gcassert-fuzz --replay='" << Minimal.replaySpec()
         << "'\n";
  writeDivergenceArtifact(ArtifactDir, Program, Minimal, Final);
}

int runReplay(const Options &Opts) {
  TraceProgram Program;
  std::string Error;
  if (!parseTraceSpec(Opts.Replay, Program, &Error)) {
    errs() << "bad replay spec: " << Error << "\n";
    return 2;
  }
  std::vector<RunConfig> Matrix = buildMatrixWithOverride(Opts);
  DiffReport Report = runDifferential(Program, Matrix);
  outs() << "replayed " << Program.replaySpec()
         << format(" (%llu ops) over %llu configs\n",
                   static_cast<unsigned long long>(Program.Ops.size()),
                   static_cast<unsigned long long>(Matrix.size()));
  if (!Report.Diverged) {
    outs() << "no divergence.\n";
    return 0;
  }
  errs() << "DIVERGENCE [" << Report.Config << "]: " << Report.Description
         << "\n";
  reduceAndReport(Program, Matrix, /*ExpectDefectFree=*/true);
  return 1;
}

int runDemoDivergence(const Options &Opts) {
  // corrupt.ref scribbles a non-reference bit pattern into the first
  // reference slot of every allocation. Only the hardened matrix may run
  // with it armed: an unhardened trace would chase the scribble into
  // unscreened memory.
  std::vector<RunConfig> Matrix = buildMatrix(MatrixKind::HardenedOnly);
  faults::CorruptRef.armAlways();
  GeneratorOptions Gen;
  Gen.TargetOps = Opts.TargetOps;
  TraceProgram Program = generateTrace(Opts.BaseSeed, Gen);
  DiffReport Report = runDifferential(Program, Matrix);
  if (!Report.Diverged) {
    disarmAllFailpoints();
    errs() << "FAIL: seeded corrupt.ref divergence was NOT caught\n";
    return 1;
  }
  outs() << "seeded divergence caught [" << Report.Config
         << "]: " << Report.Description << "\n";
  reduceAndReport(Program, Matrix, /*ExpectDefectFree=*/true, Opts.ArtifactDir);
  disarmAllFailpoints();
  outs() << "demo ok: divergence caught and minimized.\n";
  return 0;
}

int runCampaign(const Options &Opts) {
  std::vector<RunConfig> Matrix = buildMatrixWithOverride(Opts);
  outs() << format("fuzzing %llu traces (seeds %llu..%llu, %llu ops each) "
                   "over %llu configs\n",
                   static_cast<unsigned long long>(Opts.Traces),
                   static_cast<unsigned long long>(Opts.BaseSeed),
                   static_cast<unsigned long long>(Opts.BaseSeed +
                                                   Opts.Traces - 1),
                   static_cast<unsigned long long>(Opts.TargetOps),
                   static_cast<unsigned long long>(Matrix.size()));
  if (Opts.TimeBudgetSecs)
    outs() << format("time budget: %llu s\n",
                     static_cast<unsigned long long>(Opts.TimeBudgetSecs));
  GeneratorOptions Gen;
  Gen.TargetOps = Opts.TargetOps;
  uint64_t CampaignStart = monotonicNanos();
  uint64_t Done = 0;
  for (uint64_t I = 0; I != Opts.Traces; ++I) {
    if (Opts.TimeBudgetSecs &&
        monotonicNanos() - CampaignStart >= Opts.TimeBudgetSecs * 1000000000ull) {
      outs() << format("time budget reached after %llu traces\n",
                       static_cast<unsigned long long>(Done));
      break;
    }
    uint64_t Seed = Opts.BaseSeed + I;
    TraceProgram Program = generateTrace(Seed, Gen);
    DiffReport Report = runDifferential(Program, Matrix);
    ++Done;
    if (Report.Diverged) {
      errs() << format("DIVERGENCE at seed %llu [",
                       static_cast<unsigned long long>(Seed))
             << Report.Config << "]: " << Report.Description << "\n";
      errs() << "replay with: gcassert-fuzz --replay='"
             << Program.replaySpec() << "'\n";
      reduceAndReport(Program, Matrix, /*ExpectDefectFree=*/true,
                      Opts.ArtifactDir);
      return 1;
    }
    if (Done % 50 == 0)
      outs() << format("  %llu/%llu traces clean\n",
                       static_cast<unsigned long long>(Done),
                       static_cast<unsigned long long>(Opts.Traces));
  }
  outs() << format("%llu traces run, all agree with the oracle across the "
                   "matrix.\n",
                   static_cast<unsigned long long>(Done));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    }
    if (Arg == "--demo-divergence") {
      Opts.DemoDivergence = true;
      continue;
    }
    if (Arg == "--incremental") {
      Opts.Matrix = MatrixKind::Incremental;
      continue;
    }
    if (Arg.rfind("--replay=", 0) == 0) {
      Opts.Replay = Arg.substr(9);
      continue;
    }
    if (Arg.rfind("--artifact-dir=", 0) == 0) {
      Opts.ArtifactDir = Arg.substr(15);
      continue;
    }
    if (Arg.rfind("--matrix=", 0) == 0) {
      std::string Value = Arg.substr(9);
      if (Value == "full")
        Opts.Matrix = MatrixKind::Full;
      else if (Value == "quick")
        Opts.Matrix = MatrixKind::Quick;
      else if (Value == "hardened")
        Opts.Matrix = MatrixKind::HardenedOnly;
      else if (Value == "incremental")
        Opts.Matrix = MatrixKind::Incremental;
      else {
        errs() << "unknown matrix: " << Value << "\n";
        return 2;
      }
      continue;
    }
    if (parseValue(Arg, "--traces", Opts.Traces) ||
        parseValue(Arg, "--seed", Opts.BaseSeed) ||
        parseValue(Arg, "--ops", Opts.TargetOps) ||
        parseValue(Arg, "--mutators", Opts.Mutators) ||
        parseValue(Arg, "--time-budget-secs", Opts.TimeBudgetSecs))
      continue;
    errs() << "unknown argument: " << Arg << "\n";
    printUsage();
    return 2;
  }

  if (Opts.DemoDivergence)
    return runDemoDivergence(Opts);
  if (!Opts.Replay.empty())
    return runReplay(Opts);
  return runCampaign(Opts);
}
