//===- TraceInterpreter.cpp - Trace execution on the real VM -------------===//
//
// Part of the gcassert project, under the MIT License.
//
// Every op guard here must stay byte-for-byte equivalent to the shadow
// machine's (ShadowHeap.cpp): the differential harness's soundness rests on
// the two interpreters agreeing on which ops are no-ops. The guards are
// deliberately written against the object's *dynamic* type, not the
// generator's slot guesses, so arbitrary replay specs execute identically
// in both worlds.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/TraceInterpreter.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/heap/Hardening.h"
#include "gcassert/heap/HeapHistogram.h"
#include "gcassert/support/Format.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace gcassert;
using namespace gcassert::fuzz;

std::string gcassert::fuzz::describeRunConfig(const RunConfig &Config) {
  const char *Collector = "?";
  switch (Config.Collector) {
  case CollectorKind::MarkSweep:
    Collector = "marksweep";
    break;
  case CollectorKind::SemiSpace:
    Collector = "semispace";
    break;
  case CollectorKind::MarkCompact:
    Collector = "markcompact";
    break;
  case CollectorKind::Generational:
    Collector = "generational";
    break;
  }
  return format("%s%s/t%u/%s/m%u", Collector,
                Config.Incremental ? "-inc" : "", Config.Threads,
                Config.Hardening == HardeningMode::Off     ? "off"
                : Config.Hardening == HardeningMode::Check ? "check"
                                                           : "full",
                Config.MutatorThreads);
}

namespace {

/// Traces allocate a few hundred KiB at most between forced collections;
/// 8 MiB leaves an order of magnitude of slack in every heap organization
/// (the semispace heap halves it, the generational heap carves out its
/// nursery) so no implicit collection can fire for generated programs.
constexpr size_t FuzzHeapBytes = 8u << 20;

/// Churn-mutator sizing. The budget must be small enough that even every
/// churn thread's whole output landing between two Collect ops cannot
/// trigger an implicit collection in any heap organization (the tightest
/// is the generational nursery: ~1 MiB at FuzzHeapBytes). 256 objects of a
/// 16-byte data array is ~10 KiB per thread; the ring keeps the newest 16
/// alive so root scanning and (for moving collectors) handle updates are
/// exercised too.
constexpr unsigned ChurnBudget = 256;
constexpr unsigned ChurnRingSlots = 16;
constexpr uint64_t ChurnArrayLength = 16;

class Interpreter {
public:
  Interpreter(const TraceProgram &Program, const RunConfig &Config)
      : Program(Program), MutatorThreads(Config.MutatorThreads),
        Incremental(Config.Incremental &&
                    Config.Collector == CollectorKind::MarkSweep) {
    VmConfig VC;
    VC.HeapBytes = FuzzHeapBytes;
    VC.Collector = Config.Collector;
    VC.Gc.Threads = Config.Threads;
    VC.Gc.Hardening = Config.Hardening;
    // Incremental cycles are begun and finished by the Collect ops below;
    // allocation pacing advances the mark between them. The occupancy
    // trigger stays off (its default) so no cycle begins at a point the
    // oracle cannot see.
    VC.Gc.Incremental = Incremental;
    // Arbitrary replay specs may exhaust the heap; surface that as an
    // invalid run instead of aborting the whole fuzzing process.
    VC.OnOom = OomPolicy::ReturnNull;
    TheVm.emplace(VC);
    Types = registerFuzzTypes(TheVm->types());
    // The churn mutators allocate a type the oracle and the snapshots do
    // not know (indexOf == NumFuzzTypes filters it everywhere), so their
    // concurrent allocation cannot perturb the differential result.
    ChurnType = TheVm->types().registerDataArray("fuzz.churn", 1);
    for (unsigned I = 0; I != SlotCount; ++I)
      Roots[I] = TheVm->addGlobalRoot();
    Engine.emplace(*TheVm, &Sink);
    if (Config.Threads > 1) {
      // With §2.7 path recording on, the mark-sweep family forces the
      // sequential trace loop; turn it off so Threads > 1 actually
      // exercises the parallel tracer.
      TheVm->collector().setPathRecording(false);
    }
  }

  RunResult run() {
    std::vector<MutatorHandle> Churn;
    for (unsigned I = 1; I < MutatorThreads; ++I)
      Churn.push_back(TheVm->startMutator(
          format("churn-%u", I),
          [this](Vm &V, MutatorThread &T) { churnBody(V, T); }));
    for (const TraceOp &Op : Program.Ops) {
      step(Op);
      if (!Result.Valid)
        break;
    }
    StopChurn.store(true, std::memory_order_relaxed);
    for (MutatorHandle &H : Churn)
      H.join();
    finish();
    return std::move(Result);
  }

private:
  /// Body of one churn mutator: allocates its budget of oracle-invisible
  /// arrays through the full Vm::allocate path (poll site, TLAB fast path,
  /// slow-path safepoints), keeping the newest ChurnRingSlots alive in
  /// handles, then poll-spins until the trace finishes so collections keep
  /// finding a registered concurrent mutator to rendezvous with.
  void churnBody(Vm &V, MutatorThread &T) {
    HandleScope Scope(T);
    Local Ring[ChurnRingSlots];
    for (Local &L : Ring)
      L = Scope.handle();
    unsigned Allocated = 0;
    while (!StopChurn.load(std::memory_order_relaxed)) {
      if (Allocated < ChurnBudget) {
        ObjRef Obj = V.allocate(T, ChurnType, ChurnArrayLength);
        if (!Obj)
          return; // The main thread flags the run invalid via the OOM count.
        Ring[Allocated % ChurnRingSlots].set(Obj);
        ++Allocated;
      } else {
        V.safepointPoll();
        std::this_thread::yield();
      }
    }
  }

  ObjRef root(uint8_t Slot) {
    return TheVm->globalRoot(Roots[Slot % SlotCount]);
  }
  void setRoot(uint8_t Slot, ObjRef Obj) {
    TheVm->setGlobalRoot(Roots[Slot % SlotCount], Obj);
  }

  unsigned typeIndexOf(ObjRef Obj) { return Types.indexOf(Obj->typeId()); }

  bool isOwner(ObjRef Obj) {
    return Obj && typeIndexOf(Obj) == static_cast<unsigned>(FuzzType::Owner);
  }

  /// Number of mutable reference slots of \p Obj: ref-field count for class
  /// types, length for RefArrays, 0 for DataArrays. The shadow machine's
  /// Fields vector has exactly this size.
  uint64_t refSlotCount(ObjRef Obj) {
    unsigned I = typeIndexOf(Obj);
    if (I == static_cast<unsigned>(FuzzType::DataArray))
      return 0;
    if (I == static_cast<unsigned>(FuzzType::RefArray))
      return Obj->arrayLength();
    return Types.RefOffsets[I].size();
  }

  void writeRefSlot(ObjRef Obj, uint64_t Slot, ObjRef Value) {
    unsigned I = typeIndexOf(Obj);
    if (I == static_cast<unsigned>(FuzzType::RefArray))
      Obj->setElement(Slot, Value);
    else
      Obj->setRef(Types.RefOffsets[I][Slot], Value);
  }

  ObjRef readRefSlot(ObjRef Obj, uint64_t Slot) {
    unsigned I = typeIndexOf(Obj);
    if (I == static_cast<unsigned>(FuzzType::RefArray))
      return Obj->getElement(Slot);
    return Obj->getRef(Types.RefOffsets[I][Slot]);
  }

  void invalid(std::string Reason) {
    if (!Result.Valid)
      return;
    Result.Valid = false;
    Result.InvalidReason = std::move(Reason);
  }

  void step(const TraceOp &Op) {
    switch (Op.Kind) {
    case OpKind::New: {
      FuzzType Type = static_cast<FuzzType>(Op.B % NumFuzzTypes);
      uint64_t Length = 0;
      if (Type == FuzzType::RefArray)
        Length = Op.Aux % 64;
      else if (Type == FuzzType::DataArray)
        Length = Op.Aux % 256;
      unsigned I = static_cast<unsigned>(Type);
      ObjRef Obj = TheVm->allocate(TheVm->mainThread(), Types.Ids[I], Length);
      if (!Obj) {
        invalid("allocation returned null (heap exhausted)");
        return;
      }
      ++Serial;
      if (Type == FuzzType::Small || Type == FuzzType::Node ||
          Type == FuzzType::Owner)
        Obj->setScalar<uint64_t>(Types.SerialOffset[I], Serial);
      setRoot(Op.A, Obj);
      break;
    }
    case OpKind::Store: {
      ObjRef Dst = root(Op.A);
      ObjRef Src = root(Op.C);
      if (!Dst)
        break;
      if (isOwner(Src))
        break; // Invariant: no heap edge may point at an owner.
      uint64_t Slots = refSlotCount(Dst);
      if (!Slots)
        break;
      writeRefSlot(Dst, Op.B % Slots, Src);
      break;
    }
    case OpKind::NullField: {
      ObjRef Dst = root(Op.A);
      if (!Dst)
        break;
      uint64_t Slots = refSlotCount(Dst);
      if (!Slots)
        break;
      writeRefSlot(Dst, Op.B % Slots, nullptr);
      break;
    }
    case OpKind::Load: {
      ObjRef Src = root(Op.B);
      if (!Src)
        break;
      uint64_t Slots = refSlotCount(Src);
      if (!Slots)
        break;
      ObjRef Value = readRefSlot(Src, Op.C % Slots);
      // A corrupt.* failpoint can leave a scribbled non-object value in a
      // ref slot. The hardened trace screens such edges at the next
      // collection, but the mutator reaches them first: apply the same
      // header validation here, loading null for anything it refuses (the
      // verdict the trace's severing would produce). Never fires on clean
      // runs, so guard parity with the shadow machine is unaffected.
      if (Value) {
        if (HeapHardening *Hard = TheVm->heap().hardening()) {
          if (!Hard->validObjectHeader(Value))
            Value = nullptr;
        } else if (Types.indexOf(Value->typeId()) == NumFuzzTypes) {
          // Unhardened best effort: refuse values whose header does not
          // name a fuzz type (arbitrary replays with corruption armed).
          Value = nullptr;
        }
      }
      setRoot(Op.A, Value);
      break;
    }
    case OpKind::Drop:
      setRoot(Op.A, nullptr);
      break;
    case OpKind::Collect:
      if (Incremental) {
        // Finish the in-flight cycle — its snapshot was pinned at the
        // previous Collect op, so its checks report exactly what a
        // stop-the-world collection there reported — then open the next
        // cycle's snapshot at this program point. A no-op finish (the
        // cycle drained early under allocation pacing and auto-finished)
        // leaves the accounting identical. No per-Collect live snapshot:
        // black allocation retains floating garbage here, and the Final
        // snapshot anchors the cross-config live-set comparison instead.
        TheVm->incrementalFinishNow();
        TheVm->incrementalBeginNow("fuzz trace");
        ++Result.CollectOps;
        break;
      }
      TheVm->collectNow("fuzz trace");
      ++Result.CollectOps;
      // The snapshot walk needs a parseable, quiescent heap; with churn
      // mutators running it must happen inside its own stop-the-world
      // window (whatever churn lands between the collection and the walk
      // is filtered out by type anyway).
      if (MutatorThreads > 1)
        TheVm->stopTheWorldAndRun([this] { snapshot(); });
      else
        snapshot();
      break;
    case OpKind::AssertDead:
      if (ObjRef Obj = root(Op.A))
        Engine->assertDead(Obj);
      break;
    case OpKind::AssertUnshared:
      if (ObjRef Obj = root(Op.A))
        Engine->assertUnshared(Obj);
      break;
    case OpKind::AssertOwnedBy: {
      ObjRef Owner = root(Op.A);
      ObjRef Ownee = root(Op.C);
      if (!isOwner(Owner) || !Ownee || isOwner(Ownee))
        break;
      uint64_t Slots = refSlotCount(Owner);
      writeRefSlot(Owner, Op.B % Slots, Ownee);
      Engine->assertOwnedBy(Owner, Ownee);
      break;
    }
    case OpKind::AssertInstances:
      Engine->assertInstances(Types.Ids[Op.B % NumFuzzTypes], Op.Aux);
      break;
    case OpKind::AssertVolume:
      Engine->assertVolume(Types.Ids[Op.B % NumFuzzTypes], Op.Aux);
      break;
    case OpKind::RegionBegin:
      Engine->startRegion(TheVm->mainThread());
      ++RegionDepth;
      break;
    case OpKind::RegionEnd:
      if (!RegionDepth)
        break; // assert-alldead without an open region is a usage error.
      Engine->assertAllDead(TheVm->mainThread());
      --RegionDepth;
      break;
    }
  }

  /// Records the post-collection live set in collector-independent form.
  void snapshot() { Result.Snapshots.push_back(takeSnapshot()); }

  LiveSnapshot takeSnapshot() {
    LiveSnapshot S;
    TheVm->heap().forEachObject([&](ObjRef Obj) {
      unsigned I = typeIndexOf(Obj);
      if (I == static_cast<unsigned>(FuzzType::Small) ||
          I == static_cast<unsigned>(FuzzType::Node) ||
          I == static_cast<unsigned>(FuzzType::Owner))
        S.ClassSerials.emplace_back(
            static_cast<uint8_t>(I),
            Obj->getScalar<uint64_t>(Types.SerialOffset[I]));
    });
    std::sort(S.ClassSerials.begin(), S.ClassSerials.end());
    for (const TypeOccupancy &Row : takeHeapHistogram(TheVm->heap())) {
      unsigned I = Types.indexOf(Row.Type);
      if (I != NumFuzzTypes)
        S.PerType.push_back({I, Row.Instances, Row.Bytes});
    }
    std::sort(S.PerType.begin(), S.PerType.end());
    return S;
  }

  void finish() {
    // Complete whatever incremental cycle is still in flight (checking the
    // snapshot pinned at the last Collect op), then detach the assertion
    // hooks and run one plain stop-the-world collection so the final walk
    // sees exactly the end-of-run reachable set in every family — the
    // incremental family otherwise retains floating garbage, and a
    // hooks-detached collection has no ownership phase to keep a dead
    // owner's region alive. Churn threads are already joined, so the walk
    // needs no stop-the-world window of its own.
    if (Incremental)
      TheVm->incrementalFinishNow();
    TheVm->collector().setHooks(nullptr);
    TheVm->collectNow("fuzz final");
    Result.Final = takeSnapshot();

    Result.Stats = TheVm->gcStats();
    Result.EngineGcCycles = Engine->counters().GcCycles;
    for (const Violation &V : Sink.violations()) {
      if (V.Kind == AssertionKind::OwnershipOverlap) {
        ++Result.OverlapWarnings;
        continue;
      }
      Result.Violations.push_back({V.Cycle, V.Kind, V.ObjectType});
    }
    std::sort(Result.Violations.begin(), Result.Violations.end());
    if (Result.Valid && TheVm->oomNullReturns())
      invalid("allocation went through the OOM cascade");
    if (Result.Valid && Result.Stats.MinorCycles)
      invalid(format("%llu implicit minor collections ran",
                     static_cast<unsigned long long>(
                         Result.Stats.MinorCycles)));
    // Every Collect op completes exactly one full cycle (stop-the-world
    // directly; incrementally through a begin whose matching finish runs
    // by the incrementalFinishNow above at the latest), and the cleanup
    // collection adds one more.
    if (Result.Valid && Result.Stats.Cycles != Result.CollectOps + 1)
      invalid(format("%llu collections for %llu collect ops plus cleanup "
                     "(an implicit collection desynchronized the checking "
                     "points)",
                     static_cast<unsigned long long>(Result.Stats.Cycles),
                     static_cast<unsigned long long>(Result.CollectOps)));
  }

  const TraceProgram &Program;
  unsigned MutatorThreads;
  /// Config.Incremental, effective: only the mark-sweep family has an
  /// incremental mode.
  bool Incremental;
  std::optional<Vm> TheVm;
  std::optional<AssertionEngine> Engine;
  RecordingViolationSink Sink;
  FuzzTypeSet Types;
  TypeId ChurnType = 0;
  std::atomic<bool> StopChurn{false};
  GlobalRootId Roots[SlotCount] = {};
  uint64_t Serial = 0;
  unsigned RegionDepth = 0;
  RunResult Result;
};

} // namespace

RunResult gcassert::fuzz::runTrace(const TraceProgram &Program,
                                   const RunConfig &Config) {
  return Interpreter(Program, Config).run();
}
