//===- ShadowHeap.cpp - The ground-truth oracle --------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
// The shadow machine executes the same guarded op semantics as the real
// TraceInterpreter, but over integer node ids in plain STL containers, and
// computes each collection's outcome from first principles:
//
//   live set   M = closure(owner-field targets) ∪ closure(root slots)
//              (phase 1 scans from EVERY owner in the table, live or not —
//              the paper's §2.5.2 caveat — so a dead owner's region can
//              keep objects alive for one extra cycle; the oracle models
//              that exactly rather than "fixing" it);
//   dead       one violation per cycle per dead-flagged node in M;
//   unshared   one violation per cycle per flagged node in M whose
//              encounter count is >= 2, where encounters = root slots
//              pointing at it + in-edges from scanned nodes, and a live
//              (rooted) owner's fields are scanned twice — once by the
//              ownership phase, once by the root trace;
//   ownedby    violation iff the ownee is first reached by the root trace,
//              i.e. root-reachable but not in any owner's phase-1 region
//              (reachability from a *foreign* owner hides the violation —
//              "overlap can hide but never fabricate");
//   instances/ per-type tallies over M against the limits active at this
//   volume     collection, bytes in TypeRegistry::allocationSize units;
//   ownee-     an ownee whose owner died enters a one-cycle watch; if it is
//   outlived   still in M at the NEXT collection the violation fires.
//
// These rules are collector-independent only because the op semantics
// guarantee no heap edge ever points at an owner: with that invariant the
// address-ordered owner scan cannot affect what is marked or which core
// checks fire (OwnershipOverlap warnings remain order-dependent and are
// excluded from comparison everywhere).
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/ShadowHeap.h"
#include "gcassert/support/Format.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace gcassert;
using namespace gcassert::fuzz;

std::string gcassert::fuzz::describeViolations(
    const ViolationMultiset &Violations) {
  std::string Text;
  for (const ViolationKey &V : Violations) {
    if (!Text.empty())
      Text += ", ";
    Text += format("(cycle %llu, %s, %s)",
                   static_cast<unsigned long long>(V.Cycle),
                   assertionKindName(V.Kind), V.TypeName.c_str());
  }
  return Text.empty() ? "<none>" : Text;
}

std::string gcassert::fuzz::describeSnapshot(const LiveSnapshot &Snapshot) {
  std::string Text = format("%llu class objects; per-type:",
                            static_cast<unsigned long long>(
                                Snapshot.ClassSerials.size()));
  for (const std::array<uint64_t, 3> &Row : Snapshot.PerType)
    Text += format(" %s=%llux%lluB",
                   fuzzTypeName(static_cast<FuzzType>(Row[0])),
                   static_cast<unsigned long long>(Row[1]),
                   static_cast<unsigned long long>(Row[2]));
  return Text;
}

namespace {

struct ShadowNode {
  FuzzType Type;
  uint64_t Length = 0;
  /// Field/element slots; 0 is null. Class types have ref-field-count
  /// entries, RefArrays Length entries, DataArrays none.
  std::vector<uint64_t> Fields;
  bool DeadFlagged = false;
  bool UnsharedFlagged = false;
};

struct TypeLimit {
  bool Tracked = false;
  uint64_t Limit = 0;
};

class ShadowMachine {
public:
  ShadowResult run(const TraceProgram &Program) {
    for (const TraceOp &Op : Program.Ops)
      step(Op);
    finalSnapshot();
    std::sort(Result.Violations.begin(), Result.Violations.end());
    std::sort(Result.CoreViolations.begin(), Result.CoreViolations.end());
    Result.ObjectsAllocated = NextId - 1;
    return std::move(Result);
  }

private:
  ShadowNode *node(uint64_t Id) {
    auto It = Nodes.find(Id);
    return It == Nodes.end() ? nullptr : &It->second;
  }

  bool isClass(FuzzType Type) const {
    return Type == FuzzType::Small || Type == FuzzType::Node ||
           Type == FuzzType::Owner;
  }

  //===--------------------------------------------------------------------===//
  // Op semantics — guard-for-guard identical to TraceInterpreter.cpp.
  //===--------------------------------------------------------------------===//

  void step(const TraceOp &Op) {
    switch (Op.Kind) {
    case OpKind::New: {
      FuzzType Type = static_cast<FuzzType>(Op.B % NumFuzzTypes);
      uint64_t Length = 0;
      if (Type == FuzzType::RefArray)
        Length = Op.Aux % 64;
      else if (Type == FuzzType::DataArray)
        Length = Op.Aux % 256;
      uint64_t Id = NextId++;
      ShadowNode Node;
      Node.Type = Type;
      Node.Length = Length;
      Node.Fields.resize(Type == FuzzType::RefArray
                             ? Length
                             : fuzzRefFieldCount(Type),
                         0);
      Nodes.emplace(Id, std::move(Node));
      if (!Regions.empty())
        Regions.back().push_back(Id);
      Slots[Op.A % SlotCount] = Id;
      break;
    }
    case OpKind::Store: {
      uint64_t Dst = Slots[Op.A % SlotCount];
      uint64_t Src = Slots[Op.C % SlotCount];
      ShadowNode *DstNode = node(Dst);
      if (!DstNode)
        break;
      if (ShadowNode *SrcNode = node(Src))
        if (SrcNode->Type == FuzzType::Owner)
          break; // Invariant: no heap edge may point at an owner.
      if (DstNode->Fields.empty())
        break; // DataArray, zero-length RefArray, or ref-less class.
      DstNode->Fields[Op.B % DstNode->Fields.size()] = Src;
      break;
    }
    case OpKind::NullField: {
      ShadowNode *DstNode = node(Slots[Op.A % SlotCount]);
      if (!DstNode || DstNode->Fields.empty())
        break;
      DstNode->Fields[Op.B % DstNode->Fields.size()] = 0;
      break;
    }
    case OpKind::Load: {
      ShadowNode *SrcNode = node(Slots[Op.B % SlotCount]);
      if (!SrcNode || SrcNode->Type == FuzzType::DataArray ||
          SrcNode->Fields.empty())
        break;
      Slots[Op.A % SlotCount] =
          SrcNode->Fields[Op.C % SrcNode->Fields.size()];
      break;
    }
    case OpKind::Drop:
      Slots[Op.A % SlotCount] = 0;
      break;
    case OpKind::Collect:
      collect();
      break;
    case OpKind::AssertDead:
      if (ShadowNode *Node = node(Slots[Op.A % SlotCount]))
        Node->DeadFlagged = true;
      break;
    case OpKind::AssertUnshared:
      if (ShadowNode *Node = node(Slots[Op.A % SlotCount]))
        Node->UnsharedFlagged = true;
      break;
    case OpKind::AssertOwnedBy: {
      uint64_t Owner = Slots[Op.A % SlotCount];
      uint64_t Ownee = Slots[Op.C % SlotCount];
      ShadowNode *OwnerNode = node(Owner);
      ShadowNode *OwneeNode = node(Ownee);
      if (!OwnerNode || OwnerNode->Type != FuzzType::Owner || !OwneeNode ||
          OwneeNode->Type == FuzzType::Owner)
        break;
      OwnerNode->Fields[Op.B % OwnerNode->Fields.size()] = Ownee;
      PendingPairs.emplace_back(Owner, Ownee);
      break;
    }
    case OpKind::AssertInstances: {
      TypeLimit &L = InstanceLimits[Op.B % NumFuzzTypes];
      L.Tracked = true;
      L.Limit = Op.Aux;
      break;
    }
    case OpKind::AssertVolume: {
      TypeLimit &L = VolumeLimits[Op.B % NumFuzzTypes];
      L.Tracked = true;
      L.Limit = Op.Aux;
      break;
    }
    case OpKind::RegionBegin:
      Regions.emplace_back();
      break;
    case OpKind::RegionEnd:
      if (Regions.empty())
        break;
      for (uint64_t Id : Regions.back())
        if (ShadowNode *Node = node(Id))
          Node->DeadFlagged = true;
      Regions.pop_back();
      break;
    }
  }

  //===--------------------------------------------------------------------===//
  // The checking collection
  //===--------------------------------------------------------------------===//

  void addViolation(uint64_t Cycle, AssertionKind Kind, FuzzType Type,
                    bool Core) {
    ViolationKey Key{Cycle, Kind, fuzzTypeName(Type)};
    if (Core)
      Result.CoreViolations.push_back(Key);
    Result.Violations.push_back(std::move(Key));
  }

  void collect() {
    uint64_t Cycle = CycleIndex++;

    // Pending assert-ownedby pairs become active now; a later assertion for
    // the same ownee replaces the owner (OwnershipTable::beginCycle).
    for (const auto &[Owner, Ownee] : PendingPairs)
      PairsByOwnee[Ownee] = Owner;
    PendingPairs.clear();

    std::set<uint64_t> Owners;
    for (const auto &[Ownee, Owner] : PairsByOwnee)
      Owners.insert(Owner);

    // Phase 1: the ownership phase scans the region below every owner in
    // the table — whether or not the owner itself is still rooted.
    std::set<uint64_t> Phase1;
    std::vector<uint64_t> Worklist;
    auto Visit1 = [&](uint64_t Id) {
      if (Id && Phase1.insert(Id).second)
        Worklist.push_back(Id);
    };
    for (uint64_t Owner : Owners)
      for (uint64_t Field : node(Owner)->Fields)
        Visit1(Field);
    while (!Worklist.empty()) {
      uint64_t Id = Worklist.back();
      Worklist.pop_back();
      for (uint64_t Field : node(Id)->Fields)
        Visit1(Field);
    }

    // Phase 2: the root trace. Nodes first reached here were not covered by
    // any owner's region.
    std::set<uint64_t> Phase2;
    auto Visit2 = [&](uint64_t Id) {
      if (Id && !Phase1.count(Id) && Phase2.insert(Id).second)
        Worklist.push_back(Id);
    };
    for (uint64_t Slot : Slots)
      Visit2(Slot);
    while (!Worklist.empty()) {
      uint64_t Id = Worklist.back();
      Worklist.pop_back();
      for (uint64_t Field : node(Id)->Fields)
        Visit2(Field);
    }

    std::set<uint64_t> Marked = Phase1;
    Marked.insert(Phase2.begin(), Phase2.end());

    // assert-dead: every marked node with the flag, once per cycle.
    for (uint64_t Id : Marked)
      if (node(Id)->DeadFlagged)
        addViolation(Cycle, AssertionKind::Dead, node(Id)->Type, true);

    // assert-unshared: total encounters the trace performs per node. Every
    // marked node's fields are scanned exactly once, except an owner's:
    // once by its phase-1 region scan, and — when the owner is itself
    // rooted — once more when the root trace marks it.
    std::unordered_map<uint64_t, unsigned> Encounters;
    for (uint64_t Slot : Slots)
      if (Slot)
        ++Encounters[Slot];
    for (uint64_t Id : Marked) {
      if (Owners.count(Id))
        continue;
      for (uint64_t Field : node(Id)->Fields)
        if (Field)
          ++Encounters[Field];
    }
    for (uint64_t Owner : Owners) {
      unsigned Scans = Marked.count(Owner) ? 2 : 1;
      for (uint64_t Field : node(Owner)->Fields)
        if (Field)
          Encounters[Field] += Scans;
    }
    for (uint64_t Id : Marked)
      if (node(Id)->UnsharedFlagged && Encounters[Id] >= 2)
        addViolation(Cycle, AssertionKind::Unshared, node(Id)->Type, true);

    // assert-ownedby: the ownee was reached by the root trace without any
    // owner's region having covered it first.
    for (const auto &[Ownee, Owner] : PairsByOwnee)
      if (Phase2.count(Ownee))
        addViolation(Cycle, AssertionKind::OwnedBy, node(Ownee)->Type, true);

    // assert-instances / assert-volume over the marked set.
    uint64_t Instances[NumFuzzTypes] = {};
    uint64_t Volumes[NumFuzzTypes] = {};
    for (uint64_t Id : Marked) {
      ShadowNode *N = node(Id);
      unsigned T = static_cast<unsigned>(N->Type);
      ++Instances[T];
      Volumes[T] += fuzzAllocationSize(N->Type, N->Length);
    }
    for (unsigned T = 0; T != NumFuzzTypes; ++T) {
      if (InstanceLimits[T].Tracked && Instances[T] > InstanceLimits[T].Limit)
        addViolation(Cycle, AssertionKind::Instances,
                     static_cast<FuzzType>(T), true);
      if (VolumeLimits[T].Tracked && Volumes[T] > VolumeLimits[T].Limit)
        addViolation(Cycle, AssertionKind::Volume, static_cast<FuzzType>(T),
                     true);
    }

    // Resolve the previous cycle's orphaned ownees (extended bookkeeping,
    // not a core check: a CoreOnly engine sheds it).
    for (uint64_t Orphan : Orphans)
      if (Marked.count(Orphan))
        addViolation(Cycle, AssertionKind::OwneeOutlivedOwner,
                     node(Orphan)->Type, false);
    Orphans.clear();

    // Prune the ownership table: dead ownees retire their assertion, live
    // ownees of dead owners enter the one-cycle watch.
    for (auto It = PairsByOwnee.begin(); It != PairsByOwnee.end();) {
      if (!Marked.count(It->first)) {
        It = PairsByOwnee.erase(It);
      } else if (!Marked.count(It->second)) {
        Orphans.push_back(It->first);
        It = PairsByOwnee.erase(It);
      } else {
        ++It;
      }
    }

    // Prune region logs.
    for (std::vector<uint64_t> &Log : Regions) {
      size_t Out = 0;
      for (uint64_t Id : Log)
        if (Marked.count(Id))
          Log[Out++] = Id;
      Log.resize(Out);
    }

    // Snapshot the survivors, then reclaim everything else.
    LiveSnapshot Snapshot;
    uint64_t Counts[NumFuzzTypes] = {};
    uint64_t Bytes[NumFuzzTypes] = {};
    for (uint64_t Id : Marked) {
      ShadowNode *N = node(Id);
      unsigned T = static_cast<unsigned>(N->Type);
      ++Counts[T];
      Bytes[T] += fuzzAllocationSize(N->Type, N->Length);
      if (isClass(N->Type))
        Snapshot.ClassSerials.emplace_back(static_cast<uint8_t>(T), Id);
    }
    for (unsigned T = 0; T != NumFuzzTypes; ++T)
      if (Counts[T])
        Snapshot.PerType.push_back({T, Counts[T], Bytes[T]});
    std::sort(Snapshot.ClassSerials.begin(), Snapshot.ClassSerials.end());
    Result.Snapshots.push_back(std::move(Snapshot));

    for (auto It = Nodes.begin(); It != Nodes.end();)
      It = Marked.count(It->first) ? std::next(It) : Nodes.erase(It);
  }

  /// The end-of-run prediction: what a plain checks-detached collection
  /// leaves behind. Root closure only — with no assertion hooks there is
  /// no ownership phase, so a dead owner's region keeps nothing alive.
  /// (A slot may hold the id of a node erased by an earlier collect only
  /// if ops never read it since; guard through node() like every op does.)
  void finalSnapshot() {
    std::set<uint64_t> Live;
    std::vector<uint64_t> Worklist;
    auto Visit = [&](uint64_t Id) {
      if (Id && node(Id) && Live.insert(Id).second)
        Worklist.push_back(Id);
    };
    for (uint64_t Slot : Slots)
      Visit(Slot);
    while (!Worklist.empty()) {
      uint64_t Id = Worklist.back();
      Worklist.pop_back();
      for (uint64_t Field : node(Id)->Fields)
        Visit(Field);
    }

    uint64_t Counts[NumFuzzTypes] = {};
    uint64_t Bytes[NumFuzzTypes] = {};
    for (uint64_t Id : Live) {
      ShadowNode *N = node(Id);
      unsigned T = static_cast<unsigned>(N->Type);
      ++Counts[T];
      Bytes[T] += fuzzAllocationSize(N->Type, N->Length);
      if (isClass(N->Type))
        Result.Final.ClassSerials.emplace_back(static_cast<uint8_t>(T), Id);
    }
    for (unsigned T = 0; T != NumFuzzTypes; ++T)
      if (Counts[T])
        Result.Final.PerType.push_back({T, Counts[T], Bytes[T]});
    std::sort(Result.Final.ClassSerials.begin(),
              Result.Final.ClassSerials.end());
  }

  std::unordered_map<uint64_t, ShadowNode> Nodes;
  uint64_t Slots[SlotCount] = {};
  std::vector<std::vector<uint64_t>> Regions;
  std::map<uint64_t, uint64_t> PairsByOwnee;
  std::vector<std::pair<uint64_t, uint64_t>> PendingPairs;
  std::vector<uint64_t> Orphans;
  TypeLimit InstanceLimits[NumFuzzTypes];
  TypeLimit VolumeLimits[NumFuzzTypes];
  uint64_t NextId = 1;
  uint64_t CycleIndex = 0;
  ShadowResult Result;
};

} // namespace

ShadowResult gcassert::fuzz::runShadowOracle(const TraceProgram &Program) {
  return ShadowMachine().run(Program);
}
