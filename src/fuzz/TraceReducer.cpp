//===- TraceReducer.cpp - ddmin over heap-mutation traces ----------------===//
//
// Part of the gcassert project, under the MIT License.
//
// Classic ddmin (Zeller & Hildebrandt), made trivially sound by the trace
// representation: every op is a guarded no-op when its preconditions fail,
// so any subsequence of a failing trace is a well-formed program and the
// only question is whether it still fails.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/TraceReducer.h"

#include <algorithm>

using namespace gcassert;
using namespace gcassert::fuzz;

TraceProgram gcassert::fuzz::reduceTrace(
    const TraceProgram &Program,
    const std::function<bool(const TraceProgram &)> &StillFails,
    ReducerStats *Stats, size_t MaxProbes) {
  ReducerStats Local;
  ReducerStats &S = Stats ? *Stats : Local;
  S.Probes = 0;
  S.InitialOps = Program.Ops.size();

  auto Probe = [&](std::vector<TraceOp> Ops) {
    ++S.Probes;
    TraceProgram Candidate;
    Candidate.Ops = std::move(Ops);
    return StillFails(Candidate);
  };

  // The contract requires the input itself to fail; a predicate that does
  // not hold initially would "minimize" to a meaningless trace.
  if (!Probe(Program.Ops)) {
    S.FinalOps = S.InitialOps;
    return Program;
  }

  std::vector<TraceOp> Current = Program.Ops;
  size_t Chunks = 2;
  while (Current.size() >= 2 && S.Probes < MaxProbes) {
    size_t ChunkLen = (Current.size() + Chunks - 1) / Chunks;
    bool Reduced = false;
    for (size_t Start = 0; Start < Current.size() && S.Probes < MaxProbes;
         Start += ChunkLen) {
      size_t End = std::min(Start + ChunkLen, Current.size());
      std::vector<TraceOp> Complement;
      Complement.reserve(Current.size() - (End - Start));
      Complement.insert(Complement.end(), Current.begin(),
                        Current.begin() + Start);
      Complement.insert(Complement.end(), Current.begin() + End,
                        Current.end());
      if (Complement.size() == Current.size())
        continue;
      if (Probe(Complement)) {
        Current = std::move(Complement);
        Chunks = std::max<size_t>(Chunks - 1, 2);
        Reduced = true;
        break;
      }
    }
    if (!Reduced) {
      if (Chunks >= Current.size())
        break; // 1-minimal: no single op can be removed.
      Chunks = std::min(Chunks * 2, Current.size());
    }
  }

  S.FinalOps = Current.size();
  TraceProgram Result;
  Result.Ops = std::move(Current);
  return Result;
}
