//===- DifferentialRunner.cpp - Cross-collector differential check -------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/DifferentialRunner.h"
#include "gcassert/support/Format.h"

using namespace gcassert;
using namespace gcassert::fuzz;

std::vector<RunConfig> gcassert::fuzz::buildMatrix(MatrixKind Kind) {
  const CollectorKind Collectors[] = {
      CollectorKind::MarkSweep, CollectorKind::SemiSpace,
      CollectorKind::MarkCompact, CollectorKind::Generational};
  std::vector<RunConfig> Matrix;
  switch (Kind) {
  case MatrixKind::Full:
    for (CollectorKind Collector : Collectors)
      for (unsigned Threads : {1u, 2u, 4u})
        for (HardeningMode Hardening :
             {HardeningMode::Off, HardeningMode::Check})
          for (unsigned Mutators : {1u, 4u})
            Matrix.push_back({Collector, Threads, Hardening, Mutators});
    break;
  case MatrixKind::Quick:
    for (CollectorKind Collector : Collectors)
      Matrix.push_back({Collector, 1, HardeningMode::Off});
    break;
  case MatrixKind::HardenedOnly:
    for (CollectorKind Collector : Collectors)
      Matrix.push_back({Collector, 1, HardeningMode::Check});
    break;
  }
  return Matrix;
}

DiffReport gcassert::fuzz::runDifferential(const TraceProgram &Program,
                                           const std::vector<RunConfig> &Matrix,
                                           bool ExpectDefectFree) {
  DiffReport Report;
  Report.ExpectDefectFree = ExpectDefectFree;
  auto Diverge = [&](const std::string &Config, std::string Description) {
    if (Report.Diverged)
      return;
    Report.Diverged = true;
    Report.Config = Config;
    Report.Description = std::move(Description);
  };

  ShadowResult Oracle = runShadowOracle(Program);
  uint64_t ExpectedCollects = Program.collectCount();

  for (const RunConfig &Config : Matrix) {
    std::string Name = describeRunConfig(Config);
    RunResult Run = runTrace(Program, Config);

    if (!Run.Valid) {
      Diverge(Name, "structurally invalid run: " + Run.InvalidReason);
      break;
    }

    // Per-run GcStats invariants every clean fuzz trace must satisfy.
    const GcStats &S = Run.Stats;
    if (S.Cycles != ExpectedCollects || Run.EngineGcCycles != ExpectedCollects)
      Diverge(Name,
              format("cycle accounting: collector ran %llu cycles, engine "
                     "observed %llu, trace has %llu collect ops",
                     static_cast<unsigned long long>(S.Cycles),
                     static_cast<unsigned long long>(Run.EngineGcCycles),
                     static_cast<unsigned long long>(ExpectedCollects)));
    else if (S.EmergencyCollections || S.GuardTrips || S.WorkerStartFailures)
      Diverge(Name,
              format("resilience counters moved on a clean trace: "
                     "emergency=%llu guard=%llu workerfail=%llu",
                     static_cast<unsigned long long>(S.EmergencyCollections),
                     static_cast<unsigned long long>(S.GuardTrips),
                     static_cast<unsigned long long>(S.WorkerStartFailures)));
    else if (S.PathShedCycles || S.BookkeepingShedCycles)
      Diverge(Name, format("degradation ladder engaged unexpectedly "
                           "(pathshed=%llu bookshed=%llu)",
                           static_cast<unsigned long long>(S.PathShedCycles),
                           static_cast<unsigned long long>(
                               S.BookkeepingShedCycles)));
    else if (ExpectDefectFree && (S.HeapDefects || S.Quarantined))
      Diverge(Name,
              format("hardened heap reported defects on a clean trace: "
                     "defects=%llu quarantined=%llu",
                     static_cast<unsigned long long>(S.HeapDefects),
                     static_cast<unsigned long long>(S.Quarantined)));

    // Oracle checks: the violation multiset and every post-collection live
    // snapshot must match the shadow heap's prediction exactly.
    if (!Report.Diverged && Run.Violations != Oracle.Violations)
      Diverge(Name, "violation multiset differs from oracle:\n  run:    " +
                        describeViolations(Run.Violations) +
                        "\n  oracle: " +
                        describeViolations(Oracle.Violations));
    if (!Report.Diverged && Run.Snapshots.size() != Oracle.Snapshots.size())
      Diverge(Name, format("run took %llu snapshots, oracle predicts %llu",
                           static_cast<unsigned long long>(
                               Run.Snapshots.size()),
                           static_cast<unsigned long long>(
                               Oracle.Snapshots.size())));
    for (size_t I = 0; !Report.Diverged && I != Run.Snapshots.size(); ++I)
      if (!(Run.Snapshots[I] == Oracle.Snapshots[I]))
        Diverge(Name,
                format("live set after collection %llu differs from "
                       "oracle:\n  run:    ",
                       static_cast<unsigned long long>(I)) +
                    describeSnapshot(Run.Snapshots[I]) + "\n  oracle: " +
                    describeSnapshot(Oracle.Snapshots[I]));

    if (Report.Diverged)
      break;
  }
  return Report;
}
