//===- DifferentialRunner.cpp - Cross-collector differential check -------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/DifferentialRunner.h"
#include "gcassert/support/Format.h"

using namespace gcassert;
using namespace gcassert::fuzz;

std::vector<RunConfig> gcassert::fuzz::buildMatrix(MatrixKind Kind) {
  const CollectorKind Collectors[] = {
      CollectorKind::MarkSweep, CollectorKind::SemiSpace,
      CollectorKind::MarkCompact, CollectorKind::Generational};
  std::vector<RunConfig> Matrix;
  switch (Kind) {
  case MatrixKind::Full:
    for (CollectorKind Collector : Collectors)
      for (unsigned Threads : {1u, 2u, 4u})
        for (HardeningMode Hardening :
             {HardeningMode::Off, HardeningMode::Check})
          for (unsigned Mutators : {1u, 4u})
            Matrix.push_back({Collector, Threads, Hardening, Mutators});
    // The incremental axis: the mark-sweep family again, driven as SATB
    // snapshot cycles. Same violation multiset required; the Final
    // snapshot anchors its live-set comparison.
    for (unsigned Threads : {1u, 2u, 4u})
      for (HardeningMode Hardening :
           {HardeningMode::Off, HardeningMode::Check})
        for (unsigned Mutators : {1u, 4u})
          Matrix.push_back({CollectorKind::MarkSweep, Threads, Hardening,
                            Mutators, /*Incremental=*/true});
    break;
  case MatrixKind::Quick:
    for (CollectorKind Collector : Collectors)
      Matrix.push_back({Collector, 1, HardeningMode::Off});
    Matrix.push_back({CollectorKind::MarkSweep, 1, HardeningMode::Off, 1,
                      /*Incremental=*/true});
    break;
  case MatrixKind::HardenedOnly:
    for (CollectorKind Collector : Collectors)
      Matrix.push_back({Collector, 1, HardeningMode::Check});
    break;
  case MatrixKind::Incremental:
    // Nightly campaign leg: stop-the-world mark-sweep next to its
    // incremental drive across the thread/hardening/mutator axes, pinning
    // the two modes to the same oracle verdicts cell for cell.
    for (unsigned Threads : {1u, 2u, 4u})
      for (HardeningMode Hardening :
           {HardeningMode::Off, HardeningMode::Check})
        for (unsigned Mutators : {1u, 4u})
          for (bool Incremental : {false, true})
            Matrix.push_back({CollectorKind::MarkSweep, Threads, Hardening,
                              Mutators, Incremental});
    break;
  }
  return Matrix;
}

DiffReport gcassert::fuzz::runDifferential(const TraceProgram &Program,
                                           const std::vector<RunConfig> &Matrix,
                                           bool ExpectDefectFree) {
  DiffReport Report;
  Report.ExpectDefectFree = ExpectDefectFree;
  auto Diverge = [&](const std::string &Config, std::string Description) {
    if (Report.Diverged)
      return;
    Report.Diverged = true;
    Report.Config = Config;
    Report.Description = std::move(Description);
  };

  ShadowResult Oracle = runShadowOracle(Program);
  uint64_t ExpectedCollects = Program.collectCount();

  for (const RunConfig &Config : Matrix) {
    std::string Name = describeRunConfig(Config);
    RunResult Run = runTrace(Program, Config);

    if (!Run.Valid) {
      Diverge(Name, "structurally invalid run: " + Run.InvalidReason);
      break;
    }

    // Per-run GcStats invariants every clean fuzz trace must satisfy. The
    // collector runs one cycle per Collect op plus the end-of-run cleanup
    // collection (hooks detached, so the engine never sees that one).
    const GcStats &S = Run.Stats;
    if (S.Cycles != ExpectedCollects + 1 ||
        Run.EngineGcCycles != ExpectedCollects)
      Diverge(Name,
              format("cycle accounting: collector ran %llu cycles, engine "
                     "observed %llu, trace has %llu collect ops",
                     static_cast<unsigned long long>(S.Cycles),
                     static_cast<unsigned long long>(Run.EngineGcCycles),
                     static_cast<unsigned long long>(ExpectedCollects)));
    else if (S.EmergencyCollections || S.GuardTrips || S.WorkerStartFailures)
      Diverge(Name,
              format("resilience counters moved on a clean trace: "
                     "emergency=%llu guard=%llu workerfail=%llu",
                     static_cast<unsigned long long>(S.EmergencyCollections),
                     static_cast<unsigned long long>(S.GuardTrips),
                     static_cast<unsigned long long>(S.WorkerStartFailures)));
    else if (S.PathShedCycles || S.BookkeepingShedCycles)
      Diverge(Name, format("degradation ladder engaged unexpectedly "
                           "(pathshed=%llu bookshed=%llu)",
                           static_cast<unsigned long long>(S.PathShedCycles),
                           static_cast<unsigned long long>(
                               S.BookkeepingShedCycles)));
    else if (ExpectDefectFree && (S.HeapDefects || S.Quarantined))
      Diverge(Name,
              format("hardened heap reported defects on a clean trace: "
                     "defects=%llu quarantined=%llu",
                     static_cast<unsigned long long>(S.HeapDefects),
                     static_cast<unsigned long long>(S.Quarantined)));

    // Oracle checks: the violation multiset and every post-collection live
    // snapshot must match the shadow heap's prediction exactly.
    if (!Report.Diverged && Run.Violations != Oracle.Violations)
      Diverge(Name, "violation multiset differs from oracle:\n  run:    " +
                        describeViolations(Run.Violations) +
                        "\n  oracle: " +
                        describeViolations(Oracle.Violations));
    // Per-Collect live snapshots exist only for the stop-the-world drive
    // (incremental runs retain floating garbage mid-run; see
    // RunConfig::Incremental). The end-of-run Final snapshot is the anchor
    // every config must hit.
    bool ExpectPerCollectSnapshots =
        !(Config.Incremental && Config.Collector == CollectorKind::MarkSweep);
    if (!Report.Diverged && ExpectPerCollectSnapshots &&
        Run.Snapshots.size() != Oracle.Snapshots.size())
      Diverge(Name, format("run took %llu snapshots, oracle predicts %llu",
                           static_cast<unsigned long long>(
                               Run.Snapshots.size()),
                           static_cast<unsigned long long>(
                               Oracle.Snapshots.size())));
    if (ExpectPerCollectSnapshots)
      for (size_t I = 0; !Report.Diverged && I != Run.Snapshots.size(); ++I)
        if (!(Run.Snapshots[I] == Oracle.Snapshots[I]))
          Diverge(Name,
                  format("live set after collection %llu differs from "
                         "oracle:\n  run:    ",
                         static_cast<unsigned long long>(I)) +
                      describeSnapshot(Run.Snapshots[I]) + "\n  oracle: " +
                      describeSnapshot(Oracle.Snapshots[I]));
    if (!Report.Diverged && !(Run.Final == Oracle.Final))
      Diverge(Name, "end-of-run live set differs from oracle:\n  run:    " +
                        describeSnapshot(Run.Final) + "\n  oracle: " +
                        describeSnapshot(Oracle.Final));

    if (Report.Diverged)
      break;
  }
  return Report;
}
