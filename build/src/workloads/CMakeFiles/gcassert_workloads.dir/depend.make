# Empty dependencies file for gcassert_workloads.
# This may be replaced when dependencies are built.
