
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/BTree.cpp" "src/workloads/CMakeFiles/gcassert_workloads.dir/BTree.cpp.o" "gcc" "src/workloads/CMakeFiles/gcassert_workloads.dir/BTree.cpp.o.d"
  "/root/repo/src/workloads/DaCapoWorkloads.cpp" "src/workloads/CMakeFiles/gcassert_workloads.dir/DaCapoWorkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/gcassert_workloads.dir/DaCapoWorkloads.cpp.o.d"
  "/root/repo/src/workloads/ExtraWorkloads.cpp" "src/workloads/CMakeFiles/gcassert_workloads.dir/ExtraWorkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/gcassert_workloads.dir/ExtraWorkloads.cpp.o.d"
  "/root/repo/src/workloads/Harness.cpp" "src/workloads/CMakeFiles/gcassert_workloads.dir/Harness.cpp.o" "gcc" "src/workloads/CMakeFiles/gcassert_workloads.dir/Harness.cpp.o.d"
  "/root/repo/src/workloads/PseudoJbb.cpp" "src/workloads/CMakeFiles/gcassert_workloads.dir/PseudoJbb.cpp.o" "gcc" "src/workloads/CMakeFiles/gcassert_workloads.dir/PseudoJbb.cpp.o.d"
  "/root/repo/src/workloads/RegisterWorkloads.cpp" "src/workloads/CMakeFiles/gcassert_workloads.dir/RegisterWorkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/gcassert_workloads.dir/RegisterWorkloads.cpp.o.d"
  "/root/repo/src/workloads/SpecJvm98Workloads.cpp" "src/workloads/CMakeFiles/gcassert_workloads.dir/SpecJvm98Workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/gcassert_workloads.dir/SpecJvm98Workloads.cpp.o.d"
  "/root/repo/src/workloads/WorkloadRegistry.cpp" "src/workloads/CMakeFiles/gcassert_workloads.dir/WorkloadRegistry.cpp.o" "gcc" "src/workloads/CMakeFiles/gcassert_workloads.dir/WorkloadRegistry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gcassert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gcassert_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/gcassert_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/gcassert_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gcassert_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
