file(REMOVE_RECURSE
  "CMakeFiles/gcassert_workloads.dir/BTree.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/BTree.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/DaCapoWorkloads.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/DaCapoWorkloads.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/ExtraWorkloads.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/ExtraWorkloads.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/Harness.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/Harness.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/PseudoJbb.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/PseudoJbb.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/RegisterWorkloads.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/RegisterWorkloads.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/SpecJvm98Workloads.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/SpecJvm98Workloads.cpp.o.d"
  "CMakeFiles/gcassert_workloads.dir/WorkloadRegistry.cpp.o"
  "CMakeFiles/gcassert_workloads.dir/WorkloadRegistry.cpp.o.d"
  "libgcassert_workloads.a"
  "libgcassert_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcassert_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
