# Empty compiler generated dependencies file for gcassert_runtime.
# This may be replaced when dependencies are built.
