file(REMOVE_RECURSE
  "libgcassert_runtime.a"
)
