file(REMOVE_RECURSE
  "CMakeFiles/gcassert_runtime.dir/Vm.cpp.o"
  "CMakeFiles/gcassert_runtime.dir/Vm.cpp.o.d"
  "libgcassert_runtime.a"
  "libgcassert_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcassert_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
