
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AssertionEngine.cpp" "src/core/CMakeFiles/gcassert_core.dir/AssertionEngine.cpp.o" "gcc" "src/core/CMakeFiles/gcassert_core.dir/AssertionEngine.cpp.o.d"
  "/root/repo/src/core/OwnershipTable.cpp" "src/core/CMakeFiles/gcassert_core.dir/OwnershipTable.cpp.o" "gcc" "src/core/CMakeFiles/gcassert_core.dir/OwnershipTable.cpp.o.d"
  "/root/repo/src/core/PathFinder.cpp" "src/core/CMakeFiles/gcassert_core.dir/PathFinder.cpp.o" "gcc" "src/core/CMakeFiles/gcassert_core.dir/PathFinder.cpp.o.d"
  "/root/repo/src/core/Violation.cpp" "src/core/CMakeFiles/gcassert_core.dir/Violation.cpp.o" "gcc" "src/core/CMakeFiles/gcassert_core.dir/Violation.cpp.o.d"
  "/root/repo/src/core/ViolationLogSink.cpp" "src/core/CMakeFiles/gcassert_core.dir/ViolationLogSink.cpp.o" "gcc" "src/core/CMakeFiles/gcassert_core.dir/ViolationLogSink.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/gcassert_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/gcassert_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/gcassert_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gcassert_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
