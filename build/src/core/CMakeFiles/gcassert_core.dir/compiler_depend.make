# Empty compiler generated dependencies file for gcassert_core.
# This may be replaced when dependencies are built.
