file(REMOVE_RECURSE
  "CMakeFiles/gcassert_core.dir/AssertionEngine.cpp.o"
  "CMakeFiles/gcassert_core.dir/AssertionEngine.cpp.o.d"
  "CMakeFiles/gcassert_core.dir/OwnershipTable.cpp.o"
  "CMakeFiles/gcassert_core.dir/OwnershipTable.cpp.o.d"
  "CMakeFiles/gcassert_core.dir/PathFinder.cpp.o"
  "CMakeFiles/gcassert_core.dir/PathFinder.cpp.o.d"
  "CMakeFiles/gcassert_core.dir/Violation.cpp.o"
  "CMakeFiles/gcassert_core.dir/Violation.cpp.o.d"
  "CMakeFiles/gcassert_core.dir/ViolationLogSink.cpp.o"
  "CMakeFiles/gcassert_core.dir/ViolationLogSink.cpp.o.d"
  "libgcassert_core.a"
  "libgcassert_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcassert_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
