file(REMOVE_RECURSE
  "libgcassert_core.a"
)
