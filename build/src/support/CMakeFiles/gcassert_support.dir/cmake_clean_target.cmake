file(REMOVE_RECURSE
  "libgcassert_support.a"
)
