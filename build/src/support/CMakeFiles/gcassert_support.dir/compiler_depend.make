# Empty compiler generated dependencies file for gcassert_support.
# This may be replaced when dependencies are built.
