file(REMOVE_RECURSE
  "CMakeFiles/gcassert_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/gcassert_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/gcassert_support.dir/Format.cpp.o"
  "CMakeFiles/gcassert_support.dir/Format.cpp.o.d"
  "CMakeFiles/gcassert_support.dir/OStream.cpp.o"
  "CMakeFiles/gcassert_support.dir/OStream.cpp.o.d"
  "CMakeFiles/gcassert_support.dir/Stats.cpp.o"
  "CMakeFiles/gcassert_support.dir/Stats.cpp.o.d"
  "CMakeFiles/gcassert_support.dir/Timer.cpp.o"
  "CMakeFiles/gcassert_support.dir/Timer.cpp.o.d"
  "libgcassert_support.a"
  "libgcassert_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcassert_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
