file(REMOVE_RECURSE
  "CMakeFiles/gcassert_heap.dir/CompactHeap.cpp.o"
  "CMakeFiles/gcassert_heap.dir/CompactHeap.cpp.o.d"
  "CMakeFiles/gcassert_heap.dir/FreeListHeap.cpp.o"
  "CMakeFiles/gcassert_heap.dir/FreeListHeap.cpp.o.d"
  "CMakeFiles/gcassert_heap.dir/GenerationalHeap.cpp.o"
  "CMakeFiles/gcassert_heap.dir/GenerationalHeap.cpp.o.d"
  "CMakeFiles/gcassert_heap.dir/HeapDiff.cpp.o"
  "CMakeFiles/gcassert_heap.dir/HeapDiff.cpp.o.d"
  "CMakeFiles/gcassert_heap.dir/HeapHistogram.cpp.o"
  "CMakeFiles/gcassert_heap.dir/HeapHistogram.cpp.o.d"
  "CMakeFiles/gcassert_heap.dir/HeapVerifier.cpp.o"
  "CMakeFiles/gcassert_heap.dir/HeapVerifier.cpp.o.d"
  "CMakeFiles/gcassert_heap.dir/SemiSpaceHeap.cpp.o"
  "CMakeFiles/gcassert_heap.dir/SemiSpaceHeap.cpp.o.d"
  "CMakeFiles/gcassert_heap.dir/TypeRegistry.cpp.o"
  "CMakeFiles/gcassert_heap.dir/TypeRegistry.cpp.o.d"
  "libgcassert_heap.a"
  "libgcassert_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcassert_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
