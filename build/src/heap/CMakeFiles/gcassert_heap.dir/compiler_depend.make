# Empty compiler generated dependencies file for gcassert_heap.
# This may be replaced when dependencies are built.
