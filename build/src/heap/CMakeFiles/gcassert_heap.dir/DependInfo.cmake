
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heap/CompactHeap.cpp" "src/heap/CMakeFiles/gcassert_heap.dir/CompactHeap.cpp.o" "gcc" "src/heap/CMakeFiles/gcassert_heap.dir/CompactHeap.cpp.o.d"
  "/root/repo/src/heap/FreeListHeap.cpp" "src/heap/CMakeFiles/gcassert_heap.dir/FreeListHeap.cpp.o" "gcc" "src/heap/CMakeFiles/gcassert_heap.dir/FreeListHeap.cpp.o.d"
  "/root/repo/src/heap/GenerationalHeap.cpp" "src/heap/CMakeFiles/gcassert_heap.dir/GenerationalHeap.cpp.o" "gcc" "src/heap/CMakeFiles/gcassert_heap.dir/GenerationalHeap.cpp.o.d"
  "/root/repo/src/heap/HeapDiff.cpp" "src/heap/CMakeFiles/gcassert_heap.dir/HeapDiff.cpp.o" "gcc" "src/heap/CMakeFiles/gcassert_heap.dir/HeapDiff.cpp.o.d"
  "/root/repo/src/heap/HeapHistogram.cpp" "src/heap/CMakeFiles/gcassert_heap.dir/HeapHistogram.cpp.o" "gcc" "src/heap/CMakeFiles/gcassert_heap.dir/HeapHistogram.cpp.o.d"
  "/root/repo/src/heap/HeapVerifier.cpp" "src/heap/CMakeFiles/gcassert_heap.dir/HeapVerifier.cpp.o" "gcc" "src/heap/CMakeFiles/gcassert_heap.dir/HeapVerifier.cpp.o.d"
  "/root/repo/src/heap/SemiSpaceHeap.cpp" "src/heap/CMakeFiles/gcassert_heap.dir/SemiSpaceHeap.cpp.o" "gcc" "src/heap/CMakeFiles/gcassert_heap.dir/SemiSpaceHeap.cpp.o.d"
  "/root/repo/src/heap/TypeRegistry.cpp" "src/heap/CMakeFiles/gcassert_heap.dir/TypeRegistry.cpp.o" "gcc" "src/heap/CMakeFiles/gcassert_heap.dir/TypeRegistry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gcassert_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
