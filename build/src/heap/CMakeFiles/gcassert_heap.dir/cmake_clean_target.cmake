file(REMOVE_RECURSE
  "libgcassert_heap.a"
)
