file(REMOVE_RECURSE
  "libgcassert_leakdetect.a"
)
