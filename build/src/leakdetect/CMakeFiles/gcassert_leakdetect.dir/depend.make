# Empty dependencies file for gcassert_leakdetect.
# This may be replaced when dependencies are built.
