file(REMOVE_RECURSE
  "CMakeFiles/gcassert_leakdetect.dir/StalenessDetector.cpp.o"
  "CMakeFiles/gcassert_leakdetect.dir/StalenessDetector.cpp.o.d"
  "CMakeFiles/gcassert_leakdetect.dir/TypeGrowthDetector.cpp.o"
  "CMakeFiles/gcassert_leakdetect.dir/TypeGrowthDetector.cpp.o.d"
  "libgcassert_leakdetect.a"
  "libgcassert_leakdetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcassert_leakdetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
