
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/GenerationalCollector.cpp" "src/gc/CMakeFiles/gcassert_gc.dir/GenerationalCollector.cpp.o" "gcc" "src/gc/CMakeFiles/gcassert_gc.dir/GenerationalCollector.cpp.o.d"
  "/root/repo/src/gc/MarkCompactCollector.cpp" "src/gc/CMakeFiles/gcassert_gc.dir/MarkCompactCollector.cpp.o" "gcc" "src/gc/CMakeFiles/gcassert_gc.dir/MarkCompactCollector.cpp.o.d"
  "/root/repo/src/gc/MarkSweepCollector.cpp" "src/gc/CMakeFiles/gcassert_gc.dir/MarkSweepCollector.cpp.o" "gcc" "src/gc/CMakeFiles/gcassert_gc.dir/MarkSweepCollector.cpp.o.d"
  "/root/repo/src/gc/SemiSpaceCollector.cpp" "src/gc/CMakeFiles/gcassert_gc.dir/SemiSpaceCollector.cpp.o" "gcc" "src/gc/CMakeFiles/gcassert_gc.dir/SemiSpaceCollector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/heap/CMakeFiles/gcassert_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gcassert_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
