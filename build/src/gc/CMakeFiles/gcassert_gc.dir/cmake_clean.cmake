file(REMOVE_RECURSE
  "CMakeFiles/gcassert_gc.dir/GenerationalCollector.cpp.o"
  "CMakeFiles/gcassert_gc.dir/GenerationalCollector.cpp.o.d"
  "CMakeFiles/gcassert_gc.dir/MarkCompactCollector.cpp.o"
  "CMakeFiles/gcassert_gc.dir/MarkCompactCollector.cpp.o.d"
  "CMakeFiles/gcassert_gc.dir/MarkSweepCollector.cpp.o"
  "CMakeFiles/gcassert_gc.dir/MarkSweepCollector.cpp.o.d"
  "CMakeFiles/gcassert_gc.dir/SemiSpaceCollector.cpp.o"
  "CMakeFiles/gcassert_gc.dir/SemiSpaceCollector.cpp.o.d"
  "libgcassert_gc.a"
  "libgcassert_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcassert_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
