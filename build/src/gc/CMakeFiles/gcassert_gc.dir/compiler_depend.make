# Empty compiler generated dependencies file for gcassert_gc.
# This may be replaced when dependencies are built.
