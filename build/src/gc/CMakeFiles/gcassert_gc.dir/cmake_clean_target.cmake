file(REMOVE_RECURSE
  "libgcassert_gc.a"
)
