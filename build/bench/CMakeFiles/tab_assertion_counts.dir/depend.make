# Empty dependencies file for tab_assertion_counts.
# This may be replaced when dependencies are built.
