file(REMOVE_RECURSE
  "CMakeFiles/tab_assertion_counts.dir/tab_assertion_counts.cpp.o"
  "CMakeFiles/tab_assertion_counts.dir/tab_assertion_counts.cpp.o.d"
  "tab_assertion_counts"
  "tab_assertion_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_assertion_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
