file(REMOVE_RECURSE
  "CMakeFiles/ablation_path_recording.dir/ablation_path_recording.cpp.o"
  "CMakeFiles/ablation_path_recording.dir/ablation_path_recording.cpp.o.d"
  "ablation_path_recording"
  "ablation_path_recording.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_recording.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
