# Empty dependencies file for ablation_path_recording.
# This may be replaced when dependencies are built.
