file(REMOVE_RECURSE
  "CMakeFiles/fig4_assertions_runtime.dir/fig4_assertions_runtime.cpp.o"
  "CMakeFiles/fig4_assertions_runtime.dir/fig4_assertions_runtime.cpp.o.d"
  "fig4_assertions_runtime"
  "fig4_assertions_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_assertions_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
