file(REMOVE_RECURSE
  "CMakeFiles/fig5_assertions_gctime.dir/fig5_assertions_gctime.cpp.o"
  "CMakeFiles/fig5_assertions_gctime.dir/fig5_assertions_gctime.cpp.o.d"
  "fig5_assertions_gctime"
  "fig5_assertions_gctime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_assertions_gctime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
