# Empty compiler generated dependencies file for fig5_assertions_gctime.
# This may be replaced when dependencies are built.
