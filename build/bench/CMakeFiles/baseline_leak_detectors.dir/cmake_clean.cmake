file(REMOVE_RECURSE
  "CMakeFiles/baseline_leak_detectors.dir/baseline_leak_detectors.cpp.o"
  "CMakeFiles/baseline_leak_detectors.dir/baseline_leak_detectors.cpp.o.d"
  "baseline_leak_detectors"
  "baseline_leak_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_leak_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
