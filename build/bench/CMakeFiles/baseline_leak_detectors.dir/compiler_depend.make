# Empty compiler generated dependencies file for baseline_leak_detectors.
# This may be replaced when dependencies are built.
