file(REMOVE_RECURSE
  "CMakeFiles/ablation_ownership_phase.dir/ablation_ownership_phase.cpp.o"
  "CMakeFiles/ablation_ownership_phase.dir/ablation_ownership_phase.cpp.o.d"
  "ablation_ownership_phase"
  "ablation_ownership_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ownership_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
