# Empty compiler generated dependencies file for ablation_ownership_phase.
# This may be replaced when dependencies are built.
