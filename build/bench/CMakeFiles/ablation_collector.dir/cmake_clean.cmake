file(REMOVE_RECURSE
  "CMakeFiles/ablation_collector.dir/ablation_collector.cpp.o"
  "CMakeFiles/ablation_collector.dir/ablation_collector.cpp.o.d"
  "ablation_collector"
  "ablation_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
