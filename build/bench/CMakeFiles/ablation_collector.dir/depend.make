# Empty dependencies file for ablation_collector.
# This may be replaced when dependencies are built.
