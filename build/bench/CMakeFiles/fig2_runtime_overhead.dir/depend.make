# Empty dependencies file for fig2_runtime_overhead.
# This may be replaced when dependencies are built.
