# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_jbb_order_leak "/root/repo/build/examples/jbb_order_leak")
set_tests_properties(example_jbb_order_leak PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_swapleak "/root/repo/build/examples/swapleak")
set_tests_properties(example_swapleak PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lusearch_singleton "/root/repo/build/examples/lusearch_singleton")
set_tests_properties(example_lusearch_singleton PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_region_server "/root/repo/build/examples/region_server")
set_tests_properties(example_region_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heap_profile "/root/repo/build/examples/heap_profile")
set_tests_properties(example_heap_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
