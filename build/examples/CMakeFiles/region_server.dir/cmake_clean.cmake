file(REMOVE_RECURSE
  "CMakeFiles/region_server.dir/region_server.cpp.o"
  "CMakeFiles/region_server.dir/region_server.cpp.o.d"
  "region_server"
  "region_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
