file(REMOVE_RECURSE
  "CMakeFiles/jbb_order_leak.dir/jbb_order_leak.cpp.o"
  "CMakeFiles/jbb_order_leak.dir/jbb_order_leak.cpp.o.d"
  "jbb_order_leak"
  "jbb_order_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbb_order_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
