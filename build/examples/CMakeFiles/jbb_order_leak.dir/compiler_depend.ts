# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for jbb_order_leak.
