# Empty compiler generated dependencies file for jbb_order_leak.
# This may be replaced when dependencies are built.
