file(REMOVE_RECURSE
  "CMakeFiles/heap_profile.dir/heap_profile.cpp.o"
  "CMakeFiles/heap_profile.dir/heap_profile.cpp.o.d"
  "heap_profile"
  "heap_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
