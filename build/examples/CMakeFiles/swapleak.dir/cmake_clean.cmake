file(REMOVE_RECURSE
  "CMakeFiles/swapleak.dir/swapleak.cpp.o"
  "CMakeFiles/swapleak.dir/swapleak.cpp.o.d"
  "swapleak"
  "swapleak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swapleak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
