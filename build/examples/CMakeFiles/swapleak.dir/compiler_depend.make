# Empty compiler generated dependencies file for swapleak.
# This may be replaced when dependencies are built.
