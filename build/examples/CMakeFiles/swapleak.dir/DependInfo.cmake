
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/swapleak.cpp" "examples/CMakeFiles/swapleak.dir/swapleak.cpp.o" "gcc" "examples/CMakeFiles/swapleak.dir/swapleak.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/gcassert_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/leakdetect/CMakeFiles/gcassert_leakdetect.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gcassert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gcassert_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/gcassert_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/gcassert_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gcassert_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
