# Empty compiler generated dependencies file for lusearch_singleton.
# This may be replaced when dependencies are built.
