file(REMOVE_RECURSE
  "CMakeFiles/lusearch_singleton.dir/lusearch_singleton.cpp.o"
  "CMakeFiles/lusearch_singleton.dir/lusearch_singleton.cpp.o.d"
  "lusearch_singleton"
  "lusearch_singleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusearch_singleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
