file(REMOVE_RECURSE
  "CMakeFiles/gc_tests.dir/gc/GenerationalCollectorTest.cpp.o"
  "CMakeFiles/gc_tests.dir/gc/GenerationalCollectorTest.cpp.o.d"
  "CMakeFiles/gc_tests.dir/gc/MarkCompactCollectorTest.cpp.o"
  "CMakeFiles/gc_tests.dir/gc/MarkCompactCollectorTest.cpp.o.d"
  "CMakeFiles/gc_tests.dir/gc/MarkSweepCollectorTest.cpp.o"
  "CMakeFiles/gc_tests.dir/gc/MarkSweepCollectorTest.cpp.o.d"
  "CMakeFiles/gc_tests.dir/gc/PathRecordingTest.cpp.o"
  "CMakeFiles/gc_tests.dir/gc/PathRecordingTest.cpp.o.d"
  "CMakeFiles/gc_tests.dir/gc/SemiSpaceCollectorTest.cpp.o"
  "CMakeFiles/gc_tests.dir/gc/SemiSpaceCollectorTest.cpp.o.d"
  "CMakeFiles/gc_tests.dir/gc/TraceInvariantsTest.cpp.o"
  "CMakeFiles/gc_tests.dir/gc/TraceInvariantsTest.cpp.o.d"
  "gc_tests"
  "gc_tests.pdb"
  "gc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
