file(REMOVE_RECURSE
  "CMakeFiles/workloads_tests.dir/workloads/BTreeTest.cpp.o"
  "CMakeFiles/workloads_tests.dir/workloads/BTreeTest.cpp.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/GenerationalWorkloadTest.cpp.o"
  "CMakeFiles/workloads_tests.dir/workloads/GenerationalWorkloadTest.cpp.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/PseudoJbbLeakTest.cpp.o"
  "CMakeFiles/workloads_tests.dir/workloads/PseudoJbbLeakTest.cpp.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/WorkloadSmokeTest.cpp.o"
  "CMakeFiles/workloads_tests.dir/workloads/WorkloadSmokeTest.cpp.o.d"
  "workloads_tests"
  "workloads_tests.pdb"
  "workloads_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
