
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/AssertDeadTest.cpp" "tests/CMakeFiles/core_tests.dir/core/AssertDeadTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/AssertDeadTest.cpp.o.d"
  "/root/repo/tests/core/InstancesTest.cpp" "tests/CMakeFiles/core_tests.dir/core/InstancesTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/InstancesTest.cpp.o.d"
  "/root/repo/tests/core/OwnedByTest.cpp" "tests/CMakeFiles/core_tests.dir/core/OwnedByTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/OwnedByTest.cpp.o.d"
  "/root/repo/tests/core/OwnershipPropertyTest.cpp" "tests/CMakeFiles/core_tests.dir/core/OwnershipPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/OwnershipPropertyTest.cpp.o.d"
  "/root/repo/tests/core/OwnershipTableTest.cpp" "tests/CMakeFiles/core_tests.dir/core/OwnershipTableTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/OwnershipTableTest.cpp.o.d"
  "/root/repo/tests/core/PathFinderTest.cpp" "tests/CMakeFiles/core_tests.dir/core/PathFinderTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/PathFinderTest.cpp.o.d"
  "/root/repo/tests/core/ReactionTest.cpp" "tests/CMakeFiles/core_tests.dir/core/ReactionTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ReactionTest.cpp.o.d"
  "/root/repo/tests/core/RegionTest.cpp" "tests/CMakeFiles/core_tests.dir/core/RegionTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/RegionTest.cpp.o.d"
  "/root/repo/tests/core/UnsharedTest.cpp" "tests/CMakeFiles/core_tests.dir/core/UnsharedTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/UnsharedTest.cpp.o.d"
  "/root/repo/tests/core/ViolationFormatTest.cpp" "tests/CMakeFiles/core_tests.dir/core/ViolationFormatTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ViolationFormatTest.cpp.o.d"
  "/root/repo/tests/core/ViolationLogSinkTest.cpp" "tests/CMakeFiles/core_tests.dir/core/ViolationLogSinkTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ViolationLogSinkTest.cpp.o.d"
  "/root/repo/tests/core/VolumeTest.cpp" "tests/CMakeFiles/core_tests.dir/core/VolumeTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/VolumeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/gcassert_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/leakdetect/CMakeFiles/gcassert_leakdetect.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gcassert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gcassert_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/gcassert_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/gcassert_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gcassert_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
