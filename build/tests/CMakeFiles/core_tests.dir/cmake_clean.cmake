file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/AssertDeadTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/AssertDeadTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/InstancesTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/InstancesTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/OwnedByTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/OwnedByTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/OwnershipPropertyTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/OwnershipPropertyTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/OwnershipTableTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/OwnershipTableTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/PathFinderTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/PathFinderTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/ReactionTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/ReactionTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/RegionTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/RegionTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/UnsharedTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/UnsharedTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/ViolationFormatTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/ViolationFormatTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/ViolationLogSinkTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/ViolationLogSinkTest.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/VolumeTest.cpp.o"
  "CMakeFiles/core_tests.dir/core/VolumeTest.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
