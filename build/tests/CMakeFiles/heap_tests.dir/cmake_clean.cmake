file(REMOVE_RECURSE
  "CMakeFiles/heap_tests.dir/heap/CompactHeapTest.cpp.o"
  "CMakeFiles/heap_tests.dir/heap/CompactHeapTest.cpp.o.d"
  "CMakeFiles/heap_tests.dir/heap/FreeListHeapTest.cpp.o"
  "CMakeFiles/heap_tests.dir/heap/FreeListHeapTest.cpp.o.d"
  "CMakeFiles/heap_tests.dir/heap/GenerationalHeapTest.cpp.o"
  "CMakeFiles/heap_tests.dir/heap/GenerationalHeapTest.cpp.o.d"
  "CMakeFiles/heap_tests.dir/heap/HeapDiffTest.cpp.o"
  "CMakeFiles/heap_tests.dir/heap/HeapDiffTest.cpp.o.d"
  "CMakeFiles/heap_tests.dir/heap/HeapHistogramTest.cpp.o"
  "CMakeFiles/heap_tests.dir/heap/HeapHistogramTest.cpp.o.d"
  "CMakeFiles/heap_tests.dir/heap/HeapVerifierTest.cpp.o"
  "CMakeFiles/heap_tests.dir/heap/HeapVerifierTest.cpp.o.d"
  "CMakeFiles/heap_tests.dir/heap/SemiSpaceHeapTest.cpp.o"
  "CMakeFiles/heap_tests.dir/heap/SemiSpaceHeapTest.cpp.o.d"
  "CMakeFiles/heap_tests.dir/heap/TypeRegistryTest.cpp.o"
  "CMakeFiles/heap_tests.dir/heap/TypeRegistryTest.cpp.o.d"
  "heap_tests"
  "heap_tests.pdb"
  "heap_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
