
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/heap/CompactHeapTest.cpp" "tests/CMakeFiles/heap_tests.dir/heap/CompactHeapTest.cpp.o" "gcc" "tests/CMakeFiles/heap_tests.dir/heap/CompactHeapTest.cpp.o.d"
  "/root/repo/tests/heap/FreeListHeapTest.cpp" "tests/CMakeFiles/heap_tests.dir/heap/FreeListHeapTest.cpp.o" "gcc" "tests/CMakeFiles/heap_tests.dir/heap/FreeListHeapTest.cpp.o.d"
  "/root/repo/tests/heap/GenerationalHeapTest.cpp" "tests/CMakeFiles/heap_tests.dir/heap/GenerationalHeapTest.cpp.o" "gcc" "tests/CMakeFiles/heap_tests.dir/heap/GenerationalHeapTest.cpp.o.d"
  "/root/repo/tests/heap/HeapDiffTest.cpp" "tests/CMakeFiles/heap_tests.dir/heap/HeapDiffTest.cpp.o" "gcc" "tests/CMakeFiles/heap_tests.dir/heap/HeapDiffTest.cpp.o.d"
  "/root/repo/tests/heap/HeapHistogramTest.cpp" "tests/CMakeFiles/heap_tests.dir/heap/HeapHistogramTest.cpp.o" "gcc" "tests/CMakeFiles/heap_tests.dir/heap/HeapHistogramTest.cpp.o.d"
  "/root/repo/tests/heap/HeapVerifierTest.cpp" "tests/CMakeFiles/heap_tests.dir/heap/HeapVerifierTest.cpp.o" "gcc" "tests/CMakeFiles/heap_tests.dir/heap/HeapVerifierTest.cpp.o.d"
  "/root/repo/tests/heap/SemiSpaceHeapTest.cpp" "tests/CMakeFiles/heap_tests.dir/heap/SemiSpaceHeapTest.cpp.o" "gcc" "tests/CMakeFiles/heap_tests.dir/heap/SemiSpaceHeapTest.cpp.o.d"
  "/root/repo/tests/heap/TypeRegistryTest.cpp" "tests/CMakeFiles/heap_tests.dir/heap/TypeRegistryTest.cpp.o" "gcc" "tests/CMakeFiles/heap_tests.dir/heap/TypeRegistryTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/gcassert_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/leakdetect/CMakeFiles/gcassert_leakdetect.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gcassert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gcassert_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/gcassert_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/gcassert_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gcassert_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
