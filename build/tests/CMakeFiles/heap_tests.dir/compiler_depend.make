# Empty compiler generated dependencies file for heap_tests.
# This may be replaced when dependencies are built.
