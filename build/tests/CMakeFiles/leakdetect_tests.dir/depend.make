# Empty dependencies file for leakdetect_tests.
# This may be replaced when dependencies are built.
