file(REMOVE_RECURSE
  "CMakeFiles/leakdetect_tests.dir/leakdetect/StalenessDetectorTest.cpp.o"
  "CMakeFiles/leakdetect_tests.dir/leakdetect/StalenessDetectorTest.cpp.o.d"
  "CMakeFiles/leakdetect_tests.dir/leakdetect/TypeGrowthDetectorTest.cpp.o"
  "CMakeFiles/leakdetect_tests.dir/leakdetect/TypeGrowthDetectorTest.cpp.o.d"
  "leakdetect_tests"
  "leakdetect_tests.pdb"
  "leakdetect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdetect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
