//===- AssertDeadTest.cpp - assert-dead (§2.3.1) unit tests -------------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

class AssertDeadTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  AssertDeadTest() : TheVm(makeConfig()), Engine(TheVm, &Sink) {}

  VmConfig makeConfig() {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Config.Collector = GetParam();
    return Config;
  }

  Vm TheVm;
  RecordingViolationSink Sink;
  AssertionEngine Engine;
};

TEST_P(AssertDeadTest, ReclaimedObjectDoesNotFire) {
  MutatorThread &T = TheVm.mainThread();
  ObjRef Obj = newNode(TheVm, T); // Never rooted.
  Engine.assertDead(Obj);
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST_P(AssertDeadTest, ReachableObjectFires) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  Engine.assertDead(Kept.get());
  TheVm.collectNow();
  ASSERT_EQ(Sink.violations().size(), 1u);
  EXPECT_EQ(Sink.violations()[0].Kind, AssertionKind::Dead);
  EXPECT_EQ(Sink.violations()[0].ObjectType, "LNode;");
}

TEST_P(AssertDeadTest, FiresAgainEveryGcWhileReachable) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  Engine.assertDead(Kept.get());
  TheVm.collectNow();
  TheVm.collectNow();
  // The dead bit persists in the header: the mismatch is re-reported at
  // every collection until the object actually dies.
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 2u);
}

TEST_P(AssertDeadTest, DyingLaterStopsReports) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  Engine.assertDead(Kept.get());
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u);

  Kept.set(nullptr);
  TheVm.collectNow();
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u) << "no report after death";
}

TEST_P(AssertDeadTest, NullAssignmentIdiomVerified) {
  // The paper's motivating use: assigning null to the only reference must
  // make the object collectable; a second hidden reference is the bug.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T));
  Local Hidden = Scope.handle(newNode(TheVm, T));
  ObjRef Victim = newNode(TheVm, T);
  Holder.get()->setRef(G.FieldA, Victim);
  Hidden.get()->setRef(G.FieldA, Victim); // The bug.

  Engine.assertDead(Holder.get()->getRef(G.FieldA));
  Holder.get()->setRef(G.FieldA, nullptr); // "obj = null;"
  TheVm.collectNow();
  ASSERT_EQ(Sink.countOf(AssertionKind::Dead), 1u);

  // Fix the bug; the object dies and reports stop.
  Hidden.get()->setRef(G.FieldA, nullptr);
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u);
}

TEST_P(AssertDeadTest, ManyDeadObjectsNoFalsePositives) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local KeptA = Scope.handle(newNode(TheVm, T));
  Local KeptB = Scope.handle(newNode(TheVm, T));
  for (int I = 0; I < 500; ++I)
    Engine.assertDead(newNode(TheVm, T)); // All true garbage.
  Engine.assertDead(KeptA.get());
  Engine.assertDead(KeptB.get());

  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 2u)
      << "only the two rooted objects violate";
  EXPECT_EQ(Engine.counters().AssertDeadCalls, 502u);
}

TEST_P(AssertDeadTest, CountersTrackCalls) {
  MutatorThread &T = TheVm.mainThread();
  Engine.assertDead(newNode(TheVm, T));
  Engine.assertDead(newNode(TheVm, T));
  EXPECT_EQ(Engine.counters().AssertDeadCalls, 2u);
  TheVm.collectNow();
  EXPECT_EQ(Engine.counters().GcCycles, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, AssertDeadTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact),
                         [](const ::testing::TestParamInfo<CollectorKind> &I) {
                           return std::string(collectorName(I.param));
                         });

} // namespace
