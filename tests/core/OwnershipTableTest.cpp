//===- OwnershipTableTest.cpp - core/OwnershipTable unit tests -----------------===//

#include "common/TestGraph.h"
#include "gcassert/core/OwnershipTable.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

/// The table only manipulates headers, so a plain VM provides the objects.
class OwnershipTableTest : public ::testing::Test {
protected:
  OwnershipTableTest() : TheVm(makeConfig()) {}

  VmConfig makeConfig() {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    return Config;
  }

  ObjRef node(int64_t Value = 0) {
    return newNode(TheVm, TheVm.mainThread(), Value);
  }

  Vm TheVm;
  OwnershipTable Table;
};

TEST_F(OwnershipTableTest, AddSetsHeaderBits) {
  ObjRef Owner = node();
  ObjRef Ownee = node();
  Table.add(Owner, Ownee);
  EXPECT_TRUE(Owner->header().testFlag(HF_Owner));
  EXPECT_TRUE(Ownee->header().testFlag(HF_Ownee));
  EXPECT_TRUE(Table.empty() == false);
  EXPECT_EQ(Table.size(), 0u) << "pending until beginCycle";
}

TEST_F(OwnershipTableTest, BeginCycleMergesPending) {
  ObjRef Owner = node();
  ObjRef A = node(), B = node();
  Table.add(Owner, A);
  Table.add(Owner, B);
  Table.beginCycle();
  EXPECT_EQ(Table.size(), 2u);
  EXPECT_EQ(Table.lookupOwner(A), Owner);
  EXPECT_EQ(Table.lookupOwner(B), Owner);
  EXPECT_EQ(Table.lookupOwner(Owner), nullptr);
  ASSERT_EQ(Table.owners().size(), 1u);
  EXPECT_EQ(Table.owners()[0], Owner);
}

TEST_F(OwnershipTableTest, ReassertionReplacesOwnerInPending) {
  ObjRef O1 = node(1), O2 = node(2);
  ObjRef Ownee = node(3);
  Table.add(O1, Ownee);
  Table.add(O2, Ownee); // Later assertion wins.
  Table.beginCycle();
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.lookupOwner(Ownee), O2);
}

TEST_F(OwnershipTableTest, ReassertionReplacesOwnerInMerged) {
  ObjRef O1 = node(1), O2 = node(2);
  ObjRef Ownee = node(3);
  Table.add(O1, Ownee);
  Table.beginCycle();
  Table.add(O2, Ownee);
  Table.beginCycle();
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.lookupOwner(Ownee), O2);
  // O1 lost its last pair: the Owner bit must be gone.
  EXPECT_FALSE(O1->header().testFlag(HF_Owner));
  EXPECT_TRUE(O2->header().testFlag(HF_Owner));
}

TEST_F(OwnershipTableTest, BeginCycleClearsOwnedBits) {
  ObjRef Owner = node();
  ObjRef Ownee = node();
  Table.add(Owner, Ownee);
  Table.beginCycle();
  Ownee->header().setFlag(HF_Owned); // As the ownership phase would.
  Table.beginCycle();
  EXPECT_FALSE(Ownee->header().testFlag(HF_Owned));
}

TEST_F(OwnershipTableTest, LookupCountsAreTracked) {
  ObjRef Owner = node();
  ObjRef Ownee = node();
  Table.add(Owner, Ownee);
  Table.beginCycle();
  EXPECT_EQ(Table.lookupsThisCycle(), 0u);
  Table.lookupOwner(Ownee);
  Table.lookupOwner(Ownee);
  EXPECT_EQ(Table.lookupsThisCycle(), 2u);
  EXPECT_EQ(Table.lookupsTotal(), 2u);
  Table.beginCycle();
  EXPECT_EQ(Table.lookupsThisCycle(), 0u) << "per-cycle counter resets";
  EXPECT_EQ(Table.lookupsTotal(), 2u);
}

TEST_F(OwnershipTableTest, PruneDropsDeadOwnees) {
  ObjRef Owner = node();
  ObjRef Live = node(), Dead = node();
  Table.add(Owner, Live);
  Table.add(Owner, Dead);
  Table.beginCycle();

  int Outlived = 0;
  Table.pruneAfterGc(
      [&](ObjRef Obj) -> ObjRef { return Obj == Dead ? nullptr : Obj; },
      [&](ObjRef, ObjRef) { ++Outlived; });
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.lookupOwner(Live), Owner);
  EXPECT_EQ(Outlived, 0) << "a dead ownee is a satisfied assertion";
}

TEST_F(OwnershipTableTest, PruneReportsOwneeOutlivingOwner) {
  ObjRef Owner = node();
  ObjRef Ownee = node();
  Table.add(Owner, Ownee);
  Table.beginCycle();

  std::vector<std::pair<ObjRef, ObjRef>> Outlived;
  Table.pruneAfterGc(
      [&](ObjRef Obj) -> ObjRef { return Obj == Owner ? nullptr : Obj; },
      [&](ObjRef O, ObjRef E) { Outlived.push_back({O, E}); });
  ASSERT_EQ(Outlived.size(), 1u);
  EXPECT_EQ(Outlived[0].first, Owner);
  EXPECT_EQ(Outlived[0].second, Ownee);
  EXPECT_EQ(Table.size(), 0u);
  EXPECT_FALSE(Ownee->header().testFlag(HF_Ownee)) << "bits retired";
}

TEST_F(OwnershipTableTest, PruneTranslatesMovedPairs) {
  ObjRef Owner = node(1);
  ObjRef Ownee = node(2);
  ObjRef NewOwner = node(3);
  ObjRef NewOwnee = node(4);
  Table.add(Owner, Ownee);
  Table.beginCycle();

  Table.pruneAfterGc(
      [&](ObjRef Obj) -> ObjRef {
        if (Obj == Owner)
          return NewOwner;
        if (Obj == Ownee)
          return NewOwnee;
        return Obj;
      },
      [&](ObjRef, ObjRef) { FAIL() << "nothing outlived"; });
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.lookupOwner(NewOwnee), NewOwner);
  EXPECT_EQ(Table.lookupOwner(Ownee), nullptr);
  // The moved-to owner carries the bit; the stale copy was cleared.
  EXPECT_TRUE(NewOwner->header().testFlag(HF_Owner));
}

TEST_F(OwnershipTableTest, TranslatePendingDropsDeadAndRewrites) {
  ObjRef Owner = node(1);
  ObjRef Kept = node(2), Dying = node(3), Moved = node(4), MovedTo = node(5);
  Table.add(Owner, Kept);
  Table.add(Owner, Dying);
  Table.add(Owner, Moved);

  int Orphans = 0;
  Table.translatePending(
      [&](ObjRef Obj) -> ObjRef {
        if (Obj == Dying)
          return nullptr;
        if (Obj == Moved)
          return MovedTo;
        return Obj;
      },
      [&](ObjRef, ObjRef) { ++Orphans; });
  EXPECT_EQ(Orphans, 0);

  Table.beginCycle();
  EXPECT_EQ(Table.size(), 2u);
  EXPECT_EQ(Table.lookupOwner(Kept), Owner);
  EXPECT_EQ(Table.lookupOwner(MovedTo), Owner);
  EXPECT_EQ(Table.lookupOwner(Dying), nullptr);
}

TEST_F(OwnershipTableTest, ManyPairsSortedLookup) {
  ObjRef Owner = node();
  std::vector<ObjRef> Ownees;
  for (int I = 0; I < 500; ++I) {
    Ownees.push_back(node(I));
    Table.add(Owner, Ownees.back());
  }
  Table.beginCycle();
  EXPECT_EQ(Table.size(), 500u);
  for (ObjRef Ownee : Ownees)
    ASSERT_EQ(Table.lookupOwner(Ownee), Owner);
  // Non-ownees miss.
  EXPECT_EQ(Table.lookupOwner(Owner), nullptr);
  EXPECT_EQ(Table.lookupOwner(node()), nullptr);
}

TEST_F(OwnershipTableTest, IncrementalMergeKeepsSortedOrder) {
  ObjRef Owner = node();
  // Merge in three waves; lookups must stay correct throughout.
  std::vector<ObjRef> All;
  for (int Wave = 0; Wave < 3; ++Wave) {
    for (int I = 0; I < 100; ++I) {
      All.push_back(node(Wave * 100 + I));
      Table.add(Owner, All.back());
    }
    Table.beginCycle();
    for (ObjRef Ownee : All)
      ASSERT_EQ(Table.lookupOwner(Ownee), Owner);
  }
  EXPECT_EQ(Table.size(), 300u);
}

} // namespace
