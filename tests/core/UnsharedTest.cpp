//===- UnsharedTest.cpp - assert-unshared (§2.5.1) unit tests -----------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

class UnsharedTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  UnsharedTest() : TheVm(makeConfig()), Engine(TheVm, &Sink) {}

  VmConfig makeConfig() {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Config.Collector = GetParam();
    return Config;
  }

  Vm TheVm;
  RecordingViolationSink Sink;
  AssertionEngine Engine;
};

TEST_P(UnsharedTest, SingleParentPasses) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Parent = Scope.handle(newNode(TheVm, T));
  ObjRef Child = newNode(TheVm, T);
  Parent.get()->setRef(G.FieldA, Child);

  Engine.assertUnshared(Child);
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
}

TEST_P(UnsharedTest, TwoParentsFire) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local P1 = Scope.handle(newNode(TheVm, T));
  Local P2 = Scope.handle(newNode(TheVm, T));
  ObjRef Child = newNode(TheVm, T);
  P1.get()->setRef(G.FieldA, Child);
  P2.get()->setRef(G.FieldA, Child);

  Engine.assertUnshared(Child);
  TheVm.collectNow();
  ASSERT_EQ(Sink.countOf(AssertionKind::Unshared), 1u);
  EXPECT_EQ(Sink.violations()[0].ObjectType, "LNode;");
}

TEST_P(UnsharedTest, ManyParentsReportOncePerGc) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 64));
  ObjRef Child = newNode(TheVm, T);
  for (uint64_t I = 0; I < 64; ++I)
    Arr.get()->setElement(I, Child);

  Engine.assertUnshared(Child);
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Unshared), 1u)
      << "63 extra edges still produce one report per GC";
}

TEST_P(UnsharedTest, TreeVersusDagDetection) {
  // The paper's use-case: verify a tree has not silently become a DAG.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local RootNode = Scope.handle(newNode(TheVm, T));
  ObjRef L = newNode(TheVm, T);
  RootNode.get()->setRef(G.FieldA, L);
  ObjRef R = newNode(TheVm, T);
  RootNode.get()->setRef(G.FieldB, R);
  ObjRef Leaf = newNode(TheVm, T);
  L->setRef(G.FieldA, Leaf);

  Engine.assertUnshared(L);
  Engine.assertUnshared(R);
  Engine.assertUnshared(Leaf);
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u) << "still a tree";

  // Re-read through the root handle: the collection may have moved the
  // nodes under the copying collector.
  ObjRef NewL = RootNode.get()->getRef(G.FieldA);
  ObjRef NewR = RootNode.get()->getRef(G.FieldB);
  NewR->setRef(G.FieldA, NewL->getRef(G.FieldA)); // Now a DAG.
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Unshared), 1u);
}

TEST_P(UnsharedTest, RootPlusHeapEdgeCountsAsShared) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Parent = Scope.handle(newNode(TheVm, T));
  Local DirectRoot = Scope.handle(newNode(TheVm, T));
  Parent.get()->setRef(G.FieldA, DirectRoot.get());

  Engine.assertUnshared(DirectRoot.get());
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Unshared), 1u)
      << "a root reference plus a heap reference is two incoming pointers";
}

TEST_P(UnsharedTest, SecondPathReported) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local P1 = Scope.handle(newNode(TheVm, T));
  Local P2 = Scope.handle(newNode(TheVm, T));
  ObjRef Child = newNode(TheVm, T);
  P1.get()->setRef(G.FieldA, Child);
  P2.get()->setRef(G.FieldB, Child);

  Engine.assertUnshared(Child);
  TheVm.collectNow();
  ASSERT_EQ(Sink.countOf(AssertionKind::Unshared), 1u);
  const Violation &V = Sink.violations()[0];
  // The path shown is the *second* path (§2.7: "We can print the second
  // path"); it ends at the asserted object.
  ASSERT_GE(V.Path.size(), 2u);
  EXPECT_EQ(V.Path.back().TypeName, "LNode;");
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, UnsharedTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact),
                         [](const ::testing::TestParamInfo<CollectorKind> &I) {
                           return std::string(collectorName(I.param));
                         });

} // namespace
