//===- InstancesTest.cpp - assert-instances (§2.4.1) unit tests ---------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

class InstancesTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  InstancesTest() : TheVm(makeConfig()), Engine(TheVm, &Sink) {}

  VmConfig makeConfig() {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Config.Collector = GetParam();
    return Config;
  }

  Vm TheVm;
  RecordingViolationSink Sink;
  AssertionEngine Engine;
};

TEST_P(InstancesTest, UnderLimitPasses) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 3));
  for (uint64_t I = 0; I < 3; ++I)
    Arr.get()->setElement(I, newNode(TheVm, T));

  Engine.assertInstances(G.Node, 3);
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
}

TEST_P(InstancesTest, OverLimitFires) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 5));
  for (uint64_t I = 0; I < 5; ++I)
    Arr.get()->setElement(I, newNode(TheVm, T));

  Engine.assertInstances(G.Node, 3);
  TheVm.collectNow();
  ASSERT_EQ(Sink.countOf(AssertionKind::Instances), 1u);
  EXPECT_EQ(Sink.violations()[0].ObjectType, "LNode;");
  EXPECT_NE(Sink.violations()[0].Message.find("5 live instances"),
            std::string::npos);
}

TEST_P(InstancesTest, ZeroLimitChecksNoInstancesExist) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  Engine.assertInstances(G.Node, 0);

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);

  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Instances), 1u);
  (void)Kept;
}

TEST_P(InstancesTest, DeadInstancesDoNotCount) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  for (int I = 0; I < 100; ++I)
    newNode(TheVm, T); // Garbage: unreachable at GC.

  Engine.assertInstances(G.Node, 1);
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u)
      << "only *live* instances count at GC time";
}

TEST_P(InstancesTest, SingletonPatternCheck) {
  // The paper's singleton use-case: assert one instance, then violate it.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local First = Scope.handle(newNode(TheVm, T));
  Engine.assertInstances(G.Node, 1);

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);

  Local Second = Scope.handle(newNode(TheVm, T)); // Oops: a second one.
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Instances), 1u);
  (void)First;
  (void)Second;
}

TEST_P(InstancesTest, ReportedEveryGcWhileViolated) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local A = Scope.handle(newNode(TheVm, T));
  Local B = Scope.handle(newNode(TheVm, T));
  Engine.assertInstances(G.Node, 1);
  TheVm.collectNow();
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Instances), 2u);
  (void)A;
  (void)B;
}

TEST_P(InstancesTest, ClearInstancesStopsChecking) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local A = Scope.handle(newNode(TheVm, T));
  Local B = Scope.handle(newNode(TheVm, T));
  Engine.assertInstances(G.Node, 1);
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Instances), 1u);

  Engine.clearInstances(G.Node);
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Instances), 1u);
  (void)A;
  (void)B;
}

TEST_P(InstancesTest, LimitsAreIndependentPerType) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local N = Scope.handle(newNode(TheVm, T));
  Local A1 = Scope.handle(TheVm.allocate(T, G.Array, 1));
  Local A2 = Scope.handle(TheVm.allocate(T, G.Array, 1));

  Engine.assertInstances(G.Node, 5);  // fine: 1 <= 5
  Engine.assertInstances(G.Array, 1); // violated: 2 > 1
  TheVm.collectNow();
  ASSERT_EQ(Sink.countOf(AssertionKind::Instances), 1u);
  EXPECT_EQ(Sink.violations()[0].ObjectType, "[LNode;");
  (void)N;
  (void)A1;
  (void)A2;
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, InstancesTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact),
                         [](const ::testing::TestParamInfo<CollectorKind> &I) {
                           return std::string(collectorName(I.param));
                         });

} // namespace
