//===- ReactionTest.cpp - reaction policies (§2.6) unit tests -----------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig smallVm(CollectorKind Kind = CollectorKind::MarkSweep) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = Kind;
  return Config;
}

TEST(ReactionTest, DefaultIsLogAndContinue) {
  Vm TheVm(smallVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  for (size_t I = 0; I < NumAssertionKinds; ++I)
    EXPECT_EQ(Engine.reaction(static_cast<AssertionKind>(I)),
              ReactionPolicy::LogAndContinue);
}

TEST(ReactionTest, LogAndContinueKeepsObjectAlive) {
  // The paper's default "retains the semantics of the program without any
  // assertions": a violating object is reported but not reclaimed.
  Vm TheVm(smallVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();

  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T, 5));
  Engine.assertDead(Kept.get());
  TheVm.collectNow();

  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u);
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  EXPECT_EQ(Kept.get()->getScalar<int64_t>(G.FieldValue), 5)
      << "object survives untouched";
}

TEST(ReactionTest, ForceTrueSeversReferencesAndReclaims) {
  // §2.6 "Force the assertion to be true ... by nulling out all incoming
  // references".
  Vm TheVm(smallVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  Engine.setReaction(AssertionKind::Dead, ReactionPolicy::ForceTrue);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local P1 = Scope.handle(newNode(TheVm, T));
  Local P2 = Scope.handle(newNode(TheVm, T));
  ObjRef Victim = newNode(TheVm, T);
  P1.get()->setRef(G.FieldA, Victim);
  P2.get()->setRef(G.FieldA, Victim);

  Engine.assertDead(Victim);
  TheVm.collectNow();

  EXPECT_EQ(P1.get()->getRef(G.FieldA), nullptr) << "reference severed";
  EXPECT_EQ(P2.get()->getRef(G.FieldA), nullptr) << "reference severed";
  EXPECT_EQ(heapObjectCount(TheVm), 2u) << "victim reclaimed this cycle";
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 0u)
      << "forcing replaces reporting";
}

TEST(ReactionTest, ForceTrueSeversRootSlots) {
  Vm TheVm(smallVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  Engine.setReaction(AssertionKind::Dead, ReactionPolicy::ForceTrue);
  MutatorThread &T = TheVm.mainThread();

  HandleScope Scope(T);
  Local Handle = Scope.handle(newNode(TheVm, T));
  Engine.assertDead(Handle.get());
  TheVm.collectNow();

  EXPECT_EQ(Handle.get(), nullptr) << "the handle itself is nulled";
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST(ReactionTest, ForceTrueReclaimsSubtreeToo) {
  // Severed object's exclusive children die with it.
  Vm TheVm(smallVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  Engine.setReaction(AssertionKind::Dead, ReactionPolicy::ForceTrue);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T));
  ObjRef Victim = newNode(TheVm, T);
  Holder.get()->setRef(G.FieldA, Victim);
  ObjRef Child = newNode(TheVm, T);
  Victim->setRef(G.FieldA, Child);

  Engine.assertDead(Victim);
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 1u) << "victim and child both reclaimed";
}

TEST(ReactionTest, ForceTrueUnderSemiSpace) {
  Vm TheVm(smallVm(CollectorKind::SemiSpace));
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  Engine.setReaction(AssertionKind::Dead, ReactionPolicy::ForceTrue);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T));
  ObjRef Victim = newNode(TheVm, T);
  Holder.get()->setRef(G.FieldA, Victim);

  Engine.assertDead(Victim);
  TheVm.collectNow();
  EXPECT_EQ(Holder.get()->getRef(G.FieldA), nullptr);
  EXPECT_EQ(heapObjectCount(TheVm), 1u);
}

TEST(ReactionDeathTest, LogAndHaltAborts) {
  Vm TheVm(smallVm());
  AssertionEngine Engine(TheVm); // Console sink; output goes to stderr.
  Engine.setReaction(AssertionKind::Dead, ReactionPolicy::LogAndHalt);
  MutatorThread &T = TheVm.mainThread();

  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  Engine.assertDead(Kept.get());
  EXPECT_DEATH(TheVm.collectNow(), "halting on GC assertion violation");
}

TEST(ReactionTest, PoliciesArePerKind) {
  Vm TheVm(smallVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  Engine.setReaction(AssertionKind::Dead, ReactionPolicy::ForceTrue);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  // An unshared violation still logs normally while Dead is set to force.
  HandleScope Scope(T);
  Local P1 = Scope.handle(newNode(TheVm, T));
  Local P2 = Scope.handle(newNode(TheVm, T));
  ObjRef Shared = newNode(TheVm, T);
  P1.get()->setRef(G.FieldA, Shared);
  P2.get()->setRef(G.FieldA, Shared);
  Engine.assertUnshared(Shared);

  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Unshared), 1u);
  EXPECT_EQ(heapObjectCount(TheVm), 3u);
}

} // namespace
