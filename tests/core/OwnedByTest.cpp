//===- OwnedByTest.cpp - assert-ownedby (§2.5.2) unit tests -------------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

class OwnedByTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  OwnedByTest() : TheVm(makeConfig()), Engine(TheVm, &Sink) {}

  VmConfig makeConfig() {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Config.Collector = GetParam();
    return Config;
  }

  Vm TheVm;
  RecordingViolationSink Sink;
  AssertionEngine Engine;
};

TEST_P(OwnedByTest, OwnedThroughContainerPasses) {
  // The typical shape: owner -> element array -> ownees.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Owner = Scope.handle(newNode(TheVm, T));
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 10));
  Owner.get()->setRef(G.FieldA, Arr.get());
  for (uint64_t I = 0; I < 10; ++I) {
    ObjRef Ownee = newNode(TheVm, T, static_cast<int64_t>(I));
    Arr.get()->setElement(I, Ownee);
    Engine.assertOwnedBy(Owner.get(), Ownee);
  }

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
  EXPECT_EQ(Engine.counters().OwneesCheckedLastGc, 10u);
}

TEST_P(OwnedByTest, ExtraReferenceStillPasses) {
  // The paper's cache example: the ownee may be referenced elsewhere too,
  // as long as a path through the owner exists.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Owner = Scope.handle(newNode(TheVm, T));
  Local Cache = Scope.handle(newNode(TheVm, T));
  ObjRef Ownee = newNode(TheVm, T);
  Owner.get()->setRef(G.FieldA, Ownee);
  Cache.get()->setRef(G.FieldA, Ownee);
  Engine.assertOwnedBy(Owner.get(), Ownee);

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
}

TEST_P(OwnedByTest, RemovedFromOwnerButCachedFires) {
  // The leak the assertion exists to catch: element removed from its
  // collection but kept alive by a stray reference.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Owner = Scope.handle(newNode(TheVm, T));
  Local Cache = Scope.handle(newNode(TheVm, T));
  ObjRef Ownee = newNode(TheVm, T);
  Owner.get()->setRef(G.FieldA, Ownee);
  Cache.get()->setRef(G.FieldA, Ownee);
  Engine.assertOwnedBy(Owner.get(), Ownee);

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);

  Owner.get()->setRef(G.FieldA, nullptr); // "remove from collection"
  TheVm.collectNow();
  ASSERT_EQ(Sink.countOf(AssertionKind::OwnedBy), 1u);
  const Violation &V = Sink.violations()[0];
  EXPECT_EQ(V.ObjectType, "LNode;");
  ASSERT_GE(V.Path.size(), 2u) << "path shows who holds the leak";
}

TEST_P(OwnedByTest, OwneeDeathRetiresThePair) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Owner = Scope.handle(newNode(TheVm, T));
  ObjRef Ownee = newNode(TheVm, T);
  Owner.get()->setRef(G.FieldA, Ownee);
  Engine.assertOwnedBy(Owner.get(), Ownee);

  Owner.get()->setRef(G.FieldA, nullptr); // The ownee dies cleanly.
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
  EXPECT_EQ(Engine.ownershipTable().size(), 0u) << "pair pruned";

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
}

TEST_P(OwnedByTest, OwnerDeathWithLiveOwneeReported) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local OwnerHandle = Scope.handle(newNode(TheVm, T));
  Local Keeper = Scope.handle(newNode(TheVm, T));
  ObjRef Ownee = newNode(TheVm, T);
  OwnerHandle.get()->setRef(G.FieldA, Ownee);
  Keeper.get()->setRef(G.FieldA, Ownee);
  Engine.assertOwnedBy(OwnerHandle.get(), Ownee);

  OwnerHandle.set(nullptr); // The owner itself dies; the ownee does not.
  TheVm.collectNow();
  // The verdict is deferred one cycle: at the GC where the owner dies, the
  // ownee's liveness may be an artifact of the ownership phase's
  // conservative marking (§2.5.2's memory-pressure caveat).
  EXPECT_EQ(Sink.countOf(AssertionKind::OwneeOutlivedOwner), 0u);
  EXPECT_EQ(Engine.ownershipTable().size(), 0u);
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::OwneeOutlivedOwner), 1u);
}

TEST_P(OwnedByTest, OrphanDyingWithOwnerNotReported) {
  // Ownee reachable only through its owner: when the owner dies, the ownee
  // survives one conservative cycle (the paper's memory pressure) and then
  // dies — no OwneeOutlivedOwner report.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local OwnerHandle = Scope.handle(newNode(TheVm, T));
  ObjRef Ownee = newNode(TheVm, T);
  OwnerHandle.get()->setRef(G.FieldA, Ownee);
  Engine.assertOwnedBy(OwnerHandle.get(), Ownee);

  OwnerHandle.set(nullptr);
  TheVm.collectNow();
  TheVm.collectNow();
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::OwneeOutlivedOwner), 0u);
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST_P(OwnedByTest, OwnerScanDoesNotKeepOwnerAlive) {
  // §2.5.2: "we avoid marking the owner object when we do the ownership
  // scan ... if the owner object is unreachable, it will be collected
  // during this GC".
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  ObjRef Owner = newNode(TheVm, T, 1); // Unrooted.
  ObjRef Ownee = newNode(TheVm, T, 2); // Unrooted, reachable from Owner.
  Owner->setRef(G.FieldA, Ownee);
  Engine.assertOwnedBy(Owner, Ownee);

  TheVm.collectNow();
  // The ownership phase marked the ownee (conservatively live one extra
  // cycle — the paper's "additional memory pressure"), but the owner
  // itself must die.
  size_t Live = heapObjectCount(TheVm);
  EXPECT_LE(Live, 1u) << "owner must not survive via its own scan";

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u) << "ownee dies the following GC";
}

TEST_P(OwnedByTest, OwneeSubtreeStaysLive) {
  // Truncation at ownees must not lose the ownee's own children.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Owner = Scope.handle(newNode(TheVm, T, 0));
  ObjRef Ownee = newNode(TheVm, T, 1);
  Owner.get()->setRef(G.FieldA, Ownee);
  ObjRef Child = newNode(TheVm, T, 2);
  Ownee->setRef(G.FieldA, Child);
  Engine.assertOwnedBy(Owner.get(), Ownee);

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 3u);
  // Verify the chain is intact (addresses may have changed).
  ObjRef O = Owner.get()->getRef(G.FieldA);
  ASSERT_NE(O, nullptr);
  ASSERT_NE(O->getRef(G.FieldA), nullptr);
  EXPECT_EQ(O->getRef(G.FieldA)->getScalar<int64_t>(G.FieldValue), 2);
}

TEST_P(OwnedByTest, BackEdgesThroughOwneeHandled) {
  // Ownee points back into the owner's container — the truncation design
  // exists exactly for this (§2.5.2 "back edges ... significant overlap").
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Owner = Scope.handle(newNode(TheVm, T));
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 4));
  Owner.get()->setRef(G.FieldA, Arr.get());
  for (uint64_t I = 0; I < 4; ++I) {
    ObjRef Ownee = newNode(TheVm, T, static_cast<int64_t>(I));
    Arr.get()->setElement(I, Ownee);
    Ownee->setRef(G.FieldA, Arr.get()); // Back edge into the container.
    Engine.assertOwnedBy(Owner.get(), Ownee);
  }

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
  EXPECT_EQ(heapObjectCount(TheVm), 6u);
}

TEST_P(OwnedByTest, TwoDisjointOwnersPass) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local O1 = Scope.handle(newNode(TheVm, T, 1));
  Local O2 = Scope.handle(newNode(TheVm, T, 2));
  ObjRef E1 = newNode(TheVm, T, 11);
  O1.get()->setRef(G.FieldA, E1);
  ObjRef E2 = newNode(TheVm, T, 22);
  O2.get()->setRef(G.FieldA, E2);
  Engine.assertOwnedBy(O1.get(), E1);
  Engine.assertOwnedBy(O2.get(), E2);

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
}

TEST_P(OwnedByTest, OwnerChainStopsAtOtherOwner) {
  // O1's region contains O2 (another owner): the scan marks O2 and stops;
  // O2's own region is scanned independently. No spurious reports.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local O1 = Scope.handle(newNode(TheVm, T, 1));
  ObjRef O2 = newNode(TheVm, T, 2);
  O1.get()->setRef(G.FieldB, O2);
  ObjRef E1 = newNode(TheVm, T, 11);
  O1.get()->setRef(G.FieldA, E1);
  ObjRef E2 = newNode(TheVm, T, 22);
  O2->setRef(G.FieldA, E2);
  Engine.assertOwnedBy(O1.get(), E1);
  Engine.assertOwnedBy(O2, E2);

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
  EXPECT_EQ(heapObjectCount(TheVm), 4u);
}

TEST_P(OwnedByTest, OverlappingOwnersWarned) {
  // O1's region reaches E2, which belongs to O2: improper use (§2.5.2).
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local O1 = Scope.handle(newNode(TheVm, T, 1));
  Local O2 = Scope.handle(newNode(TheVm, T, 2));
  ObjRef Shared = newNode(TheVm, T, 3); // In both regions.
  O1.get()->setRef(G.FieldA, Shared);
  O2.get()->setRef(G.FieldA, Shared);
  Engine.assertOwnedBy(O2.get(), Shared); // Owned by O2...
  ObjRef E1 = newNode(TheVm, T, 11);      // ...but O1's region hits it too.
  O1.get()->setRef(G.FieldB, E1);
  Engine.assertOwnedBy(O1.get(), E1);

  TheVm.collectNow();
  // Whether the overlap fires depends on scan order (only the owner that
  // reaches the foreign ownee first reports); it must never produce a
  // spurious OwnedBy violation.
  EXPECT_EQ(Sink.countOf(AssertionKind::OwnedBy), 0u);
  EXPECT_LE(Sink.countOf(AssertionKind::OwnershipOverlap), 1u);
}

TEST_P(OwnedByTest, ReassertReplacesOwner) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local O1 = Scope.handle(newNode(TheVm, T, 1));
  Local O2 = Scope.handle(newNode(TheVm, T, 2));
  ObjRef Ownee = newNode(TheVm, T, 3);
  O1.get()->setRef(G.FieldA, Ownee);
  Engine.assertOwnedBy(O1.get(), Ownee);
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);

  // Hand the ownee over to O2; O1 no longer references it.
  ObjRef CurrentOwnee = O1.get()->getRef(G.FieldA);
  O2.get()->setRef(G.FieldA, CurrentOwnee);
  O1.get()->setRef(G.FieldA, nullptr);
  Engine.assertOwnedBy(O2.get(), CurrentOwnee);
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u) << "new owner satisfies the pair";
  EXPECT_EQ(Engine.ownershipTable().size(), 1u);
}

TEST_P(OwnedByTest, ManyPairsCountersMatch) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Owner = Scope.handle(newNode(TheVm, T));
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 200));
  Owner.get()->setRef(G.FieldA, Arr.get());
  for (uint64_t I = 0; I < 200; ++I) {
    ObjRef Ownee = newNode(TheVm, T, static_cast<int64_t>(I));
    Arr.get()->setElement(I, Ownee);
    Engine.assertOwnedBy(Owner.get(), Ownee);
  }

  TheVm.collectNow();
  EXPECT_EQ(Engine.counters().AssertOwnedByCalls, 200u);
  EXPECT_EQ(Engine.counters().OwneesCheckedLastGc, 200u);
  EXPECT_EQ(Engine.ownershipTable().size(), 200u);
  EXPECT_EQ(Sink.violations().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, OwnedByTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact),
                         [](const ::testing::TestParamInfo<CollectorKind> &I) {
                           return std::string(collectorName(I.param));
                         });

} // namespace
