//===- ViolationLogSinkTest.cpp - core/ViolationLogSink unit tests ------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/core/ViolationLogSink.h"
#include "gcassert/support/OStream.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

Violation sampleViolation() {
  Violation V;
  V.Kind = AssertionKind::Dead;
  V.Cycle = 12;
  V.ObjectType = "Lspec/jbb/Order;";
  V.Message = "an object that was asserted dead is reachable";
  V.Path = {{"Lspec/jbb/Company;", ""},
            {"Lspec/jbb/Warehouse;", "warehouses"},
            {"Lspec/jbb/Order;", "[3]"}};
  return V;
}

TEST(LineLogSinkTest, FormatsOneParsableLine) {
  std::string Line = LineLogSink::formatLine(sampleViolation());
  EXPECT_EQ(Line, "gc-assert|12|assert-dead|Lspec/jbb/Order;|an object that "
                  "was asserted dead is reachable|Lspec/jbb/Company;->"
                  "warehouses:Lspec/jbb/Warehouse;->[3]:Lspec/jbb/Order;");
  EXPECT_EQ(Line.find('\n'), std::string::npos);
}

TEST(LineLogSinkTest, EmptyPath) {
  Violation V = sampleViolation();
  V.Path.clear();
  std::string Line = LineLogSink::formatLine(V);
  EXPECT_EQ(Line.back(), '|') << "empty trailing path field";
}

TEST(LineLogSinkTest, WritesToStream) {
  StringOStream Out;
  LineLogSink Sink(Out);
  Sink.report(sampleViolation());
  Sink.report(sampleViolation());
  // Two lines, each newline-terminated.
  size_t First = Out.str().find('\n');
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Out.str().find("gc-assert|", First), First + 1);
}

TEST(TeeViolationSinkTest, FansOut) {
  RecordingViolationSink A, B;
  TeeViolationSink Tee{&A, &B};
  Tee.report(sampleViolation());
  EXPECT_EQ(A.violations().size(), 1u);
  EXPECT_EQ(B.violations().size(), 1u);

  RecordingViolationSink C;
  Tee.addSink(&C);
  Tee.report(sampleViolation());
  EXPECT_EQ(A.violations().size(), 2u);
  EXPECT_EQ(C.violations().size(), 1u);
}

TEST(CallbackViolationSinkTest, ProgrammaticReaction) {
  // The paper's §2.6 future-work idea: react to a violation in an
  // application-specific way. Here the application "recovers" by clearing
  // the offending reference the next time it runs.
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Vm TheVm(Config);
  int DeadReports = 0;
  CallbackViolationSink Sink(
      [&](const Violation &V) { DeadReports += V.Kind == AssertionKind::Dead; });
  AssertionEngine Engine(TheVm, &Sink);

  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  Engine.assertDead(Kept.get());
  TheVm.collectNow();
  ASSERT_EQ(DeadReports, 1);

  Kept.set(nullptr); // The application-level reaction.
  TheVm.collectNow();
  EXPECT_EQ(DeadReports, 1);
}

TEST(TeeViolationSinkTest, WorksAsEngineSink) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Vm TheVm(Config);
  RecordingViolationSink Record;
  StringOStream LogOut;
  LineLogSink Log(LogOut);
  TeeViolationSink Tee{&Record, &Log};
  AssertionEngine Engine(TheVm, &Tee);

  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  Engine.assertDead(Kept.get());
  TheVm.collectNow();

  EXPECT_EQ(Record.countOf(AssertionKind::Dead), 1u);
  EXPECT_NE(LogOut.str().find("gc-assert|0|assert-dead|LNode;|"),
            std::string::npos);
}

} // namespace
