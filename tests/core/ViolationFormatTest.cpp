//===- ViolationFormatTest.cpp - Figure-1 report format tests -----------------===//

#include "gcassert/core/Violation.h"
#include "gcassert/support/OStream.h"

#include <gtest/gtest.h>

using namespace gcassert;

namespace {

Violation sampleDeadViolation() {
  Violation V;
  V.Kind = AssertionKind::Dead;
  V.Cycle = 3;
  V.ObjectType = "Lspec/jbb/Order;";
  V.Message = "an object that was asserted dead is reachable";
  V.Path = {{"Lspec/jbb/Company;", ""},
            {"[Ljava/lang/Object;", "warehouses"},
            {"Lspec/jbb/Order;", "[2]"}};
  return V;
}

TEST(ViolationFormatTest, Figure1Shape) {
  StringOStream Out;
  printViolation(Out, sampleDeadViolation());
  const std::string &Text = Out.str();

  // The format mirrors the paper's Figure 1: a warning line, the type, and
  // the path with " ->" separators.
  EXPECT_NE(Text.find("Warning: an object that was asserted dead is "
                      "reachable"),
            std::string::npos);
  EXPECT_NE(Text.find("Type: Lspec/jbb/Order;"), std::string::npos);
  EXPECT_NE(Text.find("Path to object:"), std::string::npos);
  EXPECT_NE(Text.find("Lspec/jbb/Company; ->"), std::string::npos);
  EXPECT_NE(Text.find("[Ljava/lang/Object; (via warehouses) ->"),
            std::string::npos);
  // The last step has no arrow.
  EXPECT_EQ(Text.find("Lspec/jbb/Order; (via [2]) ->"), std::string::npos);
}

TEST(ViolationFormatTest, OwnerOriginatedPathLabeled) {
  Violation V = sampleDeadViolation();
  V.PathFromOwner = true;
  StringOStream Out;
  printViolation(Out, V);
  EXPECT_NE(Out.str().find("Path from owner to object:"), std::string::npos);
}

TEST(ViolationFormatTest, NoPathSection) {
  Violation V;
  V.Kind = AssertionKind::Instances;
  V.ObjectType = "LIndexSearcher;";
  V.Message = "type LIndexSearcher; has 32 live instances at GC (limit 1)";
  StringOStream Out;
  printViolation(Out, V);
  EXPECT_EQ(Out.str().find("Path"), std::string::npos);
  EXPECT_NE(Out.str().find("32 live instances"), std::string::npos);
}

TEST(ViolationFormatTest, ConsoleSinkWritesToStream) {
  StringOStream Out;
  ConsoleViolationSink Sink(&Out);
  Sink.report(sampleDeadViolation());
  EXPECT_FALSE(Out.str().empty());
}

TEST(ViolationFormatTest, RecordingSinkCounts) {
  RecordingViolationSink Sink;
  Violation V = sampleDeadViolation();
  Sink.report(V);
  V.Kind = AssertionKind::Unshared;
  Sink.report(V);
  Sink.report(V);
  EXPECT_EQ(Sink.violations().size(), 3u);
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u);
  EXPECT_EQ(Sink.countOf(AssertionKind::Unshared), 2u);
  EXPECT_EQ(Sink.countOf(AssertionKind::OwnedBy), 0u);
  Sink.clear();
  EXPECT_TRUE(Sink.violations().empty());
}

TEST(ViolationFormatTest, KindNames) {
  EXPECT_STREQ(assertionKindName(AssertionKind::Dead), "assert-dead");
  EXPECT_STREQ(assertionKindName(AssertionKind::Unshared), "assert-unshared");
  EXPECT_STREQ(assertionKindName(AssertionKind::Instances),
               "assert-instances");
  EXPECT_STREQ(assertionKindName(AssertionKind::OwnedBy), "assert-ownedby");
}

} // namespace
