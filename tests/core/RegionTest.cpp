//===- RegionTest.cpp - start-region / assert-alldead (§2.3.2) tests ----------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

class RegionTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  RegionTest() : TheVm(makeConfig()), Engine(TheVm, &Sink) {}

  VmConfig makeConfig() {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Config.Collector = GetParam();
    return Config;
  }

  Vm TheVm;
  RecordingViolationSink Sink;
  AssertionEngine Engine;
};

TEST_P(RegionTest, CleanRegionPasses) {
  MutatorThread &T = TheVm.mainThread();
  Engine.startRegion(T);
  for (int I = 0; I < 100; ++I)
    newNode(TheVm, T); // All garbage by region end.
  Engine.assertAllDead(T);
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
}

TEST_P(RegionTest, EscapingObjectFires) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Escape = Scope.handle();

  Engine.startRegion(T);
  for (int I = 0; I < 50; ++I)
    newNode(TheVm, T);
  Escape.set(newNode(TheVm, T, 99)); // Leaks out of the region.
  Engine.assertAllDead(T);

  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u);
}

TEST_P(RegionTest, AllocationsOutsideRegionNotLogged) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Outside = Scope.handle(newNode(TheVm, T));

  Engine.startRegion(T);
  newNode(TheVm, T);
  Engine.assertAllDead(T);
  EXPECT_EQ(Engine.counters().RegionObjectsLogged, 1u);

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u)
      << "pre-region allocation must not be asserted dead";
  (void)Outside;
}

TEST_P(RegionTest, GcInsideRegionPrunesDeadEntries) {
  // Objects that die before the region closes must not be re-asserted:
  // their log entries are pruned at GC time (the cells may be reused).
  MutatorThread &T = TheVm.mainThread();
  Engine.startRegion(T);
  for (int I = 0; I < 100; ++I)
    newNode(TheVm, T);
  TheVm.collectNow(); // Everything in the log dies here.

  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  (void)Kept;
  Engine.assertAllDead(T);
  EXPECT_EQ(Engine.counters().RegionObjectsLogged, 1u)
      << "only the post-GC allocation remains logged";

  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u) << "only Kept violates";
}

TEST_P(RegionTest, RegionsArePerThread) {
  MutatorThread &T1 = TheVm.mainThread();
  MutatorThread &T2 = TheVm.spawnThread("worker");
  HandleScope S2(T2);
  Local OtherThreadObj = S2.handle();

  Engine.startRegion(T1);
  // T2 allocates while T1 is in a region; T2 is not in a region, so its
  // allocation must not be logged (§2.3.2: "the region is confined to a
  // single thread").
  OtherThreadObj.set(newNode(TheVm, T2));
  Engine.assertAllDead(T1);
  EXPECT_EQ(Engine.counters().RegionObjectsLogged, 0u);

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
}

TEST_P(RegionTest, NestedRegionsLogInnermost) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local EscapeInner = Scope.handle();

  Engine.startRegion(T); // outer
  Engine.startRegion(T); // inner
  EscapeInner.set(newNode(TheVm, T));
  Engine.assertAllDead(T); // close inner: its object escapes -> will fire
  newNode(TheVm, T);       // logged by the outer region; garbage
  Engine.assertAllDead(T); // close outer: clean

  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u);
}

TEST_P(RegionTest, ServerLoopIdiom) {
  // The paper's motivating use: bracket connection-servicing code and check
  // the service leaks nothing into the rest of the application.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local SessionCache = Scope.handle(TheVm.allocate(T, G.Array, 8));

  for (int Request = 0; Request < 5; ++Request) {
    Engine.startRegion(T);
    {
      HandleScope Inner(T);
      Local Buffer = Inner.handle(TheVm.allocate(T, G.Blob, 256));
      Local Response = Inner.handle(newNode(TheVm, T, Request));
      (void)Buffer;
      if (Request == 3) // The bug: one response is cached "for later".
        SessionCache.get()->setElement(0, Response.get());
    }
    Engine.assertAllDead(T);
    TheVm.collectNow();
  }
  // The cached response escapes its region at request 3 and, because the
  // dead bit persists, is re-reported at request 4's collection too.
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 2u);
}

TEST_P(RegionTest, CountersTrackRegions) {
  MutatorThread &T = TheVm.mainThread();
  Engine.startRegion(T);
  Engine.assertAllDead(T);
  Engine.startRegion(T);
  Engine.assertAllDead(T);
  EXPECT_EQ(Engine.counters().RegionsOpened, 2u);
  EXPECT_EQ(Engine.counters().RegionsClosed, 2u);
}

TEST_P(RegionTest, UnmatchedAssertAllDeadAborts) {
  MutatorThread &T = TheVm.mainThread();
  EXPECT_DEATH(Engine.assertAllDead(T), "start-region");
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, RegionTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact),
                         [](const ::testing::TestParamInfo<CollectorKind> &I) {
                           return std::string(collectorName(I.param));
                         });

} // namespace
