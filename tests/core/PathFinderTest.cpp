//===- PathFinderTest.cpp - core/PathFinder unit tests ------------------------===//

#include "common/TestGraph.h"
#include "gcassert/core/PathFinder.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig smallVm() {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  return Config;
}

TEST(PathFinderTest, FindsDirectRoot) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Obj = Scope.handle(newNode(TheVm, T));

  PathFinder Finder(TheVm);
  auto Path = Finder.findPath(Obj.get());
  ASSERT_TRUE(Path.has_value());
  ASSERT_EQ(Path->size(), 1u);
  EXPECT_EQ((*Path)[0].TypeName, "LNode;");
}

TEST(PathFinderTest, FindsChainWithFieldNames) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Head = Scope.handle(newNode(TheVm, T));
  ObjRef Mid = newNode(TheVm, T);
  Head.get()->setRef(G.FieldB, Mid);
  ObjRef Tail = newNode(TheVm, T);
  Mid->setRef(G.FieldC, Tail);

  PathFinder Finder(TheVm);
  auto Path = Finder.findPath(Tail);
  ASSERT_TRUE(Path.has_value());
  ASSERT_EQ(Path->size(), 3u);
  EXPECT_EQ((*Path)[1].FieldName, "b");
  EXPECT_EQ((*Path)[2].FieldName, "c");
}

TEST(PathFinderTest, ShortestPathPreferred) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  // Long path: root -> a -> b -> target; short path: root2 -> target.
  Local LongRoot = Scope.handle(newNode(TheVm, T));
  ObjRef A = newNode(TheVm, T);
  LongRoot.get()->setRef(G.FieldA, A);
  ObjRef Target = newNode(TheVm, T);
  A->setRef(G.FieldA, Target);
  Local ShortRoot = Scope.handle(newNode(TheVm, T));
  ShortRoot.get()->setRef(G.FieldA, Target);

  PathFinder Finder(TheVm);
  auto Path = Finder.findPath(Target);
  ASSERT_TRUE(Path.has_value());
  EXPECT_EQ(Path->size(), 2u) << "BFS returns the shortest path";
}

TEST(PathFinderTest, UnreachableReturnsNullopt) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  ObjRef Garbage = newNode(TheVm, T); // Unrooted (and no GC ran yet).

  PathFinder Finder(TheVm);
  EXPECT_FALSE(Finder.findPath(Garbage).has_value());
}

TEST(PathFinderTest, FindReachableInstances) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 10));
  for (uint64_t I = 0; I < 10; ++I)
    Arr.get()->setElement(I, newNode(TheVm, T, static_cast<int64_t>(I)));
  newNode(TheVm, T, 99); // Unreachable: must not be returned.

  PathFinder Finder(TheVm);
  EXPECT_EQ(Finder.findReachableInstances(G.Node, 100).size(), 10u);
  EXPECT_EQ(Finder.findReachableInstances(G.Node, 4).size(), 4u)
      << "cap respected";
  EXPECT_EQ(Finder.findReachableInstances(G.Blob, 10).size(), 0u);
}

TEST(PathFinderTest, CountIncomingReferences) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local P1 = Scope.handle(newNode(TheVm, T));
  Local P2 = Scope.handle(newNode(TheVm, T));
  Local Direct = Scope.handle(); // Root slot pointing at the target.
  ObjRef Target = newNode(TheVm, T);
  P1.get()->setRef(G.FieldA, Target);
  P2.get()->setRef(G.FieldA, Target);
  P2.get()->setRef(G.FieldB, Target); // Two edges from the same object.
  Direct.set(Target);

  PathFinder Finder(TheVm);
  EXPECT_EQ(Finder.countIncomingReferences(Target), 4u)
      << "3 heap edges + 1 root slot";
}

} // namespace
