//===- OwnershipPropertyTest.cpp - assert-ownedby vs a reachability oracle ----===//
//
// Property-based test of the §2.5.2 semantics with a single owner (the
// paper's restriction — owner regions must be disjoint — is trivially met):
// after a collection,
//
//   ownee live and unreachable from the owner  <=>  OwnedBy violation
//
// where "reachable from the owner" is computed by an independent BFS.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/support/Random.h"

#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

struct PropertyParam {
  CollectorKind Collector;
  uint64_t Seed;
};

class OwnershipPropertyTest : public ::testing::TestWithParam<PropertyParam> {
};

/// BFS over Node fields from \p From; true if \p To is reachable (proper
/// paths only: From -> ... -> To with at least one edge... From==To counts
/// as reachable via the trivial path, matching the tracer's semantics where
/// the ownee *is* in the owner's region).
bool reachable(Vm &TheVm, const GraphTypes &G, ObjRef From, ObjRef To) {
  std::unordered_set<ObjRef> Seen{From};
  std::deque<ObjRef> Queue{From};
  while (!Queue.empty()) {
    ObjRef Obj = Queue.front();
    Queue.pop_front();
    if (Obj == To && Obj != From)
      return true;
    for (uint32_t Offset : TheVm.types().get(G.Node).refOffsets()) {
      ObjRef Child = Obj->getRef(Offset);
      if (Child && Seen.insert(Child).second) {
        if (Child == To)
          return true;
        Queue.push_back(Child);
      }
    }
  }
  return false;
}

TEST_P(OwnershipPropertyTest, ViolationIffUnreachableFromOwner) {
  VmConfig Config;
  Config.HeapBytes = 16u << 20;
  Config.Collector = GetParam().Collector;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  SplitMix64 Rng(GetParam().Seed);

  // A rooted random graph with one owner and a set of rooted candidates.
  HandleScope Scope(T);
  const int NodeCount = 120;
  std::vector<Local> Nodes;
  for (int I = 0; I != NodeCount; ++I)
    Nodes.push_back(Scope.handle(newNode(TheVm, T, I)));
  for (int I = 0; I != NodeCount * 2; ++I) {
    ObjRef From = Nodes[Rng.nextBelow(Nodes.size())].get();
    ObjRef To = Nodes[Rng.nextBelow(Nodes.size())].get();
    uint32_t Field =
        Rng.nextBelow(2) == 0 ? G.FieldA : (Rng.nextBelow(2) ? G.FieldB : G.FieldC);
    if (From != To)
      From->setRef(Field, To);
  }

  Local Owner = Nodes[0];
  // Pick ~20 distinct ownees (everything is rooted, so all stay live).
  std::vector<size_t> OwneeIndices;
  std::unordered_set<size_t> Used{0};
  while (OwneeIndices.size() < 20) {
    size_t Index = 1 + Rng.nextBelow(NodeCount - 1);
    if (Used.insert(Index).second)
      OwneeIndices.push_back(Index);
  }
  for (size_t Index : OwneeIndices)
    Engine.assertOwnedBy(Owner.get(), Nodes[Index].get());

  // Oracle *before* the collection (the graph does not change during GC
  // under LogAndContinue; addresses may, so evaluate expectations on
  // payload identity afterwards).
  std::unordered_set<int64_t> ExpectedViolations;
  for (size_t Index : OwneeIndices)
    if (!reachable(TheVm, G, Owner.get(), Nodes[Index].get()))
      ExpectedViolations.insert(static_cast<int64_t>(Index));

  TheVm.collectNow();

  std::unordered_set<int64_t> Reported;
  for (const Violation &V : Sink.violations()) {
    ASSERT_EQ(V.Kind, AssertionKind::OwnedBy)
        << "single-owner runs can only produce OwnedBy violations, got: "
        << V.Message;
    // The violating object is the path's last step; recover its identity
    // from the live graph by payload: find the ownee index whose node is
    // the reported one. Payloads equal indices.
    ASSERT_FALSE(V.Path.empty());
  }
  // Identify violating ownees by checking which asserted ownees are (still)
  // unreachable from the owner after the GC and cross-check the count.
  size_t StillUnreachable = 0;
  for (size_t Index : OwneeIndices)
    if (!reachable(TheVm, G, Owner.get(), Nodes[Index].get()))
      ++StillUnreachable;

  EXPECT_EQ(Sink.countOf(AssertionKind::OwnedBy), ExpectedViolations.size());
  EXPECT_EQ(StillUnreachable, ExpectedViolations.size())
      << "collection must not change owner-reachability of rooted nodes";
}

TEST_P(OwnershipPropertyTest, RepeatedGcIsStable) {
  // Violations must repeat identically across collections when nothing
  // mutates (the check is per-GC and stateless apart from header bits).
  VmConfig Config;
  Config.HeapBytes = 16u << 20;
  Config.Collector = GetParam().Collector;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Owner = Scope.handle(newNode(TheVm, T, 0));
  Local Orphan = Scope.handle(newNode(TheVm, T, 1)); // Never owner-reachable.
  Local Owned = Scope.handle(newNode(TheVm, T, 2));
  Owner.get()->setRef(G.FieldA, Owned.get());
  Engine.assertOwnedBy(Owner.get(), Orphan.get());
  Engine.assertOwnedBy(Owner.get(), Owned.get());

  for (int I = 1; I <= 3; ++I) {
    TheVm.collectNow();
    EXPECT_EQ(Sink.countOf(AssertionKind::OwnedBy), static_cast<size_t>(I));
  }
}

std::vector<PropertyParam> propertyParams() {
  std::vector<PropertyParam> Params;
  for (CollectorKind Kind : {CollectorKind::MarkSweep,
                             CollectorKind::SemiSpace,
                             CollectorKind::MarkCompact})
    for (uint64_t Seed = 11; Seed <= 18; ++Seed)
      Params.push_back({Kind, Seed});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, OwnershipPropertyTest,
    ::testing::ValuesIn(propertyParams()),
    [](const ::testing::TestParamInfo<PropertyParam> &Info) {
      return std::string(collectorName(Info.param.Collector)) + "_seed" +
             std::to_string(Info.param.Seed);
    });

} // namespace
