//===- VolumeTest.cpp - assert-volume (§2.4 "total volume") unit tests --------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

class VolumeTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  VolumeTest() : TheVm(makeConfig()), Engine(TheVm, &Sink) {}

  VmConfig makeConfig() {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Config.Collector = GetParam();
    return Config;
  }

  Vm TheVm;
  RecordingViolationSink Sink;
  AssertionEngine Engine;
};

TEST_P(VolumeTest, UnderLimitPasses) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 4));
  for (uint64_t I = 0; I < 4; ++I)
    Arr.get()->setElement(I, newNode(TheVm, T));

  // Four nodes: 4 * (header 8 + payload 32) = 160 bytes.
  Engine.assertVolume(G.Node, 4096);
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
}

TEST_P(VolumeTest, OverLimitFires) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 100));
  for (uint64_t I = 0; I < 100; ++I)
    Arr.get()->setElement(I, newNode(TheVm, T));

  Engine.assertVolume(G.Node, 1024); // 100 nodes is way past 1 KiB.
  TheVm.collectNow();
  ASSERT_EQ(Sink.countOf(AssertionKind::Volume), 1u);
  EXPECT_EQ(Sink.violations()[0].ObjectType, "LNode;");
  EXPECT_NE(Sink.violations()[0].Message.find("live bytes"),
            std::string::npos);
}

TEST_P(VolumeTest, ArrayVolumeCountsElements) {
  // A single huge array can violate a volume limit even with an instance
  // limit of one satisfied — that is what volume limits are for.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Big = Scope.handle(TheVm.allocate(T, G.Blob, 100000));
  (void)Big;

  Engine.assertInstances(G.Blob, 1); // Satisfied: one array.
  Engine.assertVolume(G.Blob, 1024); // Violated: 100 KB of payload.
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Instances), 0u);
  EXPECT_EQ(Sink.countOf(AssertionKind::Volume), 1u);
}

TEST_P(VolumeTest, DeadBytesDoNotCount) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  for (int I = 0; I < 1000; ++I)
    newNode(TheVm, T); // All garbage.

  Engine.assertVolume(G.Node, 64);
  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u);
}

TEST_P(VolumeTest, GrowthAcrossGcsDetected) {
  // The leak-ceiling use case: alert when a cache exceeds its budget.
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Head = Scope.handle();
  Engine.assertVolume(G.Node, 2000); // Budget: 50 nodes.

  for (int Epoch = 0; Epoch < 4; ++Epoch) {
    for (int I = 0; I < 20; ++I) {
      ObjRef NewNode = newNode(TheVm, T);
      NewNode->setRef(G.FieldA, Head.get());
      Head.set(NewNode);
    }
    TheVm.collectNow();
  }
  // 20/40 nodes fit in 2000 bytes (40 bytes each); 60/80 do not.
  EXPECT_EQ(Sink.countOf(AssertionKind::Volume), 2u);
}

TEST_P(VolumeTest, ClearVolumeStopsChecking) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 100));
  for (uint64_t I = 0; I < 100; ++I)
    Arr.get()->setElement(I, newNode(TheVm, T));

  Engine.assertVolume(G.Node, 64);
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Volume), 1u);
  Engine.clearVolume(G.Node);
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Volume), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, VolumeTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact),
                         [](const ::testing::TestParamInfo<CollectorKind> &I) {
                           return std::string(collectorName(I.param));
                         });

} // namespace
