//===- HardeningTest.cpp - Hardened heap mode tests ---------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Exercises the hardened heap mode end to end: header checksum stamping,
// trace-piggybacked edge validation (sequential and parallel mark),
// quarantine containment, poison-on-free, structural audits and the three
// defect policies — across all four collector families, with every
// corrupt.* failpoint fired at least once.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"
#include "gcassert/heap/Hardening.h"
#include "gcassert/support/Checksum.h"
#include "gcassert/support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

//===----------------------------------------------------------------------===//
// Checksum primitives (no VM involved)
//===----------------------------------------------------------------------===//

TEST(HardeningChecksumTest, PairChecksumIsDeterministic) {
  EXPECT_EQ(checksum16Pair(1, 0), checksum16Pair(1, 0));
  EXPECT_EQ(checksum16Pair(7, 1234), checksum16Pair(7, 1234));
  EXPECT_EQ(HeapHardening::headerChecksum(3, 16), checksum16Pair(3, 16));
}

TEST(HardeningChecksumTest, PairChecksumIsSensitiveToBothInputs) {
  // Single-bit flips in either word must change the folded checksum — the
  // exact corruptions the header stamp exists to catch.
  uint16_t Base = checksum16Pair(1, 0);
  EXPECT_NE(checksum16Pair(2, 0), Base);
  EXPECT_NE(checksum16Pair(1, 1), Base);
  EXPECT_NE(checksum16Pair(0x00100001u ^ 1u, 0), Base);
}

TEST(HardeningChecksumTest, Crc32cMatchesKnownVector) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

//===----------------------------------------------------------------------===//
// Parameterized over the four collector families
//===----------------------------------------------------------------------===//

class HardeningTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  ~HardeningTest() override { disarmAllFailpoints(); }

  VmConfig makeConfig(HardeningMode Mode = HardeningMode::Full,
                      HardeningPolicy Policy = HardeningPolicy::Quarantine,
                      size_t HeapBytes = 8u << 20) {
    VmConfig Config;
    Config.HeapBytes = HeapBytes;
    Config.Collector = GetParam();
    Config.Gc.Hardening = Mode;
    Config.Gc.OnDefect = Policy;
    return Config;
  }
};

TEST_P(HardeningTest, NewObjectsAreStamped) {
  Vm TheVm(makeConfig(HardeningMode::Check));
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  ASSERT_NE(TheVm.hardening(), nullptr);

  HandleScope Scope(T);
  Local Node = Scope.handle(newNode(TheVm, T, 42));
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 8));

  EXPECT_EQ(Node.get()->header().storedChecksum(),
            HeapHardening::headerChecksum(G.Node, 0));
  EXPECT_EQ(Arr.get()->header().storedChecksum(),
            HeapHardening::headerChecksum(G.Array, 8));

  // The stamp must survive a collection (copy / slide / promote all memcpy
  // the header; flag mutation only touches the low half).
  TheVm.collectNow();
  EXPECT_EQ(Node.get()->header().storedChecksum(),
            HeapHardening::headerChecksum(G.Node, 0));
  EXPECT_EQ(Arr.get()->header().storedChecksum(),
            HeapHardening::headerChecksum(G.Array, 8));
  EXPECT_EQ(TheVm.hardening()->counters().DefectsDetected, 0u);
}

TEST_P(HardeningTest, OffModeLeavesHeadersUntouched) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = GetParam();
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();

  EXPECT_EQ(TheVm.hardening(), nullptr);
  HandleScope Scope(T);
  Local Node = Scope.handle(newNode(TheVm, T, 1));
  EXPECT_EQ(Node.get()->header().storedChecksum(), 0u);
}

TEST_P(HardeningTest, CorruptHeaderIsDetectedAndQuarantined) {
  Vm TheVm(makeConfig());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T, 1));
  faults::CorruptHeader.armOnce();
  ObjRef Victim = newNode(TheVm, T, 2); // header scribbled at allocation
  Holder.get()->setRef(G.FieldA, Victim);

  TheVm.collectNow();

  const HardeningCounters C = TheVm.hardening()->counters();
  EXPECT_GE(C.DefectsDetected, 1u);
  EXPECT_GE(C.BadTypeIds, 1u);
  EXPECT_GE(C.SeveredEdges, 1u);
  EXPECT_GE(C.QuarantinedTotal, 1u);
  EXPECT_EQ(Holder.get()->getRef(G.FieldA), nullptr)
      << "the edge to the corrupted object must be severed";

  // GcStats mirrors the counters at cycle end.
  EXPECT_EQ(TheVm.gcStats().HeapDefects, C.DefectsDetected);
  EXPECT_EQ(TheVm.gcStats().Quarantined, C.QuarantinedTotal);

  // Containment, not collapse: the VM keeps allocating and collecting.
  Local After = Scope.handle(newNode(TheVm, T, 3));
  TheVm.collectNow();
  EXPECT_EQ(After.get()->getScalar<int64_t>(G.FieldValue), 3);
  EXPECT_EQ(Holder.get()->getScalar<int64_t>(G.FieldValue), 1);
}

TEST_P(HardeningTest, CheckModeAlsoDetectsHeaderCorruption) {
  // The injected corruption pushes the type id out of range, so even Check
  // mode (no pointer-plausibility pass) must catch it.
  Vm TheVm(makeConfig(HardeningMode::Check));
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T, 1));
  faults::CorruptHeader.armOnce();
  Holder.get()->setRef(G.FieldA, newNode(TheVm, T, 2));

  TheVm.collectNow();
  EXPECT_GE(TheVm.hardening()->counters().BadTypeIds, 1u);
  EXPECT_EQ(Holder.get()->getRef(G.FieldA), nullptr);
}

TEST_P(HardeningTest, CorruptRefIsDetectedAndSevered) {
  Vm TheVm(makeConfig());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  faults::CorruptRef.armOnce();
  // The victim's first reference slot now points into its own payload:
  // in-heap and aligned, but no object header lives there.
  Local Victim = Scope.handle(newNode(TheVm, T, 7));
  ASSERT_NE(Victim.get()->getRef(G.FieldA), nullptr);

  TheVm.collectNow();

  const HardeningCounters C = TheVm.hardening()->counters();
  EXPECT_GE(C.DefectsDetected, 1u);
  EXPECT_GE(C.SeveredEdges, 1u);
  EXPECT_GE(C.BadTypeIds + C.ChecksumFailures + C.BadReferences, 1u);
  EXPECT_EQ(Victim.get()->getRef(G.FieldA), nullptr)
      << "the garbage edge must be severed, not chased";
  EXPECT_EQ(Victim.get()->getScalar<int64_t>(G.FieldValue), 7)
      << "the victim itself is intact and stays live";
}

TEST_P(HardeningTest, QuarantinePolicySurvivesWorkloadAfterInjection) {
  // The acceptance bar: after an injected corruption, the Quarantine policy
  // lets the VM complete a workload that forces many further collections.
  Vm TheVm(makeConfig(HardeningMode::Full, HardeningPolicy::Quarantine,
                      /*HeapBytes=*/2u << 20));
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  // Slot 16 holds the victim; the loop below only cycles slots 0-15, so
  // the corrupted object stays reachable until the trace severs the edge.
  Local Keep = Scope.handle(TheVm.allocate(T, G.Array, 17));
  faults::CorruptHeader.armOnce();
  Keep.get()->setElement(16, newNode(TheVm, T, 0)); // corrupted at allocation

  for (int64_t I = 0; I < 150000; ++I) {
    ObjRef Node = newNode(TheVm, T, I);
    Keep.get()->setElement(static_cast<uint64_t>(I) % 16, Node);
  }

  EXPECT_GT(TheVm.gcStats().Cycles + TheVm.gcStats().MinorCycles, 0u);
  EXPECT_GE(TheVm.hardening()->counters().DefectsDetected, 1u);
  // The surviving graph is readable and consistent.
  for (uint64_t I = 0; I < 16; ++I) {
    if (ObjRef Node = Keep.get()->getElement(I)) {
      EXPECT_EQ(static_cast<uint64_t>(
                    Node->getScalar<int64_t>(G.FieldValue)) % 16,
                I);
    }
  }
}

TEST_P(HardeningTest, AbortPolicyFailsStopOnCorruption) {
  EXPECT_DEATH(
      {
        VmConfig Config;
        Config.HeapBytes = 8u << 20;
        Config.Collector = GetParam();
        Config.Gc.Hardening = HardeningMode::Full;
        Config.Gc.OnDefect = HardeningPolicy::Abort;
        Vm TheVm(Config);
        MutatorThread &T = TheVm.mainThread();
        const GraphTypes &G = GraphTypes::ensure(TheVm.types());
        HandleScope Scope(T);
        Local Holder = Scope.handle(newNode(TheVm, T, 1));
        faults::CorruptHeader.armOnce();
        Holder.get()->setRef(G.FieldA, newNode(TheVm, T, 2));
        TheVm.collectNow();
      },
      "heap corruption detected");
}

TEST_P(HardeningTest, CallbackPolicyObservesDefectsAndContinues) {
  VmConfig Config = makeConfig(HardeningMode::Full, HardeningPolicy::Callback);
  int Calls = 0;
  DefectKind LastKind = DefectKind::StaleGcState;
  Config.Gc.OnDefectCallback = [&](const HeapDefect &Defect) {
    ++Calls;
    LastKind = Defect.Kind;
  };
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T, 1));
  faults::CorruptHeader.armOnce();
  Holder.get()->setRef(G.FieldA, newNode(TheVm, T, 2));
  TheVm.collectNow();

  EXPECT_GE(Calls, 1);
  EXPECT_EQ(LastKind, DefectKind::BadTypeId);
  // The callback observes; containment still happens.
  EXPECT_EQ(Holder.get()->getRef(G.FieldA), nullptr);
  EXPECT_GE(TheVm.hardening()->counters().QuarantinedTotal, 1u);
}

TEST_P(HardeningTest, DefectLogRecordsTheCorruption) {
  Vm TheVm(makeConfig());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T, 1));
  faults::CorruptHeader.armOnce();
  Holder.get()->setRef(G.FieldA, newNode(TheVm, T, 2));
  TheVm.collectNow();

  std::vector<HeapDefect> Defects = TheVm.hardening()->defects();
  ASSERT_FALSE(Defects.empty());
  EXPECT_EQ(Defects.front().Kind, DefectKind::BadTypeId);
  EXPECT_FALSE(Defects.front().Description.empty());
  EXPECT_NE(TheVm.hardening()->describeState().find("bad-type-id"),
            std::string::npos);
}

TEST_P(HardeningTest, CheckModeHeapMatchesOffModeHeap) {
  // Hardening must be observation-only: the same program produces the same
  // live graph with and without it.
  auto RunProgram = [this](HardeningMode Mode) -> size_t {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Config.Collector = GetParam();
    Config.Gc.Hardening = Mode;
    Vm TheVm(Config);
    MutatorThread &T = TheVm.mainThread();
    const GraphTypes &G = GraphTypes::ensure(TheVm.types());
    HandleScope Scope(T);
    Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 32));
    for (int64_t I = 0; I < 2000; ++I) {
      ObjRef Node = newNode(TheVm, T, I);
      if (I % 3 == 0)
        Arr.get()->setElement(static_cast<uint64_t>(I) % 32, Node);
    }
    TheVm.collectNow();
    return heapObjectCount(TheVm);
  };

  EXPECT_EQ(RunProgram(HardeningMode::Off), RunProgram(HardeningMode::Check));
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, HardeningTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact,
                                           CollectorKind::Generational),
                         [](const ::testing::TestParamInfo<CollectorKind> &I) {
                           return std::string(collectorName(I.param));
                         });

//===----------------------------------------------------------------------===//
// Parallel mark (mark-sweep family, 2 and 4 GC threads)
//===----------------------------------------------------------------------===//

class HardeningParallelTest : public ::testing::TestWithParam<unsigned> {
protected:
  ~HardeningParallelTest() override { disarmAllFailpoints(); }
};

TEST_P(HardeningParallelTest, ParallelMarkDetectsCorruptHeader) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::MarkSweep;
  Config.Gc.Threads = GetParam();
  Config.Gc.Hardening = HardeningMode::Check;
  Config.Gc.OnDefect = HardeningPolicy::Quarantine;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  // A wide graph so the work-stealing trace actually fans out.
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 256));
  for (uint64_t I = 0; I < 256; ++I) {
    ObjRef Node = newNode(TheVm, T, static_cast<int64_t>(I));
    Arr.get()->setElement(I, Node);
    if (I > 0)
      Node->setRef(G.FieldA, Arr.get()->getElement(I - 1));
  }
  Local Holder = Scope.handle(newNode(TheVm, T, -1));
  faults::CorruptHeader.armOnce();
  Holder.get()->setRef(G.FieldB, newNode(TheVm, T, -2));

  TheVm.collectNow();

  const HardeningCounters C = TheVm.hardening()->counters();
  EXPECT_GE(C.DefectsDetected, 1u);
  EXPECT_GE(C.BadTypeIds, 1u);
  EXPECT_GE(C.SeveredEdges, 1u);
  EXPECT_EQ(Holder.get()->getRef(G.FieldB), nullptr);

  // The rest of the graph marked correctly despite the mid-trace defect.
  for (uint64_t I = 0; I < 256; ++I) {
    ObjRef Node = Arr.get()->getElement(I);
    ASSERT_NE(Node, nullptr);
    EXPECT_EQ(Node->getScalar<int64_t>(G.FieldValue), static_cast<int64_t>(I));
  }
}

INSTANTIATE_TEST_SUITE_P(GcThreads, HardeningParallelTest,
                         ::testing::Values(2u, 4u),
                         [](const ::testing::TestParamInfo<unsigned> &I) {
                           return "Threads" + std::to_string(I.param);
                         });

//===----------------------------------------------------------------------===//
// Free-list heap specifics: poison-on-free and structural audits
//===----------------------------------------------------------------------===//

class HardeningFreeListTest : public ::testing::Test {
protected:
  ~HardeningFreeListTest() override { disarmAllFailpoints(); }

  static VmConfig markSweepConfig() {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Config.Collector = CollectorKind::MarkSweep;
    Config.Gc.Hardening = HardeningMode::Full;
    Config.Gc.OnDefect = HardeningPolicy::Quarantine;
    return Config;
  }
};

TEST_F(HardeningFreeListTest, PoisonDamageIsDetectedOnReuse) {
  Vm TheVm(markSweepConfig());
  MutatorThread &T = TheVm.mainThread();

  // "corrupt.freelist" scribbles the head free cell's poisoned area right
  // before it is reused — a use-after-free write. The reuse check must trip
  // on it, quarantine the cell and serve the allocation from the next one.
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  faults::CorruptFreeCell.armOnce();
  HandleScope Scope(T);
  Local Node = Scope.handle(newNode(TheVm, T, 5));
  ASSERT_NE(Node.get(), nullptr);
  EXPECT_EQ(Node.get()->getScalar<int64_t>(G.FieldValue), 5);

  const HardeningCounters C = TheVm.hardening()->counters();
  EXPECT_GE(C.PoisonTrips, 1u);
  EXPECT_GE(C.DefectsDetected, 1u);
  EXPECT_GE(C.QuarantinedTotal, 1u);

  std::vector<HeapDefect> Defects = TheVm.hardening()->defects();
  ASSERT_FALSE(Defects.empty());
  EXPECT_EQ(Defects.front().Kind, DefectKind::PoisonDamage);

  // The quarantined cell is pinned through later sweeps without incident.
  TheVm.collectNow();
  TheVm.collectNow();
  EXPECT_EQ(Node.get()->header().isObject(), true);
}

TEST_F(HardeningFreeListTest, FreeListAuditDetectsAndRepairsCrossLink) {
  Vm TheVm(markSweepConfig());
  MutatorThread &T = TheVm.mainThread();

  // "corrupt.freelist.link" points the head cell's next link at the cell
  // itself; after the pop the class list heads at a live object.
  faults::CorruptFreeLink.armOnce();
  HandleScope Scope(T);
  Local Node = Scope.handle(newNode(TheVm, T, 9));
  ASSERT_NE(Node.get(), nullptr);

  std::vector<HeapDefect> Defects;
  TheVm.heap().auditStructure(Defects, /*Repair=*/true);
  ASSERT_FALSE(Defects.empty());
  EXPECT_EQ(Defects.front().Kind, DefectKind::FreeListCorrupt);
  EXPECT_NE(Defects.front().Description.find("live object"),
            std::string::npos);

  // Repair truncated the list at the bad link: allocation stays safe and
  // never hands out the live cell a second time.
  for (int64_t I = 0; I < 1000; ++I)
    ASSERT_NE(newNode(TheVm, T, I), nullptr);
  EXPECT_EQ(Node.get()->getScalar<int64_t>(
                GraphTypes::ensure(TheVm.types()).FieldValue),
            9);

  // A clean audit after a collection rebuilt the lists.
  TheVm.collectNow();
  Defects.clear();
  TheVm.heap().auditStructure(Defects, /*Repair=*/false);
  EXPECT_TRUE(Defects.empty());
}

//===----------------------------------------------------------------------===//
// Generational specifics: remembered-set validation
//===----------------------------------------------------------------------===//

TEST(HardeningGenerationalTest, CorruptRememberedSetEntryIsDetected) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::Generational;
  Config.Gc.Hardening = HardeningMode::Full;
  Config.Gc.OnDefect = HardeningPolicy::Quarantine;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T, 1));
  TheVm.collectNow(); // Major: Holder is now in the old generation.

  // "corrupt.remset" slips an interior pointer into the remembered set
  // alongside the legitimate entry the barrier records.
  faults::CorruptRemSet.armOnce();
  ObjRef Young = newNode(TheVm, T, 2);
  Holder.get()->setRef(G.FieldA, Young);

  uint64_t MinorsBefore = TheVm.gcStats().MinorCycles;
  for (int I = 0; I < 300000; ++I)
    newNode(TheVm, T);
  ASSERT_GT(TheVm.gcStats().MinorCycles, MinorsBefore);

  const HardeningCounters C = TheVm.hardening()->counters();
  EXPECT_GE(C.DefectsDetected, 1u);
  bool FoundRemSetDefect = false;
  for (const HeapDefect &Defect : TheVm.hardening()->defects())
    if (Defect.Kind == DefectKind::RememberedSetCorrupt)
      FoundRemSetDefect = true;
  EXPECT_TRUE(FoundRemSetDefect);

  // The legitimate entry still did its job across the minor collections.
  ObjRef Survivor = Holder.get()->getRef(G.FieldA);
  ASSERT_NE(Survivor, nullptr);
  EXPECT_EQ(Survivor->getScalar<int64_t>(G.FieldValue), 2);

  disarmAllFailpoints();
}

} // namespace
