//===- OomCascadeTest.cpp - Recoverable allocation-failure cascade ------------===//
//
// Exercises Vm::allocate's emergency cascade: collection → emergency full
// collection → OOM handlers → OomPolicy, across all four collector
// families, plus the pre-flight copy-reserve guards that route around the
// formerly-fatal mid-copy failure paths.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/support/FaultInjection.h"

#include <gtest/gtest.h>

#include <vector>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

/// Blob size chosen to stress every family's slowest allocation path: it is
/// pretenured by the generational heap (> nursery/4) and takes the
/// large-object path in the free-list heap (> block size).
constexpr uint64_t BlobBytes = 96u << 10;

class OomCascadeTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  void TearDown() override { disarmAllFailpoints(); }

  VmConfig makeConfig(OomPolicy Policy) {
    VmConfig Config;
    Config.HeapBytes = 1u << 20;
    Config.Collector = GetParam();
    Config.OnOom = Policy;
    return Config;
  }
};

TEST_P(OomCascadeTest, ReturnNullWhenExhaustedThenRecovers) {
  Vm TheVm(makeConfig(OomPolicy::ReturnNull));
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  // Fill the heap with rooted blobs until the cascade gives up.
  std::vector<GlobalRootId> Roots;
  ObjRef Blob = nullptr;
  for (int I = 0; I < 64; ++I) {
    Blob = TheVm.allocate(T, G.Blob, BlobBytes);
    if (!Blob)
      break;
    Roots.push_back(TheVm.addGlobalRoot(Blob));
  }
  ASSERT_EQ(Blob, nullptr) << "heap never filled";
  // The generational heap fits a single pretenured blob in its large-object
  // budget; every family must land at least one before exhaustion.
  EXPECT_GE(Roots.size(), 1u);
  EXPECT_GE(TheVm.oomNullReturns(), 1u);
  // The cascade ran its emergency stage before giving up.
  EXPECT_GE(TheVm.gcStats().EmergencyCollections, 1u);

  // Releasing memory makes allocation work again — the failure was a
  // result, not a poisoned state.
  for (GlobalRootId Id : Roots)
    TheVm.removeGlobalRoot(Id);
  ObjRef After = TheVm.allocate(T, G.Blob, BlobBytes);
  EXPECT_NE(After, nullptr);
}

TEST_P(OomCascadeTest, OomHandlerReleasesMemoryAndAllocationSucceeds) {
  Vm TheVm(makeConfig(OomPolicy::RunOomHandlers));
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  std::vector<GlobalRootId> Roots;
  ObjRef Blob = nullptr;
  for (int I = 0; I < 64; ++I) {
    Blob = TheVm.allocate(T, G.Blob, BlobBytes);
    if (!Blob)
      break;
    Roots.push_back(TheVm.addGlobalRoot(Blob));
  }
  ASSERT_EQ(Blob, nullptr);
  ASSERT_GE(Roots.size(), 1u);

  // An application-level load shedder: drop the oldest rooted blob.
  TheVm.addOomHandler([&](uint64_t) {
    if (Roots.empty())
      return false;
    TheVm.removeGlobalRoot(Roots.front());
    Roots.erase(Roots.begin());
    return true;
  });

  uint64_t NullsBefore = TheVm.oomNullReturns();
  ObjRef Rescued = TheVm.allocate(T, G.Blob, BlobBytes);
  EXPECT_NE(Rescued, nullptr);
  EXPECT_GE(TheVm.gcStats().OomHandlerRuns, 1u);
  EXPECT_EQ(TheVm.oomNullReturns(), NullsBefore);
}

TEST_P(OomCascadeTest, UnhelpfulOomHandlerFallsBackToNull) {
  Vm TheVm(makeConfig(OomPolicy::RunOomHandlers));
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  uint64_t HandlerCalls = 0;
  uint64_t LastNeeded = 0;
  TheVm.addOomHandler([&](uint64_t Needed) {
    ++HandlerCalls;
    LastNeeded = Needed;
    return false; // Nothing to shed.
  });

  std::vector<GlobalRootId> Roots;
  ObjRef Blob = nullptr;
  for (int I = 0; I < 64; ++I) {
    Blob = TheVm.allocate(T, G.Blob, BlobBytes);
    if (!Blob)
      break;
    Roots.push_back(TheVm.addGlobalRoot(Blob));
  }
  ASSERT_EQ(Blob, nullptr);
  EXPECT_GE(HandlerCalls, 1u);
  EXPECT_GE(LastNeeded, BlobBytes);
  EXPECT_EQ(TheVm.gcStats().OomHandlerRuns, 0u); // Returned false: no run.
  EXPECT_GE(TheVm.oomNullReturns(), 1u);
}

TEST_P(OomCascadeTest, RemovedOomHandlerDoesNotRun) {
  Vm TheVm(makeConfig(OomPolicy::RunOomHandlers));
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  bool Ran = false;
  Vm::OomHandlerId Id = TheVm.addOomHandler([&](uint64_t) {
    Ran = true;
    return false;
  });
  TheVm.removeOomHandler(Id);

  std::vector<GlobalRootId> Roots;
  for (int I = 0; I < 64; ++I) {
    ObjRef Blob = TheVm.allocate(T, G.Blob, BlobBytes);
    if (!Blob)
      break;
    Roots.push_back(TheVm.addGlobalRoot(Blob));
  }
  EXPECT_FALSE(Ran);
  EXPECT_GE(TheVm.oomNullReturns(), 1u);
}

TEST_P(OomCascadeTest, ExhaustionDegradesAttachedEngineToCoreOnly) {
  Vm TheVm(makeConfig(OomPolicy::ReturnNull));
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  std::vector<GlobalRootId> Roots;
  for (int I = 0; I < 64; ++I) {
    ObjRef Blob = TheVm.allocate(T, G.Blob, BlobBytes);
    if (!Blob)
      break;
    Roots.push_back(TheVm.addGlobalRoot(Blob));
  }
  ASSERT_GE(TheVm.oomNullReturns(), 1u);
  // The Critical pressure notification dropped the ladder all the way.
  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::CoreOnly);
  EXPECT_FALSE(Engine.allowPathRecording());
  EXPECT_GE(TheVm.gcStats().PathShedCycles +
                TheVm.gcStats().BookkeepingShedCycles,
            1u);
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, OomCascadeTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact,
                                           CollectorKind::Generational),
                         [](const auto &Info) {
                           return collectorName(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Pre-flight guards
//===----------------------------------------------------------------------===//

class GuardTest : public ::testing::Test {
protected:
  void TearDown() override { disarmAllFailpoints(); }
};

TEST_F(GuardTest, GenPromoteGuardConvertsMinorIntoMajor) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::Generational;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  (void)Kept;

  // A fresh heap would normally take the minor fast path for allocation
  // pressure; the armed guard predicts a promotion failure and routes the
  // cycle into a major collection instead of risking a mid-copy abort.
  faults::GenPromoteGuard.armOnce();
  TheVm.collector().collect("allocation failure");

  const GcStats &Stats = TheVm.gcStats();
  EXPECT_EQ(Stats.GuardTrips, 1u);
  EXPECT_EQ(Stats.MinorCycles, 0u);
  EXPECT_EQ(Stats.Cycles, 1u);

  // With the guard disarmed the fast path is back.
  TheVm.collector().collect("allocation failure");
  EXPECT_EQ(TheVm.gcStats().MinorCycles, 1u);
}

TEST_F(GuardTest, SemispaceGuardTripsAndShedsEngine) {
  VmConfig Config;
  Config.HeapBytes = 4u << 20;
  Config.Collector = CollectorKind::SemiSpace;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));

  faults::SemispaceGuard.armOnce();
  TheVm.collectNow();

  EXPECT_EQ(TheVm.gcStats().GuardTrips, 1u);
  // Critical pressure: the engine shed everything optional, but the
  // collection itself completed and the object survived.
  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::CoreOnly);
  EXPECT_NE(Kept.get(), nullptr);
  EXPECT_EQ(heapObjectCount(TheVm), 1u);
}

TEST_F(GuardTest, LargeObjectHostAllocFailureIsRecoverable) {
  // The satellite fix: a failed host allocation for a large object used to
  // call reportFatalError; now it surfaces as an allocation failure that
  // the cascade (and OomPolicy) handles like heap exhaustion.
  VmConfig Config;
  Config.HeapBytes = 4u << 20;
  Config.Collector = CollectorKind::MarkSweep;
  Config.OnOom = OomPolicy::ReturnNull;
  Vm TheVm(Config);
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  faults::HeapHostAlloc.armAlways();
  ObjRef Blob = TheVm.allocate(T, G.Blob, BlobBytes);
  EXPECT_EQ(Blob, nullptr);
  EXPECT_GE(TheVm.oomNullReturns(), 1u);

  faults::HeapHostAlloc.disarm();
  Blob = TheVm.allocate(T, G.Blob, BlobBytes);
  EXPECT_NE(Blob, nullptr);
}

} // namespace
