//===- DegradationTest.cpp - Assertion-engine degradation ladder --------------===//
//
// The engine sheds optional work under memory pressure — §2.7 path
// recording first, then per-assertion bookkeeping — while the paper's core
// checks stay live at every level. Driven here by the "engine.shed"
// failpoint, by real occupancy, and verified to keep core violation
// detection intact.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/core/ViolationLogSink.h"
#include "gcassert/support/FaultInjection.h"
#include "gcassert/support/OStream.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

class DegradationTest : public ::testing::Test {
protected:
  void TearDown() override { disarmAllFailpoints(); }
};

TEST_F(DegradationTest, EngineShedFaultEscalatesOneLevelPerCycle) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);

  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::Full);
  EXPECT_TRUE(Engine.allowPathRecording());

  faults::EngineShed.armAlways();
  TheVm.collectNow();
  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::NoPaths);
  EXPECT_FALSE(Engine.allowPathRecording());

  TheVm.collectNow();
  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::CoreOnly);

  TheVm.collectNow(); // Saturates at CoreOnly.
  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::CoreOnly);

  const GcStats &Stats = TheVm.gcStats();
  EXPECT_EQ(Stats.PathShedCycles, 3u);
  EXPECT_EQ(Stats.BookkeepingShedCycles, 2u);
}

TEST_F(DegradationTest, RecoveryStepsDownOneLevelPerCycle) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);

  faults::EngineShed.armAlways();
  TheVm.collectNow();
  TheVm.collectNow();
  ASSERT_EQ(Engine.degradationLevel(), DegradationLevel::CoreOnly);
  faults::EngineShed.disarm();

  // Occupancy is near zero, so each cycle restores exactly one level.
  TheVm.collectNow();
  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::NoPaths);
  TheVm.collectNow();
  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::Full);
  EXPECT_TRUE(Engine.allowPathRecording());
}

TEST_F(DegradationTest, OccupancyShedsPathsAndHysteresisRestores) {
  VmConfig Config;
  Config.HeapBytes = 2u << 20;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  ShedConfig Shed;
  Shed.ShedPathsAt = 0.3;
  Shed.ShedBookkeepingAt = 0.9;
  Shed.RestoreMargin = 0.05;
  Engine.setShedConfig(Shed);

  // Root roughly 60% of capacity in small blobs (small enough for the
  // free-list heap's segregated small path, not its large-object budget).
  uint64_t Capacity = TheVm.heap().stats().BytesCapacity;
  std::vector<GlobalRootId> Roots;
  for (uint64_t Held = 0; Held < Capacity * 6 / 10; Held += 4096)
    Roots.push_back(TheVm.addGlobalRoot(TheVm.allocate(T, G.Blob, 4096)));

  // First collection records the live occupancy; the second acts on it.
  TheVm.collectNow();
  TheVm.collectNow();
  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::NoPaths);
  EXPECT_GE(TheVm.gcStats().PathShedCycles, 1u);

  // Drop the ballast: one cycle to observe the new occupancy, one to
  // clear the hysteresis gate.
  for (GlobalRootId Id : Roots)
    TheVm.removeGlobalRoot(Id);
  TheVm.collectNow();
  TheVm.collectNow();
  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::Full);
}

/// The set of (kind, object type) pairs a sink saw for the paper's core
/// assertion kinds.
std::set<std::pair<int, std::string>>
coreKindsSeen(const RecordingViolationSink &Sink) {
  std::set<std::pair<int, std::string>> Seen;
  for (const Violation &V : Sink.violations()) {
    switch (V.Kind) {
    case AssertionKind::Dead:
    case AssertionKind::Unshared:
    case AssertionKind::Instances:
    case AssertionKind::Volume:
    case AssertionKind::OwnedBy:
      Seen.insert({static_cast<int>(V.Kind), V.ObjectType});
      break;
    default:
      break;
    }
  }
  return Seen;
}

/// Sets up three core violations (dead, unshared, instances) and collects.
void runCoreViolationWorkload(Vm &TheVm, AssertionEngine &Engine) {
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);

  Local Kept = Scope.handle(newNode(TheVm, T));
  Engine.assertDead(Kept.get());

  Local Shared = Scope.handle(newNode(TheVm, T));
  Local RefA = Scope.handle(newNode(TheVm, T));
  Local RefB = Scope.handle(newNode(TheVm, T));
  RefA.get()->setRef(G.FieldA, Shared.get());
  RefB.get()->setRef(G.FieldA, Shared.get());
  Engine.assertUnshared(Shared.get());

  Engine.assertInstances(G.Node, 1);

  TheVm.collectNow();
}

TEST_F(DegradationTest, CoreOnlyCyclesDetectTheSameCoreViolations) {
  std::set<std::pair<int, std::string>> Baseline;
  {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Vm TheVm(Config);
    RecordingViolationSink Sink;
    AssertionEngine Engine(TheVm, &Sink);
    runCoreViolationWorkload(TheVm, Engine);
    ASSERT_EQ(Engine.degradationLevel(), DegradationLevel::Full);
    Baseline = coreKindsSeen(Sink);
    ASSERT_EQ(Baseline.size(), 3u);
    // Full mode records §2.7 paths for path-bearing kinds.
    bool SawPath = false;
    for (const Violation &V : Sink.violations())
      SawPath |= !V.Path.empty();
    EXPECT_TRUE(SawPath);
  }

  // Same workload with the engine pinned at CoreOnly from the first cycle.
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  ShedConfig Shed;
  Shed.ShedPathsAt = 0.0;
  Shed.ShedBookkeepingAt = 0.0;
  Engine.setShedConfig(Shed);
  runCoreViolationWorkload(TheVm, Engine);
  EXPECT_EQ(Engine.degradationLevel(), DegradationLevel::CoreOnly);

  // Identical core detections; no paths anywhere.
  EXPECT_EQ(coreKindsSeen(Sink), Baseline);
  for (const Violation &V : Sink.violations())
    EXPECT_TRUE(V.Path.empty());
}

//===----------------------------------------------------------------------===//
// BoundedLogSink
//===----------------------------------------------------------------------===//

Violation makeViolation(uint64_t Cycle, const char *Message) {
  Violation V;
  V.Kind = AssertionKind::Dead;
  V.Cycle = Cycle;
  V.ObjectType = "LNode;";
  V.Message = Message;
  return V;
}

TEST_F(DegradationTest, BoundedSinkCapsLinesPerCycle) {
  StringOStream Out;
  BoundedLogSink::Config Cfg;
  Cfg.MaxLinesPerCycle = 2;
  Cfg.TailCapacity = 3;
  BoundedLogSink Sink(Out, Cfg);

  for (int I = 0; I < 5; ++I)
    Sink.report(makeViolation(1, "cycle one"));
  EXPECT_EQ(Sink.writtenViolations(), 2u);
  EXPECT_EQ(Sink.droppedViolations(), 3u);
  EXPECT_EQ(Sink.tailLines().size(), 3u); // Bounded, keeps the newest.

  // A new cycle resets the line budget.
  Sink.report(makeViolation(2, "cycle two"));
  EXPECT_EQ(Sink.writtenViolations(), 3u);
  EXPECT_NE(Out.str().find("cycle two"), std::string::npos);
}

TEST_F(DegradationTest, BoundedSinkDropsOnWriteFault) {
  StringOStream Out;
  BoundedLogSink Sink(Out);

  faults::SinkWrite.armAlways();
  Sink.report(makeViolation(1, "lost"));
  EXPECT_EQ(Sink.writtenViolations(), 0u);
  EXPECT_EQ(Sink.droppedViolations(), 1u);
  EXPECT_TRUE(Out.str().empty());
  // Dropped lines still reach the in-memory tail for crash diagnostics.
  ASSERT_EQ(Sink.tailLines().size(), 1u);

  faults::SinkWrite.disarm();
  Sink.report(makeViolation(1, "kept"));
  EXPECT_EQ(Sink.writtenViolations(), 1u);
  EXPECT_NE(Out.str().find("kept"), std::string::npos);
}

TEST_F(DegradationTest, BoundedSinkDumpsTail) {
  StringOStream Out;
  BoundedLogSink Sink(Out);
  Sink.report(makeViolation(1, "first"));
  Sink.report(makeViolation(1, "second"));

  StringOStream Tail;
  Sink.dumpTail(Tail);
  EXPECT_NE(Tail.str().find("written=2"), std::string::npos);
  EXPECT_NE(Tail.str().find("first"), std::string::npos);
  EXPECT_NE(Tail.str().find("second"), std::string::npos);
}

} // namespace
