//===- FaultStressTest.cpp - Fault-driven stress across all collectors --------===//
//
// Storms: deterministic fault injection plus a tight heap, across every
// collector family and GC thread count. The runtime must shed load (null
// returns under OomPolicy::ReturnNull) but never abort, keep detecting
// core assertion violations, and recover fully once the faults clear.
// The genuinely unrecoverable mid-copy paths stay fatal and are pinned by
// death tests, including their crash diagnostics.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/support/FaultInjection.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

struct StormParam {
  CollectorKind Kind;
  unsigned GcThreads;
};

std::string stormName(const ::testing::TestParamInfo<StormParam> &Info) {
  return std::string(collectorName(Info.param.Kind)) + "_T" +
         std::to_string(Info.param.GcThreads);
}

/// Arms the fault set for \p Kind. The free-list families get allocation
/// failures injected directly; promotion stays un-faulted (a failed
/// promotion is unrecoverable by design, covered by the death tests and
/// routed around by the pre-flight guard). The copying families exercise
/// their guard sites and natural bump-space exhaustion.
void armStormFaults(CollectorKind Kind) {
  switch (Kind) {
  case CollectorKind::MarkSweep:
    faults::HeapBlockAcquire.armProbabilityPercent(20, /*Seed=*/2024);
    faults::HeapHostAlloc.armProbabilityPercent(50, /*Seed=*/4048);
    break;
  case CollectorKind::Generational:
    faults::HeapHostAlloc.armProbabilityPercent(50, /*Seed=*/4048);
    break;
  case CollectorKind::SemiSpace:
    faults::SemispaceGuard.armEveryNth(3);
    break;
  case CollectorKind::MarkCompact:
    break; // Natural exhaustion only.
  }
}

class FaultStormTest : public ::testing::TestWithParam<StormParam> {
protected:
  void TearDown() override { disarmAllFailpoints(); }
};

TEST_P(FaultStormTest, SurvivesAllocationFailureStorm) {
  VmConfig Config;
  Config.HeapBytes = 2u << 20;
  Config.Collector = GetParam().Kind;
  Config.Gc.Threads = GetParam().GcThreads;
  Config.OnOom = OomPolicy::ReturnNull;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  // A core violation planted before the storm: it must keep firing no
  // matter how degraded the engine gets.
  GlobalRootId KeptRoot = TheVm.addGlobalRoot(newNode(TheVm, T));
  Engine.assertDead(TheVm.globalRoot(KeptRoot));

  armStormFaults(GetParam().Kind);

  // Churn: a rotating live window of blobs plus transient nodes. Under
  // injected faults and a tight heap many of these allocations fail; every
  // failure must surface as a null, never an abort.
  std::vector<GlobalRootId> Window;
  uint64_t Nulls = 0, Survived = 0;
  for (int I = 0; I < 400; ++I) {
    uint64_t Size = (I % 3 == 0) ? (96u << 10) : 4096;
    ObjRef Blob = TheVm.allocate(T, G.Blob, Size);
    if (!Blob) {
      ++Nulls;
      continue;
    }
    ++Survived;
    if (I % 4 == 0) {
      Window.push_back(TheVm.addGlobalRoot(Blob));
      if (Window.size() > 8) {
        TheVm.removeGlobalRoot(Window.front());
        Window.erase(Window.begin());
      }
    }
  }

  // The storm was survivable: the process is alive, some allocations
  // succeeded, and the planted violation kept being detected.
  EXPECT_GT(Survived, 0u);
  EXPECT_EQ(TheVm.oomNullReturns(), Nulls);
  EXPECT_GT(Sink.countOf(AssertionKind::Dead), 0u);
  if (GetParam().Kind == CollectorKind::SemiSpace) {
    EXPECT_GT(TheVm.gcStats().GuardTrips, 0u);
  }

  // Faults cleared: the runtime recovers completely.
  disarmAllFailpoints();
  for (GlobalRootId Id : Window)
    TheVm.removeGlobalRoot(Id);
  TheVm.removeGlobalRoot(KeptRoot);
  TheVm.collectNow();
  ObjRef After = TheVm.allocate(T, G.Blob, 96u << 10);
  EXPECT_NE(After, nullptr);
  EXPECT_EQ(TheVm.oomNullReturns(), Nulls);
}

INSTANTIATE_TEST_SUITE_P(
    AllCollectorsAllThreadCounts, FaultStormTest,
    ::testing::Values(StormParam{CollectorKind::MarkSweep, 1},
                      StormParam{CollectorKind::MarkSweep, 2},
                      StormParam{CollectorKind::MarkSweep, 4},
                      StormParam{CollectorKind::SemiSpace, 1},
                      StormParam{CollectorKind::SemiSpace, 2},
                      StormParam{CollectorKind::SemiSpace, 4},
                      StormParam{CollectorKind::MarkCompact, 1},
                      StormParam{CollectorKind::MarkCompact, 2},
                      StormParam{CollectorKind::MarkCompact, 4},
                      StormParam{CollectorKind::Generational, 1},
                      StormParam{CollectorKind::Generational, 2},
                      StormParam{CollectorKind::Generational, 4}),
    stormName);

//===----------------------------------------------------------------------===//
// Worker spawn failures
//===----------------------------------------------------------------------===//

class WorkerStartFaultTest : public ::testing::Test {
protected:
  void TearDown() override { disarmAllFailpoints(); }
};

TEST_F(WorkerStartFaultTest, CollectionDegradesToFewerWorkers) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::MarkSweep;
  Config.Gc.Threads = 4;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();

  // Build a graph: 50 rooted nodes each keeping one child, plus garbage.
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  for (int I = 0; I < 50; ++I) {
    ObjRef Parent = newNode(TheVm, T, I);
    Parent->setRef(G.FieldA, newNode(TheVm, T, 1000 + I));
    TheVm.addGlobalRoot(Parent);
    newNode(TheVm, T, -I); // Garbage.
  }

  // Every worker spawn fails: the pool degrades to the calling thread
  // alone, and the collection must still be exact.
  faults::GcWorkerStart.armAlways();
  TheVm.collectNow();

  EXPECT_EQ(TheVm.gcStats().WorkerStartFailures, 3u);
  EXPECT_EQ(heapObjectCount(TheVm), 100u); // 50 parents + 50 children.
}

//===----------------------------------------------------------------------===//
// Unrecoverable paths stay fatal — with diagnostics
//===----------------------------------------------------------------------===//

using FaultDeathTest = WorkerStartFaultTest;

TEST_F(FaultDeathTest, SemispaceEvacuationFailureAbortsWithDiagnostics) {
  VmConfig Config;
  Config.HeapBytes = 2u << 20;
  Config.Collector = CollectorKind::SemiSpace;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  TheVm.addGlobalRoot(newNode(TheVm, T));

  // Arm inside the death statement so only the forked child sees it.
  EXPECT_DEATH(
      {
        faults::SemispaceEvacuate.armAlways();
        TheVm.collectNow();
      },
      "to-space overflow during evacuation");
  EXPECT_DEATH(
      {
        faults::SemispaceEvacuate.armAlways();
        TheVm.collectNow();
      },
      "crash diagnostics");
}

TEST_F(FaultDeathTest, PromotionFailureAbortsWithDiagnostics) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::Generational;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  TheVm.addGlobalRoot(newNode(TheVm, T));

  EXPECT_DEATH(
      {
        faults::GenPromote.armAlways();
        TheVm.collector().collect("allocation failure");
      },
      "old generation exhausted during nursery promotion");
}

TEST_F(FaultDeathTest, AbortPolicyDumpsHeapHistogram) {
  VmConfig Config;
  Config.HeapBytes = 1u << 20;
  Config.Collector = CollectorKind::MarkSweep;
  Vm TheVm(Config); // Default OomPolicy::Abort.
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  EXPECT_DEATH(
      {
        for (int I = 0; I < 64; ++I)
          TheVm.addGlobalRoot(TheVm.allocate(T, G.Blob, 96u << 10));
      },
      "out of memory");
  // The diagnostics include the collector/heap/gc state lines.
  EXPECT_DEATH(
      {
        for (int I = 0; I < 64; ++I)
          TheVm.addGlobalRoot(TheVm.allocate(T, G.Blob, 96u << 10));
      },
      "collector: marksweep");
}

} // namespace
