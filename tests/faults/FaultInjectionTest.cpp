//===- FaultInjectionTest.cpp - Failpoint policy & registry unit tests --------===//

#include "gcassert/support/FaultInjection.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace gcassert;

namespace {

class FaultInjectionTest : public ::testing::Test {
protected:
  void TearDown() override { disarmAllFailpoints(); }
};

TEST_F(FaultInjectionTest, DisarmedNeverFiresAndCountsNothing) {
  Failpoint FP("test.disarmed");
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(FP.shouldFail());
  EXPECT_EQ(FP.hitCount(), 0u);
  EXPECT_EQ(FP.firedCount(), 0u);
  EXPECT_FALSE(FP.armed());
}

TEST_F(FaultInjectionTest, AlwaysFiresEveryHit) {
  Failpoint FP("test.always");
  FP.armAlways();
  EXPECT_TRUE(FP.armed());
  for (int I = 0; I < 10; ++I)
    EXPECT_TRUE(FP.shouldFail());
  EXPECT_EQ(FP.hitCount(), 10u);
  EXPECT_EQ(FP.firedCount(), 10u);
  FP.disarm();
  EXPECT_FALSE(FP.shouldFail());
  EXPECT_EQ(FP.hitCount(), 10u); // Disarmed fast path does not count.
}

TEST_F(FaultInjectionTest, OnceFiresExactlyOnce) {
  Failpoint FP("test.once");
  FP.armOnce();
  EXPECT_TRUE(FP.shouldFail());
  for (int I = 0; I < 20; ++I)
    EXPECT_FALSE(FP.shouldFail());
  EXPECT_EQ(FP.firedCount(), 1u);
}

TEST_F(FaultInjectionTest, OnceSkipsRequestedHits) {
  Failpoint FP("test.once.skip");
  FP.armOnce(/*SkipHits=*/2);
  EXPECT_FALSE(FP.shouldFail());
  EXPECT_FALSE(FP.shouldFail());
  EXPECT_TRUE(FP.shouldFail());
  EXPECT_FALSE(FP.shouldFail());
  EXPECT_EQ(FP.firedCount(), 1u);
  // Re-arming resets the policy's progress.
  FP.armOnce(/*SkipHits=*/1);
  EXPECT_FALSE(FP.shouldFail());
  EXPECT_TRUE(FP.shouldFail());
  EXPECT_EQ(FP.firedCount(), 2u);
}

TEST_F(FaultInjectionTest, EveryNthFiresOnMultiples) {
  Failpoint FP("test.every");
  FP.armEveryNth(3);
  std::vector<bool> Outcomes;
  for (int I = 0; I < 9; ++I)
    Outcomes.push_back(FP.shouldFail());
  std::vector<bool> Expected = {false, false, true,  false, false,
                                true,  false, false, true};
  EXPECT_EQ(Outcomes, Expected);
  EXPECT_EQ(FP.firedCount(), 3u);
}

TEST_F(FaultInjectionTest, ProbabilityIsDeterministicPerSeed) {
  Failpoint FP("test.prob");
  FP.armProbabilityPercent(50, /*Seed=*/1234);
  std::vector<bool> First;
  for (int I = 0; I < 64; ++I)
    First.push_back(FP.shouldFail());

  FP.armProbabilityPercent(50, /*Seed=*/1234);
  std::vector<bool> Second;
  for (int I = 0; I < 64; ++I)
    Second.push_back(FP.shouldFail());

  EXPECT_EQ(First, Second);
  // With p = 0.5 over 64 draws, both outcomes must occur.
  EXPECT_NE(std::count(First.begin(), First.end(), true), 0);
  EXPECT_NE(std::count(First.begin(), First.end(), true), 64);

  // A different seed produces a different stream.
  FP.armProbabilityPercent(50, /*Seed=*/99);
  std::vector<bool> Third;
  for (int I = 0; I < 64; ++I)
    Third.push_back(FP.shouldFail());
  EXPECT_NE(First, Third);
}

TEST_F(FaultInjectionTest, ProbabilityExtremes) {
  Failpoint FP("test.prob.extreme");
  FP.armProbabilityPercent(100, 7);
  for (int I = 0; I < 16; ++I)
    EXPECT_TRUE(FP.shouldFail());
  FP.armProbabilityPercent(0, 7);
  for (int I = 0; I < 16; ++I)
    EXPECT_FALSE(FP.shouldFail());
}

TEST_F(FaultInjectionTest, RegistryFindsLiveSitesOnly) {
  EXPECT_EQ(findFailpoint("test.scoped"), nullptr);
  {
    Failpoint FP("test.scoped");
    EXPECT_EQ(findFailpoint("test.scoped"), &FP);
  }
  EXPECT_EQ(findFailpoint("test.scoped"), nullptr);
}

TEST_F(FaultInjectionTest, RuntimeSitesAreRegistered) {
  EXPECT_EQ(findFailpoint("heap.host_alloc"), &faults::HeapHostAlloc);
  EXPECT_EQ(findFailpoint("heap.block_acquire"), &faults::HeapBlockAcquire);
  EXPECT_EQ(findFailpoint("semispace.evacuate"), &faults::SemispaceEvacuate);
  EXPECT_EQ(findFailpoint("semispace.guard"), &faults::SemispaceGuard);
  EXPECT_EQ(findFailpoint("gen.promote"), &faults::GenPromote);
  EXPECT_EQ(findFailpoint("gen.promote.guard"), &faults::GenPromoteGuard);
  EXPECT_EQ(findFailpoint("gc.worker.start"), &faults::GcWorkerStart);
  EXPECT_EQ(findFailpoint("sink.write"), &faults::SinkWrite);
  EXPECT_EQ(findFailpoint("engine.shed"), &faults::EngineShed);
}

TEST_F(FaultInjectionTest, DisarmAllDisarmsEverything) {
  Failpoint A("test.a"), B("test.b");
  A.armAlways();
  B.armEveryNth(2);
  disarmAllFailpoints();
  EXPECT_FALSE(A.armed());
  EXPECT_FALSE(B.armed());
}

TEST_F(FaultInjectionTest, SpecArmsMultipleSites) {
  Failpoint A("test.spec.a"), B("test.spec.b"), C("test.spec.c");
  std::string Error;
  ASSERT_TRUE(armFailpointsFromSpec(
      "test.spec.a=always,test.spec.b=every:2,test.spec.c=once:1", &Error))
      << Error;
  EXPECT_TRUE(A.armed());
  EXPECT_TRUE(B.armed());
  EXPECT_TRUE(C.armed());
  EXPECT_TRUE(A.shouldFail());
  EXPECT_FALSE(B.shouldFail());
  EXPECT_TRUE(B.shouldFail());
  EXPECT_FALSE(C.shouldFail());
  EXPECT_TRUE(C.shouldFail());
}

TEST_F(FaultInjectionTest, SpecProbabilityWithSeedIsDeterministic) {
  Failpoint FP("test.spec.prob");
  ASSERT_TRUE(armFailpointsFromSpec("test.spec.prob=prob:50:42"));
  std::vector<bool> First;
  for (int I = 0; I < 32; ++I)
    First.push_back(FP.shouldFail());
  ASSERT_TRUE(armFailpointsFromSpec("test.spec.prob=prob:50:42"));
  std::vector<bool> Second;
  for (int I = 0; I < 32; ++I)
    Second.push_back(FP.shouldFail());
  EXPECT_EQ(First, Second);
}

TEST_F(FaultInjectionTest, SpecOffDisarms) {
  Failpoint FP("test.spec.off");
  FP.armAlways();
  ASSERT_TRUE(armFailpointsFromSpec("test.spec.off=off"));
  EXPECT_FALSE(FP.armed());
}

TEST_F(FaultInjectionTest, SpecRejectsUnknownSite) {
  std::string Error;
  EXPECT_FALSE(armFailpointsFromSpec("no.such.site=always", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST_F(FaultInjectionTest, SpecRejectsMalformedClauses) {
  Failpoint FP("test.spec.bad");
  std::string Error;
  EXPECT_FALSE(armFailpointsFromSpec("test.spec.bad", &Error));
  EXPECT_FALSE(armFailpointsFromSpec("test.spec.bad=", &Error));
  EXPECT_FALSE(armFailpointsFromSpec("test.spec.bad=nope", &Error));
  EXPECT_FALSE(armFailpointsFromSpec("test.spec.bad=every", &Error));
  EXPECT_FALSE(armFailpointsFromSpec("test.spec.bad=every:x", &Error));
  EXPECT_FALSE(armFailpointsFromSpec("test.spec.bad=prob", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST_F(FaultInjectionTest, SpecEarlierClausesSurviveLaterError) {
  Failpoint A("test.spec.first");
  EXPECT_FALSE(armFailpointsFromSpec("test.spec.first=always,bogus=always"));
  EXPECT_TRUE(A.armed());
}

TEST_F(FaultInjectionTest, UnknownSiteErrorListsRegisteredSites) {
  // A typo'd site name must not fail silently: the diagnostic enumerates
  // what *is* registered so the operator can fix the spec.
  std::string Error;
  EXPECT_FALSE(armFailpointsFromSpec("no.such.site=always", &Error));
  EXPECT_NE(Error.find("registered sites:"), std::string::npos) << Error;
  EXPECT_NE(Error.find("corrupt.header"), std::string::npos) << Error;
}

TEST_F(FaultInjectionTest, BadPolicyErrorListsValidPolicies) {
  Failpoint FP("test.spec.grammar");
  std::string Error;
  EXPECT_FALSE(armFailpointsFromSpec("test.spec.grammar=nope", &Error));
  EXPECT_NE(Error.find("valid policies:"), std::string::npos) << Error;
  EXPECT_NE(Error.find("prob:P"), std::string::npos) << Error;

  Error.clear();
  EXPECT_FALSE(armFailpointsFromSpec("test.spec.grammar=every:x", &Error));
  EXPECT_NE(Error.find("valid policies:"), std::string::npos) << Error;
}

TEST_F(FaultInjectionTest, MalformedEnvSpecIsFatal) {
  // A malformed GCASSERT_FAILPOINTS means the program would run with no
  // faults armed while the harness believes it is injecting — strict
  // parsing aborts instead.
  EXPECT_DEATH(
      {
        setenv("GCASSERT_FAILPOINTS", "definitely.not.a.site=always", 1);
        armFailpointsFromEnv();
      },
      "GCASSERT_FAILPOINTS");
}

TEST_F(FaultInjectionTest, WellFormedEnvSpecArms) {
  Failpoint FP("test.env.ok");
  setenv("GCASSERT_FAILPOINTS", "test.env.ok=once", 1);
  EXPECT_EQ(armFailpointsFromEnv(), 1u);
  unsetenv("GCASSERT_FAILPOINTS");
  EXPECT_TRUE(FP.armed());
  EXPECT_TRUE(FP.shouldFail());
  EXPECT_FALSE(FP.shouldFail());
}

} // namespace
