//===- JsonCheck.h - Minimal JSON syntax validator for tests ----*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Just enough of a recursive-descent JSON parser to assert that the
// telemetry exporters emit syntactically valid documents. Accepts exactly
// the RFC 8259 grammar the exporters use (no surrogate-pair validation).
//
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_TESTS_TELEMETRY_JSONCHECK_H
#define GCASSERT_TESTS_TELEMETRY_JSONCHECK_H

#include <cctype>
#include <cstring>
#include <string>

namespace gcassert {
namespace jsoncheck {

class Parser {
public:
  explicit Parser(const std::string &Text) : S(Text) {}

  /// True when the whole text is one valid JSON value.
  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t N = std::char_traits<char>::length(Lit);
    if (S.compare(Pos, N, Lit) != 0)
      return false;
    Pos += N;
    return true;
  }

  bool string() {
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
        char E = S[Pos];
        if (E == 'u') {
          for (int I = 0; I != 4; ++I) {
            ++Pos;
            if (Pos >= S.size() ||
                !std::isxdigit(static_cast<unsigned char>(S[Pos])))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      } else if (static_cast<unsigned char>(S[Pos]) < 0x20) {
        return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    if (Pos >= S.size() || !std::isdigit(static_cast<unsigned char>(S[Pos])))
      return false;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      if (Pos >= S.size() || !std::isdigit(static_cast<unsigned char>(S[Pos])))
        return false;
      while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
      if (Pos >= S.size() || !std::isdigit(static_cast<unsigned char>(S[Pos])))
        return false;
      while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    return Pos > Start;
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= S.size() || S[Pos] != '}')
      return false;
    ++Pos;
    return true;
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= S.size() || S[Pos] != ']')
      return false;
    ++Pos;
    return true;
  }

  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  const std::string &S;
  size_t Pos = 0;
};

inline bool isValidJson(const std::string &Text) {
  return Parser(Text).valid();
}

} // namespace jsoncheck
} // namespace gcassert

#endif // GCASSERT_TESTS_TELEMETRY_JSONCHECK_H
