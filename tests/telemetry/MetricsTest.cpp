//===- MetricsTest.cpp - telemetry/Metrics unit tests -------------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "JsonCheck.h"
#include "common/TestGraph.h"
#include "gcassert/support/OStream.h"
#include "gcassert/telemetry/Metrics.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::telemetry;
using namespace gcassert::testgraph;

namespace {

TEST(MetricsTest, CounterGaugeBasics) {
  MetricsRegistry Registry;
  Counter &C = Registry.counter("test.count");
  C.increment();
  C.add(9);
  EXPECT_EQ(C.value(), 10u);
  EXPECT_EQ(&Registry.counter("test.count"), &C);
  C.set(3);
  EXPECT_EQ(C.value(), 3u);

  Gauge &G = Registry.gauge("test.level");
  G.set(42);
  EXPECT_EQ(G.value(), 42u);
  G.setRatio(0.25);
  EXPECT_DOUBLE_EQ(G.ratio(), 0.25);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  MetricsRegistry Registry;
  Histogram &H = Registry.histogram("test.hist");
  H.record(0);    // bucket 0
  H.record(1);    // bucket 1
  H.record(2);    // bucket 2: [2, 4)
  H.record(3);    // bucket 2
  H.record(1024); // bucket 11: [1024, 2048)

  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1030u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1024u);
  EXPECT_DOUBLE_EQ(H.mean(), 206.0);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 2u);
  EXPECT_EQ(H.bucketCount(11), 1u);
  EXPECT_EQ(H.bucketCount(12), 0u);
}

TEST(MetricsTest, WriteJsonIsValidAndListsInstruments) {
  MetricsRegistry Registry;
  Registry.counter("a.count").add(7);
  Registry.gauge("b.level").set(11);
  Registry.histogram("c.hist").record(100);

  StringOStream Out;
  Registry.writeJson(Out);
  const std::string &Json = Out.str();
  EXPECT_TRUE(jsoncheck::isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"a.count\":7"), std::string::npos);
  EXPECT_NE(Json.find("\"b.level\":11"), std::string::npos);
  EXPECT_NE(Json.find("\"c.hist\""), std::string::npos);
}

TEST(MetricsTest, ResetDropsInstruments) {
  MetricsRegistry Registry;
  Registry.counter("gone.count").add(5);
  Registry.reset();
  EXPECT_EQ(Registry.counter("gone.count").value(), 0u);
}

struct SnapshotParam {
  CollectorKind Kind;
  unsigned Threads;
  const char *Name;
};

class MetricsSnapshotTest : public testing::TestWithParam<SnapshotParam> {};

/// The pull-based contract: after any collection, the global registry's
/// gc.* instruments equal the collector's own GcStats — they cannot drift
/// because snapshotCycle mirrors rather than double-counts.
TEST_P(MetricsSnapshotTest, CycleSnapshotMatchesGcStats) {
  MetricsRegistry::global().reset();

  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = GetParam().Kind;
  Config.Gc.Threads = GetParam().Threads;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();

  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T, 1)); // some live bytes
  (void)Kept;
  for (int Cycle = 0; Cycle != 3; ++Cycle) {
    for (int I = 0; I != 200; ++I)
      newNode(TheVm, T, I); // garbage
    TheVm.collectNow();
  }

  const GcStats &Stats = TheVm.gcStats();
  ASSERT_GE(Stats.Cycles, 3u);
  MetricsRegistry &M = MetricsRegistry::global();
  EXPECT_EQ(M.counter("gc.cycles").value(), Stats.Cycles);
  EXPECT_EQ(M.counter("gc.minor_cycles").value(), Stats.MinorCycles);
  EXPECT_EQ(M.counter("gc.total_ns").value(), Stats.TotalGcNanos);
  EXPECT_EQ(M.counter("gc.ownership_ns").value(), Stats.OwnershipNanos);
  EXPECT_EQ(M.counter("gc.mark_ns").value(), Stats.MarkNanos);
  EXPECT_EQ(M.counter("gc.sweep_ns").value(), Stats.SweepNanos);
  EXPECT_EQ(M.counter("gc.objects_visited").value(), Stats.ObjectsVisited);
  EXPECT_EQ(M.counter("gc.bytes_reclaimed").value(), Stats.BytesReclaimed);
  EXPECT_EQ(M.counter("gc.steals").value(), Stats.Steals);
  EXPECT_EQ(M.counter("gc.quarantined").value(), Stats.Quarantined);
  EXPECT_EQ(M.counter("gc.heap_defects").value(), Stats.HeapDefects);

  // One pause sample per cycle, split between the major and minor
  // histograms.
  EXPECT_EQ(M.histogram("gc.pause_ns").count() +
                M.histogram("gc.minor_pause_ns").count(),
            Stats.Cycles);
  EXPECT_EQ(M.histogram("gc.pause_ns").sum() +
                M.histogram("gc.minor_pause_ns").sum(),
            Stats.TotalGcNanos);

  EXPECT_EQ(M.gauge("gc.live_bytes").value(),
            TheVm.heap().liveBytesAfterLastGc());

  MetricsRegistry::global().reset();
}

INSTANTIATE_TEST_SUITE_P(
    AllCollectors, MetricsSnapshotTest,
    testing::Values(
        SnapshotParam{CollectorKind::MarkSweep, 1, "marksweep_t1"},
        SnapshotParam{CollectorKind::MarkSweep, 2, "marksweep_t2"},
        SnapshotParam{CollectorKind::MarkSweep, 4, "marksweep_t4"},
        SnapshotParam{CollectorKind::SemiSpace, 1, "semispace_t1"},
        SnapshotParam{CollectorKind::SemiSpace, 2, "semispace_t2"},
        SnapshotParam{CollectorKind::SemiSpace, 4, "semispace_t4"},
        SnapshotParam{CollectorKind::MarkCompact, 1, "markcompact_t1"},
        SnapshotParam{CollectorKind::MarkCompact, 2, "markcompact_t2"},
        SnapshotParam{CollectorKind::MarkCompact, 4, "markcompact_t4"},
        SnapshotParam{CollectorKind::Generational, 1, "generational_t1"},
        SnapshotParam{CollectorKind::Generational, 2, "generational_t2"},
        SnapshotParam{CollectorKind::Generational, 4, "generational_t4"}),
    [](const testing::TestParamInfo<SnapshotParam> &Info) {
      return Info.param.Name;
    });

} // namespace
