//===- TraceRingTest.cpp - telemetry/TraceEvents ring unit tests --------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/telemetry/TraceEvents.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace gcassert;
using namespace gcassert::telemetry;

namespace {

/// Arms tracing for the test body and restores the disarmed default (and
/// empty rings) on the way out, so tests cannot leak armed state into each
/// other.
struct ScopedTracing {
  ScopedTracing() {
    clearAllRings();
    setTracingEnabled(true);
  }
  ~ScopedTracing() {
    setTracingEnabled(false);
    clearAllRings();
  }
};

TEST(TraceRingTest, RecordsInOrder) {
  TraceRing Ring(7);
  for (uint64_t I = 0; I != 10; ++I)
    Ring.push(EventKind::MarkPhase, EventPhase::Instant, I, nullptr);

  ASSERT_EQ(Ring.size(), 10u);
  EXPECT_EQ(Ring.pushed(), 10u);
  EXPECT_EQ(Ring.dropped(), 0u);
  uint64_t LastNanos = 0;
  for (size_t I = 0; I != Ring.size(); ++I) {
    const TraceEvent &E = Ring.at(I);
    EXPECT_EQ(E.Arg, I);
    EXPECT_EQ(E.Tid, 7u);
    EXPECT_EQ(E.Kind, EventKind::MarkPhase);
    EXPECT_GE(E.Nanos, LastNanos);
    LastNanos = E.Nanos;
  }
}

TEST(TraceRingTest, WrapsOverwritingOldestAndCountsDrops) {
  TraceRing Ring(1);
  const uint64_t Extra = 100;
  for (uint64_t I = 0; I != RingCapacity + Extra; ++I)
    Ring.push(EventKind::GcCycle, EventPhase::Begin, I, nullptr);

  ASSERT_EQ(Ring.size(), RingCapacity);
  EXPECT_EQ(Ring.pushed(), RingCapacity + Extra);
  EXPECT_EQ(Ring.dropped(), Extra);
  // The oldest Extra events were overwritten: the survivors are exactly
  // [Extra, RingCapacity + Extra).
  EXPECT_EQ(Ring.at(0).Arg, Extra);
  EXPECT_EQ(Ring.at(Ring.size() - 1).Arg, RingCapacity + Extra - 1);
}

TEST(TraceRingTest, ClearResetsSizeAndDrops) {
  TraceRing Ring(2);
  for (uint64_t I = 0; I != RingCapacity + 5; ++I)
    Ring.push(EventKind::SweepPhase, EventPhase::End, I, nullptr);
  Ring.clear();
  EXPECT_EQ(Ring.size(), 0u);
  EXPECT_EQ(Ring.dropped(), 0u);
  EXPECT_EQ(Ring.pushed(), 0u);
}

TEST(TraceRingTest, DisarmedEmissionIsDiscarded) {
  clearAllRings();
  setTracingEnabled(false);
  instant(EventKind::Violation, 1);
  begin(EventKind::MarkPhase);
  end(EventKind::MarkPhase);
  { Span S(EventKind::GcCycle, 9); }
  EXPECT_EQ(totalEvents(), 0u);
}

TEST(TraceRingTest, SpanEmitsPairedBeginEndWithEndArg) {
  ScopedTracing Tracing;
  {
    Span S(EventKind::SweepPhase, 3);
    S.setEndArg(4096);
  }
  ASSERT_EQ(totalEvents(), 2u);
}

/// The TSan target: many threads emitting concurrently, each lazily
/// registering its own ring; the registry's intrusive list and the armed
/// flag are the only shared state.
TEST(TraceRingTest, ConcurrentWritersUsePrivateRings) {
  ScopedTracing Tracing;
  const unsigned Writers = 4;
  const uint64_t PerWriter = 2000;
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W != Writers; ++W)
    Threads.emplace_back([W] {
      for (uint64_t I = 0; I != PerWriter; ++I) {
        begin(EventKind::MarkWorker, W);
        end(EventKind::MarkWorker, I);
      }
    });
  for (uint64_t I = 0; I != PerWriter; ++I)
    instant(EventKind::AssertionPass, I);
  for (std::thread &T : Threads)
    T.join();

  // 2 events per loop turn per writer thread, 1 per turn on this thread;
  // every ring is large enough that nothing wrapped.
  EXPECT_EQ(totalEvents(), (2 * Writers + 1) * PerWriter);
  EXPECT_EQ(totalDropped(), 0u);
}

} // namespace
