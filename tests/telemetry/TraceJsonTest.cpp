//===- TraceJsonTest.cpp - Chrome trace_event exporter unit tests -------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "JsonCheck.h"
#include "gcassert/support/OStream.h"
#include "gcassert/telemetry/TraceEvents.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace gcassert;
using namespace gcassert::telemetry;

namespace {

struct ScopedTracing {
  ScopedTracing() {
    clearAllRings();
    setTracingEnabled(true);
  }
  ~ScopedTracing() {
    setTracingEnabled(false);
    clearAllRings();
  }
};

/// Emits a representative event mix on the current thread.
void emitSampleCycle() {
  Span Cycle(EventKind::GcCycle, 1);
  {
    Span Ownership(EventKind::OwnershipPhase);
  }
  {
    Span Mark(EventKind::MarkPhase);
    Mark.setEndArg(123);
  }
  instant(EventKind::Violation, 2);
  {
    Span Sweep(EventKind::SweepPhase);
    Sweep.setEndArg(4096);
  }
}

std::string exportTrace() {
  StringOStream Out;
  writeChromeTrace(Out);
  return Out.str();
}

/// Every "ts":N.NNN value, in document order.
std::vector<double> timestamps(const std::string &Json) {
  std::vector<double> Out;
  const std::string Key = "\"ts\":";
  for (size_t Pos = Json.find(Key); Pos != std::string::npos;
       Pos = Json.find(Key, Pos + 1))
    Out.push_back(std::strtod(Json.c_str() + Pos + Key.size(), nullptr));
  return Out;
}

/// Per-name counts of one phase letter, keyed on the "name" preceding it.
/// (Out-param so gtest's void-returning ASSERT macros work inside.)
void phaseCounts(const std::string &Json, char Phase,
                 std::map<std::string, int> &Out) {
  const std::string NameKey = "\"name\":\"";
  std::string PhaseKey = std::string("\"ph\":\"") + Phase + "\"";
  for (size_t Pos = Json.find(NameKey); Pos != std::string::npos;
       Pos = Json.find(NameKey, Pos + 1)) {
    size_t NameStart = Pos + NameKey.size();
    size_t NameEnd = Json.find('"', NameStart);
    size_t EventEnd = Json.find('}', NameStart);
    ASSERT_NE(NameEnd, std::string::npos);
    // The phase field sits inside the same event object as the name; args
    // objects close before the event does, so scanning to the first '}' is
    // enough with the exporter's fixed field order.
    if (Json.find(PhaseKey, NameStart) < EventEnd)
      ++Out[Json.substr(NameStart, NameEnd - NameStart)];
  }
}

TEST(TraceJsonTest, ExportIsValidJson) {
  ScopedTracing Tracing;
  emitSampleCycle();
  std::string Json = exportTrace();
  EXPECT_TRUE(jsoncheck::isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"droppedEvents\":0"), std::string::npos);
}

TEST(TraceJsonTest, TimestampsAreMonotonic) {
  ScopedTracing Tracing;
  for (int I = 0; I != 5; ++I)
    emitSampleCycle();
  std::string Json = exportTrace();
  std::vector<double> Ts = timestamps(Json);
  ASSERT_EQ(Ts.size(), 5u * 9u); // 4 B/E pairs + 1 instant per cycle
  for (size_t I = 1; I != Ts.size(); ++I)
    EXPECT_GE(Ts[I], Ts[I - 1]) << "event " << I;
}

TEST(TraceJsonTest, BeginEndPairsBalance) {
  ScopedTracing Tracing;
  for (int I = 0; I != 3; ++I)
    emitSampleCycle();
  std::string Json = exportTrace();

  std::map<std::string, int> Begins, Ends, Instants;
  phaseCounts(Json, 'B', Begins);
  phaseCounts(Json, 'E', Ends);
  phaseCounts(Json, 'i', Instants);
  EXPECT_EQ(Begins, Ends);
  EXPECT_EQ(Begins.at("gc_cycle"), 3);
  EXPECT_EQ(Begins.at("mark"), 3);
  EXPECT_EQ(Begins.at("sweep"), 3);
  EXPECT_EQ(Begins.at("ownership"), 3);
  EXPECT_EQ(Instants.at("violation"), 3);
  EXPECT_EQ(Instants.count("gc_cycle"), 0u);
}

TEST(TraceJsonTest, InstantEventsCarryScopeAndNameOverride) {
  ScopedTracing Tracing;
  static const char SiteName[] = "heap.block\"acquire";
  instant(EventKind::FailpointTrip, 0, SiteName);
  std::string Json = exportTrace();
  EXPECT_TRUE(jsoncheck::isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"s\":\"t\""), std::string::npos);
  // The quote in the site name must arrive escaped.
  EXPECT_NE(Json.find("heap.block\\\"acquire"), std::string::npos);
}

TEST(TraceJsonTest, ReportsDropsAfterWraparound) {
  ScopedTracing Tracing;
  for (uint64_t I = 0; I != RingCapacity + 7; ++I)
    instant(EventKind::AssertionPass, I);
  std::string Json = exportTrace();
  EXPECT_TRUE(jsoncheck::isValidJson(Json)) << "trace of size " << Json.size();
  EXPECT_NE(Json.find("\"droppedEvents\":7"), std::string::npos);
}

TEST(TraceJsonTest, WriteFileRoundTripsAndReportsErrors) {
  ScopedTracing Tracing;
  emitSampleCycle();

  std::string Path =
      testing::TempDir() + "/gcassert_trace_json_test_trace.json";
  std::string Error;
  ASSERT_TRUE(writeChromeTraceFile(Path, &Error)) << Error;
  std::FILE *Handle = std::fopen(Path.c_str(), "r");
  ASSERT_NE(Handle, nullptr);
  std::string Contents;
  char Buffer[4096];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), Handle)) > 0)
    Contents.append(Buffer, N);
  std::fclose(Handle);
  std::remove(Path.c_str());
  EXPECT_TRUE(jsoncheck::isValidJson(Contents));

  EXPECT_FALSE(writeChromeTraceFile("/nonexistent-dir/t.json", &Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
