//===- LatencyHistogramTest.cpp - Latency recorder unit tests -----------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The serving suite's percentile numbers are only as trustworthy as the
// recorder behind them, so these tests pin the histogram's exact-percentile
// behavior on small values, the log-linear bucket boundaries, the
// conservative (never-under-reporting) tail rounding, and per-thread merge.
//
//===----------------------------------------------------------------------===//

#include "gcassert/serving/LatencyHistogram.h"

#include "gtest/gtest.h"

using namespace gcassert;
using namespace gcassert::serving;

namespace {

TEST(LatencyHistogram, EmptyReportsZeros) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.mean(), 0.0);
  EXPECT_EQ(H.valueAtPercentile(50), 0u);
  EXPECT_EQ(H.valueAtPercentile(99.9), 0u);
}

TEST(LatencyHistogram, ExactPercentilesBelowLinearMax) {
  // Values below 64 ns land in exact unit buckets, so percentiles over
  // them must be exact order statistics (upper-bound convention: the
  // ceil(P/100*N)-th smallest sample).
  LatencyHistogram H;
  for (uint64_t V = 1; V <= 50; ++V)
    H.record(V);
  EXPECT_EQ(H.count(), 50u);
  EXPECT_EQ(H.min(), 1u);
  EXPECT_EQ(H.max(), 50u);
  EXPECT_EQ(H.valueAtPercentile(2), 1u);   // rank 1
  EXPECT_EQ(H.valueAtPercentile(50), 25u); // rank 25
  EXPECT_EQ(H.valueAtPercentile(90), 45u); // rank 45
  EXPECT_EQ(H.valueAtPercentile(99), 50u); // rank ceil(49.5) = 50
  EXPECT_EQ(H.valueAtPercentile(100), 50u);
}

TEST(LatencyHistogram, DecimalPercentileRankIsExact) {
  // 99.9 * 1000 / 100 computes to 999.0000000000001 in doubles; the rank
  // computation must treat that as exactly 999, not round up to 1000.
  LatencyHistogram H;
  for (int I = 0; I != 999; ++I)
    H.record(10);
  H.record(50);
  EXPECT_EQ(H.valueAtPercentile(99.9), 10u); // rank 999: the last 10
  EXPECT_EQ(H.valueAtPercentile(100), 50u);
  EXPECT_EQ(H.max(), 50u);
}

TEST(LatencyHistogram, BucketBoundaries) {
  // Unit buckets end at 63; the first octave [64, 128) has 32 sub-buckets
  // of width 2.
  EXPECT_EQ(LatencyHistogram::bucketFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucketFor(63), 63u);
  EXPECT_EQ(LatencyHistogram::bucketFor(64), 64u);
  EXPECT_EQ(LatencyHistogram::bucketFor(65), 64u); // shares 64's bucket
  EXPECT_EQ(LatencyHistogram::bucketFor(66), 65u);
  EXPECT_EQ(LatencyHistogram::bucketUpperBound(63), 63u);
  EXPECT_EQ(LatencyHistogram::bucketUpperBound(64), 65u);

  // Every power of two starts a fresh octave: 2^k and 2^k - 1 never share
  // a bucket, and the upper bound of 2^k - 1's bucket is exactly 2^k - 1.
  for (unsigned K = 7; K != 63; ++K) {
    uint64_t P = uint64_t(1) << K;
    size_t Below = LatencyHistogram::bucketFor(P - 1);
    size_t At = LatencyHistogram::bucketFor(P);
    EXPECT_LT(Below, At) << "k=" << K;
    EXPECT_EQ(LatencyHistogram::bucketUpperBound(Below), P - 1) << "k=" << K;
  }
}

TEST(LatencyHistogram, BucketErrorBoundedByOneThirtySecond) {
  // The bucket upper bound never under-reports a value and never
  // over-reports by more than one sub-bucket width (1/32 relative).
  for (uint64_t V : {64u, 100u, 1000u, 4095u, 4096u, 123456u, 999999937u}) {
    uint64_t Upper =
        LatencyHistogram::bucketUpperBound(LatencyHistogram::bucketFor(V));
    EXPECT_GE(Upper, V);
    EXPECT_LE(static_cast<double>(Upper - V), static_cast<double>(V) / 32.0 + 1)
        << "value " << V;
  }
}

TEST(LatencyHistogram, PercentileClampedToTrackedMinMax) {
  // A single large sample: every percentile must report exactly it (the
  // bucket upper bound is clamped to the exact max).
  LatencyHistogram H;
  H.record(1000003);
  EXPECT_EQ(H.valueAtPercentile(50), 1000003u);
  EXPECT_EQ(H.valueAtPercentile(99.9), 1000003u);
  EXPECT_EQ(H.min(), 1000003u);
  EXPECT_EQ(H.max(), 1000003u);
}

TEST(LatencyHistogram, MergeMatchesSingleRecorder) {
  // Recording a sample set split across two histograms and merging must
  // be indistinguishable from one histogram that saw everything.
  LatencyHistogram A, B, All;
  for (uint64_t V = 0; V != 2000; ++V) {
    uint64_t Sample = (V * 37) % 100000;
    (V % 2 ? A : B).record(Sample);
    All.record(Sample);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_EQ(A.sum(), All.sum());
  EXPECT_EQ(A.min(), All.min());
  EXPECT_EQ(A.max(), All.max());
  for (double P : {50.0, 95.0, 99.0, 99.9, 100.0})
    EXPECT_EQ(A.valueAtPercentile(P), All.valueAtPercentile(P)) << "p" << P;
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram A, Empty;
  A.record(7);
  A.record(9000);
  LatencyHistogram Copy = A;
  A.merge(Empty);
  EXPECT_EQ(A.count(), Copy.count());
  EXPECT_EQ(A.min(), Copy.min());
  EXPECT_EQ(A.max(), Copy.max());

  Empty.merge(A);
  EXPECT_EQ(Empty.count(), A.count());
  EXPECT_EQ(Empty.min(), A.min());
  EXPECT_EQ(Empty.max(), A.max());
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram H;
  H.record(42);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.valueAtPercentile(99), 0u);
}

} // namespace
