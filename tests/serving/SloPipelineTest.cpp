//===- SloPipelineTest.cpp - BENCH_latency_slo.json pipeline test --------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// End-to-end over the latency-SLO reporting pipeline: run a small serving
// configuration, emit a BENCH_latency_slo.json through the same SloReport.h
// helpers the bench binary uses, check the document parses (JsonCheck.h),
// and drive tools/bench_compare over it — a clean baseline/current pair
// must pass, and an injected floor or ceiling violation must exit 1.
//
// bench_compare needs a python3; when the host has none the compare cases
// skip (the JSON-shape assertions still run everywhere).
//
//===----------------------------------------------------------------------===//

#include "common/SloReport.h"
#include "gcassert/serving/ServingHarness.h"
#include "telemetry/JsonCheck.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

using namespace gcassert;
using namespace gcassert::bench;
using namespace gcassert::serving;

namespace {

#ifndef GCASSERT_BENCH_COMPARE
#error "GCASSERT_BENCH_COMPARE must point at tools/bench_compare"
#endif

bool havePython3() {
  int Rc = std::system("python3 -c pass > /dev/null 2>&1");
  return Rc != -1 && WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0;
}

/// Runs "python3 tools/bench_compare [--soft] BASELINE CURRENT"; returns
/// the exit code (or -1 when the shell itself failed).
int runBenchCompare(const std::string &Baseline, const std::string &Current,
                    bool Soft = false) {
  std::string Cmd = std::string("python3 '") + GCASSERT_BENCH_COMPARE + "' " +
                    (Soft ? "--soft " : "") + "'" + Baseline + "' '" +
                    Current + "' > /dev/null 2>&1";
  int Rc = std::system(Cmd.c_str());
  if (Rc == -1 || !WIFEXITED(Rc))
    return -1;
  return WEXITSTATUS(Rc);
}

std::string makeTempDir() {
  char Template[] = "/tmp/gcassert-slo-XXXXXX";
  const char *Dir = mkdtemp(Template);
  EXPECT_NE(Dir, nullptr);
  return Dir ? Dir : "";
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Emits one BENCH_latency_slo.json built from \p Samples into \p Dir via
/// the env-var redirection the bench binaries use. \p Decorate may add
/// floors/ceilings before the write.
void emitReport(const std::string &Dir, const SloTrialSamples &Samples,
                void (*Decorate)(JsonReport &)) {
  JsonReport Report("latency_slo");
  Report.setConfig("trials", static_cast<int64_t>(2));
  Report.setConfig("loop", "closed");
  Report.setTopology(/*GcThreads=*/1, /*MutatorThreads=*/1);
  addSloSeries(Report, "kv.t1", Samples);
  if (Decorate)
    Decorate(Report);

  const char *Old = std::getenv("GCASSERT_BENCH_JSON_DIR");
  std::string Saved = Old ? Old : "";
  setenv("GCASSERT_BENCH_JSON_DIR", Dir.c_str(), 1);
  EXPECT_TRUE(Report.write());
  if (Old)
    setenv("GCASSERT_BENCH_JSON_DIR", Saved.c_str(), 1);
  else
    unsetenv("GCASSERT_BENCH_JSON_DIR");
}

/// One small closed-loop KV run per trial — the real harness, so the
/// emitted numbers are genuine percentiles, not fabricated ones.
SloTrialSamples collectSamples() {
  SloTrialSamples Samples;
  for (int Trial = 0; Trial != 2; ++Trial) {
    ServingOptions Options;
    Options.Workload = ServingWorkload::Kv;
    Options.Threads = 1;
    Options.Loop = LoopMode::Closed;
    Options.Requests = 300;
    Options.Seed = 0x510 + static_cast<uint64_t>(Trial);
    Samples.add(runServing(Options));
  }
  return Samples;
}

TEST(SloPipeline, EmittedReportIsValidSchemaV1Json) {
  SloTrialSamples Samples = collectSamples();
  std::string Dir = makeTempDir();
  ASSERT_FALSE(Dir.empty());
  emitReport(Dir, Samples, nullptr);

  std::string Text = readFile(Dir + "/BENCH_latency_slo.json");
  EXPECT_TRUE(jsoncheck::isValidJson(Text)) << Text;
  EXPECT_NE(Text.find("\"schema_version\": 1"), std::string::npos);
  // Every percentile series plus the correlation scalars must be present.
  for (const char *Metric :
       {"kv.t1.p50_ms", "kv.t1.p95_ms", "kv.t1.p99_ms", "kv.t1.p999_ms",
        "kv.t1.max_ms", "kv.t1.requests", "kv.t1.requests_overlapping_pause",
        "kv.t1.gc_cycles", "kv.t1.violations"})
    EXPECT_NE(Text.find(std::string("\"") + Metric + "\""), std::string::npos)
        << Metric;
}

TEST(SloPipeline, BenchCompareAcceptsCleanPair) {
  if (!havePython3())
    GTEST_SKIP() << "no python3 on this host";
  SloTrialSamples Samples = collectSamples();
  std::string Baseline = makeTempDir();
  std::string Current = makeTempDir();
  ASSERT_FALSE(Baseline.empty());
  ASSERT_FALSE(Current.empty());
  // Identical reports with attainable bounds on both sides: no regression,
  // no floor/ceiling violation.
  auto Attainable = +[](JsonReport &Report) {
    addSloCeilings(Report, "kv.t1", /*P99MaxMs=*/1e9, /*P999MaxMs=*/1e9);
  };
  emitReport(Baseline, Samples, Attainable);
  emitReport(Current, Samples, Attainable);
  EXPECT_EQ(runBenchCompare(Baseline, Current), 0);
}

TEST(SloPipeline, BenchCompareFailsInjectedFloorViolation) {
  if (!havePython3())
    GTEST_SKIP() << "no python3 on this host";
  SloTrialSamples Samples = collectSamples();
  std::string Baseline = makeTempDir();
  std::string Current = makeTempDir();
  ASSERT_FALSE(Baseline.empty());
  ASSERT_FALSE(Current.empty());
  emitReport(Baseline, Samples, nullptr);
  // A p99 floor of 1e9 ms is unattainable by construction: floors bind on
  // the CURRENT run, so only the current copy carries it.
  emitReport(Current, Samples, +[](JsonReport &Report) {
    Report.addFloor("kv.t1.p99_ms", 1e9);
  });
  EXPECT_EQ(runBenchCompare(Baseline, Current), 1);
}

TEST(SloPipeline, BenchCompareFailsInjectedCeilingViolation) {
  if (!havePython3())
    GTEST_SKIP() << "no python3 on this host";
  SloTrialSamples Samples = collectSamples();
  // Closed-loop service time is always strictly positive, so max_ms
  // cannot squeeze under a 1e-9 ms ceiling.
  ASSERT_GT(Samples.MaxMs.mean(), 0.0);
  std::string Baseline = makeTempDir();
  std::string Current = makeTempDir();
  ASSERT_FALSE(Baseline.empty());
  ASSERT_FALSE(Current.empty());
  emitReport(Baseline, Samples, nullptr);
  emitReport(Current, Samples, +[](JsonReport &Report) {
    Report.addCeiling("kv.t1.max_ms", 1e-9);
  });
  EXPECT_EQ(runBenchCompare(Baseline, Current), 1);
}

TEST(SloPipeline, BenchCompareAcceptsCommittedBaseline) {
  if (!havePython3())
    GTEST_SKIP() << "no python3 on this host";
  // The committed bench_results/baseline snapshot must accept a freshly
  // emitted report under the CI invocation (--soft: shared-runner tails
  // drift, and the baseline's floors/ceilings — the only hard gates —
  // were emitted on a host that could meet them).
  std::string Committed =
      std::string(GCASSERT_COMMITTED_BASELINE) + "/BENCH_latency_slo.json";
  std::ifstream In(Committed);
  if (!In.good())
    GTEST_SKIP() << "no committed baseline at " << Committed;

  std::string Baseline = makeTempDir();
  std::string Current = makeTempDir();
  ASSERT_FALSE(Baseline.empty());
  ASSERT_FALSE(Current.empty());
  {
    std::ofstream Out(Baseline + "/BENCH_latency_slo.json");
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Out << Buf.str();
  }
  SloTrialSamples Samples = collectSamples();
  emitReport(Current, Samples, nullptr);
  EXPECT_EQ(runBenchCompare(Baseline, Current, /*Soft=*/true), 0);
}

TEST(SloPipeline, BenchCompareFailsCeilingOnMissingMetric) {
  if (!havePython3())
    GTEST_SKIP() << "no python3 on this host";
  SloTrialSamples Samples = collectSamples();
  std::string Baseline = makeTempDir();
  std::string Current = makeTempDir();
  ASSERT_FALSE(Baseline.empty());
  ASSERT_FALSE(Current.empty());
  emitReport(Baseline, Samples, nullptr);
  // A ceiling over a metric the report does not emit must fail too: a
  // renamed series would otherwise silently void the SLO.
  emitReport(Current, Samples, +[](JsonReport &Report) {
    Report.addCeiling("kv.t1.no_such_metric_ms", 100.0);
  });
  EXPECT_EQ(runBenchCompare(Baseline, Current), 1);
}

} // namespace
