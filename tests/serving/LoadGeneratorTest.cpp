//===- LoadGeneratorTest.cpp - Open-loop arrival schedule tests ----------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The open-loop schedule is the part of the serving harness that must be
// bit-reproducible: the determinism tests over the KV/OLTP workloads pin
// final state across collectors, and that only holds if (seed, rate,
// count) always produces the same arrival times. These tests pin that,
// plus the statistical contract (exponential gaps at the offered rate).
//
//===----------------------------------------------------------------------===//

#include "gcassert/serving/LoadGenerator.h"

#include "gtest/gtest.h"

#include <cstring>

using namespace gcassert;
using namespace gcassert::serving;

namespace {

TEST(ArrivalSchedule, PinnedSeedReproduces) {
  ArrivalSchedule A(42, 1000.0, 500);
  ArrivalSchedule B(42, 1000.0, 500);
  ASSERT_EQ(A.count(), 500u);
  ASSERT_EQ(B.count(), 500u);
  for (uint64_t I = 0; I != 500; ++I)
    ASSERT_EQ(A.offsetNanos(I), B.offsetNanos(I)) << "offset " << I;
}

TEST(ArrivalSchedule, DifferentSeedsDiverge) {
  ArrivalSchedule A(1, 1000.0, 64);
  ArrivalSchedule B(2, 1000.0, 64);
  bool AnyDiffer = false;
  for (uint64_t I = 0; I != 64 && !AnyDiffer; ++I)
    AnyDiffer = A.offsetNanos(I) != B.offsetNanos(I);
  EXPECT_TRUE(AnyDiffer);
}

TEST(ArrivalSchedule, OffsetsNonDecreasing) {
  ArrivalSchedule S(7, 50000.0, 2000);
  for (uint64_t I = 1; I != S.count(); ++I)
    ASSERT_GE(S.offsetNanos(I), S.offsetNanos(I - 1)) << "offset " << I;
}

TEST(ArrivalSchedule, OfferedRateConvergesToRequested) {
  // With 20k exponential gaps the realized rate is within a few percent
  // of the requested one (stderr of the mean gap is rate/sqrt(n) ~ 0.7%);
  // 10% leaves ample slack while still catching a units bug (ms vs ns,
  // off-by-1000) outright.
  for (double Rate : {500.0, 2000.0, 100000.0}) {
    ArrivalSchedule S(0x5eed, Rate, 20000);
    double Realized = S.offeredRatePerSec();
    EXPECT_GT(Realized, Rate * 0.9) << "rate " << Rate;
    EXPECT_LT(Realized, Rate * 1.1) << "rate " << Rate;
  }
}

TEST(ArrivalSchedule, AccountingMatchesOffsets) {
  // offeredRatePerSec is defined as count / last offset.
  ArrivalSchedule S(9, 1000.0, 1000);
  uint64_t Last = S.offsetNanos(S.count() - 1);
  ASSERT_GT(Last, 0u);
  double Expected =
      static_cast<double>(S.count()) * 1e9 / static_cast<double>(Last);
  EXPECT_NEAR(S.offeredRatePerSec(), Expected, Expected * 1e-9);
}

TEST(ExponentialGap, MeanMatchesRate) {
  // The mean of n exponential draws at rate R concentrates around 1/R
  // seconds. Pinned stream, so no flake tolerance games.
  SplitMix64 Rng(123);
  constexpr int N = 50000;
  double Rate = 10000.0;
  double SumNanos = 0;
  for (int I = 0; I != N; ++I)
    SumNanos += static_cast<double>(exponentialGapNanos(Rng, Rate));
  double MeanNanos = SumNanos / N;
  double ExpectedNanos = 1e9 / Rate;
  EXPECT_GT(MeanNanos, ExpectedNanos * 0.95);
  EXPECT_LT(MeanNanos, ExpectedNanos * 1.05);
}

TEST(LoopMode, Names) {
  EXPECT_STREQ(loopModeName(LoopMode::Open), "open");
  EXPECT_STREQ(loopModeName(LoopMode::Closed), "closed");
}

} // namespace
