//===- SemiSpaceHeapTest.cpp - heap/SemiSpaceHeap unit tests ------------------===//

#include "gcassert/heap/SemiSpaceHeap.h"

#include <gtest/gtest.h>

using namespace gcassert;

namespace {

class SemiSpaceHeapTest : public ::testing::Test {
protected:
  SemiSpaceHeapTest() : Heap(Types, makeConfig()) {
    TypeBuilder B(Types, "LNode;");
    RefOffset = B.addRef("next");
    ValueOffset = B.addScalar("value", 8);
    Node = B.build();
    Array = Types.registerRefArray("[LNode;");
  }

  static SemiSpaceHeapConfig makeConfig() {
    SemiSpaceHeapConfig Config;
    Config.CapacityBytes = 1u << 20;
    return Config;
  }

  TypeRegistry Types;
  SemiSpaceHeap Heap;
  TypeId Node = InvalidTypeId;
  TypeId Array = InvalidTypeId;
  uint32_t RefOffset = 0;
  uint32_t ValueOffset = 0;
};

TEST_F(SemiSpaceHeapTest, BumpAllocationIsContiguous) {
  ObjRef A = Heap.allocate(Node, 0);
  ObjRef B = Heap.allocate(Node, 0);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(reinterpret_cast<uint8_t *>(B),
            reinterpret_cast<uint8_t *>(A) + Heap.objectSize(A));
}

TEST_F(SemiSpaceHeapTest, ExhaustionReturnsNull) {
  ObjRef Obj;
  int Count = 0;
  do {
    Obj = Heap.allocate(Node, 0);
    ++Count;
  } while (Obj && Count < 1000000);
  EXPECT_EQ(Obj, nullptr);
  // Half of 1 MiB at 32 bytes per node.
  EXPECT_GT(Count, 10000);
}

TEST_F(SemiSpaceHeapTest, CopyPreservesContents) {
  ObjRef A = Heap.allocate(Node, 0);
  ObjRef B = Heap.allocate(Node, 0);
  A->setRef(RefOffset, B);
  A->setScalar<int64_t>(ValueOffset, 1234);

  Heap.beginCollection();
  ObjRef NewA = Heap.copyObject(A);
  Heap.finishCollection();

  EXPECT_NE(NewA, A);
  EXPECT_EQ(NewA->typeId(), Node);
  EXPECT_EQ(NewA->getScalar<int64_t>(ValueOffset), 1234);
  // The field still holds the old (from-space) reference; updating slots is
  // the collector's job, not the heap's.
  EXPECT_EQ(NewA->getRef(RefOffset), B);
}

TEST_F(SemiSpaceHeapTest, ForwardingPointerInstalled) {
  ObjRef A = Heap.allocate(Node, 0);
  Heap.beginCollection();
  ObjRef NewA = Heap.copyObject(A);
  EXPECT_TRUE(A->isForwarded());
  EXPECT_EQ(A->forwardingAddress(), NewA);
  EXPECT_FALSE(NewA->isForwarded());
  Heap.finishCollection();
}

TEST_F(SemiSpaceHeapTest, CollectionFreesSpace) {
  for (int I = 0; I < 1000; ++I)
    ASSERT_NE(Heap.allocate(Node, 0), nullptr);

  Heap.beginCollection();
  Heap.finishCollection(); // Copy nothing: everything dies.
  EXPECT_EQ(Heap.stats().BytesInUse, 0u);
  EXPECT_EQ(Heap.liveBytesAfterLastCollection(), 0u);

  EXPECT_NE(Heap.allocate(Node, 0), nullptr);
}

TEST_F(SemiSpaceHeapTest, ArrayCopy) {
  ObjRef Arr = Heap.allocate(Array, 8);
  ObjRef Elem = Heap.allocate(Node, 0);
  Arr->setElement(3, Elem);

  Heap.beginCollection();
  ObjRef NewArr = Heap.copyObject(Arr);
  Heap.finishCollection();

  EXPECT_EQ(NewArr->arrayLength(), 8u);
  EXPECT_EQ(NewArr->getElement(3), Elem);
}

TEST_F(SemiSpaceHeapTest, ForEachObjectWalksSurvivors) {
  Heap.allocate(Node, 0);
  ObjRef B = Heap.allocate(Node, 0);
  B->setScalar<int64_t>(ValueOffset, 7);

  Heap.beginCollection();
  Heap.copyObject(B);
  Heap.finishCollection();

  int Count = 0;
  int64_t Value = 0;
  Heap.forEachObject([&](ObjRef Obj) {
    ++Count;
    Value = Obj->getScalar<int64_t>(ValueOffset);
  });
  EXPECT_EQ(Count, 1);
  EXPECT_EQ(Value, 7);
}

TEST_F(SemiSpaceHeapTest, ObjectSizeMatchesAllocationSize) {
  ObjRef Obj = Heap.allocate(Node, 0);
  EXPECT_EQ(Heap.objectSize(Obj), Types.allocationSize(Node, 0));
  ObjRef Arr = Heap.allocate(Array, 5);
  EXPECT_EQ(Heap.objectSize(Arr), Types.allocationSize(Array, 5));
}

TEST_F(SemiSpaceHeapTest, ContainsBothSpaces) {
  ObjRef A = Heap.allocate(Node, 0);
  EXPECT_TRUE(Heap.contains(A));
  Heap.beginCollection();
  ObjRef NewA = Heap.copyObject(A);
  Heap.finishCollection();
  EXPECT_TRUE(Heap.contains(NewA));
  EXPECT_TRUE(Heap.contains(A)) << "from-space is still heap storage";
  int Stack = 0;
  EXPECT_FALSE(Heap.contains(&Stack));
}

} // namespace
