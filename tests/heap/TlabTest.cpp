//===- TlabTest.cpp - Thread-local allocation buffer tests ---------------------===//
//
// Part of the gcassert project, under the MIT License.
//
// The TLAB fast path against its contract (DESIGN.md §13): objects come out
// zeroed and distinct, retire leaves a heap the sweep can parse, the shared
// counters are exact whenever the world is stopped, the adaptive sizing
// reacts to refills, and the "tlab.refill" failpoint degrades to the shared
// path / the collection cascade instead of failing the allocation.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"

#include "gcassert/heap/HeapVerifier.h"
#include "gcassert/heap/SizeClasses.h"
#include "gcassert/support/FaultInjection.h"

#include <gtest/gtest.h>
#include <set>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig tlabVm(bool Tlab = true) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::MarkSweep;
  Config.Tlab = Tlab;
  return Config;
}

TEST(TlabTest, ActiveOnlyWhereItIsSound) {
  // Mark-sweep without hardening gets a TlabSet; the copying collectors and
  // the hardened modes (whose per-pop validation a batched refill would
  // bypass) stay on the shared path.
  Vm On(tlabVm());
  EXPECT_NE(On.mainThread().tlabs(), nullptr);

  Vm Off(tlabVm(/*Tlab=*/false));
  EXPECT_EQ(Off.mainThread().tlabs(), nullptr);

  VmConfig Hardened = tlabVm();
  Hardened.Gc.Hardening = HardeningMode::Check;
  Vm HardenedVm(Hardened);
  EXPECT_EQ(HardenedVm.mainThread().tlabs(), nullptr);

  VmConfig Copying = tlabVm();
  Copying.Collector = CollectorKind::SemiSpace;
  Vm CopyingVm(Copying);
  EXPECT_EQ(CopyingVm.mainThread().tlabs(), nullptr);
}

TEST(TlabTest, ObjectsAreZeroedAndDistinct) {
  Vm TheVm(tlabVm());
  MutatorThread &T = TheVm.mainThread();
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  std::set<ObjRef> Seen;
  for (int I = 0; I != 2000; ++I) {
    ObjRef Node = TheVm.allocate(T, G.Node);
    ASSERT_NE(Node, nullptr);
    EXPECT_TRUE(Seen.insert(Node).second) << "allocator handed a cell twice";
    EXPECT_EQ(Node->getRef(G.FieldA), nullptr) << "payload not zeroed";
    EXPECT_EQ(Node->getScalar<int64_t>(G.FieldValue), 0);
    Node->setScalar<int64_t>(G.FieldValue, I);
  }
}

TEST(TlabTest, RefillsHappenAndSizingAdapts) {
  Vm TheVm(tlabVm());
  MutatorThread &T = TheVm.mainThread();
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  TlabSet *Tlabs = TheVm.mainThread().tlabs();
  ASSERT_NE(Tlabs, nullptr);
  // Burn well past the first chunk of Node's size class; the bin must have
  // refilled at least once, and each refill doubles the next chunk.
  uint64_t Before = Tlabs->refillCount();
  for (int I = 0; I != 2000; ++I)
    ASSERT_NE(TheVm.allocate(T, G.Node), nullptr);
  EXPECT_GT(Tlabs->refillCount(), Before);

  uint32_t NodeClass = sizeclasses::table().classFor(
      TheVm.types().allocationSize(G.Node, 0));
  EXPECT_GT(Tlabs->desiredBytes(NodeClass), TlabSet::MinBytes);
}

TEST(TlabTest, RetirePreservesLiveObjectsAcrossCollections) {
  Vm TheVm(tlabVm());
  MutatorThread &T = TheVm.mainThread();
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  constexpr int Live = 64;
  Local Keep[Live];
  for (int I = 0; I != Live; ++I) {
    Keep[I] = Scope.handle();
    Keep[I].set(newNode(TheVm, T, I));
  }
  // Garbage interleaved with the live set, some of it still sitting in
  // un-bumped TLAB space when the collection hits.
  for (int I = 0; I != 5000; ++I)
    ASSERT_NE(TheVm.allocate(T, G.Blob, 48), nullptr);

  TheVm.collectNow("tlab-retire-test");
  EXPECT_EQ(heapObjectCount(TheVm), static_cast<size_t>(Live));
  for (int I = 0; I != Live; ++I)
    EXPECT_EQ(Keep[I].get()->getScalar<int64_t>(G.FieldValue), I);

  // The heap the sweep left behind must parse clean: retire left every
  // unused TLAB cell headered as free.
  HeapVerifier Verifier(TheVm.heap());
  EXPECT_TRUE(Verifier.verify().empty());
}

TEST(TlabTest, SharedStatsExactAfterStopTheWorld) {
  Vm TheVm(tlabVm());
  MutatorThread &T = TheVm.mainThread();
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  TheVm.collectNow("flush-baseline"); // Flush type-registration allocs.
  uint64_t Before = TheVm.heap().stats().ObjectsAllocated;
  constexpr uint64_t N = 3000;
  for (uint64_t I = 0; I != N; ++I)
    ASSERT_NE(TheVm.allocate(T, G.Blob, 16), nullptr);
  // Deferred per-thread counters are folded in at refill and retire; after
  // a stop-the-world cycle the shared number must be exact, not a lower
  // bound.
  TheVm.collectNow("flush-test");
  EXPECT_EQ(TheVm.heap().stats().ObjectsAllocated - Before, N);
}

TEST(TlabTest, OnOffRunsAgree) {
  // The same allocation program with the fast path on and off must leave
  // identical observable heaps.
  auto Run = [](bool Tlab) {
    Vm TheVm(tlabVm(Tlab));
    MutatorThread &T = TheVm.mainThread();
    GraphTypes G = GraphTypes::ensure(TheVm.types());
    HandleScope Scope(T);
    Local Ring[8];
    for (Local &L : Ring)
      L = Scope.handle();
    for (int I = 0; I != 4000; ++I) {
      ObjRef Obj = TheVm.allocate(T, G.Blob, 1 + (I % 96));
      EXPECT_NE(Obj, nullptr);
      Ring[I % 8].set(Obj);
    }
    TheVm.collectNow("equivalence-test");
    return std::pair<size_t, uint64_t>(heapObjectCount(TheVm),
                                       TheVm.heap().stats().ObjectsAllocated);
  };
  EXPECT_EQ(Run(true), Run(false));
}

TEST(TlabTest, RefillFailpointDegradesToSharedPath) {
  Vm TheVm(tlabVm());
  MutatorThread &T = TheVm.mainThread();
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  // Prime the TLAB, then cut off refills: allocation must keep succeeding
  // through the shared free-list path once the bump range runs dry.
  ASSERT_NE(TheVm.allocate(T, G.Blob, 16), nullptr);
  faults::TlabRefill.armAlways();
  for (int I = 0; I != 2000; ++I)
    ASSERT_NE(TheVm.allocate(T, G.Blob, 16), nullptr);
  EXPECT_GT(faults::TlabRefill.firedCount(), 0u);
  disarmAllFailpoints();
}

TEST(TlabTest, RefillFailureEntersCollectionCascade) {
  // With refills dead AND the shared lists exhausted, the slow path must
  // fall into the normal collect-and-retry cascade, not report OOM while
  // garbage is reclaimable.
  VmConfig Config = tlabVm();
  Config.HeapBytes = 1u << 20;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  faults::TlabRefill.armAlways();
  uint64_t CyclesBefore = TheVm.gcStats().Cycles;
  // ~3x the heap in unrooted garbage: only collections can make this fit.
  for (int I = 0; I != 12000; ++I)
    ASSERT_NE(TheVm.allocate(T, G.Blob, 240), nullptr);
  EXPECT_GT(TheVm.gcStats().Cycles, CyclesBefore);
  disarmAllFailpoints();
}

TEST(TlabTest, LargeObjectsBypassTheTlab) {
  Vm TheVm(tlabVm());
  MutatorThread &T = TheVm.mainThread();
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  // Far past MaxSmallSize: takes the CAS-claimed large-object path.
  ObjRef Big = TheVm.allocate(T, G.Blob, 256 * 1024);
  ASSERT_NE(Big, nullptr);
  HandleScope Scope(T);
  Local Keep = Scope.handle();
  Keep.set(Big);
  TheVm.collectNow("large-object-test");
  EXPECT_EQ(Keep.get(), Big) << "mark-sweep must not move the large object";
}

} // namespace
