//===- CompactHeapTest.cpp - heap/CompactHeap unit tests ----------------------===//

#include "gcassert/heap/CompactHeap.h"

#include <gtest/gtest.h>

using namespace gcassert;

namespace {

class CompactHeapTest : public ::testing::Test {
protected:
  CompactHeapTest() : Heap(Types, makeConfig()) {
    TypeBuilder B(Types, "LNode;");
    RefOffset = B.addRef("next");
    ValueOffset = B.addScalar("value", 8);
    Node = B.build();
    Array = Types.registerRefArray("[LNode;");
  }

  static CompactHeapConfig makeConfig() {
    CompactHeapConfig Config;
    Config.CapacityBytes = 1u << 20;
    return Config;
  }

  TypeRegistry Types;
  CompactHeap Heap;
  TypeId Node = InvalidTypeId;
  TypeId Array = InvalidTypeId;
  uint32_t RefOffset = 0;
  uint32_t ValueOffset = 0;
};

TEST_F(CompactHeapTest, BumpAllocationContiguous) {
  ObjRef A = Heap.allocate(Node, 0);
  ObjRef B = Heap.allocate(Node, 0);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(reinterpret_cast<uint8_t *>(B),
            reinterpret_cast<uint8_t *>(A) + Heap.objectSize(A));
}

TEST_F(CompactHeapTest, ExhaustionReturnsNull) {
  ObjRef Obj;
  int Count = 0;
  do {
    Obj = Heap.allocate(Node, 0);
    ++Count;
  } while (Obj && Count < 1000000);
  EXPECT_EQ(Obj, nullptr);
  EXPECT_GT(Count, 10000);
}

TEST_F(CompactHeapTest, PlanCoversExactlyTheMarkedObjects) {
  ObjRef A = Heap.allocate(Node, 0);
  ObjRef B = Heap.allocate(Node, 0);
  ObjRef C = Heap.allocate(Node, 0);
  A->header().setMarked();
  C->header().setMarked();

  CompactionPlan Plan = Heap.planCompaction();
  EXPECT_EQ(Plan.liveObjects(), 2u);
  EXPECT_EQ(Plan.lookup(A), A) << "first live object stays put";
  EXPECT_EQ(Plan.lookup(B), nullptr) << "dead objects have no target";
  EXPECT_EQ(Plan.lookup(C), B) << "slides down over the dead gap";
}

TEST_F(CompactHeapTest, ExecuteSlidesAndClearsMarks) {
  ObjRef A = Heap.allocate(Node, 0);
  ObjRef B = Heap.allocate(Node, 0);
  ObjRef C = Heap.allocate(Node, 0);
  (void)B; // Dies.
  A->setScalar<int64_t>(ValueOffset, 11);
  C->setScalar<int64_t>(ValueOffset, 33);
  A->header().setMarked();
  C->header().setMarked();

  CompactionPlan Plan = Heap.planCompaction();
  ObjRef NewC = Plan.lookup(C);
  Heap.executeCompaction(Plan);

  EXPECT_EQ(A->getScalar<int64_t>(ValueOffset), 11);
  EXPECT_EQ(NewC->getScalar<int64_t>(ValueOffset), 33);
  EXPECT_FALSE(A->header().isMarked());
  EXPECT_FALSE(NewC->header().isMarked());

  // The heap now holds exactly two objects, densely packed.
  int Count = 0;
  Heap.forEachObject([&](ObjRef) { ++Count; });
  EXPECT_EQ(Count, 2);
  EXPECT_EQ(Heap.liveBytesAfterLastCollection(), 2 * Heap.objectSize(A));
}

TEST_F(CompactHeapTest, CompactionReclaimsAllocationRoom) {
  // Fill, free everything, compact: the whole heap is usable again.
  while (Heap.allocate(Node, 0))
    ;
  CompactionPlan Plan = Heap.planCompaction(); // Nothing marked.
  EXPECT_EQ(Plan.liveObjects(), 0u);
  Heap.executeCompaction(Plan);
  EXPECT_EQ(Heap.stats().BytesInUse, 0u);
  ObjRef Fresh = Heap.allocate(Node, 0);
  ASSERT_NE(Fresh, nullptr);
  EXPECT_EQ(Heap.stats().BytesInUse, Heap.objectSize(Fresh))
      << "in-use restarts from the compacted prefix";
}

TEST_F(CompactHeapTest, ArraysSlideWithContents) {
  ObjRef Dead = Heap.allocate(Node, 0);
  (void)Dead;
  ObjRef Arr = Heap.allocate(Array, 5);
  ObjRef Elem = Heap.allocate(Node, 0);
  Arr->setElement(2, Elem);
  Arr->header().setMarked();
  Elem->header().setMarked();

  CompactionPlan Plan = Heap.planCompaction();
  ObjRef NewArr = Plan.lookup(Arr);
  ObjRef NewElem = Plan.lookup(Elem);
  ASSERT_NE(NewArr, Arr) << "slides over the dead leading object";
  Heap.executeCompaction(Plan);

  EXPECT_EQ(NewArr->arrayLength(), 5u);
  // Element slots still hold the *old* address: reference rewriting is the
  // collector's job, done against the plan before the slide.
  EXPECT_EQ(NewArr->getElement(2), Elem);
  (void)NewElem;
}

} // namespace
