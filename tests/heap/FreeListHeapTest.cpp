//===- FreeListHeapTest.cpp - heap/FreeListHeap unit tests --------------------===//

#include "gcassert/heap/FreeListHeap.h"

#include <gtest/gtest.h>

#include <set>

using namespace gcassert;

namespace {

class FreeListHeapTest : public ::testing::Test {
protected:
  FreeListHeapTest() : Heap(Types, makeConfig()) {
    TypeBuilder B(Types, "LNode;");
    RefOffset = B.addRef("next");
    ValueOffset = B.addScalar("value", 8);
    Node = B.build();
    Array = Types.registerRefArray("[LNode;");
    Blob = Types.registerDataArray("[B", 1);
  }

  static FreeListHeapConfig makeConfig() {
    FreeListHeapConfig Config;
    Config.CapacityBytes = 4u << 20; // 4 MiB keeps tests fast.
    return Config;
  }

  TypeRegistry Types;
  FreeListHeap Heap;
  TypeId Node = InvalidTypeId;
  TypeId Array = InvalidTypeId;
  TypeId Blob = InvalidTypeId;
  uint32_t RefOffset = 0;
  uint32_t ValueOffset = 0;
};

TEST_F(FreeListHeapTest, AllocateSetsHeader) {
  ObjRef Obj = Heap.allocate(Node, 0);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->typeId(), Node);
  EXPECT_EQ(Obj->header().Flags, 0u);
  EXPECT_FALSE(Obj->header().isMarked());
}

TEST_F(FreeListHeapTest, PayloadIsZeroed) {
  ObjRef Obj = Heap.allocate(Node, 0);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->getRef(RefOffset), nullptr);
  EXPECT_EQ(Obj->getScalar<int64_t>(ValueOffset), 0);
}

TEST_F(FreeListHeapTest, ArrayLengthStored) {
  ObjRef Arr = Heap.allocate(Array, 17);
  ASSERT_NE(Arr, nullptr);
  EXPECT_EQ(Arr->arrayLength(), 17u);
  for (uint64_t I = 0; I < 17; ++I)
    EXPECT_EQ(Arr->getElement(I), nullptr);
}

TEST_F(FreeListHeapTest, DataArrayZeroed) {
  ObjRef Bytes = Heap.allocate(Blob, 100);
  ASSERT_NE(Bytes, nullptr);
  EXPECT_EQ(Bytes->arrayLength(), 100u);
  for (uint64_t I = 0; I < 100; ++I)
    EXPECT_EQ(Bytes->arrayData()[I], 0);
}

TEST_F(FreeListHeapTest, DistinctAddresses) {
  std::set<ObjRef> Seen;
  for (int I = 0; I < 1000; ++I) {
    ObjRef Obj = Heap.allocate(Node, 0);
    ASSERT_NE(Obj, nullptr);
    EXPECT_TRUE(Seen.insert(Obj).second) << "address reused while live";
  }
}

TEST_F(FreeListHeapTest, EightByteAlignment) {
  for (int I = 0; I < 64; ++I) {
    ObjRef Obj = Heap.allocate(Node, 0);
    ASSERT_NE(Obj, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(Obj) % 8, 0u);
  }
}

TEST_F(FreeListHeapTest, SizeClassRounding) {
  EXPECT_EQ(FreeListHeap::sizeClassCellSize(1), 16u);
  EXPECT_EQ(FreeListHeap::sizeClassCellSize(16), 16u);
  EXPECT_EQ(FreeListHeap::sizeClassCellSize(17), 24u);
  EXPECT_EQ(FreeListHeap::sizeClassCellSize(128), 128u);
  EXPECT_EQ(FreeListHeap::sizeClassCellSize(129), 160u);
  EXPECT_EQ(FreeListHeap::sizeClassCellSize(512), 512u);
  EXPECT_EQ(FreeListHeap::sizeClassCellSize(513), 640u);
  EXPECT_EQ(FreeListHeap::sizeClassCellSize(8192), 8192u);
  EXPECT_EQ(FreeListHeap::sizeClassCellSize(8193), 0u) << "goes to LOS";
}

TEST_F(FreeListHeapTest, LargeObjectAllocation) {
  ObjRef Big = Heap.allocate(Blob, 100000);
  ASSERT_NE(Big, nullptr);
  EXPECT_EQ(Big->arrayLength(), 100000u);
  EXPECT_TRUE(Heap.contains(Big));
}

TEST_F(FreeListHeapTest, ExhaustionReturnsNull) {
  // 4 MiB arena of 8 KiB objects: must run out eventually, not crash.
  ObjRef Obj = nullptr;
  int Count = 0;
  do {
    Obj = Heap.allocate(Blob, 8000);
    ++Count;
  } while (Obj && Count < 100000);
  EXPECT_EQ(Obj, nullptr);
  EXPECT_GT(Count, 100);
}

TEST_F(FreeListHeapTest, SweepReclaimsUnmarked) {
  ObjRef Keep = Heap.allocate(Node, 0);
  for (int I = 0; I < 100; ++I)
    ASSERT_NE(Heap.allocate(Node, 0), nullptr);

  Keep->header().setMarked();
  size_t Reclaimed = Heap.sweep();

  EXPECT_GE(Reclaimed, 100u * 24u);
  EXPECT_FALSE(Keep->header().isMarked()) << "sweep clears survivor marks";
  EXPECT_EQ(Keep->typeId(), Node);

  size_t Live = 0;
  Heap.forEachObject([&](ObjRef) { ++Live; });
  EXPECT_EQ(Live, 1u);
}

TEST_F(FreeListHeapTest, SweepRecyclesCells) {
  std::set<ObjRef> FirstBatch;
  for (int I = 0; I < 50; ++I)
    FirstBatch.insert(Heap.allocate(Node, 0));
  Heap.sweep(); // Nothing marked: everything dies.

  // New allocations of the same size class reuse the reclaimed cells.
  bool Reused = false;
  for (int I = 0; I < 50 && !Reused; ++I)
    Reused = FirstBatch.count(Heap.allocate(Node, 0)) != 0;
  EXPECT_TRUE(Reused);
}

TEST_F(FreeListHeapTest, FullyFreeBlocksReturnToPool) {
  for (int I = 0; I < 10000; ++I)
    ASSERT_NE(Heap.allocate(Node, 0), nullptr);
  size_t CarvedBefore = Heap.carvedBlockCount();
  EXPECT_GT(CarvedBefore, 1u);

  Heap.sweep(); // Everything dies.
  EXPECT_EQ(Heap.carvedBlockCount(), 0u);

  // Blocks can now serve another size class.
  ObjRef Big = Heap.allocate(Blob, 4000);
  EXPECT_NE(Big, nullptr);
}

TEST_F(FreeListHeapTest, SweepFreesLargeObjects) {
  ObjRef Keep = Heap.allocate(Blob, 50000);
  ObjRef Die = Heap.allocate(Blob, 50000);
  ASSERT_NE(Keep, nullptr);
  ASSERT_NE(Die, nullptr);
  Keep->header().setMarked();

  uint64_t InUseBefore = Heap.stats().BytesInUse;
  Heap.sweep();
  EXPECT_LT(Heap.stats().BytesInUse, InUseBefore);
  EXPECT_TRUE(Heap.contains(Keep));
  EXPECT_FALSE(Heap.contains(Die));
  EXPECT_EQ(Keep->arrayLength(), 50000u);
}

TEST_F(FreeListHeapTest, StatsTrackAllocation) {
  uint64_t Before = Heap.stats().ObjectsAllocated;
  Heap.allocate(Node, 0);
  Heap.allocate(Array, 3);
  EXPECT_EQ(Heap.stats().ObjectsAllocated, Before + 2);
  EXPECT_GT(Heap.stats().BytesAllocated, 0u);
  EXPECT_GT(Heap.stats().BytesCapacity, 0u);
}

TEST_F(FreeListHeapTest, ContainsRejectsForeignPointers) {
  int Stack = 0;
  EXPECT_FALSE(Heap.contains(&Stack));
  ObjRef Obj = Heap.allocate(Node, 0);
  EXPECT_TRUE(Heap.contains(Obj));
}

TEST_F(FreeListHeapTest, LiveBytesAfterSweep) {
  for (int I = 0; I < 10; ++I) {
    ObjRef Obj = Heap.allocate(Node, 0);
    Obj->header().setMarked();
  }
  Heap.sweep();
  // 10 nodes: 8-byte header + 16-byte payload (one ref + one i64) = 24.
  EXPECT_EQ(Heap.liveBytesAfterLastSweep(),
            10 * FreeListHeap::sizeClassCellSize(8 + 16));
}

} // namespace
