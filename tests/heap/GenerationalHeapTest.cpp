//===- GenerationalHeapTest.cpp - heap/GenerationalHeap unit tests ------------===//

#include "gcassert/heap/GenerationalHeap.h"

#include <gtest/gtest.h>

using namespace gcassert;

namespace {

class GenerationalHeapTest : public ::testing::Test {
protected:
  GenerationalHeapTest() : Heap(Types, makeConfig()) {
    TypeBuilder B(Types, "LNode;");
    RefOffset = B.addRef("next");
    ValueOffset = B.addScalar("value", 8);
    Node = B.build();
    Blob = Types.registerDataArray("[B", 1);
  }

  static GenerationalHeapConfig makeConfig() {
    GenerationalHeapConfig Config;
    Config.CapacityBytes = 8u << 20; // Nursery clamps to 1 MiB.
    return Config;
  }

  TypeRegistry Types;
  GenerationalHeap Heap;
  TypeId Node = InvalidTypeId;
  TypeId Blob = InvalidTypeId;
  uint32_t RefOffset = 0;
  uint32_t ValueOffset = 0;
};

TEST_F(GenerationalHeapTest, SmallObjectsGoToNursery) {
  ObjRef Obj = Heap.allocate(Node, 0);
  ASSERT_NE(Obj, nullptr);
  EXPECT_TRUE(Heap.inNursery(Obj));
  EXPECT_GT(Heap.nurseryBytesUsed(), 0u);
}

TEST_F(GenerationalHeapTest, LargeObjectsPretenured) {
  // Bigger than a quarter of the nursery: straight to the old generation.
  ObjRef Big = Heap.allocate(Blob, Heap.nurseryCapacity() / 2);
  ASSERT_NE(Big, nullptr);
  EXPECT_FALSE(Heap.inNursery(Big));
  EXPECT_TRUE(Heap.oldGen().contains(Big));
}

TEST_F(GenerationalHeapTest, NurseryExhaustionReturnsNull) {
  ObjRef Obj;
  do {
    Obj = Heap.allocate(Node, 0);
  } while (Obj);
  EXPECT_EQ(Obj, nullptr);
  EXPECT_LE(Heap.nurseryBytesUsed(), Heap.nurseryCapacity());
}

TEST_F(GenerationalHeapTest, PromoteCopiesPayloadAndFlags) {
  ObjRef Young = Heap.allocate(Node, 0);
  Young->setScalar<int64_t>(ValueOffset, 77);
  Young->header().setFlag(HF_Dead); // An assertion bit must travel.

  ObjRef Old = Heap.promote(Young);
  EXPECT_FALSE(Heap.inNursery(Old));
  EXPECT_EQ(Old->getScalar<int64_t>(ValueOffset), 77);
  EXPECT_TRUE(Old->header().testFlag(HF_Dead));
  EXPECT_TRUE(Young->isForwarded());
  EXPECT_EQ(Young->forwardingAddress(), Old);
}

TEST_F(GenerationalHeapTest, FinishMinorResetsNurseryAndRemSet) {
  ObjRef Old = Heap.promote(Heap.allocate(Node, 0));
  ObjRef Young = Heap.allocate(Node, 0);
  Old->setRef(RefOffset, Young); // Barrier: old -> nursery.
  EXPECT_EQ(Heap.rememberedSet().count(Old), 1u);

  Heap.finishMinorCollection();
  EXPECT_EQ(Heap.nurseryBytesUsed(), 0u);
  EXPECT_TRUE(Heap.rememberedSet().empty());
}

TEST_F(GenerationalHeapTest, BarrierIgnoresUninterestingStores) {
  ObjRef OldA = Heap.promote(Heap.allocate(Node, 0));
  ObjRef OldB = Heap.promote(Heap.allocate(Node, 0));
  ObjRef YoungA = Heap.allocate(Node, 0);
  ObjRef YoungB = Heap.allocate(Node, 0);

  OldA->setRef(RefOffset, OldB);     // old -> old: no entry.
  YoungA->setRef(RefOffset, YoungB); // nursery -> nursery: no entry.
  YoungA->setRef(RefOffset, OldA);   // nursery -> old: no entry.
  EXPECT_TRUE(Heap.rememberedSet().empty());

  OldA->setRef(RefOffset, YoungA); // The one interesting direction.
  EXPECT_EQ(Heap.rememberedSet().count(OldA), 1u);
}

TEST_F(GenerationalHeapTest, PruneRememberedSetDropsUnmarked) {
  ObjRef Live = Heap.promote(Heap.allocate(Node, 0));
  ObjRef Dead = Heap.promote(Heap.allocate(Node, 0));
  ObjRef Young = Heap.allocate(Node, 0);
  Live->setRef(RefOffset, Young);
  Dead->setRef(RefOffset, Young);
  ASSERT_EQ(Heap.rememberedSet().size(), 2u);

  Live->header().setMarked();
  Heap.pruneRememberedSetUnmarked();
  EXPECT_EQ(Heap.rememberedSet().size(), 1u);
  EXPECT_EQ(Heap.rememberedSet().count(Live), 1u);
  Live->header().clearMarked();
}

TEST_F(GenerationalHeapTest, ClearNurseryMarks) {
  ObjRef A = Heap.allocate(Node, 0);
  ObjRef B = Heap.allocate(Node, 0);
  A->header().setMarked();
  B->header().setMarked();
  Heap.clearNurseryMarks();
  EXPECT_FALSE(A->header().isMarked());
  EXPECT_FALSE(B->header().isMarked());
}

TEST_F(GenerationalHeapTest, ForEachObjectCoversBothGenerations) {
  Heap.promote(Heap.allocate(Node, 0));
  Heap.allocate(Node, 0);
  // Note: the forwarded nursery original still sits in the nursery until a
  // minor collection finishes; walk after finishing.
  Heap.finishMinorCollection();
  Heap.allocate(Node, 0);

  int Count = 0;
  Heap.forEachObject([&](ObjRef) { ++Count; });
  EXPECT_EQ(Count, 2) << "one promoted + one fresh nursery object";
}

TEST_F(GenerationalHeapTest, SecondGenerationalHeapAborts) {
  EXPECT_DEATH(GenerationalHeap Second(Types, makeConfig()),
               "one generational heap");
}

} // namespace
