//===- TypeRegistryTest.cpp - heap/TypeRegistry unit tests --------------------===//

#include "gcassert/heap/TypeRegistry.h"

#include <gtest/gtest.h>

using namespace gcassert;

TEST(TypeRegistryTest, IdsStartAtOne) {
  TypeRegistry Types;
  TypeId Id = Types.registerRefArray("[LFoo;");
  EXPECT_EQ(Id, 1u);
  EXPECT_NE(Id, InvalidTypeId);
  EXPECT_EQ(Types.size(), 1u);
}

TEST(TypeRegistryTest, LookupByName) {
  TypeRegistry Types;
  TypeId Id = Types.registerRefArray("[LFoo;");
  const TypeInfo *Info = Types.lookup("[LFoo;");
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->id(), Id);
  EXPECT_EQ(Types.lookup("[LBar;"), nullptr);
}

TEST(TypeRegistryTest, BuilderLaysOutRefFields) {
  TypeRegistry Types;
  TypeBuilder B(Types, "LPoint;");
  uint32_t A = B.addRef("a");
  uint32_t C = B.addRef("b");
  TypeId Id = B.build();

  EXPECT_EQ(A, 0u);
  EXPECT_EQ(C, 8u);
  const TypeInfo &Info = Types.get(Id);
  EXPECT_EQ(Info.kind(), TypeKind::Class);
  EXPECT_EQ(Info.payloadSize(), 16u);
  ASSERT_EQ(Info.refOffsets().size(), 2u);
  EXPECT_EQ(Info.refOffsets()[0], 0u);
  EXPECT_EQ(Info.refOffsets()[1], 8u);
}

TEST(TypeRegistryTest, ScalarAlignment) {
  TypeRegistry Types;
  TypeBuilder B(Types, "LMixed;");
  uint32_t Byte = B.addScalar("b1", 1);
  uint32_t Word = B.addScalar("w", 8); // must align to 8
  uint32_t Ref = B.addRef("r");
  TypeId Id = B.build();

  EXPECT_EQ(Byte, 0u);
  EXPECT_EQ(Word, 8u);
  EXPECT_EQ(Ref, 16u);
  EXPECT_EQ(Types.get(Id).payloadSize(), 24u);
}

TEST(TypeRegistryTest, FieldAtOffset) {
  TypeRegistry Types;
  TypeBuilder B(Types, "LThing;");
  uint32_t R = B.addRef("next");
  TypeId Id = B.build();

  const FieldInfo *Field = Types.get(Id).fieldAtOffset(R);
  ASSERT_NE(Field, nullptr);
  EXPECT_EQ(Field->Name, "next");
  EXPECT_TRUE(Field->IsRef);
  EXPECT_EQ(Types.get(Id).fieldAtOffset(1234), nullptr);
}

TEST(TypeRegistryTest, AllocationSizeClass) {
  TypeRegistry Types;
  TypeBuilder B(Types, "LPair;");
  B.addRef("a");
  B.addRef("b");
  TypeId Id = B.build();
  // Header (8) + two refs (16).
  EXPECT_EQ(Types.allocationSize(Id, 0), 24u);
}

TEST(TypeRegistryTest, AllocationSizeEmptyClassHasForwardingWord) {
  TypeRegistry Types;
  TypeBuilder B(Types, "LEmpty;");
  TypeId Id = B.build();
  // Even a fieldless object needs one payload word for the free-list /
  // forwarding pointer.
  EXPECT_EQ(Types.allocationSize(Id, 0), 16u);
}

TEST(TypeRegistryTest, AllocationSizeArrays) {
  TypeRegistry Types;
  TypeId Refs = Types.registerRefArray("[LX;");
  TypeId Bytes = Types.registerDataArray("[B", 1);
  // Header (8) + length (8) + elements.
  EXPECT_EQ(Types.allocationSize(Refs, 4), 8u + 8u + 32u);
  EXPECT_EQ(Types.allocationSize(Bytes, 5), 8u + 8u + 5u);
  // Zero-length arrays still carry the length word.
  EXPECT_EQ(Types.allocationSize(Refs, 0), 16u);
}

TEST(TypeRegistryTest, InstanceTrackingWords) {
  TypeRegistry Types;
  TypeBuilder B(Types, "LSingleton;");
  TypeId Id = B.build();
  TypeInfo &Info = Types.get(Id);

  EXPECT_FALSE(Info.isInstanceTracked());
  Info.setInstanceLimit(1);
  EXPECT_TRUE(Info.isInstanceTracked());
  EXPECT_EQ(Info.instanceLimit(), 1u);

  Info.resetLiveCount();
  Info.incrementLiveCount();
  Info.incrementLiveCount();
  EXPECT_EQ(Info.liveCount(), 2u);

  Info.clearInstanceLimit();
  EXPECT_FALSE(Info.isInstanceTracked());
}

TEST(TypeRegistryDeathTest, DuplicateNameAborts) {
  TypeRegistry Types;
  Types.registerRefArray("[LDup;");
  EXPECT_DEATH(Types.registerRefArray("[LDup;"), "duplicate");
}
