//===- HeapHistogramTest.cpp - heap/HeapHistogram unit tests ------------------===//

#include "common/TestGraph.h"
#include "gcassert/heap/HeapHistogram.h"
#include "gcassert/support/OStream.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig smallVm() {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  return Config;
}

TEST(HeapHistogramTest, EmptyHeap) {
  Vm TheVm(smallVm());
  EXPECT_TRUE(takeHeapHistogram(TheVm.heap()).empty());
}

TEST(HeapHistogramTest, CountsPerType) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  for (int I = 0; I < 10; ++I)
    Scope.handle(newNode(TheVm, T));
  Scope.handle(TheVm.allocate(T, G.Array, 100));

  std::vector<TypeOccupancy> Histogram = takeHeapHistogram(TheVm.heap());
  ASSERT_EQ(Histogram.size(), 2u);
  // Sorted by bytes: the 100-element array (816 bytes) beats 10 nodes.
  EXPECT_EQ(Histogram[0].TypeName, "[LNode;");
  EXPECT_EQ(Histogram[0].Instances, 1u);
  EXPECT_EQ(Histogram[0].Bytes, 8u + 8u + 800u);
  EXPECT_EQ(Histogram[1].TypeName, "LNode;");
  EXPECT_EQ(Histogram[1].Instances, 10u);
  EXPECT_EQ(Histogram[1].Bytes, 10u * 40u);
}

TEST(HeapHistogramTest, ReflectsCollections) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Scope.handle(newNode(TheVm, T));
  for (int I = 0; I < 50; ++I)
    newNode(TheVm, T); // Garbage.

  EXPECT_EQ(takeHeapHistogram(TheVm.heap())[0].Instances, 51u);
  TheVm.collectNow();
  EXPECT_EQ(takeHeapHistogram(TheVm.heap())[0].Instances, 1u);
}

TEST(HeapHistogramTest, PrintFormat) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Scope.handle(newNode(TheVm, T));
  Scope.handle(newNode(TheVm, T));

  StringOStream Out;
  printHeapHistogram(Out, takeHeapHistogram(TheVm.heap()));
  EXPECT_NE(Out.str().find("LNode;"), std::string::npos);
  EXPECT_NE(Out.str().find("(total)"), std::string::npos);
}

TEST(HeapHistogramTest, MaxRowsTruncates) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Scope.handle(newNode(TheVm, T));
  Scope.handle(TheVm.allocate(T, G.Array, 1));
  Scope.handle(TheVm.allocate(T, G.Blob, 8));

  StringOStream Out;
  printHeapHistogram(Out, takeHeapHistogram(TheVm.heap()), 1);
  EXPECT_NE(Out.str().find("2 more types"), std::string::npos);
  // Totals still cover everything.
  EXPECT_NE(Out.str().find("(total)"), std::string::npos);
}

} // namespace
