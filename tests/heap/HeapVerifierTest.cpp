//===- HeapVerifierTest.cpp - heap/HeapVerifier unit tests --------------------===//

#include "common/TestGraph.h"
#include "gcassert/heap/HeapVerifier.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

class HeapVerifierTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  HeapVerifierTest() : TheVm(makeConfig()) {}

  VmConfig makeConfig() {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Config.Collector = GetParam();
    return Config;
  }

  Vm TheVm;
};

TEST_P(HeapVerifierTest, EmptyHeapIsClean) {
  HeapVerifier Verifier(TheVm.heap());
  EXPECT_TRUE(Verifier.isClean());
}

TEST_P(HeapVerifierTest, WellFormedGraphIsClean) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 16));
  for (uint64_t I = 0; I < 16; ++I) {
    ObjRef Node = newNode(TheVm, T, static_cast<int64_t>(I));
    Arr.get()->setElement(I, Node);
    if (I > 0)
      Node->setRef(G.FieldA, Arr.get()->getElement(I - 1));
  }

  HeapVerifier Verifier(TheVm.heap());
  EXPECT_TRUE(Verifier.isClean());
}

TEST_P(HeapVerifierTest, CleanAfterCollections) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  (void)Kept;
  for (int I = 0; I < 500; ++I)
    newNode(TheVm, T);

  TheVm.collectNow();
  TheVm.collectNow();
  HeapVerifier Verifier(TheVm.heap());
  EXPECT_TRUE(Verifier.isClean())
      << "no residual mark/forwarding state after GC";
}

TEST_P(HeapVerifierTest, DetectsForeignPointer) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Node = Scope.handle(newNode(TheVm, T));

  // Corrupt the heap: a field pointing at host memory.
  int64_t HostValue = 0;
  Node.get()->setRef(G.FieldA, reinterpret_cast<ObjRef>(&HostValue));

  HeapVerifier Verifier(TheVm.heap());
  std::vector<HeapDefect> Defects = Verifier.verify();
  ASSERT_EQ(Defects.size(), 1u);
  EXPECT_EQ(Defects[0].Obj, Node.get());
  EXPECT_NE(Defects[0].Description.find("outside the heap"),
            std::string::npos);

  Node.get()->setRef(G.FieldA, nullptr); // Repair before the VM collects.
}

TEST_P(HeapVerifierTest, DetectsStaleMarkBit) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Node = Scope.handle(newNode(TheVm, T));
  Node.get()->header().setMarked();

  HeapVerifier Verifier(TheVm.heap());
  std::vector<HeapDefect> Defects = Verifier.verify();
  ASSERT_EQ(Defects.size(), 1u);
  EXPECT_NE(Defects[0].Description.find("mark bit"), std::string::npos);
  Node.get()->header().clearMarked();
}

TEST_P(HeapVerifierTest, DetectsMisalignedReference) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T));
  ObjRef Target = newNode(TheVm, T);

  Holder.get()->setRef(
      G.FieldB, reinterpret_cast<ObjRef>(
                    reinterpret_cast<uintptr_t>(Target) + 1));

  HeapVerifier Verifier(TheVm.heap());
  std::vector<HeapDefect> Defects = Verifier.verify();
  ASSERT_EQ(Defects.size(), 1u);
  EXPECT_NE(Defects[0].Description.find("misaligned"), std::string::npos);
  Holder.get()->setRef(G.FieldB, nullptr);
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, HeapVerifierTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact,
                                           CollectorKind::Generational),
                         [](const ::testing::TestParamInfo<CollectorKind> &I) {
                           return std::string(collectorName(I.param));
                         });

} // namespace
