//===- HeapVerifierTest.cpp - heap/HeapVerifier unit tests --------------------===//

#include "common/TestGraph.h"
#include "gcassert/heap/HeapVerifier.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

class HeapVerifierTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  HeapVerifierTest() : TheVm(makeConfig()) {}

  VmConfig makeConfig() {
    VmConfig Config;
    Config.HeapBytes = 8u << 20;
    Config.Collector = GetParam();
    return Config;
  }

  Vm TheVm;
};

TEST_P(HeapVerifierTest, EmptyHeapIsClean) {
  HeapVerifier Verifier(TheVm.heap());
  EXPECT_TRUE(Verifier.isClean());
}

TEST_P(HeapVerifierTest, WellFormedGraphIsClean) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 16));
  for (uint64_t I = 0; I < 16; ++I) {
    ObjRef Node = newNode(TheVm, T, static_cast<int64_t>(I));
    Arr.get()->setElement(I, Node);
    if (I > 0)
      Node->setRef(G.FieldA, Arr.get()->getElement(I - 1));
  }

  HeapVerifier Verifier(TheVm.heap());
  EXPECT_TRUE(Verifier.isClean());
}

TEST_P(HeapVerifierTest, CleanAfterCollections) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  (void)Kept;
  for (int I = 0; I < 500; ++I)
    newNode(TheVm, T);

  TheVm.collectNow();
  TheVm.collectNow();
  HeapVerifier Verifier(TheVm.heap());
  EXPECT_TRUE(Verifier.isClean())
      << "no residual mark/forwarding state after GC";
}

TEST_P(HeapVerifierTest, DetectsForeignPointer) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Node = Scope.handle(newNode(TheVm, T));

  // Corrupt the heap: a field pointing at host memory.
  int64_t HostValue = 0;
  Node.get()->setRef(G.FieldA, reinterpret_cast<ObjRef>(&HostValue));

  HeapVerifier Verifier(TheVm.heap());
  std::vector<HeapDefect> Defects = Verifier.verify();
  ASSERT_EQ(Defects.size(), 1u);
  EXPECT_EQ(Defects[0].Obj, Node.get());
  EXPECT_NE(Defects[0].Description.find("outside the heap"),
            std::string::npos);

  Node.get()->setRef(G.FieldA, nullptr); // Repair before the VM collects.
}

TEST_P(HeapVerifierTest, DetectsStaleMarkBit) {
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Node = Scope.handle(newNode(TheVm, T));
  Node.get()->header().setMarked();

  HeapVerifier Verifier(TheVm.heap());
  std::vector<HeapDefect> Defects = Verifier.verify();
  ASSERT_EQ(Defects.size(), 1u);
  EXPECT_NE(Defects[0].Description.find("mark bit"), std::string::npos);
  Node.get()->header().clearMarked();
}

TEST_P(HeapVerifierTest, DetectsMisalignedReference) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T));
  ObjRef Target = newNode(TheVm, T);

  Holder.get()->setRef(
      G.FieldB, reinterpret_cast<ObjRef>(
                    reinterpret_cast<uintptr_t>(Target) + 1));

  HeapVerifier Verifier(TheVm.heap());
  std::vector<HeapDefect> Defects = Verifier.verify();
  ASSERT_EQ(Defects.size(), 1u);
  EXPECT_NE(Defects[0].Description.find("misaligned"), std::string::npos);
  Holder.get()->setRef(G.FieldB, nullptr);
}

TEST_P(HeapVerifierTest, LargeObjectWithRefPayloadIsVerified) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);

  // Big enough to land in the free-list heap's large-object space (and to
  // exercise the bump heaps' large-allocation paths): 2000 elements is a
  // ~16 KiB payload, well past the 8 KiB small-object ceiling.
  constexpr uint64_t Len = 2000;
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, Len));
  Local Blob = Scope.handle(TheVm.allocate(T, G.Blob, 100000));
  (void)Blob;
  for (uint64_t I = 0; I < Len; I += 100)
    Arr.get()->setElement(I, newNode(TheVm, T, static_cast<int64_t>(I)));

  HeapVerifier Verifier(TheVm.heap());
  EXPECT_TRUE(Verifier.isClean());

  // A scribbled element deep in the large payload must be found.
  Arr.get()->setElement(
      1500, reinterpret_cast<ObjRef>(
                reinterpret_cast<uintptr_t>(Arr.get()->getElement(0)) + 1));
  std::vector<HeapDefect> Defects = Verifier.verify();
  ASSERT_EQ(Defects.size(), 1u);
  EXPECT_EQ(Defects[0].Obj, Arr.get());
  EXPECT_EQ(Defects[0].Kind, DefectKind::BadReference);
  Arr.get()->setElement(1500, nullptr);
  EXPECT_TRUE(Verifier.isClean());
}

TEST_P(HeapVerifierTest, TypeIdUpperBoundIsExactlyRegistrySize) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);

  // GraphTypes registers Blob last, so its id is exactly types().size():
  // the largest valid id. A verifier bound of ">= size()" (the classic
  // off-by-one) would reject every object of the newest type.
  ASSERT_EQ(G.Blob, TheVm.types().size());
  Local Blob = Scope.handle(TheVm.allocate(T, G.Blob, 16));

  HeapVerifier Verifier(TheVm.heap());
  EXPECT_TRUE(Verifier.isClean());

  // The mutation half needs a heap walk that does not derive strides from
  // the (now invalid) type: only the free-list heap's block metadata walk
  // qualifies without hardening attached.
  if (GetParam() != CollectorKind::MarkSweep)
    return;

  // One past the registry is invalid and must be flagged.
  Blob.get()->header().Type = static_cast<TypeId>(TheVm.types().size() + 1);
  std::vector<HeapDefect> Defects = Verifier.verify();
  ASSERT_EQ(Defects.size(), 1u);
  EXPECT_EQ(Defects[0].Kind, DefectKind::BadTypeId);
  EXPECT_NE(Defects[0].Description.find("unregistered type id"),
            std::string::npos);
  Blob.get()->header().Type = G.Blob; // Repair before the VM collects.
  EXPECT_TRUE(Verifier.isClean());
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, HeapVerifierTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact,
                                           CollectorKind::Generational),
                         [](const ::testing::TestParamInfo<CollectorKind> &I) {
                           return std::string(collectorName(I.param));
                         });

} // namespace
