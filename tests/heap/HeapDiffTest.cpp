//===- HeapDiffTest.cpp - heap/HeapDiff unit tests -----------------------------===//

#include "common/TestGraph.h"
#include "gcassert/heap/HeapDiff.h"
#include "gcassert/support/OStream.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

TEST(HeapDiffTest, IdenticalSnapshotsDiffEmpty) {
  std::vector<TypeOccupancy> Snap = {{1, "LNode;", 10, 400}};
  EXPECT_TRUE(diffHeapHistograms(Snap, Snap).empty());
}

TEST(HeapDiffTest, GrowthAndShrinkage) {
  std::vector<TypeOccupancy> Before = {{1, "LNode;", 10, 400},
                                       {2, "[B", 5, 1000}};
  std::vector<TypeOccupancy> After = {{1, "LNode;", 30, 1200},
                                      {2, "[B", 2, 400}};
  std::vector<TypeDelta> Diff = diffHeapHistograms(Before, After);
  ASSERT_EQ(Diff.size(), 2u);
  EXPECT_EQ(Diff[0].TypeName, "LNode;"); // Sorted by byte growth.
  EXPECT_EQ(Diff[0].InstanceDelta, 20);
  EXPECT_EQ(Diff[0].ByteDelta, 800);
  EXPECT_EQ(Diff[1].TypeName, "[B");
  EXPECT_EQ(Diff[1].ByteDelta, -600);
}

TEST(HeapDiffTest, AppearingAndVanishingTypes) {
  std::vector<TypeOccupancy> Before = {{1, "LOld;", 4, 100}};
  std::vector<TypeOccupancy> After = {{2, "LNew;", 3, 90}};
  std::vector<TypeDelta> Diff = diffHeapHistograms(Before, After);
  ASSERT_EQ(Diff.size(), 2u);
  EXPECT_EQ(Diff[0].TypeName, "LNew;");
  EXPECT_EQ(Diff[0].InstanceDelta, 3);
  EXPECT_EQ(Diff[1].TypeName, "LOld;");
  EXPECT_EQ(Diff[1].InstanceDelta, -4);
  EXPECT_EQ(Diff[1].ByteDelta, -100);
}

TEST(HeapDiffTest, EndToEndOverLiveHeap) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Keep = Scope.handle(newNode(TheVm, T));
  (void)Keep;

  std::vector<TypeOccupancy> Before = takeHeapHistogram(TheVm.heap());
  std::vector<Local> More;
  for (int I = 0; I < 25; ++I)
    More.push_back(Scope.handle(newNode(TheVm, T)));
  std::vector<TypeOccupancy> After = takeHeapHistogram(TheVm.heap());

  std::vector<TypeDelta> Diff = diffHeapHistograms(Before, After);
  ASSERT_EQ(Diff.size(), 1u);
  EXPECT_EQ(Diff[0].TypeName, "LNode;");
  EXPECT_EQ(Diff[0].InstanceDelta, 25);
}

TEST(HeapDiffTest, PrintFormat) {
  std::vector<TypeDelta> Diff = {{"LNode;", 20, 800}, {"[B", -3, -600}};
  StringOStream Out;
  printHeapDiff(Out, Diff);
  EXPECT_NE(Out.str().find("+20"), std::string::npos);
  EXPECT_NE(Out.str().find("-600"), std::string::npos);

  StringOStream Truncated;
  printHeapDiff(Truncated, Diff, 1);
  EXPECT_NE(Truncated.str().find("1 more types"), std::string::npos);
}

} // namespace
