//===- KvServiceTest.cpp - Managed KV serving workload tests -------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The KV serving workload's two contracts: (1) for a fixed seed and
// request count the final service state is identical across all four
// collectors and across every partition-dividing mutator-thread count,
// with zero assertion violations — which is what lets the suite assert
// "the collector changed nothing"; (2) a seeded eviction leak (the FIFO
// forgets an entry the tree still holds) is caught by the assertDead the
// eviction path registers, within the run's own collections.
//
//===----------------------------------------------------------------------===//

#include "gcassert/serving/ServingHarness.h"
#include "gcassert/support/FaultInjection.h"

#include "gtest/gtest.h"

#include <vector>

using namespace gcassert;
using namespace gcassert::serving;

namespace {

const CollectorKind AllCollectors[] = {
    CollectorKind::MarkSweep, CollectorKind::SemiSpace,
    CollectorKind::MarkCompact, CollectorKind::Generational};

ServingOptions kvOptions(CollectorKind Collector, unsigned Threads) {
  ServingOptions Options;
  Options.Workload = ServingWorkload::Kv;
  Options.Collector = Collector;
  Options.Threads = Threads;
  // Closed loop: same request stream as open loop (arrival times never
  // feed the per-request RNG), without the wall-clock cost of pacing.
  Options.Loop = LoopMode::Closed;
  Options.Requests = 600;
  Options.Seed = 0x6b76; // "kv"
  return Options;
}

class KvServiceTest : public ::testing::Test {
protected:
  void TearDown() override { disarmAllFailpoints(); }
};

TEST_F(KvServiceTest, FinalStateIdenticalAcrossCollectorsAndThreadCounts) {
  std::vector<ServingResult> Results;
  for (CollectorKind Collector : AllCollectors)
    for (unsigned Threads : {1u, 4u})
      Results.push_back(runServing(kvOptions(Collector, Threads)));

  ASSERT_FALSE(Results.empty());
  const ServingResult &First = Results.front();
  EXPECT_NE(First.StateDigest, 0u);
  EXPECT_GT(First.LiveEntries, 0u);
  for (size_t I = 0; I != Results.size(); ++I) {
    const ServingResult &R = Results[I];
    EXPECT_EQ(R.StateDigest, First.StateDigest) << "configuration " << I;
    EXPECT_EQ(R.LiveEntries, First.LiveEntries) << "configuration " << I;
    EXPECT_EQ(R.Violations, 0u) << "configuration " << I;
    EXPECT_EQ(R.Requests, 600u) << "configuration " << I;
  }
}

TEST_F(KvServiceTest, ExercisesTheAssertionSurface) {
  ServingResult Result = runServing(kvOptions(CollectorKind::MarkSweep, 1));
  // GETs flag values unshared, evictions/erases/overwrites flag them dead,
  // and every request closes an assert-alldead region.
  EXPECT_GT(Result.Counters.AssertUnsharedCalls, 0u);
  EXPECT_GT(Result.Counters.AssertDeadCalls, 0u);
  EXPECT_GE(Result.Counters.RegionsOpened, Result.Requests);
  EXPECT_EQ(Result.Counters.RegionsOpened, Result.Counters.RegionsClosed);
  EXPECT_GT(Result.GcCycles, 0u);
  EXPECT_EQ(Result.Violations, 0u);
}

TEST_F(KvServiceTest, LoopModeDoesNotChangeFinalState) {
  ServingOptions Closed = kvOptions(CollectorKind::MarkSweep, 1);
  ServingOptions Open = Closed;
  Open.Loop = LoopMode::Open;
  Open.OfferedRatePerSec = 50000.0; // keep the paced run short
  ServingResult A = runServing(Closed);
  ServingResult B = runServing(Open);
  EXPECT_EQ(A.StateDigest, B.StateDigest);
  EXPECT_EQ(A.LiveEntries, B.LiveEntries);
}

TEST_F(KvServiceTest, SeededEvictionLeakCaughtByAssertDead) {
  // Arm the leak failpoint once: the first eviction pops the FIFO entry
  // but leaves the tree edge in place, so the "dead" value stays
  // reachable. The assertDead registered at eviction must flag it at a
  // collection before the run ends (the harness's final collection runs
  // all still-pending assertions) — under open-loop load, as the suite
  // serves it.
  faults::KvEvictLeak.resetCounters();
  faults::KvEvictLeak.armOnce();

  ServingOptions Options = kvOptions(CollectorKind::MarkSweep, 1);
  Options.Loop = LoopMode::Open;
  Options.OfferedRatePerSec = 20000.0;
  ServingResult Result = runServing(Options);

  EXPECT_EQ(faults::KvEvictLeak.firedCount(), 1u)
      << "the run produced no eviction to leak";
  EXPECT_GE(Result.Violations, 1u)
      << "leaked eviction was not flagged by assertDead";
}

TEST_F(KvServiceTest, NoLeakMeansNoViolations) {
  // Control for the leak test: the identical run with the failpoint
  // disarmed is violation-free.
  ServingOptions Options = kvOptions(CollectorKind::MarkSweep, 1);
  Options.Loop = LoopMode::Open;
  Options.OfferedRatePerSec = 20000.0;
  ServingResult Result = runServing(Options);
  EXPECT_EQ(Result.Violations, 0u);
}

} // namespace
