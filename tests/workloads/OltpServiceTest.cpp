//===- OltpServiceTest.cpp - Order-entry OLTP workload tests -------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The order-entry workload mirrors PseudoJbb's shape (per-request arena
// objects, per-district order books with assertOwnedBy on every open
// order) as a serving workload. These tests pin the same contracts as the
// KV ones — final state identical across the full collector × thread-count
// matrix with zero violations — plus that the run actually exercises the
// ownership machinery (§2.5.2): assertOwnedBy registrations and ownee
// checks both happen.
//
//===----------------------------------------------------------------------===//

#include "gcassert/serving/ServingHarness.h"

#include "gtest/gtest.h"

#include <vector>

using namespace gcassert;
using namespace gcassert::serving;

namespace {

const CollectorKind AllCollectors[] = {
    CollectorKind::MarkSweep, CollectorKind::SemiSpace,
    CollectorKind::MarkCompact, CollectorKind::Generational};

ServingOptions oltpOptions(CollectorKind Collector, unsigned Threads) {
  ServingOptions Options;
  Options.Workload = ServingWorkload::Oltp;
  Options.Collector = Collector;
  Options.Threads = Threads;
  Options.Loop = LoopMode::Closed;
  Options.Requests = 600;
  Options.Seed = 0x6f6c7470; // "oltp"
  return Options;
}

TEST(OltpServiceTest, FinalStateIdenticalAcrossCollectorsAndThreadCounts) {
  std::vector<ServingResult> Results;
  for (CollectorKind Collector : AllCollectors)
    for (unsigned Threads : {1u, 4u})
      Results.push_back(runServing(oltpOptions(Collector, Threads)));

  ASSERT_FALSE(Results.empty());
  const ServingResult &First = Results.front();
  EXPECT_NE(First.StateDigest, 0u);
  EXPECT_GT(First.LiveEntries, 0u) << "no open orders at the end of the run";
  for (size_t I = 0; I != Results.size(); ++I) {
    const ServingResult &R = Results[I];
    EXPECT_EQ(R.StateDigest, First.StateDigest) << "configuration " << I;
    EXPECT_EQ(R.LiveEntries, First.LiveEntries) << "configuration " << I;
    EXPECT_EQ(R.Violations, 0u) << "configuration " << I;
  }
}

TEST(OltpServiceTest, ExercisesOwnershipAndRegions) {
  ServingResult Result = runServing(oltpOptions(CollectorKind::MarkSweep, 1));
  // Every new order registers assertOwnedBy(book, order); every delivery
  // flags the erased order dead; every request closes a scratch region.
  EXPECT_GT(Result.Counters.AssertOwnedByCalls, 0u);
  EXPECT_GT(Result.Counters.AssertDeadCalls, 0u);
  EXPECT_GE(Result.Counters.RegionsOpened, Result.Requests);
  EXPECT_EQ(Result.Counters.RegionsOpened, Result.Counters.RegionsClosed);
  EXPECT_GT(Result.GcCycles, 0u);
  // The ownership phase must actually have checked ownees at GC time —
  // an assertOwnedBy that never reaches the collector checks nothing.
  EXPECT_GT(Result.Counters.OwneesCheckedTotal, 0u);
  EXPECT_EQ(Result.Violations, 0u);
}

TEST(OltpServiceTest, MutatorThreadCountMustDividePartitions) {
  // Districts = Warehouses * DistrictsPerWarehouse = 8 by default; 3 does
  // not divide it, and runServing must refuse rather than silently break
  // the single-owner routing the determinism contract rests on.
  ServingOptions Options = oltpOptions(CollectorKind::MarkSweep, 3);
  EXPECT_DEATH(runServing(Options), "divide");
}

} // namespace
