//===- GenerationalWorkloadTest.cpp - workloads on the generational VM --------===//
//
// Runs representative workloads under the generational collector with their
// assertions active. The correct programs must stay violation-free even
// though every object now moves nursery -> old generation and the engine's
// tables are translated at every minor collection.
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/Harness.h"

#include <gtest/gtest.h>

using namespace gcassert;

namespace {

class GenerationalWorkloadTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(GenerationalWorkloadTest, CleanUnderAssertions) {
  registerBuiltinWorkloads();
  HarnessOptions Options;
  Options.WarmupIterations = 0;
  Options.MeasuredIterations = 1;
  Options.Collector = CollectorKind::Generational;
  RecordingViolationSink Sink;
  Options.Sink = &Sink;

  RunResult Result =
      runWorkload(GetParam(), BenchConfig::WithAssertions, Options);
  EXPECT_GT(Result.TotalMillis, 0.0);
  EXPECT_TRUE(Sink.violations().empty())
      << Sink.violations().front().Message;
}

INSTANTIATE_TEST_SUITE_P(Representative, GenerationalWorkloadTest,
                         ::testing::Values("db", "hsqldb", "pseudojbb",
                                           "jess", "javac"),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

TEST(GenerationalWorkloadTest, LeakStillDetectedAtMajorGc) {
  // The orderTable leak under the generational collector: detection waits
  // for a major collection but still happens with the full path.
  registerBuiltinWorkloads();
  std::unique_ptr<Workload> TheWorkload =
      WorkloadRegistry::create("pseudojbb-ordertable-leak");
  VmConfig Config;
  Config.HeapBytes = TheWorkload->heapBytes();
  Config.Collector = CollectorKind::Generational;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  WorkloadContext Ctx(TheVm, &Engine, /*UseAssertions=*/true, 0x5eed);

  TheWorkload->setUp(Ctx);
  TheWorkload->runIteration(Ctx);
  TheVm.collectNow(); // Major: the check finally runs.
  TheWorkload->tearDown(Ctx);

  ASSERT_GT(Sink.countOf(AssertionKind::Dead), 0u);
  EXPECT_EQ(Sink.violations().front().Path.back().TypeName,
            "Lspec/jbb/Order;");
}

} // namespace
