//===- WorkloadSmokeTest.cpp - every workload runs under every config ---------===//

#include "gcassert/workloads/Harness.h"

#include <gtest/gtest.h>

using namespace gcassert;

namespace {

struct SmokeParam {
  std::string Workload;
  BenchConfig Config;
};

class WorkloadSmokeTest : public ::testing::TestWithParam<SmokeParam> {};

TEST_P(WorkloadSmokeTest, RunsToCompletion) {
  registerBuiltinWorkloads();
  HarnessOptions Options;
  Options.WarmupIterations = 0;
  Options.MeasuredIterations = 1;
  RecordingViolationSink Sink;
  Options.Sink = &Sink;

  RunResult Result =
      runWorkload(GetParam().Workload, GetParam().Config, Options);
  EXPECT_GT(Result.TotalMillis, 0.0);
  EXPECT_GE(Result.TotalMillis, Result.GcMillis);

  // The *performance* workloads must be violation-free under assertions;
  // the leak variants are tested separately. lusearch is the exception:
  // its assert-instances violation *is* the §3.2.2 finding.
  if (GetParam().Config == BenchConfig::WithAssertions &&
      GetParam().Workload != "lusearch") {
    EXPECT_TRUE(Sink.violations().empty())
        << "unexpected violation: " << Sink.violations().front().Message;
  }
}

std::vector<SmokeParam> smokeParams() {
  registerBuiltinWorkloads();
  std::vector<SmokeParam> Params;
  for (const std::string &Name : WorkloadRegistry::names()) {
    if (Name.find("-") != std::string::npos)
      continue; // Leak variants have their own tests.
    Params.push_back({Name, BenchConfig::Base});
    Params.push_back({Name, BenchConfig::WithAssertions});
  }
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSmokeTest, ::testing::ValuesIn(smokeParams()),
    [](const ::testing::TestParamInfo<SmokeParam> &Info) {
      return Info.param.Workload + "_" +
             benchConfigName(Info.param.Config);
    });

TEST(WorkloadRegistryTest, AllExpectedWorkloadsRegistered) {
  registerBuiltinWorkloads();
  std::vector<std::string> Names = WorkloadRegistry::names();
  for (const char *Expected :
       {"compress", "jess", "db", "javac", "mpegaudio", "mtrt", "jack",
        "antlr", "bloat", "chart", "eclipse", "fop", "hsqldb", "jython",
        "luindex", "lusearch", "pmd", "xalan", "pseudojbb",
        "pseudojbb-ordertable-leak", "pseudojbb-customer-leak",
        "pseudojbb-drag"}) {
    EXPECT_NE(std::find(Names.begin(), Names.end(), Expected), Names.end())
        << "missing workload " << Expected;
  }
}

TEST(WorkloadRegistryTest, RegistrationIsIdempotent) {
  registerBuiltinWorkloads();
  size_t Before = WorkloadRegistry::names().size();
  registerBuiltinWorkloads();
  EXPECT_EQ(WorkloadRegistry::names().size(), Before);
}

TEST(WorkloadRegistryDeathTest, UnknownWorkloadAborts) {
  registerBuiltinWorkloads();
  EXPECT_DEATH((void)WorkloadRegistry::create("no-such-workload"),
               "unknown workload");
}

TEST(HarnessTest, DeterministicSeedsGiveIdenticalCounters) {
  registerBuiltinWorkloads();
  HarnessOptions Options;
  Options.WarmupIterations = 0;
  Options.MeasuredIterations = 1;
  Options.Seed = 77;
  RecordingViolationSink SinkA, SinkB;

  Options.Sink = &SinkA;
  RunResult A = runWorkload("db", BenchConfig::WithAssertions, Options);
  Options.Sink = &SinkB;
  RunResult B = runWorkload("db", BenchConfig::WithAssertions, Options);

  EXPECT_EQ(A.Counters.AssertDeadCalls, B.Counters.AssertDeadCalls);
  EXPECT_EQ(A.Counters.AssertOwnedByCalls, B.Counters.AssertOwnedByCalls);
  EXPECT_EQ(A.Counters.OwneesCheckedTotal, B.Counters.OwneesCheckedTotal);
  EXPECT_EQ(A.GcCycles, B.GcCycles);
}

} // namespace
