//===- PseudoJbbLeakTest.cpp - QUAL-JBB / QUAL-LU reproduction tests ----------===//
//
// Verifies the paper's qualitative findings (§3.2) as executable tests: the
// SPEC JBB2000 orderTable leak with the Figure 1 path, the
// Customer.lastOrder leak, the oldCompany drag, and lusearch's 32 live
// IndexSearchers.
//
//===----------------------------------------------------------------------===//

#include "gcassert/workloads/Workload.h"

#include <gtest/gtest.h>

using namespace gcassert;

namespace {

struct LeakRun {
  RecordingViolationSink Sink;
  std::unique_ptr<Vm> TheVm;
  std::unique_ptr<AssertionEngine> Engine;
  std::unique_ptr<Workload> TheWorkload;
  std::unique_ptr<WorkloadContext> Ctx;

  explicit LeakRun(const std::string &Name, int Iterations = 1) {
    registerBuiltinWorkloads();
    TheWorkload = WorkloadRegistry::create(Name);
    VmConfig Config;
    Config.HeapBytes = TheWorkload->heapBytes();
    TheVm = std::make_unique<Vm>(Config);
    Engine = std::make_unique<AssertionEngine>(*TheVm, &Sink);
    Ctx = std::make_unique<WorkloadContext>(*TheVm, Engine.get(),
                                            /*UseAssertions=*/true, 0x5eed);
    TheWorkload->setUp(*Ctx);
    for (int I = 0; I != Iterations; ++I)
      TheWorkload->runIteration(*Ctx);
    TheVm->collectNow();
  }

  ~LeakRun() { TheWorkload->tearDown(*Ctx); }
};

/// True if some step of \p V's path has the given type name.
bool pathContains(const Violation &V, const char *TypeName) {
  for (const PathStep &Step : V.Path)
    if (Step.TypeName == TypeName)
      return true;
  return false;
}

TEST(PseudoJbbLeakTest, OrderTableLeakReportsFigure1Path) {
  LeakRun Run("pseudojbb-ordertable-leak");

  ASSERT_GT(Run.Sink.countOf(AssertionKind::Dead), 0u)
      << "the un-removed Orders must be reported";
  const Violation &V = Run.Sink.violations().front();
  EXPECT_EQ(V.Kind, AssertionKind::Dead);
  EXPECT_EQ(V.ObjectType, "Lspec/jbb/Order;");

  // The Figure 1 path: Company -> ... -> Warehouse -> ... -> District ->
  // longBTree -> longBTreeNode -> [Ljava/lang/Object; -> Order.
  EXPECT_TRUE(pathContains(V, "Lspec/jbb/Company;"));
  EXPECT_TRUE(pathContains(V, "Lspec/jbb/Warehouse;"));
  EXPECT_TRUE(pathContains(V, "Lspec/jbb/District;"));
  EXPECT_TRUE(pathContains(V, "Lspec/jbb/infra/Collections/longBTree;"));
  EXPECT_TRUE(pathContains(V, "Lspec/jbb/infra/Collections/longBTreeNode;"));
  EXPECT_TRUE(pathContains(V, "[Ljava/lang/Object;"));
  EXPECT_EQ(V.Path.back().TypeName, "Lspec/jbb/Order;");
  EXPECT_FALSE(V.PathFromOwner) << "path must start at a root, like Fig. 1";
}

TEST(PseudoJbbLeakTest, CustomerLeakPathRunsThroughCustomer) {
  LeakRun Run("pseudojbb-customer-leak");

  ASSERT_GT(Run.Sink.countOf(AssertionKind::Dead), 0u);
  const Violation &V = Run.Sink.violations().front();
  EXPECT_EQ(V.ObjectType, "Lspec/jbb/Order;");
  // §3.2.1: "dead Order objects are reachable from Customer objects".
  EXPECT_TRUE(pathContains(V, "Lspec/jbb/Customer;"));
  // The retaining edge is the lastOrder field.
  EXPECT_EQ(V.Path.back().FieldName, "lastOrder");
}

TEST(PseudoJbbLeakTest, CustomerLeakBoundedByCustomerCount) {
  // Each Customer retains at most one Order (lastOrder), so reports per GC
  // are bounded by the number of customers — the leak is small but real.
  LeakRun Run("pseudojbb-customer-leak");
  EXPECT_LE(Run.Sink.countOf(AssertionKind::Dead), 60u);
  EXPECT_GE(Run.Sink.countOf(AssertionKind::Dead), 1u);
}

TEST(PseudoJbbLeakTest, DragReportsSecondCompany) {
  LeakRun Run("pseudojbb-drag", /*Iterations=*/2);

  ASSERT_GT(Run.Sink.countOf(AssertionKind::Instances), 0u)
      << "two Companies must be live while oldCompany is held";
  const Violation *InstancesViolation = nullptr;
  for (const Violation &V : Run.Sink.violations())
    if (V.Kind == AssertionKind::Instances) {
      InstancesViolation = &V;
      break;
    }
  ASSERT_NE(InstancesViolation, nullptr);
  EXPECT_EQ(InstancesViolation->ObjectType, "Lspec/jbb/Company;");
  EXPECT_NE(InstancesViolation->Message.find("2 live instances"),
            std::string::npos);
}

TEST(PseudoJbbLeakTest, CorrectVariantIsClean) {
  LeakRun Run("pseudojbb", /*Iterations=*/2);
  EXPECT_TRUE(Run.Sink.violations().empty())
      << Run.Sink.violations().front().Message;
}

TEST(LusearchTest, ThirtyTwoSearchersReported) {
  LeakRun Run("lusearch");

  ASSERT_GT(Run.Sink.countOf(AssertionKind::Instances), 0u);
  const Violation &V = Run.Sink.violations().front();
  EXPECT_EQ(V.ObjectType, "Lorg/apache/lucene/search/IndexSearcher;");
  // §3.2.2: "for most of the benchmark's execution, 32 instances of
  // IndexSearcher are live, one for each thread performing searches".
  EXPECT_NE(V.Message.find("32 live instances"), std::string::npos);
}

} // namespace
