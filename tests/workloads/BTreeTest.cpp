//===- BTreeTest.cpp - managed B+ tree unit tests -----------------------------===//

#include "common/TestGraph.h"
#include "gcassert/support/Random.h"
#include "gcassert/workloads/BTree.h"

#include <gtest/gtest.h>

#include <map>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

class BTreeTest : public ::testing::TestWithParam<CollectorKind> {
protected:
  BTreeTest() : TheVm(makeConfig()) {}

  VmConfig makeConfig() {
    VmConfig Config;
    Config.HeapBytes = 16u << 20;
    Config.Collector = GetParam();
    return Config;
  }

  /// Allocates a handle-rooted Node value with the given payload.
  Local newValue(HandleScope &Scope, int64_t Payload) {
    return Scope.handle(newNode(TheVm, TheVm.mainThread(), Payload));
  }

  int64_t payloadOf(ObjRef Value) {
    const GraphTypes &G = GraphTypes::ensure(TheVm.types());
    return Value->getScalar<int64_t>(G.FieldValue);
  }

  Vm TheVm;
};

TEST_P(BTreeTest, EmptyTree) {
  ManagedBTree Tree(TheVm, TheVm.mainThread());
  EXPECT_EQ(Tree.size(), 0u);
  EXPECT_EQ(Tree.find(42), nullptr);
  EXPECT_EQ(Tree.minValue(), nullptr);
  EXPECT_FALSE(Tree.erase(42));
}

TEST_P(BTreeTest, InsertAndFind) {
  ManagedBTree Tree(TheVm, TheVm.mainThread());
  HandleScope Scope(TheVm.mainThread());
  for (int64_t Key = 0; Key < 100; ++Key)
    Tree.insert(Key * 3, newValue(Scope, Key));

  EXPECT_EQ(Tree.size(), 100u);
  for (int64_t Key = 0; Key < 100; ++Key) {
    ObjRef Value = Tree.find(Key * 3);
    ASSERT_NE(Value, nullptr) << "key " << Key * 3;
    EXPECT_EQ(payloadOf(Value), Key);
    EXPECT_EQ(Tree.find(Key * 3 + 1), nullptr);
  }
}

TEST_P(BTreeTest, DuplicateInsertOverwrites) {
  ManagedBTree Tree(TheVm, TheVm.mainThread());
  HandleScope Scope(TheVm.mainThread());
  Tree.insert(7, newValue(Scope, 1));
  Tree.insert(7, newValue(Scope, 2));
  EXPECT_EQ(Tree.size(), 1u);
  EXPECT_EQ(payloadOf(Tree.find(7)), 2);
}

TEST_P(BTreeTest, SplitsPreserveOrder) {
  // More than MaxKeys^2 entries forces multi-level splits.
  ManagedBTree Tree(TheVm, TheVm.mainThread());
  HandleScope Scope(TheVm.mainThread());
  const int64_t N = 400;
  for (int64_t Key = N - 1; Key >= 0; --Key) // Descending insertion.
    Tree.insert(Key, newValue(Scope, Key));

  EXPECT_EQ(Tree.size(), static_cast<uint64_t>(N));
  int64_t Expected = 0;
  Tree.forEach([&](int64_t Key, ObjRef Value) {
    EXPECT_EQ(Key, Expected);
    EXPECT_EQ(payloadOf(Value), Expected);
    ++Expected;
  });
  EXPECT_EQ(Expected, N);
}

TEST_P(BTreeTest, MinValue) {
  ManagedBTree Tree(TheVm, TheVm.mainThread());
  HandleScope Scope(TheVm.mainThread());
  Tree.insert(50, newValue(Scope, 50));
  Tree.insert(10, newValue(Scope, 10));
  Tree.insert(90, newValue(Scope, 90));

  int64_t Key = 0;
  ObjRef Value = Tree.minValue(&Key);
  ASSERT_NE(Value, nullptr);
  EXPECT_EQ(Key, 10);
  EXPECT_EQ(payloadOf(Value), 10);
}

TEST_P(BTreeTest, EraseRemoves) {
  ManagedBTree Tree(TheVm, TheVm.mainThread());
  HandleScope Scope(TheVm.mainThread());
  for (int64_t Key = 0; Key < 200; ++Key)
    Tree.insert(Key, newValue(Scope, Key));

  for (int64_t Key = 0; Key < 200; Key += 2)
    EXPECT_TRUE(Tree.erase(Key));
  EXPECT_EQ(Tree.size(), 100u);
  for (int64_t Key = 0; Key < 200; ++Key)
    EXPECT_EQ(Tree.find(Key) != nullptr, Key % 2 == 1) << "key " << Key;
  EXPECT_FALSE(Tree.erase(0)) << "already erased";
}

TEST_P(BTreeTest, MinAfterErasingLeadingKeys) {
  // Lazy deletion leaves empty leading leaves; minValue must skip them.
  ManagedBTree Tree(TheVm, TheVm.mainThread());
  HandleScope Scope(TheVm.mainThread());
  for (int64_t Key = 0; Key < 100; ++Key)
    Tree.insert(Key, newValue(Scope, Key));
  for (int64_t Key = 0; Key < 60; ++Key)
    EXPECT_TRUE(Tree.erase(Key));

  int64_t Key = 0;
  ObjRef Value = Tree.minValue(&Key);
  ASSERT_NE(Value, nullptr);
  EXPECT_EQ(Key, 60);
}

TEST_P(BTreeTest, ValuesSurviveCollection) {
  ManagedBTree Tree(TheVm, TheVm.mainThread());
  HandleScope Scope(TheVm.mainThread());
  for (int64_t Key = 0; Key < 300; ++Key)
    Tree.insert(Key, newValue(Scope, Key * 11));
  // Drop the construction handles: the tree's global root keeps it alive.
  TheVm.mainThread().truncateHandles(0);

  TheVm.collectNow();
  TheVm.collectNow();

  EXPECT_EQ(Tree.size(), 300u);
  for (int64_t Key = 0; Key < 300; Key += 17)
    EXPECT_EQ(payloadOf(Tree.find(Key)), Key * 11);
}

TEST_P(BTreeTest, TreeIsGarbageOnceHandleDies) {
  {
    ManagedBTree Tree(TheVm, TheVm.mainThread());
    HandleScope Scope(TheVm.mainThread());
    for (int64_t Key = 0; Key < 50; ++Key)
      Tree.insert(Key, newValue(Scope, Key));
  } // ~ManagedBTree removes the global root.
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST_P(BTreeTest, MatchesReferenceMapUnderRandomOps) {
  // Property test: the managed tree agrees with std::map under a random
  // insert/find/erase mix, with periodic collections in between.
  ManagedBTree Tree(TheVm, TheVm.mainThread());
  HandleScope Scope(TheVm.mainThread());
  std::map<int64_t, int64_t> Reference;
  SplitMix64 Rng(GetParam() == CollectorKind::MarkSweep ? 101 : 202);

  for (int Op = 0; Op < 4000; ++Op) {
    int64_t Key = static_cast<int64_t>(Rng.nextBelow(500));
    switch (Rng.nextBelow(3)) {
    case 0: { // insert
      int64_t Payload = static_cast<int64_t>(Rng.next() >> 1);
      Tree.insert(Key, newValue(Scope, Payload));
      Reference[Key] = Payload;
      break;
    }
    case 1: { // find
      ObjRef Value = Tree.find(Key);
      auto It = Reference.find(Key);
      ASSERT_EQ(Value != nullptr, It != Reference.end()) << "key " << Key;
      if (Value) {
        ASSERT_EQ(payloadOf(Value), It->second);
      }
      break;
    }
    case 2: { // erase
      bool Erased = Tree.erase(Key);
      ASSERT_EQ(Erased, Reference.erase(Key) == 1) << "key " << Key;
      break;
    }
    }
    if (Op % 512 == 511) {
      TheVm.mainThread().truncateHandles(0); // Values live via the tree.
      TheVm.collectNow();
    }
  }

  ASSERT_EQ(Tree.size(), Reference.size());
  auto It = Reference.begin();
  Tree.forEach([&](int64_t Key, ObjRef Value) {
    ASSERT_NE(It, Reference.end());
    EXPECT_EQ(Key, It->first);
    EXPECT_EQ(payloadOf(Value), It->second);
    ++It;
  });
  EXPECT_EQ(It, Reference.end());
}

TEST_P(BTreeTest, TwoTreesShareTypes) {
  ManagedBTree A(TheVm, TheVm.mainThread());
  ManagedBTree B(TheVm, TheVm.mainThread());
  HandleScope Scope(TheVm.mainThread());
  A.insert(1, newValue(Scope, 100));
  B.insert(1, newValue(Scope, 200));
  EXPECT_EQ(payloadOf(A.find(1)), 100);
  EXPECT_EQ(payloadOf(B.find(1)), 200);
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, BTreeTest,
                         ::testing::Values(CollectorKind::MarkSweep,
                                           CollectorKind::SemiSpace,
                                           CollectorKind::MarkCompact),
                         [](const ::testing::TestParamInfo<CollectorKind> &I) {
                           return std::string(collectorName(I.param));
                         });

} // namespace
