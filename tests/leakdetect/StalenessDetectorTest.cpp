//===- StalenessDetectorTest.cpp - leakdetect/StalenessDetector tests ---------===//

#include "common/TestGraph.h"
#include "gcassert/leakdetect/StalenessDetector.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig smallVm() {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  return Config;
}

TEST(StalenessDetectorTest, FreshObjectsNotStale) {
  Vm TheVm(smallVm());
  StalenessDetector Detector(TheVm);
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Scope.handle(newNode(TheVm, T));

  TheVm.collectNow();
  EXPECT_TRUE(Detector.scan(1).empty());
}

TEST(StalenessDetectorTest, UntouchedObjectsAgeOut) {
  Vm TheVm(smallVm());
  StalenessDetector Detector(TheVm);
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Idle = Scope.handle(newNode(TheVm, T, 1));
  Local Busy = Scope.handle(newNode(TheVm, T, 2));

  for (int Tick = 0; Tick < 5; ++Tick) {
    Detector.tick();
    Detector.touch(Busy.get());
  }
  TheVm.collectNow();

  std::vector<StaleCandidate> Stale = Detector.scan(3);
  ASSERT_EQ(Stale.size(), 1u);
  EXPECT_EQ(Stale[0].Obj, Idle.get());
  EXPECT_GE(Stale[0].Age, 3u);
  EXPECT_EQ(Stale[0].TypeName, "LNode;");
}

TEST(StalenessDetectorTest, TouchResetsAge) {
  Vm TheVm(smallVm());
  StalenessDetector Detector(TheVm);
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Obj = Scope.handle(newNode(TheVm, T));

  Detector.tick();
  Detector.tick();
  Detector.touch(Obj.get());
  Detector.tick();
  TheVm.collectNow();
  EXPECT_TRUE(Detector.scan(2).empty()) << "age is 1 after the touch";
  EXPECT_EQ(Detector.scan(1).size(), 1u);
}

TEST(StalenessDetectorTest, DeadObjectsPruned) {
  Vm TheVm(smallVm());
  StalenessDetector Detector(TheVm);
  MutatorThread &T = TheVm.mainThread();
  for (int I = 0; I < 100; ++I)
    newNode(TheVm, T); // Garbage.
  Detector.tick();
  Detector.tick();

  TheVm.collectNow(); // Everything dies.
  EXPECT_TRUE(Detector.scan(1).empty())
      << "dead objects are not leak candidates";
}

TEST(StalenessDetectorTest, FalsePositiveOnRarelyUsedData) {
  // The paper's core criticism of staleness heuristics: rarely-read but
  // needed data is indistinguishable from a leak.
  Vm TheVm(smallVm());
  StalenessDetector Detector(TheVm);
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Config = Scope.handle(newNode(TheVm, T, 42)); // Needed forever.

  for (int Tick = 0; Tick < 10; ++Tick)
    Detector.tick();
  TheVm.collectNow();

  std::vector<StaleCandidate> Stale = Detector.scan(5);
  ASSERT_EQ(Stale.size(), 1u) << "the needed object is (wrongly) suspected";
  EXPECT_EQ(Stale[0].Obj, Config.get());
}

TEST(StalenessDetectorDeathTest, RequiresNonMovingCollector) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::SemiSpace;
  Vm TheVm(Config);
  EXPECT_DEATH(StalenessDetector Detector(TheVm), "non-moving");
}

} // namespace
