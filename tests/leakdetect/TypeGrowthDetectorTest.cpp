//===- TypeGrowthDetectorTest.cpp - leakdetect/TypeGrowthDetector tests -------===//

#include "common/TestGraph.h"
#include "gcassert/leakdetect/TypeGrowthDetector.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig smallVm() {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  return Config;
}

TEST(TypeGrowthDetectorTest, StableHeapNotReported) {
  Vm TheVm(smallVm());
  TypeGrowthDetector Detector(TheVm);
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Scope.handle(newNode(TheVm, T));

  for (int I = 0; I < 5; ++I) {
    TheVm.collectNow();
    Detector.snapshot();
  }
  EXPECT_TRUE(Detector.report(2).empty());
}

TEST(TypeGrowthDetectorTest, MonotonicGrowthReported) {
  Vm TheVm(smallVm());
  TypeGrowthDetector Detector(TheVm);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Head = Scope.handle();

  for (int Epoch = 0; Epoch < 4; ++Epoch) {
    for (int I = 0; I < 50; ++I) { // The "leak": the list keeps growing.
      ObjRef NewNode = newNode(TheVm, T);
      NewNode->setRef(G.FieldA, Head.get());
      Head.set(NewNode);
    }
    TheVm.collectNow();
    Detector.snapshot();
  }

  std::vector<GrowthCandidate> Report = Detector.report(3);
  ASSERT_EQ(Report.size(), 1u);
  EXPECT_EQ(Report[0].TypeName, "LNode;");
  EXPECT_GE(Report[0].ConsecutiveGrowth, 3u);
  EXPECT_GT(Report[0].CurrentBytes, 0u);
}

TEST(TypeGrowthDetectorTest, ShrinkingResetsStreak) {
  Vm TheVm(smallVm());
  TypeGrowthDetector Detector(TheVm);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Head = Scope.handle();

  // Grow for two snapshots...
  for (int Epoch = 0; Epoch < 2; ++Epoch) {
    for (int I = 0; I < 50; ++I) {
      ObjRef NewNode = newNode(TheVm, T);
      NewNode->setRef(G.FieldA, Head.get());
      Head.set(NewNode);
    }
    TheVm.collectNow();
    Detector.snapshot();
  }
  // ...then release everything.
  Head.set(nullptr);
  TheVm.collectNow();
  Detector.snapshot();

  EXPECT_TRUE(Detector.report(2).empty()) << "streak reset on shrink";
}

TEST(TypeGrowthDetectorTest, ReportsTypesNotInstances) {
  // The granularity gap the paper emphasizes: one growing type with many
  // innocent instances yields a single type-level report.
  Vm TheVm(smallVm());
  TypeGrowthDetector Detector(TheVm);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  HandleScope Scope(T);
  Local Keep = Scope.handle(TheVm.allocate(T, G.Array, 4096));

  uint64_t Next = 0;
  for (int Epoch = 0; Epoch < 4; ++Epoch) {
    for (int I = 0; I < 30; ++I)
      Keep.get()->setElement(Next++, newNode(TheVm, T));
    TheVm.collectNow();
    Detector.snapshot();
  }

  std::vector<GrowthCandidate> Report = Detector.report(3);
  ASSERT_EQ(Report.size(), 1u);
  EXPECT_EQ(Report[0].TypeName, "LNode;");
}

TEST(TypeGrowthDetectorTest, SnapshotCount) {
  Vm TheVm(smallVm());
  TypeGrowthDetector Detector(TheVm);
  EXPECT_EQ(Detector.snapshotCount(), 0u);
  Detector.snapshot();
  Detector.snapshot();
  EXPECT_EQ(Detector.snapshotCount(), 2u);
}

} // namespace
