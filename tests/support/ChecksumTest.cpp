//===- ChecksumTest.cpp - support/Checksum unit tests ------------------------===//

#include "gcassert/support/Checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

using namespace gcassert;

// The canonical CRC-32C check value: every conforming Castagnoli
// implementation maps the ASCII digits "123456789" to 0xE3069283
// (RFC 3720 appendix B.4, and the value the SSE4.2 crc32 instruction
// family produces).
TEST(Crc32cTest, Rfc3720CheckValue) {
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(crc32c("", 0), 0u);
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, SingleByteVector) {
  EXPECT_EQ(crc32c("a", 1), 0xC1D04330u);
}

// Chaining through the Seed parameter must be equivalent to one pass over
// the concatenation — the hardened heap checksums headers piecewise.
TEST(Crc32cTest, SeedChainingMatchesOnePass) {
  const char *Full = "hello world";
  uint32_t OnePass = crc32c(Full, std::strlen(Full));
  uint32_t First = crc32c("hello ", 6);
  EXPECT_EQ(crc32c("world", 5, First), OnePass);
  EXPECT_EQ(OnePass, 0xC99465AAu);

  // Chaining is associative at every split point, not just one.
  std::string S(Full);
  for (size_t Split = 0; Split <= S.size(); ++Split) {
    uint32_t Head = crc32c(S.data(), Split);
    EXPECT_EQ(crc32c(S.data() + Split, S.size() - Split, Head), OnePass);
  }
}

TEST(Crc32cTest, SensitiveToEveryByte) {
  uint8_t Buf[16] = {0};
  uint32_t Base = crc32c(Buf, sizeof(Buf));
  for (size_t I = 0; I < sizeof(Buf); ++I) {
    Buf[I] = 1;
    EXPECT_NE(crc32c(Buf, sizeof(Buf)), Base) << "byte " << I;
    Buf[I] = 0;
  }
}

TEST(FoldChecksum16Test, XorsHalves) {
  EXPECT_EQ(foldChecksum16(0x12345678u), 0x444Cu);
  EXPECT_EQ(foldChecksum16(0), 0u);
  EXPECT_EQ(foldChecksum16(0xFFFF0000u), 0xFFFFu);
  EXPECT_EQ(foldChecksum16(0xABCDABCDu), 0u); // Equal halves cancel.
}

// The object-header domain: (type id, logical length) pairs. Pinned values
// guard the on-disk/on-header format — a table or polynomial change would
// silently invalidate every hardened header in a mixed-version heap dump.
TEST(Checksum16PairTest, PinnedHeaderVectors) {
  EXPECT_EQ(checksum16Pair(7, 99), 0xC17Eu);
  EXPECT_EQ(checksum16Pair(7, 100), 0x3E23u);
  EXPECT_NE(checksum16Pair(8, 99), checksum16Pair(7, 99));
}

TEST(Checksum16PairTest, MatchesManualComposition) {
  uint32_t A = 31;
  uint64_t B = 0xDEADBEEFCAFEULL;
  uint8_t Buf[12];
  std::memcpy(Buf, &A, 4);
  std::memcpy(Buf + 4, &B, 8);
  EXPECT_EQ(checksum16Pair(A, B), foldChecksum16(crc32c(Buf, sizeof(Buf))));
}
