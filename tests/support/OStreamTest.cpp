//===- OStreamTest.cpp - support/OStream unit tests ---------------------------===//

#include "gcassert/support/OStream.h"

#include <gtest/gtest.h>

using namespace gcassert;

TEST(StringOStreamTest, Strings) {
  StringOStream S;
  S << "hello" << ' ' << std::string("world");
  EXPECT_EQ(S.str(), "hello world");
}

TEST(StringOStreamTest, Integers) {
  StringOStream S;
  S << int64_t(-42) << '/' << uint64_t(42) << '/' << int32_t(7)
    << '/' << uint32_t(8);
  EXPECT_EQ(S.str(), "-42/42/7/8");
}

TEST(StringOStreamTest, Bool) {
  StringOStream S;
  S << true << ' ' << false;
  EXPECT_EQ(S.str(), "true false");
}

TEST(StringOStreamTest, Double) {
  StringOStream S;
  S << 2.5;
  EXPECT_EQ(S.str(), "2.5");
}

TEST(StringOStreamTest, Pointer) {
  StringOStream S;
  S << static_cast<const void *>(nullptr);
  EXPECT_FALSE(S.str().empty());
}

TEST(StringOStreamTest, Clear) {
  StringOStream S;
  S << "abc";
  S.clear();
  EXPECT_EQ(S.str(), "");
  S << "def";
  EXPECT_EQ(S.str(), "def");
}

TEST(OStreamTest, GlobalStreamsExist) {
  // Smoke test: the process-wide streams are usable.
  outs().flush();
  errs().flush();
}
