//===- WorkerPoolTest.cpp - support/WorkerPool unit tests --------------------===//

#include "gcassert/support/WorkerPool.h"

#include "gcassert/support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace gcassert;

namespace {

class WorkerPoolTest : public ::testing::Test {
protected:
  void TearDown() override { disarmAllFailpoints(); }
};

} // namespace

TEST_F(WorkerPoolTest, SingleWorkerRunsOnCallerThread) {
  WorkerPool Pool(1);
  EXPECT_EQ(Pool.workerCount(), 1u);
  EXPECT_EQ(Pool.spawnFailures(), 0u);

  std::thread::id Caller = std::this_thread::get_id();
  unsigned Calls = 0;
  Pool.run([&](unsigned Worker) {
    EXPECT_EQ(Worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1u);
}

TEST_F(WorkerPoolTest, EveryWorkerIndexRunsExactlyOnce) {
  WorkerPool Pool(4);
  ASSERT_EQ(Pool.workerCount(), 4u);

  std::mutex M;
  std::multiset<unsigned> Indices;
  Pool.run([&](unsigned Worker) {
    std::lock_guard<std::mutex> Lock(M);
    Indices.insert(Worker);
  });
  EXPECT_EQ(Indices, (std::multiset<unsigned>{0, 1, 2, 3}));
}

// The pool parks threads between cycles: repeated fork-joins must reuse
// them, and plain memory written by one run() must be visible to the next
// (the GC writes mark bits in cycle N and reads them in cycle N+1).
TEST_F(WorkerPoolTest, ForkJoinReusesParkedThreads) {
  WorkerPool Pool(3);
  ASSERT_EQ(Pool.workerCount(), 3u);

  std::vector<uint64_t> PerWorker(3, 0);
  for (int Cycle = 0; Cycle < 50; ++Cycle) {
    Pool.run([&](unsigned Worker) { PerWorker[Worker] += Worker + 1; });
    // run() returned, so every worker's write is visible here.
    for (unsigned W = 0; W < 3; ++W)
      ASSERT_EQ(PerWorker[W], static_cast<uint64_t>(W + 1) * (Cycle + 1));
  }
}

TEST_F(WorkerPoolTest, WorkersRunConcurrently) {
  WorkerPool Pool(3);
  ASSERT_EQ(Pool.workerCount(), 3u);

  // Barrier inside the job: it can only be passed if all three workers are
  // inside run() at the same time.
  std::atomic<unsigned> Arrived{0};
  Pool.run([&](unsigned) {
    Arrived.fetch_add(1);
    while (Arrived.load() < 3)
      std::this_thread::yield();
  });
  EXPECT_EQ(Arrived.load(), 3u);
}

// A spawn failure must shrink the pool with contiguous indices, not abort
// or leave index holes: the parallel tracer indexes per-worker deques by
// worker id.
TEST_F(WorkerPoolTest, SpawnFailureShrinksPool) {
  faults::GcWorkerStart.armAlways();
  WorkerPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 1u);
  EXPECT_EQ(Pool.spawnFailures(), 3u);

  unsigned Calls = 0;
  Pool.run([&](unsigned Worker) {
    EXPECT_EQ(Worker, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1u);
}

TEST_F(WorkerPoolTest, PartialSpawnFailureKeepsIndicesContiguous) {
  // Fail the first spawn only: the pool should still reach 3 of 4 workers
  // with ids 0..2.
  faults::GcWorkerStart.armOnce();
  WorkerPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 3u);
  EXPECT_EQ(Pool.spawnFailures(), 1u);

  std::mutex M;
  std::set<unsigned> Indices;
  Pool.run([&](unsigned Worker) {
    std::lock_guard<std::mutex> Lock(M);
    Indices.insert(Worker);
  });
  EXPECT_EQ(Indices, (std::set<unsigned>{0, 1, 2}));
}

TEST_F(WorkerPoolTest, ZeroWorkerRequestClampsToOne) {
  WorkerPool Pool(0);
  EXPECT_EQ(Pool.workerCount(), 1u);
}
