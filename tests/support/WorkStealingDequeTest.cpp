//===- WorkStealingDequeTest.cpp - support/WorkStealingDeque tests -----------===//

#include "gcassert/support/WorkStealingDeque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace gcassert;

TEST(WorkStealingDequeTest, StartsEmpty) {
  WorkStealingDeque D;
  uintptr_t V;
  EXPECT_TRUE(D.empty());
  EXPECT_FALSE(D.pop(V));
  EXPECT_FALSE(D.steal(V));
}

TEST(WorkStealingDequeTest, OwnerPopsLifo) {
  WorkStealingDeque D;
  for (uintptr_t I = 1; I <= 5; ++I)
    D.push(I);
  uintptr_t V;
  for (uintptr_t Expected = 5; Expected >= 1; --Expected) {
    ASSERT_TRUE(D.pop(V));
    EXPECT_EQ(V, Expected);
  }
  EXPECT_FALSE(D.pop(V));
  EXPECT_TRUE(D.empty());
}

TEST(WorkStealingDequeTest, ThiefStealsFifo) {
  WorkStealingDeque D;
  for (uintptr_t I = 1; I <= 5; ++I)
    D.push(I);
  uintptr_t V;
  for (uintptr_t Expected = 1; Expected <= 5; ++Expected) {
    ASSERT_TRUE(D.steal(V));
    EXPECT_EQ(V, Expected);
  }
  EXPECT_FALSE(D.steal(V));
}

TEST(WorkStealingDequeTest, PopAfterEmptyRestoresCanonicalState) {
  WorkStealingDeque D;
  uintptr_t V;
  EXPECT_FALSE(D.pop(V));
  // The failed pop decrements and restores Bottom; a subsequent push/pop
  // round-trip must still work.
  D.push(42);
  ASSERT_TRUE(D.pop(V));
  EXPECT_EQ(V, 42u);
  EXPECT_TRUE(D.empty());
}

TEST(WorkStealingDequeTest, GrowsPastInitialCapacity) {
  WorkStealingDeque D(/*InitialCapacity=*/16);
  const uintptr_t N = 1000; // Forces several doublings.
  for (uintptr_t I = 0; I < N; ++I)
    D.push(I);
  uintptr_t V;
  for (uintptr_t Expected = N; Expected-- > 0;) {
    ASSERT_TRUE(D.pop(V));
    EXPECT_EQ(V, Expected);
  }
  EXPECT_FALSE(D.pop(V));
  D.reset(); // Frees the retired buffers; the deque stays usable.
  D.push(7);
  ASSERT_TRUE(D.pop(V));
  EXPECT_EQ(V, 7u);
}

TEST(WorkStealingDequeTest, GrowthPreservesPendingEntriesForThieves) {
  WorkStealingDeque D(/*InitialCapacity=*/16);
  for (uintptr_t I = 0; I < 100; ++I)
    D.push(I);
  // Steal everything after growth: oldest-first order must survive the
  // buffer copies.
  uintptr_t V;
  for (uintptr_t Expected = 0; Expected < 100; ++Expected) {
    ASSERT_TRUE(D.steal(V));
    EXPECT_EQ(V, Expected);
  }
}

TEST(WorkStealingDequeTest, MixedPopAndStealPartitionTheEntries) {
  WorkStealingDeque D;
  for (uintptr_t I = 1; I <= 10; ++I)
    D.push(I);
  std::set<uintptr_t> Seen;
  uintptr_t V;
  for (int I = 0; I < 5; ++I) {
    ASSERT_TRUE(D.pop(V));
    EXPECT_TRUE(Seen.insert(V).second);
    ASSERT_TRUE(D.steal(V));
    EXPECT_TRUE(Seen.insert(V).second);
  }
  EXPECT_EQ(Seen.size(), 10u);
  EXPECT_TRUE(D.empty());
}

// Concurrent conservation: one owner pushing and popping, several thieves
// stealing; every pushed value is consumed exactly once.
TEST(WorkStealingDequeTest, ConcurrentStealConservesEntries) {
  WorkStealingDeque D(/*InitialCapacity=*/16);
  constexpr uintptr_t N = 20000;
  constexpr int Thieves = 3;

  std::atomic<bool> Done{false};
  std::atomic<uint64_t> StolenSum{0};
  std::atomic<uint64_t> StolenCount{0};

  std::vector<std::thread> Threads;
  for (int T = 0; T < Thieves; ++T) {
    Threads.emplace_back([&] {
      uintptr_t V;
      while (!Done.load(std::memory_order_acquire) || !D.empty()) {
        if (D.steal(V)) {
          StolenSum.fetch_add(V, std::memory_order_relaxed);
          StolenCount.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  uint64_t PoppedSum = 0, PoppedCount = 0;
  for (uintptr_t I = 1; I <= N; ++I) {
    D.push(I);
    if (I % 3 == 0) {
      uintptr_t V;
      if (D.pop(V)) {
        PoppedSum += V;
        PoppedCount += 1;
      }
    }
  }
  uintptr_t V;
  while (D.pop(V)) {
    PoppedSum += V;
    PoppedCount += 1;
  }
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  // Late drain: thieves may have exited while the owner still held items.
  while (D.pop(V)) {
    PoppedSum += V;
    PoppedCount += 1;
  }

  EXPECT_EQ(PoppedCount + StolenCount.load(), N);
  EXPECT_EQ(PoppedSum + StolenSum.load(), N * (N + 1) / 2);
  EXPECT_TRUE(D.empty());
}
