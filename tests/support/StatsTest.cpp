//===- StatsTest.cpp - support/Stats unit tests ------------------------------===//

#include "gcassert/support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace gcassert;

TEST(SampleSetTest, MeanOfConstantSamples) {
  SampleSet S;
  for (int I = 0; I < 10; ++I)
    S.add(4.0);
  EXPECT_DOUBLE_EQ(S.mean(), 4.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(S.confidence90(), 0.0);
}

TEST(SampleSetTest, MeanAndStddevKnownValues) {
  SampleSet S;
  for (double V : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(V);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  // Sample (n-1) standard deviation of this classic data set.
  EXPECT_NEAR(S.stddev(), 2.138, 1e-3);
}

TEST(SampleSetTest, MinMax) {
  SampleSet S;
  S.add(3.0);
  S.add(-1.0);
  S.add(7.5);
  EXPECT_DOUBLE_EQ(S.min(), -1.0);
  EXPECT_DOUBLE_EQ(S.max(), 7.5);
}

TEST(SampleSetTest, Confidence90TwoSamples) {
  SampleSet S;
  S.add(1.0);
  S.add(3.0);
  // n=2: stddev = sqrt(2), CI half-width = t(1) * stddev / sqrt(2)
  //     = 6.314 * sqrt(2) / sqrt(2) = 6.314.
  EXPECT_NEAR(S.confidence90(), 6.314, 1e-3);
}

TEST(SampleSetTest, ConfidenceShrinksWithSamples) {
  SampleSet Small, Large;
  for (int I = 0; I < 5; ++I)
    Small.add(I % 2 ? 10.0 : 12.0);
  for (int I = 0; I < 50; ++I)
    Large.add(I % 2 ? 10.0 : 12.0);
  EXPECT_GT(Small.confidence90(), Large.confidence90());
}

TEST(GeometricMeanTest, SingleValue) {
  EXPECT_DOUBLE_EQ(geometricMean({7.0}), 7.0);
}

TEST(GeometricMeanTest, KnownValues) {
  EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometricMean({1.0, 1.0, 8.0}), 2.0, 1e-12);
}

TEST(GeometricMeanTest, BelowArithmeticMean) {
  std::vector<double> Values = {1.0, 2.0, 3.0, 10.0};
  double Arith = (1.0 + 2.0 + 3.0 + 10.0) / 4.0;
  EXPECT_LT(geometricMean(Values), Arith);
}

TEST(StudentTTest, TableValues) {
  EXPECT_DOUBLE_EQ(studentT90(1), 6.314);
  EXPECT_DOUBLE_EQ(studentT90(10), 1.812);
  EXPECT_DOUBLE_EQ(studentT90(19), 1.729); // 20 trials, the paper's count.
  EXPECT_DOUBLE_EQ(studentT90(30), 1.697);
  EXPECT_DOUBLE_EQ(studentT90(1000), 1.645);
}

TEST(StudentTTest, MonotonicallyDecreasing) {
  for (size_t Df = 1; Df < 200; ++Df)
    EXPECT_GE(studentT90(Df), studentT90(Df + 1)) << "df=" << Df;
}
