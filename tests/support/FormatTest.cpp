//===- FormatTest.cpp - support/Format unit tests ----------------------------===//

#include "gcassert/support/Format.h"

#include <gtest/gtest.h>

using namespace gcassert;

TEST(FormatTest, PlainString) { EXPECT_EQ(format("hello"), "hello"); }

TEST(FormatTest, Integers) {
  EXPECT_EQ(format("%d + %d = %d", 2, 3, 5), "2 + 3 = 5");
  EXPECT_EQ(format("%u", 4000000000u), "4000000000");
}

TEST(FormatTest, Strings) {
  EXPECT_EQ(format("type %s limit %u", "LOrder;", 3u), "type LOrder; limit 3");
}

TEST(FormatTest, Floats) {
  EXPECT_EQ(format("%.2f%%", 2.746), "2.75%");
}

TEST(FormatTest, EmptyResult) { EXPECT_EQ(format("%s", ""), ""); }

TEST(FormatTest, LongOutput) {
  std::string Long(1000, 'x');
  EXPECT_EQ(format("%s", Long.c_str()), Long);
}
