//===- RandomTest.cpp - support/Random unit tests ----------------------------===//

#include "gcassert/support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace gcassert;

TEST(SplitMix64Test, Deterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64Test, SeedsDiffer) {
  SplitMix64 A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(SplitMix64Test, NextBelowInRange) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(Rng.nextBelow(13), 13u);
}

TEST(SplitMix64Test, NextBelowCoversAllValues) {
  SplitMix64 Rng(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(Rng.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(SplitMix64Test, NextInRangeInclusive) {
  SplitMix64 Rng(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = Rng.nextInRange(5, 7);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 7u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(SplitMix64Test, ChancePercentExtremes) {
  SplitMix64 Rng(9);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.chancePercent(0));
    EXPECT_TRUE(Rng.chancePercent(100));
  }
}

TEST(SplitMix64Test, ChancePercentRoughlyCalibrated) {
  SplitMix64 Rng(123);
  int Hits = 0;
  const int Trials = 20000;
  for (int I = 0; I < Trials; ++I)
    if (Rng.chancePercent(25))
      ++Hits;
  double Rate = static_cast<double>(Hits) / Trials;
  EXPECT_NEAR(Rate, 0.25, 0.02);
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 Rng(77);
  for (int I = 0; I < 10000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}
