//===- RandomTest.cpp - support/Random unit tests ----------------------------===//

#include "gcassert/support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace gcassert;

// Seed-stability regression: the exact output stream is pinned. Replay
// specs ("seed:N:ops=M"), workload schedules, and the differential fuzzer's
// corpus are all keyed on these bits — a SplitMix64 constant tweak or a
// helper reordering would silently re-map every recorded seed, so a change
// here must be treated as a format break, not a refactor.
TEST(SplitMix64Test, SeedZeroStreamIsPinned) {
  SplitMix64 Rng(0);
  EXPECT_EQ(Rng.next(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(Rng.next(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(Rng.next(), 0x06C45D188009454Full);
  EXPECT_EQ(Rng.next(), 0xF88BB8A8724C81ECull);
  EXPECT_EQ(Rng.next(), 0x1B39896A51A8749Bull);
}

TEST(SplitMix64Test, ArbitrarySeedStreamIsPinned) {
  SplitMix64 Rng(0x0123456789ABCDEFull);
  EXPECT_EQ(Rng.next(), 0x157A3807A48FAA9Dull);
  EXPECT_EQ(Rng.next(), 0xD573529B34A1D093ull);
  EXPECT_EQ(Rng.next(), 0x2F90B72E996DCCBEull);
  EXPECT_EQ(Rng.next(), 0xA2D419334C4667ECull);
  EXPECT_EQ(Rng.next(), 0x01404CE914938008ull);
}

// The derived helpers consume exactly one next() each and reduce it with a
// pinned formula (Lemire multiply-shift); their streams are part of the
// same stability contract.
TEST(SplitMix64Test, DerivedHelperStreamsArePinned) {
  SplitMix64 Rng(42);
  const uint64_t Below[6] = {74, 15, 27, 34, 3, 86};
  for (uint64_t Expected : Below)
    EXPECT_EQ(Rng.nextBelow(100), Expected);
  const uint64_t Range[6] = {12, 18, 13, 16, 12, 15};
  for (uint64_t Expected : Range)
    EXPECT_EQ(Rng.nextInRange(10, 20), Expected);
  const bool Chance[8] = {false, false, false, true, true, false, true, false};
  for (bool Expected : Chance)
    EXPECT_EQ(Rng.chancePercent(30), Expected);
  EXPECT_DOUBLE_EQ(Rng.nextDouble(), 0.95732523766158417);
  EXPECT_DOUBLE_EQ(Rng.nextDouble(), 0.073053769103464838);
}

TEST(SplitMix64Test, Deterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64Test, SeedsDiffer) {
  SplitMix64 A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(SplitMix64Test, NextBelowInRange) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(Rng.nextBelow(13), 13u);
}

TEST(SplitMix64Test, NextBelowCoversAllValues) {
  SplitMix64 Rng(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(Rng.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(SplitMix64Test, NextInRangeInclusive) {
  SplitMix64 Rng(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = Rng.nextInRange(5, 7);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 7u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(SplitMix64Test, ChancePercentExtremes) {
  SplitMix64 Rng(9);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.chancePercent(0));
    EXPECT_TRUE(Rng.chancePercent(100));
  }
}

TEST(SplitMix64Test, ChancePercentRoughlyCalibrated) {
  SplitMix64 Rng(123);
  int Hits = 0;
  const int Trials = 20000;
  for (int I = 0; I < Trials; ++I)
    if (Rng.chancePercent(25))
      ++Hits;
  double Rate = static_cast<double>(Hits) / Trials;
  EXPECT_NEAR(Rate, 0.25, 0.02);
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 Rng(77);
  for (int I = 0; I < 10000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}
