//===- StressTest.cpp - randomized whole-system stress tests -------------------===//
//
// Randomized integration stress: a pseudo-random mutator that allocates,
// mutates, roots/unroots, and sprays assertions, interleaved with
// collections under all three collectors. Invariants checked:
//
//   * the heap verifier finds no structural defects after any collection,
//   * the run terminates without crashes or fatal errors,
//   * violations only ever come from assertions this mutator planted.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/heap/HeapVerifier.h"
#include "gcassert/support/Random.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

struct StressParam {
  CollectorKind Collector;
  uint64_t Seed;
};

class StressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(StressTest, RandomMutatorSurvives) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = GetParam().Collector;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  SplitMix64 Rng(GetParam().Seed);

  // A bounded set of long-lived roots the mutator shuffles objects through.
  HandleScope Scope(T);
  std::vector<Local> Roots;
  for (int I = 0; I < 32; ++I)
    Roots.push_back(Scope.handle());

  bool RegionOpen = false;
  uint32_t RefFields[3] = {G.FieldA, G.FieldB, G.FieldC};

  for (int Step = 0; Step < 30000; ++Step) {
    switch (Rng.nextBelow(100)) {
    default: { // Allocate, often linking into a rooted structure.
      ObjRef Fresh = newNode(TheVm, T, Step);
      Local &Root = Roots[Rng.nextBelow(Roots.size())];
      if (Rng.chancePercent(60)) {
        if (ObjRef Holder = Root.get())
          Holder->setRef(RefFields[Rng.nextBelow(3)], Fresh);
      } else {
        Root.set(Fresh);
      }
      break;
    }
    case 80: case 81: case 82: case 83: { // Drop a root.
      Roots[Rng.nextBelow(Roots.size())].set(nullptr);
      break;
    }
    case 84: case 85: case 86: { // Cut a random edge.
      if (ObjRef Holder = Roots[Rng.nextBelow(Roots.size())].get())
        Holder->setRef(RefFields[Rng.nextBelow(3)], nullptr);
      break;
    }
    case 87: case 88: { // Cross-link two rooted structures.
      ObjRef A = Roots[Rng.nextBelow(Roots.size())].get();
      ObjRef B = Roots[Rng.nextBelow(Roots.size())].get();
      if (A && B && A != B)
        A->setRef(RefFields[Rng.nextBelow(3)], B);
      break;
    }
    case 89: case 90: { // Assert something dead (may or may not hold).
      if (ObjRef Obj = Roots[Rng.nextBelow(Roots.size())].get())
        Engine.assertDead(Obj);
      break;
    }
    case 91: { // Assert unshared.
      if (ObjRef Obj = Roots[Rng.nextBelow(Roots.size())].get())
        Engine.assertUnshared(Obj);
      break;
    }
    case 92: case 93: { // Assert ownership between rooted objects.
      ObjRef Owner = Roots[Rng.nextBelow(Roots.size())].get();
      ObjRef Ownee = Roots[Rng.nextBelow(Roots.size())].get();
      if (Owner && Ownee && Owner != Ownee)
        Engine.assertOwnedBy(Owner, Ownee);
      break;
    }
    case 94: { // Toggle a region.
      if (RegionOpen)
        Engine.assertAllDead(T);
      else
        Engine.startRegion(T);
      RegionOpen = !RegionOpen;
      break;
    }
    case 95: { // Track instances with a random limit.
      Engine.assertInstances(G.Node, static_cast<uint32_t>(Rng.nextBelow(64)));
      break;
    }
    case 96: { // Explicit full collection + heap audit.
      TheVm.collectNow();
      HeapVerifier Verifier(TheVm.heap());
      std::vector<HeapDefect> Defects = Verifier.verify();
      ASSERT_TRUE(Defects.empty())
          << "step " << Step << ": " << Defects.front().Description;
      break;
    }
    }
  }

  if (RegionOpen)
    Engine.assertAllDead(T);
  TheVm.collectNow();
  HeapVerifier Verifier(TheVm.heap());
  EXPECT_TRUE(Verifier.isClean());

  // Sanity on the reports: only kinds this mutator can produce.
  for (const Violation &V : Sink.violations())
    EXPECT_TRUE(V.Kind == AssertionKind::Dead ||
                V.Kind == AssertionKind::Unshared ||
                V.Kind == AssertionKind::Instances ||
                V.Kind == AssertionKind::OwnedBy ||
                V.Kind == AssertionKind::OwnershipOverlap ||
                V.Kind == AssertionKind::OwneeOutlivedOwner)
        << V.Message;
}

std::vector<StressParam> stressParams() {
  std::vector<StressParam> Params;
  for (CollectorKind Kind :
       {CollectorKind::MarkSweep, CollectorKind::SemiSpace,
        CollectorKind::MarkCompact, CollectorKind::Generational})
    for (uint64_t Seed = 100; Seed < 104; ++Seed)
      Params.push_back({Kind, Seed});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    RandomRuns, StressTest, ::testing::ValuesIn(stressParams()),
    [](const ::testing::TestParamInfo<StressParam> &Info) {
      return std::string(collectorName(Info.param.Collector)) + "_seed" +
             std::to_string(Info.param.Seed);
    });

} // namespace
