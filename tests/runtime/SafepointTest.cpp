//===- SafepointTest.cpp - Stop-the-world safepoint protocol tests -------------===//
//
// Part of the gcassert project, under the MIT License.
//
// Edge cases of the poll-based rendezvous (DESIGN.md §13): concurrent
// allocation racing a pending stop, threads attaching and detaching while
// cycles run, the SafepointSafeScope native transition, competing
// requesters, and the rendezvous-timeout abort (driven deterministically
// through the "safepoint.timeout" failpoint).
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"

#include "gcassert/support/FaultInjection.h"

#include <atomic>
#include <gtest/gtest.h>
#include <thread>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig smallVm() {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  return Config;
}

TEST(SafepointTest, OwnerIsRegisteredImplicitly) {
  Vm TheVm(smallVm());
  EXPECT_EQ(TheVm.safepoints().registeredCount(), 1u);
  EXPECT_EQ(TheVm.safepoints().epoch(), 0u);
}

TEST(SafepointTest, StopTheWorldBumpsEpochPerPause) {
  Vm TheVm(smallVm());
  for (int I = 0; I != 3; ++I)
    TheVm.stopTheWorldAndRun([] {});
  EXPECT_EQ(TheVm.safepoints().epoch(), 3u);
}

TEST(SafepointTest, MutatorsAttachAndDetach) {
  Vm TheVm(smallVm());
  std::atomic<bool> Stop{false};
  MutatorHandle H = TheVm.startMutator("attach", [&](Vm &V, MutatorThread &) {
    while (!Stop.load(std::memory_order_relaxed))
      V.safepointPoll();
  });
  // The OS thread registers itself on entry; wait until it has.
  while (TheVm.safepoints().registeredCount() != 2u)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_relaxed);
  H.join();
  EXPECT_EQ(TheVm.safepoints().registeredCount(), 1u);
}

TEST(SafepointTest, StopTheWorldParksPollingMutators) {
  Vm TheVm(smallVm());
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Laps{0};
  MutatorHandle H = TheVm.startMutator("poller", [&](Vm &V, MutatorThread &) {
    while (!Stop.load(std::memory_order_relaxed)) {
      V.safepointPoll();
      Laps.fetch_add(1, std::memory_order_relaxed);
    }
  });
  while (Laps.load(std::memory_order_relaxed) == 0)
    std::this_thread::yield();

  // Inside the stopped window the poller must be parked: its lap counter
  // cannot advance no matter how long we look at it.
  TheVm.stopTheWorldAndRun([&] {
    uint64_t Before = Laps.load(std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(Laps.load(std::memory_order_relaxed), Before);
  });

  Stop.store(true, std::memory_order_relaxed);
  H.join();
  EXPECT_GE(TheVm.safepoints().epoch(), 1u);
}

TEST(SafepointTest, SafeScopeDoesNotBlockTheStop) {
  Vm TheVm(smallVm());
  std::atomic<bool> InScope{false};
  std::atomic<bool> Release{false};
  MutatorHandle H = TheVm.startMutator("native", [&](Vm &V, MutatorThread &) {
    SafepointSafeScope Safe(V.safepoints());
    InScope.store(true, std::memory_order_release);
    // Block without polling — a safe thread is stopped by definition.
    while (!Release.load(std::memory_order_relaxed))
      std::this_thread::yield();
  });
  while (!InScope.load(std::memory_order_acquire))
    std::this_thread::yield();

  // Must not deadlock even though the mutator never reaches a poll.
  TheVm.stopTheWorldAndRun([] {});

  Release.store(true, std::memory_order_relaxed);
  H.join();
}

TEST(SafepointTest, AllocationRacesPendingStop) {
  // Allocating mutators poll inside Vm::allocate; explicit collections from
  // the owner must rendezvous with all of them, repeatedly.
  Vm TheVm(smallVm());
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  std::atomic<bool> Stop{false};
  std::vector<MutatorHandle> Handles;
  for (int I = 0; I != 3; ++I)
    Handles.push_back(TheVm.startMutator(
        "alloc", [&](Vm &V, MutatorThread &T) {
          HandleScope Scope(T);
          Local Keep = Scope.handle();
          while (!Stop.load(std::memory_order_relaxed))
            if (ObjRef Obj = V.allocate(T, G.Blob, 64))
              Keep.set(Obj);
        }));
  for (int I = 0; I != 10; ++I)
    TheVm.collectNow("safepoint-race-test");
  Stop.store(true, std::memory_order_relaxed);
  for (MutatorHandle &H : Handles)
    H.join();
  EXPECT_GE(TheVm.gcStats().Cycles, 10u);
}

TEST(SafepointTest, ThreadsAttachAndDetachMidCycle) {
  // Short-lived mutators churn through attach/detach while the owner stops
  // the world over and over — a forming rendezvous must absorb both.
  Vm TheVm(smallVm());
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  std::atomic<bool> Stop{false};
  std::thread Spawner([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      MutatorHandle H =
          TheVm.startMutator("brief", [&](Vm &V, MutatorThread &T) {
            HandleScope Scope(T);
            Local Keep = Scope.handle();
            for (int I = 0; I != 50; ++I)
              if (ObjRef Obj = V.allocate(T, G.Blob, 32))
                Keep.set(Obj);
          });
      H.join();
    }
  });
  for (int I = 0; I != 20; ++I)
    TheVm.collectNow("attach-detach-test");
  Stop.store(true, std::memory_order_relaxed);
  Spawner.join();
  EXPECT_EQ(TheVm.safepoints().registeredCount(), 1u);
}

TEST(SafepointTest, CompetingRequestersSerialize) {
  // Several mutators exhaust their view of the heap simultaneously; losing
  // requesters must park for the winner and re-check before collecting
  // again. All that is observable from outside: no deadlock, consistent
  // final state.
  Vm TheVm(smallVm());
  std::atomic<bool> Stop{false};
  std::vector<MutatorHandle> Handles;
  for (int I = 0; I != 4; ++I)
    Handles.push_back(
        TheVm.startMutator("requester", [&](Vm &V, MutatorThread &) {
          for (int J = 0; J != 5; ++J)
            V.collectNow("competing-requesters");
          while (!Stop.load(std::memory_order_relaxed))
            V.safepointPoll();
        }));
  Stop.store(true, std::memory_order_relaxed);
  for (MutatorHandle &H : Handles)
    H.join();
  EXPECT_GE(TheVm.gcStats().Cycles, 20u);
  EXPECT_EQ(TheVm.safepoints().registeredCount(), 1u);
}

using SafepointDeathTest = ::testing::Test;

TEST(SafepointDeathTest, RendezvousTimeoutAbortsWithDiagnostics) {
  // The "safepoint.timeout" failpoint forces the requester down the
  // timed-out path before it waits, so the death is deterministic even
  // with no straggler thread.
  EXPECT_DEATH(
      {
        Vm TheVm(smallVm());
        faults::SafepointTimeout.armAlways();
        TheVm.collectNow("timeout-test");
      },
      "safepoint");
  disarmAllFailpoints();
}

} // namespace
