//===- VmTest.cpp - runtime/Vm unit tests --------------------------------------===//

#include "common/TestGraph.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig smallVm() {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  return Config;
}

TEST(VmTest, MainThreadExists) {
  Vm TheVm(smallVm());
  EXPECT_EQ(TheVm.mainThread().id(), 0u);
  EXPECT_EQ(TheVm.mainThread().name(), "main");
}

TEST(VmTest, SpawnThreads) {
  Vm TheVm(smallVm());
  MutatorThread &A = TheVm.spawnThread("worker-a");
  MutatorThread &B = TheVm.spawnThread("worker-b");
  EXPECT_EQ(A.id(), 1u);
  EXPECT_EQ(B.id(), 2u);

  int Count = 0;
  TheVm.forEachThread([&](MutatorThread &) { ++Count; });
  EXPECT_EQ(Count, 3);
}

TEST(VmTest, GlobalRootSlotReuse) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  GlobalRootId A = TheVm.addGlobalRoot(newNode(TheVm, T, 1));
  GlobalRootId B = TheVm.addGlobalRoot(newNode(TheVm, T, 2));
  EXPECT_NE(A, B);

  TheVm.removeGlobalRoot(A);
  GlobalRootId C = TheVm.addGlobalRoot(newNode(TheVm, T, 3));
  EXPECT_EQ(C, A) << "freed slots are reused";
  EXPECT_NE(TheVm.globalRoot(C), nullptr);
  EXPECT_NE(TheVm.globalRoot(B), nullptr);
}

TEST(VmTest, DoubleRemoveGlobalRootDoesNotDuplicateFreeSlot) {
  // Regression: removing the same root twice used to push its slot onto
  // the free list twice, handing the slot to two later addGlobalRoot
  // calls — two live roots silently aliased. Release builds treat the
  // second removal as a no-op (debug builds assert).
#ifdef NDEBUG
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  GlobalRootId A = TheVm.addGlobalRoot(newNode(TheVm, T, 1));
  TheVm.removeGlobalRoot(A);
  TheVm.removeGlobalRoot(A);

  GlobalRootId B = TheVm.addGlobalRoot(newNode(TheVm, T, 2));
  GlobalRootId C = TheVm.addGlobalRoot(newNode(TheVm, T, 3));
  EXPECT_NE(B, C) << "duplicate free-list entry aliased two roots";
  EXPECT_NE(TheVm.globalRoot(B), TheVm.globalRoot(C));
#else
  EXPECT_DEATH(
      {
        Vm TheVm(smallVm());
        MutatorThread &T = TheVm.mainThread();
        GlobalRootId A = TheVm.addGlobalRoot(newNode(TheVm, T, 1));
        TheVm.removeGlobalRoot(A);
        TheVm.removeGlobalRoot(A);
      },
      "removed twice");
#endif
}

TEST(VmTest, SetGlobalRoot) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  GlobalRootId Id = TheVm.addGlobalRoot();
  EXPECT_EQ(TheVm.globalRoot(Id), nullptr);
  ObjRef Obj = newNode(TheVm, T);
  TheVm.setGlobalRoot(Id, Obj);
  EXPECT_EQ(TheVm.globalRoot(Id), Obj);
}

TEST(VmTest, AllocationListenerObservesEveryAllocation) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  int Observed = 0;
  TheVm.setAllocationListener([&](ObjRef) { ++Observed; });
  for (int I = 0; I < 10; ++I)
    newNode(TheVm, T);
  EXPECT_EQ(Observed, 10);

  TheVm.setAllocationListener(nullptr);
  newNode(TheVm, T);
  EXPECT_EQ(Observed, 10) << "removed listener must not fire";
}

TEST(VmTest, HandleScopesNest) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  HandleScope Outer(T);
  Local A = Outer.handle(newNode(TheVm, T, 1));
  {
    HandleScope Inner(T);
    Inner.handle(newNode(TheVm, T, 2));
    EXPECT_EQ(T.handleCount(), 2u);
  }
  EXPECT_EQ(T.handleCount(), 1u);
  EXPECT_NE(A.get(), nullptr);
}

TEST(VmTest, LocalReadWrite) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local L = Scope.handle();
  EXPECT_FALSE(L);
  L.set(newNode(TheVm, T, 5));
  EXPECT_TRUE(L);
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  EXPECT_EQ(L.get()->getScalar<int64_t>(G.FieldValue), 5);
}

TEST(VmTest, GcStatsAccumulate) {
  Vm TheVm(smallVm());
  EXPECT_EQ(TheVm.gcStats().Cycles, 0u);
  TheVm.collectNow();
  TheVm.collectNow();
  EXPECT_EQ(TheVm.gcStats().Cycles, 2u);
}

TEST(VmTest, CollectorKindMatchesConfig) {
  Vm MarkSweep(smallVm());
  EXPECT_EQ(MarkSweep.collectorKind(), CollectorKind::MarkSweep);

  VmConfig Config = smallVm();
  Config.Collector = CollectorKind::SemiSpace;
  Vm SemiSpace(Config);
  EXPECT_EQ(SemiSpace.collectorKind(), CollectorKind::SemiSpace);
}

TEST(VmDeathTest, OutOfMemoryAborts) {
  VmConfig Config;
  Config.HeapBytes = 1u << 20;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  // An unbreakable chain of live objects must exhaust the heap and abort
  // with a diagnostic rather than corrupting memory.
  EXPECT_DEATH(
      {
        HandleScope Scope(T);
        Local Head = Scope.handle(newNode(TheVm, T));
        while (true) {
          ObjRef NewNode = newNode(TheVm, T);
          NewNode->setRef(G.FieldA, Head.get());
          Head.set(NewNode);
        }
      },
      "out of memory");
}

TEST(VmTest, RegionLogPointerRoundTrip) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  EXPECT_EQ(T.regionLog(), nullptr);
  std::vector<ObjRef> Log;
  T.setRegionLog(&Log);
  newNode(TheVm, T);
  newNode(TheVm, T);
  EXPECT_EQ(Log.size(), 2u);
  T.setRegionLog(nullptr);
  newNode(TheVm, T);
  EXPECT_EQ(Log.size(), 2u);
}

} // namespace
