//===- IncrementalStressTest.cpp - Incremental marking under mutators ---------===//
//
// Part of the gcassert project, under the MIT License.
//
// The incremental (SATB) mark-sweep drive under real concurrent mutators
// (DESIGN.md §15): allocation-tick pacing begins cycles on its own via the
// occupancy trigger and advances them slice by slice while 2/4 OS threads
// allocate, rewire reference fields (deletion-barrier traffic), and
// request explicit collections (which finish in-flight cycles). Lives in
// the parallel_stress_tests binary (ctest label "parallel") so the whole
// matrix runs under ThreadSanitizer in CI — the SATB log, the black-
// allocation flag, and the pacing countdowns are exactly the state TSan
// must see synchronized by the safepoint rendezvous.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"

#include "gcassert/heap/HeapVerifier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>
#include <vector>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

using StressParam = std::tuple<unsigned /*Mutators*/, uint64_t /*Budget*/>;

class IncrementalStressTest : public ::testing::TestWithParam<StressParam> {};

/// One mutator's workload: a rooted ring of small clusters, constantly
/// overwritten — every Ring/FieldA store over a non-null slot is a
/// deletion-barrier hit when a snapshot is active — plus garbage churn to
/// keep the pacing ticks and the occupancy trigger firing.
void mutate(Vm &V, MutatorThread &T, unsigned Lane) {
  GraphTypes G = GraphTypes::ensure(V.types());
  HandleScope Scope(T);
  constexpr unsigned RingSlots = 8;
  Local Ring[RingSlots];
  for (Local &L : Ring)
    L = Scope.handle();
  for (int I = 0; I != 4000; ++I) {
    ObjRef Head = V.allocate(T, G.Node);
    ASSERT_NE(Head, nullptr);
    Head->setScalar<int64_t>(G.FieldValue, Lane * 100000 + I);
    {
      HandleScope Inner(T);
      Local KeepHead = Inner.handle();
      KeepHead.set(Head);
      ObjRef A = V.allocate(T, G.Node);
      ASSERT_NE(A, nullptr);
      KeepHead.get()->setRef(G.FieldA, A);
      // Rewire: point this cluster at an older ring entry, severing
      // nothing yet — then the ring store below severs the old cluster.
      ObjRef Old = Ring[(I + 3) % RingSlots].get();
      A->setRef(G.FieldB, Old);
      V.allocate(T, G.Blob, 1 + (I % 128));
      Head = KeepHead.get();
    }
    Ring[I % RingSlots].set(Head);
    if (I % 1000 == 500)
      V.collectNow("mutator-initiated");
    V.safepointPoll();
  }
  for (unsigned S = 0; S != RingSlots; ++S) {
    ObjRef Head = Ring[S].get();
    ASSERT_NE(Head, nullptr);
    EXPECT_EQ(Head->getScalar<int64_t>(G.FieldValue) / 100000,
              static_cast<int64_t>(Lane));
    EXPECT_NE(Head->getRef(G.FieldA), nullptr);
  }
}

TEST_P(IncrementalStressTest, PacedCyclesSurviveConcurrentMutators) {
  auto [Mutators, Budget] = GetParam();
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::MarkSweep;
  Config.Gc.Incremental = true;
  Config.Gc.MarkBudget = Budget;
  Config.Gc.IncrementalSliceAllocs = 64;
  // Low enough that the live rings alone keep occupancy above it: the
  // pacing poll begins a fresh cycle almost as soon as the last finished,
  // so marking overlaps mutation for most of the run.
  Config.Gc.IncrementalTriggerOccupancy = 0.02;
  Vm TheVm(Config);
  GraphTypes::ensure(TheVm.types());

  std::atomic<unsigned> NextLane{0};
  TheVm.runMutators(Mutators, "inc-stress", [&NextLane](Vm &V,
                                                        MutatorThread &T) {
    mutate(V, T, NextLane.fetch_add(1, std::memory_order_relaxed));
  });

  TheVm.collectNow("final");
  const GcStats &S = TheVm.gcStats();
  // The pacing actually drove incremental cycles (the explicit
  // mutator-initiated collections may have finished some of them early).
  EXPECT_GE(S.IncrementalCycles, 1u);
  EXPECT_GT(S.MarkSlices, 0u);
  // Rewiring during active snapshots produced deletion-barrier traffic.
  EXPECT_GT(S.SatbLoggedSlots, 0u);

  HeapVerifier Verifier(TheVm.heap());
  std::vector<HeapDefect> Defects = Verifier.verify();
  EXPECT_TRUE(Defects.empty())
      << (Defects.empty() ? "" : Defects.front().Description);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IncrementalStressTest,
    ::testing::Combine(::testing::Values(2u, 4u), ::testing::Values(64u, 512u)),
    [](const ::testing::TestParamInfo<StressParam> &Info) {
      return "m" + std::to_string(std::get<0>(Info.param)) + "_b" +
             std::to_string(std::get<1>(Info.param));
    });

} // namespace
