//===- ConcurrentMutatorTest.cpp - Real-thread mutator matrix ------------------===//
//
// Part of the gcassert project, under the MIT License.
//
// Stress of the full concurrency surface (DESIGN.md §13): real OS mutator
// threads allocating and mutating object graphs while collections run, over
// every collector family x {1,2,4} GC threads x {1,2,4} mutator threads.
// Lives in the parallel_stress_tests binary (ctest label "parallel") so the
// whole matrix runs under ThreadSanitizer in CI.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"

#include "gcassert/heap/HeapVerifier.h"

#include <atomic>
#include <gtest/gtest.h>
#include <tuple>
#include <vector>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

using MatrixParam = std::tuple<CollectorKind, unsigned, unsigned>;

class ConcurrentMutatorTest : public ::testing::TestWithParam<MatrixParam> {};

/// One mutator's workload: build small linked clusters into a rooted ring,
/// interleaved with plain garbage, and ask for a couple of explicit
/// collections so every thread also exercises the requester path.
void mutate(Vm &V, MutatorThread &T, unsigned Lane) {
  GraphTypes G = GraphTypes::ensure(V.types());
  HandleScope Scope(T);
  constexpr unsigned RingSlots = 8;
  Local Ring[RingSlots];
  for (Local &L : Ring)
    L = Scope.handle();
  for (int I = 0; I != 1500; ++I) {
    ObjRef Head = V.allocate(T, G.Node);
    ASSERT_NE(Head, nullptr);
    Head->setScalar<int64_t>(G.FieldValue, Lane * 10000 + I);
    {
      // The cluster: head -> a -> b, plus garbage that dies immediately.
      HandleScope Inner(T);
      Local HeadKeep = Inner.handle();
      HeadKeep.set(Head);
      ObjRef A = V.allocate(T, G.Node);
      ASSERT_NE(A, nullptr);
      HeadKeep.get()->setRef(G.FieldA, A);
      // B's allocation may trigger a moving collection: re-load everything
      // through the handle afterwards, raw pointers are stale.
      ObjRef B = V.allocate(T, G.Blob, 1 + (I % 64));
      ASSERT_NE(B, nullptr);
      Head = HeadKeep.get();
    }
    Ring[I % RingSlots].set(Head);
    if (I % 500 == 250)
      V.collectNow("mutator-initiated");
    V.safepointPoll();
  }
  // Every surviving ring entry must still carry this lane's stamp and an
  // intact cluster edge — a moving collector that lost an update, or a
  // sweep that freed a live object, shows up right here.
  for (unsigned S = 0; S != RingSlots; ++S) {
    ObjRef Head = Ring[S].get();
    ASSERT_NE(Head, nullptr);
    EXPECT_EQ(Head->getScalar<int64_t>(G.FieldValue) / 10000,
              static_cast<int64_t>(Lane));
    EXPECT_NE(Head->getRef(G.FieldA), nullptr);
  }
}

TEST_P(ConcurrentMutatorTest, GraphsSurviveConcurrentCollection) {
  auto [Collector, GcThreads, MutatorThreads] = GetParam();
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = Collector;
  Config.Gc.Threads = GcThreads;
  Vm TheVm(Config);
  GraphTypes::ensure(TheVm.types());

  std::vector<MutatorHandle> Handles;
  for (unsigned Lane = 0; Lane != MutatorThreads; ++Lane)
    Handles.push_back(TheVm.startMutator(
        "mutator-" + std::to_string(Lane),
        [Lane](Vm &V, MutatorThread &T) { mutate(V, T, Lane); }));
  // The owner keeps stopping the world while the mutators run, so the
  // rendezvous is contested from both sides.
  for (int I = 0; I != 5; ++I)
    TheVm.collectNow("owner-initiated");
  for (MutatorHandle &H : Handles)
    H.join();

  EXPECT_EQ(TheVm.safepoints().registeredCount(), 1u);
  EXPECT_GE(TheVm.gcStats().Cycles, 5u + 3u * MutatorThreads);

  TheVm.collectNow("final");
  HeapVerifier Verifier(TheVm.heap());
  std::vector<HeapDefect> Defects = Verifier.verify();
  EXPECT_TRUE(Defects.empty())
      << (Defects.empty() ? "" : Defects.front().Description);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConcurrentMutatorTest,
    ::testing::Combine(::testing::Values(CollectorKind::MarkSweep,
                                         CollectorKind::SemiSpace,
                                         CollectorKind::MarkCompact,
                                         CollectorKind::Generational),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const ::testing::TestParamInfo<MatrixParam> &Info) {
      return std::string(collectorName(std::get<0>(Info.param))) + "_gc" +
             std::to_string(std::get<1>(Info.param)) + "_m" +
             std::to_string(std::get<2>(Info.param));
    });

} // namespace
