//===- IncrementalMarkTest.cpp - SATB incremental marking unit tests ----------===//
//
// Part of the gcassert project, under the MIT License.
//
// The incremental mark-sweep cycle's two load-bearing guarantees
// (DESIGN.md §15), tested at deterministic phase boundaries via the Vm's
// explicit incremental driving API: the Yuasa deletion barrier retains
// every snapshot-reachable object across mutation between slices, and a
// budgeted slice never scans more than GcConfig::MarkBudget objects.
// Lives in the incremental_tests binary (ctest label "incremental").
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"

#include "gcassert/support/OStream.h"
#include "gcassert/telemetry/TraceEvents.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

/// A mark-sweep VM with incremental marking on and allocation-tick pacing
/// pushed out of reach, so every pause happens inside an explicit
/// incrementalBeginNow/StepNow call and the tests own the phase boundaries.
VmConfig incrementalConfig(uint64_t MarkBudget) {
  VmConfig Config;
  Config.HeapBytes = 16u << 20;
  Config.Collector = CollectorKind::MarkSweep;
  Config.Gc.Incremental = true;
  Config.Gc.MarkBudget = MarkBudget;
  Config.Gc.IncrementalSliceAllocs = 1u << 30;
  return Config;
}

struct ScopedTracing {
  ScopedTracing() {
    telemetry::clearAllRings();
    telemetry::setTracingEnabled(true);
  }
  ~ScopedTracing() {
    telemetry::setTracingEnabled(false);
    telemetry::clearAllRings();
  }
};

/// Objects-scanned counts of every completed mark slice, in emission
/// order, pulled from the telemetry export (the MarkSlice end event's arg;
/// see IncrementalMark.h). Out-param so gtest's void-returning ASSERT
/// macros work inside (same idiom as TraceJsonTest).
void markSliceScanCounts(std::vector<uint64_t> &Counts) {
  StringOStream Out;
  telemetry::writeChromeTrace(Out);
  std::string Json = Out.str();
  const std::string NameKey = "\"name\":\"mark_slice\"";
  for (size_t Pos = Json.find(NameKey); Pos != std::string::npos;
       Pos = Json.find(NameKey, Pos + 1)) {
    // The exporter's field order is fixed: name, then ph, then args, all
    // inside one flat event object closed by the first '}'.
    size_t EventEnd = Json.find('}', Pos);
    ASSERT_NE(EventEnd, std::string::npos);
    if (Json.find("\"ph\":\"E\"", Pos) > EventEnd)
      continue; // begin event — the arg is the cycle number, not a count
    size_t Arg = Json.find("\"arg\":", Pos);
    ASSERT_LT(Arg, EventEnd);
    Counts.push_back(std::strtoull(Json.c_str() + Arg + 6, nullptr, 10));
  }
}

TEST(IncrementalMarkTest, DeletionBarrierRetainsSnapshotReferent) {
  Vm TheVm(incrementalConfig(/*MarkBudget=*/1));
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &Main = TheVm.mainThread();

  // Root -> A -> B; B is reachable only through A's field.
  ObjRef A = newNode(TheVm, Main, 1);
  GlobalRootId Root = TheVm.addGlobalRoot(A);
  {
    HandleScope Scope(Main);
    Local KeepA = Scope.handle();
    KeepA.set(A);
    ObjRef B = newNode(TheVm, Main, 42);
    A->setRef(G.FieldA, B);
  }
  TheVm.collectNow("baseline");
  size_t Baseline = heapObjectCount(TheVm);

  // Snapshot pause: the root scan pushes A but (budget 1, no draining at
  // begin) has not yet traced through to B.
  TheVm.incrementalBeginNow("retention test");
  ASSERT_TRUE(TheVm.incrementalCycleActive());

  // The write during marking: severing the only edge to B must log the old
  // value, or the trace loses a snapshot-reachable object.
  ObjRef B = A->getRef(G.FieldA);
  ASSERT_NE(B, nullptr);
  A->setRef(G.FieldA, nullptr);

  while (TheVm.incrementalCycleActive())
    TheVm.incrementalStepNow();

  const GcStats &S = TheVm.gcStats();
  EXPECT_EQ(S.IncrementalCycles, 1u);
  EXPECT_GE(S.SatbLoggedSlots, 1u);
  // B survived the sweep: its payload is intact (mark-sweep never moves)
  // and the heap still holds the baseline object count.
  EXPECT_EQ(B->getScalar<int64_t>(G.FieldValue), 42);
  EXPECT_EQ(heapObjectCount(TheVm), Baseline);

  // The next (stop-the-world) collection sees the post-snapshot graph, in
  // which B really is unreachable, and reclaims exactly it.
  TheVm.collectNow("reclaim");
  EXPECT_EQ(heapObjectCount(TheVm), Baseline - 1);
  EXPECT_EQ(TheVm.globalRoot(Root), A);
}

TEST(IncrementalMarkTest, MarkSliceBudgetAccounting) {
  constexpr uint64_t Budget = 64;
  constexpr int ChainLength = 1000;
  Vm TheVm(incrementalConfig(Budget));
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &Main = TheVm.mainThread();

  // A rooted chain of 1000 nodes: enough marking work for many slices.
  GlobalRootId Root = TheVm.addGlobalRoot();
  for (int I = 0; I != ChainLength; ++I) {
    ObjRef Node = newNode(TheVm, Main, I);
    Node->setRef(G.FieldA, TheVm.globalRoot(Root));
    TheVm.setGlobalRoot(Root, Node);
  }
  TheVm.collectNow("baseline");

  ScopedTracing Tracing;
  TheVm.incrementalBeginNow("budget test");
  while (TheVm.incrementalCycleActive())
    TheVm.incrementalStepNow();

  std::vector<uint64_t> Slices;
  markSliceScanCounts(Slices);
  const GcStats &S = TheVm.gcStats();
  ASSERT_EQ(Slices.size(), S.MarkSlices);
  // The chain alone needs ceil(1000/64) slices.
  EXPECT_GE(Slices.size(),
            static_cast<size_t>(ChainLength) / static_cast<size_t>(Budget));
  uint64_t Total = 0;
  for (size_t I = 0; I != Slices.size(); ++I) {
    // The hard bound: a slice never exceeds its object budget. Every slice
    // but the last scans the budget exactly (drainUpTo stops only on the
    // budget or an empty worklist).
    EXPECT_LE(Slices[I], Budget) << "slice " << I;
    if (I + 1 != Slices.size())
      EXPECT_EQ(Slices[I], Budget) << "slice " << I;
    Total += Slices[I];
  }
  // The slices did all the marking: at least every chain node was scanned
  // inside some budgeted slice (the terminal pause found a drained list).
  EXPECT_GE(Total, static_cast<uint64_t>(ChainLength));
}

TEST(IncrementalMarkTest, ObjectsAllocatedDuringCycleSurviveItsSweep) {
  Vm TheVm(incrementalConfig(/*MarkBudget=*/8));
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &Main = TheVm.mainThread();

  // Some marking work so the cycle spans several slices.
  GlobalRootId Root = TheVm.addGlobalRoot();
  for (int I = 0; I != 64; ++I) {
    ObjRef Node = newNode(TheVm, Main, I);
    Node->setRef(G.FieldA, TheVm.globalRoot(Root));
    TheVm.setGlobalRoot(Root, Node);
  }
  TheVm.collectNow("baseline");
  size_t Baseline = heapObjectCount(TheVm);

  TheVm.incrementalBeginNow("black allocation test");
  // Allocated mid-cycle, never rooted, never referenced: only black
  // allocation keeps these off this cycle's sweep.
  constexpr size_t MidCycleAllocs = 10;
  for (size_t I = 0; I != MidCycleAllocs; ++I) {
    newNode(TheVm, Main, -1);
    TheVm.incrementalStepNow();
  }
  while (TheVm.incrementalCycleActive())
    TheVm.incrementalStepNow();
  EXPECT_EQ(heapObjectCount(TheVm), Baseline + MidCycleAllocs);

  // They are floating garbage, not a leak: the next collection, whose
  // trace starts fresh, reclaims all of them.
  TheVm.collectNow("reclaim");
  EXPECT_EQ(heapObjectCount(TheVm), Baseline);
}

TEST(IncrementalMarkTest, CollectFinishesTheActiveCycle) {
  Vm TheVm(incrementalConfig(/*MarkBudget=*/4));
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  MutatorThread &Main = TheVm.mainThread();

  GlobalRootId Root = TheVm.addGlobalRoot();
  for (int I = 0; I != 32; ++I) {
    ObjRef Node = newNode(TheVm, Main, I);
    Node->setRef(G.FieldA, TheVm.globalRoot(Root));
    TheVm.setGlobalRoot(Root, Node);
  }

  TheVm.incrementalBeginNow("to be finished by collect");
  ASSERT_TRUE(TheVm.incrementalCycleActive());
  uint64_t CyclesBefore = TheVm.gcStats().Cycles;

  // collect() with a cycle in flight means "finish it" — one cycle total,
  // counted as incremental, never a nested atomic collection.
  TheVm.collectNow("finish");
  EXPECT_FALSE(TheVm.incrementalCycleActive());
  const GcStats &S = TheVm.gcStats();
  EXPECT_EQ(S.Cycles, CyclesBefore + 1);
  EXPECT_EQ(S.IncrementalCycles, 1u);

  // And with no cycle in flight, collect() is the plain atomic path.
  TheVm.collectNow("atomic");
  EXPECT_EQ(TheVm.gcStats().Cycles, CyclesBefore + 2);
  EXPECT_EQ(TheVm.gcStats().IncrementalCycles, 1u);
}

} // namespace
