//===- PathRecordingTest.cpp - §2.7 path reconstruction tests -----------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig smallVm(CollectorKind Kind = CollectorKind::MarkSweep) {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = Kind;
  return Config;
}

/// Builds root -> n0 -> n1 -> ... -> n(len-1) and returns a handle to n0.
/// Only n0 stays rooted: the cursor handle lives in an inner scope so the
/// chain is reachable through the "a" fields alone.
Local buildChain(Vm &TheVm, HandleScope &Scope, int Length) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  Local Head = Scope.handle(newNode(TheVm, T, 0));
  HandleScope Inner(T);
  Local Cur = Inner.handle(Head.get());
  for (int I = 1; I < Length; ++I) {
    ObjRef Next = newNode(TheVm, T, I);
    Cur.get()->setRef(G.FieldA, Next);
    Cur.set(Next);
  }
  return Head;
}

TEST(PathRecordingTest, DeadViolationCarriesFullChain) {
  Vm TheVm(smallVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(TheVm.mainThread());
  Local Head = buildChain(TheVm, Scope, 6);
  ObjRef Tail = Head.get();
  while (Tail->getRef(G.FieldA))
    Tail = Tail->getRef(G.FieldA);

  Engine.assertDead(Tail);
  TheVm.collectNow();

  ASSERT_EQ(Sink.violations().size(), 1u);
  const Violation &V = Sink.violations()[0];
  EXPECT_EQ(V.Kind, AssertionKind::Dead);
  EXPECT_EQ(V.ObjectType, "LNode;");
  ASSERT_EQ(V.Path.size(), 6u) << "path spans the whole chain";
  for (const PathStep &Step : V.Path)
    EXPECT_EQ(Step.TypeName, "LNode;");
  // Every edge goes through field "a" except the first step (a root).
  EXPECT_TRUE(V.Path[0].FieldName.empty());
  for (size_t I = 1; I < V.Path.size(); ++I)
    EXPECT_EQ(V.Path[I].FieldName, "a");
}

TEST(PathRecordingTest, PathThroughArrayShowsIndex) {
  Vm TheVm(smallVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 10));
  ObjRef Obj = newNode(TheVm, T);
  Arr.get()->setElement(7, Obj);

  Engine.assertDead(Obj);
  TheVm.collectNow();

  ASSERT_EQ(Sink.violations().size(), 1u);
  const Violation &V = Sink.violations()[0];
  ASSERT_EQ(V.Path.size(), 2u);
  EXPECT_EQ(V.Path[0].TypeName, "[LNode;");
  EXPECT_EQ(V.Path[1].FieldName, "[7]");
}

TEST(PathRecordingTest, DisabledPathRecordingYieldsLeafOnly) {
  Vm TheVm(smallVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  TheVm.collector().setPathRecording(false);
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(TheVm.mainThread());
  Local Head = buildChain(TheVm, Scope, 4);
  ObjRef Tail = Head.get();
  while (Tail->getRef(G.FieldA))
    Tail = Tail->getRef(G.FieldA);

  Engine.assertDead(Tail);
  TheVm.collectNow();

  ASSERT_EQ(Sink.violations().size(), 1u);
  EXPECT_EQ(Sink.violations()[0].Path.size(), 1u)
      << "without §2.7 recording only the object itself is known";
  EXPECT_EQ(Sink.violations()[0].Path[0].TypeName, "LNode;");
}

TEST(PathRecordingTest, SemiSpacePathTypesCorrect) {
  // The same violation under the copying collector: path entries mix
  // from-space and to-space objects mid-trace; types must still resolve.
  Vm TheVm(smallVm(CollectorKind::SemiSpace));
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(TheVm.mainThread());
  Local Head = buildChain(TheVm, Scope, 5);
  ObjRef Tail = Head.get();
  while (Tail->getRef(G.FieldA))
    Tail = Tail->getRef(G.FieldA);

  Engine.assertDead(Tail);
  TheVm.collectNow();

  ASSERT_EQ(Sink.violations().size(), 1u);
  const Violation &V = Sink.violations()[0];
  ASSERT_EQ(V.Path.size(), 5u);
  for (const PathStep &Step : V.Path)
    EXPECT_EQ(Step.TypeName, "LNode;");
}

TEST(PathRecordingTest, ParallelConfigFallsBackToExactPaths) {
  // §2.7 path recording needs the tagged-LIFO worklist invariant, which a
  // stealable deque cannot maintain: with path recording on, a multi-thread
  // GC configuration must fall back to the sequential tracer and still
  // deliver the exact root-to-object chain, not the {leaf} shorthand of the
  // parallel marker.
  VmConfig Config = smallVm();
  Config.Gc.Threads = 4;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(TheVm.mainThread());
  Local Head = buildChain(TheVm, Scope, 6);
  ObjRef Tail = Head.get();
  while (Tail->getRef(G.FieldA))
    Tail = Tail->getRef(G.FieldA);

  Engine.assertDead(Tail);
  TheVm.collectNow();

  ASSERT_EQ(Sink.violations().size(), 1u);
  const Violation &V = Sink.violations()[0];
  ASSERT_EQ(V.Path.size(), 6u) << "full chain despite Threads=4";
  for (size_t I = 1; I < V.Path.size(); ++I)
    EXPECT_EQ(V.Path[I].FieldName, "a");
}

TEST(PathRecordingTest, ParallelConfigWithRecordingOffYieldsLeafOnly) {
  // The complementary case: once path recording is explicitly disabled the
  // same configuration takes the parallel trace, whose violation paths are
  // the offending object alone — identical to the sequential
  // RecordPaths=false shape.
  VmConfig Config = smallVm();
  Config.Gc.Threads = 4;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  TheVm.collector().setPathRecording(false);
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(TheVm.mainThread());
  Local Head = buildChain(TheVm, Scope, 6);
  ObjRef Tail = Head.get();
  while (Tail->getRef(G.FieldA))
    Tail = Tail->getRef(G.FieldA);

  Engine.assertDead(Tail);
  TheVm.collectNow();

  ASSERT_EQ(Sink.violations().size(), 1u);
  EXPECT_EQ(Sink.violations()[0].Path.size(), 1u);
  EXPECT_EQ(Sink.violations()[0].Path[0].TypeName, "LNode;");
}

TEST(PathRecordingTest, PathReflectsDiamondShape) {
  // Diamond: root -> a -> {b, c} -> d; the violation path must be a single
  // valid chain (either through b or through c), not a merged mess.
  Vm TheVm(smallVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  MutatorThread &T = TheVm.mainThread();

  HandleScope Scope(T);
  Local A = Scope.handle(newNode(TheVm, T, 0));
  ObjRef B = newNode(TheVm, T, 1);
  A.get()->setRef(G.FieldA, B);
  ObjRef C = newNode(TheVm, T, 2);
  A.get()->setRef(G.FieldB, C);
  ObjRef D = newNode(TheVm, T, 3);
  B->setRef(G.FieldA, D);
  C->setRef(G.FieldA, D);

  Engine.assertDead(D);
  TheVm.collectNow();

  ASSERT_EQ(Sink.violations().size(), 1u);
  const Violation &V = Sink.violations()[0];
  ASSERT_EQ(V.Path.size(), 3u) << "root chain a -> (b|c) -> d";
  EXPECT_EQ(V.Path[2].FieldName, "a");
}

} // namespace
