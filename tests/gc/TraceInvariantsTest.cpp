//===- TraceInvariantsTest.cpp - property tests of collection correctness -----===//
//
// Property-based tests: build pseudo-random object graphs, collect, and
// check the fundamental tracing invariant against an independent oracle —
// the set of objects surviving a collection is exactly the set reachable
// from the roots by BFS.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"
#include "gcassert/support/Random.h"

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <unordered_set>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

struct InvariantParam {
  CollectorKind Collector;
  uint64_t Seed;
};

class TraceInvariantsTest : public ::testing::TestWithParam<InvariantParam> {
};

/// Oracle: multiset of payload values reachable from the roots by BFS.
/// Values identify objects across moves (every node gets a unique payload).
std::multiset<int64_t> reachableValues(Vm &TheVm, const GraphTypes &G) {
  std::multiset<int64_t> Values;
  std::unordered_set<ObjRef> Seen;
  std::deque<ObjRef> Queue;
  TheVm.forEachRootSlot([&](ObjRef *Slot) {
    if (*Slot && Seen.insert(*Slot).second)
      Queue.push_back(*Slot);
  });
  while (!Queue.empty()) {
    ObjRef Obj = Queue.front();
    Queue.pop_front();
    const TypeInfo &Type = TheVm.types().get(Obj->typeId());
    if (Type.kind() == TypeKind::Class) {
      Values.insert(Obj->getScalar<int64_t>(G.FieldValue));
      for (uint32_t Offset : Type.refOffsets()) {
        ObjRef Child = Obj->getRef(Offset);
        if (Child && Seen.insert(Child).second)
          Queue.push_back(Child);
      }
    } else if (Type.kind() == TypeKind::RefArray) {
      for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I) {
        ObjRef Child = Obj->getElement(I);
        if (Child && Seen.insert(Child).second)
          Queue.push_back(Child);
      }
    }
  }
  return Values;
}

/// Multiset of payload values of all Node objects present in the heap.
std::multiset<int64_t> heapValues(Vm &TheVm, const GraphTypes &G) {
  std::multiset<int64_t> Values;
  TheVm.heap().forEachObject([&](ObjRef Obj) {
    if (Obj->typeId() == G.Node)
      Values.insert(Obj->getScalar<int64_t>(G.FieldValue));
  });
  return Values;
}

TEST_P(TraceInvariantsTest, SurvivorsEqualReachableSet) {
  VmConfig Config;
  Config.HeapBytes = 16u << 20;
  Config.Collector = GetParam().Collector;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  SplitMix64 Rng(GetParam().Seed);

  // Build a random graph: some nodes rooted, random edges, then randomly
  // drop roots and cut edges.
  HandleScope Scope(T);
  const int NodeCount = 400;
  std::vector<Local> Roots;
  std::vector<ObjRef> All;
  for (int I = 0; I != NodeCount; ++I) {
    ObjRef Node = newNode(TheVm, T, I);
    All.push_back(Node);
    // Root roughly a quarter of the nodes.
    if (Rng.chancePercent(25))
      Roots.push_back(Scope.handle(Node));
  }
  // Random edges (including self-loops and duplicates).
  for (int I = 0; I != NodeCount * 3; ++I) {
    ObjRef From = All[Rng.nextBelow(All.size())];
    ObjRef To = All[Rng.nextBelow(All.size())];
    uint32_t Field = Rng.nextBelow(3) == 0   ? G.FieldA
                     : Rng.nextBelow(2) == 0 ? G.FieldB
                                             : G.FieldC;
    From->setRef(Field, To);
  }
  // Drop some roots again.
  for (Local &Root : Roots)
    if (Rng.chancePercent(30))
      Root.set(nullptr);

  // The oracle runs over the same graph the collector sees.
  std::multiset<int64_t> Expected = reachableValues(TheVm, G);
  TheVm.collectNow();
  std::multiset<int64_t> Survivors = heapValues(TheVm, G);
  EXPECT_EQ(Survivors, Expected);

  // A second collection with no mutation must be the identity.
  TheVm.collectNow();
  EXPECT_EQ(heapValues(TheVm, G), Expected);

  // Graph integrity: the reachable set (by value) is unchanged too —
  // interior references survived the collection(s) intact.
  EXPECT_EQ(reachableValues(TheVm, G), Expected);
}

std::vector<InvariantParam> invariantParams() {
  std::vector<InvariantParam> Params;
  for (CollectorKind Kind :
       {CollectorKind::MarkSweep, CollectorKind::SemiSpace,
        CollectorKind::MarkCompact, CollectorKind::Generational})
    for (uint64_t Seed = 1; Seed <= 8; ++Seed)
      Params.push_back({Kind, Seed});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, TraceInvariantsTest,
    ::testing::ValuesIn(invariantParams()),
    [](const ::testing::TestParamInfo<InvariantParam> &Info) {
      return std::string(collectorName(Info.param.Collector)) + "_seed" +
             std::to_string(Info.param.Seed);
    });

} // namespace
