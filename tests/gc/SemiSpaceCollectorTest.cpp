//===- SemiSpaceCollectorTest.cpp - gc/SemiSpaceCollector unit tests ----------===//

#include "common/TestGraph.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig smallVm() {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::SemiSpace;
  return Config;
}

TEST(SemiSpaceCollectorTest, UnreachableObjectsReclaimed) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  for (int I = 0; I < 100; ++I)
    newNode(TheVm, T);
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST(SemiSpaceCollectorTest, RootsUpdatedOnMove) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T, 77));
  ObjRef Before = Kept.get();

  TheVm.collectNow();
  ObjRef After = Kept.get();
  EXPECT_NE(After, Before) << "evacuation must move the object";
  EXPECT_EQ(After->getScalar<int64_t>(G.FieldValue), 77);
}

TEST(SemiSpaceCollectorTest, InteriorReferencesUpdated) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Head = Scope.handle(newNode(TheVm, T, 0));
  Local Cur = Scope.handle(Head.get());
  for (int I = 1; I <= 20; ++I) {
    ObjRef Next = newNode(TheVm, T, I);
    Cur.get()->setRef(G.FieldA, Next);
    Cur.set(Next);
  }

  TheVm.collectNow();
  TheVm.collectNow(); // Twice: catches stale to-space references.

  // The chain must still be intact and ordered.
  ObjRef Node = Head.get();
  for (int I = 0; I <= 20; ++I) {
    ASSERT_NE(Node, nullptr);
    EXPECT_EQ(Node->getScalar<int64_t>(G.FieldValue), I);
    Node = Node->getRef(G.FieldA);
  }
  EXPECT_EQ(Node, nullptr);
}

TEST(SemiSpaceCollectorTest, SharedObjectCopiedOnce) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local A = Scope.handle(newNode(TheVm, T, 1));
  Local B = Scope.handle(newNode(TheVm, T, 2));
  Local Shared = Scope.handle(newNode(TheVm, T, 3));
  A.get()->setRef(G.FieldA, Shared.get());
  B.get()->setRef(G.FieldA, Shared.get());

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 3u) << "shared object copied exactly once";
  EXPECT_EQ(A.get()->getRef(G.FieldA), B.get()->getRef(G.FieldA));
  EXPECT_EQ(A.get()->getRef(G.FieldA), Shared.get());
}

TEST(SemiSpaceCollectorTest, CyclesSurviveAndCollapse) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local A = Scope.handle(newNode(TheVm, T, 1));
  {
    HandleScope Inner(T);
    Local B = Inner.handle(newNode(TheVm, T, 2));
    A.get()->setRef(G.FieldA, B.get());
    B.get()->setRef(G.FieldA, A.get());
  }

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 2u);
  // The cycle is consistent after moving.
  ObjRef NewA = A.get();
  ObjRef NewB = NewA->getRef(G.FieldA);
  EXPECT_EQ(NewB->getRef(G.FieldA), NewA);

  A.set(nullptr);
  NewA->setRef(G.FieldA, nullptr); // irrelevant: unrooted anyway
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST(SemiSpaceCollectorTest, ArraysEvacuated) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 5));
  for (uint64_t I = 0; I < 5; ++I)
    Arr.get()->setElement(I, newNode(TheVm, T, static_cast<int64_t>(I)));

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 6u);
  for (uint64_t I = 0; I < 5; ++I)
    EXPECT_EQ(Arr.get()->getElement(I)->getScalar<int64_t>(G.FieldValue),
              static_cast<int64_t>(I));
}

TEST(SemiSpaceCollectorTest, AllocationFailureTriggersGc) {
  VmConfig Config;
  Config.HeapBytes = 1u << 20;
  Config.Collector = CollectorKind::SemiSpace;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  for (int I = 0; I < 100000; ++I)
    newNode(TheVm, T);
  EXPECT_GT(TheVm.gcStats().Cycles, 0u);
}

TEST(SemiSpaceCollectorTest, MultipleThreadsRooted) {
  Vm TheVm(smallVm());
  MutatorThread &T1 = TheVm.mainThread();
  MutatorThread &T2 = TheVm.spawnThread("worker");

  HandleScope S1(T1);
  HandleScope S2(T2);
  Local A = S1.handle(newNode(TheVm, T1, 1));
  Local B = S2.handle(newNode(TheVm, T2, 2));

  TheVm.collectNow();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  EXPECT_EQ(A.get()->getScalar<int64_t>(G.FieldValue), 1);
  EXPECT_EQ(B.get()->getScalar<int64_t>(G.FieldValue), 2);
}

} // namespace
