//===- ParallelMarkSweepTest.cpp - Parallel vs sequential equivalence ---------===//
//
// Stress tests for the parallel mark & sweep: build identical heaps in two
// VMs, collect one sequentially and one with N GC threads, and require
// identical results — same surviving objects in the same address order,
// same reclaimed bytes, same free-list hand-out order afterwards, and with
// assertions installed the same violation multiset. The parallel sweep is
// designed to be byte-identical to the sequential one (see DESIGN.md,
// "Parallel collection"), so these comparisons are exact, not approximate.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/workloads/Harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

/// Deterministic split-free PRNG so both VMs build bit-identical graphs.
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
  uint64_t next(uint64_t Bound) { return next() % Bound; }
};

VmConfig makeConfig(unsigned Threads,
                    CollectorKind Kind = CollectorKind::MarkSweep) {
  VmConfig Config;
  Config.HeapBytes = 16u << 20;
  Config.Collector = Kind;
  Config.Gc.Threads = Threads;
  return Config;
}

/// Builds a deterministic tangled graph: a rooted array of entry points, a
/// web of random links (cycles included), blob ballast, and garbage (nodes
/// whose array slot was overwritten and that no link happens to reach).
/// MarkSweep only — objects never move, so raw ObjRefs stay valid.
void buildGraph(Vm &TheVm, unsigned Nodes, unsigned Roots,
                std::vector<ObjRef> *AllOut = nullptr) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  ObjRef Arr = TheVm.allocate(T, G.Array, Roots);
  TheVm.addGlobalRoot(Arr);

  Lcg Rng(0x6ca55e ^ 0x5eed);
  std::vector<ObjRef> All;
  All.reserve(Nodes);
  for (unsigned I = 0; I != Nodes; ++I) {
    ObjRef N = TheVm.allocate(T, G.Node);
    N->setScalar<int64_t>(G.FieldValue, static_cast<int64_t>(I));
    All.push_back(N);
    // Later nodes overwrite earlier root slots: overwritten ones survive
    // only if some link reaches them.
    Arr->setElement(Rng.next(Roots), N);
    if (Rng.next(8) == 0)
      TheVm.allocate(T, G.Blob, 64 + Rng.next(512));
  }
  for (ObjRef N : All) {
    N->setRef(G.FieldA, All[Rng.next(All.size())]);
    if (Rng.next(2))
      N->setRef(G.FieldB, All[Rng.next(All.size())]);
    if (Rng.next(4) == 0)
      N->setRef(G.FieldC, All[Rng.next(All.size())]);
  }
  if (AllOut)
    *AllOut = std::move(All);
}

/// The heap contents in address order: (type, payload) per object. Two VMs
/// with identical allocation histories yield directly comparable sequences.
std::vector<std::tuple<TypeId, uint64_t>> snapshot(Vm &TheVm) {
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  std::vector<std::tuple<TypeId, uint64_t>> Result;
  TheVm.heap().forEachObject([&](ObjRef Obj) {
    uint64_t Payload = 0;
    if (Obj->typeId() == G.Node)
      Payload = static_cast<uint64_t>(Obj->getScalar<int64_t>(G.FieldValue));
    else if (TheVm.types().get(Obj->typeId()).isArray())
      Payload = Obj->arrayLength();
    Result.emplace_back(Obj->typeId(), Payload);
  });
  return Result;
}

/// Probes the post-sweep free-list order: allocates \p Count cells and
/// returns each address relative to the first. Identical free lists give
/// identical deltas regardless of where the two arenas sit in memory.
std::vector<ptrdiff_t> allocationProbe(Vm &TheVm, unsigned Count) {
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  std::vector<ptrdiff_t> Deltas;
  uint8_t *First = reinterpret_cast<uint8_t *>(TheVm.allocate(T, G.Node));
  for (unsigned I = 1; I != Count; ++I)
    Deltas.push_back(reinterpret_cast<uint8_t *>(TheVm.allocate(T, G.Node)) -
                     First);
  return Deltas;
}

/// Order-insensitive view of the reported violations.
std::vector<std::pair<int, std::string>>
violationMultiset(const RecordingViolationSink &Sink) {
  std::vector<std::pair<int, std::string>> Result;
  for (const Violation &V : Sink.violations())
    Result.emplace_back(static_cast<int>(V.Kind), V.ObjectType);
  std::sort(Result.begin(), Result.end());
  return Result;
}

class ParallelMarkSweepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelMarkSweepTest, HeapStateMatchesSequential) {
  Vm Seq(makeConfig(1));
  Vm Par(makeConfig(GetParam()));
  buildGraph(Seq, 20000, 64);
  buildGraph(Par, 20000, 64);

  Seq.collectNow();
  Par.collectNow();

  EXPECT_EQ(snapshot(Seq), snapshot(Par));
  EXPECT_EQ(Seq.gcStats().BytesReclaimed, Par.gcStats().BytesReclaimed);
  EXPECT_EQ(Seq.gcStats().ObjectsVisited, Par.gcStats().ObjectsVisited);
  EXPECT_GT(Par.gcStats().ObjectsVisited, 0u);
}

TEST_P(ParallelMarkSweepTest, FreeListOrderMatchesSequential) {
  // The parallel sweep must splice its per-chunk segments into the exact
  // list the sequential sweep builds: probe by allocating out of it.
  Vm Seq(makeConfig(1));
  Vm Par(makeConfig(GetParam()));
  buildGraph(Seq, 20000, 64);
  buildGraph(Par, 20000, 64);

  Seq.collectNow();
  Par.collectNow();
  EXPECT_EQ(allocationProbe(Seq, 512), allocationProbe(Par, 512));
}

TEST_P(ParallelMarkSweepTest, RepeatedCyclesStayEquivalent) {
  Vm Seq(makeConfig(1));
  Vm Par(makeConfig(GetParam()));
  std::vector<ObjRef> SeqAll, ParAll;
  buildGraph(Seq, 12000, 48, &SeqAll);
  buildGraph(Par, 12000, 48, &ParAll);

  const GraphTypes &G = GraphTypes::ensure(Seq.types());
  for (int Round = 0; Round != 3; ++Round) {
    Seq.collectNow();
    Par.collectNow();
    ASSERT_EQ(snapshot(Seq), snapshot(Par)) << "round " << Round;
    ASSERT_EQ(Seq.gcStats().BytesReclaimed, Par.gcStats().BytesReclaimed)
        << "round " << Round;
    // Mutate both graphs identically: cut a deterministic set of links so
    // the next cycle reclaims a different slice.
    Lcg Rng(1000 + Round);
    for (int I = 0; I != 2000; ++I) {
      size_t Victim = Rng.next(SeqAll.size());
      SeqAll[Victim]->setRef(G.FieldA, nullptr);
      ParAll[Victim]->setRef(G.FieldA, nullptr);
    }
  }
}

TEST_P(ParallelMarkSweepTest, ViolationMultisetMatchesSequential) {
  Vm Seq(makeConfig(1));
  Vm Par(makeConfig(GetParam()));
  RecordingViolationSink SeqSink, ParSink;
  AssertionEngine SeqEngine(Seq, &SeqSink);
  AssertionEngine ParEngine(Par, &ParSink);
  // Parallel marking requires path recording off; turn it off on both so
  // the comparison is apples to apples (violation paths are {leaf} either
  // way).
  Seq.collector().setPathRecording(false);
  Par.collector().setPathRecording(false);

  const GraphTypes &G = GraphTypes::ensure(Seq.types());
  for (int Which = 0; Which != 2; ++Which) {
    Vm &TheVm = Which ? Par : Seq;
    AssertionEngine &Engine = Which ? ParEngine : SeqEngine;
    std::vector<ObjRef> All;
    buildGraph(TheVm, 20000, 64, &All);
    MutatorThread &T = TheVm.mainThread();

    // Dead-but-reachable: rooted nodes asserted dead.
    ObjRef DeadArr = TheVm.allocate(T, G.Array, 3);
    TheVm.addGlobalRoot(DeadArr);
    for (uint64_t I = 0; I != 3; ++I) {
      ObjRef Doomed = newNode(TheVm, T, 7000 + static_cast<int64_t>(I));
      DeadArr->setElement(I, Doomed);
      Engine.assertDead(Doomed);
    }

    // Unshared-but-shared: two rooted parents point at the same child.
    for (int I = 0; I != 2; ++I) {
      ObjRef P1 = newNode(TheVm, T);
      ObjRef P2 = newNode(TheVm, T);
      TheVm.addGlobalRoot(P1);
      TheVm.addGlobalRoot(P2);
      ObjRef Child = newNode(TheVm, T, 8000 + I);
      P1->setRef(G.FieldA, Child);
      P2->setRef(G.FieldA, Child);
      Engine.assertUnshared(Child);
    }

    // Owned-by with the path through the owner severed: only a cache keeps
    // the ownee alive.
    ObjRef Owner = newNode(TheVm, T);
    ObjRef Cache = newNode(TheVm, T);
    TheVm.addGlobalRoot(Owner);
    TheVm.addGlobalRoot(Cache);
    ObjRef Ownee = newNode(TheVm, T, 9000);
    Cache->setRef(G.FieldA, Ownee);
    Engine.assertOwnedBy(Owner, Ownee);

    // Instance limit exceeded: counted with atomic increments under the
    // parallel trace, compared against the limit after it.
    Engine.assertInstances(G.Node, 1);
  }

  Seq.collectNow();
  Par.collectNow();

  EXPECT_GT(ParSink.violations().size(), 0u);
  EXPECT_EQ(violationMultiset(SeqSink), violationMultiset(ParSink));
  EXPECT_EQ(SeqSink.countOf(AssertionKind::Dead), 3u);
  EXPECT_EQ(SeqSink.countOf(AssertionKind::Unshared), 2u);
  EXPECT_EQ(SeqSink.countOf(AssertionKind::OwnedBy), 1u);
  EXPECT_EQ(SeqSink.countOf(AssertionKind::Instances), 1u);
  EXPECT_EQ(snapshot(Seq), snapshot(Par));
  EXPECT_EQ(SeqEngine.counters().ViolationsReported,
            ParEngine.counters().ViolationsReported);
}

TEST_P(ParallelMarkSweepTest, GenerationalMajorCycleMatchesSequential) {
  // End-to-end over a real workload: the generational collector's major
  // cycles take the same parallel path. Same seed, same iteration count —
  // the runs must agree on every observable counter.
  registerBuiltinWorkloads();
  HarnessOptions Seq, Par;
  Seq.Collector = Par.Collector = CollectorKind::Generational;
  Seq.RecordPaths = Par.RecordPaths = false;
  Seq.WarmupIterations = Par.WarmupIterations = 0;
  Seq.MeasuredIterations = Par.MeasuredIterations = 1;
  Par.GcThreads = GetParam();
  RecordingViolationSink SeqSink, ParSink;
  Seq.Sink = &SeqSink;
  Par.Sink = &ParSink;

  RunResult SeqResult =
      runWorkload("hsqldb", BenchConfig::WithAssertions, Seq);
  RunResult ParResult =
      runWorkload("hsqldb", BenchConfig::WithAssertions, Par);

  EXPECT_EQ(SeqResult.GcCycles, ParResult.GcCycles);
  EXPECT_EQ(SeqResult.Counters.ViolationsReported,
            ParResult.Counters.ViolationsReported);
  EXPECT_EQ(SeqResult.Counters.OwneesCheckedTotal,
            ParResult.Counters.OwneesCheckedTotal);
  EXPECT_EQ(violationMultiset(SeqSink), violationMultiset(ParSink));
}

TEST_P(ParallelMarkSweepTest, PhaseTimingsRecorded) {
  Vm TheVm(makeConfig(GetParam()));
  buildGraph(TheVm, 20000, 64);
  TheVm.collectNow();
  EXPECT_GT(TheVm.gcStats().MarkNanos, 0u);
  EXPECT_GT(TheVm.gcStats().SweepNanos, 0u);
  EXPECT_LE(TheVm.gcStats().MarkNanos + TheVm.gcStats().SweepNanos,
            TheVm.gcStats().TotalGcNanos);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelMarkSweepTest,
                         ::testing::Values(2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return "Threads" + std::to_string(Info.param);
                         });

TEST(ParallelConfigTest, SingleThreadUsesNoPool) {
  // Threads=1 must be bit-for-bit the original sequential collector: the
  // knob is clamped and no worker pool is ever created.
  Vm TheVm(makeConfig(1));
  EXPECT_EQ(TheVm.collector().gcConfig().Threads, 1u);
  buildGraph(TheVm, 2000, 16);
  TheVm.collectNow();
  EXPECT_GT(TheVm.gcStats().ObjectsVisited, 0u);

  GcConfig Zero;
  Zero.Threads = 0;
  TheVm.collector().setGcConfig(Zero);
  EXPECT_EQ(TheVm.collector().gcConfig().Threads, 1u) << "0 clamps to 1";
}

TEST(ParallelConfigTest, ThreadCountCanChangeBetweenCycles) {
  Vm TheVm(makeConfig(2));
  buildGraph(TheVm, 4000, 16);
  TheVm.collectNow();

  GcConfig Wider;
  Wider.Threads = 4;
  TheVm.collector().setGcConfig(Wider);
  TheVm.collectNow();

  GcConfig Narrow;
  Narrow.Threads = 1;
  TheVm.collector().setGcConfig(Narrow);
  TheVm.collectNow();
  EXPECT_EQ(TheVm.gcStats().Cycles, 3u);
}

} // namespace
