//===- MarkCompactCollectorTest.cpp - gc/MarkCompactCollector unit tests ------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig compactVm() {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::MarkCompact;
  return Config;
}

TEST(MarkCompactCollectorTest, UnreachableObjectsReclaimed) {
  Vm TheVm(compactVm());
  MutatorThread &T = TheVm.mainThread();
  for (int I = 0; I < 100; ++I)
    newNode(TheVm, T);
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST(MarkCompactCollectorTest, SurvivorsSlideDownDense) {
  Vm TheVm(compactVm());
  MutatorThread &T = TheVm.mainThread();

  // Interleave live and dead allocations, then collect: the survivors must
  // end up densely packed in ascending address order.
  HandleScope Scope(T);
  std::vector<Local> Kept;
  for (int I = 0; I < 200; ++I) {
    ObjRef Obj = newNode(TheVm, T, I);
    if (I % 3 == 0)
      Kept.push_back(Scope.handle(Obj));
  }
  TheVm.collectNow();

  // Walk the heap: addresses strictly ascend with no gaps between objects.
  std::vector<ObjRef> Walk;
  TheVm.heap().forEachObject([&](ObjRef Obj) { Walk.push_back(Obj); });
  ASSERT_EQ(Walk.size(), Kept.size());
  for (size_t I = 1; I < Walk.size(); ++I)
    EXPECT_LT(Walk[I - 1], Walk[I]);
  // Every handle resolves to a live, value-intact node.
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  for (size_t I = 0; I < Kept.size(); ++I)
    EXPECT_EQ(Kept[I].get()->getScalar<int64_t>(G.FieldValue),
              static_cast<int64_t>(I * 3));
}

TEST(MarkCompactCollectorTest, InteriorReferencesRewritten) {
  Vm TheVm(compactVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  // A dead object in front forces everything to move.
  newNode(TheVm, T, -1);
  Local Head = Scope.handle(newNode(TheVm, T, 0));
  Local Cur = Scope.handle(Head.get());
  for (int I = 1; I <= 30; ++I) {
    newNode(TheVm, T, -1); // Dead spacer: every link crosses a gap.
    ObjRef Next = newNode(TheVm, T, I);
    Cur.get()->setRef(G.FieldA, Next);
    Cur.set(Next);
  }
  Cur.set(nullptr);

  ObjRef Before = Head.get();
  TheVm.collectNow();
  EXPECT_NE(Head.get(), Before) << "compaction must have moved the chain";

  ObjRef Node = Head.get();
  for (int I = 0; I <= 30; ++I) {
    ASSERT_NE(Node, nullptr);
    EXPECT_EQ(Node->getScalar<int64_t>(G.FieldValue), I);
    Node = Node->getRef(G.FieldA);
  }
  EXPECT_EQ(Node, nullptr);
}

TEST(MarkCompactCollectorTest, RepeatedCollectionsStable) {
  Vm TheVm(compactVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 50));
  for (uint64_t I = 0; I < 50; ++I)
    Arr.get()->setElement(I, newNode(TheVm, T, static_cast<int64_t>(I)));

  TheVm.collectNow();
  ObjRef Settled = Arr.get();
  TheVm.collectNow(); // Nothing dead: nothing should move again.
  EXPECT_EQ(Arr.get(), Settled);
  for (uint64_t I = 0; I < 50; ++I)
    EXPECT_EQ(Arr.get()->getElement(I)->getScalar<int64_t>(G.FieldValue),
              static_cast<int64_t>(I));
}

TEST(MarkCompactCollectorTest, ViolationPathCapturedBeforeMoving) {
  // Violations are detected during marking, before any object moves; the
  // report's types and fields must be correct even though the objects slide
  // afterwards.
  Vm TheVm(compactVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  newNode(TheVm, T, -1); // Dead spacer.
  Local Holder = Scope.handle(newNode(TheVm, T));
  ObjRef Victim = newNode(TheVm, T);
  Holder.get()->setRef(G.FieldB, Victim);
  Engine.assertDead(Victim);

  TheVm.collectNow();
  ASSERT_EQ(Sink.countOf(AssertionKind::Dead), 1u);
  const Violation &V = Sink.violations()[0];
  ASSERT_EQ(V.Path.size(), 2u);
  EXPECT_EQ(V.Path[1].FieldName, "b");
  // And the heap is coherent afterwards.
  EXPECT_EQ(heapObjectCount(TheVm), 2u);
}

TEST(MarkCompactCollectorTest, AllocationPressureCollects) {
  VmConfig Config;
  Config.HeapBytes = 1u << 20;
  Config.Collector = CollectorKind::MarkCompact;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  for (int I = 0; I < 200000; ++I)
    newNode(TheVm, T);
  EXPECT_GT(TheVm.gcStats().Cycles, 0u);
  EXPECT_GT(TheVm.gcStats().BytesReclaimed, 0u);
}

} // namespace
