//===- MarkSweepCollectorTest.cpp - gc/MarkSweepCollector unit tests ----------===//

#include "common/TestGraph.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig smallVm() {
  VmConfig Config;
  Config.HeapBytes = 8u << 20;
  Config.Collector = CollectorKind::MarkSweep;
  return Config;
}

TEST(MarkSweepCollectorTest, UnreachableObjectsReclaimed) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  for (int I = 0; I < 100; ++I)
    newNode(TheVm, T);

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST(MarkSweepCollectorTest, HandleRootsSurvive) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T, 42));
  newNode(TheVm, T); // garbage

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 1u);
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());
  EXPECT_EQ(Kept.get()->getScalar<int64_t>(G.FieldValue), 42);
}

TEST(MarkSweepCollectorTest, GlobalRootsSurvive) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  GlobalRootId Root = TheVm.addGlobalRoot(newNode(TheVm, T, 9));

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 1u);

  TheVm.removeGlobalRoot(Root);
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST(MarkSweepCollectorTest, TransitiveReachability) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Head = Scope.handle(newNode(TheVm, T, 0));
  Local Cur = Scope.handle(Head.get());
  for (int I = 1; I <= 50; ++I) {
    ObjRef Next = newNode(TheVm, T, I);
    Cur.get()->setRef(G.FieldA, Next);
    Cur.set(Next);
  }

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 51u);

  // Cut the chain in the middle: the tail dies.
  ObjRef Mid = Head.get();
  for (int I = 0; I < 25; ++I)
    Mid = Mid->getRef(G.FieldA);
  Mid->setRef(G.FieldA, nullptr);
  Cur.set(nullptr);

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 26u);
}

TEST(MarkSweepCollectorTest, CyclesAreCollected) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  {
    HandleScope Scope(T);
    Local A = Scope.handle(newNode(TheVm, T));
    Local B = Scope.handle(newNode(TheVm, T));
    A.get()->setRef(G.FieldA, B.get());
    B.get()->setRef(G.FieldA, A.get());
    TheVm.collectNow();
    EXPECT_EQ(heapObjectCount(TheVm), 2u) << "rooted cycle survives";
  }

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u) << "unrooted cycle dies";
}

TEST(MarkSweepCollectorTest, SharedObjectSurvivesOneRootRemoval) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();

  HandleScope Scope(T);
  Local Shared = Scope.handle(newNode(TheVm, T));
  GlobalRootId Root = TheVm.addGlobalRoot(Shared.get());

  TheVm.removeGlobalRoot(Root);
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 1u) << "handle still roots it";
}

TEST(MarkSweepCollectorTest, HandleScopeExitDropsRoots) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  {
    HandleScope Scope(T);
    Scope.handle(newNode(TheVm, T));
    TheVm.collectNow();
    EXPECT_EQ(heapObjectCount(TheVm), 1u);
  }
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST(MarkSweepCollectorTest, RefArraysAreTraced) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 10));
  for (uint64_t I = 0; I < 10; ++I)
    Arr.get()->setElement(I, newNode(TheVm, T, static_cast<int64_t>(I)));

  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 11u);

  Arr.get()->setElement(4, nullptr);
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 10u);
}

TEST(MarkSweepCollectorTest, AllocationFailureTriggersGc) {
  VmConfig Config;
  Config.HeapBytes = 1u << 20; // Tiny heap: allocation pressure forces GCs.
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();

  for (int I = 0; I < 200000; ++I)
    newNode(TheVm, T); // All garbage; the VM must keep collecting.

  EXPECT_GT(TheVm.gcStats().Cycles, 0u);
  EXPECT_GT(TheVm.gcStats().BytesReclaimed, 0u);
}

TEST(MarkSweepCollectorTest, StatsAccumulate) {
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  HandleScope Scope(T);
  Scope.handle(newNode(TheVm, T));

  TheVm.collectNow();
  TheVm.collectNow();
  const GcStats &Stats = TheVm.gcStats();
  EXPECT_EQ(Stats.Cycles, 2u);
  EXPECT_GE(Stats.ObjectsVisited, 2u);
  EXPECT_GE(Stats.TotalGcNanos, Stats.LastGcNanos);
}

TEST(MarkSweepCollectorTest, DeadBitsDoNotKeepObjectsAlive) {
  // Without an engine installed, assertion bits in headers are inert: the
  // Base trace loop never looks at them.
  Vm TheVm(smallVm());
  MutatorThread &T = TheVm.mainThread();
  ObjRef Obj = newNode(TheVm, T);
  Obj->header().setFlag(HF_Dead);
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

} // namespace
