//===- GenerationalCollectorTest.cpp - generational collector tests -----------===//
//
// Tests of the two-generation collector: promotion, the write-barrier
// remembered set, and the paper's §2.2 property that assertions are checked
// only at full-heap (major) collections.
//
//===----------------------------------------------------------------------===//

#include "common/TestGraph.h"
#include "gcassert/core/AssertionEngine.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::testgraph;

namespace {

VmConfig genVm(size_t HeapBytes = 16u << 20) {
  VmConfig Config;
  Config.HeapBytes = HeapBytes;
  Config.Collector = CollectorKind::Generational;
  return Config;
}

TEST(GenerationalCollectorTest, GarbageDiesUnderAllocationPressure) {
  Vm TheVm(genVm());
  MutatorThread &T = TheVm.mainThread();
  // Far more garbage than the nursery holds: minor collections must run.
  for (int I = 0; I < 300000; ++I)
    newNode(TheVm, T);
  EXPECT_GT(TheVm.gcStats().MinorCycles, 0u);
  TheVm.collectNow();
  EXPECT_EQ(heapObjectCount(TheVm), 0u);
}

TEST(GenerationalCollectorTest, SurvivorsPromotedIntact) {
  Vm TheVm(genVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Head = Scope.handle(newNode(TheVm, T, 0));
  Local Cur = Scope.handle(Head.get());
  for (int I = 1; I <= 40; ++I) {
    ObjRef Next = newNode(TheVm, T, I);
    Cur.get()->setRef(G.FieldA, Next);
    Cur.set(Next);
  }

  // Enough churn to force several minor collections.
  for (int I = 0; I < 200000; ++I)
    newNode(TheVm, T);
  EXPECT_GT(TheVm.gcStats().MinorCycles, 1u);

  // The chain survived promotion with payloads and links intact.
  ObjRef Node = Head.get();
  for (int I = 0; I <= 40; ++I) {
    ASSERT_NE(Node, nullptr);
    EXPECT_EQ(Node->getScalar<int64_t>(G.FieldValue), I);
    Node = Node->getRef(G.FieldA);
  }
  EXPECT_EQ(Node, nullptr);
}

TEST(GenerationalCollectorTest, RememberedSetKeepsNurseryObjectAlive) {
  Vm TheVm(genVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  // Promote a holder into the old generation.
  HandleScope Scope(T);
  Local Holder = Scope.handle(newNode(TheVm, T, 1));
  TheVm.collectNow(); // Major: Holder is now in the old generation.

  // Store a fresh (nursery) object into the old holder. Only the write
  // barrier's remembered set makes it survive a minor collection when no
  // root points at it.
  ObjRef Young = newNode(TheVm, T, 99);
  Holder.get()->setRef(G.FieldA, Young);

  uint64_t MinorsBefore = TheVm.gcStats().MinorCycles;
  for (int I = 0; I < 300000; ++I)
    newNode(TheVm, T);
  EXPECT_GT(TheVm.gcStats().MinorCycles, MinorsBefore);

  ObjRef Survivor = Holder.get()->getRef(G.FieldA);
  ASSERT_NE(Survivor, nullptr);
  EXPECT_EQ(Survivor->getScalar<int64_t>(G.FieldValue), 99);
}

TEST(GenerationalCollectorTest, ExplicitCollectIsMajor) {
  Vm TheVm(genVm());
  TheVm.collectNow();
  EXPECT_EQ(TheVm.gcStats().Cycles, 1u);
  EXPECT_EQ(TheVm.gcStats().MinorCycles, 0u);
}

TEST(GenerationalCollectorTest, AssertionsUncheckedAtMinorGc) {
  // The paper's §2.2 caveat, as a test: a violated assert-dead stays
  // silent through any number of minor collections and fires at the first
  // major one.
  Vm TheVm(genVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();

  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  Engine.assertDead(Kept.get()); // Violated: Kept is rooted.

  uint64_t MinorsBefore = TheVm.gcStats().MinorCycles;
  for (int I = 0; I < 300000; ++I)
    newNode(TheVm, T);
  EXPECT_GT(TheVm.gcStats().MinorCycles, MinorsBefore);
  EXPECT_EQ(Sink.violations().size(), 0u)
      << "minor collections must not check assertions";

  TheVm.collectNow(); // Major.
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u);
}

TEST(GenerationalCollectorTest, DeadBitSurvivesPromotion) {
  // assert-dead on a nursery object that gets promoted before the major
  // collection: the header bit must travel with the object.
  Vm TheVm(genVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();

  HandleScope Scope(T);
  Local Kept = Scope.handle(newNode(TheVm, T));
  Engine.assertDead(Kept.get());
  for (int I = 0; I < 300000; ++I) // Promote via minor collections.
    newNode(TheVm, T);

  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u);
}

TEST(GenerationalCollectorTest, OwnershipPairsTranslatedAcrossMinors) {
  Vm TheVm(genVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  HandleScope Scope(T);
  Local Owner = Scope.handle(newNode(TheVm, T, 1));
  Local Cache = Scope.handle(newNode(TheVm, T, 2));
  ObjRef Ownee = newNode(TheVm, T, 3);
  Owner.get()->setRef(G.FieldA, Ownee);
  Cache.get()->setRef(G.FieldA, Ownee);
  Engine.assertOwnedBy(Owner.get(), Ownee);

  // Everything moves nursery -> old across these minors.
  for (int I = 0; I < 300000; ++I)
    newNode(TheVm, T);

  TheVm.collectNow();
  EXPECT_EQ(Sink.violations().size(), 0u) << "still properly owned";

  // Break ownership; the next major must catch it at the new addresses.
  Owner.get()->setRef(G.FieldA, nullptr);
  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::OwnedBy), 1u);
}

TEST(GenerationalCollectorTest, RegionLogTranslatedAcrossMinors) {
  Vm TheVm(genVm());
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  MutatorThread &T = TheVm.mainThread();

  HandleScope Scope(T);
  Local Escapee = Scope.handle();

  Engine.startRegion(T);
  Escapee.set(newNode(TheVm, T, 7)); // Logged, then moved by minors.
  for (int I = 0; I < 300000; ++I)
    newNode(TheVm, T);
  Engine.assertAllDead(T);

  TheVm.collectNow();
  EXPECT_EQ(Sink.countOf(AssertionKind::Dead), 1u)
      << "the escaped region allocation is caught at its promoted address";
}

TEST(GenerationalCollectorTest, LargeObjectsPretenured) {
  Vm TheVm(genVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  // Much bigger than a quarter of the nursery: allocated directly in the
  // old generation, so minors never move it.
  HandleScope Scope(T);
  Local Big = Scope.handle(TheVm.allocate(T, G.Blob, 2u << 20));
  ObjRef Before = Big.get();
  for (int I = 0; I < 300000; ++I)
    newNode(TheVm, T);
  EXPECT_EQ(Big.get(), Before) << "pretenured objects are stable";
  EXPECT_EQ(Big.get()->arrayLength(), 2u << 20);
}

TEST(GenerationalCollectorTest, MinorCyclesAreFasterThanMajor) {
  Vm TheVm(genVm());
  MutatorThread &T = TheVm.mainThread();
  const GraphTypes &G = GraphTypes::ensure(TheVm.types());

  // A sizeable live old generation makes majors expensive; minors only
  // touch the (mostly dead) nursery.
  HandleScope Scope(T);
  Local Arr = Scope.handle(TheVm.allocate(T, G.Array, 50000));
  for (uint64_t I = 0; I < 50000; ++I) {
    // The allocation can trigger a minor collection that moves the array,
    // so the receiver must be re-fetched from the handle afterwards —
    // evaluating it as `Arr.get()->setElement(I, newNode(…))` leaves the
    // receiver's evaluation order against the GC point unspecified.
    ObjRef N = newNode(TheVm, T, static_cast<int64_t>(I));
    Arr.get()->setElement(I, N);
  }
  TheVm.collectNow(); // Promote the lot.

  uint64_t MajorNanos = TheVm.gcStats().LastGcNanos;
  for (int I = 0; I < 100000; ++I)
    newNode(TheVm, T); // Pure nursery churn.
  ASSERT_GT(TheVm.gcStats().MinorCycles, 0u);
  uint64_t MinorNanos = TheVm.gcStats().LastGcNanos;

  EXPECT_LT(MinorNanos, MajorNanos)
      << "minor collections must not pay for the old generation";
}

} // namespace
