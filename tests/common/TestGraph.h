//===- tests/common/TestGraph.h - Shared test object graphs -----*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared managed-type fixtures for the unit tests: a "Node" class with
/// three reference fields and an integer payload, a reference array and a
/// byte-blob array.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_TESTS_COMMON_TESTGRAPH_H
#define GCASSERT_TESTS_COMMON_TESTGRAPH_H

#include "gcassert/runtime/Vm.h"

namespace gcassert {
namespace testgraph {

/// Type ids and field offsets of the shared test types.
struct GraphTypes {
  TypeId Node;
  uint32_t FieldA;
  uint32_t FieldB;
  uint32_t FieldC;
  uint32_t FieldValue;
  TypeId Array;
  TypeId Blob;

  /// Registers the test types in \p Types, or reconstructs the descriptor
  /// from an existing registration (keyed by name: registry addresses can
  /// be reused across VM instances).
  static GraphTypes ensure(TypeRegistry &Types) {
    GraphTypes G;
    if (const TypeInfo *Node = Types.lookup("LNode;")) {
      G.Node = Node->id();
      G.FieldA = Node->fields()[0].Offset;
      G.FieldB = Node->fields()[1].Offset;
      G.FieldC = Node->fields()[2].Offset;
      G.FieldValue = Node->fields()[3].Offset;
      G.Array = Types.lookup("[LNode;")->id();
      G.Blob = Types.lookup("[B")->id();
      return G;
    }
    TypeBuilder NodeB(Types, "LNode;");
    G.FieldA = NodeB.addRef("a");
    G.FieldB = NodeB.addRef("b");
    G.FieldC = NodeB.addRef("c");
    G.FieldValue = NodeB.addScalar("value", 8);
    G.Node = NodeB.build();
    G.Array = Types.registerRefArray("[LNode;");
    G.Blob = Types.registerDataArray("[B", 1);
    return G;
  }
};

/// Allocates a Node with the given payload value.
inline ObjRef newNode(Vm &TheVm, MutatorThread &Thread, int64_t Value = 0) {
  GraphTypes G = GraphTypes::ensure(TheVm.types());
  ObjRef Node = TheVm.allocate(Thread, G.Node);
  Node->setScalar<int64_t>(G.FieldValue, Value);
  return Node;
}

/// Human-readable collector name for parameterized test labels.
inline const char *collectorName(CollectorKind Kind) {
  switch (Kind) {
  case CollectorKind::MarkSweep:
    return "MarkSweep";
  case CollectorKind::SemiSpace:
    return "SemiSpace";
  case CollectorKind::MarkCompact:
    return "MarkCompact";
  case CollectorKind::Generational:
    return "Generational";
  }
  return "Unknown";
}

/// Counts the objects currently present in the heap walk.
inline size_t heapObjectCount(Vm &TheVm) {
  size_t Count = 0;
  TheVm.heap().forEachObject([&](ObjRef) { ++Count; });
  return Count;
}

} // namespace testgraph
} // namespace gcassert

#endif // GCASSERT_TESTS_COMMON_TESTGRAPH_H
