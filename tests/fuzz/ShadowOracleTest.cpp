//===- ShadowOracleTest.cpp - Shadow-heap oracle unit tests --------------===//
//
// Handcrafted traces with violation multisets and live sets worked out by
// hand. The differential harness checks the oracle against four collector
// implementations; these tests check it against pencil and paper, so a bug
// that slipped into both sides of the differential comparison still shows.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/ShadowHeap.h"

#include "gcassert/fuzz/TraceInterpreter.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::fuzz;

namespace {

TraceProgram parse(const std::string &Spec) {
  TraceProgram Program;
  std::string Error;
  EXPECT_TRUE(parseTraceSpec(Spec, Program, &Error)) << Error;
  return Program;
}

ShadowResult oracle(const std::string &Spec) {
  return runShadowOracle(parse(Spec));
}

size_t countKind(const ViolationMultiset &Violations, AssertionKind Kind) {
  size_t N = 0;
  for (const ViolationKey &V : Violations)
    if (V.Kind == Kind)
      ++N;
  return N;
}

} // namespace

TEST(ShadowOracleTest, EmptyTraceIsClean) {
  ShadowResult R = oracle("prog:c");
  EXPECT_TRUE(R.Violations.empty());
  ASSERT_EQ(R.Snapshots.size(), 1u);
  EXPECT_TRUE(R.Snapshots[0].ClassSerials.empty());
  EXPECT_TRUE(R.Snapshots[0].PerType.empty());
  EXPECT_EQ(R.ObjectsAllocated, 0u);
}

TEST(ShadowOracleTest, RootedObjectSurvivesWithSerial) {
  // One Small allocated into slot 0, still rooted at the collect.
  ShadowResult R = oracle("prog:n,0,0,0;c");
  EXPECT_TRUE(R.Violations.empty());
  ASSERT_EQ(R.Snapshots.size(), 1u);
  // First allocation gets serial 1; FuzzType::Small is index 0.
  ASSERT_EQ(R.Snapshots[0].ClassSerials.size(), 1u);
  EXPECT_EQ(R.Snapshots[0].ClassSerials[0],
            (std::pair<uint8_t, uint64_t>{0, 1}));
  ASSERT_EQ(R.Snapshots[0].PerType.size(), 1u);
  EXPECT_EQ(R.Snapshots[0].PerType[0][0], 0u); // type index
  EXPECT_EQ(R.Snapshots[0].PerType[0][1], 1u); // instances
  EXPECT_EQ(R.Snapshots[0].PerType[0][2],
            fuzzAllocationSize(FuzzType::Small, 0));
  EXPECT_EQ(R.ObjectsAllocated, 1u);
}

TEST(ShadowOracleTest, DroppedObjectDies) {
  ShadowResult R = oracle("prog:n,0,0,0;d,0;c");
  EXPECT_TRUE(R.Violations.empty());
  ASSERT_EQ(R.Snapshots.size(), 1u);
  EXPECT_TRUE(R.Snapshots[0].ClassSerials.empty());
}

TEST(ShadowOracleTest, AssertDeadViolatedWhileRooted) {
  // Flagged dead but still rooted: a Dead violation at the collect, and --
  // the flag is sticky, matching the engine -- at every later collect while
  // the object survives.
  ShadowResult R = oracle("prog:n,0,0,0;ad,0;c;c");
  EXPECT_EQ(countKind(R.Violations, AssertionKind::Dead), 2u);
  EXPECT_EQ(R.Violations.size(), 2u);
  EXPECT_EQ(R.Violations[0].Cycle, 0u);
  EXPECT_EQ(R.Violations[1].Cycle, 1u);
  EXPECT_EQ(R.Violations[0].TypeName, fuzzTypeName(FuzzType::Small));
}

TEST(ShadowOracleTest, AssertDeadSatisfiedWhenDropped) {
  ShadowResult R = oracle("prog:n,0,0,0;ad,0;d,0;c;c");
  EXPECT_TRUE(R.Violations.empty());
}

TEST(ShadowOracleTest, AssertUnsharedCountsRootsAndFieldsAsEncounters) {
  // The Small in slot 0 is reachable from its root slot AND from a field of
  // the rooted Node in slot 1: two encounters, so the unshared assertion is
  // violated.
  ShadowResult R = oracle("prog:n,0,0,0;n,1,1,0;s,1,0,0;au,0;c");
  EXPECT_EQ(countKind(R.Violations, AssertionKind::Unshared), 1u);

  // A single root and no heap in-edges: one encounter, clean.
  ShadowResult Clean = oracle("prog:n,0,0,0;au,0;c");
  EXPECT_EQ(countKind(Clean.Violations, AssertionKind::Unshared), 0u);
}

TEST(ShadowOracleTest, AssertInstancesLimitTrips) {
  // Limit Small instances to 1, allocate two rooted Smalls.
  ShadowResult R = oracle("prog:ai,0,0,1;n,0,0,0;n,1,0,0;c");
  EXPECT_EQ(countKind(R.Violations, AssertionKind::Instances), 1u);

  // Exactly at the limit: no violation (the check is count > limit).
  ShadowResult AtLimit = oracle("prog:ai,0,0,1;n,0,0,0;c");
  EXPECT_EQ(countKind(AtLimit.Violations, AssertionKind::Instances), 0u);
}

TEST(ShadowOracleTest, AssertVolumeLimitTrips) {
  uint64_t OneSmall = fuzzAllocationSize(FuzzType::Small, 0);
  // Limit the byte volume of Small to one instance's worth, allocate two.
  ShadowResult R = oracle("prog:av,0,0," + std::to_string(OneSmall) +
                          ";n,0,0,0;n,1,0,0;c");
  EXPECT_EQ(countKind(R.Violations, AssertionKind::Volume), 1u);
}

TEST(ShadowOracleTest, OwnedByHoldsWhileOwnerFieldCoversOwnee) {
  // The ao op stores owner.field = ownee, so even a rooted ownee sits in
  // the owner's phase-1 region: the ownership phase claims it before the
  // root trace can, and no violation fires.
  ShadowResult Covered = oracle("prog:n,0,2,0;n,1,0,0;ao,0,0,1;c");
  EXPECT_EQ(countKind(Covered.Violations, AssertionKind::OwnedBy), 0u);

  // Null the owner's field after asserting ownership: now the rooted ownee
  // is first reached by the root trace, outside any owner's region.
  ShadowResult R = oracle("prog:n,0,2,0;n,1,0,0;ao,0,0,1;z,0,0;c");
  EXPECT_EQ(countKind(R.Violations, AssertionKind::OwnedBy), 1u);

  // Drop the ownee's root but keep the owner's field: reachable only
  // through the owner, clean, and the ownee stays live.
  ShadowResult Clean = oracle("prog:n,0,2,0;n,1,0,0;ao,0,0,1;d,1;c");
  EXPECT_EQ(countKind(Clean.Violations, AssertionKind::OwnedBy), 0u);
  ASSERT_EQ(Clean.Snapshots.size(), 1u);
  EXPECT_EQ(Clean.Snapshots[0].ClassSerials.size(), 2u);
}

TEST(ShadowOracleTest, OwneeOutlivedOwnerIsDeferredOneCycle) {
  // The owner dies at the first collect while the ownee stays rooted; the
  // watch resolves at the *next* collect, and only in the extended set.
  ShadowResult R = oracle("prog:n,0,2,0;n,1,0,0;ao,0,0,1;d,0;c;c");
  EXPECT_EQ(countKind(R.Violations, AssertionKind::OwneeOutlivedOwner), 1u);
  EXPECT_EQ(countKind(R.CoreViolations, AssertionKind::OwneeOutlivedOwner),
            0u);
  for (const ViolationKey &V : R.Violations) {
    if (V.Kind == AssertionKind::OwneeOutlivedOwner) {
      EXPECT_EQ(V.Cycle, 1u);
    }
  }
}

TEST(ShadowOracleTest, DeadOwnerRegionRetainsOwneeOneCycle) {
  // Paper section 2.5.2: the ownership phase scans from every owner in the
  // table, live or not, so an unrooted ownee of a dead owner survives the
  // first collect through the owner's field and dies at the second.
  ShadowResult R = oracle("prog:n,0,2,0;n,1,0,0;ao,0,0,1;d,0;d,1;c;c");
  ASSERT_EQ(R.Snapshots.size(), 2u);
  EXPECT_EQ(R.Snapshots[0].ClassSerials.size(), 1u); // the ownee, cycle 0
  EXPECT_TRUE(R.Snapshots[1].ClassSerials.empty());  // gone by cycle 1
}

TEST(ShadowOracleTest, RegionEndFlagsSurvivorsDead) {
  // An object allocated inside a region and still rooted when the region
  // closes: region-end asserts it dead, the next collect reports it.
  ShadowResult R = oracle("prog:rb;n,0,0,0;re;c");
  EXPECT_EQ(countKind(R.Violations, AssertionKind::Dead), 1u);

  // Dropped before the collect: clean.
  ShadowResult Clean = oracle("prog:rb;n,0,0,0;re;d,0;c");
  EXPECT_TRUE(Clean.Violations.empty());
}

TEST(ShadowOracleTest, StoreRefusesOwnerValues) {
  // Storing an Owner into another object's field must be a no-op (the
  // no-heap-edges-to-owners invariant): dropping the owner's root kills it
  // even though a store was attempted.
  ShadowResult R = oracle("prog:n,0,2,0;n,1,1,0;s,1,0,0;d,0;c");
  ASSERT_EQ(R.Snapshots.size(), 1u);
  // Only the Node survives.
  ASSERT_EQ(R.Snapshots[0].ClassSerials.size(), 1u);
  EXPECT_EQ(R.Snapshots[0].ClassSerials[0].first,
            static_cast<uint8_t>(FuzzType::Node));
}

// Every handcrafted expectation above must also hold on a real VM -- pin
// the oracle and one real collector together on the trickiest trace.
TEST(ShadowOracleTest, OracleMatchesRealRunOnOwnershipTrace) {
  TraceProgram Program =
      parse("prog:n,0,2,0;n,1,0,0;ao,0,0,1;d,0;c;n,2,1,0;c");
  ShadowResult Expected = runShadowOracle(Program);
  RunConfig Config; // marksweep / 1 thread / hardening off
  RunResult Actual = runTrace(Program, Config);
  ASSERT_TRUE(Actual.Valid) << Actual.InvalidReason;
  EXPECT_EQ(Actual.Violations, Expected.Violations);
  ASSERT_EQ(Actual.Snapshots.size(), Expected.Snapshots.size());
  for (size_t I = 0; I != Expected.Snapshots.size(); ++I)
    EXPECT_EQ(Actual.Snapshots[I], Expected.Snapshots[I]);
}
