//===- ReducerTest.cpp - Delta-debugging reducer tests -------------------===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/TraceReducer.h"

#include "gcassert/fuzz/DifferentialRunner.h"
#include "gcassert/fuzz/TraceGenerator.h"
#include "gcassert/support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::fuzz;

namespace {

size_t countOps(const TraceProgram &P, OpKind Kind) {
  size_t N = 0;
  for (const TraceOp &Op : P.Ops)
    N += Op.Kind == Kind;
  return N;
}

class ReducerTest : public ::testing::Test {
protected:
  void TearDown() override { disarmAllFailpoints(); }
};

} // namespace

TEST_F(ReducerTest, ReducesToOneMinimalTrace) {
  // Predicate: the trace still contains an AssertDead and a Collect. The
  // 1-minimal answer is exactly two ops, whatever else the generator put in.
  TraceProgram Program = generateTrace(5, {.TargetOps = 96});
  ASSERT_GE(countOps(Program, OpKind::AssertDead), 1u);
  auto StillFails = [](const TraceProgram &P) {
    return countOps(P, OpKind::AssertDead) >= 1 &&
           countOps(P, OpKind::Collect) >= 1;
  };
  ReducerStats Stats;
  TraceProgram Minimal = reduceTrace(Program, StillFails, &Stats);
  EXPECT_EQ(Minimal.Ops.size(), 2u);
  EXPECT_TRUE(StillFails(Minimal));
  EXPECT_EQ(Stats.InitialOps, Program.Ops.size());
  EXPECT_EQ(Stats.FinalOps, Minimal.Ops.size());
  EXPECT_GT(Stats.Probes, 0u);
  // A reduced program replays as an explicit op list, not a seed.
  EXPECT_EQ(Minimal.replaySpec().rfind("prog:", 0), 0u);
}

TEST_F(ReducerTest, HonorsProbeBudget) {
  TraceProgram Program = generateTrace(6, {.TargetOps = 96});
  ReducerStats Stats;
  TraceProgram Out = reduceTrace(
      Program, [](const TraceProgram &) { return true; }, &Stats,
      /*MaxProbes=*/3);
  EXPECT_LE(Stats.Probes, 3u);
  // Whatever came out still satisfies the (trivial) predicate.
  EXPECT_LE(Out.Ops.size(), Program.Ops.size());
}

TEST_F(ReducerTest, AlreadyMinimalTraceIsReturnedAsIs) {
  TraceProgram Program;
  std::string Error;
  ASSERT_TRUE(parseTraceSpec("prog:n,0,0,0;c", Program, &Error)) << Error;
  TraceProgram Minimal = reduceTrace(Program, [](const TraceProgram &P) {
    return P.Ops.size() == 2;
  });
  EXPECT_EQ(Minimal.Ops.size(), 2u);
}

// The acceptance-criteria path end to end: a deliberately seeded heap
// corruption must (a) surface as a differential divergence on the hardened
// matrix and (b) reduce to a replayable trace that still diverges — and
// stop diverging once the failpoint is disarmed.
TEST_F(ReducerTest, SeededCorruptionIsCaughtAndReduced) {
  std::vector<RunConfig> Matrix = buildMatrix(MatrixKind::HardenedOnly);
  TraceProgram Program = generateTrace(1, {.TargetOps = 40});

  faults::CorruptRef.armAlways();
  DiffReport Report = runDifferential(Program, Matrix);
  ASSERT_TRUE(Report.Diverged)
      << "seeded corrupt.ref divergence was not caught";

  ReducerStats Stats;
  TraceProgram Minimal = reduceTrace(
      Program,
      [&](const TraceProgram &Candidate) {
        return runDifferential(Candidate, Matrix).Diverged;
      },
      &Stats, /*MaxProbes=*/200);
  EXPECT_LT(Minimal.Ops.size(), Program.Ops.size());
  // One allocation to scribble plus one checking collect to screen it.
  EXPECT_LE(Minimal.Ops.size(), 4u);
  EXPECT_TRUE(runDifferential(Minimal, Matrix).Diverged);

  disarmAllFailpoints();
  EXPECT_FALSE(runDifferential(Minimal, Matrix).Diverged)
      << "divergence persisted after disarming — not failpoint-driven?";
}
