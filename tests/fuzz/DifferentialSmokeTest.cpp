//===- DifferentialSmokeTest.cpp - Differential runner smoke coverage ----===//
//
// Part of the gcassert project, under the MIT License.
//
// The in-tree slice of the fuzzing acceptance campaign: a batch of fixed
// seeds over the quick matrix on every ctest run, one seed over the full
// 48-config matrix, and the structural matrix/interpreter properties the
// campaign relies on. The long campaign itself lives behind the
// gcassert-fuzz CLI (see tests/CMakeLists.txt for the smoke invocation).
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/DifferentialRunner.h"

#include "gcassert/fuzz/TraceGenerator.h"

#include <gtest/gtest.h>

#include <set>

using namespace gcassert;
using namespace gcassert::fuzz;

TEST(DifferentialSmokeTest, MatrixShapes) {
  std::vector<RunConfig> Full = buildMatrix(MatrixKind::Full);
  // 48 stop-the-world configs plus the 12-config incremental axis.
  EXPECT_EQ(Full.size(), 60u);
  // Both halves of the mutator-thread axis are present.
  std::set<unsigned> Mutators;
  unsigned FullIncremental = 0;
  for (const RunConfig &C : Full) {
    Mutators.insert(C.MutatorThreads);
    if (C.Incremental) {
      ++FullIncremental;
      EXPECT_EQ(C.Collector, CollectorKind::MarkSweep);
    }
  }
  EXPECT_EQ(Mutators, (std::set<unsigned>{1u, 4u}));
  EXPECT_EQ(FullIncremental, 12u);

  std::vector<RunConfig> Quick = buildMatrix(MatrixKind::Quick);
  EXPECT_EQ(Quick.size(), 5u);
  for (const RunConfig &C : Quick) {
    EXPECT_EQ(C.Threads, 1u);
    EXPECT_EQ(C.Hardening, HardeningMode::Off);
    EXPECT_EQ(C.MutatorThreads, 1u);
  }
  EXPECT_TRUE(Quick.back().Incremental);

  std::vector<RunConfig> Hardened = buildMatrix(MatrixKind::HardenedOnly);
  EXPECT_EQ(Hardened.size(), 4u);
  // Hardened configs run single-mutator: EveryNth failpoint policies are
  // only deterministic on a sequential trace loop.
  for (const RunConfig &C : Hardened) {
    EXPECT_NE(C.Hardening, HardeningMode::Off);
    EXPECT_EQ(C.MutatorThreads, 1u);
    EXPECT_FALSE(C.Incremental);
  }

  // The incremental leg pairs each mark-sweep cell with its SATB drive.
  std::vector<RunConfig> Incremental = buildMatrix(MatrixKind::Incremental);
  EXPECT_EQ(Incremental.size(), 24u);
  unsigned IncCount = 0;
  for (const RunConfig &C : Incremental) {
    EXPECT_EQ(C.Collector, CollectorKind::MarkSweep);
    if (C.Incremental)
      ++IncCount;
  }
  EXPECT_EQ(IncCount, 12u);

  // All four collector families appear in the general matrices.
  for (const std::vector<RunConfig> *M : {&Full, &Quick, &Hardened}) {
    std::set<CollectorKind> Kinds;
    for (const RunConfig &C : *M)
      Kinds.insert(C.Collector);
    EXPECT_EQ(Kinds.size(), 4u);
  }
}

TEST(DifferentialSmokeTest, QuickMatrixBatchIsClean) {
  std::vector<RunConfig> Matrix = buildMatrix(MatrixKind::Quick);
  for (uint64_t Seed = 100; Seed != 140; ++Seed) {
    TraceProgram Program = generateTrace(Seed, {.TargetOps = 64});
    DiffReport Report = runDifferential(Program, Matrix);
    ASSERT_FALSE(Report.Diverged)
        << "seed " << Seed << " [" << Report.Config
        << "]: " << Report.Description
        << "\nreplay: " << Program.replaySpec();
  }
}

TEST(DifferentialSmokeTest, FullMatrixSingleSeedIsClean) {
  std::vector<RunConfig> Matrix = buildMatrix(MatrixKind::Full);
  TraceProgram Program = generateTrace(4242, {.TargetOps = 96});
  DiffReport Report = runDifferential(Program, Matrix);
  EXPECT_FALSE(Report.Diverged)
      << "[" << Report.Config << "]: " << Report.Description
      << "\nreplay: " << Program.replaySpec();
}

TEST(DifferentialSmokeTest, RunResultStatsInvariantsHold) {
  // The interpreter's structural requirements on a clean run: every Collect
  // op produced exactly one engine cycle (no implicit collections), one
  // extra checks-detached cleanup collection ran at the end, and the
  // stop-the-world drive took a snapshot per collect (the incremental
  // drive relies on the Final snapshot instead).
  TraceProgram Program = generateTrace(77, {.TargetOps = 64});
  for (const RunConfig &Config : buildMatrix(MatrixKind::Quick)) {
    RunResult R = runTrace(Program, Config);
    ASSERT_TRUE(R.Valid) << describeRunConfig(Config) << ": "
                         << R.InvalidReason;
    EXPECT_EQ(R.CollectOps, Program.collectCount());
    EXPECT_EQ(R.EngineGcCycles, R.CollectOps);
    EXPECT_EQ(R.Stats.Cycles, R.CollectOps + 1);
    if (Config.Incremental) {
      EXPECT_TRUE(R.Snapshots.empty());
      // Every Collect op begins one incremental cycle and every begun
      // cycle is finished exactly once; the cleanup collection runs with
      // no cycle in flight, via the atomic path.
      EXPECT_EQ(R.Stats.IncrementalCycles, R.CollectOps);
    } else {
      EXPECT_EQ(R.Snapshots.size(), R.CollectOps);
      EXPECT_EQ(R.Stats.IncrementalCycles, 0u);
    }
  }
}

TEST(DifferentialSmokeTest, InterpreterAgreesWithOracleAcrossThreadCounts) {
  // Parallel tracing must not change verdicts: compare a 4-thread hardened
  // run directly against the oracle.
  TraceProgram Program = generateTrace(31, {.TargetOps = 80});
  ShadowResult Expected = runShadowOracle(Program);
  RunConfig Config;
  Config.Collector = CollectorKind::MarkSweep;
  Config.Threads = 4;
  Config.Hardening = HardeningMode::Check;
  RunResult R = runTrace(Program, Config);
  ASSERT_TRUE(R.Valid) << R.InvalidReason;
  EXPECT_EQ(R.Violations, Expected.Violations);
  ASSERT_EQ(R.Snapshots.size(), Expected.Snapshots.size());
  for (size_t I = 0; I != R.Snapshots.size(); ++I)
    EXPECT_EQ(R.Snapshots[I], Expected.Snapshots[I]) << "snapshot " << I;
}
