//===- DifferentialSmokeTest.cpp - Differential runner smoke coverage ----===//
//
// Part of the gcassert project, under the MIT License.
//
// The in-tree slice of the fuzzing acceptance campaign: a batch of fixed
// seeds over the quick matrix on every ctest run, one seed over the full
// 48-config matrix, and the structural matrix/interpreter properties the
// campaign relies on. The long campaign itself lives behind the
// gcassert-fuzz CLI (see tests/CMakeLists.txt for the smoke invocation).
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/DifferentialRunner.h"

#include "gcassert/fuzz/TraceGenerator.h"

#include <gtest/gtest.h>

#include <set>

using namespace gcassert;
using namespace gcassert::fuzz;

TEST(DifferentialSmokeTest, MatrixShapes) {
  std::vector<RunConfig> Full = buildMatrix(MatrixKind::Full);
  EXPECT_EQ(Full.size(), 48u);
  // Both halves of the mutator-thread axis are present.
  std::set<unsigned> Mutators;
  for (const RunConfig &C : Full)
    Mutators.insert(C.MutatorThreads);
  EXPECT_EQ(Mutators, (std::set<unsigned>{1u, 4u}));

  std::vector<RunConfig> Quick = buildMatrix(MatrixKind::Quick);
  EXPECT_EQ(Quick.size(), 4u);
  for (const RunConfig &C : Quick) {
    EXPECT_EQ(C.Threads, 1u);
    EXPECT_EQ(C.Hardening, HardeningMode::Off);
    EXPECT_EQ(C.MutatorThreads, 1u);
  }

  std::vector<RunConfig> Hardened = buildMatrix(MatrixKind::HardenedOnly);
  EXPECT_EQ(Hardened.size(), 4u);
  // Hardened configs run single-mutator: EveryNth failpoint policies are
  // only deterministic on a sequential trace loop.
  for (const RunConfig &C : Hardened) {
    EXPECT_NE(C.Hardening, HardeningMode::Off);
    EXPECT_EQ(C.MutatorThreads, 1u);
  }

  // All four collector families appear in every matrix.
  for (const std::vector<RunConfig> *M : {&Full, &Quick, &Hardened}) {
    std::set<CollectorKind> Kinds;
    for (const RunConfig &C : *M)
      Kinds.insert(C.Collector);
    EXPECT_EQ(Kinds.size(), 4u);
  }
}

TEST(DifferentialSmokeTest, QuickMatrixBatchIsClean) {
  std::vector<RunConfig> Matrix = buildMatrix(MatrixKind::Quick);
  for (uint64_t Seed = 100; Seed != 140; ++Seed) {
    TraceProgram Program = generateTrace(Seed, {.TargetOps = 64});
    DiffReport Report = runDifferential(Program, Matrix);
    ASSERT_FALSE(Report.Diverged)
        << "seed " << Seed << " [" << Report.Config
        << "]: " << Report.Description
        << "\nreplay: " << Program.replaySpec();
  }
}

TEST(DifferentialSmokeTest, FullMatrixSingleSeedIsClean) {
  std::vector<RunConfig> Matrix = buildMatrix(MatrixKind::Full);
  TraceProgram Program = generateTrace(4242, {.TargetOps = 96});
  DiffReport Report = runDifferential(Program, Matrix);
  EXPECT_FALSE(Report.Diverged)
      << "[" << Report.Config << "]: " << Report.Description
      << "\nreplay: " << Program.replaySpec();
}

TEST(DifferentialSmokeTest, RunResultStatsInvariantsHold) {
  // The interpreter's structural requirements on a clean run: every Collect
  // op produced exactly one engine cycle (no implicit collections), and a
  // snapshot per collect.
  TraceProgram Program = generateTrace(77, {.TargetOps = 64});
  for (const RunConfig &Config : buildMatrix(MatrixKind::Quick)) {
    RunResult R = runTrace(Program, Config);
    ASSERT_TRUE(R.Valid) << describeRunConfig(Config) << ": "
                         << R.InvalidReason;
    EXPECT_EQ(R.CollectOps, Program.collectCount());
    EXPECT_EQ(R.EngineGcCycles, R.CollectOps);
    EXPECT_EQ(R.Snapshots.size(), R.CollectOps);
  }
}

TEST(DifferentialSmokeTest, InterpreterAgreesWithOracleAcrossThreadCounts) {
  // Parallel tracing must not change verdicts: compare a 4-thread hardened
  // run directly against the oracle.
  TraceProgram Program = generateTrace(31, {.TargetOps = 80});
  ShadowResult Expected = runShadowOracle(Program);
  RunConfig Config;
  Config.Collector = CollectorKind::MarkSweep;
  Config.Threads = 4;
  Config.Hardening = HardeningMode::Check;
  RunResult R = runTrace(Program, Config);
  ASSERT_TRUE(R.Valid) << R.InvalidReason;
  EXPECT_EQ(R.Violations, Expected.Violations);
  ASSERT_EQ(R.Snapshots.size(), Expected.Snapshots.size());
  for (size_t I = 0; I != R.Snapshots.size(); ++I)
    EXPECT_EQ(R.Snapshots[I], Expected.Snapshots[I]) << "snapshot " << I;
}
