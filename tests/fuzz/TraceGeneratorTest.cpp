//===- TraceGeneratorTest.cpp - Generator determinism and replay specs ---===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/TraceGenerator.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::fuzz;

TEST(TraceGeneratorTest, SameSeedSameProgram) {
  TraceProgram A = generateTrace(7);
  TraceProgram B = generateTrace(7);
  ASSERT_EQ(A.Ops.size(), B.Ops.size());
  for (size_t I = 0; I != A.Ops.size(); ++I)
    EXPECT_EQ(A.Ops[I], B.Ops[I]) << "op " << I;
  EXPECT_TRUE(A.HasSeed);
  EXPECT_EQ(A.Seed, 7u);
  EXPECT_EQ(A.SeedTargetOps, GeneratorOptions().TargetOps);
}

TEST(TraceGeneratorTest, DifferentSeedsDiffer) {
  TraceProgram A = generateTrace(1);
  TraceProgram B = generateTrace(2);
  EXPECT_NE(A.serializeOps(), B.serializeOps());
}

TEST(TraceGeneratorTest, EveryProgramEndsWithTwoCollects) {
  // The trailing pair is load-bearing: the second collect resolves the
  // one-cycle ownee-outlived-owner watch.
  for (uint64_t Seed = 1; Seed != 20; ++Seed) {
    TraceProgram P = generateTrace(Seed);
    ASSERT_GE(P.Ops.size(), 2u);
    EXPECT_EQ(P.Ops[P.Ops.size() - 1].Kind, OpKind::Collect);
    EXPECT_EQ(P.Ops[P.Ops.size() - 2].Kind, OpKind::Collect);
    EXPECT_GE(P.collectCount(), 2u);
  }
}

TEST(TraceGeneratorTest, SeedSpecRoundTrip) {
  TraceProgram Generated = generateTrace(123, {.TargetOps = 40});
  EXPECT_EQ(Generated.replaySpec(), "seed:123:ops=40");

  TraceProgram Parsed;
  std::string Error;
  ASSERT_TRUE(parseTraceSpec("seed:123:ops=40", Parsed, &Error)) << Error;
  EXPECT_EQ(Parsed.serializeOps(), Generated.serializeOps());
  EXPECT_TRUE(Parsed.HasSeed);
  EXPECT_EQ(Parsed.replaySpec(), Generated.replaySpec());
}

TEST(TraceGeneratorTest, OpListSpecRoundTrip) {
  TraceProgram Generated = generateTrace(55, {.TargetOps = 30});
  std::string Spec = Generated.serializeOps();
  ASSERT_EQ(Spec.rfind("prog:", 0), 0u);

  TraceProgram Parsed;
  std::string Error;
  ASSERT_TRUE(parseTraceSpec(Spec, Parsed, &Error)) << Error;
  ASSERT_EQ(Parsed.Ops.size(), Generated.Ops.size());
  for (size_t I = 0; I != Parsed.Ops.size(); ++I)
    EXPECT_EQ(Parsed.Ops[I], Generated.Ops[I]) << "op " << I;
  // The op-list form carries no seed; its replay spec is the op list again.
  EXPECT_FALSE(Parsed.HasSeed);
  EXPECT_EQ(Parsed.replaySpec(), Spec);
}

TEST(TraceGeneratorTest, MalformedSpecsAreRejected) {
  TraceProgram Out;
  std::string Error;
  EXPECT_FALSE(parseTraceSpec("nonsense", Out, &Error));
  EXPECT_FALSE(parseTraceSpec("seed:", Out, &Error));
  EXPECT_FALSE(parseTraceSpec("seed:12:bogus=3", Out, &Error));
  EXPECT_FALSE(parseTraceSpec("prog:qq,1", Out, &Error));
  EXPECT_FALSE(parseTraceSpec("prog:n,1", Out, &Error));     // missing operands
  EXPECT_FALSE(parseTraceSpec("prog:d,999", Out, &Error));   // operand > 255
  EXPECT_FALSE(parseTraceSpec("prog:c,1", Out, &Error));     // extra operand
  EXPECT_FALSE(Error.empty());
}

TEST(TraceGeneratorTest, EmptyProgSpecParses) {
  TraceProgram Out;
  std::string Error;
  ASSERT_TRUE(parseTraceSpec("prog:", Out, &Error)) << Error;
  EXPECT_TRUE(Out.Ops.empty());
}

TEST(TraceGeneratorTest, TargetOpsScalesProgramLength) {
  // emitOne may push up to three ops per step and forced collects ride on
  // top, so only the ordering is pinned, not an exact length.
  TraceProgram Short = generateTrace(9, {.TargetOps = 20});
  TraceProgram Long = generateTrace(9, {.TargetOps = 200});
  EXPECT_GT(Long.Ops.size(), Short.Ops.size());
  EXPECT_GE(Short.Ops.size(), 22u); // 20 steps + 2 trailing collects
}
