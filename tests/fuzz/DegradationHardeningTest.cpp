//===- DegradationHardeningTest.cpp - Shedding under hardened fuzz runs --===//
//
// Part of the gcassert project, under the MIT License.
//
// The degradation ladder and the hardened heap compose: with the
// engine.shed failpoint tripping the Full -> NoPaths -> CoreOnly ladder
// while Check-mode header screening is active, the core-check verdicts of a
// fuzz trace must not change. CoreOnly sheds path recording, the
// OwnershipOverlap warnings, and the orphaned-ownee watch — all outside the
// core comparison — while region logs and every core assertion keep
// running, so the run's core violation multiset must still equal the
// oracle's prediction exactly.
//
//===----------------------------------------------------------------------===//

#include "gcassert/fuzz/TraceGenerator.h"
#include "gcassert/fuzz/TraceInterpreter.h"
#include "gcassert/support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace gcassert;
using namespace gcassert::fuzz;

namespace {

/// The run's violations restricted to the kinds a CoreOnly engine still
/// checks (everything the oracle puts in CoreViolations).
ViolationMultiset coreOnly(const ViolationMultiset &Violations) {
  ViolationMultiset Out;
  for (const ViolationKey &V : Violations)
    if (V.Kind != AssertionKind::OwneeOutlivedOwner &&
        V.Kind != AssertionKind::OwnershipOverlap)
      Out.push_back(V);
  return Out;
}

/// A fixed seed whose trace actually trips core assertions, found
/// deterministically so the comparison below is not vacuous.
TraceProgram findTraceWithCoreViolations() {
  for (uint64_t Seed = 1; Seed != 64; ++Seed) {
    TraceProgram Program = generateTrace(Seed, {.TargetOps = 96});
    if (!runShadowOracle(Program).CoreViolations.empty())
      return Program;
  }
  ADD_FAILURE() << "no seed in 1..63 produced core violations";
  return TraceProgram();
}

class DegradationHardeningTest : public ::testing::Test {
protected:
  void TearDown() override { disarmAllFailpoints(); }
};

} // namespace

TEST_F(DegradationHardeningTest, CoreVerdictsSurviveSheddingUnderCheckMode) {
  TraceProgram Program = findTraceWithCoreViolations();
  ASSERT_FALSE(Program.Ops.empty());
  ShadowResult Oracle = runShadowOracle(Program);
  ASSERT_FALSE(Oracle.CoreViolations.empty());
  // Enough collects for the ladder to reach CoreOnly (one level per cycle)
  // and then run at least one full cycle there.
  ASSERT_GE(Program.collectCount(), 4u);

  RunConfig Config;
  Config.Collector = CollectorKind::MarkSweep;
  Config.Threads = 1;
  Config.Hardening = HardeningMode::Check;

  faults::EngineShed.armAlways();
  RunResult Degraded = runTrace(Program, Config);
  disarmAllFailpoints();

  ASSERT_TRUE(Degraded.Valid) << Degraded.InvalidReason;
  // The ladder actually engaged: cycles ran below Full.
  EXPECT_GE(Degraded.Stats.PathShedCycles, 2u);
  // Shedding never invents or drops a core verdict.
  EXPECT_EQ(coreOnly(Degraded.Violations), Oracle.CoreViolations);
  // The live set is untouched by degradation.
  ASSERT_EQ(Degraded.Snapshots.size(), Oracle.Snapshots.size());
  for (size_t I = 0; I != Degraded.Snapshots.size(); ++I)
    EXPECT_EQ(Degraded.Snapshots[I], Oracle.Snapshots[I]) << "snapshot " << I;
}

TEST_F(DegradationHardeningTest, UndegradedRunMatchesFullOracleSet) {
  // Control: the same trace without the failpoint reports the extended set
  // too, confirming the delta really is the shed bookkeeping.
  TraceProgram Program = findTraceWithCoreViolations();
  ASSERT_FALSE(Program.Ops.empty());
  ShadowResult Oracle = runShadowOracle(Program);

  RunConfig Config;
  Config.Hardening = HardeningMode::Check;
  RunResult Clean = runTrace(Program, Config);
  ASSERT_TRUE(Clean.Valid) << Clean.InvalidReason;
  EXPECT_EQ(Clean.Stats.PathShedCycles, 0u);
  EXPECT_EQ(Clean.Violations, Oracle.Violations);
}
