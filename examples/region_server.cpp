//===- region_server.cpp - §2.3.2 regions in a server loop ----------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper's motivating use of start-region / assert-alldead (§2.3.2):
// "in a server application, one might bracket the connection servicing
// code ... to ensure that, when the server has finished servicing the
// connection, all memory related to that connection is released."
//
// This example services requests inside regions. One request handler has a
// bug: it stores its response in a session cache that is never cleared.
// The region assertion pinpoints the escaped allocation. The example then
// re-runs the buggy server with the ForceTrue reaction (§2.6, the paper's
// future-work reaction, implemented here): the collector severs the leaked
// references, forcing the assertion to hold.
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/AssertionEngine.h"
#include "gcassert/support/OStream.h"

using namespace gcassert;

namespace {

struct Server {
  Vm &TheVm;
  AssertionEngine &Assertions;
  TypeId Response, ByteArray;
  uint32_t BodyField;
  GlobalRootId SessionCache;

  Server(Vm &TheVm, AssertionEngine &Assertions)
      : TheVm(TheVm), Assertions(Assertions) {
    TypeRegistry &Types = TheVm.types();
    if (const TypeInfo *Existing = Types.lookup("Lserver/Response;")) {
      Response = Existing->id();
      BodyField = Existing->fields()[0].Offset;
      ByteArray = Types.lookup("[B")->id();
    } else {
      TypeBuilder B(Types, "Lserver/Response;");
      BodyField = B.addRef("body");
      Response = B.build();
      ByteArray = Types.registerDataArray("[B", 1);
    }
    // The cache is a Response object used as a one-slot cache through its
    // body field; a real server would use a map.
    SessionCache =
        TheVm.addGlobalRoot(TheVm.allocate(TheVm.mainThread(), Response));
  }

  ~Server() { TheVm.removeGlobalRoot(SessionCache); }

  /// Services one request inside a region. \p Buggy caches the response.
  void service(int RequestId, bool Buggy) {
    MutatorThread &Main = TheVm.mainThread();
    Assertions.startRegion(Main);
    {
      HandleScope Scope(Main);
      Local Body = Scope.handle(TheVm.allocate(Main, ByteArray, 512));
      Local Reply = Scope.handle(TheVm.allocate(Main, Response));
      Reply.get()->setRef(BodyField, Body.get());
      // "Send" the reply: fill the body.
      Body.get()->arrayData()[0] = static_cast<uint8_t>(RequestId);

      if (Buggy && RequestId % 3 == 0) // The bug: cache some replies.
        TheVm.globalRoot(SessionCache)->setRef(BodyField, Reply.get());
    }
    Assertions.assertAllDead(Main);
  }
};

} // namespace

int main() {
  VmConfig Config;
  Config.HeapBytes = 16u << 20;
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Assertions(TheVm, &Sink);

  {
    Server S(TheVm, Assertions);
    outs() << "serving 9 requests with a leaky handler...\n";
    for (int Request = 0; Request < 9; ++Request)
      S.service(Request, /*Buggy=*/true);
    TheVm.collectNow();

    outs() << Sink.countOf(AssertionKind::Dead)
           << " region objects escaped their request. First report:\n\n";
    if (!Sink.violations().empty())
      printViolation(outs(), Sink.violations().front());
  }

  // Round two: same bug, but force the assertion to be true — the
  // collector severs the cached references and reclaims the escapees.
  Sink.clear();
  Assertions.setReaction(AssertionKind::Dead, ReactionPolicy::ForceTrue);
  {
    Server S(TheVm, Assertions);
    outs() << "\nserving 9 requests again with ForceTrue (§2.6)...\n";
    for (int Request = 0; Request < 9; ++Request)
      S.service(Request, /*Buggy=*/true);
    TheVm.collectNow();
    outs() << "violations logged: " << Sink.violations().size()
           << " (severed instead); cache entry after GC: "
           << (TheVm.globalRoot(S.SessionCache)->getRef(S.BodyField)
                   ? "still there?!"
                   : "null - reference severed, memory reclaimed")
           << '\n';
  }
  return 0;
}
