//===- heap_profile.cpp - heap histograms, diffing, and leak triage -------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The "what is my heap full of?" workflow, and how GC assertions shortcut
// it. The example runs the pseudojbb orderTable leak and triages it three
// ways, escalating in precision:
//
//   1. a heap histogram (what dominates the heap right now),
//   2. a histogram diff across iterations (which types are growing — the
//      heap-differencing idea behind JRockit/LeakBot/Cork),
//   3. an assert-dead report (the exact object and the path that retains
//      it — the paper's contribution).
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/AssertionEngine.h"
#include "gcassert/heap/HeapDiff.h"
#include "gcassert/support/OStream.h"
#include "gcassert/workloads/Workload.h"

using namespace gcassert;

int main() {
  registerBuiltinWorkloads();
  std::unique_ptr<Workload> TheWorkload =
      WorkloadRegistry::create("pseudojbb-ordertable-leak");
  VmConfig Config;
  Config.HeapBytes = TheWorkload->heapBytes();
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  WorkloadContext Ctx(TheVm, &Engine, /*UseAssertions=*/true, 0x5eed);

  TheWorkload->setUp(Ctx);
  TheWorkload->runIteration(Ctx);
  TheVm.collectNow();
  Sink.clear(); // Focus on growth first; assertions come back in step 3.

  outs() << "=== 1. heap histogram after one iteration (top 8 types)\n";
  std::vector<TypeOccupancy> Before = takeHeapHistogram(TheVm.heap());
  printHeapHistogram(outs(), Before, 8);

  TheWorkload->runIteration(Ctx);
  TheVm.collectNow();
  size_t AssertionReports = Sink.violations().size();

  outs() << "\n=== 2. growth over the next iteration (heap differencing)\n";
  std::vector<TypeOccupancy> After = takeHeapHistogram(TheVm.heap());
  printHeapDiff(outs(), diffHeapHistograms(Before, After), 8);
  outs() << "\nOrders (and their lines/addresses) grow steadily - a leak "
            "suspect, but only a\n*type*: which Orders, and who retains "
            "them?\n";

  outs() << "\n=== 3. the GC assertion answer (" << AssertionReports
         << " reports this iteration; the first)\n\n";
  if (!Sink.violations().empty())
    printViolation(outs(), Sink.violations().front());
  outs() << "\nThe assert-dead report names the exact Order and the exact "
            "retaining path\n(the orderTable B-tree it was never removed "
            "from) - no aging, no guessing.\n";

  TheWorkload->tearDown(Ctx);
  return 0;
}
