//===- lusearch_singleton.cpp - The paper's §3.2.2 lusearch finding -------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Reproduces §3.2.2: the Lucene documentation recommends opening a single
// IndexSearcher and sharing it between threads, but DaCapo's lusearch opens
// one per thread. assert-instances(IndexSearcher, 1) reports 32 live
// instances at every collection. The post-hoc PathFinder (our extension —
// the paper notes assert-instances cannot print paths, §2.7) then shows
// where the extra instances hang.
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/PathFinder.h"
#include "gcassert/support/OStream.h"
#include "gcassert/workloads/Harness.h"

using namespace gcassert;

int main() {
  registerBuiltinWorkloads();

  // Drive lusearch by hand so we can inspect the heap after its run.
  std::unique_ptr<Workload> TheWorkload = WorkloadRegistry::create("lusearch");
  VmConfig Config;
  Config.HeapBytes = TheWorkload->heapBytes();
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  WorkloadContext Ctx(TheVm, &Engine, /*UseAssertions=*/true, 0x5eed);

  outs() << "running lusearch with assert-instances(IndexSearcher, 1)...\n\n";
  TheWorkload->setUp(Ctx);
  TheWorkload->runIteration(Ctx);
  TheVm.collectNow();

  if (Sink.countOf(AssertionKind::Instances) == 0) {
    outs() << "unexpected: no instance violation\n";
    return 1;
  }
  printViolation(outs(), Sink.violations().front());

  // The extension: reconstruct where the instances live.
  const TypeInfo *Searcher =
      TheVm.types().lookup("Lorg/apache/lucene/search/IndexSearcher;");
  PathFinder Finder(TheVm);
  std::vector<ObjRef> Instances =
      Finder.findReachableInstances(Searcher->id(), 64);
  outs() << '\n' << static_cast<uint64_t>(Instances.size())
         << " live IndexSearcher instances (paper: 32, one per search "
            "thread).\n";
  outs() << "Path to the first one (PathFinder extension):\n";
  if (auto Path = Finder.findPath(Instances.front())) {
    for (size_t I = 0; I != Path->size(); ++I) {
      outs() << (*Path)[I].TypeName;
      if (!(*Path)[I].FieldName.empty())
        outs() << " (via " << (*Path)[I].FieldName << ')';
      outs() << (I + 1 != Path->size() ? " ->\n" : "\n");
    }
  }

  outs() << "\nFix: share one IndexSearcher across the threads — or, as "
            "the paper suggests,\nthe library itself could ship this "
            "assert-instances call to warn its users.\n";
  TheWorkload->tearDown(Ctx);
  return 0;
}
