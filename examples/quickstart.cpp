//===- quickstart.cpp - GC assertions in 60 lines ------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: build a tiny object graph, assert that an object will be
// reclaimed, and watch the collector catch the stale reference that keeps it
// alive — including the full heap path to the offending object (the paper's
// Figure 1 reporting).
//
// Build & run:   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/AssertionEngine.h"
#include "gcassert/support/OStream.h"

using namespace gcassert;

int main() {
  // 1. Bring up a VM: 16 MiB heap, full-heap mark-sweep collector (the
  //    configuration the paper evaluates).
  VmConfig Config;
  Config.HeapBytes = 16u << 20;
  Vm TheVm(Config);
  MutatorThread &Main = TheVm.mainThread();

  // 2. Declare a managed type: class Session { Session next; long id; }.
  TypeBuilder Builder(TheVm.types(), "LSession;");
  uint32_t NextField = Builder.addRef("next");
  uint32_t IdField = Builder.addScalar("id", 8);
  TypeId Session = Builder.build();

  // 3. Attach the assertion engine (violations print to stderr).
  AssertionEngine Assertions(TheVm);

  // 4. Build: registry -> s1 -> s2, plus a "cache" that also points at s2.
  HandleScope Scope(Main);
  Local Registry = Scope.handle(TheVm.allocate(Main, Session));
  Registry.get()->setScalar<int64_t>(IdField, 0);

  Local Cache = Scope.handle(TheVm.allocate(Main, Session));
  Cache.get()->setScalar<int64_t>(IdField, 999);

  ObjRef S1 = TheVm.allocate(Main, Session);
  S1->setScalar<int64_t>(IdField, 1);
  Registry.get()->setRef(NextField, S1);

  ObjRef S2 = TheVm.allocate(Main, Session);
  S2->setScalar<int64_t>(IdField, 2);
  S1->setRef(NextField, S2);
  Cache.get()->setRef(NextField, S2); // The bug: a forgotten cache entry.

  // 5. "Close" session 2: drop it from the list and assert it dies.
  outs() << "Closing session 2 and asserting it is reclaimed...\n";
  Assertions.assertDead(S2);
  S1->setRef(NextField, nullptr);

  // 6. Collect. The assertion fires: s2 is still reachable via the cache,
  //    and the report shows the exact path (Session -> Session).
  TheVm.collectNow();

  // 7. Fix the bug and collect again: no report this time.
  outs() << "\nClearing the cache entry and collecting again...\n";
  Cache.get()->setRef(NextField, nullptr);
  TheVm.collectNow();
  outs() << "No warning: session 2 was reclaimed.\n";

  outs() << "\nGC ran " << TheVm.gcStats().Cycles << " times; "
         << Assertions.counters().ViolationsReported
         << " violation(s) reported.\n";
  return 0;
}
