//===- jbb_order_leak.cpp - The paper's Figure 1 / §3.2.1 walkthrough -----------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's SPEC JBB2000 debugging session (§3.2.1) and its
// Figure 1 error report:
//
//   1. The orderTable leak (Jump & McKinley): DeliveryTransaction processes
//      Orders but never removes them from the District's longBTree. An
//      assert-dead at the end of delivery reports a path running
//      Company -> Warehouse -> District -> longBTree -> longBTreeNode ->
//      [Ljava/lang/Object; -> Order — exactly Figure 1's shape.
//   2. The Customer.lastOrder leak: orders leave the table but each
//      Customer still references the last Order it placed.
//   3. The repaired program: no reports.
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/OStream.h"
#include "gcassert/workloads/Workload.h"

using namespace gcassert;

/// Runs \p WorkloadName for \p Iterations iterations with an explicit
/// collection after each, and prints the first violation's full
/// Figure-1-style report.
static void runScenario(const char *Banner, const char *WorkloadName,
                        int Iterations = 1) {
  outs() << "=== " << Banner << " ===\n";

  std::unique_ptr<Workload> TheWorkload =
      WorkloadRegistry::create(WorkloadName);
  VmConfig Config;
  Config.HeapBytes = TheWorkload->heapBytes();
  Vm TheVm(Config);
  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  WorkloadContext Ctx(TheVm, &Engine, /*UseAssertions=*/true, 0x5eed);

  TheWorkload->setUp(Ctx);
  for (int I = 0; I != Iterations; ++I)
    TheWorkload->runIteration(Ctx);
  TheVm.collectNow();
  TheWorkload->tearDown(Ctx);

  if (Sink.violations().empty()) {
    outs() << "no assertion violations - the program behaves as asserted\n\n";
    return;
  }

  outs() << static_cast<uint64_t>(Sink.violations().size())
         << " violation report(s)";
  for (size_t K = 0; K != NumAssertionKinds; ++K)
    if (size_t N = Sink.countOf(static_cast<AssertionKind>(K)))
      outs() << " [" << assertionKindName(static_cast<AssertionKind>(K))
             << ": " << static_cast<uint64_t>(N) << ']';
  outs() << "; the first one:\n\n";
  printViolation(outs(), Sink.violations().front());
  outs() << '\n';
}

int main() {
  registerBuiltinWorkloads();

  runScenario("orderTable leak: delivered Orders never leave the B-tree "
              "(paper Figure 1)",
              "pseudojbb-ordertable-leak");

  runScenario("Customer.lastOrder leak: destroyed Orders still reachable "
              "from Customers",
              "pseudojbb-customer-leak");

  runScenario("oldCompany drag: the previous Company survives one "
              "iteration too long",
              "pseudojbb-drag", /*Iterations=*/2);

  runScenario("repaired program", "pseudojbb");
  return 0;
}
