//===- swapleak.cpp - The paper's §3.2.3 SwapLeak mystery -----------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the Sun Developer Network "garbage collection dilemma" the
// paper investigates in §3.2.3. A class SObject has a non-static inner
// class Rep; swap() exchanges the Rep fields of two SObjects. The user
// expects freshly allocated SObjects to be collectable after the swap — but
// every Java inner-class instance carries a hidden reference to its
// enclosing instance, so the swapped-in Rep keeps the "discarded" SObject
// alive.
//
// The managed types model that hidden reference explicitly:
//
//   SObject { Rep rep; }
//   Rep     { SObject outer; }   // javac's hidden this$0
//
// assert-dead on the temporary SObject produces the paper's report:
//
//   Warning: an object that was asserted dead is reachable.
//   Type: LSObject;
//   Path: LSArray; -> LSObject; -> LSObject$Rep; -> LSObject;
//
//===----------------------------------------------------------------------===//

#include "gcassert/core/AssertionEngine.h"
#include "gcassert/support/OStream.h"

using namespace gcassert;

int main() {
  VmConfig Config;
  Config.HeapBytes = 16u << 20;
  Vm TheVm(Config);
  MutatorThread &Main = TheVm.mainThread();
  TypeRegistry &Types = TheVm.types();

  TypeBuilder SObjectB(Types, "LSObject;");
  uint32_t RepField = SObjectB.addRef("rep");
  TypeId SObject = SObjectB.build();

  TypeBuilder RepB(Types, "LSObject$Rep;");
  // The compiler-generated reference to the enclosing instance.
  uint32_t OuterField = RepB.addRef("this$0");
  TypeId Rep = RepB.build();

  TypeId SArray = Types.registerRefArray("LSArray;");

  RecordingViolationSink Sink;
  AssertionEngine Assertions(TheVm, &Sink);

  // Allocates an SObject along with its Rep (as the constructor would).
  auto newSObject = [&](HandleScope &Scope) {
    Local Obj = Scope.handle(TheVm.allocate(Main, SObject));
    ObjRef NewRep = TheVm.allocate(Main, Rep);
    NewRep->setRef(OuterField, Obj.get()); // Hidden enclosing reference.
    Obj.get()->setRef(RepField, NewRep);
    return Obj;
  };

  // The SDN program: an array of SObjects...
  HandleScope Scope(Main);
  const uint64_t Count = 8;
  Local Array = Scope.handle(TheVm.allocate(Main, SArray, Count));
  for (uint64_t I = 0; I != Count; ++I) {
    HandleScope Inner(Main);
    Array.get()->setElement(I, newSObject(Inner).get());
  }

  // ...then a loop that allocates temporaries and swaps Rep fields with the
  // array elements. The user expects each temporary to be garbage
  // afterwards.
  outs() << "swapping Rep fields and asserting the temporaries dead...\n\n";
  for (uint64_t I = 0; I != Count; ++I) {
    HandleScope Inner(Main);
    Local Temp = newSObject(Inner);

    // swap(array[i], temp): exchange the rep fields.
    ObjRef Element = Array.get()->getElement(I);
    ObjRef ElementRep = Element->getRef(RepField);
    ObjRef TempRep = Temp.get()->getRef(RepField);
    Element->setRef(RepField, TempRep);
    Temp.get()->setRef(RepField, ElementRep);

    Assertions.assertDead(Temp.get()); // "it should be garbage now"
  }

  TheVm.collectNow();

  outs() << Sink.countOf(AssertionKind::Dead)
         << " of the temporaries are still reachable. The first report:\n\n";
  if (!Sink.violations().empty())
    printViolation(outs(), Sink.violations().front());

  outs() << "\nThe path explains the mystery: the swapped-in Rep instance "
            "keeps a hidden\nreference (this$0) to the SObject it was "
            "created inside — the temporary.\nNon-static inner classes pin "
            "their enclosing instance (paper §3.2.3).\n";
  return 0;
}
