//===- pause_profile.cpp - STW vs incremental pause distribution ---------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The bounded-pause claim, measured (DESIGN.md §15): build a large live
// graph under the mark-sweep collector, then compare the stop-the-world
// pause distribution (one pause = one full collection) against the
// incremental SATB drive (one pause = the snapshot begin, one budgeted
// mark slice, or the terminal drain+sweep) at two mark budgets. The graph
// is rewired and churned between pauses in both modes, so the incremental
// numbers include deletion-barrier logging and black allocation, not an
// idle heap.
//
// Every pause is timed from the driving thread around the call that stops
// the world, which is exactly the latency a request thread would see. The
// report publishes the full pause series per mode plus max/p99 scalars,
// and cross-checks the collector's own GcStats::MaxPauseNanos against the
// externally timed maximum.
//
// NOTE on hosts: the pause-reduction floor (stw max / incremental max)
// compares two numbers measured on the same host and needs no parallelism,
// but on a single-core machine a preempted slice can inflate the
// incremental maximum arbitrarily, so the floor is emitted only when
// hardware_concurrency() >= 2 — elsewhere the numbers are published
// ungated (bench_compare still warns on regressions).
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

#include "gcassert/runtime/Vm.h"
#include "gcassert/support/Timer.h"

#include <algorithm>
#include <thread>
#include <vector>

using namespace gcassert;
using namespace gcassert::bench;

namespace {

/// Live graph size: enough nodes that a full mark is a visibly long pause
/// on any host, small enough that a trial stays in milliseconds.
constexpr unsigned LiveNodes = 60000;
/// Out-degree of each node (RefArray length).
constexpr uint64_t NodeDegree = 4;
/// Root slots the graph hangs from.
constexpr unsigned RootSlots = 8;
/// Checking collections measured per trial in stop-the-world mode (and
/// incremental cycles per trial in incremental mode).
constexpr unsigned CyclesPerTrial = 4;
/// Graph edges rewired + garbage objects allocated between two pauses —
/// the mutation the SATB barrier and black allocation must absorb.
constexpr unsigned MutationsBetweenPauses = 256;

/// Mark budgets (objects per slice) for the incremental mode.
const uint64_t MarkBudgets[] = {512, 4096};

struct ModeResult {
  std::vector<double> PauseMs; ///< every pause, in order
  double StatsMaxPauseMs = 0;  ///< the collector's own accounting
  uint64_t MarkSlices = 0;
  uint64_t SatbLoggedSlots = 0;
};

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  std::sort(Sorted.begin(), Sorted.end());
  size_t Index = static_cast<size_t>(P / 100.0 *
                                     static_cast<double>(Sorted.size() - 1));
  return Sorted[Index];
}

class xorshift {
public:
  explicit xorshift(uint64_t Seed) : State(Seed | 1) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }

private:
  uint64_t State;
};

/// One trial of one mode. MarkBudget == 0 selects the stop-the-world
/// drive; otherwise the incremental drive at that budget. Pacing is
/// disabled (IncrementalSliceAllocs pushed out of reach) so every pause
/// happens inside a timed call here, none between them.
ModeResult runTrial(uint64_t MarkBudget, uint64_t Seed) {
  VmConfig Config;
  Config.HeapBytes = 64u << 20;
  Config.Collector = CollectorKind::MarkSweep;
  if (MarkBudget) {
    Config.Gc.Incremental = true;
    Config.Gc.MarkBudget = MarkBudget;
    Config.Gc.IncrementalSliceAllocs = 1u << 30;
  }
  Vm TheVm(Config);
  TypeId Node = TheVm.types().registerRefArray("pause.node");
  TypeId Junk = TheVm.types().registerDataArray("pause.junk", 1);

  MutatorThread &Main = TheVm.mainThread();
  std::vector<GlobalRootId> Roots;
  for (unsigned I = 0; I != RootSlots; ++I)
    Roots.push_back(TheVm.addGlobalRoot());

  // Build the live graph: a spine threaded through every root slot plus
  // random back edges, so marking must chase real pointers.
  xorshift Rng(Seed);
  {
    HandleScope Scope(Main);
    std::vector<Local> Recent;
    for (unsigned I = 0; I != 64; ++I)
      Recent.push_back(Scope.handle());
    for (unsigned I = 0; I != LiveNodes; ++I) {
      ObjRef Obj = TheVm.allocate(Main, Node, NodeDegree);
      if (!Obj)
        break;
      ObjRef Prev = TheVm.globalRoot(Roots[I % RootSlots]);
      Obj->setElement(0, Prev);
      ObjRef Back = Recent[Rng.next() % Recent.size()].get();
      if (Back)
        Obj->setElement(1 + Rng.next() % (NodeDegree - 1), Back);
      Recent[I % Recent.size()].set(Obj);
      TheVm.setGlobalRoot(Roots[I % RootSlots], Obj);
    }
  }

  // Rewires a few edges near the roots and drops some short-lived garbage:
  // the inter-pause mutation both modes pay for identically.
  auto Mutate = [&] {
    for (unsigned I = 0; I != MutationsBetweenPauses; ++I) {
      ObjRef A = TheVm.globalRoot(Roots[Rng.next() % RootSlots]);
      ObjRef B = TheVm.globalRoot(Roots[Rng.next() % RootSlots]);
      if (A && B)
        A->setElement(1 + Rng.next() % (NodeDegree - 1), B);
      TheVm.allocate(Main, Junk, 16);
    }
  };

  ModeResult Result;
  auto TimedPause = [&](auto &&Fn) {
    uint64_t Start = monotonicNanos();
    Fn();
    Result.PauseMs.push_back(
        static_cast<double>(monotonicNanos() - Start) / 1e6);
  };

  // One untimed warmup collection so both modes start from a swept heap.
  TheVm.collectNow("pause-profile warmup");

  for (unsigned Cycle = 0; Cycle != CyclesPerTrial; ++Cycle) {
    Mutate();
    if (!MarkBudget) {
      TimedPause([&] { TheVm.collectNow("pause-profile stw"); });
      continue;
    }
    TimedPause([&] { TheVm.incrementalBeginNow("pause-profile"); });
    while (TheVm.incrementalCycleActive()) {
      Mutate();
      // The final slice auto-finishes the cycle (terminal drain + sweep),
      // so the terminal pause is timed like every other slice.
      TimedPause([&] { TheVm.incrementalStepNow(); });
    }
  }

  const GcStats &S = TheVm.gcStats();
  Result.StatsMaxPauseMs = static_cast<double>(S.MaxPauseNanos) / 1e6;
  Result.MarkSlices = S.MarkSlices;
  Result.SatbLoggedSlots = S.SatbLoggedSlots;
  return Result;
}

std::string modeName(uint64_t MarkBudget) {
  return MarkBudget ? format("inc_b%llu",
                             static_cast<unsigned long long>(MarkBudget))
                    : std::string("stw");
}

} // namespace

int main(int Argc, char **Argv) {
  int Trials = trialCount(Argc, Argv, 5);
  unsigned HostCores = std::thread::hardware_concurrency();
  JsonReport Report("pause_profile");
  Report.setConfig("trials", static_cast<int64_t>(Trials));
  Report.setConfig("live_nodes", static_cast<uint64_t>(LiveNodes));
  Report.setConfig("cycles_per_trial", static_cast<uint64_t>(CyclesPerTrial));
  Report.setTopology(/*GcThreads=*/1, /*MutatorThreads=*/1);

  outs() << "Pause profile: stop-the-world vs incremental SATB marking\n";
  outs() << format("host cores: %u   trials: %d   live graph: %u nodes\n\n",
                   HostCores, Trials, LiveNodes);
  outs() << format("%-10s %8s %10s %10s %10s %10s %8s\n", "mode", "pauses",
                   "mean (ms)", "p99 (ms)", "max (ms)", "stats max",
                   "slices");
  printRule();

  double StwMax = 0;
  std::vector<std::pair<uint64_t, double>> IncMaxByBudget;
  std::vector<uint64_t> Modes = {0};
  Modes.insert(Modes.end(), std::begin(MarkBudgets), std::end(MarkBudgets));

  for (uint64_t Budget : Modes) {
    SampleSet Pauses;
    double StatsMax = 0;
    uint64_t Slices = 0, Logged = 0;
    for (int Trial = 0; Trial != Trials; ++Trial) {
      ModeResult R = runTrial(Budget, 0x9a5e + static_cast<uint64_t>(Trial));
      for (double Ms : R.PauseMs)
        Pauses.add(Ms);
      StatsMax = std::max(StatsMax, R.StatsMaxPauseMs);
      Slices += R.MarkSlices;
      Logged += R.SatbLoggedSlots;
    }
    std::string Mode = modeName(Budget);
    double P99 = percentile(Pauses.values(), 99.0);
    outs() << format("%-10s %8llu %10.3f %10.3f %10.3f %10.3f %8llu\n",
                     Mode.c_str(),
                     static_cast<unsigned long long>(Pauses.size()),
                     Pauses.mean(), P99, Pauses.max(), StatsMax,
                     static_cast<unsigned long long>(Slices));

    Report.addSeries(Mode + ".pause_ms", Pauses);
    Report.addScalar(Mode + ".p99_ms", P99);
    Report.addScalar(Mode + ".max_pause_ms", Pauses.max());
    Report.addScalar(Mode + ".stats_max_pause_ms", StatsMax);
    if (Budget) {
      Report.addScalar(Mode + ".mark_slices", static_cast<double>(Slices));
      Report.addScalar(Mode + ".satb_logged_slots",
                       static_cast<double>(Logged));
      IncMaxByBudget.emplace_back(Budget, Pauses.max());
    } else {
      StwMax = Pauses.max();
    }
  }

  outs() << '\n';
  for (const auto &[Budget, IncMax] : IncMaxByBudget) {
    double Reduction = IncMax > 0 ? StwMax / IncMax : 0;
    std::string Metric =
        format("pause_reduction.b%llu",
               static_cast<unsigned long long>(Budget));
    Report.addScalar(Metric, Reduction);
    // The tail actually dropped: the worst incremental pause must be a
    // multiple shorter than the worst stop-the-world pause. Hard floor
    // only where a slice cannot be preempted into dishonesty.
    bool Gated = HostCores >= 2;
    if (Gated)
      Report.addFloor(Metric, 3.0);
    outs() << format("max-pause reduction at budget %llu: %.1fx%s\n",
                     static_cast<unsigned long long>(Budget), Reduction,
                     Gated ? "  (floor: 3.0x)"
                           : "  (no floor: single-core host)");
  }
  outs().flush();
  return Report.write() ? 0 : 1;
}
