//===- alloc_fastpath.cpp - TLAB allocation fast-path scaling ------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Allocation-throughput scaling over real OS mutator threads (DESIGN.md §13):
// each configuration spawns 1/2/4/8 mutators that allocate small data arrays
// flat out into a bounded handle ring, once with per-thread TLABs (the bump
// fast path, refilled in batches from the segregated free lists) and once
// with TLABs disabled (every allocation takes the shared free-list lock).
// Reported per configuration: mean ns/allocation and the TLAB-over-freelist
// speedup at each thread count.
//
// A third measurement prices the safepoint poll itself — the per-allocation
// tax every mutator pays for stop-the-world collection — as ns per poll over
// a tight loop.
//
// NOTE on hosts: the free-list path serializes on the heap lock, so its
// cost grows with contention while the TLAB path stays flat; the speedup
// therefore needs real cores to show up. The report emits a floor of 5x at
// 4 mutator threads only when hardware_concurrency() >= 4 — on smaller
// hosts the numbers are still published but not gated.
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

#include "gcassert/runtime/Vm.h"
#include "gcassert/support/Timer.h"

#include <thread>

using namespace gcassert;
using namespace gcassert::bench;

namespace {

const unsigned ThreadCounts[] = {1, 2, 4, 8};

/// Allocations per mutator per trial. At ~40 bytes a cell this turns over
/// the 64 MiB heap a few times, so the timing includes the collections the
/// churn provokes — both configurations pay them identically.
constexpr uint64_t AllocsPerThread = 150000;
/// Payload bytes per data array — small objects, the fast path's case.
constexpr uint64_t ArrayLength = 16;
/// Live window each mutator keeps rooted (bounds the mark cost).
constexpr unsigned RingSlots = 32;

/// One timed run: \p Threads real mutators allocating flat out; returns
/// mean nanoseconds per allocation.
double runOnce(bool Tlab, unsigned Threads) {
  VmConfig Config;
  Config.HeapBytes = 64u << 20;
  Config.Collector = CollectorKind::MarkSweep;
  Config.Tlab = Tlab;
  Vm TheVm(Config);
  TypeId Type = TheVm.types().registerDataArray("alloc.bench", 1);

  uint64_t Start = monotonicNanos();
  TheVm.runMutators(Threads, "alloc", [Type](Vm &V, MutatorThread &T) {
    HandleScope Scope(T);
    Local Ring[RingSlots];
    for (Local &L : Ring)
      L = Scope.handle();
    for (uint64_t I = 0; I != AllocsPerThread; ++I)
      if (ObjRef Obj = V.allocate(T, Type, ArrayLength))
        Ring[I % RingSlots].set(Obj);
  });
  uint64_t Nanos = monotonicNanos() - Start;
  return static_cast<double>(Nanos) /
         static_cast<double>(AllocsPerThread * Threads);
}

/// Prices one safepoint poll (the uncontended case: no stop pending).
double pollCostNs() {
  VmConfig Config;
  Config.HeapBytes = 1u << 20;
  Vm TheVm(Config);
  constexpr uint64_t Polls = 2000000;
  uint64_t Start = monotonicNanos();
  for (uint64_t I = 0; I != Polls; ++I)
    TheVm.safepointPoll();
  return static_cast<double>(monotonicNanos() - Start) /
         static_cast<double>(Polls);
}

} // namespace

int main(int Argc, char **Argv) {
  int Trials = trialCount(Argc, Argv, 10);
  unsigned HostCores = std::thread::hardware_concurrency();
  JsonReport Report("alloc_fastpath");
  Report.setConfig("trials", static_cast<int64_t>(Trials));
  Report.setConfig("allocs_per_thread", AllocsPerThread);
  Report.setTopology(/*GcThreads=*/1, /*MutatorThreads=*/8);

  outs() << "Allocation fast path: TLAB bump vs shared free list\n";
  outs() << format("host cores: %u   trials per configuration: %d   "
                   "%llu allocs/thread\n\n",
                   HostCores, Trials,
                   static_cast<unsigned long long>(AllocsPerThread));

  constexpr size_t NumCounts = std::size(ThreadCounts);
  SampleSet TlabNs[NumCounts];
  SampleSet FreelistNs[NumCounts];
  for (int Trial = 0; Trial != Trials; ++Trial) {
    // Rotate which configuration runs first (position bias, see
    // BenchCommon.h).
    for (size_t I = 0; I != 2 * NumCounts; ++I) {
      size_t Slot = (I + static_cast<size_t>(Trial)) % (2 * NumCounts);
      bool Tlab = Slot < NumCounts;
      size_t C = Slot % NumCounts;
      double Ns = runOnce(Tlab, ThreadCounts[C]);
      (Tlab ? TlabNs : FreelistNs)[C].add(Ns);
    }
  }

  outs() << format("%8s %14s %14s %10s\n", "threads", "tlab (ns)",
                   "freelist (ns)", "speedup");
  printRule();
  for (size_t C = 0; C != NumCounts; ++C) {
    double Speedup = FreelistNs[C].mean() / TlabNs[C].mean();
    outs() << format("%8u %14.1f %14.1f %9.2fx\n", ThreadCounts[C],
                     TlabNs[C].mean(), FreelistNs[C].mean(), Speedup);
    Report.addSeries(format("alloc_ns.tlab.t%u", ThreadCounts[C]), TlabNs[C]);
    Report.addSeries(format("alloc_ns.freelist.t%u", ThreadCounts[C]),
                     FreelistNs[C]);
    Report.addScalar(format("tlab_speedup.t%u", ThreadCounts[C]), Speedup);
  }
  if (HostCores >= 4) {
    Report.addFloor("tlab_speedup.t4", 5.0);
    outs() << "floor: tlab_speedup.t4 >= 5.0\n";
  } else {
    outs() << format("no speedup floor: host has %u core(s), contention "
                     "cannot materialize\n",
                     HostCores);
  }

  SampleSet PollNs;
  for (int Trial = 0; Trial != Trials; ++Trial)
    PollNs.add(pollCostNs());
  outs() << format("\nsafepoint poll: %.2f ns/poll (uncontended)\n",
                   PollNs.mean());
  Report.addSeries("safepoint_poll_ns", PollNs);

  outs().flush();
  return Report.write() ? 0 : 1;
}
