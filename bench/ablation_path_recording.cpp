//===- ablation_path_recording.cpp - §2.7 path-recording cost -------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// ABL-PATH (DESIGN.md §4): cost of maintaining the full-path worklist
// tagging from §2.7. The paper claims the system "can maintain full path
// information with no measurable overhead" (§2.6): instead of popping an
// object off the worklist, the tracer re-pushes it with its low-order bit
// set, so the tagged worklist suffix is always the exact root-to-current
// path.
//
// This bench runs the Infrastructure configuration with path recording on
// vs off, on the trace-heaviest workloads, and reports the GC-time delta.
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

using namespace gcassert;
using namespace gcassert::bench;

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();
  int Trials = trialCount(Argc, Argv, 10);
  JsonReport Report("ablation_path_recording");
  Report.setConfig("trials", static_cast<int64_t>(Trials));

  outs() << "Ablation: §2.7 full-path recording on vs off "
            "(Infrastructure configuration)\n";
  outs() << format("trials per configuration: %d\n\n", Trials);
  outs() << format("%-12s %14s %14s %14s %9s\n", "benchmark",
                   "paths off (ms)", "paths on (ms)", "gc delta (%)",
                   "+-90% CI");
  printRule();

  std::vector<double> Ratios;
  for (const std::string &Workload :
       {std::string("bloat"), std::string("javac"), std::string("jess"),
        std::string("db"), std::string("xalan")}) {
    ConfigSamples NoPaths, Paths;
    for (int Trial = 0; Trial != Trials; ++Trial) {
      HarnessOptions Options;
      Options.Seed = 0x5eed + static_cast<uint64_t>(Trial);
      RecordingViolationSink Sink;
      Options.Sink = &Sink;
      // Alternate which variant runs first (see BenchCommon.h on position
      // bias).
      for (int Leg = 0; Leg != 2; ++Leg) {
        bool WithPaths = (Leg + Trial) % 2 != 0;
        Options.RecordPaths = WithPaths;
        RunResult Result =
            runWorkload(Workload, BenchConfig::Infrastructure, Options);
        ConfigSamples &Dest = WithPaths ? Paths : NoPaths;
        Dest.TotalMs.add(Result.TotalMillis);
        Dest.GcMs.add(Result.GcMillis);
        Dest.MutatorMs.add(Result.MutatorMillis);
      }
    }

    outs() << format("%-12s %14.2f %14.2f %14.2f %9.2f\n", Workload.c_str(),
                     NoPaths.GcMs.mean(), Paths.GcMs.mean(),
                     overheadPercent(NoPaths.GcMs, Paths.GcMs),
                     ratioConfidence(NoPaths.GcMs, Paths.GcMs));
    outs().flush();
    Ratios.push_back(Paths.GcMs.mean() / NoPaths.GcMs.mean());
    Report.addSeries(Workload + ".gc_ms.paths_off", NoPaths.GcMs);
    Report.addSeries(Workload + ".gc_ms.paths_on", Paths.GcMs);
  }

  printRule();
  outs() << format("geomean GC-time delta: %+.2f %%   (paper: \"no "
                   "measurable overhead\")\n",
                   (geometricMean(Ratios) - 1.0) * 100.0);
  outs() << "Small deltas (either sign) are instruction-layout effects of\n"
            "the two trace-loop instantiations, not algorithmic cost: the\n"
            "tagging adds one branch, one bit-write and one extra pop per\n"
            "object, which does not surface above code-generation noise —\n"
            "the paper's claim, reproduced.\n";
  Report.addScalar("geomean_gc_delta_pct",
                   (geometricMean(Ratios) - 1.0) * 100.0);
  return Report.write() ? 0 : 1;
}
