//===- gcassert_harness.cpp - Telemetry-aware workload harness -----------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The user-facing workload runner with the telemetry subsystem wired in
// (DESIGN.md §12). Runs one workload under one configuration and can export
// a Chrome trace_event JSON timeline (--trace-out, Perfetto-loadable) and a
// metrics-registry JSON snapshot (--metrics-out).
//
//   gcassert-harness --workload=<name> [--config=base|infra|assert]
//                    [--collector=marksweep|semispace|markcompact|generational]
//                    [--gc-threads=N] [--mutator-threads=N] [--iters=N]
//                    [--seed=N] [--hardening=off|check|full] [--verify-heap]
//                    [--incremental] [--mark-budget=N]
//                    [--trace-out=FILE] [--metrics-out=FILE] [--list]
//
// The serving suite rides the same binary: --workload=kv or --workload=oltp
// selects the latency-SLO request workloads (DESIGN.md §14) instead of an
// iteration workload. Serving-only knobs:
//
//   [--requests=N]        total requests across all threads (default 2000)
//   [--offered-rate=N]    aggregate offered req/s, open loop (default 2000)
//   [--open-loop]         Poisson arrivals at the offered rate (default);
//                         latency is measured from scheduled arrival, so
//                         queueing behind GC pauses lands in the tail
//   [--closed-loop]       issue the next request when the last returns
//                         (measures service time; coordinated omission)
//
// --mutator-threads must divide the workload's partition count (8).
//
// GCASSERT_MUTATOR_THREADS=N sets the mutator-thread count without flags
// (an explicit --mutator-threads overrides it). Each thread beyond the
// first is a real OS churn mutator and shows up as its own "mutator" lane
// in the exported Perfetto timeline.
//
// The GCASSERT_TRACE environment variable arms tracing without flags: set
// it to a path and the harness exports there on exit (set it to "1" to arm
// without exporting — for wrappers that export themselves). An explicit
// --trace-out overrides the env path.
//
//===----------------------------------------------------------------------===//

#include "gcassert/serving/ServingHarness.h"
#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"
#include "gcassert/telemetry/Metrics.h"
#include "gcassert/telemetry/TraceEvents.h"
#include "gcassert/workloads/Harness.h"

#include <cstdlib>
#include <cstring>
#include <string>

using namespace gcassert;

namespace {

[[noreturn]] void usage(const char *Bad) {
  if (Bad)
    errs() << "gcassert-harness: unrecognized argument '" << Bad << "'\n";
  errs() << "usage: gcassert-harness --workload=<name> [--config=base|infra|"
            "assert]\n"
            "         [--collector=marksweep|semispace|markcompact|"
            "generational]\n"
            "         [--gc-threads=N] [--mutator-threads=N] [--iters=N]\n"
            "         [--seed=N] [--hardening=off|check|full] "
            "[--verify-heap]\n"
            "         [--incremental] [--mark-budget=N]\n"
            "         [--trace-out=FILE] [--metrics-out=FILE] [--list]\n"
            "  (GCASSERT_MUTATOR_THREADS=N is the env equivalent of "
            "--mutator-threads)\n"
            "serving workloads (--workload=kv|oltp) additionally accept:\n"
            "         [--requests=N] [--offered-rate=N] [--open-loop] "
            "[--closed-loop]\n";
  std::exit(Bad ? 2 : 0);
}

/// Returns the value of "--opt=value" when \p Arg matches \p Opt, else null.
const char *matchOpt(const char *Arg, const char *Opt) {
  size_t N = std::strlen(Opt);
  if (!std::strncmp(Arg, Opt, N) && Arg[N] == '=')
    return Arg + N + 1;
  return nullptr;
}

} // namespace

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();

  std::string WorkloadName;
  BenchConfig Config = BenchConfig::WithAssertions;
  HarnessOptions Options;
  uint64_t ServingRequests = 2000;
  double ServingOfferedRate = 2000.0;
  serving::LoopMode ServingLoop = serving::LoopMode::Open;
  std::string TraceOut = telemetry::armTracingFromEnv();
  if (TraceOut == "1")
    TraceOut.clear(); // Armed, but export is the caller's business.
  std::string MetricsOut;
  if (const char *Env = std::getenv("GCASSERT_MUTATOR_THREADS"))
    if (int N = std::atoi(Env); N > 0)
      Options.MutatorThreads = static_cast<unsigned>(N);

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (const char *V = matchOpt(Arg, "--workload")) {
      WorkloadName = V;
    } else if (const char *V = matchOpt(Arg, "--config")) {
      if (!std::strcmp(V, "base"))
        Config = BenchConfig::Base;
      else if (!std::strcmp(V, "infra"))
        Config = BenchConfig::Infrastructure;
      else if (!std::strcmp(V, "assert"))
        Config = BenchConfig::WithAssertions;
      else
        usage(Arg);
    } else if (const char *V = matchOpt(Arg, "--collector")) {
      if (!std::strcmp(V, "marksweep"))
        Options.Collector = CollectorKind::MarkSweep;
      else if (!std::strcmp(V, "semispace"))
        Options.Collector = CollectorKind::SemiSpace;
      else if (!std::strcmp(V, "markcompact"))
        Options.Collector = CollectorKind::MarkCompact;
      else if (!std::strcmp(V, "generational"))
        Options.Collector = CollectorKind::Generational;
      else
        usage(Arg);
    } else if (const char *V = matchOpt(Arg, "--gc-threads")) {
      Options.GcThreads = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = matchOpt(Arg, "--mutator-threads")) {
      Options.MutatorThreads = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = matchOpt(Arg, "--iters")) {
      Options.MeasuredIterations = std::atoi(V);
    } else if (const char *V = matchOpt(Arg, "--seed")) {
      Options.Seed = std::strtoull(V, nullptr, 0);
    } else if (const char *V = matchOpt(Arg, "--hardening")) {
      if (!std::strcmp(V, "off"))
        Options.Hardening = HardeningMode::Off;
      else if (!std::strcmp(V, "check"))
        Options.Hardening = HardeningMode::Check;
      else if (!std::strcmp(V, "full"))
        Options.Hardening = HardeningMode::Full;
      else
        usage(Arg);
    } else if (const char *V = matchOpt(Arg, "--requests")) {
      ServingRequests = std::strtoull(V, nullptr, 0);
    } else if (const char *V = matchOpt(Arg, "--offered-rate")) {
      ServingOfferedRate = std::strtod(V, nullptr);
    } else if (!std::strcmp(Arg, "--open-loop")) {
      ServingLoop = serving::LoopMode::Open;
    } else if (!std::strcmp(Arg, "--closed-loop")) {
      ServingLoop = serving::LoopMode::Closed;
    } else if (const char *V = matchOpt(Arg, "--trace-out")) {
      TraceOut = V;
      telemetry::setTracingEnabled(true);
    } else if (const char *V = matchOpt(Arg, "--metrics-out")) {
      MetricsOut = V;
    } else if (!std::strcmp(Arg, "--verify-heap")) {
      Options.VerifyHeapAfterGc = true;
    } else if (!std::strcmp(Arg, "--incremental")) {
      // SATB incremental marking (DESIGN.md §15) — mark-sweep only; the
      // other collector families ignore the knob.
      Options.Incremental = true;
    } else if (const char *V = matchOpt(Arg, "--mark-budget")) {
      Options.MarkBudget = std::strtoull(V, nullptr, 0);
    } else if (!std::strcmp(Arg, "--list")) {
      for (const std::string &Name : WorkloadRegistry::names())
        outs() << Name << '\n';
      // The serving suite's request workloads (DESIGN.md §14).
      outs() << "kv\noltp\n";
      return 0;
    } else if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage(nullptr);
    } else {
      usage(Arg);
    }
  }

  if (WorkloadName.empty()) {
    errs() << "gcassert-harness: --workload is required (--list shows the "
              "registered names)\n";
    return 2;
  }

  RecordingViolationSink Sink;
  Options.Sink = &Sink;

  if (WorkloadName == "kv" || WorkloadName == "oltp") {
    // Serving path (DESIGN.md §14): request workloads under a load
    // generator, reporting tail latency instead of iteration time. For
    // these, --mutator-threads is the worker count and must divide the
    // workload's partition count (8).
    serving::ServingOptions SOpts;
    SOpts.Workload = WorkloadName == "kv" ? serving::ServingWorkload::Kv
                                          : serving::ServingWorkload::Oltp;
    SOpts.Collector = Options.Collector;
    SOpts.GcThreads = Options.GcThreads;
    SOpts.Threads = Options.MutatorThreads;
    SOpts.Loop = ServingLoop;
    SOpts.OfferedRatePerSec = ServingOfferedRate;
    SOpts.Requests = ServingRequests;
    SOpts.Seed = Options.Seed;
    SOpts.Config = Config;
    SOpts.Sink = &Sink;
    serving::ServingResult Result = serving::runServing(SOpts);

    auto Ms = [](uint64_t Nanos) { return static_cast<double>(Nanos) / 1e6; };
    outs() << format(
        "%-8s %-15s %s  offered %.0f req/s  achieved %.0f req/s\n",
        WorkloadName.c_str(), benchConfigName(Config),
        SOpts.Loop == serving::LoopMode::Open ? "open-loop " : "closed-loop",
        Result.OfferedRatePerSec, Result.AchievedRatePerSec);
    outs() << format(
        "requests %llu  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  p99.9 %.3f ms"
        "  max %.3f ms\n",
        static_cast<unsigned long long>(Result.Requests),
        Ms(Result.Latency.valueAtPercentile(50)),
        Ms(Result.Latency.valueAtPercentile(95)),
        Ms(Result.Latency.valueAtPercentile(99)),
        Ms(Result.Latency.valueAtPercentile(99.9)), Ms(Result.Latency.max()));
    outs() << format(
        "gc cycles %llu  requests overlapping a pause %llu  state digest "
        "%016llx\n",
        static_cast<unsigned long long>(Result.GcCycles),
        static_cast<unsigned long long>(Result.RequestsOverlappingPause),
        static_cast<unsigned long long>(Result.StateDigest));
    if (Result.Violations)
      outs() << format("violations: %llu\n",
                       static_cast<unsigned long long>(Result.Violations));
    outs().flush();
    telemetry::snapshotEngineCounters(Result.Counters);
  } else {
    RunResult Result = runWorkload(WorkloadName, Config, Options);

    outs() << format(
        "%-20s %-15s total %8.1f ms  gc %8.1f ms (%4.1f%%)  cycles %llu\n",
        WorkloadName.c_str(), benchConfigName(Config), Result.TotalMillis,
        Result.GcMillis,
        Result.TotalMillis > 0 ? 100.0 * Result.GcMillis / Result.TotalMillis
                               : 0.0,
        static_cast<unsigned long long>(Result.GcCycles));
    if (!Sink.violations().empty())
      outs() << format(
          "violations: %llu\n",
          static_cast<unsigned long long>(Sink.violations().size()));
    outs().flush();

    // The engine's counters are mirrored into the metrics registry here (the
    // per-cycle gc.* mirror runs inside the collector).
    telemetry::snapshotEngineCounters(Result.Counters);
  }

  int Exit = 0;
  std::string Error;
  if (!TraceOut.empty()) {
    if (telemetry::writeChromeTraceFile(TraceOut, &Error)) {
      outs() << "trace written to " << TraceOut << " ("
             << telemetry::totalEvents() << " events, "
             << telemetry::totalDropped() << " dropped)\n";
    } else {
      errs() << "gcassert-harness: " << Error << '\n';
      Exit = 1;
    }
  }
  if (!MetricsOut.empty()) {
    if (telemetry::MetricsRegistry::global().writeJsonFile(MetricsOut,
                                                           &Error)) {
      outs() << "metrics written to " << MetricsOut << '\n';
    } else {
      errs() << "gcassert-harness: " << Error << '\n';
      Exit = 1;
    }
  }
  outs().flush();
  return Exit;
}
