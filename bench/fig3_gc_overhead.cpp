//===- fig3_gc_overhead.cpp - Figure 3 reproduction -----------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// FIG3 (DESIGN.md §4): GC-time overhead of the GC assertion infrastructure,
// Base vs Infrastructure, across the benchmark suite.
//
// Paper result (§3.1.2, Figure 3): overall GC time increases by 13.36%
// (geometric mean) and 30% in the worst case (bloat).
//
// Usage: fig3_gc_overhead [--trials=N]   (default 10; paper used 20)
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

#include <algorithm>

using namespace gcassert;
using namespace gcassert::bench;

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();
  int Trials = trialCount(Argc, Argv, 10);
  JsonReport Report("fig3_gc_overhead");
  Report.setConfig("trials", static_cast<int64_t>(Trials));

  outs() << "Figure 3: GC-time overhead of the GC assertion infrastructure "
            "(Base -> Infrastructure)\n";
  outs() << format("trials per configuration: %d\n\n", Trials);
  outs() << format("%-12s %12s %12s %12s %9s\n", "benchmark", "base (ms)",
                   "infra (ms)", "gc ovh (%)", "+-90% CI");
  printRule();

  std::vector<double> GcRatios;
  std::string WorstName;
  double WorstOvh = -1e9;
  for (const std::string &Workload : perfWorkloads()) {
    std::vector<ConfigSamples> Samples = runPairedTrials(
        Workload, {BenchConfig::Base, BenchConfig::Infrastructure}, Trials);
    ConfigSamples &Base = Samples[0];
    ConfigSamples &Infra = Samples[1];

    // mpegaudio-style workloads can have a zero-GC measured window; skip
    // them from the ratio (no GC to slow down).
    if (Base.GcMs.mean() <= 0.01) {
      outs() << format("%-12s %12.2f %12.2f %12s %9s\n", Workload.c_str(),
                       Base.GcMs.mean(), Infra.GcMs.mean(), "(no gc)", "-");
      continue;
    }

    double GcOvh = overheadPercent(Base.GcMs, Infra.GcMs);
    outs() << format("%-12s %12.2f %12.2f %12.2f %9.2f\n", Workload.c_str(),
                     Base.GcMs.mean(), Infra.GcMs.mean(), GcOvh,
                     ratioConfidence(Base.GcMs, Infra.GcMs));
    outs().flush();
    GcRatios.push_back(Infra.GcMs.mean() / Base.GcMs.mean());
    Report.addSeries(Workload + ".gc_ms.base", Base.GcMs);
    Report.addSeries(Workload + ".gc_ms.infra", Infra.GcMs);
    if (GcOvh > WorstOvh) {
      WorstOvh = GcOvh;
      WorstName = Workload;
    }
  }

  printRule();
  outs() << format(
      "geomean GC-time overhead: %+6.2f %%   (paper: +13.36 %%)\n",
      (geometricMean(GcRatios) - 1.0) * 100.0);
  outs() << format("worst case: %s %+.2f %%          (paper: bloat, ~+30 %%)\n",
                   WorstName.c_str(), WorstOvh);
  Report.addScalar("geomean_gc_overhead_pct",
                   (geometricMean(GcRatios) - 1.0) * 100.0);
  return Report.write() ? 0 : 1;
}
