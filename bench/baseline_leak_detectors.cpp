//===- baseline_leak_detectors.cpp - GC assertions vs heuristics ----------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// BASE-LEAK (DESIGN.md §4): the paper's central qualitative claim (§1, §4):
// heuristic leak detectors "can only suggest potential leaks, which the
// programmer must then examine manually", while GC assertions detect the
// mismatch "almost immediately, rather than having to wait for objects to
// become stale or fill up the heap", with no false positives.
//
// This bench drives the same injected leak through three detectors:
//   * GC assertions (assert-dead at the removal site),
//   * a SWAT/Bell-style staleness detector (flag objects unaccessed for
//     StaleEpochs epochs),
//   * a Cork-style type-growth detector (flag types whose live volume grew
//     for MinGrowthStreak consecutive collections).
//
// The scenario: a request-processing loop retires most records correctly,
// but a buggy cache retains a few per epoch. A set of rarely-read but
// *needed* configuration records is staleness-detector bait.
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/leakdetect/StalenessDetector.h"
#include "gcassert/leakdetect/TypeGrowthDetector.h"
#include "gcassert/workloads/Common.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

constexpr int Epochs = 12;
constexpr int RecordsPerEpoch = 1000;
constexpr int LeaksPerEpoch = 10;
constexpr int ConfigRecords = 50;
constexpr uint64_t StaleEpochs = 3;
constexpr size_t MinGrowthStreak = 3;

} // namespace

int main() {
  VmConfig Config;
  Config.HeapBytes = 32u << 20;
  Vm TheVm(Config);
  MutatorThread &T = TheVm.mainThread();
  TypeRegistry &Types = TheVm.types();

  RecordingViolationSink Sink;
  AssertionEngine Engine(TheVm, &Sink);
  StalenessDetector Staleness(TheVm);
  TypeGrowthDetector Growth(TheVm);

  TypeBuilder RecordB(Types, "Lapp/Record;");
  RecordB.addScalar("payload", 8);
  TypeId Record = RecordB.build();
  TypeBuilder ConfigB(Types, "Lapp/ConfigEntry;");
  ConfigB.addScalar("payload", 8);
  TypeId ConfigEntry = ConfigB.build();

  // Long-lived, rarely-read configuration records (needed, not leaks).
  RootedArray Configs(TheVm, T, ConfigRecords);
  for (int I = 0; I != ConfigRecords; ++I) {
    ObjRef Entry = TheVm.allocate(T, ConfigEntry);
    Configs.set(static_cast<uint64_t>(I), Entry);
    Staleness.touch(Entry);
  }

  // The buggy cache that retains records it should not.
  RootedArray LeakCache(TheVm, T, Epochs * LeaksPerEpoch);
  uint64_t LeakCount = 0;

  RootedArray Table(TheVm, T, RecordsPerEpoch);
  SplitMix64 Rng(7);

  int AssertFirstEpoch = -1, StaleFirstEpoch = -1, GrowthFirstEpoch = -1;
  size_t StaleCandidates = 0, StaleFalse = 0;
  size_t AssertReports = 0;

  outs() << "Detecting an injected cache leak (" << LeaksPerEpoch
         << " leaked Records per epoch, " << Epochs << " epochs)\n\n";

  for (int Epoch = 0; Epoch != Epochs; ++Epoch) {
    Staleness.tick();

    // Service requests: fill the table...
    for (int I = 0; I != RecordsPerEpoch; ++I) {
      ObjRef NewRecord = TheVm.allocate(T, Record);
      Table.set(static_cast<uint64_t>(I), NewRecord);
      Staleness.touch(NewRecord);
    }
    // ...process and retire them. A few land in the leak cache.
    for (int I = 0; I != RecordsPerEpoch; ++I) {
      ObjRef Done = Table.get(static_cast<uint64_t>(I));
      Staleness.touch(Done);
      Table.set(static_cast<uint64_t>(I), nullptr);
      Engine.assertDead(Done); // The programmer's expectation.
      if (I < LeaksPerEpoch)
        LeakCache.set(LeakCount++, Done); // The bug.
    }

    TheVm.collectNow();

    // GC assertions: every reachable dead-asserted object was reported.
    size_t NewReports = Sink.countOf(AssertionKind::Dead) - AssertReports;
    AssertReports += NewReports;
    if (NewReports && AssertFirstEpoch < 0)
      AssertFirstEpoch = Epoch;

    // Staleness heuristic.
    std::vector<StaleCandidate> Stale = Staleness.scan(StaleEpochs);
    if (!Stale.empty() && StaleFirstEpoch < 0) {
      StaleFirstEpoch = Epoch;
      StaleCandidates = Stale.size();
      // Every live Record old enough to be stale is leaked (non-leaked
      // Records die the epoch they are created); stale ConfigEntry objects
      // are needed data — the heuristic's false positives.
      for (const StaleCandidate &C : Stale)
        if (C.TypeName == "Lapp/ConfigEntry;")
          ++StaleFalse;
    }

    // Heap-differencing heuristic.
    Growth.snapshot();
    if (GrowthFirstEpoch < 0)
      for (const GrowthCandidate &C : Growth.report(MinGrowthStreak))
        if (C.TypeName == "Lapp/Record;")
          GrowthFirstEpoch = Epoch;
  }

  outs() << format("%-16s %16s %14s %16s %s\n", "detector",
                   "first detection", "reports", "false positives",
                   "granularity");
  printRule();
  outs() << format(
      "%-16s %13d %17llu %16d %s\n", "gc-assertions", AssertFirstEpoch,
      static_cast<unsigned long long>(AssertReports), 0,
      "exact object + full heap path");
  outs() << format("%-16s %13d %17llu %16llu %s\n", "staleness",
                   StaleFirstEpoch,
                   static_cast<unsigned long long>(StaleCandidates),
                   static_cast<unsigned long long>(StaleFalse),
                   "object, no cause, needs aging");
  outs() << format("%-16s %13d %17s %16s %s\n", "type-growth",
                   GrowthFirstEpoch, "(type)", "-",
                   "type only, needs sustained growth");
  printRule();
  outs() << "GC assertions fire at the first collection after the bug "
            "(epoch 0), name the\nexact objects, and report the retaining "
            "path. The heuristics need the leak to\nage (staleness) or to "
            "grow for several collections (type growth), and cannot\n"
            "separate rarely-used-but-needed data from leaks (paper §1, "
            "§4).\n";
  JsonReport Report("baseline_leak_detectors");
  Report.addScalar("gc_assertions.first_epoch",
                   static_cast<double>(AssertFirstEpoch));
  Report.addScalar("gc_assertions.reports",
                   static_cast<double>(AssertReports));
  Report.addScalar("staleness.first_epoch",
                   static_cast<double>(StaleFirstEpoch));
  Report.addScalar("staleness.candidates",
                   static_cast<double>(StaleCandidates));
  Report.addScalar("staleness.false_positives",
                   static_cast<double>(StaleFalse));
  Report.addScalar("type_growth.first_epoch",
                   static_cast<double>(GrowthFirstEpoch));
  return Report.write() ? 0 : 1;
}
