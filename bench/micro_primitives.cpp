//===- micro_primitives.cpp - Microbenchmarks of assertion primitives -----------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// MICRO (DESIGN.md §4): google-benchmark measurements of the individual
// mechanisms the paper's overhead numbers are built from:
//
//   * allocation with and without an open region (§2.3.2's per-allocation
//     flag check + queue append),
//   * the assertion calls themselves (mutator-side cost),
//   * a full collection with and without the checking trace loop (the
//     Base -> Infrastructure delta in its purest form),
//   * ownee binary-search lookups at several table sizes (§2.5.2's
//     "n log n" check),
//   * the pending-pair merge performed at GC start.
//
//===----------------------------------------------------------------------===//

#include "common/GBenchJsonMain.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/workloads/Common.h"

#include <benchmark/benchmark.h>

using namespace gcassert;

namespace {

/// A VM + node type shared by one benchmark run.
struct MicroVm {
  explicit MicroVm(size_t HeapBytes = 64u << 20) : TheVm(makeConfig(HeapBytes)) {
    TypeBuilder B(TheVm.types(), "LNode;");
    NextField = B.addRef("next");
    B.addScalar("value", 8);
    Node = B.build();
  }

  static VmConfig makeConfig(size_t HeapBytes) {
    VmConfig Config;
    Config.HeapBytes = HeapBytes;
    return Config;
  }

  Vm TheVm;
  TypeId Node = InvalidTypeId;
  uint32_t NextField = 0;
};

void BM_AllocateNoRegion(benchmark::State &State) {
  MicroVm M;
  MutatorThread &T = M.TheVm.mainThread();
  for (auto _ : State)
    benchmark::DoNotOptimize(M.TheVm.allocate(T, M.Node));
}
BENCHMARK(BM_AllocateNoRegion);

void BM_AllocateInRegion(benchmark::State &State) {
  MicroVm M;
  RecordingViolationSink Sink;
  AssertionEngine Engine(M.TheVm, &Sink);
  MutatorThread &T = M.TheVm.mainThread();
  Engine.startRegion(T);
  for (auto _ : State)
    benchmark::DoNotOptimize(M.TheVm.allocate(T, M.Node));
  // Close the region without asserting millions of dead objects: entries
  // for dead objects were pruned at each GC anyway (runs after timing).
  M.TheVm.collectNow();
  Engine.assertAllDead(T);
}
BENCHMARK(BM_AllocateInRegion);

void BM_AssertDeadCall(benchmark::State &State) {
  MicroVm M;
  RecordingViolationSink Sink;
  AssertionEngine Engine(M.TheVm, &Sink);
  MutatorThread &T = M.TheVm.mainThread();
  ObjRef Obj = M.TheVm.allocate(T, M.Node);
  for (auto _ : State) {
    Engine.assertDead(Obj);
    benchmark::DoNotOptimize(Obj);
    Obj->header().clearFlag(HF_Dead);
  }
}
BENCHMARK(BM_AssertDeadCall);

void BM_AssertOwnedByCall(benchmark::State &State) {
  MicroVm M;
  RecordingViolationSink Sink;
  AssertionEngine Engine(M.TheVm, &Sink);
  MutatorThread &T = M.TheVm.mainThread();
  HandleScope Scope(T);
  Local Owner = Scope.handle(M.TheVm.allocate(T, M.Node));
  Local Ownee = Scope.handle(M.TheVm.allocate(T, M.Node));
  Owner.get()->setRef(M.NextField, Ownee.get());
  for (auto _ : State)
    Engine.assertOwnedBy(Owner.get(), Ownee.get());
  // Drain the pending buffer (runs after timing).
  M.TheVm.collectNow();
}
BENCHMARK(BM_AssertOwnedByCall);

/// Builds a rooted linked list of N nodes and times one full collection.
template <bool WithEngine>
void gcCostBenchmark(benchmark::State &State) {
  MicroVm M;
  std::unique_ptr<RecordingViolationSink> Sink;
  std::unique_ptr<AssertionEngine> Engine;
  if (WithEngine) {
    Sink = std::make_unique<RecordingViolationSink>();
    Engine = std::make_unique<AssertionEngine>(M.TheVm, Sink.get());
  }
  MutatorThread &T = M.TheVm.mainThread();
  HandleScope Scope(T);
  Local Head = Scope.handle();
  const int64_t LiveObjects = State.range(0);
  for (int64_t I = 0; I != LiveObjects; ++I) {
    ObjRef NewNode = M.TheVm.allocate(T, M.Node);
    NewNode->setRef(M.NextField, Head.get());
    Head.set(NewNode);
  }
  for (auto _ : State)
    M.TheVm.collectNow();
  State.SetItemsProcessed(State.iterations() * LiveObjects);
}

void BM_GcTraceBase(benchmark::State &State) {
  gcCostBenchmark<false>(State);
}
BENCHMARK(BM_GcTraceBase)->Arg(10000)->Arg(100000);

void BM_GcTraceInfrastructure(benchmark::State &State) {
  gcCostBenchmark<true>(State);
}
BENCHMARK(BM_GcTraceInfrastructure)->Arg(10000)->Arg(100000);

/// GC cost when every live object is an ownee of one owner (the §2.5.2
/// ownership phase plus per-ownee binary searches).
void BM_GcOwnershipChecked(benchmark::State &State) {
  MicroVm M;
  RecordingViolationSink Sink;
  AssertionEngine Engine(M.TheVm, &Sink);
  MutatorThread &T = M.TheVm.mainThread();
  TypeId ObjArray = ensureObjectArrayType(M.TheVm.types());
  HandleScope Scope(T);
  const int64_t Ownees = State.range(0);
  Local Owner = Scope.handle(M.TheVm.allocate(T, M.Node));
  Local Arr = Scope.handle(
      M.TheVm.allocate(T, ObjArray, static_cast<uint64_t>(Ownees)));
  Owner.get()->setRef(M.NextField, Arr.get());
  for (int64_t I = 0; I != Ownees; ++I) {
    ObjRef Ownee = M.TheVm.allocate(T, M.Node);
    Arr.get()->setElement(static_cast<uint64_t>(I), Ownee);
    Engine.assertOwnedBy(Owner.get(), Ownee);
  }
  for (auto _ : State)
    M.TheVm.collectNow();
  State.SetItemsProcessed(State.iterations() * Ownees);
}
BENCHMARK(BM_GcOwnershipChecked)->Arg(10000)->Arg(100000);

} // namespace

GCASSERT_GBENCH_JSON_MAIN("micro_primitives")
