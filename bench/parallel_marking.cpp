//===- parallel_marking.cpp - Parallel mark/sweep scaling ----------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Scaling of the work-stealing parallel mark and sweep phases (DESIGN.md,
// "Parallel collection"): runs trace-heavy workloads under the mark-sweep
// collector at 1/2/4/8 GC threads and reports mark-phase and sweep-phase
// time plus the speedup over the sequential (1-thread) configuration.
//
// Two configurations are measured: Base (no assertion checks — the pure
// tracing loop) and Infrastructure with path recording off (checks
// piggybacked on the parallel trace; path recording on would fall back to
// the sequential tracer, see DESIGN.md).
//
// NOTE on hosts: speedup is bounded by the machine's core count. The
// report's config block records the topology (host_cores/gc_threads), and
// on a host with >= 4 cores the report emits a floor requiring >= 1.5x
// geomean mark speedup at 4 GC threads — the honest-parallelism gate. On
// fewer cores the floor is withheld: every multi-thread configuration is
// oversubscribed there and the numbers show coordination overhead instead
// of a speedup.
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

#include <cmath>
#include <thread>
#include <vector>

using namespace gcassert;
using namespace gcassert::bench;

namespace {

const unsigned ThreadCounts[] = {1, 2, 4, 8};

struct PhaseSamples {
  SampleSet MarkMs;
  SampleSet SweepMs;
  SampleSet GcMs;
};

} // namespace

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();
  int Trials = trialCount(Argc, Argv, 10);
  unsigned HostCores = std::thread::hardware_concurrency();
  JsonReport Report("parallel_marking");
  Report.setConfig("trials", static_cast<int64_t>(Trials));
  Report.setTopology(/*GcThreads=*/8, /*MutatorThreads=*/1);

  outs() << "Parallel marking & sweeping: scaling over GC thread count\n";
  outs() << format("host cores: %u   trials per configuration: %d\n",
                   HostCores, Trials);
  outs() << "collector: marksweep   path recording: off (parallel trace)\n\n";

  std::vector<double> BaseT4Speedups;
  for (bool WithChecks : {false, true}) {
    outs() << (WithChecks
                   ? "Infrastructure (assertion checks on the parallel trace)"
                   : "Base (no assertion checks)")
           << '\n';
    outs() << format("%-11s %8s %12s %12s %12s %10s %10s\n", "benchmark",
                     "threads", "gc (ms)", "mark (ms)", "sweep (ms)",
                     "mark spd", "sweep spd");
    printRule();

    for (const std::string &Workload :
         {std::string("bloat"), std::string("hsqldb"),
          std::string("pseudojbb")}) {
      PhaseSamples Samples[sizeof(ThreadCounts) / sizeof(ThreadCounts[0])];
      for (int Trial = 0; Trial != Trials; ++Trial) {
        // Rotate which thread count runs first (position bias, see
        // BenchCommon.h).
        for (size_t I = 0; I != std::size(ThreadCounts); ++I) {
          size_t C = (I + static_cast<size_t>(Trial)) % std::size(ThreadCounts);
          HarnessOptions Options;
          Options.Seed = 0x5eed + static_cast<uint64_t>(Trial);
          Options.GcThreads = ThreadCounts[C];
          Options.RecordPaths = false;
          RecordingViolationSink Sink;
          Options.Sink = &Sink;
          RunResult Result = runWorkload(
              Workload,
              WithChecks ? BenchConfig::Infrastructure : BenchConfig::Base,
              Options);
          Samples[C].MarkMs.add(Result.MarkMillis);
          Samples[C].SweepMs.add(Result.SweepMillis);
          Samples[C].GcMs.add(Result.GcMillis);
        }
      }

      const char *Mode = WithChecks ? "infra" : "base";
      for (size_t C = 0; C != std::size(ThreadCounts); ++C) {
        double MarkSpeedup = Samples[0].MarkMs.mean() / Samples[C].MarkMs.mean();
        double SweepSpeedup =
            Samples[0].SweepMs.mean() / Samples[C].SweepMs.mean();
        outs() << format("%-11s %8u %12.2f %12.2f %12.2f %9.2fx %9.2fx\n",
                         C ? "" : Workload.c_str(), ThreadCounts[C],
                         Samples[C].GcMs.mean(), Samples[C].MarkMs.mean(),
                         Samples[C].SweepMs.mean(), MarkSpeedup, SweepSpeedup);
        Report.addSeries(Workload + format(".gc_ms.%s.t%u", Mode,
                                           ThreadCounts[C]),
                         Samples[C].GcMs);
        Report.addSeries(Workload + format(".mark_ms.%s.t%u", Mode,
                                           ThreadCounts[C]),
                         Samples[C].MarkMs);
        if (C) {
          Report.addScalar(Workload + format(".mark_speedup.%s.t%u", Mode,
                                             ThreadCounts[C]),
                           MarkSpeedup);
          if (!WithChecks && ThreadCounts[C] == 4)
            BaseT4Speedups.push_back(MarkSpeedup);
        }
      }
    }
    outs() << '\n';
  }

  // The honest-parallelism gate: geomean of the base-mode 4-thread mark
  // speedups across the workloads, floored at 1.5x — but only on hosts
  // that can physically run 4 markers in parallel.
  double LogSum = 0;
  for (double S : BaseT4Speedups)
    LogSum += std::log(S);
  double Geomean =
      BaseT4Speedups.empty()
          ? 0.0
          : std::exp(LogSum / static_cast<double>(BaseT4Speedups.size()));
  Report.addScalar("mark_speedup.base.t4.geomean", Geomean);
  if (HostCores >= 4)
    Report.addFloor("mark_speedup.base.t4.geomean", 1.5);
  outs() << format("geomean mark speedup at 4 GC threads (base): %.2fx%s\n",
                   Geomean,
                   HostCores >= 4 ? "  (floor: 1.50x)"
                                  : "  (no floor: host has < 4 cores)");
  outs().flush();
  return Report.write() ? 0 : 1;
}
