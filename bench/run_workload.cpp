//===- run_workload.cpp - Manual workload runner --------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Developer utility: runs one workload under one configuration and prints
// its timing and engine counters. Used to calibrate the benchmark suite.
//
//   run_workload <name|all> [base|infra|assert] [measured-iters]
//                [marksweep|semispace|markcompact|generational] [gc-threads]
//                [--hardening=off|check|full] [--verify-heap]
//
// The -- flags may appear anywhere; --verify-heap runs a full HeapVerifier
// pass after every collection and aborts on any defect.
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/ErrorHandling.h"
#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"
#include "gcassert/workloads/Harness.h"

#include <cstring>
#include <vector>

using namespace gcassert;

static void runOne(const std::string &Name, BenchConfig Config,
                   int Iterations, CollectorKind Collector,
                   unsigned GcThreads, HardeningMode Hardening,
                   bool VerifyHeap) {
  HarnessOptions Options;
  Options.MeasuredIterations = Iterations;
  Options.Collector = Collector;
  Options.GcThreads = GcThreads;
  Options.Hardening = Hardening;
  Options.VerifyHeapAfterGc = VerifyHeap;
  RecordingViolationSink Sink;
  Options.Sink = &Sink;

  RunResult Result = runWorkload(Name, Config, Options);
  outs() << format(
      "%-28s %-15s total %8.1f ms  gc %8.1f ms (%4.1f%%)  mark %7.1f ms  "
      "sweep %6.1f ms  cycles %4llu",
      Name.c_str(), benchConfigName(Config), Result.TotalMillis,
      Result.GcMillis, 100.0 * Result.GcMillis / Result.TotalMillis,
      Result.MarkMillis, Result.SweepMillis,
      static_cast<unsigned long long>(Result.GcCycles));
  if (Config == BenchConfig::WithAssertions) {
    const EngineCounters &C = Result.Counters;
    outs() << format(
        "  dead=%llu ownedby=%llu inst=%llu ownees/gc=%llu viol=%llu",
        static_cast<unsigned long long>(C.AssertDeadCalls),
        static_cast<unsigned long long>(C.AssertOwnedByCalls),
        static_cast<unsigned long long>(C.AssertInstancesCalls),
        static_cast<unsigned long long>(
            C.GcCycles ? C.OwneesCheckedTotal / C.GcCycles : 0),
        static_cast<unsigned long long>(C.ViolationsReported));
    if (!Sink.violations().empty()) {
      outs() << "\n  violation kinds:";
      for (size_t K = 0; K != NumAssertionKinds; ++K) {
        size_t N = Sink.countOf(static_cast<AssertionKind>(K));
        if (N)
          outs() << ' ' << assertionKindName(static_cast<AssertionKind>(K))
                 << '=' << static_cast<uint64_t>(N);
      }
    }
  }
  outs() << '\n';
  outs().flush();
}

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();

  // Pull the position-independent -- flags out first; what remains keeps
  // the historical positional grammar.
  HardeningMode Hardening = HardeningMode::Off;
  bool VerifyHeap = false;
  std::vector<char *> Positional;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--verify-heap")) {
      VerifyHeap = true;
    } else if (!std::strncmp(Argv[I], "--hardening=", 12)) {
      const char *Mode = Argv[I] + 12;
      if (!std::strcmp(Mode, "off"))
        Hardening = HardeningMode::Off;
      else if (!std::strcmp(Mode, "check"))
        Hardening = HardeningMode::Check;
      else if (!std::strcmp(Mode, "full"))
        Hardening = HardeningMode::Full;
      else
        reportFatalError("--hardening expects off, check or full");
    } else {
      Positional.push_back(Argv[I]);
    }
  }
  size_t N = Positional.size();

  std::string Name = N > 0 ? Positional[0] : "all";
  BenchConfig Config = BenchConfig::Base;
  if (N > 1) {
    if (!std::strcmp(Positional[1], "infra"))
      Config = BenchConfig::Infrastructure;
    else if (!std::strcmp(Positional[1], "assert"))
      Config = BenchConfig::WithAssertions;
  }
  int Iterations = N > 2 ? std::atoi(Positional[2]) : 2;
  CollectorKind Collector = CollectorKind::MarkSweep;
  if (N > 3) {
    if (!std::strcmp(Positional[3], "semispace"))
      Collector = CollectorKind::SemiSpace;
    else if (!std::strcmp(Positional[3], "markcompact"))
      Collector = CollectorKind::MarkCompact;
    else if (!std::strcmp(Positional[3], "generational"))
      Collector = CollectorKind::Generational;
  }
  unsigned GcThreads =
      N > 4 ? static_cast<unsigned>(std::atoi(Positional[4])) : 1;

  if (Name == "all") {
    for (const std::string &WorkloadName : WorkloadRegistry::names())
      runOne(WorkloadName, Config, Iterations, Collector, GcThreads,
             Hardening, VerifyHeap);
    return 0;
  }
  runOne(Name, Config, Iterations, Collector, GcThreads, Hardening,
         VerifyHeap);
  return 0;
}
