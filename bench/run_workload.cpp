//===- run_workload.cpp - Manual workload runner --------------------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Developer utility: runs one workload under one configuration and prints
// its timing and engine counters. Used to calibrate the benchmark suite.
//
//   run_workload <name|all> [base|infra|assert] [measured-iters]
//                [marksweep|semispace|markcompact|generational] [gc-threads]
//
//===----------------------------------------------------------------------===//

#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"
#include "gcassert/workloads/Harness.h"

#include <cstring>

using namespace gcassert;

static void runOne(const std::string &Name, BenchConfig Config,
                   int Iterations, CollectorKind Collector,
                   unsigned GcThreads) {
  HarnessOptions Options;
  Options.MeasuredIterations = Iterations;
  Options.Collector = Collector;
  Options.GcThreads = GcThreads;
  RecordingViolationSink Sink;
  Options.Sink = &Sink;

  RunResult Result = runWorkload(Name, Config, Options);
  outs() << format(
      "%-28s %-15s total %8.1f ms  gc %8.1f ms (%4.1f%%)  mark %7.1f ms  "
      "sweep %6.1f ms  cycles %4llu",
      Name.c_str(), benchConfigName(Config), Result.TotalMillis,
      Result.GcMillis, 100.0 * Result.GcMillis / Result.TotalMillis,
      Result.MarkMillis, Result.SweepMillis,
      static_cast<unsigned long long>(Result.GcCycles));
  if (Config == BenchConfig::WithAssertions) {
    const EngineCounters &C = Result.Counters;
    outs() << format(
        "  dead=%llu ownedby=%llu inst=%llu ownees/gc=%llu viol=%llu",
        static_cast<unsigned long long>(C.AssertDeadCalls),
        static_cast<unsigned long long>(C.AssertOwnedByCalls),
        static_cast<unsigned long long>(C.AssertInstancesCalls),
        static_cast<unsigned long long>(
            C.GcCycles ? C.OwneesCheckedTotal / C.GcCycles : 0),
        static_cast<unsigned long long>(C.ViolationsReported));
    if (!Sink.violations().empty()) {
      outs() << "\n  violation kinds:";
      for (size_t K = 0; K != NumAssertionKinds; ++K) {
        size_t N = Sink.countOf(static_cast<AssertionKind>(K));
        if (N)
          outs() << ' ' << assertionKindName(static_cast<AssertionKind>(K))
                 << '=' << static_cast<uint64_t>(N);
      }
    }
  }
  outs() << '\n';
  outs().flush();
}

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();

  std::string Name = Argc > 1 ? Argv[1] : "all";
  BenchConfig Config = BenchConfig::Base;
  if (Argc > 2) {
    if (!std::strcmp(Argv[2], "infra"))
      Config = BenchConfig::Infrastructure;
    else if (!std::strcmp(Argv[2], "assert"))
      Config = BenchConfig::WithAssertions;
  }
  int Iterations = Argc > 3 ? std::atoi(Argv[3]) : 2;
  CollectorKind Collector = CollectorKind::MarkSweep;
  if (Argc > 4) {
    if (!std::strcmp(Argv[4], "semispace"))
      Collector = CollectorKind::SemiSpace;
    else if (!std::strcmp(Argv[4], "markcompact"))
      Collector = CollectorKind::MarkCompact;
    else if (!std::strcmp(Argv[4], "generational"))
      Collector = CollectorKind::Generational;
  }
  unsigned GcThreads = Argc > 5 ? static_cast<unsigned>(std::atoi(Argv[5])) : 1;

  if (Name == "all") {
    for (const std::string &WorkloadName : WorkloadRegistry::names())
      runOne(WorkloadName, Config, Iterations, Collector, GcThreads);
    return 0;
  }
  runOne(Name, Config, Iterations, Collector, GcThreads);
  return 0;
}
