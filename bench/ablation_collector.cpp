//===- ablation_collector.cpp - collector-independence check --------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// ABL-COLL (DESIGN.md §4): the paper claims its technique "will work with
// any tracing collector" (§2.2). We run the same workloads under the
// MarkSweep collector (the paper's configuration) and a SemiSpace copying
// collector, measuring the infrastructure's GC-time overhead under each.
// The absolute GC times differ (copying pays per live byte, mark-sweep per
// heap cell), but the assertion infrastructure's relative overhead should
// be similar in kind under both.
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

using namespace gcassert;
using namespace gcassert::bench;

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();
  int Trials = trialCount(Argc, Argv, 10);
  JsonReport Report("ablation_collector");
  Report.setConfig("trials", static_cast<int64_t>(Trials));

  outs() << "Ablation: assertion infrastructure under two collectors\n";
  outs() << format("trials per configuration: %d\n\n", Trials);
  outs() << format("%-12s %-10s %12s %12s %12s\n", "benchmark", "collector",
                   "base (ms)", "infra (ms)", "gc ovh (%)");
  printRule();

  const std::string Workloads[] = {"jess", "javac", "bloat", "db",
                                   "pseudojbb"};
  const struct {
    CollectorKind Kind;
    const char *Name;
  } Collectors[] = {{CollectorKind::MarkSweep, "marksweep"},
                    {CollectorKind::SemiSpace, "semispace"},
                    {CollectorKind::MarkCompact, "markcompact"}};

  for (const std::string &Workload : Workloads) {
    for (const auto &Collector : Collectors) {
      HarnessOptions Options;
      Options.Collector = Collector.Kind;
      std::vector<ConfigSamples> Samples = runPairedTrials(
          Workload, {BenchConfig::Base, BenchConfig::Infrastructure}, Trials,
          Options);
      outs() << format("%-12s %-10s %12.2f %12.2f %12.2f\n",
                       Workload.c_str(), Collector.Name,
                       Samples[0].GcMs.mean(), Samples[1].GcMs.mean(),
                       overheadPercent(Samples[0].GcMs, Samples[1].GcMs));
      outs().flush();
      std::string Prefix = Workload + "." + Collector.Name;
      Report.addSeries(Prefix + ".gc_ms.base", Samples[0].GcMs);
      Report.addSeries(Prefix + ".gc_ms.infra", Samples[1].GcMs);
    }
  }

  printRule();
  outs() << "Same hooks, same checks: visiting an object means marking "
            "under mark-sweep,\nevacuating under semispace, and marking-"
            "then-sliding under mark-compact; the\nassertion infrastructure "
            "piggybacks on all three (paper §2.2).\n";
  return Report.write() ? 0 : 1;
}
