//===- tab_assertion_counts.cpp - In-text count reproduction --------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// TAB-CNT (DESIGN.md §4): reproduces the assertion-volume numbers the paper
// quotes in §3.1.2:
//
//   _209_db:   695 calls to assert-dead, 15,553 calls to assert-ownedby,
//              and "during each GC we check on average 15,274 ownee objects".
//   pseudojbb: 1 call to assert-instances, 31,038 calls to assert-ownedby,
//              but "during each GC only 420 ownee objects are checked"
//              because Orders churn through the orderTable quickly.
//
// The bench runs each workload WithAssertions for the paper's iteration
// discipline and prints measured vs paper counts.
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

using namespace gcassert;
using namespace gcassert::bench;

int main() {
  registerBuiltinWorkloads();
  JsonReport Report("tab_assertion_counts");

  outs() << "Assertion-volume counts (WithAssertions runs)\n\n";
  outs() << format("%-12s %16s %16s %16s %16s\n", "benchmark", "assert-dead",
                   "assert-ownedby", "assert-inst", "ownees/GC");
  printRule();

  struct PaperRow {
    const char *Workload;
    int Warmup;
    int Measured;
    const char *PaperLine;
  };
  // The iteration counts bring each workload's total transaction volume to
  // the paper's run length (db ran 3 iterations' worth of removals for its
  // 695 assert-dead calls; pseudojbb's 31,038 assert-ownedby calls are
  // about one iteration of order insertions).
  const PaperRow Rows[] = {
      {"db", 1, 2,
       "paper:            695           15,553                0 "
       "          15,274"},
      {"pseudojbb", 0, 1,
       "paper:              0           31,038              "
       "  1              420"},
  };

  for (const PaperRow &Row : Rows) {
    HarnessOptions Options;
    Options.WarmupIterations = Row.Warmup;
    Options.MeasuredIterations = Row.Measured;
    ConfigSamples Samples =
        runTrials(Row.Workload, BenchConfig::WithAssertions, 1, Options);
    const EngineCounters &C = Samples.LastCounters;
    uint64_t OwneesPerGc =
        C.GcCycles ? C.OwneesCheckedTotal / C.GcCycles : 0;
    outs() << format("%-12s %16llu %16llu %16llu %16llu\n", Row.Workload,
                     static_cast<unsigned long long>(C.AssertDeadCalls),
                     static_cast<unsigned long long>(C.AssertOwnedByCalls),
                     static_cast<unsigned long long>(C.AssertInstancesCalls),
                     static_cast<unsigned long long>(OwneesPerGc));
    outs() << Row.PaperLine << "\n";
    outs().flush();
    std::string W = Row.Workload;
    Report.addScalar(W + ".assert_dead_calls",
                     static_cast<double>(C.AssertDeadCalls));
    Report.addScalar(W + ".assert_ownedby_calls",
                     static_cast<double>(C.AssertOwnedByCalls));
    Report.addScalar(W + ".assert_instances_calls",
                     static_cast<double>(C.AssertInstancesCalls));
    Report.addScalar(W + ".ownees_per_gc", static_cast<double>(OwneesPerGc));
  }

  printRule();
  outs() << "db's ownee checks track its full 15,000-entry table; "
            "pseudojbb's Orders\nchurn out of the orderTable before most "
            "GCs see them (§3.1.2).\n";
  return Report.write() ? 0 : 1;
}
