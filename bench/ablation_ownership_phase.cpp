//===- ablation_ownership_phase.cpp - §2.5.2 algorithm ablation -----------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// ABL-OWN (DESIGN.md §4): why the paper's owner-first two-phase trace
// matters. §2.5.2 discusses the general algorithm — deciding, for every
// ownee, whether it is reachable from its owner — and rejects the naive
// formulations because "the space and time overhead from storing this
// information is prohibitive". The paper's design instead scans from each
// owner before the root scan, so every ownee's check costs one binary
// search and the region is traced exactly once.
//
// This bench builds a Database that owns N entries and compares:
//   * the ownership phase's time inside the collector (paper's algorithm,
//     measured via GcStats::OwnershipNanos), against
//   * a naive checker that answers the same question by running one
//     bounded BFS from the owner *per pair*.
//
// The naive cost grows ~quadratically in N; the two-phase cost stays linear.
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"
#include "gcassert/core/AssertionEngine.h"
#include "gcassert/support/Timer.h"
#include "gcassert/workloads/Common.h"

#include <deque>
#include <unordered_set>

using namespace gcassert;
using namespace gcassert::bench;

namespace {

struct DbScenario {
  std::unique_ptr<Vm> TheVm;
  std::unique_ptr<AssertionEngine> Engine;
  std::unique_ptr<RecordingViolationSink> Sink;
  std::unique_ptr<RootedArray> Root;
  TypeId Entry;
  uint32_t ItemsField;
  uint32_t EntriesField;
  std::vector<ObjRef> Ownees;
  ObjRef Owner;
};

/// Builds: Database(owner) -> entries array -> N entries -> item strings,
/// with every entry asserted owned by the database.
DbScenario buildScenario(uint64_t N) {
  DbScenario S;
  VmConfig Config;
  Config.HeapBytes = 16ull << 20;
  if (N > 20000)
    Config.HeapBytes = 64ull << 20;
  S.TheVm = std::make_unique<Vm>(Config);
  S.Sink = std::make_unique<RecordingViolationSink>();
  S.Engine = std::make_unique<AssertionEngine>(*S.TheVm, S.Sink.get());

  Vm &TheVm = *S.TheVm;
  MutatorThread &T = TheVm.mainThread();
  TypeRegistry &Types = TheVm.types();
  TypeId ObjArray = ensureObjectArrayType(Types);
  TypeId ByteArray = ensureByteArrayType(Types);

  TypeBuilder EntryB(Types, "Lspec/db/Entry;");
  S.ItemsField = EntryB.addRef("items");
  EntryB.addScalar("key", 8);
  S.Entry = EntryB.build();

  TypeBuilder DbB(Types, "Lspec/db/Database;");
  S.EntriesField = DbB.addRef("entries");
  TypeId Database = DbB.build();

  S.Root = std::make_unique<RootedArray>(TheVm, T, 1);
  {
    HandleScope Scope(T);
    Local Entries = Scope.handle(TheVm.allocate(T, ObjArray, N));
    ObjRef Db = TheVm.allocate(T, Database);
    Db->setRef(S.EntriesField, Entries.get());
    S.Root->set(0, Db);
  }
  SplitMix64 Rng(42);
  for (uint64_t I = 0; I != N; ++I) {
    HandleScope Scope(T);
    Local Items = Scope.handle(TheVm.allocate(T, ObjArray, 4));
    for (uint64_t F = 0; F != 4; ++F)
      Items.get()->setElement(
          F, TheVm.allocate(T, ByteArray, 16 + Rng.nextBelow(16)));
    ObjRef NewEntry = TheVm.allocate(T, S.Entry);
    NewEntry->setRef(S.ItemsField, Items.get());
    ObjRef Db = S.Root->get(0);
    Db->getRef(S.EntriesField)->setElement(I, NewEntry);
    S.Engine->assertOwnedBy(Db, NewEntry);
  }

  S.Owner = S.Root->get(0);
  ObjRef Entries = S.Owner->getRef(S.EntriesField);
  for (uint64_t I = 0; I != N; ++I)
    S.Ownees.push_back(Entries->getElement(I));
  return S;
}

/// Naive check: one BFS from the owner per pair, stopping when the ownee is
/// found. Returns the number of confirmed-owned pairs.
size_t naiveCheckAll(Vm &TheVm, ObjRef Owner,
                     const std::vector<ObjRef> &Ownees) {
  TypeRegistry &Types = TheVm.types();
  size_t Confirmed = 0;
  std::deque<ObjRef> Queue;
  std::unordered_set<ObjRef> Seen;
  for (ObjRef Target : Ownees) {
    Queue.clear();
    Seen.clear();
    Queue.push_back(Owner);
    Seen.insert(Owner);
    bool Found = false;
    while (!Queue.empty() && !Found) {
      ObjRef Obj = Queue.front();
      Queue.pop_front();
      const TypeInfo &Type = Types.get(Obj->typeId());
      auto Visit = [&](ObjRef Child) {
        if (!Child || Found)
          return;
        if (Child == Target) {
          Found = true;
          return;
        }
        if (Seen.insert(Child).second)
          Queue.push_back(Child);
      };
      if (Type.kind() == TypeKind::Class) {
        for (uint32_t Offset : Type.refOffsets())
          Visit(Obj->getRef(Offset));
      } else if (Type.kind() == TypeKind::RefArray) {
        for (uint64_t I = 0, E = Obj->arrayLength(); I != E; ++I)
          Visit(Obj->getElement(I));
      }
    }
    Confirmed += Found;
  }
  return Confirmed;
}

} // namespace

int main() {
  registerBuiltinWorkloads();
  JsonReport Report("ablation_ownership_phase");

  outs() << "Ablation: owner-first two-phase trace (paper §2.5.2) vs naive "
            "per-pair reachability\n\n";
  outs() << format("%-10s %22s %22s %10s\n", "pairs N",
                   "two-phase (ms/GC)", "naive (ms/check-all)", "ratio");
  printRule();

  for (uint64_t N : {1000ull, 4000ull, 15000ull, 30000ull}) {
    DbScenario S = buildScenario(N);

    // Paper's algorithm: time the ownership phase across a few GCs.
    const int Gcs = 5;
    uint64_t Before = S.TheVm->gcStats().OwnershipNanos;
    for (int I = 0; I != Gcs; ++I)
      S.TheVm->collectNow();
    double TwoPhaseMs =
        static_cast<double>(S.TheVm->gcStats().OwnershipNanos - Before) /
        1e6 / Gcs;

    // Naive algorithm: BFS from the owner for every pair, once.
    uint64_t Start = monotonicNanos();
    size_t Confirmed = naiveCheckAll(*S.TheVm, S.Owner, S.Ownees);
    double NaiveMs = static_cast<double>(monotonicNanos() - Start) / 1e6;

    outs() << format("%-10llu %22.3f %22.2f %9.0fx\n",
                     static_cast<unsigned long long>(N), TwoPhaseMs, NaiveMs,
                     NaiveMs / TwoPhaseMs);
    outs().flush();
    if (Confirmed != N)
      outs() << "  WARNING: naive checker disagreed with the table\n";
    std::string Prefix = format("n%llu", static_cast<unsigned long long>(N));
    Report.addScalar(Prefix + ".two_phase_ms_per_gc", TwoPhaseMs);
    Report.addScalar(Prefix + ".naive_ms", NaiveMs);
  }

  printRule();
  outs() << "The naive cost grows with pairs x region size; the paper's "
            "two-phase scan\nstays linear in the region and pays one binary "
            "search per ownee.\n";
  return Report.write() ? 0 : 1;
}
