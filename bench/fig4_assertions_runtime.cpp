//===- fig4_assertions_runtime.cpp - Figure 4 reproduction ----------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// FIG4 (DESIGN.md §4): total execution time with a non-trivial set of GC
// assertions added, for the two benchmarks the paper instruments: _209_db
// (Entry objects owned by their Database + assert-dead at removal sites)
// and pseudojbb (assert-ownedby at District.addOrder + one
// assert-instances).
//
// Paper result (§3.1.2, Figure 4): run time increases by 1.02% (db) and
// 1.84% (pseudojbb) over Base — "even with a large number of assertions to
// check (over 100,000 for _209_db), run-time increases by less than 2%".
//
// Usage: fig4_assertions_runtime [--trials=N]   (default 10; paper used 20)
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

using namespace gcassert;
using namespace gcassert::bench;

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();
  int Trials = trialCount(Argc, Argv, 10);
  JsonReport Report("fig4_assertions_runtime");
  Report.setConfig("trials", static_cast<int64_t>(Trials));

  outs() << "Figure 4: run-time overhead with GC assertions added\n";
  outs() << format("trials per configuration: %d\n\n", Trials);
  outs() << format("%-12s %11s %11s %11s %15s %15s\n", "benchmark",
                   "base (ms)", "infra (ms)", "assert (ms)",
                   "vs base (%)", "vs infra (%)");
  printRule();

  struct PaperRow {
    const char *Workload;
    double PaperVsBase;
    double PaperVsInfra;
  };
  const PaperRow PaperRows[] = {{"db", 1.02, 0.47}, {"pseudojbb", 1.84, 2.47}};

  for (const PaperRow &Row : PaperRows) {
    std::vector<ConfigSamples> Samples = runPairedTrials(
        Row.Workload,
        {BenchConfig::Base, BenchConfig::Infrastructure,
         BenchConfig::WithAssertions},
        Trials);
    ConfigSamples &Base = Samples[0];
    ConfigSamples &Infra = Samples[1];
    ConfigSamples &Assert = Samples[2];

    outs() << format("%-12s %11.2f %11.2f %11.2f %15.2f %15.2f\n",
                     Row.Workload, Base.TotalMs.mean(), Infra.TotalMs.mean(),
                     Assert.TotalMs.mean(),
                     overheadPercent(Base.TotalMs, Assert.TotalMs),
                     overheadPercent(Infra.TotalMs, Assert.TotalMs));
    outs() << format("%-12s %11s %11s %11s %15.2f %15.2f   (paper)\n", "",
                     "", "", "", Row.PaperVsBase, Row.PaperVsInfra);
    outs().flush();
    std::string W = Row.Workload;
    Report.addSeries(W + ".total_ms.base", Base.TotalMs);
    Report.addSeries(W + ".total_ms.infra", Infra.TotalMs);
    Report.addSeries(W + ".total_ms.assert", Assert.TotalMs);
  }

  printRule();
  outs() << "Assertion volume per run (WithAssertions):\n";
  for (const PaperRow &Row : PaperRows) {
    HarnessOptions Options;
    ConfigSamples Assert =
        runTrials(Row.Workload, BenchConfig::WithAssertions, 1, Options);
    const EngineCounters &C = Assert.LastCounters;
    outs() << format("  %-10s assert-dead calls: %-8llu assert-ownedby "
                     "calls: %-8llu assert-instances: %llu\n",
                     Row.Workload,
                     static_cast<unsigned long long>(C.AssertDeadCalls),
                     static_cast<unsigned long long>(C.AssertOwnedByCalls),
                     static_cast<unsigned long long>(C.AssertInstancesCalls));
  }
  outs() << "  (paper: db 695 assert-dead + 15,553 assert-ownedby; "
            "pseudojbb 1 assert-instances + 31,038 assert-ownedby)\n";
  return Report.write() ? 0 : 1;
}
