//===- telemetry_overhead.cpp - Cost of the telemetry subsystem ----------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// ABL-TELEM (DESIGN.md §12): the telemetry hooks are compiled into every
// build, so the acceptance bar is that a *disarmed* hook costs one relaxed
// atomic load — invisible at workload granularity. Two sections:
//
//   * micro: ns/op of a disarmed emit (the hot configuration), a disarmed
//     begin/end pair, and an armed emit (ring push) for contrast;
//   * workload: the four collector families with tracing disarmed, run as
//     interleaved A/A pairs. The hooks cannot be compiled out at run time,
//     so the A/A split measures the noise floor the disarmed hooks must
//     hide beneath; the micro section shows the per-call cost times the
//     handful of emits per GC cycle sits orders of magnitude below it.
//     An armed leg quantifies what full tracing costs when switched on.
//     Cells are compared on min-of-trials: timing noise on a shared
//     machine is strictly additive, so the minimum is the robust
//     estimator — a single co-tenant burst in one leg shifts that leg's
//     mean by several percent but leaves its minimum untouched. The JSON
//     report still carries every sample.
//
// Acceptance: geomean of the disarmed A/A delta within ±1%.
//
// Usage: telemetry_overhead [--trials=N]   (default 10)
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"
#include "gcassert/support/Timer.h"
#include "gcassert/telemetry/TraceEvents.h"

using namespace gcassert;
using namespace gcassert::bench;

namespace {

struct FamilyRow {
  CollectorKind Collector;
  const char *Name;
};

constexpr FamilyRow Families[] = {
    {CollectorKind::MarkSweep, "marksweep"},
    {CollectorKind::SemiSpace, "semispace"},
    {CollectorKind::MarkCompact, "markcompact"},
    {CollectorKind::Generational, "generational"},
};

/// ns/op of Iters calls to Fn, timed as one block.
template <typename FnT> double nsPerOp(uint64_t Iters, FnT Fn) {
  uint64_t Start = monotonicNanos();
  for (uint64_t I = 0; I != Iters; ++I)
    Fn();
  return static_cast<double>(monotonicNanos() - Start) /
         static_cast<double>(Iters);
}

} // namespace

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();
  int Trials = trialCount(Argc, Argv, 10);
  JsonReport Report("telemetry_overhead");
  Report.setConfig("trials", static_cast<int64_t>(Trials));

  outs() << "ABL-TELEM: cost of the telemetry subsystem\n\n";

  // --- micro: per-call costs ------------------------------------------------
  telemetry::setTracingEnabled(false);
  const uint64_t DisarmedIters = 1u << 26;
  double DisarmedInstantNs = nsPerOp(DisarmedIters, [] {
    telemetry::instant(telemetry::EventKind::AssertionPass, 0);
  });
  double DisarmedSpanNs = nsPerOp(DisarmedIters, [] {
    telemetry::begin(telemetry::EventKind::MarkPhase, 0);
    telemetry::end(telemetry::EventKind::MarkPhase, 0);
  });
  telemetry::setTracingEnabled(true);
  const uint64_t ArmedIters = 1u << 22;
  double ArmedInstantNs = nsPerOp(ArmedIters, [] {
    telemetry::instant(telemetry::EventKind::AssertionPass, 0);
  });
  telemetry::setTracingEnabled(false);
  telemetry::clearAllRings();

  outs() << "micro (per call):\n";
  outs() << format("  %-28s %8.3f ns\n", "disarmed instant", DisarmedInstantNs);
  outs() << format("  %-28s %8.3f ns\n", "disarmed begin+end pair",
                   DisarmedSpanNs);
  outs() << format("  %-28s %8.3f ns   (ring push, for contrast)\n",
                   "armed instant", ArmedInstantNs);
  outs() << '\n';
  Report.addScalar("micro.disarmed_instant_ns", DisarmedInstantNs);
  Report.addScalar("micro.disarmed_span_pair_ns", DisarmedSpanNs);
  Report.addScalar("micro.armed_instant_ns", ArmedInstantNs);

  // --- workload: disarmed A/A noise floor + armed cost ----------------------
  outs() << format("workload section: trials per cell: %d, workload: db\n\n",
                   Trials);
  outs() << format("%-14s %12s %14s %14s\n", "collector", "base min (ms)",
                   "a/a delta (%)", "armed ovh (%)");
  printRule();

  const std::string Workload = "db";
  std::vector<double> AaRatios;
  std::vector<double> ArmedRatios;
  for (const FamilyRow &Family : Families) {
    // Three interleaved legs per trial, rotating the start order so machine
    // drift cancels (see BenchCommon.h): disarmed A, disarmed B, armed.
    ConfigSamples Legs[3];
    for (int Trial = 0; Trial != Trials; ++Trial) {
      for (size_t I = 0; I != 3; ++I) {
        size_t L = (I + static_cast<size_t>(Trial)) % 3;
        HarnessOptions Options;
        RecordingViolationSink Sink;
        Options.Sink = &Sink;
        Options.Seed = 0x5eed + static_cast<uint64_t>(Trial);
        Options.Collector = Family.Collector;
        telemetry::setTracingEnabled(L == 2);
        RunResult Result = runWorkload(Workload, BenchConfig::Base, Options);
        telemetry::setTracingEnabled(false);
        telemetry::clearAllRings();
        Legs[L].TotalMs.add(Result.TotalMillis);
        Legs[L].GcMs.add(Result.GcMillis);
      }
    }
    ConfigSamples &A = Legs[0];
    ConfigSamples &B = Legs[1];
    ConfigSamples &Armed = Legs[2];
    double AaRatio = B.TotalMs.min() / A.TotalMs.min();
    double ArmedRatio = Armed.TotalMs.min() / A.TotalMs.min();
    outs() << format("%-14s %12.2f %14.2f %14.2f\n", Family.Name,
                     A.TotalMs.min(), (AaRatio - 1.0) * 100.0,
                     (ArmedRatio - 1.0) * 100.0);
    outs().flush();
    AaRatios.push_back(AaRatio);
    ArmedRatios.push_back(ArmedRatio);
    std::string Prefix = std::string(Family.Name) + "." + Workload;
    Report.addSeries(Prefix + ".total_ms.disarmed_a", A.TotalMs);
    Report.addSeries(Prefix + ".total_ms.disarmed_b", B.TotalMs);
    Report.addSeries(Prefix + ".total_ms.armed", Armed.TotalMs);
  }

  printRule();
  double AaGeo = (geometricMean(AaRatios) - 1.0) * 100.0;
  double ArmedGeo = (geometricMean(ArmedRatios) - 1.0) * 100.0;
  outs() << format("geomean disarmed A/A delta: %+6.2f %%   (bar: within "
                   "+-1%%)\n",
                   AaGeo);
  outs() << format("geomean armed tracing cost: %+6.2f %%\n", ArmedGeo);
  Report.addScalar("geomean_disarmed_aa_delta_pct", AaGeo);
  Report.addScalar("geomean_armed_overhead_pct", ArmedGeo);
  return Report.write() ? 0 : 1;
}
