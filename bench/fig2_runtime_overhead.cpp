//===- fig2_runtime_overhead.cpp - Figure 2 reproduction -----------------------//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// FIG2 (DESIGN.md §4): total-execution-time overhead of the GC assertion
// infrastructure, Base vs Infrastructure, across the benchmark suite.
//
// Paper result (§3.1.2, Figure 2): overall execution time increases by
// 2.75% (geometric mean); mutator time increases 1.12%, within the noise.
//
// Usage: fig2_runtime_overhead [--trials=N]   (default 10; paper used 20)
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "common/BenchJson.h"

using namespace gcassert;
using namespace gcassert::bench;

int main(int Argc, char **Argv) {
  registerBuiltinWorkloads();
  int Trials = trialCount(Argc, Argv, 10);
  JsonReport Report("fig2_runtime_overhead");
  Report.setConfig("trials", static_cast<int64_t>(Trials));

  outs() << "Figure 2: run-time overhead of the GC assertion "
            "infrastructure (Base -> Infrastructure)\n";
  outs() << format("trials per configuration: %d\n\n", Trials);
  outs() << format("%-12s %12s %12s %14s %9s %14s\n", "benchmark",
                   "base (ms)", "infra (ms)", "total ovh (%)", "+-90% CI",
                   "mutator ovh(%)");
  printRule();

  std::vector<double> TotalRatios;
  std::vector<double> MutatorRatios;
  for (const std::string &Workload : perfWorkloads()) {
    std::vector<ConfigSamples> Samples = runPairedTrials(
        Workload, {BenchConfig::Base, BenchConfig::Infrastructure}, Trials);
    ConfigSamples &Base = Samples[0];
    ConfigSamples &Infra = Samples[1];

    double TotalOvh = overheadPercent(Base.TotalMs, Infra.TotalMs);
    double MutatorOvh = overheadPercent(Base.MutatorMs, Infra.MutatorMs);
    outs() << format("%-12s %12.2f %12.2f %14.2f %9.2f %14.2f\n",
                     Workload.c_str(), Base.TotalMs.mean(),
                     Infra.TotalMs.mean(), TotalOvh,
                     ratioConfidence(Base.TotalMs, Infra.TotalMs),
                     MutatorOvh);
    outs().flush();
    TotalRatios.push_back(Infra.TotalMs.mean() / Base.TotalMs.mean());
    MutatorRatios.push_back(Infra.MutatorMs.mean() / Base.MutatorMs.mean());
    Report.addSeries(Workload + ".total_ms.base", Base.TotalMs);
    Report.addSeries(Workload + ".total_ms.infra", Infra.TotalMs);
  }

  printRule();
  outs() << format("geomean total overhead:   %+6.2f %%   (paper: +2.75 %%)\n",
                   (geometricMean(TotalRatios) - 1.0) * 100.0);
  outs() << format("geomean mutator overhead: %+6.2f %%   (paper: +1.12 %%, "
                   "within noise)\n",
                   (geometricMean(MutatorRatios) - 1.0) * 100.0);
  Report.addScalar("geomean_total_overhead_pct",
                   (geometricMean(TotalRatios) - 1.0) * 100.0);
  Report.addScalar("geomean_mutator_overhead_pct",
                   (geometricMean(MutatorRatios) - 1.0) * 100.0);
  return Report.write() ? 0 : 1;
}
