//===- bench/common/BenchJson.h - Machine-readable bench output -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable half of the benchmark pipeline (DESIGN.md §12):
/// every bench binary emits a BENCH_<name>.json next to its text output —
/// run configuration, every per-trial sample, and the derived mean / 90% CI
/// statistics — so tools/bench_compare can diff two runs and CI can gate on
/// regressions. The GCASSERT_BENCH_JSON_DIR environment variable redirects
/// the file (unset: current directory; "0": suppressed).
///
/// Schema:
///   {"benchmark": "<name>",
///    "schema_version": 1,
///    "config": {<key>: <string|number>, ...},
///    "series": {<name>: {"samples": [..], "mean": m, "ci90": c,
///                        "stddev": s, "min": lo, "max": hi}, ...},
///    "scalars": {<name>: <number>, ...}}
///
/// Series are trial-sample sets (lower is better: milliseconds, percents);
/// scalars are derived single numbers (geomeans, speedups) reported for
/// information and compared with a looser gate.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_BENCH_JSON_H
#define GCASSERT_BENCH_JSON_H

#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"
#include "gcassert/support/Stats.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace gcassert {
namespace bench {

/// Accumulates one benchmark's machine-readable report; write() emits
/// BENCH_<name>.json. Keys are recorded in insertion order.
class JsonReport {
public:
  explicit JsonReport(std::string BenchName) : Name(std::move(BenchName)) {}

  /// \name Run configuration (trial counts, seeds, host facts).
  /// @{
  void setConfig(const std::string &Key, const std::string &Value) {
    Config.emplace_back(Key, "\"" + jsonEscape(Value) + "\"");
  }
  void setConfig(const std::string &Key, int64_t Value) {
    Config.emplace_back(Key, format("%lld", static_cast<long long>(Value)));
  }
  void setConfig(const std::string &Key, uint64_t Value) {
    Config.emplace_back(Key,
                        format("%llu", static_cast<unsigned long long>(Value)));
  }
  /// @}

  /// Records \p Samples (all trial values plus derived stats) under
  /// \p SeriesName. Lower is better — bench_compare gates on the mean.
  void addSeries(const std::string &SeriesName, const SampleSet &Samples) {
    Series.emplace_back(SeriesName, Samples);
  }

  /// Records a derived single number (geomean overhead, speedup).
  void addScalar(const std::string &ScalarName, double Value) {
    Scalars.emplace_back(ScalarName, Value);
  }

  /// Serializes the report to \p Out.
  void render(OStream &Out) const {
    Out << "{\n  \"benchmark\": \"" << jsonEscape(Name)
        << "\",\n  \"schema_version\": 1,\n  \"config\": {";
    bool First = true;
    for (const auto &[Key, Value] : Config) {
      Out << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Key)
          << "\": " << Value;
      First = false;
    }
    Out << "\n  },\n  \"series\": {";
    First = true;
    for (const auto &[SeriesName, Samples] : Series) {
      Out << (First ? "\n" : ",\n") << "    \"" << jsonEscape(SeriesName)
          << "\": {\"samples\": [";
      for (size_t I = 0; I != Samples.size(); ++I)
        Out << (I ? "," : "") << format("%.6g", Samples.values()[I]);
      Out << format("], \"mean\": %.6g, \"ci90\": %.6g, \"stddev\": %.6g, "
                    "\"min\": %.6g, \"max\": %.6g}",
                    Samples.empty() ? 0.0 : Samples.mean(),
                    Samples.confidence90(), Samples.stddev(),
                    Samples.empty() ? 0.0 : Samples.min(),
                    Samples.empty() ? 0.0 : Samples.max());
      First = false;
    }
    Out << "\n  },\n  \"scalars\": {";
    First = true;
    for (const auto &[ScalarName, Value] : Scalars) {
      Out << (First ? "\n" : ",\n") << "    \"" << jsonEscape(ScalarName)
          << "\": " << format("%.6g", Value);
      First = false;
    }
    Out << "\n  }\n}\n";
  }

  /// Writes BENCH_<name>.json into GCASSERT_BENCH_JSON_DIR (default ".";
  /// the value "0" suppresses the file). Returns false on I/O failure,
  /// which the caller should surface as a nonzero exit — CI hard-fails on
  /// a missing or malformed report.
  bool write() const {
    const char *Dir = std::getenv("GCASSERT_BENCH_JSON_DIR");
    if (Dir && !std::strcmp(Dir, "0"))
      return true;
    std::string Path =
        std::string(Dir && *Dir ? Dir : ".") + "/BENCH_" + Name + ".json";
    std::FILE *Handle = std::fopen(Path.c_str(), "w");
    if (!Handle) {
      errs() << "warning: cannot write " << Path << '\n';
      return false;
    }
    {
      FileOStream Out(Handle);
      render(Out);
      Out.flush();
    }
    std::fclose(Handle);
    outs() << "\n[bench-json] wrote " << Path << '\n';
    outs().flush();
    return true;
  }

private:
  static std::string jsonEscape(const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      if (static_cast<unsigned char>(C) < 0x20) {
        Out += format("\\u%04x", C);
        continue;
      }
      Out += C;
    }
    return Out;
  }

  std::string Name;
  std::vector<std::pair<std::string, std::string>> Config;
  std::vector<std::pair<std::string, SampleSet>> Series;
  std::vector<std::pair<std::string, double>> Scalars;
};

} // namespace bench
} // namespace gcassert

#endif // GCASSERT_BENCH_JSON_H
