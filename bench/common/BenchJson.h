//===- bench/common/BenchJson.h - Machine-readable bench output -*- C++ -*-===//
//
// Part of the gcassert project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable half of the benchmark pipeline (DESIGN.md §12):
/// every bench binary emits a BENCH_<name>.json next to its text output —
/// run configuration, every per-trial sample, and the derived mean / 90% CI
/// statistics — so tools/bench_compare can diff two runs and CI can gate on
/// regressions. The GCASSERT_BENCH_JSON_DIR environment variable redirects
/// the file (unset: current directory; "0": suppressed).
///
/// Schema:
///   {"benchmark": "<name>",
///    "schema_version": 1,
///    "config": {<key>: <string|number>, ...},
///    "series": {<name>: {"samples": [..], "mean": m, "ci90": c,
///                        "stddev": s, "min": lo, "max": hi}, ...},
///    "scalars": {<name>: <number>, ...},
///    "floors": {<name>: <number>, ...},
///    "ceilings": {<name>: <number>, ...}}
///
/// Series are trial-sample sets (lower is better: milliseconds, percents);
/// scalars are derived single numbers (geomeans, speedups) reported for
/// information and compared with a looser gate.
///
/// Every report should call setTopology() so the config block records the
/// host core count and the thread counts the run exercised: bench_compare
/// downgrades regressions to warnings when baseline and current topology
/// disagree (numbers from different hosts are not comparable).
///
/// Floors are absolute minimum acceptable values for a named metric
/// (higher is better: speedups). A bench emits a floor only when the host
/// can meaningfully attain it — e.g. a 4-thread speedup floor only when
/// hardware_concurrency() >= 4 — and bench_compare then enforces it
/// against the current run regardless of the baseline.
///
/// Ceilings are the mirror image: absolute maximum acceptable values for
/// metrics where lower is better (latency percentiles, pause times). The
/// latency-SLO suite emits them so CI can hard-fail a p99 blowup even when
/// the baseline moved too. The same emit-only-where-attainable rule
/// applies, and like floors they ignore --soft.
///
//===----------------------------------------------------------------------===//

#ifndef GCASSERT_BENCH_JSON_H
#define GCASSERT_BENCH_JSON_H

#include "gcassert/support/Format.h"
#include "gcassert/support/OStream.h"
#include "gcassert/support/Stats.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gcassert {
namespace bench {

/// Accumulates one benchmark's machine-readable report; write() emits
/// BENCH_<name>.json. Keys are recorded in insertion order.
class JsonReport {
public:
  explicit JsonReport(std::string BenchName) : Name(std::move(BenchName)) {}

  /// \name Run configuration (trial counts, seeds, host facts).
  /// @{
  void setConfig(const std::string &Key, const std::string &Value) {
    Config.emplace_back(Key, "\"" + jsonEscape(Value) + "\"");
  }
  void setConfig(const std::string &Key, int64_t Value) {
    Config.emplace_back(Key, format("%lld", static_cast<long long>(Value)));
  }
  void setConfig(const std::string &Key, uint64_t Value) {
    Config.emplace_back(Key,
                        format("%llu", static_cast<unsigned long long>(Value)));
  }
  /// @}

  /// Records the host/run topology (core count plus the maximum GC and
  /// mutator thread counts the run exercised). bench_compare treats these
  /// three keys specially: a baseline/current mismatch downgrades every
  /// regression in the report to a warning.
  void setTopology(uint64_t GcThreads, uint64_t MutatorThreads) {
    setConfig("host_cores",
              static_cast<uint64_t>(std::thread::hardware_concurrency()));
    setConfig("gc_threads", GcThreads);
    setConfig("mutator_threads", MutatorThreads);
  }

  /// Records \p Samples (all trial values plus derived stats) under
  /// \p SeriesName. Lower is better — bench_compare gates on the mean.
  void addSeries(const std::string &SeriesName, const SampleSet &Samples) {
    Series.emplace_back(SeriesName, Samples);
  }

  /// Records a derived single number (geomean overhead, speedup).
  void addScalar(const std::string &ScalarName, double Value) {
    Scalars.emplace_back(ScalarName, Value);
  }

  /// Declares that metric \p MetricName must be >= \p Minimum in THIS run —
  /// bench_compare fails the comparison otherwise, baseline or no baseline.
  /// Only emit a floor the host can attain (check hardware_concurrency()
  /// before flooring a parallel speedup).
  void addFloor(const std::string &MetricName, double Minimum) {
    Floors.emplace_back(MetricName, Minimum);
  }

  /// Declares that metric \p MetricName must be <= \p Maximum in THIS run —
  /// the lower-is-better counterpart of addFloor, for latency SLOs. The
  /// same rule applies: only emit a ceiling the host can meet.
  void addCeiling(const std::string &MetricName, double Maximum) {
    Ceilings.emplace_back(MetricName, Maximum);
  }

  /// Serializes the report to \p Out.
  void render(OStream &Out) const {
    Out << "{\n  \"benchmark\": \"" << jsonEscape(Name)
        << "\",\n  \"schema_version\": 1,\n  \"config\": {";
    bool First = true;
    for (const auto &[Key, Value] : Config) {
      Out << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Key)
          << "\": " << Value;
      First = false;
    }
    Out << "\n  },\n  \"series\": {";
    First = true;
    for (const auto &[SeriesName, Samples] : Series) {
      Out << (First ? "\n" : ",\n") << "    \"" << jsonEscape(SeriesName)
          << "\": {\"samples\": [";
      for (size_t I = 0; I != Samples.size(); ++I)
        Out << (I ? "," : "") << format("%.6g", Samples.values()[I]);
      Out << format("], \"mean\": %.6g, \"ci90\": %.6g, \"stddev\": %.6g, "
                    "\"min\": %.6g, \"max\": %.6g}",
                    Samples.empty() ? 0.0 : Samples.mean(),
                    Samples.confidence90(), Samples.stddev(),
                    Samples.empty() ? 0.0 : Samples.min(),
                    Samples.empty() ? 0.0 : Samples.max());
      First = false;
    }
    Out << "\n  },\n  \"scalars\": {";
    First = true;
    for (const auto &[ScalarName, Value] : Scalars) {
      Out << (First ? "\n" : ",\n") << "    \"" << jsonEscape(ScalarName)
          << "\": " << format("%.6g", Value);
      First = false;
    }
    Out << "\n  },\n  \"floors\": {";
    First = true;
    for (const auto &[MetricName, Minimum] : Floors) {
      Out << (First ? "\n" : ",\n") << "    \"" << jsonEscape(MetricName)
          << "\": " << format("%.6g", Minimum);
      First = false;
    }
    Out << "\n  },\n  \"ceilings\": {";
    First = true;
    for (const auto &[MetricName, Maximum] : Ceilings) {
      Out << (First ? "\n" : ",\n") << "    \"" << jsonEscape(MetricName)
          << "\": " << format("%.6g", Maximum);
      First = false;
    }
    Out << "\n  }\n}\n";
  }

  /// Writes BENCH_<name>.json into GCASSERT_BENCH_JSON_DIR (default ".";
  /// the value "0" suppresses the file). Returns false on I/O failure,
  /// which the caller should surface as a nonzero exit — CI hard-fails on
  /// a missing or malformed report.
  bool write() const {
    const char *Dir = std::getenv("GCASSERT_BENCH_JSON_DIR");
    if (Dir && !std::strcmp(Dir, "0"))
      return true;
    std::string Path =
        std::string(Dir && *Dir ? Dir : ".") + "/BENCH_" + Name + ".json";
    std::FILE *Handle = std::fopen(Path.c_str(), "w");
    if (!Handle) {
      errs() << "warning: cannot write " << Path << '\n';
      return false;
    }
    {
      FileOStream Out(Handle);
      render(Out);
      Out.flush();
    }
    std::fclose(Handle);
    outs() << "\n[bench-json] wrote " << Path << '\n';
    outs().flush();
    return true;
  }

private:
  static std::string jsonEscape(const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      if (static_cast<unsigned char>(C) < 0x20) {
        Out += format("\\u%04x", C);
        continue;
      }
      Out += C;
    }
    return Out;
  }

  std::string Name;
  std::vector<std::pair<std::string, std::string>> Config;
  std::vector<std::pair<std::string, SampleSet>> Series;
  std::vector<std::pair<std::string, double>> Scalars;
  std::vector<std::pair<std::string, double>> Floors;
  std::vector<std::pair<std::string, double>> Ceilings;
};

} // namespace bench
} // namespace gcassert

#endif // GCASSERT_BENCH_JSON_H
